# Empty compiler generated dependencies file for lnic_backends.
# This may be replaced when dependencies are built.
