file(REMOVE_RECURSE
  "CMakeFiles/lnic_backends.dir/backend.cc.o"
  "CMakeFiles/lnic_backends.dir/backend.cc.o.d"
  "liblnic_backends.a"
  "liblnic_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lnic_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
