file(REMOVE_RECURSE
  "liblnic_backends.a"
)
