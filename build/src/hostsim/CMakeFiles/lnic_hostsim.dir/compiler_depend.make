# Empty compiler generated dependencies file for lnic_hostsim.
# This may be replaced when dependencies are built.
