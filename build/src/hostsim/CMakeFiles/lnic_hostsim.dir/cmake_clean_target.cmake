file(REMOVE_RECURSE
  "liblnic_hostsim.a"
)
