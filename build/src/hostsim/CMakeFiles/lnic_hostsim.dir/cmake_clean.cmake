file(REMOVE_RECURSE
  "CMakeFiles/lnic_hostsim.dir/host.cc.o"
  "CMakeFiles/lnic_hostsim.dir/host.cc.o.d"
  "liblnic_hostsim.a"
  "liblnic_hostsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lnic_hostsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
