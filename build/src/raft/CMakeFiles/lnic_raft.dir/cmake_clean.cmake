file(REMOVE_RECURSE
  "CMakeFiles/lnic_raft.dir/raft.cc.o"
  "CMakeFiles/lnic_raft.dir/raft.cc.o.d"
  "liblnic_raft.a"
  "liblnic_raft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lnic_raft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
