# Empty compiler generated dependencies file for lnic_raft.
# This may be replaced when dependencies are built.
