file(REMOVE_RECURSE
  "liblnic_raft.a"
)
