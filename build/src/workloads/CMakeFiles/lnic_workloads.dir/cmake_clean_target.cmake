file(REMOVE_RECURSE
  "liblnic_workloads.a"
)
