file(REMOVE_RECURSE
  "CMakeFiles/lnic_workloads.dir/image.cc.o"
  "CMakeFiles/lnic_workloads.dir/image.cc.o.d"
  "CMakeFiles/lnic_workloads.dir/lambdas.cc.o"
  "CMakeFiles/lnic_workloads.dir/lambdas.cc.o.d"
  "liblnic_workloads.a"
  "liblnic_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lnic_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
