# Empty compiler generated dependencies file for lnic_workloads.
# This may be replaced when dependencies are built.
