# Empty compiler generated dependencies file for lnic_nicsim.
# This may be replaced when dependencies are built.
