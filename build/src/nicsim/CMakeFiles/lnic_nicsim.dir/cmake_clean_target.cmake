file(REMOVE_RECURSE
  "liblnic_nicsim.a"
)
