file(REMOVE_RECURSE
  "CMakeFiles/lnic_nicsim.dir/nic.cc.o"
  "CMakeFiles/lnic_nicsim.dir/nic.cc.o.d"
  "liblnic_nicsim.a"
  "liblnic_nicsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lnic_nicsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
