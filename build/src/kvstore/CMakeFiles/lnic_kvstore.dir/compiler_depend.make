# Empty compiler generated dependencies file for lnic_kvstore.
# This may be replaced when dependencies are built.
