file(REMOVE_RECURSE
  "liblnic_kvstore.a"
)
