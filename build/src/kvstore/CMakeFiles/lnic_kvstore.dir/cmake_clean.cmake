file(REMOVE_RECURSE
  "CMakeFiles/lnic_kvstore.dir/cache_server.cc.o"
  "CMakeFiles/lnic_kvstore.dir/cache_server.cc.o.d"
  "CMakeFiles/lnic_kvstore.dir/etcd.cc.o"
  "CMakeFiles/lnic_kvstore.dir/etcd.cc.o.d"
  "liblnic_kvstore.a"
  "liblnic_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lnic_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
