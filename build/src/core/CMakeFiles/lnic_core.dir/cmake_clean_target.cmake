file(REMOVE_RECURSE
  "liblnic_core.a"
)
