# Empty dependencies file for lnic_core.
# This may be replaced when dependencies are built.
