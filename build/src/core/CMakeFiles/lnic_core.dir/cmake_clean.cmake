file(REMOVE_RECURSE
  "CMakeFiles/lnic_core.dir/cluster.cc.o"
  "CMakeFiles/lnic_core.dir/cluster.cc.o.d"
  "liblnic_core.a"
  "liblnic_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lnic_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
