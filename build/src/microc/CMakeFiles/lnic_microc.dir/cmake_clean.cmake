file(REMOVE_RECURSE
  "CMakeFiles/lnic_microc.dir/builder.cc.o"
  "CMakeFiles/lnic_microc.dir/builder.cc.o.d"
  "CMakeFiles/lnic_microc.dir/disasm.cc.o"
  "CMakeFiles/lnic_microc.dir/disasm.cc.o.d"
  "CMakeFiles/lnic_microc.dir/frontend.cc.o"
  "CMakeFiles/lnic_microc.dir/frontend.cc.o.d"
  "CMakeFiles/lnic_microc.dir/interp.cc.o"
  "CMakeFiles/lnic_microc.dir/interp.cc.o.d"
  "CMakeFiles/lnic_microc.dir/ir.cc.o"
  "CMakeFiles/lnic_microc.dir/ir.cc.o.d"
  "CMakeFiles/lnic_microc.dir/lexer.cc.o"
  "CMakeFiles/lnic_microc.dir/lexer.cc.o.d"
  "CMakeFiles/lnic_microc.dir/parser.cc.o"
  "CMakeFiles/lnic_microc.dir/parser.cc.o.d"
  "CMakeFiles/lnic_microc.dir/serialize.cc.o"
  "CMakeFiles/lnic_microc.dir/serialize.cc.o.d"
  "CMakeFiles/lnic_microc.dir/verify.cc.o"
  "CMakeFiles/lnic_microc.dir/verify.cc.o.d"
  "liblnic_microc.a"
  "liblnic_microc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lnic_microc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
