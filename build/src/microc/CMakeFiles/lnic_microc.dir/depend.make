# Empty dependencies file for lnic_microc.
# This may be replaced when dependencies are built.
