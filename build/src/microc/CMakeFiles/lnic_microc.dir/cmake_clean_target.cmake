file(REMOVE_RECURSE
  "liblnic_microc.a"
)
