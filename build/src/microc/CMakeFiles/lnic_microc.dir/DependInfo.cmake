
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/microc/builder.cc" "src/microc/CMakeFiles/lnic_microc.dir/builder.cc.o" "gcc" "src/microc/CMakeFiles/lnic_microc.dir/builder.cc.o.d"
  "/root/repo/src/microc/disasm.cc" "src/microc/CMakeFiles/lnic_microc.dir/disasm.cc.o" "gcc" "src/microc/CMakeFiles/lnic_microc.dir/disasm.cc.o.d"
  "/root/repo/src/microc/frontend.cc" "src/microc/CMakeFiles/lnic_microc.dir/frontend.cc.o" "gcc" "src/microc/CMakeFiles/lnic_microc.dir/frontend.cc.o.d"
  "/root/repo/src/microc/interp.cc" "src/microc/CMakeFiles/lnic_microc.dir/interp.cc.o" "gcc" "src/microc/CMakeFiles/lnic_microc.dir/interp.cc.o.d"
  "/root/repo/src/microc/ir.cc" "src/microc/CMakeFiles/lnic_microc.dir/ir.cc.o" "gcc" "src/microc/CMakeFiles/lnic_microc.dir/ir.cc.o.d"
  "/root/repo/src/microc/lexer.cc" "src/microc/CMakeFiles/lnic_microc.dir/lexer.cc.o" "gcc" "src/microc/CMakeFiles/lnic_microc.dir/lexer.cc.o.d"
  "/root/repo/src/microc/parser.cc" "src/microc/CMakeFiles/lnic_microc.dir/parser.cc.o" "gcc" "src/microc/CMakeFiles/lnic_microc.dir/parser.cc.o.d"
  "/root/repo/src/microc/serialize.cc" "src/microc/CMakeFiles/lnic_microc.dir/serialize.cc.o" "gcc" "src/microc/CMakeFiles/lnic_microc.dir/serialize.cc.o.d"
  "/root/repo/src/microc/verify.cc" "src/microc/CMakeFiles/lnic_microc.dir/verify.cc.o" "gcc" "src/microc/CMakeFiles/lnic_microc.dir/verify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lnic_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
