# Empty compiler generated dependencies file for lnic_sim.
# This may be replaced when dependencies are built.
