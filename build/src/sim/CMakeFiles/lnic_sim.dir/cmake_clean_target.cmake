file(REMOVE_RECURSE
  "liblnic_sim.a"
)
