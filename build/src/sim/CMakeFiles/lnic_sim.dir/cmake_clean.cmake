file(REMOVE_RECURSE
  "CMakeFiles/lnic_sim.dir/simulator.cc.o"
  "CMakeFiles/lnic_sim.dir/simulator.cc.o.d"
  "liblnic_sim.a"
  "liblnic_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lnic_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
