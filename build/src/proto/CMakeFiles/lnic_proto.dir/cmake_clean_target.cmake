file(REMOVE_RECURSE
  "liblnic_proto.a"
)
