file(REMOVE_RECURSE
  "CMakeFiles/lnic_proto.dir/rpc.cc.o"
  "CMakeFiles/lnic_proto.dir/rpc.cc.o.d"
  "liblnic_proto.a"
  "liblnic_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lnic_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
