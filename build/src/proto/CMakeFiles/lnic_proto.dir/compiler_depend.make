# Empty compiler generated dependencies file for lnic_proto.
# This may be replaced when dependencies are built.
