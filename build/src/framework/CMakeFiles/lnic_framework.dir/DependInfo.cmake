
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/framework/autoscaler.cc" "src/framework/CMakeFiles/lnic_framework.dir/autoscaler.cc.o" "gcc" "src/framework/CMakeFiles/lnic_framework.dir/autoscaler.cc.o.d"
  "/root/repo/src/framework/gateway.cc" "src/framework/CMakeFiles/lnic_framework.dir/gateway.cc.o" "gcc" "src/framework/CMakeFiles/lnic_framework.dir/gateway.cc.o.d"
  "/root/repo/src/framework/health.cc" "src/framework/CMakeFiles/lnic_framework.dir/health.cc.o" "gcc" "src/framework/CMakeFiles/lnic_framework.dir/health.cc.o.d"
  "/root/repo/src/framework/manager.cc" "src/framework/CMakeFiles/lnic_framework.dir/manager.cc.o" "gcc" "src/framework/CMakeFiles/lnic_framework.dir/manager.cc.o.d"
  "/root/repo/src/framework/metrics.cc" "src/framework/CMakeFiles/lnic_framework.dir/metrics.cc.o" "gcc" "src/framework/CMakeFiles/lnic_framework.dir/metrics.cc.o.d"
  "/root/repo/src/framework/monitor.cc" "src/framework/CMakeFiles/lnic_framework.dir/monitor.cc.o" "gcc" "src/framework/CMakeFiles/lnic_framework.dir/monitor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proto/CMakeFiles/lnic_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/lnic_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/CMakeFiles/lnic_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lnic_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lnic_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lnic_common.dir/DependInfo.cmake"
  "/root/repo/build/src/raft/CMakeFiles/lnic_raft.dir/DependInfo.cmake"
  "/root/repo/build/src/nicsim/CMakeFiles/lnic_nicsim.dir/DependInfo.cmake"
  "/root/repo/build/src/hostsim/CMakeFiles/lnic_hostsim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/lnic_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/lnic_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/p4/CMakeFiles/lnic_p4.dir/DependInfo.cmake"
  "/root/repo/build/src/microc/CMakeFiles/lnic_microc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
