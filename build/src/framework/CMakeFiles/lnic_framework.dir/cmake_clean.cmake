file(REMOVE_RECURSE
  "CMakeFiles/lnic_framework.dir/autoscaler.cc.o"
  "CMakeFiles/lnic_framework.dir/autoscaler.cc.o.d"
  "CMakeFiles/lnic_framework.dir/gateway.cc.o"
  "CMakeFiles/lnic_framework.dir/gateway.cc.o.d"
  "CMakeFiles/lnic_framework.dir/health.cc.o"
  "CMakeFiles/lnic_framework.dir/health.cc.o.d"
  "CMakeFiles/lnic_framework.dir/manager.cc.o"
  "CMakeFiles/lnic_framework.dir/manager.cc.o.d"
  "CMakeFiles/lnic_framework.dir/metrics.cc.o"
  "CMakeFiles/lnic_framework.dir/metrics.cc.o.d"
  "CMakeFiles/lnic_framework.dir/monitor.cc.o"
  "CMakeFiles/lnic_framework.dir/monitor.cc.o.d"
  "liblnic_framework.a"
  "liblnic_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lnic_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
