file(REMOVE_RECURSE
  "liblnic_framework.a"
)
