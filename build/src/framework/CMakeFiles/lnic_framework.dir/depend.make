# Empty dependencies file for lnic_framework.
# This may be replaced when dependencies are built.
