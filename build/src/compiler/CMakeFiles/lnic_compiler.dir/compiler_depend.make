# Empty compiler generated dependencies file for lnic_compiler.
# This may be replaced when dependencies are built.
