file(REMOVE_RECURSE
  "liblnic_compiler.a"
)
