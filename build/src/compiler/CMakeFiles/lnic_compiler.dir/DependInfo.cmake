
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/analysis.cc" "src/compiler/CMakeFiles/lnic_compiler.dir/analysis.cc.o" "gcc" "src/compiler/CMakeFiles/lnic_compiler.dir/analysis.cc.o.d"
  "/root/repo/src/compiler/coalesce.cc" "src/compiler/CMakeFiles/lnic_compiler.dir/coalesce.cc.o" "gcc" "src/compiler/CMakeFiles/lnic_compiler.dir/coalesce.cc.o.d"
  "/root/repo/src/compiler/const_fold.cc" "src/compiler/CMakeFiles/lnic_compiler.dir/const_fold.cc.o" "gcc" "src/compiler/CMakeFiles/lnic_compiler.dir/const_fold.cc.o.d"
  "/root/repo/src/compiler/dce.cc" "src/compiler/CMakeFiles/lnic_compiler.dir/dce.cc.o" "gcc" "src/compiler/CMakeFiles/lnic_compiler.dir/dce.cc.o.d"
  "/root/repo/src/compiler/inline.cc" "src/compiler/CMakeFiles/lnic_compiler.dir/inline.cc.o" "gcc" "src/compiler/CMakeFiles/lnic_compiler.dir/inline.cc.o.d"
  "/root/repo/src/compiler/isolation.cc" "src/compiler/CMakeFiles/lnic_compiler.dir/isolation.cc.o" "gcc" "src/compiler/CMakeFiles/lnic_compiler.dir/isolation.cc.o.d"
  "/root/repo/src/compiler/match_reduce.cc" "src/compiler/CMakeFiles/lnic_compiler.dir/match_reduce.cc.o" "gcc" "src/compiler/CMakeFiles/lnic_compiler.dir/match_reduce.cc.o.d"
  "/root/repo/src/compiler/pipeline.cc" "src/compiler/CMakeFiles/lnic_compiler.dir/pipeline.cc.o" "gcc" "src/compiler/CMakeFiles/lnic_compiler.dir/pipeline.cc.o.d"
  "/root/repo/src/compiler/stratify.cc" "src/compiler/CMakeFiles/lnic_compiler.dir/stratify.cc.o" "gcc" "src/compiler/CMakeFiles/lnic_compiler.dir/stratify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/microc/CMakeFiles/lnic_microc.dir/DependInfo.cmake"
  "/root/repo/build/src/p4/CMakeFiles/lnic_p4.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lnic_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
