file(REMOVE_RECURSE
  "CMakeFiles/lnic_compiler.dir/analysis.cc.o"
  "CMakeFiles/lnic_compiler.dir/analysis.cc.o.d"
  "CMakeFiles/lnic_compiler.dir/coalesce.cc.o"
  "CMakeFiles/lnic_compiler.dir/coalesce.cc.o.d"
  "CMakeFiles/lnic_compiler.dir/const_fold.cc.o"
  "CMakeFiles/lnic_compiler.dir/const_fold.cc.o.d"
  "CMakeFiles/lnic_compiler.dir/dce.cc.o"
  "CMakeFiles/lnic_compiler.dir/dce.cc.o.d"
  "CMakeFiles/lnic_compiler.dir/inline.cc.o"
  "CMakeFiles/lnic_compiler.dir/inline.cc.o.d"
  "CMakeFiles/lnic_compiler.dir/isolation.cc.o"
  "CMakeFiles/lnic_compiler.dir/isolation.cc.o.d"
  "CMakeFiles/lnic_compiler.dir/match_reduce.cc.o"
  "CMakeFiles/lnic_compiler.dir/match_reduce.cc.o.d"
  "CMakeFiles/lnic_compiler.dir/pipeline.cc.o"
  "CMakeFiles/lnic_compiler.dir/pipeline.cc.o.d"
  "CMakeFiles/lnic_compiler.dir/stratify.cc.o"
  "CMakeFiles/lnic_compiler.dir/stratify.cc.o.d"
  "liblnic_compiler.a"
  "liblnic_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lnic_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
