file(REMOVE_RECURSE
  "CMakeFiles/lnic_net.dir/network.cc.o"
  "CMakeFiles/lnic_net.dir/network.cc.o.d"
  "CMakeFiles/lnic_net.dir/packet.cc.o"
  "CMakeFiles/lnic_net.dir/packet.cc.o.d"
  "CMakeFiles/lnic_net.dir/trace.cc.o"
  "CMakeFiles/lnic_net.dir/trace.cc.o.d"
  "liblnic_net.a"
  "liblnic_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lnic_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
