file(REMOVE_RECURSE
  "liblnic_net.a"
)
