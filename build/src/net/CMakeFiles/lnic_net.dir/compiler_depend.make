# Empty compiler generated dependencies file for lnic_net.
# This may be replaced when dependencies are built.
