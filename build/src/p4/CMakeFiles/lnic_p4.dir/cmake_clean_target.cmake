file(REMOVE_RECURSE
  "liblnic_p4.a"
)
