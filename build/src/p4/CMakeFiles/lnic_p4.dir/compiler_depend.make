# Empty compiler generated dependencies file for lnic_p4.
# This may be replaced when dependencies are built.
