file(REMOVE_RECURSE
  "CMakeFiles/lnic_p4.dir/lower.cc.o"
  "CMakeFiles/lnic_p4.dir/lower.cc.o.d"
  "CMakeFiles/lnic_p4.dir/p4.cc.o"
  "CMakeFiles/lnic_p4.dir/p4.cc.o.d"
  "CMakeFiles/lnic_p4.dir/text.cc.o"
  "CMakeFiles/lnic_p4.dir/text.cc.o.d"
  "liblnic_p4.a"
  "liblnic_p4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lnic_p4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
