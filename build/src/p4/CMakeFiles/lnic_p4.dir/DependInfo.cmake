
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p4/lower.cc" "src/p4/CMakeFiles/lnic_p4.dir/lower.cc.o" "gcc" "src/p4/CMakeFiles/lnic_p4.dir/lower.cc.o.d"
  "/root/repo/src/p4/p4.cc" "src/p4/CMakeFiles/lnic_p4.dir/p4.cc.o" "gcc" "src/p4/CMakeFiles/lnic_p4.dir/p4.cc.o.d"
  "/root/repo/src/p4/text.cc" "src/p4/CMakeFiles/lnic_p4.dir/text.cc.o" "gcc" "src/p4/CMakeFiles/lnic_p4.dir/text.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/microc/CMakeFiles/lnic_microc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lnic_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
