file(REMOVE_RECURSE
  "CMakeFiles/lnic_common.dir/logging.cc.o"
  "CMakeFiles/lnic_common.dir/logging.cc.o.d"
  "CMakeFiles/lnic_common.dir/stats.cc.o"
  "CMakeFiles/lnic_common.dir/stats.cc.o.d"
  "liblnic_common.a"
  "liblnic_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lnic_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
