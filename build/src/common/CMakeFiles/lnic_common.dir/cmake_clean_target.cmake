file(REMOVE_RECURSE
  "liblnic_common.a"
)
