# Empty compiler generated dependencies file for lnic_common.
# This may be replaced when dependencies are built.
