# Empty dependencies file for fig9_optimizer.
# This may be replaced when dependencies are built.
