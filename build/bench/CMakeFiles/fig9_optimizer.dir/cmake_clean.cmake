file(REMOVE_RECURSE
  "CMakeFiles/fig9_optimizer.dir/fig9_optimizer.cc.o"
  "CMakeFiles/fig9_optimizer.dir/fig9_optimizer.cc.o.d"
  "fig9_optimizer"
  "fig9_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
