file(REMOVE_RECURSE
  "liblnic_bench_harness.a"
)
