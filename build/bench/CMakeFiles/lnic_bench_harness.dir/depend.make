# Empty dependencies file for lnic_bench_harness.
# This may be replaced when dependencies are built.
