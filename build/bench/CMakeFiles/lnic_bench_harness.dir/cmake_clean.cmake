file(REMOVE_RECURSE
  "CMakeFiles/lnic_bench_harness.dir/harness.cc.o"
  "CMakeFiles/lnic_bench_harness.dir/harness.cc.o.d"
  "liblnic_bench_harness.a"
  "liblnic_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lnic_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
