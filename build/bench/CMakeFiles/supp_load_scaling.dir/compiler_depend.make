# Empty compiler generated dependencies file for supp_load_scaling.
# This may be replaced when dependencies are built.
