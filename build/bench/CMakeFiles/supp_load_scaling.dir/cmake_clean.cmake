file(REMOVE_RECURSE
  "CMakeFiles/supp_load_scaling.dir/supp_load_scaling.cc.o"
  "CMakeFiles/supp_load_scaling.dir/supp_load_scaling.cc.o.d"
  "supp_load_scaling"
  "supp_load_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supp_load_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
