file(REMOVE_RECURSE
  "CMakeFiles/fig7_isolation_throughput.dir/fig7_isolation_throughput.cc.o"
  "CMakeFiles/fig7_isolation_throughput.dir/fig7_isolation_throughput.cc.o.d"
  "fig7_isolation_throughput"
  "fig7_isolation_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_isolation_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
