file(REMOVE_RECURSE
  "CMakeFiles/ablation_hotswap.dir/ablation_hotswap.cc.o"
  "CMakeFiles/ablation_hotswap.dir/ablation_hotswap.cc.o.d"
  "ablation_hotswap"
  "ablation_hotswap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hotswap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
