
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_hotswap.cc" "bench/CMakeFiles/ablation_hotswap.dir/ablation_hotswap.cc.o" "gcc" "bench/CMakeFiles/ablation_hotswap.dir/ablation_hotswap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/lnic_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lnic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/framework/CMakeFiles/lnic_framework.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/CMakeFiles/lnic_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/lnic_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/nicsim/CMakeFiles/lnic_nicsim.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/lnic_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/p4/CMakeFiles/lnic_p4.dir/DependInfo.cmake"
  "/root/repo/build/src/hostsim/CMakeFiles/lnic_hostsim.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/lnic_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/microc/CMakeFiles/lnic_microc.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/lnic_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/raft/CMakeFiles/lnic_raft.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lnic_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lnic_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lnic_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
