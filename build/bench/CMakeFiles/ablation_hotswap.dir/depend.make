# Empty dependencies file for ablation_hotswap.
# This may be replaced when dependencies are built.
