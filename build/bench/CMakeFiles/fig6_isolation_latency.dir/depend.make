# Empty dependencies file for fig6_isolation_latency.
# This may be replaced when dependencies are built.
