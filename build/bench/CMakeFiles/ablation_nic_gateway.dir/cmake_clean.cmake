file(REMOVE_RECURSE
  "CMakeFiles/ablation_nic_gateway.dir/ablation_nic_gateway.cc.o"
  "CMakeFiles/ablation_nic_gateway.dir/ablation_nic_gateway.cc.o.d"
  "ablation_nic_gateway"
  "ablation_nic_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nic_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
