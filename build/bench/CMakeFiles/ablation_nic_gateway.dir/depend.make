# Empty dependencies file for ablation_nic_gateway.
# This may be replaced when dependencies are built.
