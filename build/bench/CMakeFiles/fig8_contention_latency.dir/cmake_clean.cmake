file(REMOVE_RECURSE
  "CMakeFiles/fig8_contention_latency.dir/fig8_contention_latency.cc.o"
  "CMakeFiles/fig8_contention_latency.dir/fig8_contention_latency.cc.o.d"
  "fig8_contention_latency"
  "fig8_contention_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_contention_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
