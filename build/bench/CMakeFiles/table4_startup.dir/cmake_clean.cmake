file(REMOVE_RECURSE
  "CMakeFiles/table4_startup.dir/table4_startup.cc.o"
  "CMakeFiles/table4_startup.dir/table4_startup.cc.o.d"
  "table4_startup"
  "table4_startup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
