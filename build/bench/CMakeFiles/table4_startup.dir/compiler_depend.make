# Empty compiler generated dependencies file for table4_startup.
# This may be replaced when dependencies are built.
