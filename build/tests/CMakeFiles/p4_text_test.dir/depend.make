# Empty dependencies file for p4_text_test.
# This may be replaced when dependencies are built.
