file(REMOVE_RECURSE
  "CMakeFiles/p4_text_test.dir/p4_text_test.cc.o"
  "CMakeFiles/p4_text_test.dir/p4_text_test.cc.o.d"
  "p4_text_test"
  "p4_text_test.pdb"
  "p4_text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p4_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
