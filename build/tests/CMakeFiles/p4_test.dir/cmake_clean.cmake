file(REMOVE_RECURSE
  "CMakeFiles/p4_test.dir/p4_test.cc.o"
  "CMakeFiles/p4_test.dir/p4_test.cc.o.d"
  "p4_test"
  "p4_test.pdb"
  "p4_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p4_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
