file(REMOVE_RECURSE
  "CMakeFiles/nicsim_test.dir/nicsim_test.cc.o"
  "CMakeFiles/nicsim_test.dir/nicsim_test.cc.o.d"
  "nicsim_test"
  "nicsim_test.pdb"
  "nicsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nicsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
