# Empty dependencies file for hostsim_test.
# This may be replaced when dependencies are built.
