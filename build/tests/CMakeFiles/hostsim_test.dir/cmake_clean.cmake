file(REMOVE_RECURSE
  "CMakeFiles/hostsim_test.dir/hostsim_test.cc.o"
  "CMakeFiles/hostsim_test.dir/hostsim_test.cc.o.d"
  "hostsim_test"
  "hostsim_test.pdb"
  "hostsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hostsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
