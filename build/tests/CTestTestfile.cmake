# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/microc_test[1]_include.cmake")
include("/root/repo/build/tests/p4_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/raft_test[1]_include.cmake")
include("/root/repo/build/tests/kvstore_test[1]_include.cmake")
include("/root/repo/build/tests/nicsim_test[1]_include.cmake")
include("/root/repo/build/tests/hostsim_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/backends_test[1]_include.cmake")
include("/root/repo/build/tests/framework_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/passes_test[1]_include.cmake")
include("/root/repo/build/tests/p4_text_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
