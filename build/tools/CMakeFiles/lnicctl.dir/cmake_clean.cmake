file(REMOVE_RECURSE
  "CMakeFiles/lnicctl.dir/lnicctl.cc.o"
  "CMakeFiles/lnicctl.dir/lnicctl.cc.o.d"
  "lnicctl"
  "lnicctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lnicctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
