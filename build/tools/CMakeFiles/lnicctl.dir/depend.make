# Empty dependencies file for lnicctl.
# This may be replaced when dependencies are built.
