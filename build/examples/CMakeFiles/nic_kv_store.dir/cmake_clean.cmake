file(REMOVE_RECURSE
  "CMakeFiles/nic_kv_store.dir/nic_kv_store.cpp.o"
  "CMakeFiles/nic_kv_store.dir/nic_kv_store.cpp.o.d"
  "nic_kv_store"
  "nic_kv_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_kv_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
