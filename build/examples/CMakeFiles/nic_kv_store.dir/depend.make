# Empty dependencies file for nic_kv_store.
# This may be replaced when dependencies are built.
