file(REMOVE_RECURSE
  "CMakeFiles/custom_lambda.dir/custom_lambda.cpp.o"
  "CMakeFiles/custom_lambda.dir/custom_lambda.cpp.o.d"
  "custom_lambda"
  "custom_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
