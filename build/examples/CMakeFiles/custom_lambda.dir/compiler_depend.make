# Empty compiler generated dependencies file for custom_lambda.
# This may be replaced when dependencies are built.
