file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_web.dir/multi_tenant_web.cpp.o"
  "CMakeFiles/multi_tenant_web.dir/multi_tenant_web.cpp.o.d"
  "multi_tenant_web"
  "multi_tenant_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
