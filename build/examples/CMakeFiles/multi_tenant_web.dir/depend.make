# Empty dependencies file for multi_tenant_web.
# This may be replaced when dependencies are built.
