#!/usr/bin/env python3
"""Validate an exported Chrome trace_event JSON file.

Usage: check_trace.py <trace.json> [--timeline]

Checks that the file parses, contains trace events, and holds at least
one *complete span tree*: a trace (pid) whose spans connect into one
tree rooted at a gateway request span, reaching both the transport
(rpc.*) and an execution span (nic.* / host.*). Exit code 0 on success.

With --timeline the file is a merged Perfetto export (lnicctl
timeline) and two more track families are required:
  - shard tracks: "shard.window" spans on the synthetic shard pid,
    each carrying busy_ns/barrier_ns/wall_ns args plus an extension
    source tag ("floor" for static-lookahead windows, "eot" for
    adaptively extended ones);
  - NPU tracks: at least one "nic:" process with thread metadata and
    busy spans;
and every nic.execute span must carry a tenant arg when any does
(tenant-annotated runs annotate uniformly).
"""
import json
import sys
from collections import defaultdict


def fail(message):
    print(f"check_trace: FAIL: {message}")
    sys.exit(1)


def check_timeline(events):
    """Validates the shard and NPU track families of a merged export."""
    shard_threads = set()
    shard_windows = 0
    eot_windows = 0
    nic_processes = set()
    nic_spans = 0
    for event in events:
        name = event.get("name", "")
        args = event.get("args", {})
        if event.get("ph") == "M":
            if name == "thread_name" and str(args.get("name", "")).startswith(
                    "shard "):
                shard_threads.add((event.get("pid"), event.get("tid")))
            if name == "process_name" and str(args.get("name", "")).startswith(
                    "nic:"):
                nic_processes.add(event.get("pid"))
            continue
        if event.get("ph") != "X":
            continue
        if name == "shard.window":
            for key in ("busy_ns", "barrier_ns", "wall_ns", "extension"):
                if key not in args:
                    fail(f"shard.window span missing args.{key}")
            if args["extension"] not in ("floor", "eot"):
                fail(f"shard.window extension must be 'floor' or 'eot', "
                     f"got {args['extension']!r}")
            if event.get("ts") is None or event.get("dur") is None:
                fail("shard.window span missing ts/dur")
            shard_windows += 1
            if args["extension"] == "eot":
                eot_windows += 1
    for event in events:
        if event.get("ph") == "X" and event.get("pid") in nic_processes:
            nic_spans += 1
    if not shard_threads:
        fail("timeline has no shard thread tracks")
    if shard_windows < 1:
        fail("timeline has no shard.window spans")
    if not nic_processes:
        fail("timeline has no nic:<name> processes")
    if nic_spans < 1:
        fail("timeline nic processes carry no busy spans")

    # Tenant annotations: if any nic.execute span has args.tenant, all
    # must (a tenant-namespaced run annotates every execution).
    executes = [e for e in events
                if e.get("ph") == "X" and e.get("name") == "nic.execute"]
    tenanted = [e for e in executes if "tenant" in e.get("args", {})]
    if tenanted and len(tenanted) != len(executes):
        fail(f"only {len(tenanted)}/{len(executes)} nic.execute spans "
             f"carry a tenant arg")
    print(f"check_trace: timeline OK ({len(shard_threads)} shard track(s), "
          f"{shard_windows} windows ({eot_windows} EOT-extended), "
          f"{len(nic_processes)} nic process(es), "
          f"{nic_spans} npu spans, {len(tenanted)} tenant-annotated "
          f"executions)")


def main():
    args = [a for a in sys.argv[1:] if a != "--timeline"]
    timeline = "--timeline" in sys.argv[1:]
    if len(args) != 1:
        print(__doc__)
        sys.exit(2)
    path = args[0]
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot parse {path}: {err}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("no traceEvents array")

    if timeline:
        check_timeline(events)

    # Group complete ("X") events by trace (pid), keyed by span id.
    traces = defaultdict(dict)
    for event in events:
        if event.get("ph") != "X":
            continue
        args = event.get("args", {})
        span = args.get("span_id")
        if span is None:
            continue
        traces[event.get("pid")][str(span)] = {
            "name": event.get("name", ""),
            "parent": str(args.get("parent", "0")),
            "ts": event.get("ts"),
            "dur": event.get("dur"),
        }

    if not traces:
        fail("no complete (ph=X) span events")

    complete_trees = 0
    for pid, spans in traces.items():
        roots = [s for s in spans.values() if s["parent"] not in spans]
        if len(roots) != 1:
            continue  # disconnected or multi-rooted
        names = {s["name"] for s in spans.values()}
        has_gateway = any(n == "request" or n.startswith("gateway.")
                          for n in names)
        has_transport = any(n.startswith("rpc.") for n in names)
        has_execute = any(n.startswith(("nic.", "host.")) for n in names)
        if not (has_gateway and has_transport and has_execute):
            continue
        if any(s["ts"] is None or s["dur"] is None for s in spans.values()):
            fail(f"trace {pid}: span missing ts/dur")
        complete_trees += 1
        print(f"check_trace: trace {pid}: {len(spans)} spans, "
              f"{len(names)} kinds, root '{roots[0]['name']}'")

    if complete_trees < 1:
        fail("no complete span tree (gateway -> rpc -> execution)")
    print(f"check_trace: OK ({complete_trees} complete span tree(s) "
          f"across {len(traces)} trace(s))")


if __name__ == "__main__":
    main()
