#!/usr/bin/env python3
"""Validate an exported Chrome trace_event JSON file.

Usage: check_trace.py <trace.json>

Checks that the file parses, contains trace events, and holds at least
one *complete span tree*: a trace (pid) whose spans connect into one
tree rooted at a gateway request span, reaching both the transport
(rpc.*) and an execution span (nic.* / host.*). Exit code 0 on success.
"""
import json
import sys
from collections import defaultdict


def fail(message):
    print(f"check_trace: FAIL: {message}")
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        sys.exit(2)
    path = sys.argv[1]
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot parse {path}: {err}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("no traceEvents array")

    # Group complete ("X") events by trace (pid), keyed by span id.
    traces = defaultdict(dict)
    for event in events:
        if event.get("ph") != "X":
            continue
        args = event.get("args", {})
        span = args.get("span_id")
        if span is None:
            continue
        traces[event.get("pid")][str(span)] = {
            "name": event.get("name", ""),
            "parent": str(args.get("parent", "0")),
            "ts": event.get("ts"),
            "dur": event.get("dur"),
        }

    if not traces:
        fail("no complete (ph=X) span events")

    complete_trees = 0
    for pid, spans in traces.items():
        roots = [s for s in spans.values() if s["parent"] not in spans]
        if len(roots) != 1:
            continue  # disconnected or multi-rooted
        names = {s["name"] for s in spans.values()}
        has_gateway = any(n == "request" or n.startswith("gateway.")
                          for n in names)
        has_transport = any(n.startswith("rpc.") for n in names)
        has_execute = any(n.startswith(("nic.", "host.")) for n in names)
        if not (has_gateway and has_transport and has_execute):
            continue
        if any(s["ts"] is None or s["dur"] is None for s in spans.values()):
            fail(f"trace {pid}: span missing ts/dur")
        complete_trees += 1
        print(f"check_trace: trace {pid}: {len(spans)} spans, "
              f"{len(names)} kinds, root '{roots[0]['name']}'")

    if complete_trees < 1:
        fail("no complete span tree (gateway -> rpc -> execution)")
    print(f"check_trace: OK ({complete_trees} complete span tree(s) "
          f"across {len(traces)} trace(s))")


if __name__ == "__main__":
    main()
