// lnicctl — the λ-NIC developer command-line tool.
//
// Drives the full Listing 1-3 workflow on files:
//
//   lnicctl compile lambda.mc --p4 match.p4 -o firmware.lnfw [--no-opt]
//       Compile Micro-C source (+ a P4 match spec) into a firmware
//       artifact; prints the per-stage code sizes (the Fig. 9 series).
//
//   lnicctl disasm firmware.lnfw
//       Disassemble a firmware artifact (objects, parser, functions).
//
//   lnicctl run firmware.lnfw --wid N [--op X] [--key K] [--value V]
//               [--cost npu|host|python]
//       Execute one invocation against the artifact and print the
//       response, return code, and cycle/latency accounting.
//
//   lnicctl trace <web|kv|image> [--requests N] [--retransmit]
//                 [--backend nic|baremetal|container] [--out trace.json]
//       Run traced requests through an in-process cluster and write the
//       Chrome trace_event JSON plus a critical-path breakdown.
//
//   lnicctl metrics [--requests N] [--backend nic|baremetal|container]
//                   [--filter <prefix>]
//       Run a short workload and print the Prometheus exposition of the
//       gateway and monitoring-engine registries (incl. NPU-grid and
//       sim_shard_* gauges). --filter keeps only series whose name
//       starts with the prefix.
//
//   lnicctl flightrec [--requests N]
//       Run a short workload through an overloaded, lossy cluster and
//       dump the flight recorder's anomaly ring (sheds, quarantines,
//       RTO backoffs) — the "what went wrong just before" view.
//
//   lnicctl timeline [--requests N] [--shards N] [--adaptive]
//                    [--tenant <name>] [--out timeline.json]
//       Run traced requests and write the unified Perfetto timeline:
//       request spans, per-NPU busy tracks, and shard window tracks in
//       one JSON, all on the simulated-time axis. With --tenant the
//       bundle deploys tenant-namespaced, so nic.*/host.* spans carry
//       tenant annotations.
//
//   lnicctl loadgen poisson [--rate R] [--duration-ms D] [--functions N]
//                   [--zipf S] [--deadline-us U] [--backend ...]
//       Drive open-loop Poisson load, Zipf-distributed over N function
//       aliases, through a live cluster; print the SLO report and the
//       offered-load gauges.
//
//   lnicctl loadgen trace <file> [--deadline-us U] [--expect N]
//                   [--backend ...]
//       Replay a recorded/synthesized trace open-loop; with --expect,
//       fail unless exactly N requests were offered.
//
//   lnicctl loadgen synth [--out <file>] [--pattern constant|diurnal|burst]
//                   [--duration-ms D] [--rate R] [--peak P] [--functions N]
//                   [--zipf S] [--seed X]
//       Synthesize a deterministic trace file in the lnic-trace format.
//
//   lnicctl kv [--mix A..F|tpcc] [--proto no_wait|wait_die] [--txns N]
//              [--zipf S] [--cache N] [--rate R] [--seed X] [--shards N]
//              [--metrics]
//       Drive one transactional-store cell (YCSB mix or TPC-C-lite
//       new-order) through the NIC-resident TxnStore's networked path
//       and print commit/abort/latency/cache rows; with --metrics, also
//       the kv_* series as the monitoring engine exports them.
//
// Exit codes: 0 success, 1 usage error, 2 compile/run failure.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/flightrec.h"
#include "common/stats.h"
#include "common/trace.h"
#include "compiler/pipeline.h"
#include "core/cluster.h"
#include "framework/monitor.h"
#include "framework/timeline.h"
#include "kvstore/txn.h"
#include "kvstore/workload.h"
#include "loadgen/arrival.h"
#include "loadgen/generator.h"
#include "microc/disasm.h"
#include "microc/frontend.h"
#include "microc/interp.h"
#include "microc/serialize.h"
#include "net/trace.h"
#include "p4/text.h"
#include "workloads/lambdas.h"

using namespace lnic;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  lnicctl compile <lambda.mc> [--p4 <match.p4>] "
               "[-o <out.lnfw>] [--no-opt]\n"
               "  lnicctl disasm <firmware.lnfw>\n"
               "  lnicctl run <firmware.lnfw> --wid N [--op X] [--key K] "
               "[--value V] [--cost npu|host|python]\n"
               "  lnicctl trace <web|kv|image> [--requests N] [--retransmit] "
               "[--backend nic|baremetal|container] [--shards N] "
               "[--out trace.json]\n"
               "  lnicctl metrics [--requests N] "
               "[--backend nic|baremetal|container] [--shards N] "
               "[--filter <prefix>]\n"
               "  lnicctl flightrec [--requests N]\n"
               "  lnicctl timeline [--requests N] [--shards N] [--adaptive] "
               "[--tenant <name>] [--out timeline.json]\n"
               "  lnicctl loadgen poisson [--rate R] [--duration-ms D] "
               "[--functions N] [--zipf S]\n"
               "                  [--deadline-us U] [--backend ...] "
               "[--shards N]\n"
               "  lnicctl loadgen trace <file> [--deadline-us U] "
               "[--expect N] [--backend ...] [--shards N]\n"
               "  lnicctl loadgen synth [--out <file>] "
               "[--pattern constant|diurnal|burst]\n"
               "                  [--duration-ms D] [--rate R] [--peak P] "
               "[--functions N] [--zipf S] [--seed X]\n"
               "  lnicctl kv [--mix A..F|tpcc] [--proto no_wait|wait_die] "
               "[--txns N] [--zipf S]\n"
               "             [--cache N] [--rate R] [--seed X] [--shards N] "
               "[--metrics]\n");
  return 1;
}

Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return make_error("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Result<std::vector<std::uint8_t>> read_binary(const std::string& path) {
  auto text = read_file(path);
  if (!text.ok()) return text.error();
  return std::vector<std::uint8_t>(text.value().begin(), text.value().end());
}

bool write_binary(const std::string& path,
                  const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

// Simple flag map: --name value pairs after the positional arguments.
std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0 || arg == "-o") {
      const std::string key = arg == "-o" ? "--out" : arg;
      if (key == "--no-opt" || key == "--retransmit" || key == "--metrics" ||
          key == "--adaptive") {
        flags[key] = "1";
      } else if (i + 1 < argc) {
        flags[key] = argv[++i];
      } else {
        flags[key] = "";
      }
    }
  }
  return flags;
}

// Cluster commands accept `--shards N`: event shards for the simulated
// cluster (1 = the exact single-threaded legacy schedule).
unsigned flag_shards(const std::map<std::string, std::string>& flags) {
  const auto it = flags.find("--shards");
  if (it == flags.end() || it->second.empty()) return 1;
  return static_cast<unsigned>(std::stoul(it->second));
}

int cmd_compile(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string source_path = argv[2];
  auto flags = parse_flags(argc, argv, 3);

  auto source = read_file(source_path);
  if (!source.ok()) {
    std::fprintf(stderr, "error: %s\n", source.error().message.c_str());
    return 2;
  }
  auto program = microc::compile_microc(source.value(), source_path);
  if (!program.ok()) {
    std::fprintf(stderr, "error: %s\n", program.error().message.c_str());
    return 2;
  }
  std::fprintf(stderr, "compiled %zu function(s), %zu object(s)\n",
               program.value().functions.size(),
               program.value().objects.size());

  p4::MatchSpec spec;
  if (flags.count("--p4")) {
    auto p4_source = read_file(flags["--p4"]);
    if (!p4_source.ok()) {
      std::fprintf(stderr, "error: %s\n", p4_source.error().message.c_str());
      return 2;
    }
    auto parsed = p4::parse_p4(p4_source.value());
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n", parsed.error().message.c_str());
      return 2;
    }
    spec = std::move(parsed).value();
  } else {
    // Default match spec: one table entry per function, workload IDs
    // assigned in declaration order starting at 1.
    WorkloadId wid = 1;
    for (const auto& fn : program.value().functions) {
      spec.tables.push_back(p4::make_lambda_table(fn.name, wid++));
    }
  }

  compiler::Options options;
  if (flags.count("--no-opt")) options = compiler::Options::none();
  auto compiled = compiler::compile(spec, std::move(program).value(), options);
  if (!compiled.ok()) {
    std::fprintf(stderr, "error: %s\n", compiled.error().message.c_str());
    return 2;
  }
  for (const auto& stage : compiled.value().stages) {
    std::fprintf(stderr, "  %-24s %6llu words\n", stage.stage.c_str(),
                 static_cast<unsigned long long>(stage.code_words));
  }

  const std::string out_path =
      flags.count("--out") ? flags["--out"] : source_path + ".lnfw";
  const auto bytes = microc::serialize(compiled.value().program);
  if (!write_binary(out_path, bytes)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
    return 2;
  }
  std::fprintf(stderr, "wrote %s (%zu bytes)\n", out_path.c_str(),
               bytes.size());
  return 0;
}

int cmd_disasm(int argc, char** argv) {
  if (argc < 3) return usage();
  auto bytes = read_binary(argv[2]);
  if (!bytes.ok()) {
    std::fprintf(stderr, "error: %s\n", bytes.error().message.c_str());
    return 2;
  }
  auto program = microc::deserialize(bytes.value());
  if (!program.ok()) {
    std::fprintf(stderr, "error: %s\n", program.error().message.c_str());
    return 2;
  }
  std::fputs(microc::disassemble(program.value()).c_str(), stdout);
  return 0;
}

int cmd_run(int argc, char** argv) {
  if (argc < 3) return usage();
  auto flags = parse_flags(argc, argv, 3);
  if (!flags.count("--wid")) return usage();

  auto bytes = read_binary(argv[2]);
  if (!bytes.ok()) {
    std::fprintf(stderr, "error: %s\n", bytes.error().message.c_str());
    return 2;
  }
  auto program = microc::deserialize(bytes.value());
  if (!program.ok()) {
    std::fprintf(stderr, "error: %s\n", program.error().message.c_str());
    return 2;
  }

  microc::CostModel cost = microc::CostModel::npu();
  const std::string cost_name =
      flags.count("--cost") ? flags["--cost"] : "npu";
  if (cost_name == "host") cost = microc::CostModel::host_native();
  else if (cost_name == "python") cost = microc::CostModel::host_python();
  else if (cost_name != "npu") return usage();

  microc::Invocation inv;
  auto num = [&](const char* key) -> std::uint64_t {
    return flags.count(key) ? std::stoull(flags[key]) : 0;
  };
  inv.headers.fields[microc::kHdrWorkloadId] = num("--wid");
  inv.headers.fields[microc::kHdrOp] = num("--op");
  inv.headers.fields[microc::kHdrKey] = num("--key");
  inv.headers.fields[microc::kHdrValue] = num("--value");
  inv.match_data = {1};

  microc::ObjectStore store(program.value());
  microc::Machine machine(program.value(), cost, &store);
  microc::Outcome out = machine.run(inv);
  while (out.state == microc::RunState::kYield) {
    std::fprintf(stderr, "[ext call %s key=%llu value=%llu -> replying 0]\n",
                 out.ext.kind == 0 ? "GET" : "SET",
                 static_cast<unsigned long long>(out.ext.key),
                 static_cast<unsigned long long>(out.ext.value));
    out = machine.resume(0);
  }
  if (out.state == microc::RunState::kTrap) {
    std::fprintf(stderr, "trap: %s\n", out.trap_message.c_str());
    return 2;
  }
  std::printf("return: %llu\n",
              static_cast<unsigned long long>(out.return_value));
  std::printf("cycles: %llu (%.3f us at %s)\n",
              static_cast<unsigned long long>(out.cycles),
              to_us(cost.cycles_to_duration(out.cycles)), cost_name.c_str());
  std::printf("response (%zu bytes):", out.response.size());
  for (std::size_t i = 0; i < out.response.size() && i < 64; ++i) {
    std::printf(" %02x", out.response[i]);
  }
  if (out.response.size() > 64) std::printf(" ...");
  std::printf("\n");
  return 0;
}

bool parse_backend(const std::map<std::string, std::string>& flags,
                   backends::BackendKind* kind) {
  const auto it = flags.find("--backend");
  if (it == flags.end() || it->second == "nic") {
    *kind = backends::BackendKind::kLambdaNic;
  } else if (it->second == "baremetal") {
    *kind = backends::BackendKind::kBareMetal;
  } else if (it->second == "container") {
    *kind = backends::BackendKind::kContainer;
  } else {
    return false;
  }
  return true;
}

/// The request one trace/metrics scenario issues per iteration.
struct Scenario {
  std::string function;
  std::vector<std::uint8_t> payload;
};

Result<Scenario> make_scenario(const std::string& name, int iteration) {
  if (name == "web") {
    return Scenario{"web_server",
                    workloads::encode_web_request(iteration & 3)};
  }
  if (name == "kv") {
    return Scenario{"kv_client_get",
                    workloads::encode_kv_request(7 + iteration)};
  }
  if (name == "image") {
    // 64x64 RGBA (16 KiB): a multi-fragment RDMA-write request.
    const std::vector<std::uint8_t> rgba(64 * 64 * 4, 0x5A);
    return Scenario{"image_transformer",
                    workloads::encode_image_request(64, 64, rgba)};
  }
  return make_error("unknown scenario '" + name + "' (web|kv|image)");
}

int cmd_trace(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string scenario_name = argv[2];
  auto flags = parse_flags(argc, argv, 3);
  const int requests =
      flags.count("--requests") ? std::stoi(flags["--requests"]) : 1;
  const std::string out_path =
      flags.count("--out") ? flags["--out"] : "trace.json";

  core::ClusterConfig config;
  config.workers = 2;
  config.shards = flag_shards(flags);
  if (!parse_backend(flags, &config.backend)) return usage();
  core::Cluster cluster(config);

  trace::TraceRecorder recorder;
  cluster.gateway().set_tracer(&recorder);
  for (std::size_t i = 0; i < cluster.worker_count(); ++i) {
    cluster.worker(i).set_tracer(&recorder);
  }

  auto deployed = cluster.deploy(workloads::make_standard_workloads());
  if (!deployed.ok()) {
    std::fprintf(stderr, "error: %s\n", deployed.error().message.c_str());
    return 2;
  }
  cluster.wait_until_ready();

  for (int i = 0; i < requests; ++i) {
    auto scenario = make_scenario(scenario_name, i);
    if (!scenario.ok()) {
      std::fprintf(stderr, "error: %s\n", scenario.error().message.c_str());
      return usage();
    }
    if (flags.count("--retransmit") && i == 0) {
      // Drop everything for 10 ms so the first attempt (and all its
      // fragments) vanish; the retransmission timer then resends into a
      // healthy fabric, yielding a trace with a timed-out rpc.attempt.
      cluster.network().set_faults(net::FaultConfig{.drop_probability = 1.0});
      cluster.sim().schedule(milliseconds(10), [&cluster] {
        cluster.network().set_faults(net::FaultConfig{});
      });
    }
    auto response = cluster.invoke_and_wait(scenario.value().function,
                                            scenario.value().payload);
    if (!response.ok()) {
      std::fprintf(stderr, "request %d failed: %s\n", i,
                   response.error().message.c_str());
      return 2;
    }
    std::printf("request %d: %s ok, latency %.1f us, retries %u\n", i,
                scenario.value().function.c_str(),
                to_us(response.value().latency), response.value().retries);
  }

  for (const auto trace_id : recorder.trace_ids()) {
    std::fputs(recorder.critical_path_summary(trace_id).c_str(), stdout);
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
    return 2;
  }
  out << recorder.to_chrome_json();
  std::printf("wrote %s (%zu spans, %llu dropped)\n", out_path.c_str(),
              recorder.size(),
              static_cast<unsigned long long>(recorder.dropped()));
  return 0;
}

int cmd_metrics(int argc, char** argv) {
  auto flags = parse_flags(argc, argv, 2);
  const int requests =
      flags.count("--requests") ? std::stoi(flags["--requests"]) : 20;

  core::ClusterConfig config;
  config.workers = 2;
  config.shards = flag_shards(flags);
  if (!parse_backend(flags, &config.backend)) return usage();
  core::Cluster cluster(config);

  net::PacketTracer packet_tracer;
  cluster.network().set_tracer(&packet_tracer);

  framework::Monitor monitor(cluster.sim(), milliseconds(100));
  for (std::size_t i = 0; i < cluster.worker_count(); ++i) {
    auto* backend = &cluster.worker(i);
    if (auto* nic = dynamic_cast<backends::LambdaNicBackend*>(backend)) {
      nic->nic().enable_profiler();
    }
    monitor.watch_backend("worker" + std::to_string(i), backend);
  }
  monitor.watch_gateway(&cluster.gateway());
  monitor.watch_sharded(&cluster.sharded());
  monitor.watch_packet_tracer(&packet_tracer);

  auto deployed = cluster.deploy(workloads::make_standard_workloads());
  if (!deployed.ok()) {
    std::fprintf(stderr, "error: %s\n", deployed.error().message.c_str());
    return 2;
  }
  cluster.wait_until_ready();
  monitor.start();

  const char* mix[] = {"web_server", "kv_client_set", "kv_client_get"};
  for (int i = 0; i < requests; ++i) {
    const std::string fn = mix[i % 3];
    auto payload = fn == "web_server"
                       ? workloads::encode_web_request(i & 3)
                       : workloads::encode_kv_request(i, i * 3);
    auto response = cluster.invoke_and_wait(fn, payload);
    if (!response.ok()) {
      std::fprintf(stderr, "request %d (%s) failed: %s\n", i, fn.c_str(),
                   response.error().message.c_str());
      return 2;
    }
  }
  monitor.scrape();

  // --filter keeps only series whose *name* starts with the prefix
  // (labels and values ride along), e.g. --filter sim_shard_ or
  // --filter nic_tenant_.
  const std::string filter =
      flags.count("--filter") ? flags["--filter"] : "";
  const auto print_registry = [&](const char* title,
                                  const std::string& rendered) {
    std::printf("# %s\n", title);
    if (filter.empty()) {
      std::fputs(rendered.c_str(), stdout);
      return;
    }
    std::istringstream in(rendered);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind(filter, 0) == 0) std::printf("%s\n", line.c_str());
    }
  };
  print_registry("gateway registry", cluster.gateway().metrics().render());
  print_registry("monitor registry", monitor.metrics().render());
  return 0;
}

int cmd_flightrec(int argc, char** argv) {
  auto flags = parse_flags(argc, argv, 2);
  const int requests =
      flags.count("--requests") ? std::stoi(flags["--requests"]) : 24;

  // Clean slate so the dump shows only this run's anomalies.
  flightrec::FlightRecorder::global().clear();

  core::ClusterConfig config;
  config.workers = 2;
  // A deliberately tight limiter so the flood below sheds: 2 requests in
  // flight per function, 4 queued, 5 ms queue deadline, rest rejected.
  config.gateway.max_inflight_per_function = 2;
  config.gateway.max_queue_depth = 4;
  config.gateway.queue_deadline = milliseconds(5);
  core::Cluster cluster(config);

  auto deployed = cluster.deploy(workloads::make_standard_workloads());
  if (!deployed.ok()) {
    std::fprintf(stderr, "error: %s\n", deployed.error().message.c_str());
    return 2;
  }
  cluster.wait_until_ready();

  int done = 0;
  int failed = 0;
  const auto count = [&](Result<proto::RpcResponse> response) {
    ++done;
    if (!response.ok()) ++failed;
  };

  // Phase 1: flood the limiter — queue-full and deadline sheds — then
  // let the admitted requests resolve in a healthy fabric.
  for (int i = 0; i < requests; ++i) {
    cluster.invoke("web_server", workloads::encode_web_request(i & 3), count);
  }
  cluster.sim().run_until(cluster.sim().now() + milliseconds(200));
  // Phase 2: one request into a black-holed fabric — retransmission
  // backoff until the RPC gives up, then a worker quarantine.
  cluster.network().set_faults(net::FaultConfig{.drop_probability = 1.0});
  cluster.invoke("web_server", workloads::encode_web_request(0), count);

  const SimTime deadline = cluster.sim().now() + seconds(600);
  while (done < requests + 1 && cluster.sim().now() < deadline) {
    cluster.sim().run_until(cluster.sim().now() + milliseconds(50));
  }

  std::printf("%d request(s) resolved: %d ok, %d failed (by design)\n\n",
              done, done - failed, failed);
  std::fputs(flightrec::FlightRecorder::global().dump().c_str(), stdout);
  return 0;
}

int cmd_timeline(int argc, char** argv) {
  auto flags = parse_flags(argc, argv, 2);
  const int requests =
      flags.count("--requests") ? std::stoi(flags["--requests"]) : 12;
  const std::string out_path =
      flags.count("--out") ? flags["--out"] : "timeline.json";

  core::ClusterConfig config;
  config.workers = 2;
  // Default to 2 shards so the timeline includes shard window tracks.
  config.shards = flags.count("--shards") ? flag_shards(flags) : 2;
  // --adaptive: EOT window extension + shard-affinity routing, so the
  // exported shard.window spans can carry extension="eot".
  if (flags.count("--adaptive")) {
    config.adaptive_sync = true;
    config.shard_affinity_routing = true;
  }
  if (!parse_backend(flags, &config.backend)) return usage();
  core::Cluster cluster(config);

  trace::TraceRecorder recorder;
  cluster.gateway().set_tracer(&recorder);
  std::vector<std::pair<std::string, const nicsim::SmartNic*>> nics;
  for (std::size_t i = 0; i < cluster.worker_count(); ++i) {
    cluster.worker(i).set_tracer(&recorder);
    auto* nic = dynamic_cast<backends::LambdaNicBackend*>(&cluster.worker(i));
    if (nic != nullptr) {
      nic->nic().enable_profiler();
      nics.emplace_back("worker" + std::to_string(i), &nic->nic());
    }
  }

  const std::string tenant =
      flags.count("--tenant") ? flags["--tenant"] : "";
  auto deployed =
      tenant.empty()
          ? cluster.deploy(workloads::make_standard_workloads())
          : cluster.deploy(workloads::make_standard_workloads(), tenant);
  if (!deployed.ok()) {
    std::fprintf(stderr, "error: %s\n", deployed.error().message.c_str());
    return 2;
  }
  cluster.wait_until_ready();

  const char* mix[] = {"web_server", "kv_client_set", "kv_client_get"};
  const std::string prefix = tenant.empty() ? "" : tenant + "/";
  for (int i = 0; i < requests; ++i) {
    const std::string fn = prefix + mix[i % 3];
    auto payload = fn == "web_server"
                       ? workloads::encode_web_request(i & 3)
                       : workloads::encode_kv_request(i, i * 3);
    auto response = cluster.invoke_and_wait(fn, payload);
    if (!response.ok()) {
      std::fprintf(stderr, "request %d (%s) failed: %s\n", i, fn.c_str(),
                   response.error().message.c_str());
      return 2;
    }
  }

  framework::TimelineInputs inputs;
  inputs.tracer = &recorder;
  inputs.nics = std::move(nics);
  inputs.sharded = &cluster.sharded();
  const std::string json = framework::export_timeline(inputs);
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
    return 2;
  }
  out << json;
  std::printf("wrote %s (%zu bytes: %zu request spans, %zu nic(s), "
              "%llu shard windows)\n",
              out_path.c_str(), json.size(), recorder.size(),
              inputs.nics.size(),
              static_cast<unsigned long long>(
                  cluster.sharded().windows_executed()));
  return 0;
}

// ---------------------------------------------------------------- loadgen

double flag_double(const std::map<std::string, std::string>& flags,
                   const char* key, double fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : std::stod(it->second);
}

std::uint64_t flag_u64(const std::map<std::string, std::string>& flags,
                       const char* key, std::uint64_t fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : std::stoull(it->second);
}

int cmd_loadgen_synth(const std::map<std::string, std::string>& flags) {
  loadgen::SynthSpec spec;
  const std::string pattern =
      flags.count("--pattern") ? flags.at("--pattern") : "burst";
  if (pattern == "constant") {
    spec.pattern = loadgen::SynthPattern::kConstant;
  } else if (pattern == "diurnal") {
    spec.pattern = loadgen::SynthPattern::kDiurnal;
  } else if (pattern == "burst") {
    spec.pattern = loadgen::SynthPattern::kBurst;
  } else {
    return usage();
  }
  spec.duration = milliseconds(
      static_cast<std::int64_t>(flag_u64(flags, "--duration-ms", 1000)));
  spec.base_rps = flag_double(flags, "--rate", 1000.0);
  spec.peak_rps = flag_double(flags, "--peak", 4.0 * spec.base_rps);
  spec.functions = flag_u64(flags, "--functions", 8);
  spec.zipf_s = flag_double(flags, "--zipf", 0.9);
  spec.seed = flag_u64(flags, "--seed", 1);

  const auto events = loadgen::synthesize(spec);
  const std::string out_path =
      flags.count("--out") ? flags.at("--out") : "loadgen.trace";
  if (!loadgen::write_trace_file(out_path, events)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
    return 2;
  }
  std::printf("wrote %s (%zu events, %s, %.0f-%.0f rps, %zu functions)\n",
              out_path.c_str(), events.size(), pattern.c_str(),
              spec.base_rps, spec.peak_rps, spec.functions);
  return 0;
}

/// Shared driver for `loadgen poisson` and `loadgen trace`: a 2-worker
/// cluster with every requested function aliased onto the web-server
/// lambda (so requests really execute), open-loop load through the
/// gateway, SLO report + offered-load gauges on stdout.
int run_loadgen(const std::map<std::string, std::string>& flags,
                const std::vector<std::string>& functions,
                std::function<std::unique_ptr<loadgen::LoadGenerator>(
                    sim::Simulator&, loadgen::LoadGenConfig,
                    loadgen::Sink)>
                    make_generator,
                SimDuration run_for, std::uint64_t expect) {
  core::ClusterConfig config;
  config.workers = 2;
  config.shards = flag_shards(flags);
  if (!parse_backend(flags, &config.backend)) return usage();
  core::Cluster cluster(config);

  auto deployed = cluster.deploy(workloads::make_standard_workloads());
  if (!deployed.ok()) {
    std::fprintf(stderr, "error: %s\n", deployed.error().message.c_str());
    return 2;
  }
  cluster.wait_until_ready();

  const framework::Route* route = cluster.gateway().route("web_server");
  if (route == nullptr) {
    std::fprintf(stderr, "error: web_server route missing after deploy\n");
    return 2;
  }
  for (const std::string& fn : functions) {
    cluster.gateway().register_function(fn, workloads::kWebServerId,
                                        route->workers);
  }

  loadgen::LoadGenConfig lg;
  lg.slo.deadline = microseconds(static_cast<std::int64_t>(
      flag_u64(flags, "--deadline-us", 2000)));
  auto generator = make_generator(
      cluster.sim(), lg,
      loadgen::gateway_sink(cluster.gateway(),
                            [](const loadgen::Request& request) {
                              return workloads::encode_web_request(
                                  request.id & 3);
                            }));
  generator->set_metrics(&cluster.gateway().metrics());

  const SimTime start = cluster.sim().now();
  generator->start();
  cluster.sim().run_until(start + run_for);
  generator->stop();
  // Drain queued work. The cluster's monitor re-arms forever, so run in
  // bounded slices until the generator is idle rather than sim().run().
  const SimTime drain_deadline = cluster.sim().now() + seconds(30);
  while (generator->inflight() > 0 && cluster.sim().now() < drain_deadline) {
    cluster.sim().run_until(cluster.sim().now() + milliseconds(10));
  }

  const loadgen::SloReport report =
      generator->slo().report(cluster.sim().now() - start);
  std::fputs(report.to_string().c_str(), stdout);
  generator->slo().export_to(cluster.gateway().metrics(),
                             cluster.sim().now() - start);

  // Offered-load gauges, as they render next to the gateway_* series.
  std::istringstream rendered(cluster.gateway().metrics().render());
  std::string line;
  std::printf("\n# offered-load gauges (gateway registry)\n");
  while (std::getline(rendered, line)) {
    if (line.rfind("loadgen_inflight", 0) == 0 ||
        line.rfind("loadgen_offered_r", 0) == 0) {
      std::printf("%s\n", line.c_str());
    }
  }

  if (expect > 0 && generator->offered() != expect) {
    std::fprintf(stderr, "error: offered %llu requests, expected %llu\n",
                 static_cast<unsigned long long>(generator->offered()),
                 static_cast<unsigned long long>(expect));
    return 2;
  }
  return 0;
}

int cmd_loadgen(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string mode = argv[2];
  auto flags = parse_flags(argc, argv, 3);

  if (mode == "synth") return cmd_loadgen_synth(flags);

  if (mode == "poisson") {
    const double rate = flag_double(flags, "--rate", 2000.0);
    const SimDuration duration = milliseconds(
        static_cast<std::int64_t>(flag_u64(flags, "--duration-ms", 500)));
    const std::size_t n_functions = flag_u64(flags, "--functions", 8);
    const double zipf = flag_double(flags, "--zipf", 0.9);
    std::vector<std::string> functions;
    for (std::size_t rank = 0; rank < n_functions; ++rank) {
      functions.push_back(loadgen::function_name(rank));
    }
    return run_loadgen(
        flags, functions,
        [&](sim::Simulator& sim, loadgen::LoadGenConfig lg,
            loadgen::Sink sink) {
          lg.arrivals = loadgen::ArrivalSpec::poisson(rate);
          lg.zipf_s = zipf;
          lg.duration = duration;
          return std::make_unique<loadgen::LoadGenerator>(
              sim, lg, loadgen::uniform_functions(n_functions),
              std::move(sink));
        },
        duration, /*expect=*/0);
  }

  if (mode == "trace") {
    if (argc < 4 || argv[3][0] == '-') return usage();
    auto events = loadgen::read_trace_file(argv[3]);
    if (!events.ok()) {
      std::fprintf(stderr, "error: %s\n", events.error().message.c_str());
      return 2;
    }
    flags = parse_flags(argc, argv, 4);
    std::vector<std::string> functions;
    for (const loadgen::TraceEvent& event : events.value()) {
      if (std::find(functions.begin(), functions.end(), event.function) ==
          functions.end()) {
        functions.push_back(event.function);
      }
    }
    const SimDuration span =
        events.value().empty() ? 0 : events.value().back().at;
    std::printf("replaying %zu events over %.1f ms (%zu functions)\n",
                events.value().size(), to_ms(span), functions.size());
    return run_loadgen(
        flags, functions,
        [&](sim::Simulator& sim, loadgen::LoadGenConfig lg,
            loadgen::Sink sink) {
          return std::make_unique<loadgen::LoadGenerator>(
              sim, lg, std::move(events).value(), std::move(sink));
        },
        span, flag_u64(flags, "--expect", 0));
  }

  return usage();
}

// --------------------------------------------------------------------- kv

/// One transactional-store cell, the lnicctl-sized twin of
/// bench/supp_kv_txn.cc: open-loop Poisson transactions from a client on
/// shard 0 into a TxnStore island (store + host memory + RDMA QP) on
/// shard 1 when sharded.
int cmd_kv(int argc, char** argv) {
  auto flags = parse_flags(argc, argv, 2);
  const std::string mix_name = flags.count("--mix") ? flags["--mix"] : "A";
  const std::string proto_name =
      flags.count("--proto") ? flags["--proto"] : "no_wait";
  const std::uint64_t txns = flag_u64(flags, "--txns", 1000);
  const double rate = flag_double(flags, "--rate", 150000.0);
  const std::uint64_t seed = flag_u64(flags, "--seed", 1);
  const unsigned shards = flag_shards(flags);

  kvstore::TxnStoreConfig config;
  config.nic_cache_nodes =
      static_cast<std::size_t>(flag_u64(flags, "--cache", 256));
  if (proto_name == "no_wait") {
    config.protocol = kvstore::LockProtocol::kNoWait;
  } else if (proto_name == "wait_die") {
    config.protocol = kvstore::LockProtocol::kWaitDie;
  } else {
    return usage();
  }

  sim::ShardedSimulator sharded(shards);
  net::Network network(sharded);
  const unsigned island = sharded.shards() > 1 ? 1 : 0;
  network.set_attach_shard(island);
  kvstore::TxnStore store(sharded.shard(island), network, config);
  network.set_attach_shard(0);

  // Build the request factory: one YCSB mix or the TPC-C-lite new-order.
  std::function<kvstore::TxnRequest()> next;
  if (mix_name == "tpcc") {
    kvstore::TpccLiteConfig wconfig;
    wconfig.warehouses =
        static_cast<std::uint32_t>(flag_u64(flags, "--warehouses", 1));
    wconfig.seed = seed;
    auto workload = std::make_shared<kvstore::TpccLiteWorkload>(wconfig);
    workload->populate(&store);
    next = [workload] { return workload->next_order(); };
  } else if (mix_name.size() == 1 && mix_name[0] >= 'A' &&
             mix_name[0] <= 'F') {
    kvstore::YcsbConfig wconfig;
    wconfig.mix = static_cast<kvstore::YcsbMix>(mix_name[0] - 'A');
    wconfig.zipf_s = flag_double(flags, "--zipf", 0.99);
    wconfig.seed = seed;
    auto workload = std::make_shared<kvstore::YcsbWorkload>(wconfig);
    workload->populate(&store);
    next = [workload] { return workload->next(); };
  } else {
    return usage();
  }

  sim::Simulator& client_sim = sharded.shard(0);
  std::map<RequestId, SimTime> sent_at;
  Sampler commit_latency;
  std::uint64_t committed = 0;
  std::uint64_t aborted_final = 0;
  const NodeId client = network.attach(
      [&](const net::Packet& p) {
        if (p.kind != net::PacketKind::kKvResponse) return;
        auto it = sent_at.find(p.lambda.request_id);
        if (it == sent_at.end()) return;
        const double latency_ns =
            static_cast<double>(client_sim.now() - it->second);
        sent_at.erase(it);
        if (!p.payload.empty() &&
            p.payload[0] ==
                static_cast<std::uint8_t>(kvstore::TxnStatus::kCommitted)) {
          commit_latency.add(latency_ns);
          ++committed;
        } else {
          ++aborted_final;
        }
      },
      &client_sim);

  auto arrivals =
      loadgen::make_arrivals(loadgen::ArrivalSpec::poisson(rate), seed);
  std::uint64_t issued = 0;
  std::function<void()> send_next = [&] {
    if (issued >= txns) return;
    net::Packet p;
    p.src = client;
    p.dst = store.node();
    p.kind = net::PacketKind::kKvRequest;
    p.lambda.workload_id = kvstore::TxnStore::kOpTxn;
    p.lambda.request_id = ++issued;
    p.payload = kvstore::TxnStore::encode_txn(next());
    sent_at[p.lambda.request_id] = client_sim.now();
    network.send(std::move(p));
    client_sim.schedule(arrivals->next_gap(), send_next);
  };
  client_sim.schedule(arrivals->next_gap(), send_next);
  sharded.run();

  const auto& stats = store.stats();
  const std::uint64_t attempts = stats.commits + stats.aborts;
  std::printf("mix %s, proto %s, %llu txns at %.0f/s, cache %zu nodes, "
              "%u shard(s)\n",
              mix_name.c_str(), kvstore::to_string(store.protocol()),
              static_cast<unsigned long long>(txns), rate,
              config.nic_cache_nodes, shards);
  std::printf("  committed %llu, final aborts %llu, aborted attempts %llu "
              "(rate %.3f), lock waits %llu\n",
              static_cast<unsigned long long>(committed),
              static_cast<unsigned long long>(aborted_final),
              static_cast<unsigned long long>(stats.aborts),
              attempts == 0 ? 0.0
                            : static_cast<double>(stats.aborts) /
                                  static_cast<double>(attempts),
              static_cast<unsigned long long>(stats.lock_waits));
  if (!commit_latency.empty()) {
    std::printf("  commit latency p50 %.3f us, p99 %.3f us\n",
                commit_latency.median() / 1e3, commit_latency.p99() / 1e3);
  }
  const auto& cache = store.cache_stats();
  std::printf("  NIC cache hit ratio %.3f (%llu hits / %llu misses, "
              "%llu evictions, %llu invalidations), host reads %llu "
              "writes %llu\n",
              cache.hit_ratio(),
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.evictions),
              static_cast<unsigned long long>(cache.invalidations),
              static_cast<unsigned long long>(store.host_stats().reads),
              static_cast<unsigned long long>(store.host_stats().writes));

  if (flags.count("--metrics")) {
    framework::Monitor monitor(client_sim);
    monitor.watch_kv("store0", &store);
    monitor.scrape();
    std::printf("\n# kv_* series (monitor registry)\n");
    std::istringstream rendered(monitor.metrics().render());
    std::string line;
    while (std::getline(rendered, line)) {
      if (line.rfind("kv_", 0) == 0) std::printf("%s\n", line.c_str());
    }
  }
  return committed > 0 ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "compile") return cmd_compile(argc, argv);
  if (command == "disasm") return cmd_disasm(argc, argv);
  if (command == "run") return cmd_run(argc, argv);
  if (command == "trace") return cmd_trace(argc, argv);
  if (command == "metrics") return cmd_metrics(argc, argv);
  if (command == "flightrec") return cmd_flightrec(argc, argv);
  if (command == "timeline") return cmd_timeline(argc, argv);
  if (command == "loadgen") return cmd_loadgen(argc, argv);
  if (command == "kv") return cmd_kv(argc, argv);
  return usage();
}
