#!/usr/bin/env python3
"""Validate a BENCH_perf_*.json file from the wall-clock perf suite.

Usage: check_perf.py <BENCH_perf_engine.json | BENCH_perf_datapath.json>

Checks the JSON schema (bench name, seed, metric list with name/value/
unit) and bench-specific invariants:

- perf_engine: all four mixes present; deterministic dispatch counters
  match the configured run shape; events/sec above a *loose* floor —
  this guards against 10x regressions (an accidental O(log n) or
  per-event allocation creeping back), not machine-to-machine noise.
- perf_datapath: the fragmented-RPC scenario must copy ZERO payload
  bytes (the whole point of the buffer layer) and share a nonzero
  number; the cluster scenario likewise copies nothing.

Exit code 0 on success.
"""
import json
import sys

# Deliberately ~10-30x below rates seen on a developer machine: CI boxes
# are slow and shared, and this floor only exists to catch order-of-
# magnitude regressions.
ENGINE_FLOORS_EPS = {
    "dispatch": 1_000_000,
    "cancel_mix": 800_000,
    "backlog": 150_000,
    "nested": 1_000_000,
}


def fail(message):
    print(f"check_perf: FAIL: {message}")
    sys.exit(1)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot parse {path}: {err}")
    for key in ("bench", "seed", "metrics"):
        if key not in doc:
            fail(f"missing top-level key '{key}'")
    if not isinstance(doc["metrics"], list) or not doc["metrics"]:
        fail("'metrics' must be a non-empty list")
    for m in doc["metrics"]:
        for key in ("name", "value", "unit"):
            if key not in m:
                fail(f"metric entry missing '{key}': {m}")
        if not isinstance(m["value"], (int, float)):
            fail(f"metric '{m['name']}' value is not numeric")
    return doc


def metrics_by_name(doc):
    return {m["name"]: m["value"] for m in doc["metrics"]}


def check_engine(doc):
    got = metrics_by_name(doc)
    for mix, floor in ENGINE_FLOORS_EPS.items():
        rate_key = f"{mix}_events_per_sec"
        if rate_key not in got:
            fail(f"perf_engine missing metric '{rate_key}'")
        if got[rate_key] < floor:
            fail(
                f"{rate_key} = {got[rate_key]:.0f} below loose floor "
                f"{floor} (order-of-magnitude regression?)"
            )
        for suffix in ("_dispatched", "_arena_slots"):
            if mix + suffix not in got:
                fail(f"perf_engine missing metric '{mix + suffix}'")
        if got[f"{mix}_dispatched"] <= 0:
            fail(f"{mix}_dispatched is zero — mix did not run")
    print("check_perf: OK perf_engine "
          + ", ".join(f"{m}={got[m + '_events_per_sec']:.0f}/s"
                      for m in ENGINE_FLOORS_EPS))


def check_datapath(doc):
    got = metrics_by_name(doc)
    for scenario in ("rpc", "cluster"):
        for suffix in ("_bytes_copied", "_bytes_shared", "_packets"):
            key = scenario + suffix
            if key not in got:
                fail(f"perf_datapath missing metric '{key}'")
        if got[f"{scenario}_bytes_copied"] != 0:
            fail(
                f"{scenario}_bytes_copied = "
                f"{got[scenario + '_bytes_copied']:.0f}; the datapath "
                "must be zero-copy"
            )
        if got[f"{scenario}_bytes_shared"] <= 0:
            fail(f"{scenario}_bytes_shared is zero — no payload moved")
        if got[f"{scenario}_packets"] <= 0:
            fail(f"{scenario}_packets is zero — scenario did not run")
    print("check_perf: OK perf_datapath "
          f"rpc shared {got['rpc_bytes_shared']:.0f} B copied 0, "
          f"cluster shared {got['cluster_bytes_shared']:.0f} B copied 0")


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        sys.exit(2)
    doc = load(sys.argv[1])
    if doc["bench"] == "perf_engine":
        check_engine(doc)
    elif doc["bench"] == "perf_datapath":
        check_datapath(doc)
    else:
        fail(f"unknown bench '{doc['bench']}'")


if __name__ == "__main__":
    main()
