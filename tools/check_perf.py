#!/usr/bin/env python3
"""Validate a BENCH_perf_*.json file from the wall-clock perf suite.

Usage: check_perf.py <BENCH_perf_engine.json | BENCH_perf_datapath.json
                      | BENCH_perf_parallel.json
                      | BENCH_supp_multitenant.json
                      | BENCH_supp_kv_txn.json>

Checks the JSON schema (bench name, seed, shard count, metric list with
name/value/unit) and bench-specific invariants:

- perf_engine: all four mixes present; deterministic dispatch counters
  match the configured run shape; events/sec above a *loose* floor —
  this guards against 10x regressions (an accidental O(log n) or
  per-event allocation creeping back), not machine-to-machine noise.
- perf_datapath: the fragmented-RPC scenario must copy ZERO payload
  bytes (the whole point of the buffer layer) and share a nonzero
  number; the cluster scenario likewise copies nothing.
- perf_parallel: all four configuration families (ring/static,
  ring/adaptive, idle/static, idle/adaptive — the sync-mode x placement
  matrix) ran at every swept shard count and completed the identical
  closed-loop request count; cross-shard posts flowed in the scattered
  placements; on the idle-frontier topology with co-shardable pairs the
  adaptive run produced zero cross posts and strictly fewer
  (EOT-extended) windows than static sync. The 4-shard aggregate
  events/sec must be >= 2x the 1-shard rate and the idle-frontier
  adaptive run >= 1.3x its static twin — both floors enforced only when
  the recorded hw_threads >= 4, since the parallelism physically cannot
  show on a 1-2 core box. Each cell also carries its stall breakdown
  (busy/barrier/sync wall components + lookahead utilization), and
  busy + barrier + sync must reconstruct the total wall time within 1%.
- supp_multitenant: per-tenant SLO rows present for every scenario; the
  noisy-neighbor victim's shared-card p99 within 1.25x its isolated
  baseline while the aggressor oversubscribes its DRR weight share by
  >= 10x; the scale-to-zero tenant took cold failures and released all
  replicas again. Simulated-time metrics: exact, no machine noise.
- supp_kv_txn: every YCSB/cache/TPC-C cell present with nonzero
  commits; the read-only mix never aborts; the write-heavy mix aborts
  strictly more at Zipf 0.99 than uniform under both lock protocols;
  the NIC node-cache hit ratio is 0 at capacity 0 (host baseline) and
  monotonically non-decreasing in capacity.

Exit code 0 on success.
"""
import json
import sys

# Deliberately ~10-30x below rates seen on a developer machine: CI boxes
# are slow and shared, and this floor only exists to catch order-of-
# magnitude regressions.
ENGINE_FLOORS_EPS = {
    "dispatch": 1_000_000,
    "cancel_mix": 800_000,
    "backlog": 150_000,
    "nested": 1_000_000,
}


def fail(message):
    print(f"check_perf: FAIL: {message}")
    sys.exit(1)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot parse {path}: {err}")
    for key in ("bench", "seed", "shards", "metrics"):
        if key not in doc:
            fail(f"missing top-level key '{key}'")
    if not isinstance(doc["shards"], int) or doc["shards"] < 1:
        fail(f"'shards' must be a positive integer, got {doc['shards']!r}")
    if not isinstance(doc["metrics"], list) or not doc["metrics"]:
        fail("'metrics' must be a non-empty list")
    for m in doc["metrics"]:
        for key in ("name", "value", "unit"):
            if key not in m:
                fail(f"metric entry missing '{key}': {m}")
        if not isinstance(m["value"], (int, float)):
            fail(f"metric '{m['name']}' value is not numeric")
    return doc


def metrics_by_name(doc):
    return {m["name"]: m["value"] for m in doc["metrics"]}


def check_engine(doc):
    got = metrics_by_name(doc)
    for mix, floor in ENGINE_FLOORS_EPS.items():
        rate_key = f"{mix}_events_per_sec"
        if rate_key not in got:
            fail(f"perf_engine missing metric '{rate_key}'")
        if got[rate_key] < floor:
            fail(
                f"{rate_key} = {got[rate_key]:.0f} below loose floor "
                f"{floor} (order-of-magnitude regression?)"
            )
        for suffix in ("_dispatched", "_arena_slots"):
            if mix + suffix not in got:
                fail(f"perf_engine missing metric '{mix + suffix}'")
        if got[f"{mix}_dispatched"] <= 0:
            fail(f"{mix}_dispatched is zero — mix did not run")
    print("check_perf: OK perf_engine "
          + ", ".join(f"{m}={got[m + '_events_per_sec']:.0f}/s"
                      for m in ENGINE_FLOORS_EPS))


def check_datapath(doc):
    got = metrics_by_name(doc)
    for scenario in ("rpc", "cluster"):
        for suffix in ("_bytes_copied", "_bytes_shared", "_packets"):
            key = scenario + suffix
            if key not in got:
                fail(f"perf_datapath missing metric '{key}'")
        if got[f"{scenario}_bytes_copied"] != 0:
            fail(
                f"{scenario}_bytes_copied = "
                f"{got[scenario + '_bytes_copied']:.0f}; the datapath "
                "must be zero-copy"
            )
        if got[f"{scenario}_bytes_shared"] <= 0:
            fail(f"{scenario}_bytes_shared is zero — no payload moved")
        if got[f"{scenario}_packets"] <= 0:
            fail(f"{scenario}_packets is zero — scenario did not run")
    print("check_perf: OK perf_datapath "
          f"rpc shared {got['rpc_bytes_shared']:.0f} B copied 0, "
          f"cluster shared {got['cluster_bytes_shared']:.0f} B copied 0")


# Every (shard count, configuration) cell of perf_parallel carries the
# same column set; the four families are the sync/placement matrix the
# bench sweeps (see bench/perf_parallel.cc).
PARALLEL_FAMILIES = ("", "_adaptive", "_idle_static", "_idle_adaptive")
PARALLEL_SUFFIXES = (
    "_events_per_sec", "_dispatched", "_completed", "_cross_posts",
    "_windows", "_windows_extended", "_window_span_ns",
    "_busy_ns", "_barrier_ns", "_sync_ns", "_wall_ns",
    "_stall_sum_err_pct", "_lookahead_util",
)


def check_parallel(doc):
    got = metrics_by_name(doc)
    for key in ("hw_threads", "islands"):
        if key not in got:
            fail(f"perf_parallel missing metric '{key}'")
    # Swept shard counts come from the legacy family's cells
    # ("shards<N>_events_per_sec" with a purely numeric <N>); the other
    # families must then cover the same counts.
    swept = sorted(
        int(name[len("shards"):-len("_events_per_sec")])
        for name in got
        if name.startswith("shards") and name.endswith("_events_per_sec")
        and name[len("shards"):-len("_events_per_sec")].isdigit()
    )
    if 1 not in swept or 4 not in swept:
        fail(f"perf_parallel must sweep shard counts 1 and 4, got {swept}")
    islands = got["islands"]
    completed = None
    for s in swept:
        for family in PARALLEL_FAMILIES:
            cell = f"shards{s}{family}"
            for suffix in PARALLEL_SUFFIXES:
                if cell + suffix not in got:
                    fail(f"perf_parallel missing metric '{cell + suffix}'")
            if got[f"{cell}_events_per_sec"] <= 0:
                fail(f"{cell}_events_per_sec is zero — cell did not run")
            if got[f"{cell}_dispatched"] <= 0:
                fail(f"{cell}_dispatched is zero — cell did not run")
            # Closed-loop: every cell completes the same request count —
            # neither shard count, placement, nor sync mode may change
            # the simulated outcome.
            if completed is None:
                completed = got[f"{cell}_completed"]
            elif got[f"{cell}_completed"] != completed:
                fail(
                    f"{cell}_completed = {got[cell + '_completed']:.0f} != "
                    f"{completed:.0f}; configuration changed the simulated "
                    "result"
                )
            if s > 1 and family in ("", "_idle_static"):
                if got[f"{cell}_cross_posts"] <= 0:
                    fail(f"{cell}_cross_posts is zero — no cross-shard "
                         "traffic in a scattered placement")
                if got[f"{cell}_windows"] <= 0:
                    fail(f"{cell}_windows is zero — static sync ran no "
                         "windows")
            # Stall breakdown: the busy/barrier/sync components must be
            # present and reconstruct the measured wall time within 1%.
            if got[f"{cell}_wall_ns"] <= 0:
                fail(f"{cell}_wall_ns is zero — stall accounting did not "
                     "run")
            if got[f"{cell}_busy_ns"] <= 0:
                fail(f"{cell}_busy_ns is zero — no shard busy time "
                     "recorded")
            if got[f"{cell}_stall_sum_err_pct"] > 1.0:
                fail(
                    f"{cell}_stall_sum_err_pct = "
                    f"{got[cell + '_stall_sum_err_pct']:.3f}%; busy + "
                    "barrier + sync must reconstruct wall time within 1%"
                )
            util = got[f"{cell}_lookahead_util"]
            if not 0.0 < util <= 1.0:
                fail(f"{cell}_lookahead_util = {util:.3f} outside (0, 1]")
        # Adaptive sync on the idle-frontier topology: block placement
        # co-shards every client/NIC pair whenever a shard holds >= 2
        # islands, so the run must be cross-traffic-free and collapse to
        # strictly fewer (EOT-extended) windows than static sync pays.
        if 1 < s <= islands / 2:
            idle_a = f"shards{s}_idle_adaptive"
            idle_s = f"shards{s}_idle_static"
            if got[f"{idle_a}_cross_posts"] != 0:
                fail(
                    f"{idle_a}_cross_posts = "
                    f"{got[idle_a + '_cross_posts']:.0f}; co-sharded pairs "
                    "must produce zero cross-shard traffic"
                )
            if got[f"{idle_a}_windows"] >= got[f"{idle_s}_windows"]:
                fail(
                    f"{idle_a}_windows = {got[idle_a + '_windows']:.0f} not "
                    f"below static's {got[idle_s + '_windows']:.0f}; EOT "
                    "extension did not collapse the idle frontier"
                )
            if got[f"{idle_a}_windows_extended"] <= 0:
                fail(f"{idle_a}_windows_extended is zero — no window was "
                     "EOT-extended")
    if completed is None or completed <= 0:
        fail("perf_parallel completed zero requests")
    for key in ("speedup_4x", "idle_speedup_4x"):
        if key not in got:
            fail(f"perf_parallel missing metric '{key}'")
    hw = got["hw_threads"]
    if hw >= 4:
        if got["speedup_4x"] < 2.0:
            fail(
                f"speedup_4x = {got['speedup_4x']:.2f} on a {hw:.0f}-thread "
                "machine; 4 shards must be >= 2x the 1-shard rate"
            )
        if got["idle_speedup_4x"] < 1.3:
            fail(
                f"idle_speedup_4x = {got['idle_speedup_4x']:.2f} on a "
                f"{hw:.0f}-thread machine; adaptive + locality must beat "
                "static sync by >= 1.3x on the idle-frontier topology"
            )
        verdict = (
            f"speedup_4x={got['speedup_4x']:.2f} "
            f"idle_speedup_4x={got['idle_speedup_4x']:.2f} "
            "(floors 2.0/1.3 enforced)"
        )
    else:
        verdict = (
            f"speedup_4x={got['speedup_4x']:.2f} "
            f"idle_speedup_4x={got['idle_speedup_4x']:.2f} "
            f"(floors skipped: {hw:.0f} hw thread(s))"
        )
    print(f"check_perf: OK perf_parallel shards={swept} "
          f"families={len(PARALLEL_FAMILIES)} "
          f"completed={completed:.0f}/cell " + verdict)


def check_multitenant(doc):
    got = metrics_by_name(doc)
    # Per-tenant SLO rows must be present for every scenario.
    tenants = (
        "noisy/victim_isolated",
        "noisy/victim_shared",
        "noisy/aggressor_shared",
        "burst/gold",
        "burst/silver",
        "burst/bronze",
        "scalezero/idlecorp",
    )
    for tenant in tenants:
        for suffix in ("/offered", "/goodput", "/p99"):
            if tenant + suffix not in got:
                fail(f"supp_multitenant missing per-tenant row "
                     f"'{tenant + suffix}'")
        if got[tenant + "/offered"] <= 0:
            fail(f"{tenant}/offered is zero — scenario did not run")
    # Noisy neighbor: DRR must hold the victim's p99 within 25% of the
    # isolated baseline while the aggressor oversubscribes its weight
    # share by at least 10x.
    isolated = got["noisy/victim_isolated/p99"]
    shared = got["noisy/victim_shared/p99"]
    if isolated <= 0:
        fail("noisy/victim_isolated/p99 is zero — baseline did not run")
    if shared > 1.25 * isolated:
        fail(
            f"victim p99 {shared:.3f} ms exceeds 1.25x the isolated "
            f"baseline {isolated:.3f} ms — tenant isolation regressed"
        )
    if got.get("noisy/aggressor_offered_over_share", 0.0) < 10.0:
        fail(
            "aggressor offered only "
            f"{got.get('noisy/aggressor_offered_over_share', 0.0):.1f}x its "
            "weight share; the noisy-neighbor scenario must saturate at "
            ">= 10x"
        )
    # Scale-to-zero: the burst must hit a parked tenant (cold failures)
    # and the loop must release every replica again afterwards.
    if got.get("scalezero/cold_failures", 0.0) <= 0:
        fail("scalezero/cold_failures is zero — tenant was not parked")
    if got.get("scalezero/final_replicas", -1.0) != 0:
        fail("scalezero/final_replicas nonzero — scale-down never landed")
    print(
        "check_perf: OK supp_multitenant "
        f"victim p99 {shared:.3f}/{isolated:.3f} ms "
        f"({shared / isolated:.2f}x <= 1.25x), aggressor "
        f"{got['noisy/aggressor_offered_over_share']:.1f}x share"
    )


def check_kv_txn(doc):
    got = metrics_by_name(doc)
    protos = ("no_wait", "wait_die")
    suffixes = ("/commits", "/aborts", "/abort_rate", "/p50", "/p99",
                "/hit_ratio")
    # Every YCSB cell must be present and have committed work.
    cells = [
        f"ycsb/{mix}/{proto}/{z}"
        for mix in "ABCDEF"
        for proto in protos
        for z in ("z00", "z99")
    ]
    cache_sizes = (0, 64, 256, 2048)
    cells += [f"cache/{n}" for n in cache_sizes]
    cells += [f"tpcc/w{w}/{proto}" for w in (1, 8) for proto in protos]
    for cell in cells:
        for suffix in suffixes:
            if cell + suffix not in got:
                fail(f"supp_kv_txn missing metric '{cell + suffix}'")
        if got[cell + "/commits"] <= 0:
            fail(f"{cell}/commits is zero — cell committed nothing")
        if not 0.0 <= got[cell + "/hit_ratio"] <= 1.0:
            fail(f"{cell}/hit_ratio = {got[cell + '/hit_ratio']:.3f} "
                 "outside [0, 1]")
    # Read-only YCSB C takes only shared locks: it must never abort.
    for proto in protos:
        for z in ("z00", "z99"):
            cell = f"ycsb/C/{proto}/{z}"
            if got[cell + "/aborts"] != 0:
                fail(f"{cell}/aborts = {got[cell + '/aborts']:.0f}; "
                     "the read-only mix must never conflict")
    # Contention responds to skew: the write-heavy mix at Zipf 0.99 must
    # abort strictly more often than its uniform twin, per protocol.
    for proto in protos:
        uniform = got[f"ycsb/A/{proto}/z00/abort_rate"]
        skewed = got[f"ycsb/A/{proto}/z99/abort_rate"]
        if skewed <= uniform:
            fail(
                f"ycsb/A/{proto}: zipf 0.99 abort rate {skewed:.4f} not "
                f"above uniform {uniform:.4f} — contention does not "
                "respond to skew"
            )
    # NIC cache effectiveness: capacity 0 is the host-backend baseline
    # (every access a miss), and the hit ratio must be monotonically
    # non-decreasing in capacity.
    if got["cache/0/hit_ratio"] != 0.0:
        fail(f"cache/0/hit_ratio = {got['cache/0/hit_ratio']:.3f}; the "
             "host baseline must never hit the NIC cache")
    if got.get("cache/0/host_reads", 0.0) <= 0:
        fail("cache/0/host_reads is zero — baseline pages never crossed "
             "to host memory")
    last = -1.0
    for n in cache_sizes:
        ratio = got[f"cache/{n}/hit_ratio"]
        if ratio < last:
            fail(
                f"cache/{n}/hit_ratio = {ratio:.3f} below the smaller "
                f"cache's {last:.3f} — hit ratio must be monotone in "
                "capacity"
            )
        last = ratio
    if last <= 0.0:
        fail("largest NIC cache still has zero hit ratio — cache never "
             "served a page")
    print(
        "check_perf: OK supp_kv_txn "
        f"A-mix abort z99/z00 no_wait "
        f"{got['ycsb/A/no_wait/z99/abort_rate']:.3f}/"
        f"{got['ycsb/A/no_wait/z00/abort_rate']:.3f}, hit ratio "
        + " -> ".join(f"{got[f'cache/{n}/hit_ratio']:.3f}"
                      for n in cache_sizes)
    )


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        sys.exit(2)
    doc = load(sys.argv[1])
    if doc["bench"] == "perf_engine":
        check_engine(doc)
    elif doc["bench"] == "perf_datapath":
        check_datapath(doc)
    elif doc["bench"] == "perf_parallel":
        check_parallel(doc)
    elif doc["bench"] == "supp_multitenant":
        check_multitenant(doc)
    elif doc["bench"] == "supp_kv_txn":
        check_kv_txn(doc)
    else:
        fail(f"unknown bench '{doc['bench']}'")


if __name__ == "__main__":
    main()
