#include "hostsim/host.h"

#include <cassert>
#include <functional>

#include "common/logging.h"
#include "proto/invocation.h"

namespace lnic::hostsim {

using microc::Outcome;
using microc::RunState;
using net::Packet;
using net::PacketKind;

struct HostServer::Job {
  net::LambdaHeader lambda;
  NodeId reply_to = kInvalidNode;
  microc::Invocation invocation;
  std::unique_ptr<microc::Machine> machine;
  std::uint64_t cycles_reported = 0;
  SimTime enqueued = 0;
  bool resumed = false;        // continuing after a KV reply
  std::uint64_t pending_reply = 0;
  SimDuration rx_cost = 0;     // kernel ingress work to charge
  Outcome outcome;             // filled by the GIL stage
  std::uint8_t next_tag = 0;   // queued-stage continuation (Next)
  // Tracing bookkeeping (inert without an attached recorder).
  trace::SpanContext ctx;
  trace::SpanId queue_span = trace::kInvalidSpan;
  trace::SpanId stage_span = trace::kInvalidSpan;  // current kernel/runtime
  trace::SpanId exec_span = trace::kInvalidSpan;   // host.execute (GIL)
  trace::SpanId kv_span = trace::kInvalidSpan;
};

HostServer::~HostServer() = default;

HostServer::HostServer(sim::Simulator& sim, net::Network& network,
                       HostConfig config)
    : sim_(sim), network_(network), config_(config), rng_(config.seed) {
  node_ = network_.attach([this](const Packet& p) { handle_packet(p); },
                          &sim_);
  kernel_.capacity = config_.cores;
  runtime_.capacity = config_.serialize_runtime ? 1 : config_.cores;
  gil_.capacity = std::min(config_.gil_limit, config_.cores);
}

void HostServer::deploy(microc::Program program) {
  program_ = std::move(program);
  globals_.reset(*program_);
}

SimDuration HostServer::jittered(SimDuration base) {
  if (config_.jitter_fraction <= 0.0) return base;
  return static_cast<SimDuration>(
      static_cast<double>(base) *
      (1.0 + rng_.next_double() * config_.jitter_fraction));
}

void HostServer::handle_packet(const Packet& packet) {
  switch (packet.kind) {
    case PacketKind::kRequest:
    case PacketKind::kRdmaWrite: {
      if (packet.lambda.frag_count > 1) {
        const auto key = std::make_pair(packet.src, packet.lambda.request_id);
        Reassembly& re = reassembly_[key];
        if (re.frags.empty()) {
          re.frags.resize(packet.lambda.frag_count);
          re.first = packet;
        }
        if (packet.lambda.frag_index >= re.frags.size()) return;
        if (re.frags[packet.lambda.frag_index].empty()) {
          re.frags[packet.lambda.frag_index] = packet.payload;
          ++re.received;
        }
        if (re.received < re.frags.size()) return;
        // Contiguous slices of the sender's buffer: no copy.
        net::BufferView body = coalesce(re.frags);
        Packet first = re.first;
        reassembly_.erase(key);
        handle_request(first, std::move(body));
      } else {
        handle_request(packet, packet.payload);
      }
      break;
    }
    case PacketKind::kKvResponse:
      handle_kv_response(packet);
      break;
    default:
      break;
  }
}

void HostServer::handle_request(const Packet& packet, net::BufferView body) {
  if (!program_) {
    ++stats_.requests_dropped;
    return;
  }
  auto job = std::make_unique<Job>();
  job->lambda = packet.lambda;
  job->reply_to = packet.src;
  if (tracer_ != nullptr && packet.lambda.trace_id != trace::kInvalidTrace) {
    job->ctx.trace = packet.lambda.trace_id;
    job->ctx.parent = packet.lambda.parent_span;
  }
  const std::uint32_t frags =
      std::max<std::uint32_t>(packet.lambda.frag_count, 1);
  job->rx_cost = config_.rx_per_packet * frags;

  job->invocation =
      proto::build_invocation(packet.lambda, packet.src, std::move(body));

  admit(std::move(job));
}

void HostServer::admit(std::unique_ptr<Job> job) {
  if (admission_.size() >= config_.max_queue_depth) {
    ++stats_.requests_dropped;
    return;
  }
  job->enqueued = sim_.now();
  if (tracer_ != nullptr && job->ctx.valid()) {
    job->queue_span = tracer_->start_span(job->ctx.trace, job->ctx.parent,
                                          "host.queue", sim_.now());
    if (job->lambda.tenant_id != kDefaultTenant) {
      tracer_->annotate(job->queue_span, "tenant",
                        std::to_string(job->lambda.tenant_id));
    }
  }
  admission_.push_back(std::move(job));
  try_admit();
}

void HostServer::try_admit() {
  while (active_jobs_ < config_.worker_threads && !admission_.empty()) {
    auto job = std::move(admission_.front());
    admission_.pop_front();
    ++active_jobs_;
    stats_.peak_active_jobs = std::max(stats_.peak_active_jobs, active_jobs_);
    stats_.queue_wait_ns.add(static_cast<double>(sim_.now() - job->enqueued));
    if (job->queue_span != trace::kInvalidSpan) {
      tracer_->end_span(job->queue_span, sim_.now());
      job->queue_span = trace::kInvalidSpan;
    }
    const SimDuration rx = jittered(job->rx_cost);
    enter_stage(kernel_, std::move(job), rx, Next::kRuntime);
  }
}

const char* HostServer::stage_span_name(const Stage& stage) const {
  if (&stage == &kernel_) return "host.kernel";
  if (&stage == &runtime_) return "host.runtime";
  return "host.execute";
}

void HostServer::enter_stage(Stage& stage, std::unique_ptr<Job> job,
                             SimDuration service, Next next) {
  if (tracer_ != nullptr && job->ctx.valid() &&
      job->stage_span == trace::kInvalidSpan) {
    // Covers both the stage's queue wait and its service time.
    job->stage_span = tracer_->start_span(job->ctx.trace, job->ctx.parent,
                                          stage_span_name(stage), sim_.now());
  }
  if (stage.busy < stage.capacity) {
    ++stage.busy;
    ++busy_units_;
    stats_.busy_time += service;
    Job* raw = job.release();
    sim_.schedule(service, [this, &stage, raw, next]() {
      stage_done(stage, std::unique_ptr<Job>(raw), next);
    });
  } else {
    // The kernel stage serves both ingress (kRuntime / kGil for resumes)
    // and egress (kDone); remember where this job goes next.
    job->next_tag = static_cast<std::uint8_t>(next);
    stage.queue.emplace_back(std::move(job), service);
  }
}

void HostServer::stage_done(Stage& stage, std::unique_ptr<Job> job,
                            Next next) {
  if (job->stage_span != trace::kInvalidSpan) {
    tracer_->end_span(job->stage_span, sim_.now());
    job->stage_span = trace::kInvalidSpan;
  }
  // Free the unit (or hand it straight to the next queued item).
  if (!stage.queue.empty()) {
    auto [queued, service] = std::move(stage.queue.front());
    stage.queue.pop_front();
    const Next queued_next = static_cast<Next>(queued->next_tag);
    stats_.busy_time += service;
    Job* raw = queued.release();
    sim_.schedule(service, [this, &stage, raw, queued_next]() {
      stage_done(stage, std::unique_ptr<Job>(raw), queued_next);
    });
  } else {
    --stage.busy;
    --busy_units_;
  }

  switch (next) {
    case Next::kRuntime:
      enter_stage(runtime_, std::move(job), jittered(config_.per_request),
                  Next::kGil);
      break;
    case Next::kGil:
      run_gil(std::move(job));
      break;
    case Next::kTx:
      // unused marker; egress scheduled directly with kDone
      break;
    case Next::kDone:
      finish_job(std::move(job));
      break;
  }
}

void HostServer::run_gil(std::unique_ptr<Job> job) {
  if (tracer_ != nullptr && job->ctx.valid() &&
      job->exec_span == trace::kInvalidSpan) {
    // Covers GIL queue wait + context switch + interpreted execution;
    // a KV resume opens a fresh host.execute span.
    job->exec_span = tracer_->start_span(job->ctx.trace, job->ctx.parent,
                                         "host.execute", sim_.now());
    if (job->lambda.tenant_id != kDefaultTenant) {
      tracer_->annotate(job->exec_span, "tenant",
                        std::to_string(job->lambda.tenant_id));
    }
  }
  // The GIL stage computes its own service time at grant (context switch
  // + interpreted execution), so acquire manually.
  if (gil_.busy < gil_.capacity) {
    ++gil_.busy;
    ++busy_units_;
    SimDuration service = 0;
    if (gil_last_workload_ != job->lambda.workload_id) {
      service += config_.context_switch;
      ++stats_.context_switches;
      gil_last_workload_ = job->lambda.workload_id;
    }
    Outcome outcome;
    if (!job->machine) {
      job->machine = std::make_unique<microc::Machine>(*program_,
                                                       config_.cost,
                                                       &globals_);
      outcome = job->machine->run(job->invocation);
    } else {
      outcome = job->machine->resume(job->pending_reply);
    }
    const std::uint64_t delta = outcome.cycles - job->cycles_reported;
    job->cycles_reported = outcome.cycles;
    SimDuration exec = jittered(config_.cost.cycles_to_duration(delta));
    if (config_.hiccup_probability > 0.0 &&
        rng_.next_bool(config_.hiccup_probability)) {
      exec += static_cast<SimDuration>(rng_.next_below(
          static_cast<std::uint64_t>(std::max<SimDuration>(
              config_.hiccup_max, 1))));
    }
    service += exec;
    stats_.busy_time += service;
    job->outcome = std::move(outcome);
    Job* raw = job.release();
    sim_.schedule(service, [this, raw]() {
      auto owned = std::unique_ptr<Job>(raw);
      if (owned->exec_span != trace::kInvalidSpan) {
        tracer_->end_span(owned->exec_span, sim_.now());
        owned->exec_span = trace::kInvalidSpan;
      }
      // Release the GIL (or pass it to the next queued lambda).
      if (!gil_.queue.empty()) {
        auto [queued, unused] = std::move(gil_.queue.front());
        (void)unused;
        gil_.queue.pop_front();
        --gil_.busy;
        --busy_units_;
        run_gil(std::move(queued));
      } else {
        --gil_.busy;
        --busy_units_;
      }

      if (owned->outcome.state == RunState::kYield) {
        // Blocked on the KV store: keep the service thread, release CPU.
        const microc::ExtRequest ext = owned->outcome.ext;
        const RequestId token = next_token_++;
        if (tracer_ != nullptr && owned->ctx.valid()) {
          owned->kv_span = tracer_->start_span(
              owned->ctx.trace, owned->ctx.parent, "host.kv_wait", sim_.now());
        }
        waiting_kv_.emplace(token, std::move(owned));
        Packet kv;
        kv.src = node_;
        kv.dst = kv_server_;
        kv.kind = PacketKind::kKvRequest;
        kv.lambda.request_id = token;
        kv.lambda.workload_id = static_cast<WorkloadId>(ext.kind);
        std::vector<std::uint8_t> kv_body(16);
        for (int i = 0; i < 8; ++i) {
          kv_body[i] = static_cast<std::uint8_t>(ext.key >> (8 * i));
          kv_body[8 + i] =
              static_cast<std::uint8_t>(ext.value >> (8 * i));
        }
        kv.payload = std::move(kv_body);
        network_.send(std::move(kv));
        return;
      }
      // Egress: kernel tx work for every response fragment.
      const std::uint32_t tx_frags = static_cast<std::uint32_t>(
          owned->outcome.response.empty()
              ? 1
              : (owned->outcome.response.size() + net::kMaxPayload - 1) /
                    net::kMaxPayload);
      enter_stage(kernel_, std::move(owned),
                  jittered(config_.tx_per_packet * tx_frags), Next::kDone);
    });
  } else {
    gil_.queue.emplace_back(std::move(job), 0);
  }
}

void HostServer::handle_kv_response(const Packet& packet) {
  const auto it = waiting_kv_.find(packet.lambda.request_id);
  if (it == waiting_kv_.end()) return;
  auto job = std::move(it->second);
  waiting_kv_.erase(it);
  if (job->kv_span != trace::kInvalidSpan) {
    tracer_->end_span(job->kv_span, sim_.now());
    job->kv_span = trace::kInvalidSpan;
  }
  std::uint64_t reply = 0;
  for (std::size_t i = 0; i < 8 && i < packet.payload.size(); ++i) {
    reply |= static_cast<std::uint64_t>(packet.payload[i]) << (8 * i);
  }
  job->pending_reply = reply;
  job->resumed = true;
  // The reply's kernel rx, then back to the interpreter (fresh GIL
  // acquisition, possibly another context switch).
  enter_stage(kernel_, std::move(job), jittered(config_.rx_per_packet),
              Next::kGil);
}

void HostServer::finish_job(std::unique_ptr<Job> job) {
  assert(active_jobs_ > 0);
  --active_jobs_;
  if (job->outcome.state == RunState::kTrap) {
    ++stats_.requests_dropped;
    LNIC_WARN() << "host lambda trap: " << job->outcome.trap_message;
  } else {
    ++stats_.requests_completed;
    auto frags =
        net::fragment(node_, job->reply_to, PacketKind::kResponse, job->lambda,
                      net::BufferView(std::move(job->outcome.response)));
    for (auto& f : frags) network_.send(std::move(f));
  }
  try_admit();
}

}  // namespace lnic::hostsim
