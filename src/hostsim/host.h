// Server-CPU worker model for the baseline backends (§6.1.1).
//
// A HostServer is a worker node whose lambdas run behind the OpenFaaS
// Python service (bare metal) or the same service inside Docker with
// overlay networking (containers). A request passes three stages, each
// a queued resource:
//
//   kernel stage  (capacity = cores)      per-packet rx/tx work — the OS
//                                         network stack plus, for
//                                         containers, veth/OVS/conntrack;
//   runtime stage (capacity = cores, or 1 per-request dispatch — watchdog
//                  when serialize_runtime)  fork/IPC, gateway NAT;
//   GIL stage     (capacity = gil_limit)  the lambda's interpreted
//                                         execution — CPython's global
//                                         interpreter lock serializes it
//                                         no matter how many cores exist.
//
// A context switch is charged whenever the GIL slot picks up a different
// workload than it last ran (the §6.3.2 contention effect). Service
// times carry multiplicative jitter plus rare scheduler/GC hiccups — the
// paper's "miscellaneous software overheads" that produce the host
// backends' long tails. A lambda blocked on an external KV call holds
// its service thread but releases all stage resources, paying fresh
// kernel+GIL costs on resume — exactly the CPU behaviour the paper
// blames for host tail latency, and absent from the run-to-completion
// NIC.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/trace.h"
#include "common/types.h"
#include "microc/interp.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace lnic::hostsim {

struct HostConfig {
  /// Physical parallelism for kernel/runtime work (56 hardware threads
  /// on the testbed's dual Xeon Gold 5117, §6.1.2). Fig. 8's "single
  /// core" variant sets 1.
  std::uint32_t cores = 56;
  /// Service concurrency: how many lambda invocations the runtime admits
  /// at once (the "1 thread" / "56 threads" axis of Fig. 7).
  std::uint32_t worker_threads = 56;
  /// Parallelism of interpreted lambda execution. 1 = CPython GIL.
  std::uint32_t gil_limit = 1;
  /// Serialize the per-request runtime dispatch (OpenFaaS classic
  /// watchdog forks one request at a time inside the container).
  bool serialize_runtime = false;
  /// Cost of the GIL slot switching to a different lambda (register/TLB
  /// state, cache refill, interpreter state swap).
  SimDuration context_switch = microseconds(300);
  /// Kernel network stack + virtualization cost per packet.
  SimDuration rx_per_packet = microseconds(15);
  SimDuration tx_per_packet = microseconds(10);
  /// Runtime dispatch per request (watchdog fork/IPC, NAT/conntrack).
  SimDuration per_request = microseconds(110);
  /// Execution cost model (host_python for both baselines).
  microc::CostModel cost = microc::CostModel::host_python();
  /// Multiplicative service jitter (uniform in [1, 1+jitter_fraction])
  /// and rare scheduler/GC hiccups appended to execution.
  double jitter_fraction = 0.20;
  double hiccup_probability = 0.02;
  SimDuration hiccup_max = microseconds(500);
  std::size_t max_queue_depth = 8192;
  std::uint64_t seed = 0xB057;
};

struct HostStats {
  std::uint64_t requests_completed = 0;
  std::uint64_t requests_dropped = 0;
  std::uint64_t context_switches = 0;
  std::uint32_t peak_active_jobs = 0;  // service-thread high-water mark
  Sampler queue_wait_ns;
  SimDuration busy_time = 0;  // CPU-occupancy for utilization (Table 3)
};

class HostServer {
 public:
  HostServer(sim::Simulator& sim, net::Network& network, HostConfig config);
  ~HostServer();  // out of line: Job is incomplete here

  NodeId node() const { return node_; }

  /// Installs the program whose lambda_entries this worker serves. The
  /// host runs the same logic as the NIC but under the host cost model;
  /// dispatch happens in the runtime, not a P4 match stage.
  void deploy(microc::Program program);

  void set_kv_server(NodeId node) { kv_server_ = node; }

  const HostStats& stats() const { return stats_; }
  /// Cores currently busy in any stage (kernel / runtime / GIL).
  std::uint32_t busy_cores() const { return busy_units_; }
  const HostConfig& config() const { return config_; }

  /// Attaches (nullptr detaches) the span recorder. Requests whose
  /// lambda header carries a trace id get host.queue / host.kernel /
  /// host.runtime / host.execute / host.kv_wait spans. Recording never
  /// affects simulated timing.
  void set_tracer(trace::TraceRecorder* tracer) { tracer_ = tracer; }

 private:
  struct Job;
  /// A queued single-stage resource (capacity units, FIFO).
  struct Stage {
    std::uint32_t capacity = 1;
    std::uint32_t busy = 0;
    std::deque<std::pair<std::unique_ptr<Job>, SimDuration>> queue;
  };

  void handle_packet(const net::Packet& packet);
  void handle_request(const net::Packet& packet, net::BufferView body);
  void handle_kv_response(const net::Packet& packet);
  void admit(std::unique_ptr<Job> job);
  void try_admit();
  const char* stage_span_name(const Stage& stage) const;

  // Stage plumbing: occupy `stage` for `service`, then continue.
  enum class Next : std::uint8_t { kRuntime, kGil, kTx, kDone };
  void enter_stage(Stage& stage, std::unique_ptr<Job> job,
                   SimDuration service, Next next);
  void stage_done(Stage& stage, std::unique_ptr<Job> job, Next next);
  void run_gil(std::unique_ptr<Job> job);   // executes the lambda
  void finish_job(std::unique_ptr<Job> job);

  SimDuration jittered(SimDuration base);

  sim::Simulator& sim_;
  net::Network& network_;
  HostConfig config_;
  NodeId node_;
  NodeId kv_server_ = kInvalidNode;
  Rng rng_;

  std::optional<microc::Program> program_;
  microc::ObjectStore globals_;

  Stage kernel_;   // per-packet work
  Stage runtime_;  // per-request dispatch
  Stage gil_;      // interpreted execution
  WorkloadId gil_last_workload_ = kInvalidWorkload;
  std::uint32_t busy_units_ = 0;

  std::uint32_t active_jobs_ = 0;  // jobs holding a service thread
  std::deque<std::unique_ptr<Job>> admission_;

  struct Reassembly {
    std::vector<net::BufferView> frags;
    std::uint32_t received = 0;
    net::Packet first;
  };
  std::map<std::pair<NodeId, RequestId>, Reassembly> reassembly_;

  std::map<RequestId, std::unique_ptr<Job>> waiting_kv_;
  RequestId next_token_ = 1;

  trace::TraceRecorder* tracer_ = nullptr;

  HostStats stats_;
};

}  // namespace lnic::hostsim
