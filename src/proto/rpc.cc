#include "proto/rpc.h"

#include <cassert>

namespace lnic::proto {

using net::Packet;
using net::PacketKind;

RpcClient::RpcClient(sim::Simulator& sim, net::Network& network,
                     RpcConfig config)
    : sim_(sim), network_(network), config_(config) {
  node_ = network_.attach([this](const Packet& p) { on_packet(p); });
}

void RpcClient::call(NodeId dst, WorkloadId workload,
                     std::vector<std::uint8_t> payload, RpcCallback callback) {
  const RequestId id = next_id_++;
  Pending pending;
  pending.dst = dst;
  pending.workload = workload;
  pending.payload = std::move(payload);
  pending.callback = std::move(callback);
  pending.sent_at = sim_.now();
  pending_.emplace(id, std::move(pending));
  transmit(id);
  arm_timer(id);
}

void RpcClient::transmit(RequestId id) {
  const Pending& p = pending_.at(id);
  net::LambdaHeader hdr;
  hdr.workload_id = p.workload;
  hdr.request_id = id;
  // Single-packet requests go through parse+match directly; larger
  // payloads are committed to NIC memory via RDMA (D3).
  const PacketKind kind = p.payload.size() > net::kMaxPayload
                              ? PacketKind::kRdmaWrite
                              : PacketKind::kRequest;
  auto frags = net::fragment(node_, p.dst, kind, hdr, p.payload);
  for (auto& f : frags) network_.send(std::move(f));
}

void RpcClient::arm_timer(RequestId id) {
  Pending& p = pending_.at(id);
  p.timer = sim_.schedule(config_.retransmit_timeout,
                          [this, id] { on_timeout(id); });
}

void RpcClient::on_timeout(RequestId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  p.timer = sim::kInvalidEvent;
  if (p.retries >= config_.max_retries) {
    ++failures_;
    RpcCallback cb = std::move(p.callback);
    pending_.erase(it);
    if (cb) cb(make_error("rpc: request timed out after retries"));
    return;
  }
  ++p.retries;
  ++retransmissions_;
  // Weakly-consistent delivery: resend the whole message; receivers
  // treat duplicate (src, request id) pairs idempotently.
  p.frags.clear();
  p.received = 0;
  transmit(id);
  arm_timer(id);
}

void RpcClient::on_packet(const Packet& packet) {
  if (packet.kind != PacketKind::kResponse) return;
  auto it = pending_.find(packet.lambda.request_id);
  if (it == pending_.end()) return;  // late duplicate after completion
  Pending& p = it->second;
  if (p.frags.empty()) p.frags.resize(packet.lambda.frag_count);
  if (packet.lambda.frag_index >= p.frags.size()) return;
  if (p.frags[packet.lambda.frag_index].empty()) {
    p.frags[packet.lambda.frag_index] = packet.payload;
    ++p.received;
  }
  if (p.received < p.frags.size()) return;

  RpcResponse response;
  for (auto& f : p.frags) {
    response.payload.insert(response.payload.end(), f.begin(), f.end());
  }
  response.latency = sim_.now() - p.sent_at;
  response.retries = p.retries;
  if (p.timer != sim::kInvalidEvent) sim_.cancel(p.timer);
  RpcCallback cb = std::move(p.callback);
  pending_.erase(it);
  if (cb) cb(std::move(response));
}

}  // namespace lnic::proto
