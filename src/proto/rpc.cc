#include "proto/rpc.h"

#include <algorithm>
#include <cassert>

#include "common/flightrec.h"

namespace lnic::proto {

using net::Packet;
using net::PacketKind;

namespace {

/// Deterministic jitter for backed-off retransmissions: a SplitMix64-style
/// hash of (request id, retry count) keeps replays bit-reproducible while
/// decorrelating the retry clocks of concurrent requests.
std::uint64_t jitter_hash(RequestId id, std::uint32_t retries) {
  std::uint64_t z = id * 0x9E3779B97F4A7C15ull + retries;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

void RttEstimator::sample(SimDuration rtt) {
  const double r = static_cast<double>(rtt);
  if (!has_) {
    // First sample (RFC 6298 §2.2): srtt = R, rttvar = R/2.
    srtt_ = r;
    rttvar_ = r / 2.0;
    has_ = true;
    return;
  }
  const double err = r - srtt_;
  srtt_ += err / 8.0;
  rttvar_ += (std::abs(err) - rttvar_) / 4.0;
}

SimDuration RttEstimator::rto(SimDuration min_rto, SimDuration max_rto) const {
  const double raw = srtt_ + 4.0 * rttvar_;
  const auto rto = static_cast<SimDuration>(raw);
  return std::clamp(rto, min_rto, max_rto);
}

RpcClient::RpcClient(sim::Simulator& sim, net::Network& network,
                     RpcConfig config)
    : sim_(sim), network_(network), config_(config) {
  node_ = network_.attach([this](const Packet& p) { on_packet(p); }, &sim_);
}

void RpcClient::call(NodeId dst, WorkloadId workload, net::BufferView payload,
                     RpcCallback callback, trace::SpanContext ctx,
                     TenantId tenant) {
  const RequestId id = next_id_++;
  Pending pending;
  pending.dst = dst;
  pending.workload = workload;
  pending.tenant = tenant;
  pending.payload = std::move(payload);
  pending.callback = std::move(callback);
  pending.sent_at = sim_.now();
  if (tracer_ != nullptr && ctx.valid()) {
    pending.ctx = ctx;
    pending.call_span =
        tracer_->start_span(ctx.trace, ctx.parent, "rpc.call", sim_.now());
    tracer_->annotate(pending.call_span, "dst", std::to_string(dst));
  }
  pending_.emplace(id, std::move(pending));
  transmit(id);
  arm_timer(id);
}

SimDuration RpcClient::current_rto(NodeId dst) const {
  if (config_.adaptive) {
    const auto it = estimators_.find(dst);
    if (it != estimators_.end() && it->second.has_sample()) {
      return it->second.rto(config_.min_rto, config_.max_rto);
    }
  }
  return config_.retransmit_timeout;
}

const RttEstimator* RpcClient::estimator(NodeId dst) const {
  const auto it = estimators_.find(dst);
  if (it == estimators_.end() || !it->second.has_sample()) return nullptr;
  return &it->second;
}

void RpcClient::transmit(RequestId id) {
  Pending& p = pending_.at(id);
  net::LambdaHeader hdr;
  hdr.workload_id = p.workload;
  hdr.request_id = id;
  hdr.tenant_id = p.tenant;
  if (p.call_span != trace::kInvalidSpan) {
    p.attempt_span = tracer_->start_span(p.ctx.trace, p.call_span,
                                         "rpc.attempt", sim_.now());
    tracer_->annotate(p.attempt_span, "retry", std::to_string(p.retries));
    hdr.trace_id = p.ctx.trace;
    hdr.parent_span = p.attempt_span;
  }
  // Single-packet requests go through parse+match directly; larger
  // payloads are committed to NIC memory via RDMA (D3).
  const PacketKind kind = p.payload.size() > net::kMaxPayload
                              ? PacketKind::kRdmaWrite
                              : PacketKind::kRequest;
  auto frags = net::fragment(node_, p.dst, kind, hdr, p.payload);
  for (auto& f : frags) network_.send(std::move(f));
}

SimDuration RpcClient::retransmit_delay(const Pending& p, RequestId id) const {
  if (!config_.adaptive) return config_.retransmit_timeout;
  SimDuration base = current_rto(p.dst);
  // Exponential backoff on consecutive retries of the same request,
  // saturating at max_rto.
  for (std::uint32_t i = 0; i < p.retries && base < config_.max_rto; ++i) {
    base = std::min<SimDuration>(config_.max_rto, base * 2);
  }
  if (p.retries > 0 && base > 4) {
    // Up to 25% deterministic jitter so synchronized retries fan out
    // instead of re-colliding (the retransmission-storm guard).
    base += static_cast<SimDuration>(jitter_hash(id, p.retries) %
                                     static_cast<std::uint64_t>(base / 4));
    base = std::min(base, config_.max_rto);
  }
  return base;
}

void RpcClient::arm_timer(RequestId id) {
  Pending& p = pending_.at(id);
  p.timer = sim_.schedule(retransmit_delay(p, id),
                          [this, id] { on_timeout(id); });
}

void RpcClient::on_timeout(RequestId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  p.timer = sim::kInvalidEvent;
  if (p.attempt_span != trace::kInvalidSpan) {
    tracer_->annotate(p.attempt_span, "timeout", "true");
    tracer_->end_span(p.attempt_span, sim_.now());
    p.attempt_span = trace::kInvalidSpan;
  }
  if (p.retries >= config_.max_retries) {
    ++failures_;
    flightrec::FlightRecorder::global().record(
        sim_.now(), flightrec::Kind::kRtoBackoff, id, p.retries,
        "request " + std::to_string(id) + " timed out after " +
            std::to_string(p.retries) + " retries");
    if (p.call_span != trace::kInvalidSpan) {
      tracer_->annotate(p.call_span, "error", "timed out after retries");
      tracer_->end_span(p.call_span, sim_.now());
    }
    RpcCallback cb = std::move(p.callback);
    pending_.erase(it);
    if (cb) cb(make_error("rpc: request timed out after retries"));
    return;
  }
  ++p.retries;
  ++retransmissions_;
  // Weakly-consistent delivery: resend the whole message; receivers
  // treat duplicate (src, request id) pairs idempotently.
  p.frags.clear();
  p.got.clear();
  p.received = 0;
  transmit(id);
  arm_timer(id);
}

void RpcClient::on_packet(const Packet& packet) {
  if (packet.kind != PacketKind::kResponse) return;
  auto it = pending_.find(packet.lambda.request_id);
  if (it == pending_.end()) return;  // late duplicate after completion
  Pending& p = it->second;
  const std::uint32_t count = packet.lambda.frag_count;
  if (count == 0) return;  // malformed header
  if (p.frags.empty()) {
    p.frags.resize(count);
    p.got.assign(count, false);
  } else if (count != p.frags.size()) {
    return;  // inconsistent frag_count across fragments: drop
  }
  const std::uint32_t index = packet.lambda.frag_index;
  if (index >= p.frags.size()) return;
  if (p.got[index]) return;  // duplicate fragment (possibly empty)
  p.got[index] = true;
  p.frags[index] = packet.payload;
  ++p.received;
  if (p.received < p.frags.size()) return;

  // Karn's rule: a response to a retransmitted request is ambiguous (it
  // may answer any of the transmissions), so it contributes no sample.
  if (p.retries == 0) {
    estimators_[p.dst].sample(sim_.now() - p.sent_at);
  }

  RpcResponse response;
  // Zero-copy on the fast path: response fragments are contiguous
  // slices of the responder's buffer, so this is a spanning view.
  response.payload = coalesce(p.frags);
  response.latency = sim_.now() - p.sent_at;
  response.retries = p.retries;
  if (p.attempt_span != trace::kInvalidSpan) {
    tracer_->end_span(p.attempt_span, sim_.now());
  }
  if (p.call_span != trace::kInvalidSpan) {
    tracer_->annotate(p.call_span, "retries", std::to_string(p.retries));
    tracer_->end_span(p.call_span, sim_.now());
  }
  if (p.timer != sim::kInvalidEvent) sim_.cancel(p.timer);
  RpcCallback cb = std::move(p.callback);
  pending_.erase(it);
  if (cb) cb(std::move(response));
}

}  // namespace lnic::proto
