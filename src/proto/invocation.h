// Request decoding shared by every backend: builds the Micro-C
// invocation (EXTRACTED_HEADERS_T + body + match data) from a request's
// lambda header and payload. The first three payload words carry the
// workload-specific fields (op, key, value — see workloads/lambdas.h
// encoders); image dimensions pack into the op word.
#pragma once

#include <cstdint>
#include <vector>

#include "microc/interp.h"
#include "net/packet.h"

namespace lnic::proto {

inline std::uint64_t payload_word(const BufferView& body,
                                  std::size_t index) {
  std::uint64_t v = 0;
  for (std::size_t b = 0; b < 8 && index * 8 + b < body.size(); ++b) {
    v |= static_cast<std::uint64_t>(body[index * 8 + b]) << (8 * b);
  }
  return v;
}

/// Fills an invocation from the request header + (reassembled) body.
/// `body` is a zero-copy view shared with the packet buffer.
inline microc::Invocation build_invocation(const net::LambdaHeader& header,
                                           NodeId src, BufferView body) {
  microc::Invocation inv;
  inv.headers.fields[microc::kHdrWorkloadId] = header.workload_id;
  inv.headers.fields[microc::kHdrRequestId] = header.request_id;
  inv.headers.fields[microc::kHdrSrcNode] = src;
  inv.headers.fields[microc::kHdrBodyLen] = body.size();
  const std::uint64_t word0 = payload_word(body, 0);
  inv.headers.fields[microc::kHdrOp] = word0;
  inv.headers.fields[microc::kHdrKey] = payload_word(body, 1);
  inv.headers.fields[microc::kHdrValue] = payload_word(body, 2);
  inv.headers.fields[microc::kHdrImageWidth] = word0 & 0xFFFF;
  inv.headers.fields[microc::kHdrImageHeight] = (word0 >> 16) & 0xFFFF;
  inv.body = std::move(body);
  inv.match_data = {1};  // route metadata (P4 metadata after reduction)
  return inv;
}

}  // namespace lnic::proto
