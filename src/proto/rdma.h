// One-sided RDMA plumbing for NIC-resident stores (SmartOffloading
// style: the SmartNIC caches index nodes and reaches its host's DRAM
// with one-sided verbs). Two endpoints ride the existing
// kRdmaWrite/kRdmaEvent packet path:
//
//  - HostMemoryNode: the passive target. It answers READ requests with a
//    payload of the requested length after a DRAM+DMA service delay, and
//    acknowledges WRITE requests after absorbing their payload. It is a
//    *timing* server: the authoritative bytes live in the simulated
//    store's in-memory structures, so transfers carry correctly-sized
//    synthetic payloads (views of one shared zero buffer — no per-op
//    allocation, and serialization delays on the fabric stay faithful).
//
//  - RdmaQp: the active side (the NIC). read()/write() issue a verb and
//    invoke the completion callback when the response (reassembled if
//    the transfer spanned fragments) arrives. Requests are matched to
//    completions by request id; any number may be in flight.
//
// Wire encoding: verbs travel as kRdmaWrite packets with
// LambdaHeader::workload_id carrying the opcode. READ requests have a
// 12-byte body [addr u64][len u32]; WRITE requests carry the data bytes
// themselves (fragmented by net::fragment when above kMaxPayload).
// Completions are kRdmaEvent packets echoing the request id: READ
// completions carry the data, WRITE completions an 8-byte ack.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/buffer.h"
#include "common/types.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace lnic::proto {

/// Opcode carried in LambdaHeader::workload_id of verb packets.
constexpr WorkloadId kRdmaOpRead = 0;
constexpr WorkloadId kRdmaOpWrite = 1;

struct HostMemoryConfig {
  /// Service delay for a one-sided read: DRAM access + DMA engine setup.
  SimDuration read_service = nanoseconds(900);
  /// Service delay for absorbing a one-sided write.
  SimDuration write_service = nanoseconds(600);
};

struct HostMemoryStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  Bytes bytes_read = 0;     // payload bytes served to readers
  Bytes bytes_written = 0;  // payload bytes absorbed from writers
};

/// Passive host-DRAM target; attaches one node to the fabric.
class HostMemoryNode {
 public:
  HostMemoryNode(sim::Simulator& sim, net::Network& network,
                 HostMemoryConfig config = {});

  NodeId node() const { return node_; }
  const HostMemoryStats& stats() const { return stats_; }

 private:
  void handle_packet(const net::Packet& packet);
  void serve(const net::Packet& request, net::BufferView body);

  /// A view of `len` synthetic bytes (shared zero storage, grown on
  /// demand) — read completions without per-verb allocation.
  net::BufferView synthetic(Bytes len);

  sim::Simulator& sim_;
  net::Network& network_;
  HostMemoryConfig config_;
  NodeId node_;
  Buffer::Ptr zeros_;
  HostMemoryStats stats_;

  struct Reassembly {
    std::vector<net::BufferView> frags;
    std::uint32_t received = 0;
    net::Packet first;
  };
  std::map<std::pair<NodeId, RequestId>, Reassembly> reassembly_;
};

struct RdmaQpStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  Bytes bytes_fetched = 0;
  Bytes bytes_pushed = 0;
};

/// Active verb issuer; attaches its own node (the QP's endpoint).
class RdmaQp {
 public:
  RdmaQp(sim::Simulator& sim, net::Network& network);

  NodeId node() const { return node_; }
  const RdmaQpStats& stats() const { return stats_; }
  std::uint64_t inflight() const { return pending_.size(); }

  /// One-sided read of `len` bytes at `addr`; `done` fires when the full
  /// completion has arrived at the QP.
  void read(NodeId host, std::uint64_t addr, Bytes len,
            std::function<void()> done);

  /// One-sided write of `len` bytes to `addr`; `done` fires on the ack.
  void write(NodeId host, std::uint64_t addr, Bytes len,
             std::function<void()> done);

 private:
  void handle_packet(const net::Packet& packet);
  /// A view of `len` synthetic bytes (shared zero storage, grown on
  /// demand) — sized payloads without per-verb allocation.
  net::BufferView synthetic(Bytes len);

  sim::Simulator& sim_;
  net::Network& network_;
  NodeId node_;
  RequestId next_id_ = 1;
  Buffer::Ptr zeros_;

  struct Pending {
    std::function<void()> done;
    std::uint32_t frags_expected = 1;
    std::uint32_t frags_received = 0;
  };
  std::map<RequestId, Pending> pending_;
  RdmaQpStats stats_;
};

}  // namespace lnic::proto
