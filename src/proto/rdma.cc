#include "proto/rdma.h"

#include "net/packet.h"

namespace lnic::proto {

using net::Packet;
using net::PacketKind;

namespace {

std::uint64_t read_u64(const net::BufferView& body, std::size_t at) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8 && at + i < body.size(); ++i) {
    v |= static_cast<std::uint64_t>(body[at + i]) << (8 * i);
  }
  return v;
}

std::uint32_t read_u32(const net::BufferView& body, std::size_t at) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4 && at + i < body.size(); ++i) {
    v |= static_cast<std::uint32_t>(body[at + i]) << (8 * i);
  }
  return v;
}

}  // namespace

// ------------------------------------------------------- HostMemoryNode

HostMemoryNode::HostMemoryNode(sim::Simulator& sim, net::Network& network,
                               HostMemoryConfig config)
    : sim_(sim), network_(network), config_(config) {
  node_ = network_.attach([this](const Packet& p) { handle_packet(p); },
                          &sim_);
}

void HostMemoryNode::handle_packet(const Packet& packet) {
  if (packet.kind != PacketKind::kRdmaWrite) return;
  if (packet.lambda.frag_count > 1) {
    const auto key = std::make_pair(packet.src, packet.lambda.request_id);
    Reassembly& re = reassembly_[key];
    if (re.frags.empty()) {
      re.frags.resize(packet.lambda.frag_count);
      re.first = packet;
    }
    if (packet.lambda.frag_index >= re.frags.size()) return;
    if (re.frags[packet.lambda.frag_index].empty()) {
      re.frags[packet.lambda.frag_index] = packet.payload;
      ++re.received;
    }
    if (re.received < re.frags.size()) return;
    net::BufferView body = coalesce(re.frags);
    Packet first = re.first;
    reassembly_.erase(key);
    serve(first, std::move(body));
  } else {
    serve(packet, packet.payload);
  }
}

net::BufferView HostMemoryNode::synthetic(Bytes len) {
  if (!zeros_ || zeros_->size() < len) {
    zeros_ = Buffer::adopt(std::vector<std::uint8_t>(
        std::max<std::size_t>(len, 4096), 0));
  }
  return net::BufferView(zeros_, 0, len);
}

void HostMemoryNode::serve(const Packet& request, net::BufferView body) {
  const bool is_read = request.lambda.workload_id == kRdmaOpRead;
  SimDuration service;
  net::LambdaHeader header;
  header.workload_id = request.lambda.workload_id;
  header.request_id = request.lambda.request_id;
  net::BufferView reply_body;
  if (is_read) {
    const Bytes len = read_u32(body, 8);
    ++stats_.reads;
    stats_.bytes_read += len;
    service = config_.read_service;
    reply_body = synthetic(std::max<Bytes>(len, 1));
  } else {
    ++stats_.writes;
    stats_.bytes_written += body.size();
    service = config_.write_service;
    reply_body = synthetic(8);
  }
  const NodeId dst = request.src;
  sim_.schedule(service, [this, dst, header, reply_body]() {
    for (Packet& p : net::fragment(node_, dst, PacketKind::kRdmaEvent, header,
                                   reply_body)) {
      network_.send(std::move(p));
    }
  });
}

// --------------------------------------------------------------- RdmaQp

RdmaQp::RdmaQp(sim::Simulator& sim, net::Network& network)
    : sim_(sim), network_(network) {
  node_ = network_.attach([this](const Packet& p) { handle_packet(p); },
                          &sim_);
}

net::BufferView RdmaQp::synthetic(Bytes len) {
  if (!zeros_ || zeros_->size() < len) {
    zeros_ = Buffer::adopt(std::vector<std::uint8_t>(
        std::max<std::size_t>(len, 4096), 0));
  }
  return net::BufferView(zeros_, 0, len);
}

void RdmaQp::read(NodeId host, std::uint64_t addr, Bytes len,
                  std::function<void()> done) {
  const RequestId id = next_id_++;
  ++stats_.reads;
  stats_.bytes_fetched += len;
  Pending& p = pending_[id];
  p.done = std::move(done);
  // A read completion spans ceil(len / kMaxPayload) fragments.
  p.frags_expected = static_cast<std::uint32_t>(
      len == 0 ? 1 : (len + net::kMaxPayload - 1) / net::kMaxPayload);

  std::vector<std::uint8_t> body(12);
  for (int i = 0; i < 8; ++i) {
    body[i] = static_cast<std::uint8_t>(addr >> (8 * i));
  }
  for (int i = 0; i < 4; ++i) {
    body[8 + i] = static_cast<std::uint8_t>(len >> (8 * i));
  }
  Packet request;
  request.src = node_;
  request.dst = host;
  request.kind = PacketKind::kRdmaWrite;
  request.lambda.workload_id = kRdmaOpRead;
  request.lambda.request_id = id;
  request.payload = std::move(body);
  network_.send(std::move(request));
}

void RdmaQp::write(NodeId host, std::uint64_t addr, Bytes len,
                   std::function<void()> done) {
  (void)addr;  // the host target is a timing server; data is synthetic
  const RequestId id = next_id_++;
  ++stats_.writes;
  stats_.bytes_pushed += len;
  Pending& p = pending_[id];
  p.done = std::move(done);
  p.frags_expected = 1;  // write completions are a single ack packet

  net::LambdaHeader header;
  header.workload_id = kRdmaOpWrite;
  header.request_id = id;
  for (Packet& packet : net::fragment(node_, host, PacketKind::kRdmaWrite,
                                      header, synthetic(std::max<Bytes>(len, 1)))) {
    network_.send(std::move(packet));
  }
}

void RdmaQp::handle_packet(const Packet& packet) {
  if (packet.kind != PacketKind::kRdmaEvent) return;
  auto it = pending_.find(packet.lambda.request_id);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  if (++p.frags_received < p.frags_expected) return;
  auto done = std::move(p.done);
  pending_.erase(it);
  if (done) done();
}

}  // namespace lnic::proto
