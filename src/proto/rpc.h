// Weakly-consistent RPC endpoint (paper §4.2.1 D3).
//
// λ-NIC deliberately avoids TCP: requests/responses are independent,
// mutually-exclusive message pairs. "A sender (the gateway or external
// services) tracks the outgoing RPCs to lambdas, and is responsible for
// resending a message in case of timeouts or packet drops." This class
// is that sender: it assigns request IDs, fragments multi-packet
// payloads (RDMA-style writes), reassembles multi-fragment responses,
// arms a retransmission timer per request, and reports per-request
// latency and retry counts.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "common/types.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace lnic::proto {

struct RpcConfig {
  SimDuration retransmit_timeout = milliseconds(50);
  std::uint32_t max_retries = 5;
};

struct RpcResponse {
  std::vector<std::uint8_t> payload;
  SimDuration latency = 0;    // send -> complete response
  std::uint32_t retries = 0;
};

using RpcCallback = std::function<void(Result<RpcResponse>)>;

class RpcClient {
 public:
  RpcClient(sim::Simulator& sim, net::Network& network, RpcConfig config = {});

  NodeId node() const { return node_; }

  /// Issues one RPC. Multi-packet payloads are sent as RDMA writes; the
  /// callback fires on the complete (reassembled) response or after
  /// max_retries timeouts.
  void call(NodeId dst, WorkloadId workload, std::vector<std::uint8_t> payload,
            RpcCallback callback);

  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t failures() const { return failures_; }
  std::uint64_t inflight() const { return pending_.size(); }

 private:
  struct Pending {
    NodeId dst;
    WorkloadId workload;
    std::vector<std::uint8_t> payload;
    RpcCallback callback;
    SimTime sent_at;
    std::uint32_t retries = 0;
    sim::EventId timer = sim::kInvalidEvent;
    // Response reassembly.
    std::vector<std::vector<std::uint8_t>> frags;
    std::uint32_t received = 0;
  };

  void transmit(RequestId id);
  void arm_timer(RequestId id);
  void on_timeout(RequestId id);
  void on_packet(const net::Packet& packet);

  sim::Simulator& sim_;
  net::Network& network_;
  RpcConfig config_;
  NodeId node_;
  RequestId next_id_ = 1;
  std::map<RequestId, Pending> pending_;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t failures_ = 0;
};

}  // namespace lnic::proto
