// Weakly-consistent RPC endpoint (paper §4.2.1 D3).
//
// λ-NIC deliberately avoids TCP: requests/responses are independent,
// mutually-exclusive message pairs. "A sender (the gateway or external
// services) tracks the outgoing RPCs to lambdas, and is responsible for
// resending a message in case of timeouts or packet drops." This class
// is that sender: it assigns request IDs, fragments multi-packet
// payloads (RDMA-style writes), reassembles multi-fragment responses,
// arms a retransmission timer per request, and reports per-request
// latency and retry counts.
//
// The retransmission timer runs in one of two modes:
//  - fixed (default): every request re-arms after `retransmit_timeout`,
//    bit-identical to the original sender.
//  - adaptive: per-destination Jacobson/Karels RTT estimation drives the
//    timer (RTO = srtt + 4·rttvar clamped to [min_rto, max_rto]), with
//    exponential backoff and deterministic jitter on consecutive retries
//    and Karn's rule (no RTT sample from retransmitted requests).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "common/trace.h"
#include "common/types.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace lnic::proto {

struct RpcConfig {
  /// Fixed-mode timer, and the initial RTO in adaptive mode before the
  /// first RTT sample arrives (RFC 6298 style).
  SimDuration retransmit_timeout = milliseconds(50);
  std::uint32_t max_retries = 5;
  /// Enables per-destination RTT estimation + backoff. Off by default so
  /// existing fixed-timer deployments replay bit-for-bit.
  bool adaptive = false;
  /// Clamp bounds for the adaptive RTO.
  SimDuration min_rto = microseconds(200);
  SimDuration max_rto = seconds(2);
};

/// Jacobson/Karels smoothed RTT estimator (gains 1/8 and 1/4, as in
/// TCP). One instance per destination; fed only by unambiguous samples
/// (Karn's rule is enforced by the caller).
class RttEstimator {
 public:
  void sample(SimDuration rtt);
  bool has_sample() const { return has_; }
  SimDuration srtt() const { return static_cast<SimDuration>(srtt_); }
  SimDuration rttvar() const { return static_cast<SimDuration>(rttvar_); }

  /// RTO = srtt + 4·rttvar clamped to [min_rto, max_rto].
  SimDuration rto(SimDuration min_rto, SimDuration max_rto) const;

 private:
  double srtt_ = 0.0;
  double rttvar_ = 0.0;
  bool has_ = false;
};

struct RpcResponse {
  /// Reassembled response body: a zero-copy view that (on the fast path)
  /// shares the responder's buffer end-to-end.
  net::BufferView payload;
  SimDuration latency = 0;    // send -> complete response
  std::uint32_t retries = 0;
};

using RpcCallback = std::function<void(Result<RpcResponse>)>;

class RpcClient {
 public:
  RpcClient(sim::Simulator& sim, net::Network& network, RpcConfig config = {});

  NodeId node() const { return node_; }

  /// Issues one RPC. Multi-packet payloads are sent as RDMA writes; the
  /// callback fires on the complete (reassembled) response or after
  /// max_retries timeouts. When a tracer is attached and `ctx` is valid,
  /// the call records an `rpc.call` span with one `rpc.attempt` child
  /// per transmission (timed-out attempts are annotated), and every
  /// outgoing packet carries the attempt's span context.
  /// `tenant` stamps the lambda header's tenant namespace; the default
  /// keeps legacy single-tenant traffic byte-identical.
  void call(NodeId dst, WorkloadId workload, net::BufferView payload,
            RpcCallback callback, trace::SpanContext ctx = {},
            TenantId tenant = kDefaultTenant);

  /// Attaches (nullptr detaches) the span recorder. Off by default;
  /// recording never affects simulated timing.
  void set_tracer(trace::TraceRecorder* tracer) { tracer_ = tracer; }

  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t failures() const { return failures_; }
  std::uint64_t inflight() const { return pending_.size(); }

  /// The timer a fresh (retries == 0) request to `dst` would arm right
  /// now: the adaptive RTO once a sample exists, else the configured
  /// fixed/initial timeout.
  SimDuration current_rto(NodeId dst) const;

  /// The destination's estimator, or nullptr before the first sample.
  const RttEstimator* estimator(NodeId dst) const;

 private:
  struct Pending {
    NodeId dst;
    WorkloadId workload;
    TenantId tenant = kDefaultTenant;
    // The request body is retained as a view; retransmissions re-slice
    // the same buffer instead of re-copying the payload.
    net::BufferView payload;
    RpcCallback callback;
    SimTime sent_at;
    std::uint32_t retries = 0;
    sim::EventId timer = sim::kInvalidEvent;
    trace::SpanContext ctx;
    trace::SpanId call_span = trace::kInvalidSpan;
    trace::SpanId attempt_span = trace::kInvalidSpan;
    // Response reassembly: `got` tracks receipt explicitly so duplicate
    // or zero-length fragments can never double-count.
    std::vector<net::BufferView> frags;
    std::vector<bool> got;
    std::uint32_t received = 0;
  };

  void transmit(RequestId id);
  void arm_timer(RequestId id);
  void on_timeout(RequestId id);
  void on_packet(const net::Packet& packet);
  SimDuration retransmit_delay(const Pending& p, RequestId id) const;

  sim::Simulator& sim_;
  net::Network& network_;
  RpcConfig config_;
  trace::TraceRecorder* tracer_ = nullptr;
  NodeId node_;
  RequestId next_id_ = 1;
  std::map<RequestId, Pending> pending_;
  std::map<NodeId, RttEstimator> estimators_;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t failures_ = 0;
};

}  // namespace lnic::proto
