#include "microc/verify.h"

#include <string>
#include <vector>

namespace lnic::microc {

namespace {
Error err(const std::string& fn, const std::string& what) {
  return make_error("verify: function '" + fn + "': " + what);
}

// DFS cycle detection over the call graph: NPUs have no stack for
// recursion (§3.1b), so any call cycle is a compile-time error.
bool has_call_cycle(const Program& program, std::size_t fn,
                    std::vector<std::uint8_t>& state) {
  state[fn] = 1;  // visiting
  for (const auto& block : program.functions[fn].blocks) {
    for (const auto& in : block.instrs) {
      if (in.op != Opcode::kCall) continue;
      const auto callee = static_cast<std::size_t>(in.imm);
      if (callee >= program.functions.size()) continue;  // checked elsewhere
      if (state[callee] == 1) return true;
      if (state[callee] == 0 && has_call_cycle(program, callee, state)) {
        return true;
      }
    }
  }
  state[fn] = 2;  // done
  return false;
}
}  // namespace

Status verify(const Program& program) {
  const auto num_functions = program.functions.size();
  const auto num_objects = program.objects.size();

  if (program.dispatch_function >= num_functions) {
    return make_error("verify: dispatch function index out of range");
  }
  for (const auto& [wid, fn_index] : program.lambda_entries) {
    (void)wid;
    if (fn_index >= num_functions) {
      return make_error("verify: lambda entry references missing function");
    }
  }

  // Recursion (direct or mutual) is unsupported on NPUs (§3.1b).
  {
    std::vector<std::uint8_t> state(program.functions.size(), 0);
    for (std::size_t i = 0; i < program.functions.size(); ++i) {
      if (state[i] == 0 && has_call_cycle(program, i, state)) {
        return err(program.functions[i].name,
                   "participates in a call cycle (recursion unsupported)");
      }
    }
  }

  for (const auto& fn : program.functions) {
    if (fn.blocks.empty()) return err(fn.name, "has no blocks");
    if (fn.num_args > fn.num_regs) {
      return err(fn.name, "more args than registers");
    }
    for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
      const auto& block = fn.blocks[bi];
      if (block.instrs.empty()) {
        return err(fn.name, "block " + std::to_string(bi) + " is empty");
      }
      for (std::size_t ii = 0; ii < block.instrs.size(); ++ii) {
        const Instr& in = block.instrs[ii];
        const bool last = ii + 1 == block.instrs.size();
        if (is_terminator(in.op) != last) {
          return err(fn.name, "terminator placement in block " +
                                  std::to_string(bi));
        }
        auto reg_ok = [&](std::uint16_t r) { return r < fn.num_regs; };
        if (!reg_ok(in.dst) || !reg_ok(in.a) || !reg_ok(in.b)) {
          // kBr/kBrIf reuse b/imm as block indices; check those separately.
          if (in.op != Opcode::kBr && in.op != Opcode::kBrIf) {
            return err(fn.name, "register index out of range at " +
                                    std::string(to_string(in.op)));
          }
        }
        if (is_memory_op(in.op)) {
          if (in.obj >= num_objects) {
            return err(fn.name, "object index out of range");
          }
          if ((in.op == Opcode::kMemCpy || in.op == Opcode::kGrayscale) &&
              in.obj2 >= num_objects) {
            return err(fn.name, "source object index out of range");
          }
        }
        if (in.op == Opcode::kLoad || in.op == Opcode::kStore) {
          if (in.width != 1 && in.width != 2 && in.width != 4 &&
              in.width != 8) {
            return err(fn.name, "bad access width");
          }
        }
        if (in.op == Opcode::kBr) {
          if (in.imm < 0 ||
              static_cast<std::size_t>(in.imm) >= fn.blocks.size()) {
            return err(fn.name, "branch target out of range");
          }
        }
        if (in.op == Opcode::kBrIf) {
          if (in.imm < 0 ||
              static_cast<std::size_t>(in.imm) >= fn.blocks.size() ||
              in.b >= fn.blocks.size()) {
            return err(fn.name, "conditional branch target out of range");
          }
          if (in.a >= fn.num_regs) {
            return err(fn.name, "condition register out of range");
          }
        }
        if (in.op == Opcode::kCall) {
          if (in.imm < 0 ||
              static_cast<std::size_t>(in.imm) >= num_functions) {
            return err(fn.name, "call target out of range");
          }
          const auto& callee = program.functions[static_cast<std::size_t>(in.imm)];
          if (in.b != callee.num_args) {
            return err(fn.name, "call to '" + callee.name +
                                    "' passes wrong argument count");
          }
          if (in.b > 0 && static_cast<std::uint32_t>(in.a) + in.b > fn.num_regs) {
            return err(fn.name, "call argument window exceeds registers");
          }
        }
        if (in.op == Opcode::kLoadHdr) {
          if (in.imm < 0 || in.imm >= kHdrFieldCount) {
            return err(fn.name, "header field out of range");
          }
        }
      }
    }
  }
  return Status::ok_status();
}

}  // namespace lnic::microc
