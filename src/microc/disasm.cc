#include "microc/disasm.h"

#include <sstream>

namespace lnic::microc {

namespace {
std::string reg(std::uint16_t r) { return "r" + std::to_string(r); }

std::string obj_name(const Program& program, std::uint16_t index) {
  if (index < program.objects.size()) return program.objects[index].name;
  return "<obj" + std::to_string(index) + ">";
}
}  // namespace

std::string disassemble(const Instr& in, const Program& program) {
  std::ostringstream out;
  out << to_string(in.op);
  switch (in.op) {
    case Opcode::kConst:
      out << " " << reg(in.dst) << ", " << in.imm;
      break;
    case Opcode::kMov:
      out << " " << reg(in.dst) << ", " << reg(in.a);
      break;
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul:
    case Opcode::kDivU: case Opcode::kRemU: case Opcode::kAnd:
    case Opcode::kOr: case Opcode::kXor: case Opcode::kShl:
    case Opcode::kShr: case Opcode::kFxMul: case Opcode::kCmpEq:
    case Opcode::kCmpNe: case Opcode::kCmpLtU: case Opcode::kCmpLeU:
      out << " " << reg(in.dst) << ", " << reg(in.a) << ", " << reg(in.b);
      break;
    case Opcode::kAddImm: case Opcode::kMulImm: case Opcode::kCmpEqImm:
      out << " " << reg(in.dst) << ", " << reg(in.a) << ", " << in.imm;
      break;
    case Opcode::kSelect:
      out << " " << reg(in.dst) << ", " << reg(in.a) << " ? " << reg(in.b)
          << " : " << reg(static_cast<std::uint16_t>(in.imm));
      break;
    case Opcode::kLoadHdr:
      out << " " << reg(in.dst) << ", hdr."
          << to_string(static_cast<HeaderField>(in.imm));
      break;
    case Opcode::kLoadBody:
      out << " " << reg(in.dst) << ", body[" << reg(in.a) << "+" << in.imm
          << "]";
      break;
    case Opcode::kBodyLen:
      out << " " << reg(in.dst);
      break;
    case Opcode::kLoadMatch:
      out << " " << reg(in.dst) << ", match[" << in.imm << "]";
      break;
    case Opcode::kLoad:
      out << "." << static_cast<int>(in.width) << " " << reg(in.dst) << ", "
          << obj_name(program, in.obj) << "[" << reg(in.a) << "+" << in.imm
          << "]";
      break;
    case Opcode::kStore:
      out << "." << static_cast<int>(in.width) << " "
          << obj_name(program, in.obj) << "[" << reg(in.a) << "+" << in.imm
          << "], " << reg(in.b);
      break;
    case Opcode::kRespByte: case Opcode::kRespWord:
      out << " " << reg(in.a);
      break;
    case Opcode::kRespMem:
      out << " " << obj_name(program, in.obj) << "[" << reg(in.a) << " len "
          << reg(in.b) << "]";
      break;
    case Opcode::kMemCpy:
      out << " " << obj_name(program, in.obj) << "[" << reg(in.dst) << "], "
          << obj_name(program, in.obj2) << "[" << reg(in.a) << "], len "
          << reg(in.b);
      break;
    case Opcode::kGrayscale:
      out << " " << obj_name(program, in.obj) << "[" << reg(in.dst) << "], "
          << obj_name(program, in.obj2) << "[" << reg(in.a) << "], px "
          << reg(in.b);
      break;
    case Opcode::kHash:
      out << " " << reg(in.dst) << ", " << obj_name(program, in.obj) << "["
          << reg(in.a) << " len " << reg(in.b) << "]";
      break;
    case Opcode::kBodyCopy:
      out << " " << obj_name(program, in.obj) << "[" << reg(in.dst)
          << "], body[" << reg(in.a) << "], len " << reg(in.b);
      break;
    case Opcode::kExtCall:
      out << (in.imm == 0 ? ".get " : ".set ") << reg(in.dst) << ", key="
          << reg(in.a) << ", val=" << reg(in.b);
      break;
    case Opcode::kBr:
      out << " .b" << in.imm;
      break;
    case Opcode::kBrIf:
      out << " " << reg(in.a) << ", .b" << in.imm << ", .b" << in.b;
      break;
    case Opcode::kCall:
      out << " " << reg(in.dst) << ", ";
      if (static_cast<std::size_t>(in.imm) < program.functions.size()) {
        out << program.functions[static_cast<std::size_t>(in.imm)].name;
      } else {
        out << "<fn" << in.imm << ">";
      }
      out << "(" << in.b << " args from " << reg(in.a) << ")";
      break;
    case Opcode::kRet:
      out << " " << reg(in.a);
      break;
  }
  return out.str();
}

std::string disassemble(const Function& fn, const Program& program) {
  std::ostringstream out;
  out << "func " << fn.name << "(" << fn.num_args << " args, " << fn.num_regs
      << " regs):\n";
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    out << ".b" << b << ":\n";
    for (const auto& in : fn.blocks[b].instrs) {
      out << "    " << disassemble(in, program) << "\n";
    }
  }
  return out.str();
}

std::string disassemble(const Program& program) {
  std::ostringstream out;
  out << "program " << program.name << " (" << code_size(program)
      << " words)\n";
  out << "objects:\n";
  for (const auto& obj : program.objects) {
    out << "  " << obj.name << "[" << obj.size << "] "
        << (obj.scope == MemScope::kGlobal ? "global" : "local") << " @"
        << to_string(obj.region);
    if (!obj.initial_data.empty()) {
      out << " init=" << obj.initial_data.size() << "B";
    }
    out << "\n";
  }
  out << "parser:";
  for (auto field : program.parsed_fields) {
    out << " " << to_string(field);
  }
  out << "\n";
  for (const auto& fn : program.functions) {
    out << disassemble(fn, program);
  }
  return out.str();
}

}  // namespace lnic::microc
