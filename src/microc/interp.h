// Micro-C interpreter with cycle accounting.
//
// The same IR executes on every backend; what differs is the CostModel —
// NPU cores (633 MHz, far-memory latencies, hardware bulk engines) versus
// host CPUs (2 GHz, cache-friendly, but behind an interpreted language
// runtime for the bare-metal/container backends, §6.1.1). Each invocation
// yields a byte-accurate response payload *and* the cycle count that the
// simulation converts into service time, so compiler optimizations
// (§5.1) and memory placement (D2) change measured latency exactly as on
// the real NIC.
//
// kExtCall suspends the machine (paper D3: lambdas issue RPCs to external
// services); the backend performs the call over the simulated network and
// resume()s with the reply.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/types.h"
#include "microc/ir.h"

namespace lnic::microc {

/// Per-backend execution cost parameters.
struct CostModel {
  double frequency_hz = 633e6;  // NPU core clock (§6.1.2)
  /// Multiplier on scalar instruction costs, modelling the language
  /// runtime in front of the workload (the paper's host backends run a
  /// Python service; λ-NIC runs native firmware). 1 = native.
  double runtime_factor = 1.0;
  /// Multiplier on bulk intrinsic costs (memcpy/grayscale/hash inner
  /// loops). Pure-Python pixel loops pay close to runtime_factor; C
  /// library calls pay ~1. The paper's lambdas loop in Python.
  double bulk_factor = 1.0;

  std::uint32_t alu_cycles = 1;
  std::uint32_t branch_cycles = 1;
  std::uint32_t call_cycles = 5;
  std::uint32_t hdr_cycles = 1;     // pre-parsed header access
  std::uint32_t body_cycles = 8;    // packet-buffer (CTM) byte access
  std::uint32_t ext_call_cycles = 60;  // build/send the outgoing RPC

  /// Cycles per access by MemRegion (indexed by static_cast<int>).
  std::array<std::uint32_t, 4> region_read{1, 30, 90, 150};
  std::array<std::uint32_t, 4> region_write{1, 30, 90, 150};

  /// Bulk-transfer divisor for kMemCpy/kGrayscale memory traffic (DMA
  /// engines on the NIC, SIMD on hosts).
  std::uint32_t bulk_divisor = 4;

  /// ASIC-based SmartNIC NPU core (Netronome Agilio CX-like).
  static CostModel npu();
  /// Host CPU running native code.
  static CostModel host_native();
  /// Host CPU behind the OpenFaaS-style Python service (§6.1.1).
  static CostModel host_python();

  SimDuration cycles_to_duration(std::uint64_t cycles) const {
    return static_cast<SimDuration>(static_cast<double>(cycles) /
                                    frequency_hz * 1e9);
  }
};

/// Pre-parsed header values handed to the lambda (EXTRACTED_HEADERS_T).
struct HeaderValues {
  std::array<std::uint64_t, kHdrFieldCount> fields{};
};

/// One request to a deployed program.
struct Invocation {
  HeaderValues headers;
  /// Request payload / RDMA region: a zero-copy view into the packet
  /// buffer (the Machine only reads it, as NIC firmware reads CTM).
  BufferView body;
  std::vector<std::uint64_t> match_data; // MATCH_DATA_T
};

/// External call emitted by kExtCall. kind: 0 = GET, 1 = SET.
struct ExtRequest {
  std::int64_t kind = 0;
  std::uint64_t key = 0;
  std::uint64_t value = 0;
};

enum class RunState { kDone, kYield, kTrap };

struct Outcome {
  RunState state = RunState::kTrap;
  std::uint64_t return_value = 0;         // valid when kDone
  std::vector<std::uint8_t> response;     // deparse-stage payload
  std::uint64_t cycles = 0;               // cumulative, incl. runtime_factor
  std::uint64_t instructions = 0;         // dynamic instruction count
  ExtRequest ext;                         // valid when kYield
  std::string trap_message;               // valid when kTrap
};

/// Persistent global-object storage for one deployed program instance
/// ("global objects persist state across runs", §4.1). Local-scope
/// objects get fresh zeroed backing per invocation inside the Machine.
class ObjectStore {
 public:
  ObjectStore() = default;
  explicit ObjectStore(const Program& program) { reset(program); }
  void reset(const Program& program);
  std::vector<std::uint8_t>& data(std::size_t object_index) {
    return data_[object_index];
  }
  const std::vector<std::uint8_t>& data(std::size_t object_index) const {
    return data_[object_index];
  }
  Bytes total_bytes() const;

 private:
  std::vector<std::vector<std::uint8_t>> data_;
};

class Machine {
 public:
  /// `globals` may be null when the program declares no global objects.
  Machine(const Program& program, const CostModel& cost, ObjectStore* globals);

  /// Starts an invocation at the program's dispatch (match-stage)
  /// function. Charges the parser cost for program.parsed_fields.
  Outcome run(const Invocation& invocation);

  /// Starts at an explicit function (unit tests, direct lambda calls).
  Outcome run_function(std::size_t function_index,
                       const Invocation& invocation);

  /// Continues after a kYield outcome; `reply` lands in the kExtCall dst.
  Outcome resume(std::uint64_t reply);

  /// Aborts a suspended invocation (e.g. external call timed out).
  void abort();

  bool suspended() const { return suspended_; }

  /// Cycle budget per invocation; exceeding it traps (runaway guard;
  /// serverless workloads have strict compute limits, §2.1).
  void set_fuel(std::uint64_t cycles) { fuel_ = cycles; }

  const CostModel& cost_model() const { return cost_; }

 private:
  struct Frame {
    std::uint32_t fn = 0;
    std::uint32_t block = 0;
    std::uint32_t instr = 0;
    std::uint16_t ret_dst = 0;  // caller register receiving the return value
    std::vector<std::uint64_t> regs;
  };

  Outcome execute();
  Outcome trap(const std::string& message);
  Outcome finish(std::uint64_t return_value);

  // Memory access helpers; return false (and set trap_) on bounds errors.
  std::vector<std::uint8_t>* object_bytes(std::size_t index);
  bool load_bytes(std::size_t obj, std::uint64_t offset, std::uint8_t width,
                  std::uint64_t& out);
  bool store_bytes(std::size_t obj, std::uint64_t offset, std::uint8_t width,
                   std::uint64_t value);
  void charge(std::uint64_t cycles) { cycles_ += cycles; }
  void charge_bulk(std::uint64_t cycles) { bulk_cycles_ += cycles; }
  std::uint64_t scaled_cycles() const {
    return static_cast<std::uint64_t>(
        static_cast<double>(cycles_) * cost_.runtime_factor +
        static_cast<double>(bulk_cycles_) * cost_.bulk_factor);
  }
  std::uint32_t read_cost(std::size_t obj) const;
  std::uint32_t write_cost(std::size_t obj) const;

  const Program& program_;
  CostModel cost_;
  ObjectStore* globals_;

  // Invocation state.
  const Invocation* invocation_ = nullptr;
  std::vector<std::vector<std::uint8_t>> locals_;  // per local-scope object
  std::vector<Frame> stack_;
  std::vector<std::uint8_t> response_;
  std::uint64_t cycles_ = 0;       // scalar instruction cycles
  std::uint64_t bulk_cycles_ = 0;  // intrinsic inner-loop cycles
  std::uint64_t instructions_ = 0;
  std::uint64_t fuel_ = 1ull << 40;
  bool suspended_ = false;
  std::string trap_;
};

}  // namespace lnic::microc
