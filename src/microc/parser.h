// Recursive-descent parser for Micro-C. Grammar (see frontend.h for the
// full reference):
//
//   unit      := (object | function)*
//   object    := ("global"|"local") "u8" ident "[" number "]"
//                ("hot"|"cold")? ("readmostly"|"writemostly")? ";"
//   function  := "int" ident "(" params? ")" block
//   block     := "{" stmt* "}"
//   stmt      := "var" ident "=" expr ";"
//              | ident "=" expr ";"
//              | "if" "(" expr ")" block ("else" block)?
//              | "while" "(" expr ")" block
//              | "return" expr ";"
//              | expr ";"
//   expr      := cmp (("=="|"!="|"<"|"<="|">"|">=") cmp)*
//   cmp       := shift (("<<"|">>") shift)*        -- C-ish precedence,
//   shift     := sum (("&"|"|"|"^") sum)*             simplified
//   sum       := term (("+"|"-") term)*
//   term      := factor (("*"|"/"|"%") factor)*
//   factor    := number | ident | ident "(" args ")" | "(" expr ")"
//              | "-" factor | "!" factor
#pragma once

#include "common/result.h"
#include "microc/ast.h"
#include "microc/lexer.h"

namespace lnic::microc {

Result<ast::TranslationUnit> parse(const std::vector<Token>& tokens);

}  // namespace lnic::microc
