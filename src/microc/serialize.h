// Binary firmware serialization: the on-the-wire format of compiled
// Match+Lambda programs. The workload manager stores these artifacts in
// global storage (Fig. 2: "compiled binaries ... stored in a global
// storage") and worker nodes deserialize them at deployment. Format:
// little-endian, length-prefixed sections, magic "LNFW", version 1.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "microc/ir.h"

namespace lnic::microc {

/// Encodes a program to the firmware byte format.
std::vector<std::uint8_t> serialize(const Program& program);

/// Decodes a firmware image; validates magic/version and structural
/// bounds (string/section lengths). The result still goes through
/// verify() at deploy time.
Result<Program> deserialize(const std::vector<std::uint8_t>& bytes);

}  // namespace lnic::microc
