#include "microc/frontend.h"

#include <map>
#include <optional>

#include "microc/builder.h"
#include "microc/lexer.h"
#include "microc/parser.h"
#include "microc/verify.h"

namespace lnic::microc {

namespace {

using ast::Expr;
using ast::ExprKind;
using ast::Stmt;
using ast::StmtKind;

std::optional<HeaderField> header_field_by_name(const std::string& name) {
  static const std::map<std::string, HeaderField> kFields = {
      {"workload_id", kHdrWorkloadId},   {"request_id", kHdrRequestId},
      {"src_node", kHdrSrcNode},         {"op", kHdrOp},
      {"key", kHdrKey},                  {"value", kHdrValue},
      {"body_len", kHdrBodyLen},         {"image_width", kHdrImageWidth},
      {"image_height", kHdrImageHeight},
  };
  const auto it = kFields.find(name);
  if (it == kFields.end()) return std::nullopt;
  return it->second;
}

class Codegen {
 public:
  explicit Codegen(const ast::TranslationUnit& unit, std::string name)
      : unit_(unit), pb_(std::move(name)) {}

  Result<Program> run() {
    // Objects first so functions can reference them.
    for (const auto& obj : unit_.objects) {
      AccessPattern access = AccessPattern::kReadWrite;
      if (obj.read_mostly) access = AccessPattern::kReadMostly;
      if (obj.write_mostly) access = AccessPattern::kWriteMostly;
      PlacementHint hint = PlacementHint::kNone;
      if (obj.hot) hint = PlacementHint::kHot;
      if (obj.cold) hint = PlacementHint::kCold;
      if (objects_.count(obj.name)) {
        return fail(obj.line, "duplicate object '" + obj.name + "'");
      }
      objects_[obj.name] = pb_.object(
          obj.name, obj.size,
          obj.is_global ? MemScope::kGlobal : MemScope::kLocal, access, hint);
    }
    // Pre-assign function indices so forward calls resolve. The builder
    // appends in order, so indices are predictable.
    for (std::size_t i = 0; i < unit_.functions.size(); ++i) {
      const auto& fn = unit_.functions[i];
      if (functions_.count(fn.name)) {
        return fail(fn.line, "duplicate function '" + fn.name + "'");
      }
      functions_[fn.name] = {static_cast<std::uint32_t>(i),
                             static_cast<std::uint16_t>(fn.params.size())};
    }
    for (const auto& fn : unit_.functions) {
      if (Status st = emit_function(fn); !st.ok()) return st.error();
    }
    Program program = pb_.take();
    if (Status st = verify(program); !st.ok()) return st.error();
    return program;
  }

 private:
  struct FnInfo {
    std::uint32_t index;
    std::uint16_t arity;
  };

  Error fail(std::uint32_t line, const std::string& what) {
    return make_error("microc: line " + std::to_string(line) + ": " + what);
  }

  Status emit_function(const ast::FunctionDecl& decl) {
    FunctionBuilder fb = pb_.function(
        decl.name, static_cast<std::uint16_t>(decl.params.size()));
    fb_ = &fb;
    vars_.clear();
    for (std::size_t i = 0; i < decl.params.size(); ++i) {
      vars_[decl.params[i]] = fb.arg(static_cast<std::uint16_t>(i));
    }
    bool returned = false;
    if (Status st = emit_block(decl.body, returned); !st.ok()) return st;
    if (!returned) fb.ret_imm(0);  // implicit `return 0;`
    fb.finish();
    fb_ = nullptr;
    return Status::ok_status();
  }

  // Emits statements into the current block; `returned` reports whether
  // the block ends in a return on all paths taken so far.
  Status emit_block(const std::vector<ast::StmtPtr>& stmts, bool& returned) {
    for (const auto& stmt : stmts) {
      if (returned) {
        return fail(stmt->line, "unreachable statement after return");
      }
      if (Status st = emit_stmt(*stmt, returned); !st.ok()) return st;
    }
    return Status::ok_status();
  }

  Status emit_stmt(const Stmt& stmt, bool& returned) {
    FunctionBuilder& fb = *fb_;
    switch (stmt.kind) {
      case StmtKind::kVarDecl: {
        if (vars_.count(stmt.name)) {
          return fail(stmt.line, "redeclared variable '" + stmt.name + "'");
        }
        auto value = emit_expr(*stmt.value);
        if (!value.ok()) return value.error();
        // Bind the variable to a dedicated register so loop-carried
        // assignments work across blocks.
        Reg slot = fb.mov(value.value());
        vars_[stmt.name] = slot;
        return Status::ok_status();
      }
      case StmtKind::kAssign: {
        const auto it = vars_.find(stmt.name);
        if (it == vars_.end()) {
          return fail(stmt.line, "assignment to undeclared '" + stmt.name + "'");
        }
        auto value = emit_expr(*stmt.value);
        if (!value.ok()) return value.error();
        fb.mov_to(it->second, value.value());
        return Status::ok_status();
      }
      case StmtKind::kReturn: {
        auto value = emit_expr(*stmt.value);
        if (!value.ok()) return value.error();
        fb.ret(value.value());
        returned = true;
        return Status::ok_status();
      }
      case StmtKind::kExpr: {
        auto value = emit_expr(*stmt.value);
        if (!value.ok()) return value.error();
        return Status::ok_status();
      }
      case StmtKind::kIf: {
        auto cond = emit_expr(*stmt.value);
        if (!cond.ok()) return cond.error();
        const auto entry = fb.current_block();
        const auto then_block = fb.block();
        const auto else_block = fb.block();
        const auto join = fb.block();
        fb.select_block(entry);
        fb.br_if(cond.value(), then_block, else_block);

        fb.select_block(then_block);
        bool then_returned = false;
        if (Status st = emit_block(stmt.then_body, then_returned); !st.ok()) {
          return st;
        }
        if (!then_returned) fb.br(join);

        fb.select_block(else_block);
        bool else_returned = false;
        if (Status st = emit_block(stmt.else_body, else_returned); !st.ok()) {
          return st;
        }
        if (!else_returned) fb.br(join);

        fb.select_block(join);
        returned = then_returned && else_returned;
        if (returned) {
          // Join is unreachable but every block needs a terminator;
          // DCE removes it later.
          fb.ret_imm(0);
        }
        return Status::ok_status();
      }
      case StmtKind::kFor: {
        // Desugar: init; while (cond) { body; step; }
        if (Status st = emit_stmt(*stmt.init, returned); !st.ok()) return st;
        const auto entry = fb.current_block();
        const auto header = fb.block();
        const auto body = fb.block();
        const auto exit = fb.block();
        fb.select_block(entry);
        fb.br(header);
        fb.select_block(header);
        auto cond = emit_expr(*stmt.value);
        if (!cond.ok()) return cond.error();
        fb.br_if(cond.value(), body, exit);
        fb.select_block(body);
        bool body_returned = false;
        if (Status st = emit_block(stmt.then_body, body_returned); !st.ok()) {
          return st;
        }
        if (!body_returned) {
          bool step_returned = false;
          if (Status st = emit_stmt(*stmt.step, step_returned); !st.ok()) {
            return st;
          }
          fb.br(header);
        }
        fb.select_block(exit);
        return Status::ok_status();
      }
      case StmtKind::kWhile: {
        const auto entry = fb.current_block();
        const auto header = fb.block();
        const auto body = fb.block();
        const auto exit = fb.block();
        fb.select_block(entry);
        fb.br(header);
        fb.select_block(header);
        auto cond = emit_expr(*stmt.value);
        if (!cond.ok()) return cond.error();
        fb.br_if(cond.value(), body, exit);
        fb.select_block(body);
        bool body_returned = false;
        if (Status st = emit_block(stmt.then_body, body_returned); !st.ok()) {
          return st;
        }
        if (!body_returned) fb.br(header);
        fb.select_block(exit);
        return Status::ok_status();
      }
    }
    return fail(stmt.line, "unhandled statement");
  }

  Result<Reg> emit_expr(const Expr& expr) {
    FunctionBuilder& fb = *fb_;
    switch (expr.kind) {
      case ExprKind::kNumber:
        return fb.const_u64(expr.number);
      case ExprKind::kVariable: {
        const auto it = vars_.find(expr.name);
        if (it == vars_.end()) {
          return fail(expr.line, "unknown variable '" + expr.name + "'");
        }
        return it->second;
      }
      case ExprKind::kUnary: {
        auto operand = emit_expr(*expr.lhs);
        if (!operand.ok()) return operand;
        if (expr.op == "-") {
          return fb.sub(fb.const_u64(0), operand.value());
        }
        // !x  ->  x == 0
        return fb.cmp_eq_imm(operand.value(), 0);
      }
      case ExprKind::kBinary: {
        auto lhs = emit_expr(*expr.lhs);
        if (!lhs.ok()) return lhs;
        auto rhs = emit_expr(*expr.rhs);
        if (!rhs.ok()) return rhs;
        const Reg a = lhs.value();
        const Reg b = rhs.value();
        if (expr.op == "+") return fb.add(a, b);
        if (expr.op == "-") return fb.sub(a, b);
        if (expr.op == "*") return fb.mul(a, b);
        if (expr.op == "/") return fb.divu(a, b);
        if (expr.op == "%") return fb.remu(a, b);
        if (expr.op == "&") return fb.and_(a, b);
        if (expr.op == "|") return fb.or_(a, b);
        if (expr.op == "^") return fb.xor_(a, b);
        if (expr.op == "<<") return fb.shl(a, b);
        if (expr.op == ">>") return fb.shr(a, b);
        if (expr.op == "==") return fb.cmp_eq(a, b);
        if (expr.op == "!=") return fb.cmp_ne(a, b);
        if (expr.op == "<") return fb.cmp_ltu(a, b);
        if (expr.op == "<=") return fb.cmp_leu(a, b);
        if (expr.op == ">") return fb.cmp_ltu(b, a);
        if (expr.op == ">=") return fb.cmp_leu(b, a);
        return fail(expr.line, "unknown operator '" + expr.op + "'");
      }
      case ExprKind::kCall:
        return emit_call(expr);
    }
    return fail(expr.line, "unhandled expression");
  }

  Result<Reg> emit_call(const Expr& expr) {
    FunctionBuilder& fb = *fb_;
    const std::string& name = expr.name;
    auto want = [&](std::size_t n) -> Status {
      if (expr.args.size() != n) {
        return fail(expr.line, name + " expects " + std::to_string(n) +
                                   " argument(s)");
      }
      return Status::ok_status();
    };
    auto arg = [&](std::size_t i) { return emit_expr(*expr.args[i]); };
    auto object_arg = [&](std::size_t i) -> Result<std::uint16_t> {
      const Expr& e = *expr.args[i];
      if (e.kind != ExprKind::kVariable || !objects_.count(e.name)) {
        return fail(e.line, name + ": argument " + std::to_string(i + 1) +
                                " must be a declared memory object");
      }
      return objects_.at(e.name);
    };

    // -- header / request context --------------------------------------
    if (name == "hdr") {
      if (Status st = want(1); !st.ok()) return st.error();
      const Expr& field = *expr.args[0];
      if (field.kind != ExprKind::kVariable) {
        return fail(field.line, "hdr() takes a field name");
      }
      const auto hf = header_field_by_name(field.name);
      if (!hf.has_value()) {
        return fail(field.line, "unknown header field '" + field.name + "'");
      }
      return fb.load_hdr(*hf);
    }
    if (name == "body") {
      if (Status st = want(1); !st.ok()) return st.error();
      auto off = arg(0);
      if (!off.ok()) return off;
      return fb.load_body(off.value());
    }
    if (name == "body_len") {
      if (Status st = want(0); !st.ok()) return st.error();
      return fb.body_len();
    }
    if (name == "match") {
      if (Status st = want(1); !st.ok()) return st.error();
      const Expr& idx = *expr.args[0];
      if (idx.kind != ExprKind::kNumber) {
        return fail(idx.line, "match() takes a literal index");
      }
      return fb.load_match(static_cast<std::uint16_t>(idx.number));
    }

    // -- memory ---------------------------------------------------------
    for (const auto& [fn_name, width] :
         {std::pair{"load1", 1}, {"load2", 2}, {"load4", 4}, {"load8", 8}}) {
      if (name == fn_name) {
        if (Status st = want(2); !st.ok()) return st.error();
        auto obj = object_arg(0);
        if (!obj.ok()) return obj.error();
        auto off = arg(1);
        if (!off.ok()) return off;
        return fb.load(obj.value(), off.value(), 0,
                       static_cast<std::uint8_t>(width));
      }
    }
    for (const auto& [fn_name, width] :
         {std::pair{"store1", 1}, {"store2", 2}, {"store4", 4},
          {"store8", 8}}) {
      if (name == fn_name) {
        if (Status st = want(3); !st.ok()) return st.error();
        auto obj = object_arg(0);
        if (!obj.ok()) return obj.error();
        auto off = arg(1);
        if (!off.ok()) return off;
        auto value = arg(2);
        if (!value.ok()) return value;
        fb.store(obj.value(), off.value(), value.value(), 0,
                 static_cast<std::uint8_t>(width));
        return fb.const_u64(0);
      }
    }
    if (name == "memcpy") {
      if (Status st = want(5); !st.ok()) return st.error();
      auto dst = object_arg(0);
      if (!dst.ok()) return dst.error();
      auto doff = arg(1);
      if (!doff.ok()) return doff;
      auto src = object_arg(2);
      if (!src.ok()) return src.error();
      auto soff = arg(3);
      if (!soff.ok()) return soff;
      auto len = arg(4);
      if (!len.ok()) return len;
      fb.memcpy_(dst.value(), doff.value(), src.value(), soff.value(),
                 len.value());
      return fb.const_u64(0);
    }
    if (name == "gray") {
      if (Status st = want(5); !st.ok()) return st.error();
      auto dst = object_arg(0);
      if (!dst.ok()) return dst.error();
      auto doff = arg(1);
      if (!doff.ok()) return doff;
      auto src = object_arg(2);
      if (!src.ok()) return src.error();
      auto soff = arg(3);
      if (!soff.ok()) return soff;
      auto px = arg(4);
      if (!px.ok()) return px;
      fb.grayscale(dst.value(), doff.value(), src.value(), soff.value(),
                   px.value());
      return fb.const_u64(0);
    }
    if (name == "hash") {
      if (Status st = want(3); !st.ok()) return st.error();
      auto obj = object_arg(0);
      if (!obj.ok()) return obj.error();
      auto off = arg(1);
      if (!off.ok()) return off;
      auto len = arg(2);
      if (!len.ok()) return len;
      return fb.hash(obj.value(), off.value(), len.value());
    }
    if (name == "body_copy") {
      if (Status st = want(4); !st.ok()) return st.error();
      auto obj = object_arg(0);
      if (!obj.ok()) return obj.error();
      auto doff = arg(1);
      if (!doff.ok()) return doff;
      auto boff = arg(2);
      if (!boff.ok()) return boff;
      auto len = arg(3);
      if (!len.ok()) return len;
      fb.body_copy(obj.value(), doff.value(), boff.value(), len.value());
      return fb.const_u64(0);
    }

    // -- external calls / response / misc -------------------------------
    if (name == "kv_get") {
      if (Status st = want(1); !st.ok()) return st.error();
      auto key = arg(0);
      if (!key.ok()) return key;
      return fb.ext_call(0, key.value(), fb.const_u64(0));
    }
    if (name == "kv_set") {
      if (Status st = want(2); !st.ok()) return st.error();
      auto key = arg(0);
      if (!key.ok()) return key;
      auto value = arg(1);
      if (!value.ok()) return value;
      return fb.ext_call(1, key.value(), value.value());
    }
    if (name == "resp_byte") {
      if (Status st = want(1); !st.ok()) return st.error();
      auto v = arg(0);
      if (!v.ok()) return v;
      fb.resp_byte(v.value());
      return fb.const_u64(0);
    }
    if (name == "resp_word") {
      if (Status st = want(1); !st.ok()) return st.error();
      auto v = arg(0);
      if (!v.ok()) return v;
      fb.resp_word(v.value());
      return fb.const_u64(0);
    }
    if (name == "resp_mem") {
      if (Status st = want(3); !st.ok()) return st.error();
      auto obj = object_arg(0);
      if (!obj.ok()) return obj.error();
      auto off = arg(1);
      if (!off.ok()) return off;
      auto len = arg(2);
      if (!len.ok()) return len;
      fb.resp_mem(obj.value(), off.value(), len.value());
      return fb.const_u64(0);
    }
    if (name == "fxmul") {
      if (Status st = want(2); !st.ok()) return st.error();
      auto a = arg(0);
      if (!a.ok()) return a;
      auto b = arg(1);
      if (!b.ok()) return b;
      return fb.fxmul(a.value(), b.value());
    }

    // -- user functions ---------------------------------------------------
    const auto it = functions_.find(name);
    if (it == functions_.end()) {
      return fail(expr.line, "unknown function or builtin '" + name + "'");
    }
    if (expr.args.size() != it->second.arity) {
      return fail(expr.line, "'" + name + "' expects " +
                                 std::to_string(it->second.arity) +
                                 " argument(s)");
    }
    if (expr.args.size() > 4) {
      return fail(expr.line, "at most 4 call arguments supported");
    }
    std::vector<Reg> args;
    for (std::size_t i = 0; i < expr.args.size(); ++i) {
      auto a = arg(i);
      if (!a.ok()) return a;
      args.push_back(a.value());
    }
    return fb.call(it->second.index, args);
  }

  const ast::TranslationUnit& unit_;
  ProgramBuilder pb_;
  FunctionBuilder* fb_ = nullptr;
  std::map<std::string, std::uint16_t> objects_;
  std::map<std::string, FnInfo> functions_;
  std::map<std::string, Reg> vars_;
};

}  // namespace

Result<Program> compile_microc(const std::string& source,
                               const std::string& program_name) {
  auto tokens = lex(source);
  if (!tokens.ok()) return tokens.error();
  auto unit = parse(tokens.value());
  if (!unit.ok()) return unit.error();
  Codegen codegen(unit.value(), program_name);
  return codegen.run();
}

}  // namespace lnic::microc
