#include "microc/parser.h"

#include <array>
#include <optional>

namespace lnic::microc {

namespace {

using ast::Expr;
using ast::ExprKind;
using ast::ExprPtr;
using ast::Stmt;
using ast::StmtKind;
using ast::StmtPtr;

class Parser {
 public:
  explicit Parser(const std::vector<Token>& tokens) : tokens_(tokens) {}

  Result<ast::TranslationUnit> parse_unit() {
    ast::TranslationUnit unit;
    while (!at_end()) {
      if (peek_keyword("global") || peek_keyword("local")) {
        auto obj = parse_object();
        if (!obj.ok()) return obj.error();
        unit.objects.push_back(std::move(obj).value());
      } else if (peek_keyword("int")) {
        auto fn = parse_function();
        if (!fn.ok()) return fn.error();
        unit.functions.push_back(std::move(fn).value());
      } else {
        return err("expected 'global', 'local' or 'int' at top level");
      }
    }
    return unit;
  }

 private:
  // ------------------------------------------------------------ plumbing
  const Token& cur() const { return tokens_[pos_]; }
  bool at_end() const { return cur().kind == TokenKind::kEnd; }
  void advance() {
    if (!at_end()) ++pos_;
  }
  bool peek_keyword(const std::string& kw) const {
    return cur().kind == TokenKind::kKeyword && cur().text == kw;
  }
  bool peek_punct(const std::string& p) const {
    return cur().kind == TokenKind::kPunct && cur().text == p;
  }
  bool peek_op(const std::string& op) const {
    return cur().kind == TokenKind::kOperator && cur().text == op;
  }
  bool eat_keyword(const std::string& kw) {
    if (!peek_keyword(kw)) return false;
    advance();
    return true;
  }
  bool eat_punct(const std::string& p) {
    if (!peek_punct(p)) return false;
    advance();
    return true;
  }
  bool eat_op(const std::string& op) {
    if (!peek_op(op)) return false;
    advance();
    return true;
  }
  Error err(const std::string& what) const {
    return make_error("parse: " + what + " at line " +
                      std::to_string(cur().line) +
                      (cur().text.empty() ? "" : " (near '" + cur().text + "')"));
  }

  // ----------------------------------------------------------- top level
  Result<ast::ObjectDecl> parse_object() {
    ast::ObjectDecl obj;
    obj.line = cur().line;
    obj.is_global = eat_keyword("global");
    if (!obj.is_global && !eat_keyword("local")) {
      return err("expected 'global' or 'local'");
    }
    if (!eat_keyword("u8")) return err("expected 'u8' in object declaration");
    if (cur().kind != TokenKind::kIdentifier) return err("expected object name");
    obj.name = cur().text;
    advance();
    if (!eat_punct("[")) return err("expected '[' after object name");
    if (cur().kind != TokenKind::kNumber) return err("expected object size");
    obj.size = cur().number;
    advance();
    if (!eat_punct("]")) return err("expected ']' after object size");
    while (true) {
      if (eat_keyword("hot")) obj.hot = true;
      else if (eat_keyword("cold")) obj.cold = true;
      else if (eat_keyword("readmostly")) obj.read_mostly = true;
      else if (eat_keyword("writemostly")) obj.write_mostly = true;
      else break;
    }
    if (!eat_punct(";")) return err("expected ';' after object declaration");
    return obj;
  }

  Result<ast::FunctionDecl> parse_function() {
    ast::FunctionDecl fn;
    fn.line = cur().line;
    if (!eat_keyword("int")) return err("expected 'int'");
    if (cur().kind != TokenKind::kIdentifier) return err("expected function name");
    fn.name = cur().text;
    advance();
    if (!eat_punct("(")) return err("expected '('");
    if (!peek_punct(")")) {
      while (true) {
        if (cur().kind != TokenKind::kIdentifier) {
          return err("expected parameter name");
        }
        fn.params.push_back(cur().text);
        advance();
        if (!eat_punct(",")) break;
      }
    }
    if (!eat_punct(")")) return err("expected ')'");
    auto body = parse_block();
    if (!body.ok()) return body.error();
    fn.body = std::move(body).value();
    return fn;
  }

  // ----------------------------------------------------------- statements
  Result<std::vector<StmtPtr>> parse_block() {
    if (!eat_punct("{")) return Result<std::vector<StmtPtr>>(err("expected '{'"));
    std::vector<StmtPtr> stmts;
    while (!peek_punct("}")) {
      if (at_end()) return Result<std::vector<StmtPtr>>(err("unterminated block"));
      auto stmt = parse_stmt();
      if (!stmt.ok()) return stmt.error();
      stmts.push_back(std::move(stmt).value());
    }
    eat_punct("}");
    return stmts;
  }

  Result<StmtPtr> parse_stmt() {
    auto stmt = std::make_unique<Stmt>();
    stmt->line = cur().line;

    if (eat_keyword("var")) {
      stmt->kind = StmtKind::kVarDecl;
      if (cur().kind != TokenKind::kIdentifier) return Result<StmtPtr>(err("expected variable name"));
      stmt->name = cur().text;
      advance();
      if (!eat_op("=")) return Result<StmtPtr>(err("expected '=' in var declaration"));
      auto value = parse_expr();
      if (!value.ok()) return value.error();
      stmt->value = std::move(value).value();
      if (!eat_punct(";")) return Result<StmtPtr>(err("expected ';'"));
      return Result<StmtPtr>(std::move(stmt));
    }
    if (eat_keyword("if")) {
      stmt->kind = StmtKind::kIf;
      if (!eat_punct("(")) return Result<StmtPtr>(err("expected '(' after if"));
      auto cond = parse_expr();
      if (!cond.ok()) return cond.error();
      stmt->value = std::move(cond).value();
      if (!eat_punct(")")) return Result<StmtPtr>(err("expected ')'"));
      auto then_body = parse_block();
      if (!then_body.ok()) return then_body.error();
      stmt->then_body = std::move(then_body).value();
      if (eat_keyword("else")) {
        auto else_body = parse_block();
        if (!else_body.ok()) return else_body.error();
        stmt->else_body = std::move(else_body).value();
      }
      return Result<StmtPtr>(std::move(stmt));
    }
    if (eat_keyword("for")) {
      stmt->kind = StmtKind::kFor;
      if (!eat_punct("(")) return Result<StmtPtr>(err("expected '(' after for"));
      auto init = parse_simple_stmt();   // var decl or assignment
      if (!init.ok()) return init.error();
      stmt->init = std::move(init).value();
      if (!eat_punct(";")) return Result<StmtPtr>(err("expected ';' after for-init"));
      auto cond = parse_expr();
      if (!cond.ok()) return cond.error();
      stmt->value = std::move(cond).value();
      if (!eat_punct(";")) return Result<StmtPtr>(err("expected ';' after for-cond"));
      auto step = parse_simple_stmt();
      if (!step.ok()) return step.error();
      stmt->step = std::move(step).value();
      if (!eat_punct(")")) return Result<StmtPtr>(err("expected ')' after for-step"));
      auto body = parse_block();
      if (!body.ok()) return body.error();
      stmt->then_body = std::move(body).value();
      return Result<StmtPtr>(std::move(stmt));
    }
    if (eat_keyword("while")) {
      stmt->kind = StmtKind::kWhile;
      if (!eat_punct("(")) return Result<StmtPtr>(err("expected '(' after while"));
      auto cond = parse_expr();
      if (!cond.ok()) return cond.error();
      stmt->value = std::move(cond).value();
      if (!eat_punct(")")) return Result<StmtPtr>(err("expected ')'"));
      auto body = parse_block();
      if (!body.ok()) return body.error();
      stmt->then_body = std::move(body).value();
      return Result<StmtPtr>(std::move(stmt));
    }
    if (eat_keyword("return")) {
      stmt->kind = StmtKind::kReturn;
      auto value = parse_expr();
      if (!value.ok()) return value.error();
      stmt->value = std::move(value).value();
      if (!eat_punct(";")) return Result<StmtPtr>(err("expected ';'"));
      return Result<StmtPtr>(std::move(stmt));
    }
    // Assignment (including compound sugar) or expression statement.
    if (auto assign = try_parse_assignment()) {
      if (!assign->ok()) return std::move(*assign);
      if (!eat_punct(";")) return Result<StmtPtr>(err("expected ';'"));
      return std::move(*assign);
    }
    stmt->kind = StmtKind::kExpr;
    auto value = parse_expr();
    if (!value.ok()) return value.error();
    stmt->value = std::move(value).value();
    if (!eat_punct(";")) return Result<StmtPtr>(err("expected ';'"));
    return Result<StmtPtr>(std::move(stmt));
  }

  // Parses a statement usable in for-clauses: `var x = e` or an
  // assignment (no trailing ';'). Also used for plain statements.
  Result<StmtPtr> parse_simple_stmt() {
    auto stmt = std::make_unique<Stmt>();
    stmt->line = cur().line;
    if (eat_keyword("var")) {
      stmt->kind = StmtKind::kVarDecl;
      if (cur().kind != TokenKind::kIdentifier) {
        return Result<StmtPtr>(err("expected variable name"));
      }
      stmt->name = cur().text;
      advance();
      if (!eat_op("=")) return Result<StmtPtr>(err("expected '='"));
      auto value = parse_expr();
      if (!value.ok()) return value.error();
      stmt->value = std::move(value).value();
      return Result<StmtPtr>(std::move(stmt));
    }
    if (auto assign = try_parse_assignment()) return std::move(*assign);
    return Result<StmtPtr>(err("expected assignment or var declaration"));
  }

  // Recognizes `name = expr` and the compound forms `name op= expr`
  // (op ∈ + - * & | ^). Returns nullopt when the lookahead is not an
  // assignment; never consumes input in that case.
  std::optional<Result<StmtPtr>> try_parse_assignment() {
    if (cur().kind != TokenKind::kIdentifier) return std::nullopt;
    if (pos_ + 1 >= tokens_.size()) return std::nullopt;
    const Token& op1 = tokens_[pos_ + 1];
    if (op1.kind != TokenKind::kOperator) return std::nullopt;

    std::string compound;
    std::size_t eat = 0;
    if (op1.text == "=") {
      eat = 2;
    } else if ((op1.text == "+" || op1.text == "-" || op1.text == "*" ||
                op1.text == "&" || op1.text == "|" || op1.text == "^") &&
               pos_ + 2 < tokens_.size() &&
               tokens_[pos_ + 2].kind == TokenKind::kOperator &&
               tokens_[pos_ + 2].text == "=") {
      compound = op1.text;
      eat = 3;
    } else {
      return std::nullopt;
    }

    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kAssign;
    stmt->line = cur().line;
    stmt->name = cur().text;
    for (std::size_t i = 0; i < eat; ++i) advance();
    auto value = parse_expr();
    if (!value.ok()) {
      return std::optional<Result<StmtPtr>>(value.error());
    }
    if (compound.empty()) {
      stmt->value = std::move(value).value();
    } else {
      // Desugar `x op= e` into `x = x op (e)`.
      auto lhs = std::make_unique<Expr>();
      lhs->kind = ExprKind::kVariable;
      lhs->line = stmt->line;
      lhs->name = stmt->name;
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kBinary;
      node->line = stmt->line;
      node->op = compound;
      node->lhs = std::move(lhs);
      node->rhs = std::move(value).value();
      stmt->value = std::move(node);
    }
    return std::optional<Result<StmtPtr>>(std::move(stmt));
  }

  // ---------------------------------------------------------- expressions
  // Precedence levels, loosest first.
  static constexpr std::array<std::array<const char*, 6>, 5> kLevels = {{
      {"==", "!=", "<", "<=", ">", ">="},
      {"&", "|", "^", nullptr, nullptr, nullptr},
      {"<<", ">>", nullptr, nullptr, nullptr, nullptr},
      {"+", "-", nullptr, nullptr, nullptr, nullptr},
      {"*", "/", "%", nullptr, nullptr, nullptr},
  }};

  Result<ExprPtr> parse_expr() { return parse_level(0); }

  Result<ExprPtr> parse_level(std::size_t level) {
    if (level >= kLevels.size()) return parse_unary();
    auto lhs = parse_level(level + 1);
    if (!lhs.ok()) return lhs;
    while (true) {
      const char* matched = nullptr;
      for (const char* op : kLevels[level]) {
        if (op != nullptr && peek_op(op)) {
          matched = op;
          break;
        }
      }
      if (matched == nullptr) break;
      advance();
      auto rhs = parse_level(level + 1);
      if (!rhs.ok()) return rhs;
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kBinary;
      node->line = cur().line;
      node->op = matched;
      node->lhs = std::move(lhs).value();
      node->rhs = std::move(rhs).value();
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<ExprPtr> parse_unary() {
    if (peek_op("-") || peek_op("!")) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kUnary;
      node->line = cur().line;
      node->op = cur().text;
      advance();
      auto operand = parse_unary();
      if (!operand.ok()) return operand;
      node->lhs = std::move(operand).value();
      return Result<ExprPtr>(std::move(node));
    }
    return parse_primary();
  }

  Result<ExprPtr> parse_primary() {
    auto node = std::make_unique<Expr>();
    node->line = cur().line;
    if (cur().kind == TokenKind::kNumber) {
      node->kind = ExprKind::kNumber;
      node->number = cur().number;
      advance();
      return Result<ExprPtr>(std::move(node));
    }
    if (eat_punct("(")) {
      auto inner = parse_expr();
      if (!inner.ok()) return inner;
      if (!eat_punct(")")) return Result<ExprPtr>(err("expected ')'"));
      return inner;
    }
    if (cur().kind == TokenKind::kIdentifier) {
      node->name = cur().text;
      advance();
      if (eat_punct("(")) {
        node->kind = ExprKind::kCall;
        if (!peek_punct(")")) {
          while (true) {
            auto arg = parse_expr();
            if (!arg.ok()) return arg;
            node->args.push_back(std::move(arg).value());
            if (!eat_punct(",")) break;
          }
        }
        if (!eat_punct(")")) return Result<ExprPtr>(err("expected ')' after arguments"));
        return Result<ExprPtr>(std::move(node));
      }
      node->kind = ExprKind::kVariable;
      return Result<ExprPtr>(std::move(node));
    }
    return Result<ExprPtr>(err("expected expression"));
  }

  const std::vector<Token>& tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<ast::TranslationUnit> parse(const std::vector<Token>& tokens) {
  Parser parser(tokens);
  return parser.parse_unit();
}

}  // namespace lnic::microc
