// Micro-C frontend: compiles lambda source text into IR (paper §4.1,
// Listings 1-2). This is the user-facing path of the Match+Lambda
// workflow — the workload manager feeds the result to the compiler
// pipeline and P4 lowering exactly as it does for builder-authored
// lambdas.
//
// Accepted language (one translation unit = one or more lambdas):
//
//   // Memory objects in the flat address space (D2). Pragmas guide
//   // memory stratification (§5.1).
//   global u8 content[1024] hot readmostly;
//   local  u8 scratch[64];
//
//   int web_server() {            // a top-level lambda (Listing 1)
//     var page = hdr(op) & 3;     // parsed-header access
//     var off = page * 256;
//     var digest = hash(content, off, 256);
//     if (digest == 0) { return 1; }
//     var i = 0;
//     while (i < 4) { i = i + 1; }
//     resp_mem(content, off, 256);
//     return 0;
//   }
//
//   int helper(x) { return x * 7; }   // callable helpers
//
// Builtins:
//   hdr(<field>)  field ∈ {workload_id, request_id, src_node, op, key,
//                 value, body_len, image_width, image_height}
//   body(i), body_len(), match(i)
//   load1/2/4/8(obj, off), store1/2/4/8(obj, off, v)
//   memcpy(dst, doff, src, soff, len), gray(dst, doff, src, soff, px)
//   hash(obj, off, len), body_copy(obj, doff, boff, len)
//   kv_get(key), kv_set(key, value)              (kExtCall, D3)
//   resp_byte(v), resp_word(v), resp_mem(obj, off, len)
//   fxmul(a, b)
//
// All scalars are unsigned 64-bit; there are no pointers, floats,
// recursion or dynamic allocation — the feature set NPUs lack (§3.1b).
#pragma once

#include <string>

#include "common/result.h"
#include "microc/ir.h"

namespace lnic::microc {

/// Compiles Micro-C source into a Program containing the declared
/// objects and functions (no match stage; pair it with a p4::MatchSpec
/// and run compiler::compile as usual).
Result<Program> compile_microc(const std::string& source,
                               const std::string& program_name = "microc");

}  // namespace lnic::microc
