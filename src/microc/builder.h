// Fluent construction API for Micro-C IR.
//
// Workload authors (src/workloads) use FunctionBuilder to write lambdas
// the way Listing 2 writes Micro-C: straight-line code with loops,
// header access, memory objects, and response emission. ProgramBuilder
// assembles lambdas + helpers + objects into a Program (the match-stage
// dispatcher is generated later by the workload manager from P4 specs).
#pragma once

#include <cassert>
#include <string>
#include <vector>

#include "microc/ir.h"

namespace lnic::microc {

/// A register handle; just an index, typed for readability.
struct Reg {
  std::uint16_t index = 0;
};

class ProgramBuilder;

class FunctionBuilder {
 public:
  FunctionBuilder(ProgramBuilder& program, std::string name,
                  std::uint16_t num_args);

  /// Allocates a fresh register.
  Reg reg();
  /// The i-th argument register.
  Reg arg(std::uint16_t i) const {
    assert(i < num_args_);
    return Reg{i};
  }

  /// Starts a new basic block and returns its index. Instructions are
  /// appended to the most recently started block.
  std::uint32_t block();
  /// Switches the append cursor to an existing block.
  void select_block(std::uint32_t index);
  std::uint32_t current_block() const { return current_; }

  // -- Instruction emitters (each returns the destination register). --
  Reg const_u64(std::uint64_t v);
  Reg mov(Reg a);
  /// Copies `src` into an existing register (mutable-variable writes in
  /// the Micro-C frontend; ordinary emitters always allocate fresh dsts).
  void mov_to(Reg dst, Reg src);
  Reg add(Reg a, Reg b);
  Reg sub(Reg a, Reg b);
  Reg mul(Reg a, Reg b);
  Reg divu(Reg a, Reg b);
  Reg remu(Reg a, Reg b);
  Reg and_(Reg a, Reg b);
  Reg or_(Reg a, Reg b);
  Reg xor_(Reg a, Reg b);
  Reg shl(Reg a, Reg b);
  Reg shr(Reg a, Reg b);
  Reg add_imm(Reg a, std::int64_t imm);
  Reg mul_imm(Reg a, std::int64_t imm);
  Reg fxmul(Reg a, Reg b);
  Reg cmp_eq(Reg a, Reg b);
  Reg cmp_ne(Reg a, Reg b);
  Reg cmp_ltu(Reg a, Reg b);
  Reg cmp_leu(Reg a, Reg b);
  Reg cmp_eq_imm(Reg a, std::int64_t imm);

  Reg load_hdr(HeaderField field);
  Reg load_body(Reg offset, std::int64_t imm = 0);
  Reg body_len();
  Reg load_match(std::uint16_t index);

  Reg load(std::uint16_t obj, Reg offset, std::int64_t disp = 0,
           std::uint8_t width = 8);
  void store(std::uint16_t obj, Reg offset, Reg value, std::int64_t disp = 0,
             std::uint8_t width = 8);

  void resp_byte(Reg value);
  void resp_word(Reg value);
  void resp_mem(std::uint16_t obj, Reg offset, Reg length);

  void memcpy_(std::uint16_t dst_obj, Reg dst_off, std::uint16_t src_obj,
               Reg src_off, Reg length);
  void grayscale(std::uint16_t dst_obj, Reg dst_off, std::uint16_t src_obj,
                 Reg src_off, Reg pixel_count);
  Reg hash(std::uint16_t obj, Reg offset, Reg length);
  void body_copy(std::uint16_t dst_obj, Reg dst_off, Reg body_off, Reg length);

  /// External KV call: kind 0 = GET(key), 1 = SET(key, value).
  Reg ext_call(std::int64_t kind, Reg key, Reg value);

  void br(std::uint32_t target);
  void br_if(Reg cond, std::uint32_t if_true, std::uint32_t if_false);
  Reg call(std::uint32_t function, const std::vector<Reg>& args);
  void ret(Reg value);
  void ret_imm(std::uint64_t value);

  /// Finalizes the function into the program; returns its index.
  std::uint32_t finish();

 private:
  Instr& emit(Instr instr);

  ProgramBuilder& program_;
  Function fn_;
  std::uint16_t num_args_;
  std::uint16_t next_reg_;
  std::uint32_t current_ = 0;
  bool finished_ = false;
};

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name) { program_.name = std::move(name); }

  /// Declares a memory object; returns its index for load/store emitters.
  std::uint16_t object(std::string name, Bytes size, MemScope scope,
                       AccessPattern access = AccessPattern::kReadWrite,
                       PlacementHint hint = PlacementHint::kNone);

  FunctionBuilder function(std::string name, std::uint16_t num_args) {
    return FunctionBuilder(*this, std::move(name), num_args);
  }

  void parse_field(HeaderField field);

  Program& program() { return program_; }
  const Program& program() const { return program_; }

  /// Moves the finished program out of the builder.
  Program take() { return std::move(program_); }

 private:
  friend class FunctionBuilder;
  Program program_;
};

}  // namespace lnic::microc
