#include "microc/lexer.h"

#include <cctype>
#include <set>

namespace lnic::microc {

namespace {
const std::set<std::string> kKeywords = {
    "int", "var", "if", "else", "while", "for", "return",
    "global", "local", "u8", "hot", "cold", "readmostly", "writemostly",
};
bool is_ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool is_ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
}  // namespace

Result<std::vector<Token>> lex(const std::string& source) {
  std::vector<Token> tokens;
  std::uint32_t line = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= n) {
        return make_error("lex: unterminated block comment at line " +
                          std::to_string(line));
      }
      i += 2;
      continue;
    }
    // Identifiers / keywords.
    if (is_ident_start(c)) {
      std::size_t j = i;
      while (j < n && is_ident_char(source[j])) ++j;
      Token t;
      t.text = source.substr(i, j - i);
      t.kind = kKeywords.count(t.text) ? TokenKind::kKeyword
                                       : TokenKind::kIdentifier;
      t.line = line;
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    // Numbers (decimal or 0x hex).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      int base = 10;
      if (c == '0' && j + 1 < n && (source[j + 1] == 'x' || source[j + 1] == 'X')) {
        base = 16;
        j += 2;
      }
      std::uint64_t value = 0;
      const std::size_t digits_start = j;
      while (j < n && (std::isdigit(static_cast<unsigned char>(source[j])) ||
                       (base == 16 &&
                        std::isxdigit(static_cast<unsigned char>(source[j]))))) {
        const char d = source[j];
        const std::uint64_t digit =
            d <= '9' ? static_cast<std::uint64_t>(d - '0')
                     : static_cast<std::uint64_t>(std::tolower(d) - 'a' + 10);
        value = value * base + digit;
        ++j;
      }
      if (j == digits_start) {
        return make_error("lex: malformed number at line " +
                          std::to_string(line));
      }
      Token t;
      t.kind = TokenKind::kNumber;
      t.text = source.substr(i, j - i);
      t.number = value;
      t.line = line;
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    // Two-character operators.
    auto push_op = [&](const std::string& text, std::size_t advance) {
      Token t;
      t.kind = TokenKind::kOperator;
      t.text = text;
      t.line = line;
      tokens.push_back(std::move(t));
      i += advance;
    };
    if (i + 1 < n) {
      const std::string two = source.substr(i, 2);
      if (two == "<<" || two == ">>" || two == "==" || two == "!=" ||
          two == "<=" || two == ">=") {
        push_op(two, 2);
        continue;
      }
    }
    if (std::string("+-*/%&|^<>=!").find(c) != std::string::npos) {
      push_op(std::string(1, c), 1);
      continue;
    }
    if (std::string("(){}[],;").find(c) != std::string::npos) {
      Token t;
      t.kind = TokenKind::kPunct;
      t.text = std::string(1, c);
      t.line = line;
      tokens.push_back(std::move(t));
      ++i;
      continue;
    }
    return make_error("lex: unexpected character '" + std::string(1, c) +
                      "' at line " + std::to_string(line));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.line = line;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace lnic::microc
