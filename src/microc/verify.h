// Static verification of Micro-C programs.
//
// The workload manager refuses to deploy a program that fails
// verification; this is the compile-time half of the paper's isolation
// story (§4.2.1 D2: "the compiler can insert static and dynamic
// assertions") — the runtime half is the interpreter's bounds traps.
#pragma once

#include "common/result.h"
#include "microc/ir.h"

namespace lnic::microc {

/// Checks structural validity:
///  - every block ends with exactly one terminator (and none mid-block),
///  - branch targets, call targets, object and register indices in range,
///  - call argument windows fit the callee's declared arguments,
///  - load/store widths are 1, 2, 4 or 8,
///  - the dispatch function and lambda entries reference real functions.
Status verify(const Program& program);

}  // namespace lnic::microc
