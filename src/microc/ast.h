// Abstract syntax tree for the Micro-C frontend.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lnic::microc::ast {

// ----------------------------------------------------------- expressions

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : std::uint8_t {
  kNumber,     // literal
  kVariable,   // named scalar
  kBinary,     // lhs op rhs
  kUnary,      // -expr / !expr
  kCall,       // builtin or user function call
};

struct Expr {
  ExprKind kind = ExprKind::kNumber;
  std::uint32_t line = 1;

  std::uint64_t number = 0;          // kNumber
  std::string name;                  // kVariable / kCall (callee)
  std::string op;                    // kBinary / kUnary
  ExprPtr lhs, rhs;                  // kBinary (lhs,rhs) / kUnary (lhs)
  std::vector<ExprPtr> args;         // kCall
};

// ------------------------------------------------------------ statements

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind : std::uint8_t {
  kVarDecl,    // var x = expr;
  kAssign,     // x = expr;   (also +=, -=, *= sugar)
  kIf,         // if (cond) {..} [else {..}]
  kWhile,      // while (cond) {..}
  kFor,        // for (init; cond; step) {..}  — sugar over while
  kReturn,     // return expr;
  kExpr,       // expr;  (side-effecting builtin call)
};

struct Stmt {
  StmtKind kind = StmtKind::kExpr;
  std::uint32_t line = 1;

  std::string name;                  // kVarDecl / kAssign target
  ExprPtr value;                     // initializer / assigned / returned /
                                     // condition / bare expression
  std::vector<StmtPtr> then_body;    // kIf then / kWhile / kFor body
  std::vector<StmtPtr> else_body;    // kIf else
  StmtPtr init;                      // kFor initializer
  StmtPtr step;                      // kFor step
};

// ------------------------------------------------------------- top level

/// `global u8 name[size] [hot|cold] [readmostly|writemostly];`
struct ObjectDecl {
  std::string name;
  std::uint64_t size = 0;
  bool is_global = true;
  bool hot = false;
  bool cold = false;
  bool read_mostly = false;
  bool write_mostly = false;
  std::uint32_t line = 1;
};

/// `int name(param, ...) { ... }`
struct FunctionDecl {
  std::string name;
  std::vector<std::string> params;
  std::vector<StmtPtr> body;
  std::uint32_t line = 1;
};

struct TranslationUnit {
  std::vector<ObjectDecl> objects;
  std::vector<FunctionDecl> functions;
};

}  // namespace lnic::microc::ast
