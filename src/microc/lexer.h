// Lexer for the restricted Micro-C source language (paper §4.1: "users
// provide one or more lambdas written in a restricted C-like language,
// called Micro-C"). See frontend.h for the accepted grammar.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace lnic::microc {

enum class TokenKind : std::uint8_t {
  kIdentifier,
  kNumber,
  kKeyword,     // int var if else while return global local u8 hot cold ...
  kPunct,       // ( ) { } [ ] , ;
  kOperator,    // + - * / % & | ^ << >> == != < <= > >= = !
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  std::uint64_t number = 0;   // valid for kNumber
  std::uint32_t line = 1;
};

/// Tokenizes Micro-C source; // and /* */ comments are skipped.
Result<std::vector<Token>> lex(const std::string& source);

}  // namespace lnic::microc
