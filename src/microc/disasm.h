// Human-readable IR disassembly: what `nfp-objdump` gives Netronome
// developers, this gives λ-NIC developers — per-function basic-block
// listings with object placements and lowered sizes. Used by tooling,
// debugging and the documentation examples.
#pragma once

#include <string>

#include "microc/ir.h"

namespace lnic::microc {

/// One instruction, e.g. "add r3, r1, r2" or "load.4 r5, image_buf[r2+8]".
std::string disassemble(const Instr& instr, const Program& program);

/// A whole function with block labels.
std::string disassemble(const Function& fn, const Program& program);

/// The full program: objects (with placement), parser fields, functions.
std::string disassemble(const Program& program);

}  // namespace lnic::microc
