#include "microc/ir.h"

#include <cassert>

namespace lnic::microc {

const char* to_string(MemRegion region) {
  switch (region) {
    case MemRegion::kLocal: return "local";
    case MemRegion::kCtm: return "ctm";
    case MemRegion::kImem: return "imem";
    case MemRegion::kEmem: return "emem";
  }
  return "?";
}

const char* to_string(Opcode op) {
  switch (op) {
    case Opcode::kConst: return "const";
    case Opcode::kMov: return "mov";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kDivU: return "divu";
    case Opcode::kRemU: return "remu";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kAddImm: return "addi";
    case Opcode::kMulImm: return "muli";
    case Opcode::kFxMul: return "fxmul";
    case Opcode::kCmpEq: return "cmpeq";
    case Opcode::kCmpNe: return "cmpne";
    case Opcode::kCmpLtU: return "cmpltu";
    case Opcode::kCmpLeU: return "cmpleu";
    case Opcode::kCmpEqImm: return "cmpeqi";
    case Opcode::kSelect: return "select";
    case Opcode::kLoadHdr: return "ldhdr";
    case Opcode::kLoadBody: return "ldbody";
    case Opcode::kBodyLen: return "bodylen";
    case Opcode::kLoadMatch: return "ldmatch";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kRespByte: return "respb";
    case Opcode::kRespWord: return "respw";
    case Opcode::kRespMem: return "respm";
    case Opcode::kMemCpy: return "memcpy";
    case Opcode::kGrayscale: return "gray";
    case Opcode::kHash: return "hash";
    case Opcode::kBodyCopy: return "bodycpy";
    case Opcode::kExtCall: return "extcall";
    case Opcode::kBr: return "br";
    case Opcode::kBrIf: return "brif";
    case Opcode::kCall: return "call";
    case Opcode::kRet: return "ret";
  }
  return "?";
}

const char* to_string(HeaderField field) {
  switch (field) {
    case kHdrWorkloadId: return "workload_id";
    case kHdrRequestId: return "request_id";
    case kHdrSrcNode: return "src_node";
    case kHdrOp: return "op";
    case kHdrKey: return "key";
    case kHdrValue: return "value";
    case kHdrBodyLen: return "body_len";
    case kHdrImageWidth: return "image_width";
    case kHdrImageHeight: return "image_height";
    default: return "?";
  }
}

bool is_pure(Opcode op) {
  switch (op) {
    case Opcode::kConst:
    case Opcode::kMov:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDivU:
    case Opcode::kRemU:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kAddImm:
    case Opcode::kMulImm:
    case Opcode::kFxMul:
    case Opcode::kCmpEq:
    case Opcode::kCmpNe:
    case Opcode::kCmpLtU:
    case Opcode::kCmpLeU:
    case Opcode::kCmpEqImm:
    case Opcode::kSelect:
    case Opcode::kLoadHdr:
    case Opcode::kLoadBody:
    case Opcode::kBodyLen:
    case Opcode::kLoadMatch:
    case Opcode::kLoad:   // loads have no side effects; removable if dst dead
    case Opcode::kHash:
      return true;
    default:
      return false;
  }
}

bool is_terminator(Opcode op) {
  return op == Opcode::kBr || op == Opcode::kBrIf || op == Opcode::kRet;
}

bool is_memory_op(Opcode op) {
  switch (op) {
    case Opcode::kLoad:
    case Opcode::kStore:
    case Opcode::kMemCpy:
    case Opcode::kGrayscale:
    case Opcode::kHash:
    case Opcode::kRespMem:
    case Opcode::kBodyCopy:
      return true;
    default:
      return false;
  }
}

std::size_t Function::instr_count() const {
  std::size_t n = 0;
  for (const auto& block : blocks) n += block.instrs.size();
  return n;
}

std::size_t Program::function_index(const std::string& fn_name) const {
  for (std::size_t i = 0; i < functions.size(); ++i) {
    if (functions[i].name == fn_name) return i;
  }
  return kNoFunction;
}

namespace {
// Lowered instruction-store words for a memory access to a region:
// farther memories need transfer-register setup + split issue on the NFP.
std::uint32_t region_word_cost(MemRegion region) {
  switch (region) {
    case MemRegion::kLocal: return 1;
    case MemRegion::kCtm: return 1;
    case MemRegion::kImem: return 2;
    case MemRegion::kEmem: return 3;
  }
  return 3;
}
}  // namespace

std::uint32_t lowered_size(const Instr& instr, const Program& program) {
  if (is_memory_op(instr.op)) {
    assert(instr.obj < program.objects.size());
    std::uint32_t words = region_word_cost(program.objects[instr.obj].region);
    if (instr.op == Opcode::kMemCpy || instr.op == Opcode::kGrayscale) {
      assert(instr.obj2 < program.objects.size());
      words += region_word_cost(program.objects[instr.obj2].region);
      words += 2;  // loop control of the copy sequence
    }
    return words;
  }
  switch (instr.op) {
    case Opcode::kCall: return 2;        // save/restore linkage
    case Opcode::kExtCall: return 4;     // packet build + context save
    case Opcode::kFxMul: return 2;       // mul + shift
    case Opcode::kSelect: return 2;
    default: return 1;
  }
}

std::uint64_t code_size(const Program& program) {
  std::uint64_t words = 0;
  for (const auto& fn : program.functions) {
    for (const auto& block : fn.blocks) {
      for (const auto& instr : block.instrs) {
        words += lowered_size(instr, program);
      }
    }
  }
  // The generated parser: one extraction word per parsed header field.
  words += program.parsed_fields.size();
  return words;
}

Bytes region_bytes(const Program& program, MemRegion region) {
  Bytes total = 0;
  for (const auto& obj : program.objects) {
    if (obj.region == region) total += obj.size;
  }
  return total;
}

}  // namespace lnic::microc
