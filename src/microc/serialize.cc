#include "microc/serialize.h"

#include <cstring>

namespace lnic::microc {

namespace {

constexpr std::uint32_t kMagic = 0x57464E4C;  // "LNFW"
constexpr std::uint32_t kVersion = 1;

class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  void blob(const std::vector<std::uint8_t>& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    bytes_.insert(bytes_.end(), b.begin(), b.end());
  }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > bytes_.size()) return false;
    v = bytes_[pos_++];
    return true;
  }
  bool u16(std::uint16_t& v) {
    std::uint8_t lo, hi;
    if (!u8(lo) || !u8(hi)) return false;
    v = static_cast<std::uint16_t>(lo | (hi << 8));
    return true;
  }
  bool u32(std::uint32_t& v) {
    v = 0;
    for (int i = 0; i < 4; ++i) {
      std::uint8_t b;
      if (!u8(b)) return false;
      v |= static_cast<std::uint32_t>(b) << (8 * i);
    }
    return true;
  }
  bool u64(std::uint64_t& v) {
    v = 0;
    for (int i = 0; i < 8; ++i) {
      std::uint8_t b;
      if (!u8(b)) return false;
      v |= static_cast<std::uint64_t>(b) << (8 * i);
    }
    return true;
  }
  bool i64(std::int64_t& v) {
    std::uint64_t raw;
    if (!u64(raw)) return false;
    v = static_cast<std::int64_t>(raw);
    return true;
  }
  bool str(std::string& s) {
    std::uint32_t len;
    if (!u32(len) || pos_ + len > bytes_.size()) return false;
    s.assign(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
             bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return true;
  }
  bool blob(std::vector<std::uint8_t>& b) {
    std::uint32_t len;
    if (!u32(len) || pos_ + len > bytes_.size()) return false;
    b.assign(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
             bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return true;
  }
  bool done() const { return pos_ == bytes_.size(); }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> serialize(const Program& program) {
  Writer w;
  w.u32(kMagic);
  w.u32(kVersion);
  w.str(program.name);

  w.u32(static_cast<std::uint32_t>(program.objects.size()));
  for (const auto& obj : program.objects) {
    w.str(obj.name);
    w.u64(obj.size);
    w.u8(static_cast<std::uint8_t>(obj.scope));
    w.u8(static_cast<std::uint8_t>(obj.access));
    w.u8(static_cast<std::uint8_t>(obj.hint));
    w.u8(static_cast<std::uint8_t>(obj.region));
    w.u32(obj.access_estimate);
    w.blob(obj.initial_data);
  }

  w.u32(static_cast<std::uint32_t>(program.functions.size()));
  for (const auto& fn : program.functions) {
    w.str(fn.name);
    w.u16(fn.num_regs);
    w.u16(fn.num_args);
    w.u32(static_cast<std::uint32_t>(fn.blocks.size()));
    for (const auto& block : fn.blocks) {
      w.u32(static_cast<std::uint32_t>(block.instrs.size()));
      for (const auto& in : block.instrs) {
        w.u8(static_cast<std::uint8_t>(in.op));
        w.u16(in.dst);
        w.u16(in.a);
        w.u16(in.b);
        w.i64(in.imm);
        w.u16(in.obj);
        w.u16(in.obj2);
        w.u8(in.width);
      }
    }
  }

  w.u32(static_cast<std::uint32_t>(program.parsed_fields.size()));
  for (auto field : program.parsed_fields) {
    w.u16(static_cast<std::uint16_t>(field));
  }
  w.u32(program.dispatch_function);
  w.u32(static_cast<std::uint32_t>(program.lambda_entries.size()));
  for (const auto& [wid, fn] : program.lambda_entries) {
    w.u32(wid);
    w.u32(fn);
  }
  return w.take();
}

Result<Program> deserialize(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  const Error malformed = make_error("deserialize: truncated or malformed firmware");
  std::uint32_t magic = 0, version = 0;
  if (!r.u32(magic) || !r.u32(version)) return malformed;
  if (magic != kMagic) return make_error("deserialize: bad magic");
  if (version != kVersion) return make_error("deserialize: unsupported version");

  Program program;
  if (!r.str(program.name)) return malformed;

  std::uint32_t num_objects = 0;
  if (!r.u32(num_objects)) return malformed;
  for (std::uint32_t i = 0; i < num_objects; ++i) {
    MemObject obj;
    std::uint8_t scope, access, hint, region;
    if (!r.str(obj.name) || !r.u64(obj.size) || !r.u8(scope) ||
        !r.u8(access) || !r.u8(hint) || !r.u8(region) ||
        !r.u32(obj.access_estimate) || !r.blob(obj.initial_data)) {
      return malformed;
    }
    if (scope > 1 || access > 2 || hint > 2 || region > 3) {
      return make_error("deserialize: bad object metadata");
    }
    obj.scope = static_cast<MemScope>(scope);
    obj.access = static_cast<AccessPattern>(access);
    obj.hint = static_cast<PlacementHint>(hint);
    obj.region = static_cast<MemRegion>(region);
    program.objects.push_back(std::move(obj));
  }

  std::uint32_t num_functions = 0;
  if (!r.u32(num_functions)) return malformed;
  for (std::uint32_t i = 0; i < num_functions; ++i) {
    Function fn;
    std::uint32_t num_blocks = 0;
    if (!r.str(fn.name) || !r.u16(fn.num_regs) || !r.u16(fn.num_args) ||
        !r.u32(num_blocks)) {
      return malformed;
    }
    for (std::uint32_t b = 0; b < num_blocks; ++b) {
      BasicBlock block;
      std::uint32_t num_instrs = 0;
      if (!r.u32(num_instrs)) return malformed;
      for (std::uint32_t k = 0; k < num_instrs; ++k) {
        Instr in;
        std::uint8_t op;
        if (!r.u8(op) || !r.u16(in.dst) || !r.u16(in.a) || !r.u16(in.b) ||
            !r.i64(in.imm) || !r.u16(in.obj) || !r.u16(in.obj2) ||
            !r.u8(in.width)) {
          return malformed;
        }
        if (op > static_cast<std::uint8_t>(Opcode::kRet)) {
          return make_error("deserialize: bad opcode");
        }
        in.op = static_cast<Opcode>(op);
        block.instrs.push_back(in);
      }
      fn.blocks.push_back(std::move(block));
    }
    program.functions.push_back(std::move(fn));
  }

  std::uint32_t num_fields = 0;
  if (!r.u32(num_fields)) return malformed;
  for (std::uint32_t i = 0; i < num_fields; ++i) {
    std::uint16_t field;
    if (!r.u16(field)) return malformed;
    if (field >= kHdrFieldCount) return make_error("deserialize: bad field");
    program.parsed_fields.push_back(static_cast<HeaderField>(field));
  }
  std::uint32_t num_entries = 0;
  if (!r.u32(program.dispatch_function) || !r.u32(num_entries)) {
    return malformed;
  }
  for (std::uint32_t i = 0; i < num_entries; ++i) {
    std::uint32_t wid, fn;
    if (!r.u32(wid) || !r.u32(fn)) return malformed;
    program.lambda_entries.emplace_back(wid, fn);
  }
  if (!r.done()) return make_error("deserialize: trailing bytes");
  return program;
}

}  // namespace lnic::microc
