// Micro-C intermediate representation.
//
// Lambdas are written (via microc::Builder) against the paper's
// Match+Lambda contract: a top-level function taking parsed headers and
// match data (§4.1, Listing 1), with local and global memory objects in a
// flat virtual address space (§4.2.1 D2). The workload manager compiles a
// set of lambdas plus a P4 match stage into one Program; the interpreter
// (interp.h) executes it with per-region cycle accounting, and the
// compiler passes (src/compiler) transform it.
//
// The IR is a register machine: each function owns registers r0..rN-1
// (64-bit). Memory is accessed through named MemObjects, each placed in
// one physical region (local / CTM / IMEM / EMEM) by the memory
// stratification pass; the *lowered* size of a memory instruction depends
// on that region, mirroring how NFP transfer registers make far-memory
// accesses cost extra instructions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace lnic::microc {

/// Physical memory region of the SmartNIC hierarchy (paper Fig. 4).
enum class MemRegion : std::uint8_t {
  kLocal,  // per-core local memory, smallest/fastest
  kCtm,    // per-island Cluster Target Memory
  kImem,   // on-chip internal memory, shared
  kEmem,   // external DRAM, largest/slowest
};

const char* to_string(MemRegion region);

/// Declared access pattern of a memory object (used by stratification).
enum class AccessPattern : std::uint8_t { kReadMostly, kWriteMostly, kReadWrite };

/// Optional user pragma guiding placement (paper §4.2.1 D2).
enum class PlacementHint : std::uint8_t { kNone, kHot, kCold };

/// Lifetime of a memory object. Globals persist across invocations of the
/// owning lambda (Listing 1: "global objects that persist state across
/// runs"); locals are zero-initialized per invocation.
enum class MemScope : std::uint8_t { kLocal, kGlobal };

struct MemObject {
  std::string name;
  Bytes size = 0;
  MemScope scope = MemScope::kLocal;
  AccessPattern access = AccessPattern::kReadWrite;
  PlacementHint hint = PlacementHint::kNone;
  /// Physical placement; kEmem until stratification runs (naïve layout).
  MemRegion region = MemRegion::kEmem;
  /// Estimated accesses per invocation, filled by program analysis.
  std::uint32_t access_estimate = 1;
  /// Data section: bytes copied into the object at initialization (global
  /// objects) or at each invocation (local objects). May be shorter than
  /// `size`; the remainder is zero.
  std::vector<std::uint8_t> initial_data;
};

enum class Opcode : std::uint8_t {
  // Pure ALU / data movement (dst, a, b, imm as documented per op).
  kConst,    // dst = imm
  kMov,      // dst = r[a]
  kAdd, kSub, kMul, kDivU, kRemU,       // dst = r[a] op r[b]
  kAnd, kOr, kXor, kShl, kShr,          // dst = r[a] op r[b]
  kAddImm,   // dst = r[a] + imm
  kMulImm,   // dst = r[a] * imm
  kFxMul,    // dst = Q16.16 multiply of r[a], r[b] (NPUs lack FPUs, §3.1b)
  kCmpEq, kCmpNe, kCmpLtU, kCmpLeU,     // dst = r[a] cmp r[b] ? 1 : 0
  kCmpEqImm,                            // dst = r[a] == imm ? 1 : 0
  kSelect,   // dst = r[a] ? r[b] : r[imm]   (imm holds a register index)

  // Header / request context access (headers are pre-parsed, §4.1).
  kLoadHdr,   // dst = headers.field[imm]
  kLoadBody,  // dst = request body byte at r[a] + imm (zero-extended)
  kBodyLen,   // dst = request body length
  kLoadMatch, // dst = match_data[imm]

  // Memory (mem = object index in Program::objects via `obj`).
  kLoad,     // dst = width-byte little-endian load mem[r[a] + imm]
  kStore,    // mem[r[a] + imm] = low `width` bytes of r[b]

  // Response construction (the deparse stage emits it, Fig. 3).
  kRespByte,  // append low byte of r[a] to the response payload
  kRespWord,  // append 8-byte little-endian r[a]
  kRespMem,   // append mem[r[a] .. r[a]+r[b]) from object `obj`

  // Intrinsics backed by NIC hardware assists. For kMemCpy/kGrayscale the
  // `dst` field names a register *read* for the destination offset (these
  // ops write memory, not a register): dst offset r[dst], src offset
  // r[a], length/pixel-count r[b].
  kMemCpy,     // copy r[b] bytes: object `obj` <- object `obj2`
  kGrayscale,  // convert r[b] RGBA pixels from `obj2` (offset r[a], 4 B
               // stride) to gray bytes in `obj` (offset r[dst])
  kHash,       // dst = FNV-1a over r[b] bytes of object `obj` at offset r[a]
  kBodyCopy,   // copy r[b] bytes of the request body (offset r[a]) into
               // object `obj` at offset r[dst]

  // External RPC (paper §4.2.1 D3): suspend, issue a call, resume with
  // the reply in dst. kind in imm: 0 = KV GET (key r[a]),
  // 1 = KV SET (key r[a], value r[b]).
  kExtCall,

  // Control flow. Branch targets are block indices within the function.
  kBr,       // jump to block imm
  kBrIf,     // if r[a] != 0 jump to block imm else block b
  kCall,     // dst = call function imm with args r[a..a+b) (b <= 4)
  kRet,      // return r[a]
};

const char* to_string(Opcode op);

/// True when the instruction writes only `dst` and has no other effects
/// (candidate for dead-code elimination).
bool is_pure(Opcode op);
/// True when the instruction ends a basic block.
bool is_terminator(Opcode op);
/// True for kLoad/kStore-style ops whose lowered size depends on region.
bool is_memory_op(Opcode op);

struct Instr {
  Opcode op;
  std::uint16_t dst = 0;
  std::uint16_t a = 0;
  std::uint16_t b = 0;
  std::int64_t imm = 0;
  std::uint16_t obj = 0;    // primary memory object operand
  std::uint16_t obj2 = 0;   // secondary object (kMemCpy / kGrayscale src)
  std::uint8_t width = 8;   // access width for kLoad/kStore: 1, 2, 4, 8

  friend bool operator==(const Instr&, const Instr&) = default;
};

struct BasicBlock {
  std::vector<Instr> instrs;
};

struct Function {
  std::string name;
  std::uint16_t num_regs = 8;
  std::uint16_t num_args = 0;
  std::vector<BasicBlock> blocks;  // entry is blocks[0]

  std::size_t instr_count() const;
};

/// Extracted-header fields available to lambdas (EXTRACTED_HEADERS_T).
/// The P4 parser spec lists which of these a program actually parses;
/// match reduction trims unused ones (§5.1).
enum HeaderField : std::uint16_t {
  kHdrWorkloadId = 0,
  kHdrRequestId = 1,
  kHdrSrcNode = 2,
  kHdrOp = 3,        // workload-specific operation selector
  kHdrKey = 4,       // key for key-value style requests
  kHdrValue = 5,     // value for key-value SET requests
  kHdrBodyLen = 6,
  kHdrImageWidth = 7,
  kHdrImageHeight = 8,
  kHdrFieldCount = 9,
};

const char* to_string(HeaderField field);

/// A complete Match+Lambda program: parser spec + dispatch (match stage)
/// + lambda functions + shared helpers + memory objects.
struct Program {
  std::string name;
  std::vector<Function> functions;
  std::vector<MemObject> objects;

  /// Header fields the generated parser extracts (one extraction
  /// instruction each; match reduction shrinks this set).
  std::vector<HeaderField> parsed_fields;

  /// Index into `functions` of the match-stage dispatcher; entry point of
  /// every invocation. kInvalid (= functions.size()) before assembly.
  std::uint32_t dispatch_function = 0;

  /// workload id -> function index (populated by the workload manager).
  std::vector<std::pair<WorkloadId, std::uint32_t>> lambda_entries;

  std::size_t function_index(const std::string& fn_name) const;
  static constexpr std::size_t kNoFunction = static_cast<std::size_t>(-1);
};

/// Per-instruction lowered size in target instruction-store words.
/// Memory ops cost more in farther regions (transfer-register setup).
std::uint32_t lowered_size(const Instr& instr, const Program& program);

/// Total lowered program size: Σ lowered_size over all functions, plus
/// one word per parsed header field (the generated parser, §4.1).
/// This is the quantity Figure 9 reports and the 16 K-instruction
/// per-core store limits (§6.1.2).
std::uint64_t code_size(const Program& program);

/// Total bytes of all memory objects placed in a given region.
Bytes region_bytes(const Program& program, MemRegion region);

}  // namespace lnic::microc
