#include "microc/interp.h"

#include <cassert>
#include <cstring>

namespace lnic::microc {

namespace {
constexpr std::size_t kMaxCallDepth = 16;     // NPUs do not support recursion
constexpr std::size_t kMaxResponse = 32ull << 20;

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t len) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}
}  // namespace

CostModel CostModel::npu() {
  CostModel m;
  m.frequency_hz = 633e6;
  m.runtime_factor = 1.0;
  m.region_read = {1, 30, 90, 150};
  m.region_write = {1, 30, 90, 150};
  m.bulk_divisor = 4;   // NFP bulk DMA engines
  m.ext_call_cycles = 60;
  return m;
}

CostModel CostModel::host_native() {
  CostModel m;
  m.frequency_hz = 2.0e9;  // Xeon Gold 5117 base clock (§6.1.2)
  m.runtime_factor = 1.0;
  // Caches flatten the hierarchy; everything looks ~L2-resident.
  m.region_read = {1, 1, 2, 4};
  m.region_write = {1, 1, 2, 4};
  m.bulk_divisor = 16;  // SIMD copy/convert loops
  m.ext_call_cycles = 400;  // socket write through libc
  return m;
}

CostModel CostModel::host_python() {
  CostModel m = host_native();
  // The baseline backends run lambdas behind a Python service (§6.1.1,
  // footnote 7): CPython costs ~400x per scalar op (each IR op lowers to
  // several bytecodes at ~100-200 ns each) and ~85x on bulk loops (the
  // paper's lambdas iterate per pixel/word in Python).
  m.runtime_factor = 400.0;
  m.bulk_factor = 85.0;
  return m;
}

void ObjectStore::reset(const Program& program) {
  data_.assign(program.objects.size(), {});
  for (std::size_t i = 0; i < program.objects.size(); ++i) {
    const MemObject& obj = program.objects[i];
    if (obj.scope == MemScope::kGlobal) {
      data_[i].assign(obj.size, 0);
      const auto n = std::min<std::size_t>(obj.initial_data.size(), obj.size);
      if (n > 0) std::memcpy(data_[i].data(), obj.initial_data.data(), n);
    }
  }
}

Bytes ObjectStore::total_bytes() const {
  Bytes total = 0;
  for (const auto& d : data_) total += d.size();
  return total;
}

Machine::Machine(const Program& program, const CostModel& cost,
                 ObjectStore* globals)
    : program_(program), cost_(cost), globals_(globals) {}

std::uint32_t Machine::read_cost(std::size_t obj) const {
  return cost_.region_read[static_cast<int>(program_.objects[obj].region)];
}
std::uint32_t Machine::write_cost(std::size_t obj) const {
  return cost_.region_write[static_cast<int>(program_.objects[obj].region)];
}

std::vector<std::uint8_t>* Machine::object_bytes(std::size_t index) {
  if (index >= program_.objects.size()) return nullptr;
  if (program_.objects[index].scope == MemScope::kGlobal) {
    if (globals_ == nullptr) return nullptr;
    return &globals_->data(index);
  }
  return &locals_[index];
}

bool Machine::load_bytes(std::size_t obj, std::uint64_t offset,
                         std::uint8_t width, std::uint64_t& out) {
  auto* bytes = object_bytes(obj);
  if (bytes == nullptr || offset + width > bytes->size()) {
    trap_ = "out-of-bounds load from object '" + program_.objects[obj].name +
            "' at offset " + std::to_string(offset);
    return false;
  }
  out = 0;
  std::memcpy(&out, bytes->data() + offset, width);
  return true;
}

bool Machine::store_bytes(std::size_t obj, std::uint64_t offset,
                          std::uint8_t width, std::uint64_t value) {
  auto* bytes = object_bytes(obj);
  if (bytes == nullptr || offset + width > bytes->size()) {
    trap_ = "out-of-bounds store to object '" + program_.objects[obj].name +
            "' at offset " + std::to_string(offset);
    return false;
  }
  std::memcpy(bytes->data() + offset, &value, width);
  return true;
}

Outcome Machine::run(const Invocation& invocation) {
  // Parser stage: one extraction per parsed field (§4.1).
  Outcome out = run_function(program_.dispatch_function, invocation);
  return out;
}

Outcome Machine::run_function(std::size_t function_index,
                              const Invocation& invocation) {
  assert(function_index < program_.functions.size());
  invocation_ = &invocation;
  suspended_ = false;
  trap_.clear();
  response_.clear();
  cycles_ = 0;
  bulk_cycles_ = 0;
  instructions_ = 0;

  // Charge the generated parser (header identification + extraction).
  cycles_ += cost_.hdr_cycles * program_.parsed_fields.size();

  locals_.assign(program_.objects.size(), {});
  for (std::size_t i = 0; i < program_.objects.size(); ++i) {
    const MemObject& obj = program_.objects[i];
    if (obj.scope == MemScope::kLocal) {
      locals_[i].assign(obj.size, 0);
      const auto n = std::min<std::size_t>(obj.initial_data.size(), obj.size);
      if (n > 0) std::memcpy(locals_[i].data(), obj.initial_data.data(), n);
    }
  }

  stack_.clear();
  Frame frame;
  frame.fn = static_cast<std::uint32_t>(function_index);
  frame.regs.assign(program_.functions[function_index].num_regs, 0);
  stack_.push_back(std::move(frame));
  return execute();
}

Outcome Machine::resume(std::uint64_t reply) {
  assert(suspended_);
  suspended_ = false;
  // The kExtCall instruction was left pending; deliver the reply into its
  // dst register and step past it.
  Frame& frame = stack_.back();
  const Instr& in = program_.functions[frame.fn]
                        .blocks[frame.block]
                        .instrs[frame.instr];
  assert(in.op == Opcode::kExtCall);
  frame.regs[in.dst] = reply;
  ++frame.instr;
  return execute();
}

void Machine::abort() {
  suspended_ = false;
  stack_.clear();
  invocation_ = nullptr;
}

Outcome Machine::trap(const std::string& message) {
  Outcome out;
  out.state = RunState::kTrap;
  out.trap_message = message;
  out.cycles = scaled_cycles();
  out.instructions = instructions_;
  stack_.clear();
  suspended_ = false;
  return out;
}

Outcome Machine::finish(std::uint64_t return_value) {
  Outcome out;
  out.state = RunState::kDone;
  out.return_value = return_value;
  out.response = std::move(response_);
  out.cycles = scaled_cycles();
  out.instructions = instructions_;
  stack_.clear();
  suspended_ = false;
  return out;
}

Outcome Machine::execute() {
  const Invocation& inv = *invocation_;
  while (true) {
    if (cycles_ > fuel_) return trap("fuel exhausted (compute limit)");
    Frame& frame = stack_.back();
    const Function& fn = program_.functions[frame.fn];
    const BasicBlock& block = fn.blocks[frame.block];
    if (frame.instr >= block.instrs.size()) {
      return trap("fell off the end of a block in '" + fn.name + "'");
    }
    const Instr& in = block.instrs[frame.instr];
    auto& regs = frame.regs;
    ++instructions_;

    switch (in.op) {
      case Opcode::kConst:
        regs[in.dst] = static_cast<std::uint64_t>(in.imm);
        charge(cost_.alu_cycles);
        break;
      case Opcode::kMov:
        regs[in.dst] = regs[in.a];
        charge(cost_.alu_cycles);
        break;
      case Opcode::kAdd: regs[in.dst] = regs[in.a] + regs[in.b]; charge(cost_.alu_cycles); break;
      case Opcode::kSub: regs[in.dst] = regs[in.a] - regs[in.b]; charge(cost_.alu_cycles); break;
      case Opcode::kMul: regs[in.dst] = regs[in.a] * regs[in.b]; charge(cost_.alu_cycles); break;
      case Opcode::kDivU:
        if (regs[in.b] == 0) return trap("division by zero");
        regs[in.dst] = regs[in.a] / regs[in.b];
        charge(cost_.alu_cycles * 8);  // iterative divide on NPUs
        break;
      case Opcode::kRemU:
        if (regs[in.b] == 0) return trap("remainder by zero");
        regs[in.dst] = regs[in.a] % regs[in.b];
        charge(cost_.alu_cycles * 8);
        break;
      case Opcode::kAnd: regs[in.dst] = regs[in.a] & regs[in.b]; charge(cost_.alu_cycles); break;
      case Opcode::kOr: regs[in.dst] = regs[in.a] | regs[in.b]; charge(cost_.alu_cycles); break;
      case Opcode::kXor: regs[in.dst] = regs[in.a] ^ regs[in.b]; charge(cost_.alu_cycles); break;
      case Opcode::kShl: regs[in.dst] = regs[in.a] << (regs[in.b] & 63); charge(cost_.alu_cycles); break;
      case Opcode::kShr: regs[in.dst] = regs[in.a] >> (regs[in.b] & 63); charge(cost_.alu_cycles); break;
      case Opcode::kAddImm:
        regs[in.dst] = regs[in.a] + static_cast<std::uint64_t>(in.imm);
        charge(cost_.alu_cycles);
        break;
      case Opcode::kMulImm:
        regs[in.dst] = regs[in.a] * static_cast<std::uint64_t>(in.imm);
        charge(cost_.alu_cycles);
        break;
      case Opcode::kFxMul: {
        // Q16.16 multiply (fixed-point substitute for float, §3.1b).
        const std::int64_t a = static_cast<std::int32_t>(regs[in.a]);
        const std::int64_t b = static_cast<std::int32_t>(regs[in.b]);
        regs[in.dst] = static_cast<std::uint64_t>(
            static_cast<std::uint32_t>((a * b) >> 16));
        charge(cost_.alu_cycles * 2);
        break;
      }
      case Opcode::kCmpEq: regs[in.dst] = regs[in.a] == regs[in.b]; charge(cost_.alu_cycles); break;
      case Opcode::kCmpNe: regs[in.dst] = regs[in.a] != regs[in.b]; charge(cost_.alu_cycles); break;
      case Opcode::kCmpLtU: regs[in.dst] = regs[in.a] < regs[in.b]; charge(cost_.alu_cycles); break;
      case Opcode::kCmpLeU: regs[in.dst] = regs[in.a] <= regs[in.b]; charge(cost_.alu_cycles); break;
      case Opcode::kCmpEqImm:
        regs[in.dst] = regs[in.a] == static_cast<std::uint64_t>(in.imm);
        charge(cost_.alu_cycles);
        break;
      case Opcode::kSelect:
        regs[in.dst] = regs[in.a] ? regs[in.b]
                                  : regs[static_cast<std::uint16_t>(in.imm)];
        charge(cost_.alu_cycles * 2);
        break;

      case Opcode::kLoadHdr:
        regs[in.dst] = inv.headers.fields[static_cast<std::size_t>(in.imm)];
        charge(cost_.hdr_cycles);
        break;
      case Opcode::kLoadBody: {
        const std::uint64_t off =
            regs[in.a] + static_cast<std::uint64_t>(in.imm);
        if (off >= inv.body.size()) return trap("request body read past end");
        regs[in.dst] = inv.body[off];
        charge(cost_.body_cycles);
        break;
      }
      case Opcode::kBodyLen:
        regs[in.dst] = inv.body.size();
        charge(cost_.alu_cycles);
        break;
      case Opcode::kLoadMatch: {
        const auto idx = static_cast<std::size_t>(in.imm);
        if (idx >= inv.match_data.size()) return trap("match_data out of range");
        regs[in.dst] = inv.match_data[idx];
        charge(cost_.hdr_cycles);
        break;
      }

      case Opcode::kLoad: {
        std::uint64_t v = 0;
        if (!load_bytes(in.obj, regs[in.a] + static_cast<std::uint64_t>(in.imm),
                        in.width, v)) {
          return trap(trap_);
        }
        regs[in.dst] = v;
        charge(cost_.alu_cycles + read_cost(in.obj));
        break;
      }
      case Opcode::kStore:
        if (!store_bytes(in.obj, regs[in.a] + static_cast<std::uint64_t>(in.imm),
                         in.width, regs[in.b])) {
          return trap(trap_);
        }
        charge(cost_.alu_cycles + write_cost(in.obj));
        break;

      case Opcode::kRespByte:
        if (response_.size() >= kMaxResponse) return trap("response too large");
        response_.push_back(static_cast<std::uint8_t>(regs[in.a]));
        charge(cost_.body_cycles);
        break;
      case Opcode::kRespWord: {
        if (response_.size() + 8 > kMaxResponse) return trap("response too large");
        std::uint64_t v = regs[in.a];
        for (int i = 0; i < 8; ++i) {
          response_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
        }
        charge(cost_.body_cycles);
        break;
      }
      case Opcode::kRespMem: {
        auto* bytes = object_bytes(in.obj);
        const std::uint64_t off = regs[in.a];
        const std::uint64_t len = regs[in.b];
        if (bytes == nullptr || off + len > bytes->size()) {
          return trap("response copy out of bounds");
        }
        if (response_.size() + len > kMaxResponse) return trap("response too large");
        response_.insert(response_.end(), bytes->begin() + static_cast<std::ptrdiff_t>(off),
                         bytes->begin() + static_cast<std::ptrdiff_t>(off + len));
        const std::uint64_t words = (len + 7) / 8;
        charge(cost_.alu_cycles);
        charge_bulk(words * read_cost(in.obj) / cost_.bulk_divisor + words);
        break;
      }

      case Opcode::kMemCpy: {
        auto* dst = object_bytes(in.obj);
        auto* src = object_bytes(in.obj2);
        const std::uint64_t doff = regs[in.dst];
        const std::uint64_t soff = regs[in.a];
        const std::uint64_t len = regs[in.b];
        if (dst == nullptr || src == nullptr || doff + len > dst->size() ||
            soff + len > src->size()) {
          return trap("memcpy out of bounds");
        }
        std::memmove(dst->data() + doff, src->data() + soff, len);
        const std::uint64_t words = (len + 7) / 8;
        charge(cost_.alu_cycles);
        charge_bulk(words * (read_cost(in.obj2) + write_cost(in.obj)) /
                        cost_.bulk_divisor +
                    words);
        break;
      }
      case Opcode::kGrayscale: {
        // RGBA8888 -> 8-bit luma with integer weights (no FPU, §3.1b):
        // y = (77 R + 150 G + 29 B) >> 8.
        auto* dst = object_bytes(in.obj);
        auto* src = object_bytes(in.obj2);
        const std::uint64_t doff = regs[in.dst];
        const std::uint64_t soff = regs[in.a];
        const std::uint64_t pixels = regs[in.b];
        if (dst == nullptr || src == nullptr || soff + pixels * 4 > src->size() ||
            doff + pixels > dst->size()) {
          return trap("grayscale out of bounds");
        }
        for (std::uint64_t i = 0; i < pixels; ++i) {
          const std::uint8_t* p = src->data() + soff + i * 4;
          (*dst)[doff + i] = static_cast<std::uint8_t>(
              (77u * p[0] + 150u * p[1] + 29u * p[2]) >> 8);
        }
        charge(cost_.alu_cycles);
        charge_bulk(pixels * (read_cost(in.obj2) + write_cost(in.obj)) /
                        cost_.bulk_divisor +
                    pixels * 6 * cost_.alu_cycles);
        break;
      }
      case Opcode::kHash: {
        auto* bytes = object_bytes(in.obj);
        const std::uint64_t off = regs[in.a];
        const std::uint64_t len = regs[in.b];
        if (bytes == nullptr || off + len > bytes->size()) {
          return trap("hash out of bounds");
        }
        regs[in.dst] = fnv1a(bytes->data() + off, len);
        const std::uint64_t words = (len + 7) / 8;
        charge(cost_.alu_cycles);
        charge_bulk(words * (read_cost(in.obj) + 2 * cost_.alu_cycles));
        break;
      }
      case Opcode::kBodyCopy: {
        auto* dst = object_bytes(in.obj);
        const std::uint64_t doff = regs[in.dst];
        const std::uint64_t boff = regs[in.a];
        const std::uint64_t len = regs[in.b];
        if (dst == nullptr || boff + len > inv.body.size() ||
            doff + len > dst->size()) {
          return trap("body copy out of bounds");
        }
        std::memcpy(dst->data() + doff, inv.body.data() + boff, len);
        const std::uint64_t words = (len + 7) / 8;
        charge(cost_.alu_cycles);
        charge_bulk(words * (cost_.body_cycles / 4 + write_cost(in.obj)) /
                        cost_.bulk_divisor +
                    words);
        break;
      }

      case Opcode::kExtCall: {
        Outcome out;
        out.state = RunState::kYield;
        out.ext.kind = in.imm;
        out.ext.key = regs[in.a];
        out.ext.value = regs[in.b];
        charge(cost_.ext_call_cycles);
        out.cycles = scaled_cycles();
        out.instructions = instructions_;
        suspended_ = true;
        // Leave frame.instr pointing at the kExtCall; resume() steps past.
        return out;
      }

      case Opcode::kBr:
        frame.block = static_cast<std::uint32_t>(in.imm);
        frame.instr = 0;
        charge(cost_.branch_cycles);
        continue;
      case Opcode::kBrIf:
        frame.block = regs[in.a] != 0 ? static_cast<std::uint32_t>(in.imm)
                                      : in.b;
        frame.instr = 0;
        charge(cost_.branch_cycles);
        continue;
      case Opcode::kCall: {
        if (stack_.size() >= kMaxCallDepth) {
          return trap("call depth limit (recursion unsupported on NPUs)");
        }
        const auto callee_index = static_cast<std::uint32_t>(in.imm);
        const Function& callee = program_.functions[callee_index];
        Frame next;
        next.fn = callee_index;
        next.ret_dst = in.dst;
        next.regs.assign(callee.num_regs, 0);
        for (std::uint16_t i = 0; i < in.b; ++i) {
          next.regs[i] = regs[in.a + i];
        }
        charge(cost_.call_cycles);
        ++frame.instr;  // return lands after the call
        stack_.push_back(std::move(next));
        continue;
      }
      case Opcode::kRet: {
        const std::uint64_t value = regs[in.a];
        const std::uint16_t ret_dst = frame.ret_dst;
        charge(cost_.branch_cycles);
        stack_.pop_back();
        if (stack_.empty()) return finish(value);
        stack_.back().regs[ret_dst] = value;
        continue;
      }
    }
    ++frame.instr;
  }
}

}  // namespace lnic::microc
