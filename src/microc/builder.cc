#include "microc/builder.h"

#include <algorithm>

namespace lnic::microc {

FunctionBuilder::FunctionBuilder(ProgramBuilder& program, std::string name,
                                 std::uint16_t num_args)
    : program_(program), num_args_(num_args), next_reg_(num_args) {
  fn_.name = std::move(name);
  fn_.num_args = num_args;
  fn_.blocks.emplace_back();  // entry block
}

Reg FunctionBuilder::reg() { return Reg{next_reg_++}; }

std::uint32_t FunctionBuilder::block() {
  fn_.blocks.emplace_back();
  current_ = static_cast<std::uint32_t>(fn_.blocks.size() - 1);
  return current_;
}

void FunctionBuilder::select_block(std::uint32_t index) {
  assert(index < fn_.blocks.size());
  current_ = index;
}

Instr& FunctionBuilder::emit(Instr instr) {
  assert(!finished_);
  auto& block = fn_.blocks[current_];
  block.instrs.push_back(instr);
  return block.instrs.back();
}

Reg FunctionBuilder::const_u64(std::uint64_t v) {
  Reg d = reg();
  emit({.op = Opcode::kConst, .dst = d.index,
        .imm = static_cast<std::int64_t>(v)});
  return d;
}
Reg FunctionBuilder::mov(Reg a) {
  Reg d = reg();
  emit({.op = Opcode::kMov, .dst = d.index, .a = a.index});
  return d;
}
void FunctionBuilder::mov_to(Reg dst, Reg src) {
  emit({.op = Opcode::kMov, .dst = dst.index, .a = src.index});
}

#define LNIC_BINOP(method, OP)                                          \
  Reg FunctionBuilder::method(Reg a, Reg b) {                           \
    Reg d = reg();                                                      \
    emit({.op = Opcode::OP, .dst = d.index, .a = a.index, .b = b.index}); \
    return d;                                                           \
  }
LNIC_BINOP(add, kAdd)
LNIC_BINOP(sub, kSub)
LNIC_BINOP(mul, kMul)
LNIC_BINOP(divu, kDivU)
LNIC_BINOP(remu, kRemU)
LNIC_BINOP(and_, kAnd)
LNIC_BINOP(or_, kOr)
LNIC_BINOP(xor_, kXor)
LNIC_BINOP(shl, kShl)
LNIC_BINOP(shr, kShr)
LNIC_BINOP(fxmul, kFxMul)
LNIC_BINOP(cmp_eq, kCmpEq)
LNIC_BINOP(cmp_ne, kCmpNe)
LNIC_BINOP(cmp_ltu, kCmpLtU)
LNIC_BINOP(cmp_leu, kCmpLeU)
#undef LNIC_BINOP

Reg FunctionBuilder::add_imm(Reg a, std::int64_t imm) {
  Reg d = reg();
  emit({.op = Opcode::kAddImm, .dst = d.index, .a = a.index, .imm = imm});
  return d;
}
Reg FunctionBuilder::mul_imm(Reg a, std::int64_t imm) {
  Reg d = reg();
  emit({.op = Opcode::kMulImm, .dst = d.index, .a = a.index, .imm = imm});
  return d;
}
Reg FunctionBuilder::cmp_eq_imm(Reg a, std::int64_t imm) {
  Reg d = reg();
  emit({.op = Opcode::kCmpEqImm, .dst = d.index, .a = a.index, .imm = imm});
  return d;
}

Reg FunctionBuilder::load_hdr(HeaderField field) {
  Reg d = reg();
  emit({.op = Opcode::kLoadHdr, .dst = d.index, .imm = field});
  return d;
}
Reg FunctionBuilder::load_body(Reg offset, std::int64_t imm) {
  Reg d = reg();
  emit({.op = Opcode::kLoadBody, .dst = d.index, .a = offset.index,
        .imm = imm});
  return d;
}
Reg FunctionBuilder::body_len() {
  Reg d = reg();
  emit({.op = Opcode::kBodyLen, .dst = d.index});
  return d;
}
Reg FunctionBuilder::load_match(std::uint16_t index) {
  Reg d = reg();
  emit({.op = Opcode::kLoadMatch, .dst = d.index, .imm = index});
  return d;
}

Reg FunctionBuilder::load(std::uint16_t obj, Reg offset, std::int64_t disp,
                          std::uint8_t width) {
  Reg d = reg();
  emit({.op = Opcode::kLoad, .dst = d.index, .a = offset.index, .imm = disp,
        .obj = obj, .width = width});
  return d;
}
void FunctionBuilder::store(std::uint16_t obj, Reg offset, Reg value,
                            std::int64_t disp, std::uint8_t width) {
  emit({.op = Opcode::kStore, .a = offset.index, .b = value.index,
        .imm = disp, .obj = obj, .width = width});
}

void FunctionBuilder::resp_byte(Reg value) {
  emit({.op = Opcode::kRespByte, .a = value.index});
}
void FunctionBuilder::resp_word(Reg value) {
  emit({.op = Opcode::kRespWord, .a = value.index});
}
void FunctionBuilder::resp_mem(std::uint16_t obj, Reg offset, Reg length) {
  emit({.op = Opcode::kRespMem, .a = offset.index, .b = length.index,
        .obj = obj});
}

void FunctionBuilder::memcpy_(std::uint16_t dst_obj, Reg dst_off,
                              std::uint16_t src_obj, Reg src_off, Reg length) {
  emit({.op = Opcode::kMemCpy, .dst = dst_off.index, .a = src_off.index,
        .b = length.index, .obj = dst_obj, .obj2 = src_obj});
}
void FunctionBuilder::grayscale(std::uint16_t dst_obj, Reg dst_off,
                                std::uint16_t src_obj, Reg src_off,
                                Reg pixel_count) {
  emit({.op = Opcode::kGrayscale, .dst = dst_off.index, .a = src_off.index,
        .b = pixel_count.index, .obj = dst_obj, .obj2 = src_obj});
}
Reg FunctionBuilder::hash(std::uint16_t obj, Reg offset, Reg length) {
  Reg d = reg();
  emit({.op = Opcode::kHash, .dst = d.index, .a = offset.index,
        .b = length.index, .obj = obj});
  return d;
}
void FunctionBuilder::body_copy(std::uint16_t dst_obj, Reg dst_off,
                                Reg body_off, Reg length) {
  emit({.op = Opcode::kBodyCopy, .dst = dst_off.index, .a = body_off.index,
        .b = length.index, .obj = dst_obj});
}

Reg FunctionBuilder::ext_call(std::int64_t kind, Reg key, Reg value) {
  Reg d = reg();
  emit({.op = Opcode::kExtCall, .dst = d.index, .a = key.index,
        .b = value.index, .imm = kind});
  return d;
}

void FunctionBuilder::br(std::uint32_t target) {
  emit({.op = Opcode::kBr, .imm = target});
}
void FunctionBuilder::br_if(Reg cond, std::uint32_t if_true,
                            std::uint32_t if_false) {
  emit({.op = Opcode::kBrIf, .a = cond.index, .b =
            static_cast<std::uint16_t>(if_false),
        .imm = if_true});
}
Reg FunctionBuilder::call(std::uint32_t function, const std::vector<Reg>& args) {
  assert(args.size() <= 4);
  // Arguments must be contiguous registers starting at args[0]; the
  // builder copies them into fresh contiguous registers to guarantee it.
  Reg first{0};
  if (!args.empty()) {
    std::vector<Reg> contiguous;
    contiguous.reserve(args.size());
    for (Reg a : args) contiguous.push_back(mov(a));
    first = contiguous.front();
  }
  Reg d = reg();
  emit({.op = Opcode::kCall, .dst = d.index, .a = first.index,
        .b = static_cast<std::uint16_t>(args.size()),
        .imm = static_cast<std::int64_t>(function)});
  return d;
}
void FunctionBuilder::ret(Reg value) {
  emit({.op = Opcode::kRet, .a = value.index});
}
void FunctionBuilder::ret_imm(std::uint64_t value) {
  Reg v = const_u64(value);
  ret(v);
}

std::uint32_t FunctionBuilder::finish() {
  assert(!finished_);
  finished_ = true;
  fn_.num_regs = std::max<std::uint16_t>(next_reg_, 1);
  program_.program_.functions.push_back(std::move(fn_));
  return static_cast<std::uint32_t>(program_.program_.functions.size() - 1);
}

std::uint16_t ProgramBuilder::object(std::string name, Bytes size,
                                     MemScope scope, AccessPattern access,
                                     PlacementHint hint) {
  MemObject obj;
  obj.name = std::move(name);
  obj.size = size;
  obj.scope = scope;
  obj.access = access;
  obj.hint = hint;
  obj.region = MemRegion::kEmem;  // naïve layout until stratification
  program_.objects.push_back(std::move(obj));
  return static_cast<std::uint16_t>(program_.objects.size() - 1);
}

void ProgramBuilder::parse_field(HeaderField field) {
  auto& fields = program_.parsed_fields;
  if (std::find(fields.begin(), fields.end(), field) == fields.end()) {
    fields.push_back(field);
  }
}

}  // namespace lnic::microc
