#include "p4/p4.h"

#include <algorithm>

namespace lnic::p4 {

std::vector<microc::HeaderField> MatchSpec::referenced_fields() const {
  std::vector<microc::HeaderField> fields;
  for (const auto& table : tables) {
    for (auto field : table.key_fields) {
      if (std::find(fields.begin(), fields.end(), field) == fields.end()) {
        fields.push_back(field);
      }
    }
  }
  return fields;
}

std::size_t MatchSpec::total_entries() const {
  std::size_t n = 0;
  for (const auto& table : tables) n += table.entries.size();
  return n;
}

Table make_lambda_table(const std::string& lambda_name, WorkloadId id) {
  Table t;
  t.name = lambda_name + "_match";
  t.key_fields = {microc::kHdrWorkloadId};
  t.entries.push_back(TableEntry{{id}, lambda_name});
  return t;
}

Table make_route_table(const std::string& lambda_name, WorkloadId id) {
  Table t;
  t.name = lambda_name + "_routes";
  t.key_fields = {microc::kHdrWorkloadId, microc::kHdrSrcNode};
  t.is_route_table = true;
  // Route entries for the gateway and three peer worker nodes, as in the
  // testbed (M2-M5 behind one switch, §6.1.2). The route action is the
  // shared return-path helper emitted by the lowerer.
  for (std::uint64_t src = 0; src < 4; ++src) {
    t.entries.push_back(TableEntry{{id, src}, "route_" + lambda_name});
  }
  return t;
}

}  // namespace lnic::p4
