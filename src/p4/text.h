// Text frontend for the mini-P4 match-stage language (paper §4.1,
// Listing 3: users specify "the corresponding P4 code for the match
// stage"). Parses a compact P4-16-style subset into a MatchSpec:
//
//   parser {
//     extract(workload_id);
//     extract(src_node);
//   }
//
//   table web_match {
//     key = { workload_id; }
//     entry (1) -> web_server;
//   }
//
//   table web_routes route {            // `route` marks a route table
//     key = { workload_id; src_node; }
//     entry (1, 0) -> route_web_server;
//     entry (1, 1) -> route_web_server;
//   }
//
//   control ingress {
//     apply(web_match);
//     apply(web_routes);
//   }
//
// The control block fixes table order; tables not applied are rejected.
// Key fields use the extracted-header names from microc/frontend.h.
#pragma once

#include <string>

#include "common/result.h"
#include "p4/p4.h"

namespace lnic::p4 {

Result<MatchSpec> parse_p4(const std::string& source);

}  // namespace lnic::p4
