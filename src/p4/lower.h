// Lowering the P4 match stage into Micro-C dispatch code.
//
// Two modes, corresponding to before/after the match-reduction
// optimization (§5.1, §6.4):
//
//  - kNaive: each table becomes a genuine exact-match lookup — keys are
//    marshalled into a key buffer, hashed, and compared against entries
//    stored in an EMEM-resident table object; every lambda carries its
//    own route-management table and route helper (duplicated logic).
//    The parser extracts every known header field.
//
//  - kReduced: tables with identical key structure are merged and the
//    whole match stage collapses to one if-else sequence on the workload
//    ID; a single shared route helper (parameterized by P4 metadata)
//    replaces the per-lambda copies; the parser extracts only fields some
//    function actually reads.
#pragma once

#include "common/result.h"
#include "microc/ir.h"
#include "p4/p4.h"

namespace lnic::p4 {

enum class LoweringMode { kNaive, kReduced };

/// Appends the dispatch function (and route helpers / table objects) to
/// `program`, which must already contain the lambda action functions
/// named by the spec's entries. Sets program.dispatch_function,
/// program.parsed_fields and program.lambda_entries.
///
/// Re-lowering over a program that already has a dispatch (the match
/// reduction pass does this) first strips the previously generated
/// functions and objects (they are tagged by name prefix "__match").
Status lower_match_stage(const MatchSpec& spec, microc::Program& program,
                         LoweringMode mode);

/// Header fields actually read (kLoadHdr) by non-generated functions.
std::vector<microc::HeaderField> infer_used_fields(
    const microc::Program& program);

/// Removes previously generated match-stage functions/objects (name
/// prefix "__match"). Exposed for tests.
void strip_generated(microc::Program& program);

}  // namespace lnic::p4
