#include "p4/lower.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>
#include <string>

#include "microc/builder.h"

namespace lnic::p4 {

using microc::FunctionBuilder;
using microc::HeaderField;
using microc::Instr;
using microc::MemObject;
using microc::Opcode;
using microc::Program;
using microc::Reg;

namespace {

constexpr const char* kGenPrefix = "__match";

bool is_generated_name(const std::string& name) {
  return name.rfind(kGenPrefix, 0) == 0;
}

// Must match the interpreter's kHash implementation exactly: the lowered
// dispatch compares runtime hashes against hashes precomputed here.
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t len) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t hash_keys(const std::vector<std::uint64_t>& keys) {
  std::vector<std::uint8_t> bytes(keys.size() * 8);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    std::memcpy(bytes.data() + i * 8, &keys[i], 8);
  }
  return fnv1a(bytes.data(), bytes.size());
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

// Adds a generated object directly to the program (bypassing
// ProgramBuilder, which we do not have here).
std::uint16_t add_object(Program& program, std::string name, Bytes size,
                         std::vector<std::uint8_t> data,
                         microc::MemScope scope) {
  MemObject obj;
  obj.name = std::move(name);
  obj.size = size;
  obj.scope = scope;
  obj.access = microc::AccessPattern::kReadMostly;
  obj.region = microc::MemRegion::kEmem;
  obj.initial_data = std::move(data);
  program.objects.push_back(std::move(obj));
  return static_cast<std::uint16_t>(program.objects.size() - 1);
}

// Builds one function directly into `program` using a local builder-like
// helper: we assemble a Function by hand to avoid coupling ProgramBuilder
// to an existing Program. Registers are allocated linearly.
class FnWriter {
 public:
  explicit FnWriter(std::string name) { fn_.name = std::move(name); fn_.blocks.emplace_back(); }

  std::uint16_t reg() { return next_reg_++; }
  std::uint32_t new_block() {
    fn_.blocks.emplace_back();
    return static_cast<std::uint32_t>(fn_.blocks.size() - 1);
  }
  void select(std::uint32_t b) { current_ = b; }
  std::uint32_t current() const { return current_; }

  void emit(Instr in) { fn_.blocks[current_].instrs.push_back(in); }

  std::uint16_t ldhdr(HeaderField f) {
    const auto d = reg();
    emit({.op = Opcode::kLoadHdr, .dst = d, .imm = f});
    return d;
  }
  std::uint16_t ldmatch(std::uint16_t idx) {
    const auto d = reg();
    emit({.op = Opcode::kLoadMatch, .dst = d, .imm = idx});
    return d;
  }
  std::uint16_t cnst(std::uint64_t v) {
    const auto d = reg();
    emit({.op = Opcode::kConst, .dst = d, .imm = static_cast<std::int64_t>(v)});
    return d;
  }
  void store(std::uint16_t obj, std::uint16_t off_reg, std::uint16_t val_reg,
             std::int64_t disp = 0) {
    emit({.op = Opcode::kStore, .a = off_reg, .b = val_reg, .imm = disp,
          .obj = obj, .width = 8});
  }
  std::uint16_t load(std::uint16_t obj, std::uint16_t off_reg,
                     std::int64_t disp = 0) {
    const auto d = reg();
    emit({.op = Opcode::kLoad, .dst = d, .a = off_reg, .imm = disp,
          .obj = obj, .width = 8});
    return d;
  }
  std::uint16_t hash(std::uint16_t obj, std::uint16_t off_reg,
                     std::uint16_t len_reg) {
    const auto d = reg();
    emit({.op = Opcode::kHash, .dst = d, .a = off_reg, .b = len_reg, .obj = obj});
    return d;
  }
  std::uint16_t cmpeq(std::uint16_t a, std::uint16_t b) {
    const auto d = reg();
    emit({.op = Opcode::kCmpEq, .dst = d, .a = a, .b = b});
    return d;
  }
  std::uint16_t cmpeq_imm(std::uint16_t a, std::int64_t imm) {
    const auto d = reg();
    emit({.op = Opcode::kCmpEqImm, .dst = d, .a = a, .imm = imm});
    return d;
  }
  std::uint16_t and_(std::uint16_t a, std::uint16_t b) {
    const auto d = reg();
    emit({.op = Opcode::kAnd, .dst = d, .a = a, .b = b});
    return d;
  }
  std::uint16_t call(std::uint32_t fn_index) {
    const auto d = reg();
    emit({.op = Opcode::kCall, .dst = d, .a = 0, .b = 0,
          .imm = static_cast<std::int64_t>(fn_index)});
    return d;
  }
  void br(std::uint32_t target) { emit({.op = Opcode::kBr, .imm = target}); }
  void br_if(std::uint16_t cond, std::uint32_t t, std::uint32_t f) {
    emit({.op = Opcode::kBrIf, .a = cond, .b = static_cast<std::uint16_t>(f),
          .imm = t});
  }
  void ret(std::uint16_t v) { emit({.op = Opcode::kRet, .a = v}); }
  void ret_imm(std::uint64_t v) { ret(cnst(v)); }

  std::uint32_t finish(Program& program) {
    fn_.num_regs = std::max<std::uint16_t>(next_reg_, 1);
    program.functions.push_back(std::move(fn_));
    return static_cast<std::uint32_t>(program.functions.size() - 1);
  }

 private:
  microc::Function fn_;
  std::uint16_t next_reg_ = 0;
  std::uint32_t current_ = 0;
};

// Emits a naïve per-lambda route helper: marshal (wid, src) keys, hash,
// scan the route table in EMEM, return the route metadata.
std::uint32_t emit_naive_route_helper(Program& program, const Table& routes,
                                      const std::string& lambda_name) {
  // Table object: per entry [key-hash (8B)][metadata (8B)].
  std::vector<std::uint8_t> data;
  for (const auto& entry : routes.entries) {
    append_u64(data, hash_keys(entry.key_values));
    append_u64(data, /*egress metadata=*/entry.key_values.back() + 1);
  }
  const Bytes tbl_size = data.size();
  const auto tbl = add_object(program,
                              std::string(kGenPrefix) + "_rtbl_" + lambda_name,
                              tbl_size, std::move(data), microc::MemScope::kGlobal);
  const auto keybuf = add_object(
      program, std::string(kGenPrefix) + "_rkey_" + lambda_name,
      routes.key_fields.size() * 8, {}, microc::MemScope::kLocal);

  FnWriter w(std::string(kGenPrefix) + "_route_" + lambda_name);
  // Marshal keys.
  const auto zero = w.cnst(0);
  for (std::size_t i = 0; i < routes.key_fields.size(); ++i) {
    const auto v = w.ldhdr(routes.key_fields[i]);
    w.store(keybuf, zero, v, static_cast<std::int64_t>(i * 8));
  }
  const auto len = w.cnst(routes.key_fields.size() * 8);
  const auto khash = w.hash(keybuf, zero, len);

  // Unrolled scan: blocks check_0..check_n, hit_0..hit_n, miss.
  std::vector<std::uint32_t> checks, hits;
  for (std::size_t e = 0; e < routes.entries.size(); ++e) {
    checks.push_back(w.new_block());
    hits.push_back(w.new_block());
  }
  const auto miss = w.new_block();
  w.select(0);
  w.br(checks.empty() ? miss : checks[0]);
  for (std::size_t e = 0; e < routes.entries.size(); ++e) {
    w.select(checks[e]);
    const auto off = w.cnst(e * 16);
    const auto stored = w.load(tbl, off);
    const auto eq = w.cmpeq(stored, khash);
    w.br_if(eq, hits[e], e + 1 < checks.size() ? checks[e + 1] : miss);
    w.select(hits[e]);
    const auto moff = w.cnst(e * 16 + 8);
    const auto meta = w.load(tbl, moff);
    w.ret(meta);
  }
  w.select(miss);
  w.ret_imm(0);
  return w.finish(program);
}

// Emits the single shared route helper used after match reduction: route
// metadata comes in as P4 metadata (match_data[0]) instead of a table.
std::uint32_t emit_reduced_route_helper(Program& program) {
  FnWriter w(std::string(kGenPrefix) + "_route");
  const auto meta = w.ldmatch(0);
  const auto port = w.cmpeq_imm(meta, 0);  // default-route check
  const auto sel = w.reg();
  w.emit({.op = Opcode::kSelect, .dst = sel, .a = port, .b = meta,
          .imm = meta});
  w.ret(sel);
  return w.finish(program);
}

}  // namespace

std::vector<HeaderField> infer_used_fields(const Program& program) {
  std::vector<HeaderField> fields;
  auto add = [&fields](HeaderField f) {
    if (std::find(fields.begin(), fields.end(), f) == fields.end()) {
      fields.push_back(f);
    }
  };
  for (const auto& fn : program.functions) {
    if (is_generated_name(fn.name)) continue;
    for (const auto& block : fn.blocks) {
      for (const auto& in : block.instrs) {
        if (in.op == Opcode::kLoadHdr) {
          add(static_cast<HeaderField>(in.imm));
        }
      }
    }
  }
  return fields;
}

void strip_generated(Program& program) {
  // Build function index remap (removed -> npos).
  constexpr std::uint32_t kRemoved = 0xFFFFFFFFu;
  std::vector<std::uint32_t> fn_remap(program.functions.size());
  {
    std::vector<microc::Function> kept;
    for (std::size_t i = 0; i < program.functions.size(); ++i) {
      if (is_generated_name(program.functions[i].name)) {
        fn_remap[i] = kRemoved;
      } else {
        fn_remap[i] = static_cast<std::uint32_t>(kept.size());
        kept.push_back(std::move(program.functions[i]));
      }
    }
    program.functions = std::move(kept);
  }
  std::vector<std::uint32_t> obj_remap(program.objects.size());
  {
    std::vector<MemObject> kept;
    for (std::size_t i = 0; i < program.objects.size(); ++i) {
      if (is_generated_name(program.objects[i].name)) {
        obj_remap[i] = kRemoved;
      } else {
        obj_remap[i] = static_cast<std::uint32_t>(kept.size());
        kept.push_back(std::move(program.objects[i]));
      }
    }
    program.objects = std::move(kept);
  }
  // Rewrite references in surviving functions. User lambdas never call
  // generated code or touch generated objects, so remaps must succeed.
  for (auto& fn : program.functions) {
    for (auto& block : fn.blocks) {
      for (auto& in : block.instrs) {
        if (in.op == Opcode::kCall) {
          const auto target = fn_remap[static_cast<std::size_t>(in.imm)];
          assert(target != kRemoved && "user code calls generated function");
          in.imm = target;
        }
        if (microc::is_memory_op(in.op)) {
          in.obj = static_cast<std::uint16_t>(obj_remap[in.obj]);
          if (in.op == Opcode::kMemCpy || in.op == Opcode::kGrayscale) {
            in.obj2 = static_cast<std::uint16_t>(obj_remap[in.obj2]);
          }
        }
      }
    }
  }
  program.lambda_entries.clear();
  program.dispatch_function = 0;
  program.parsed_fields.clear();
}

Status lower_match_stage(const MatchSpec& spec, Program& program,
                         LoweringMode mode) {
  strip_generated(program);

  // Resolve action functions and collect (wid, action, route-table).
  struct LambdaTarget {
    WorkloadId wid;
    std::uint32_t fn_index;
    std::string name;
    const Table* routes = nullptr;
  };
  std::vector<LambdaTarget> targets;
  for (const auto& table : spec.tables) {
    if (table.is_route_table) continue;
    for (const auto& entry : table.entries) {
      const auto idx = program.function_index(entry.action_function);
      if (idx == Program::kNoFunction) {
        return make_error("lower: unknown action function '" +
                          entry.action_function + "'");
      }
      if (entry.key_values.empty()) {
        return make_error("lower: table '" + table.name + "' entry has no key");
      }
      targets.push_back(LambdaTarget{
          static_cast<WorkloadId>(entry.key_values[0]),
          static_cast<std::uint32_t>(idx), entry.action_function, nullptr});
    }
  }
  for (const auto& table : spec.tables) {
    if (!table.is_route_table) continue;
    for (auto& target : targets) {
      if (!table.entries.empty() &&
          table.entries[0].key_values[0] == target.wid) {
        target.routes = &table;
      }
    }
  }

  if (mode == LoweringMode::kNaive) {
    // Per-lambda route helpers first (dispatch references them).
    std::map<WorkloadId, std::uint32_t> route_helpers;
    for (const auto& target : targets) {
      if (target.routes != nullptr) {
        route_helpers[target.wid] =
            emit_naive_route_helper(program, *target.routes, target.name);
      }
    }

    FnWriter w(std::string(kGenPrefix) + "_dispatch");
    // One match table per lambda, scanned in sequence; each is a real
    // hash-and-compare lookup against an EMEM table object.
    struct TableCtx {
      std::uint16_t tbl_obj;
      std::uint16_t keybuf;
      const Table* table;
    };
    std::vector<TableCtx> ctxs;
    for (const auto& table : spec.tables) {
      if (table.is_route_table) continue;
      std::vector<std::uint8_t> data;
      for (const auto& entry : table.entries) {
        append_u64(data, hash_keys(entry.key_values));
        for (auto k : entry.key_values) append_u64(data, k);
      }
      const Bytes size = data.size();
      const auto tbl =
          add_object(program, std::string(kGenPrefix) + "_tbl_" + table.name,
                     size, std::move(data), microc::MemScope::kGlobal);
      const auto keybuf =
          add_object(program, std::string(kGenPrefix) + "_key_" + table.name,
                     table.key_fields.size() * 8, {}, microc::MemScope::kLocal);
      ctxs.push_back(TableCtx{tbl, keybuf, &table});
    }

    // Layout: for each table: marshal block -> per-entry check/hit blocks.
    const std::size_t entry_bytes_base = 8;  // stored hash before keys
    std::vector<std::uint32_t> marshal_blocks;
    for (std::size_t t = 0; t < ctxs.size(); ++t) {
      marshal_blocks.push_back(t == 0 ? 0u : w.new_block());
    }
    const auto miss_block = w.new_block();

    for (std::size_t t = 0; t < ctxs.size(); ++t) {
      const TableCtx& ctx = ctxs[t];
      const auto next_table =
          t + 1 < ctxs.size() ? marshal_blocks[t + 1] : miss_block;
      w.select(marshal_blocks[t]);
      const auto zero = w.cnst(0);
      std::vector<std::uint16_t> hdr_regs;
      for (std::size_t i = 0; i < ctx.table->key_fields.size(); ++i) {
        const auto v = w.ldhdr(ctx.table->key_fields[i]);
        hdr_regs.push_back(v);
        w.store(ctx.keybuf, zero, v, static_cast<std::int64_t>(i * 8));
      }
      const auto len = w.cnst(ctx.table->key_fields.size() * 8);
      const auto khash = w.hash(ctx.keybuf, zero, len);

      std::vector<std::uint32_t> checks, hits;
      for (std::size_t e = 0; e < ctx.table->entries.size(); ++e) {
        checks.push_back(w.new_block());
        hits.push_back(w.new_block());
      }
      w.select(marshal_blocks[t]);
      w.br(checks.empty() ? next_table : checks[0]);

      const std::size_t entry_stride =
          entry_bytes_base + ctx.table->key_fields.size() * 8;
      for (std::size_t e = 0; e < ctx.table->entries.size(); ++e) {
        w.select(checks[e]);
        const auto base = w.cnst(e * entry_stride);
        const auto stored_hash = w.load(ctx.tbl_obj, base);
        auto matched = w.cmpeq(stored_hash, khash);
        for (std::size_t i = 0; i < ctx.table->key_fields.size(); ++i) {
          const auto kv = w.load(ctx.tbl_obj, base,
                                 static_cast<std::int64_t>(8 + i * 8));
          matched = w.and_(matched, w.cmpeq(kv, hdr_regs[i]));
        }
        w.br_if(matched, hits[e],
                e + 1 < checks.size() ? checks[e + 1] : next_table);

        w.select(hits[e]);
        const WorkloadId wid =
            static_cast<WorkloadId>(ctx.table->entries[e].key_values[0]);
        const auto fn_idx =
            program.function_index(ctx.table->entries[e].action_function);
        const auto rc = w.call(static_cast<std::uint32_t>(fn_idx));
        auto it = route_helpers.find(wid);
        if (it != route_helpers.end()) w.call(it->second);
        w.ret(rc);
      }
    }
    w.select(miss_block);
    w.ret_imm(kReturnToHost);  // send_pkt_to_host path
    program.dispatch_function = w.finish(program);

    // The naïve parser extracts every known header field.
    program.parsed_fields.clear();
    for (std::uint16_t f = 0; f < microc::kHdrFieldCount; ++f) {
      program.parsed_fields.push_back(static_cast<HeaderField>(f));
    }
  } else {
    // Reduced: one shared, metadata-parameterized route helper + a single
    // if-else chain over workload IDs.
    const bool any_routes =
        std::any_of(targets.begin(), targets.end(),
                    [](const LambdaTarget& t) { return t.routes != nullptr; });
    std::uint32_t shared_route = 0;
    if (any_routes) shared_route = emit_reduced_route_helper(program);

    FnWriter w(std::string(kGenPrefix) + "_dispatch");
    const auto wid_reg = w.ldhdr(microc::kHdrWorkloadId);
    std::vector<std::uint32_t> checks, hits;
    for (std::size_t i = 0; i < targets.size(); ++i) {
      checks.push_back(i == 0 ? 0u : w.new_block());
      hits.push_back(w.new_block());
    }
    const auto miss = w.new_block();
    for (std::size_t i = 0; i < targets.size(); ++i) {
      w.select(checks[i]);
      const auto eq = w.cmpeq_imm(wid_reg, targets[i].wid);
      w.br_if(eq, hits[i], i + 1 < targets.size() ? checks[i + 1] : miss);
      w.select(hits[i]);
      const auto rc = w.call(targets[i].fn_index);
      if (targets[i].routes != nullptr) w.call(shared_route);
      w.ret(rc);
    }
    w.select(miss);
    w.ret_imm(kReturnToHost);
    program.dispatch_function = w.finish(program);

    // Reduced parser: only fields some lambda reads, plus the workload ID
    // the match stage itself needs.
    program.parsed_fields = infer_used_fields(program);
    if (std::find(program.parsed_fields.begin(), program.parsed_fields.end(),
                  microc::kHdrWorkloadId) == program.parsed_fields.end()) {
      program.parsed_fields.push_back(microc::kHdrWorkloadId);
    }
  }

  program.lambda_entries.clear();
  for (const auto& target : targets) {
    program.lambda_entries.emplace_back(target.wid, target.fn_index);
  }
  return Status::ok_status();
}

}  // namespace lnic::p4
