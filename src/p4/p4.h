// Mini-P4: the match-stage description language of Match+Lambda.
//
// Users express the match stage as P4 tables (paper §4.1, Listing 3):
// each lambda contributes a match table keyed on header fields (the
// lambda ID inserted by the gateway) plus a route-management table. The
// workload manager lowers the combined spec into the Micro-C dispatch
// function (lower.h); the match-reduction pass (§5.1) merges tables and
// converts them to if-else sequences.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "microc/ir.h"

namespace lnic::p4 {

/// One entry of a match table: exact-match key values (parallel to the
/// table's key_fields) selecting a lambda function.
struct TableEntry {
  std::vector<std::uint64_t> key_values;
  std::string action_function;  // microc function name to invoke
};

/// An exact-match table, as declared in the P4 control block.
struct Table {
  std::string name;
  std::vector<microc::HeaderField> key_fields;
  std::vector<TableEntry> entries;
  /// True for route-management tables (one per lambda in the naïve
  /// program; merged into one by match reduction, §6.4).
  bool is_route_table = false;
};

/// The control-ingress block: an ordered list of tables. Packets that
/// match no entry fall through to the host OS path (Listing 3's
/// send_pkt_to_host), modelled as dispatch returning kReturnToHost.
struct MatchSpec {
  std::vector<Table> tables;

  /// Header fields referenced by any table key.
  std::vector<microc::HeaderField> referenced_fields() const;

  std::size_t total_entries() const;
};

/// Dispatch return codes shared with the machine model.
constexpr std::uint64_t kReturnForward = 0;   // RETURN_FORWARD in Listing 2
constexpr std::uint64_t kReturnToHost = 0xFFFF;  // no matching lambda

/// Builds the match table for one lambda: key = lambda header workload ID.
Table make_lambda_table(const std::string& lambda_name, WorkloadId id);

/// Builds the per-lambda route-management table (route metadata keyed on
/// the workload ID; the naïve compiler emits one per lambda).
Table make_route_table(const std::string& lambda_name, WorkloadId id);

}  // namespace lnic::p4
