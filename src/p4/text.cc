#include "p4/text.h"

#include <map>
#include <optional>
#include <set>

#include "microc/lexer.h"

namespace lnic::p4 {

namespace {

using microc::Token;
using microc::TokenKind;

std::optional<microc::HeaderField> field_by_name(const std::string& name) {
  static const std::map<std::string, microc::HeaderField> kFields = {
      {"workload_id", microc::kHdrWorkloadId},
      {"request_id", microc::kHdrRequestId},
      {"src_node", microc::kHdrSrcNode},
      {"op", microc::kHdrOp},
      {"key", microc::kHdrKey},
      {"value", microc::kHdrValue},
      {"body_len", microc::kHdrBodyLen},
      {"image_width", microc::kHdrImageWidth},
      {"image_height", microc::kHdrImageHeight},
  };
  const auto it = kFields.find(name);
  if (it == kFields.end()) return std::nullopt;
  return it->second;
}

class P4Parser {
 public:
  explicit P4Parser(const std::vector<Token>& tokens) : tokens_(tokens) {}

  Result<MatchSpec> run() {
    std::map<std::string, Table> tables;
    std::vector<std::string> apply_order;
    bool saw_control = false;

    while (!at_end()) {
      if (eat_ident("parser")) {
        if (Status st = parse_parser_block(); !st.ok()) return st.error();
      } else if (eat_ident("table")) {
        auto table = parse_table();
        if (!table.ok()) return table.error();
        const std::string name = table.value().name;
        if (tables.count(name)) return err("duplicate table '" + name + "'");
        tables.emplace(name, std::move(table).value());
      } else if (eat_ident("control")) {
        if (saw_control) return err("multiple control blocks");
        saw_control = true;
        auto order = parse_control();
        if (!order.ok()) return order.error();
        apply_order = std::move(order).value();
      } else {
        return err("expected 'parser', 'table' or 'control'");
      }
    }
    if (!saw_control) return err("missing control block");

    MatchSpec spec;
    std::set<std::string> applied;
    for (const auto& name : apply_order) {
      const auto it = tables.find(name);
      if (it == tables.end()) return err("apply of unknown table '" + name + "'");
      if (!applied.insert(name).second) {
        return err("table '" + name + "' applied twice");
      }
      spec.tables.push_back(it->second);
    }
    for (const auto& [name, table] : tables) {
      (void)table;
      if (!applied.count(name)) {
        return err("table '" + name + "' is never applied");
      }
    }
    return spec;
  }

 private:
  const Token& cur() const { return tokens_[pos_]; }
  bool at_end() const { return cur().kind == TokenKind::kEnd; }
  void advance() {
    if (!at_end()) ++pos_;
  }
  bool peek_ident(const std::string& text) const {
    return (cur().kind == TokenKind::kIdentifier ||
            cur().kind == TokenKind::kKeyword) &&
           cur().text == text;
  }
  bool eat_ident(const std::string& text) {
    if (!peek_ident(text)) return false;
    advance();
    return true;
  }
  bool eat_punct(const std::string& p) {
    if (cur().kind != TokenKind::kPunct || cur().text != p) return false;
    advance();
    return true;
  }
  bool eat_op(const std::string& op) {
    if (cur().kind != TokenKind::kOperator || cur().text != op) return false;
    advance();
    return true;
  }
  Error err(const std::string& what) const {
    return make_error("p4: " + what + " at line " + std::to_string(cur().line));
  }

  Status parse_parser_block() {
    if (!eat_punct("{")) return err("expected '{' after parser");
    while (!eat_punct("}")) {
      if (at_end()) return err("unterminated parser block");
      if (!eat_ident("extract")) return err("expected 'extract'");
      if (!eat_punct("(")) return err("expected '('");
      if (cur().kind != TokenKind::kIdentifier &&
          cur().kind != TokenKind::kKeyword) {
        return err("expected field name");
      }
      if (!field_by_name(cur().text).has_value()) {
        return err("unknown header field '" + cur().text + "'");
      }
      advance();
      if (!eat_punct(")")) return err("expected ')'");
      if (!eat_punct(";")) return err("expected ';'");
    }
    return Status::ok_status();
  }

  Result<Table> parse_table() {
    Table table;
    if (cur().kind != TokenKind::kIdentifier) {
      return Result<Table>(err("expected table name"));
    }
    table.name = cur().text;
    advance();
    if (eat_ident("route")) table.is_route_table = true;
    if (!eat_punct("{")) return Result<Table>(err("expected '{'"));

    // key = { field; field; ... }
    if (!eat_ident("key")) return Result<Table>(err("expected 'key'"));
    if (!eat_op("=")) return Result<Table>(err("expected '='"));
    if (!eat_punct("{")) return Result<Table>(err("expected '{' after key ="));
    while (!eat_punct("}")) {
      if (at_end()) return Result<Table>(err("unterminated key list"));
      if (cur().kind != TokenKind::kIdentifier &&
          cur().kind != TokenKind::kKeyword) {
        return Result<Table>(err("expected key field name"));
      }
      const auto field = field_by_name(cur().text);
      if (!field.has_value()) {
        return Result<Table>(err("unknown header field '" + cur().text + "'"));
      }
      table.key_fields.push_back(*field);
      advance();
      if (!eat_punct(";")) return Result<Table>(err("expected ';' after key field"));
    }
    if (table.key_fields.empty()) {
      return Result<Table>(err("table '" + table.name + "' has no key fields"));
    }

    // entry (v, v, ...) -> action;
    while (!eat_punct("}")) {
      if (at_end()) return Result<Table>(err("unterminated table body"));
      if (!eat_ident("entry")) return Result<Table>(err("expected 'entry'"));
      if (!eat_punct("(")) return Result<Table>(err("expected '('"));
      TableEntry entry;
      while (true) {
        if (cur().kind != TokenKind::kNumber) {
          return Result<Table>(err("expected key value"));
        }
        entry.key_values.push_back(cur().number);
        advance();
        if (!eat_punct(",")) break;
      }
      if (!eat_punct(")")) return Result<Table>(err("expected ')'"));
      if (entry.key_values.size() != table.key_fields.size()) {
        return Result<Table>(err("entry key arity mismatch in table '" +
                                 table.name + "'"));
      }
      // '->' lexes as two operator tokens.
      if (!eat_op("-")) return Result<Table>(err("expected '->'"));
      if (!eat_op(">")) return Result<Table>(err("expected '->'"));
      if (cur().kind != TokenKind::kIdentifier) {
        return Result<Table>(err("expected action function name"));
      }
      entry.action_function = cur().text;
      advance();
      if (!eat_punct(";")) return Result<Table>(err("expected ';' after entry"));
      table.entries.push_back(std::move(entry));
    }
    return table;
  }

  Result<std::vector<std::string>> parse_control() {
    if (!eat_ident("ingress")) {
      return Result<std::vector<std::string>>(err("expected 'ingress'"));
    }
    if (!eat_punct("{")) {
      return Result<std::vector<std::string>>(err("expected '{'"));
    }
    std::vector<std::string> order;
    while (!eat_punct("}")) {
      if (at_end()) {
        return Result<std::vector<std::string>>(err("unterminated control"));
      }
      if (!eat_ident("apply")) {
        return Result<std::vector<std::string>>(err("expected 'apply'"));
      }
      if (!eat_punct("(")) {
        return Result<std::vector<std::string>>(err("expected '('"));
      }
      if (cur().kind != TokenKind::kIdentifier) {
        return Result<std::vector<std::string>>(err("expected table name"));
      }
      order.push_back(cur().text);
      advance();
      if (!eat_punct(")")) {
        return Result<std::vector<std::string>>(err("expected ')'"));
      }
      if (!eat_punct(";")) {
        return Result<std::vector<std::string>>(err("expected ';'"));
      }
    }
    return order;
  }

  const std::vector<Token>& tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<MatchSpec> parse_p4(const std::string& source) {
  auto tokens = microc::lex(source);
  if (!tokens.ok()) return tokens.error();
  P4Parser parser(tokens.value());
  return parser.run();
}

}  // namespace lnic::p4
