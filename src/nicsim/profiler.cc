#include "nicsim/profiler.h"

#include <algorithm>
#include <sstream>

namespace lnic::nicsim {

void NpuProfiler::on_dispatch(std::uint32_t thread, WorkloadId workload,
                              SimTime now) {
  if (thread >= threads()) return;
  busy_since_[thread] = now;
  busy_workload_[thread] = workload;
  ++lambda_dispatches_[workload];
}

void NpuProfiler::on_release(std::uint32_t thread, SimTime now) {
  if (thread >= threads()) return;
  if (busy_since_[thread] < 0) return;  // spurious release
  const SimTime start = busy_since_[thread];
  const WorkloadId workload = busy_workload_[thread];
  busy_since_[thread] = -1;
  busy_workload_[thread] = kInvalidWorkload;
  thread_busy_[thread] += now - start;
  lambda_busy_[workload] += now - start;
  auto& ring = timelines_[thread];
  ring.push_back(Interval{start, now, workload});
  while (ring.size() > max_samples_) ring.pop_front();
}

void NpuProfiler::on_queue_depth(SimTime now, std::uint64_t depth) {
  peak_depth_ = std::max(peak_depth_, depth);
  depth_samples_.push_back(DepthSample{now, depth});
  while (depth_samples_.size() > max_samples_) depth_samples_.pop_front();
}

SimDuration NpuProfiler::thread_busy_ns(std::uint32_t thread,
                                        SimTime now) const {
  if (thread >= threads()) return 0;
  SimDuration busy = thread_busy_[thread];
  if (busy_since_[thread] >= 0) busy += now - busy_since_[thread];
  return busy;
}

SimDuration NpuProfiler::core_busy_ns(std::uint32_t core, SimTime now) const {
  SimDuration busy = 0;
  const std::uint32_t begin = core * threads_per_core_;
  const std::uint32_t end = std::min(begin + threads_per_core_, threads());
  for (std::uint32_t t = begin; t < end; ++t) busy += thread_busy_ns(t, now);
  return busy;
}

double NpuProfiler::grid_utilization(SimTime now) const {
  if (now <= 0 || threads() == 0) return 0.0;
  SimDuration busy = 0;
  for (std::uint32_t t = 0; t < threads(); ++t) busy += thread_busy_ns(t, now);
  return static_cast<double>(busy) /
         (static_cast<double>(now) * static_cast<double>(threads()));
}

SimDuration NpuProfiler::lambda_busy_ns(WorkloadId workload) const {
  const auto it = lambda_busy_.find(workload);
  return it == lambda_busy_.end() ? 0 : it->second;
}

std::uint64_t NpuProfiler::lambda_dispatches(WorkloadId workload) const {
  const auto it = lambda_dispatches_.find(workload);
  return it == lambda_dispatches_.end() ? 0 : it->second;
}

std::string NpuProfiler::text_report(SimTime now) const {
  std::ostringstream out;
  out << "npu grid: " << cores() << " cores x " << threads_per_core_
      << " threads, utilization "
      << static_cast<int>(grid_utilization(now) * 100.0 + 0.5) << "%\n";
  for (std::uint32_t c = 0; c < cores(); ++c) {
    const SimDuration busy = core_busy_ns(c, now);
    const double frac =
        now > 0 ? static_cast<double>(busy) /
                      (static_cast<double>(now) *
                       static_cast<double>(threads_per_core_))
                : 0.0;
    out << "  core " << c << ": busy " << busy << " ns ("
        << static_cast<int>(frac * 100.0 + 0.5) << "%)\n";
  }
  out << "  dispatch queue peak depth: " << peak_depth_ << "\n";
  for (const auto& [workload, busy] : lambda_busy_) {
    out << "  lambda " << workload << ": busy " << busy << " ns across "
        << lambda_dispatches(workload) << " dispatches\n";
  }
  return out.str();
}

}  // namespace lnic::nicsim
