// ASIC-based SmartNIC model (Netronome Agilio CX-like, §5, Fig. 4).
//
// The card is a grid of islands × cores × threads. Every core runs the
// same Match+Lambda firmware (§5: "we execute all three stages — parse,
// match, and lambdas — together inside a core"); requests are dispatched
// by a work-conserving scheduler to an idle thread (uniform at random in
// the shipped hardware; an optional WFQ mode models §4.2.1 D1's
// weighted-fair-queuing across workloads). A thread runs its lambda to
// completion — there is no preemption and no context switch, which is
// the architectural property behind the paper's tail-latency results.
//
// Service time per request = interpreted cycle count of the deployed
// firmware at the NPU cost model / core frequency. Multi-packet payloads
// arrive as RDMA writes straight into EMEM (D3); once the last fragment
// lands, the event triggers the lambda with the assembled body. External
// KV calls suspend the machine while the thread stays occupied
// (run-to-completion), resuming when the reply packet returns.
//
// Firmware (re)deployment models the §7 limitation: no hot swapping —
// the NIC drops requests during the load window. `allow_hot_swap`
// enables the paper's anticipated hitless-update behaviour for ablation.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/trace.h"
#include "common/types.h"
#include "compiler/pipeline.h"
#include "microc/interp.h"
#include "net/network.h"
#include "net/packet.h"
#include "nicsim/profiler.h"
#include "sim/simulator.h"

namespace lnic::nicsim {

enum class DispatchPolicy : std::uint8_t {
  kUniformRandom,  // the shipped Netronome scheduler (§5)
  kWfq,            // weighted fair queuing across workloads (D1)
};

struct NicConfig {
  std::uint32_t islands = 7;
  std::uint32_t cores_per_island = 8;   // 56 cores total (§6.1.2)
  std::uint32_t threads_per_core = 8;   // 448 hardware threads
  std::uint64_t instr_store_words = 16384;  // 16 K instructions per core
  Bytes emem_bytes = 2048_MiB;          // 2 GiB on-board RAM
  /// Basic-NIC-operation reserve: cores kept for TCP/IP offload and
  /// checksums (§3.1c). These threads never run lambdas.
  std::uint32_t reserved_cores = 2;
  DispatchPolicy dispatch = DispatchPolicy::kUniformRandom;
  /// Firmware load window during which the NIC is down (§7).
  SimDuration firmware_load_time = seconds(15);
  bool allow_hot_swap = false;  // §7 future-work ablation
  /// §5 footnote 4: "the other approach is to pipeline these stages and
  /// run them on separate cores". When enabled, `parse_match_cores` are
  /// carved out to run the parse+match stage; lambdas run only their own
  /// body cycles on the remaining threads.
  bool pipeline_stages = false;
  std::uint32_t parse_match_cores = 2;
  std::size_t max_queue_depth = 8192;
  /// Service-time variability: shared-memory (CTM/EMEM) arbitration
  /// jitter plus rare DMA-contention spikes. Far smaller than host-side
  /// noise — the source of λ-NIC's tight tails.
  double jitter_fraction = 0.05;
  double hiccup_probability = 0.01;
  SimDuration hiccup_max = microseconds(25);
  std::uint64_t seed = 0x5EED;

  std::uint32_t total_cores() const { return islands * cores_per_island; }
  std::uint32_t lambda_threads() const {
    const std::uint32_t taken =
        reserved_cores + (pipeline_stages ? parse_match_cores : 0);
    return (total_cores() - taken) * threads_per_core;
  }
  std::uint32_t parse_threads() const {
    return parse_match_cores * threads_per_core;
  }
};

/// DRR weight table for the kWfq dispatch policy, keyed by scheduling
/// class: a workload's tenant when one is assigned (set_tenant /
/// LambdaHeader::tenant_id), otherwise the workload id itself — so
/// legacy per-workload weight tables keep their exact meaning. Classes
/// absent from the table default to weight 1.
using TenantWeights = std::map<std::uint32_t, std::uint32_t>;

/// Per-tenant resource quota enforced at deploy/hot-swap time (SuperNIC:
/// safe sharing of a SmartNIC's compute and memory across tenants). A
/// zero field means unlimited; the whole-card limits still apply.
struct TenantQuota {
  std::uint64_t instr_store_words = 0;  // per-core instruction-store slots
  Bytes ctm_bytes = 0;                  // per-island Cluster Target Memory
  Bytes imem_bytes = 0;                 // shared on-chip IMEM
  Bytes emem_bytes = 0;                 // external DRAM
};

/// What one tenant's lambdas actually occupy on the deployed firmware:
/// lowered instruction words and per-region object bytes of every
/// function reachable from the tenant's lambda entries. Shared helpers
/// are charged to every tenant that reaches them (conservative).
struct TenantUsage {
  std::uint64_t instr_words = 0;
  Bytes region_bytes[4] = {0, 0, 0, 0};  // indexed by microc::MemRegion
};

struct NicStats {
  std::uint64_t requests_completed = 0;
  std::uint64_t requests_dropped_down = 0;    // arrived during firmware load
  std::uint64_t requests_dropped_queue = 0;   // queue overflow
  std::uint64_t requests_dropped_undeploy = 0;  // queued at tenant undeploy
  std::uint64_t requests_to_host = 0;         // no matching lambda
  std::uint64_t traps = 0;
  Bytes peak_inflight_bytes = 0;              // RDMA staging high-water mark
  Sampler service_cycles;                     // per-request NPU cycles
  Sampler queue_wait_ns;                      // dispatch queue delay
  /// Completions per scheduling class (tenant id, or workload id for
  /// tenant-less traffic). Only populated under the kWfq policy.
  std::map<std::uint32_t, std::uint64_t> completed_by_class;
};

class SmartNic {
 public:
  SmartNic(sim::Simulator& sim, net::Network& network, NicConfig config = {});
  ~SmartNic();  // out of line: Flight is incomplete here

  /// This NIC's address on the fabric.
  NodeId node() const { return node_; }

  /// Loads compiled firmware. Fails if the binary exceeds the per-core
  /// instruction store or any assigned tenant's quota; a rejected deploy
  /// (including a rejected hot swap) leaves the previously running
  /// firmware untouched and serving. Unless hot swap is enabled the NIC
  /// is down for config.firmware_load_time, and global lambda state
  /// resets.
  Status deploy(compiler::CompileOutput firmware);

  bool deployed() const { return program_.has_value(); }
  bool down() const;

  /// Node to which kExtCall KV traffic is sent (the memcached server).
  void set_kv_server(NodeId node) { kv_server_ = node; }
  /// Installs the DRR weight table (see TenantWeights for the key space).
  void set_drr_weights(TenantWeights weights) { weights_ = std::move(weights); }

  /// Assigns a workload to a tenant namespace. Takes effect for quota
  /// accounting at the next deploy and for scheduling immediately;
  /// requests whose lambda header carries an explicit tenant_id override
  /// this mapping.
  void set_tenant(WorkloadId workload, TenantId tenant);
  /// The tenant a workload is assigned to (kDefaultTenant if none).
  TenantId tenant_of(WorkloadId workload) const;
  /// Installs (or, with a default-constructed quota, clears) a tenant's
  /// resource quota. Enforced on every subsequent deploy.
  void set_tenant_quota(TenantId tenant, TenantQuota quota);

  /// Removes a tenant from the card: drops its queued requests (counted
  /// in requests_dropped_undeploy), erases its DRR queue/deficit/weight
  /// entries so the scheduler scan set doesn't grow without bound, and
  /// forgets its workload assignments, quota and usage. In-flight
  /// requests already on a thread run to completion.
  void undeploy_tenant(TenantId tenant);

  /// Deployed footprint of an assigned tenant (nullptr if the current
  /// firmware carries no lambda of that tenant).
  const TenantUsage* tenant_usage(TenantId tenant) const;
  /// All per-tenant footprints of the currently deployed firmware.
  const std::map<TenantId, TenantUsage>& tenant_usages() const {
    return tenant_usage_;
  }
  /// All installed per-tenant quotas.
  const std::map<TenantId, TenantQuota>& tenant_quotas() const {
    return tenant_quotas_;
  }
  /// Number of scheduling classes the DRR scanner currently tracks.
  std::size_t drr_class_count() const { return wfq_queues_.size(); }

  const NicConfig& config() const { return config_; }
  const NicStats& stats() const { return stats_; }
  /// NIC memory in use: firmware + global objects + staged RDMA bodies.
  Bytes memory_in_use() const;
  Bytes firmware_bytes() const { return firmware_bytes_; }
  std::uint32_t busy_threads() const { return busy_threads_; }
  std::size_t queue_depth() const { return queued_; }
  /// Instruction-store words consumed by the deployed firmware (per
  /// core; every core runs the same image).
  std::uint64_t instr_words_used() const { return instr_words_used_; }
  /// Lambda state resident in one region of the memory hierarchy
  /// (Fig. 4): declared objects placed there by stratification, plus —
  /// for EMEM — staged RDMA bodies in flight.
  Bytes region_bytes_used(microc::MemRegion region) const;

  /// Attaches (nullptr detaches) the span recorder. Packets whose lambda
  /// header carries a trace id get nic.reassemble / nic.parse /
  /// nic.queue / nic.execute / nic.kv_wait spans. Recording is pure
  /// bookkeeping: timing, dispatch order and RNG draws are unchanged.
  void set_tracer(trace::TraceRecorder* tracer) { tracer_ = tracer; }

  /// Turns on the NPU-grid profiler (per-thread busy timelines, queue
  /// depth samples, per-lambda attribution). Off by default; enabling it
  /// assigns deterministic lowest-free thread slots for attribution but
  /// never alters simulated timing.
  void enable_profiler(std::size_t max_samples = 4096);
  const NpuProfiler* profiler() const { return profiler_.get(); }

 private:
  struct Flight;  // one in-flight request occupying a thread

  void handle_packet(const net::Packet& packet);
  void handle_request(const net::Packet& packet, net::BufferView body);
  void handle_rdma_fragment(const net::Packet& packet);
  void handle_kv_response(const net::Packet& packet);
  void enter_parse_stage(std::unique_ptr<Flight> flight);
  void release_parse_thread();
  void enqueue(std::unique_ptr<Flight> flight);
  /// DRR scheduling class of a request: explicit header tenant, else the
  /// workload's assigned tenant, else the workload id itself.
  std::uint32_t sched_class_of(const net::LambdaHeader& header) const;
  /// Per-tenant footprint of a program (lowered words + region bytes of
  /// every function reachable from each tenant's lambda entries).
  std::map<TenantId, TenantUsage> compute_tenant_usage(
      const microc::Program& program) const;
  void try_dispatch();
  std::unique_ptr<Flight> pop_next();     // honours the dispatch policy
  void start_execution(std::unique_ptr<Flight> flight);
  void continue_flight(std::unique_ptr<Flight> flight,
                       microc::Outcome outcome);
  void finish_flight(std::unique_ptr<Flight> flight, microc::Outcome outcome);
  void release_thread();

  sim::Simulator& sim_;
  net::Network& network_;
  NicConfig config_;
  NodeId node_;
  NodeId kv_server_ = kInvalidNode;
  Rng rng_;

  std::optional<microc::Program> program_;
  microc::ObjectStore globals_;
  Bytes firmware_bytes_ = 0;
  std::uint64_t instr_words_used_ = 0;
  SimTime down_until_ = 0;

  std::uint32_t busy_threads_ = 0;
  // Pipelined mode: dedicated parse+match stage ahead of the lambda pool.
  std::uint32_t busy_parse_threads_ = 0;
  std::deque<std::unique_ptr<Flight>> parse_queue_;
  std::uint64_t parse_match_cycles_ = 0;  // static estimate, set at deploy
  // Dispatch queues: single FIFO for uniform mode; per-scheduling-class
  // (tenant, or workload when tenant-less) for the DRR policy.
  std::deque<std::unique_ptr<Flight>> fifo_;
  std::map<std::uint32_t, std::deque<std::unique_ptr<Flight>>> wfq_queues_;
  std::map<std::uint32_t, std::int64_t> wfq_deficit_;
  TenantWeights weights_;
  std::size_t queued_ = 0;

  // Tenancy: workload -> tenant assignments, per-tenant quotas, and the
  // per-tenant footprint of the currently deployed firmware.
  std::map<WorkloadId, TenantId> workload_tenants_;
  std::map<TenantId, TenantQuota> tenant_quotas_;
  std::map<TenantId, TenantUsage> tenant_usage_;

  // RDMA reassembly: (src, request id) -> fragment views received. The
  // fragments land "in EMEM" by reference; reassembly coalesces them
  // into a spanning view without copying.
  struct Reassembly {
    std::vector<net::BufferView> frags;
    std::uint32_t received = 0;
    net::Packet first;  // header template
    trace::SpanId span = trace::kInvalidSpan;  // nic.reassemble
  };
  std::map<std::pair<NodeId, RequestId>, Reassembly> reassembly_;
  Bytes inflight_bytes_ = 0;

  // Suspended flights waiting for a KV reply, keyed by ext-call token.
  std::map<RequestId, std::unique_ptr<Flight>> waiting_kv_;
  RequestId next_token_ = 1;

  trace::TraceRecorder* tracer_ = nullptr;
  std::unique_ptr<NpuProfiler> profiler_;
  // Thread-slot occupancy for profiler attribution (lowest free slot;
  // only maintained while the profiler is enabled).
  std::vector<bool> slot_busy_;

  NicStats stats_;
};

}  // namespace lnic::nicsim
