#include "nicsim/nic.h"

#include <cassert>
#include <utility>

#include "common/flightrec.h"
#include "common/logging.h"
#include "proto/invocation.h"

namespace lnic::nicsim {

using microc::Outcome;
using microc::RunState;
using net::Packet;
using net::PacketKind;

/// One request in flight on an NPU thread (or waiting in the dispatch
/// queue). Owns the invocation (the Machine keeps a pointer into it) and
/// the suspended Machine across external-call round trips.
struct SmartNic::Flight {
  net::LambdaHeader lambda;
  std::uint32_t sched_class = 0;  // DRR class (tenant or workload id)
  NodeId reply_to = kInvalidNode;
  microc::Invocation invocation;
  std::unique_ptr<microc::Machine> machine;
  SimTime arrived = 0;
  SimTime dispatched = 0;
  std::uint64_t cycles_reported = 0;  // cycles accounted so far
  Bytes staged_bytes = 0;             // EMEM staging held until completion
  // Tracing/profiling bookkeeping (inert unless a tracer/profiler is on).
  trace::SpanContext ctx;
  trace::SpanId parse_span = trace::kInvalidSpan;
  trace::SpanId queue_span = trace::kInvalidSpan;
  trace::SpanId exec_span = trace::kInvalidSpan;
  trace::SpanId kv_span = trace::kInvalidSpan;
  std::int32_t thread_slot = -1;
};

SmartNic::~SmartNic() = default;

SmartNic::SmartNic(sim::Simulator& sim, net::Network& network,
                   NicConfig config)
    : sim_(sim), network_(network), config_(config), rng_(config.seed) {
  node_ = network_.attach([this](const Packet& p) { handle_packet(p); },
                          &sim_);
}

bool SmartNic::down() const { return sim_.now() < down_until_; }

void SmartNic::enable_profiler(std::size_t max_samples) {
  profiler_ = std::make_unique<NpuProfiler>(
      config_.lambda_threads(), config_.threads_per_core, max_samples);
  slot_busy_.assign(config_.lambda_threads(), false);
}

std::uint32_t SmartNic::sched_class_of(const net::LambdaHeader& header) const {
  if (header.tenant_id != kDefaultTenant) return header.tenant_id;
  const auto it = workload_tenants_.find(header.workload_id);
  if (it != workload_tenants_.end()) return it->second;
  return header.workload_id;
}

void SmartNic::set_tenant(WorkloadId workload, TenantId tenant) {
  if (tenant == kDefaultTenant) {
    workload_tenants_.erase(workload);
  } else {
    workload_tenants_[workload] = tenant;
  }
}

TenantId SmartNic::tenant_of(WorkloadId workload) const {
  const auto it = workload_tenants_.find(workload);
  return it == workload_tenants_.end() ? kDefaultTenant : it->second;
}

void SmartNic::set_tenant_quota(TenantId tenant, TenantQuota quota) {
  tenant_quotas_[tenant] = quota;
}

const TenantUsage* SmartNic::tenant_usage(TenantId tenant) const {
  const auto it = tenant_usage_.find(tenant);
  return it == tenant_usage_.end() ? nullptr : &it->second;
}

void SmartNic::undeploy_tenant(TenantId tenant) {
  const auto queue = wfq_queues_.find(tenant);
  if (queue != wfq_queues_.end()) {
    if (!queue->second.empty()) {
      flightrec::FlightRecorder::global().record(
          sim_.now(), flightrec::Kind::kUndeployDrop, tenant,
          queue->second.size(),
          "tenant " + std::to_string(tenant) + " undeployed with " +
              std::to_string(queue->second.size()) + " queued request(s)");
    }
    for (auto& flight : queue->second) {
      ++stats_.requests_dropped_undeploy;
      inflight_bytes_ -= flight->staged_bytes;
      --queued_;
    }
    wfq_queues_.erase(queue);
  }
  wfq_deficit_.erase(tenant);
  weights_.erase(tenant);
  for (auto it = workload_tenants_.begin(); it != workload_tenants_.end();) {
    if (it->second == tenant) {
      it = workload_tenants_.erase(it);
    } else {
      ++it;
    }
  }
  tenant_quotas_.erase(tenant);
  tenant_usage_.erase(tenant);
}

std::map<TenantId, TenantUsage> SmartNic::compute_tenant_usage(
    const microc::Program& program) const {
  std::map<TenantId, TenantUsage> usage;
  for (const auto& [wid, entry_fn] : program.lambda_entries) {
    const auto assigned = workload_tenants_.find(wid);
    if (assigned == workload_tenants_.end()) continue;  // tenant-less lambda
    TenantUsage& u = usage[assigned->second];
    // Depth-first closure over kCall edges from the lambda's entry; each
    // reachable function and every object it references is charged to
    // the tenant (helpers shared across tenants are double-charged — the
    // conservative reading of a per-tenant store budget).
    std::vector<bool> seen_fn(program.functions.size(), false);
    std::vector<bool> seen_obj(program.objects.size(), false);
    std::vector<std::uint32_t> stack = {entry_fn};
    while (!stack.empty()) {
      const std::uint32_t fn = stack.back();
      stack.pop_back();
      if (fn >= program.functions.size() || seen_fn[fn]) continue;
      seen_fn[fn] = true;
      for (const auto& block : program.functions[fn].blocks) {
        for (const auto& in : block.instrs) {
          u.instr_words += microc::lowered_size(in, program);
          if (in.op == microc::Opcode::kCall) {
            stack.push_back(static_cast<std::uint32_t>(in.imm));
          }
          const bool touches_obj =
              microc::is_memory_op(in.op) ||
              in.op == microc::Opcode::kRespMem ||
              in.op == microc::Opcode::kMemCpy ||
              in.op == microc::Opcode::kGrayscale ||
              in.op == microc::Opcode::kHash ||
              in.op == microc::Opcode::kBodyCopy;
          if (!touches_obj) continue;
          const auto charge = [&](std::uint16_t obj) {
            if (obj >= program.objects.size() || seen_obj[obj]) return;
            seen_obj[obj] = true;
            const auto& object = program.objects[obj];
            u.region_bytes[static_cast<int>(object.region)] += object.size;
          };
          charge(in.obj);
          // obj2 only carries an operand for the two-object copy ops.
          if (in.op == microc::Opcode::kMemCpy ||
              in.op == microc::Opcode::kGrayscale) {
            charge(in.obj2);
          }
        }
      }
    }
  }
  return usage;
}

Status SmartNic::deploy(compiler::CompileOutput firmware) {
  if (firmware.final_words() > config_.instr_store_words) {
    return make_error("deploy: firmware exceeds instruction store");
  }
  // Quota admission runs before any state changes: a rejected deploy —
  // first-time or hot swap — must leave the running firmware serving.
  auto usage = compute_tenant_usage(firmware.program);
  for (const auto& [tenant, u] : usage) {
    const auto q = tenant_quotas_.find(tenant);
    if (q == tenant_quotas_.end()) continue;
    const TenantQuota& quota = q->second;
    if (quota.instr_store_words > 0 &&
        u.instr_words > quota.instr_store_words) {
      flightrec::FlightRecorder::global().record(
          sim_.now(), flightrec::Kind::kQuotaReject, tenant, u.instr_words,
          "tenant " + std::to_string(tenant) +
              " over instruction-store quota");
      return make_error("deploy: tenant " + std::to_string(tenant) +
                        " exceeds instruction-store quota");
    }
    const Bytes limits[4] = {0, quota.ctm_bytes, quota.imem_bytes,
                             quota.emem_bytes};
    for (int region = 1; region < 4; ++region) {
      if (limits[region] > 0 && u.region_bytes[region] > limits[region]) {
        flightrec::FlightRecorder::global().record(
            sim_.now(), flightrec::Kind::kQuotaReject, tenant,
            u.region_bytes[region],
            "tenant " + std::to_string(tenant) + " over " +
                std::string(microc::to_string(
                    static_cast<microc::MemRegion>(region))) +
                " quota");
        return make_error(
            "deploy: tenant " + std::to_string(tenant) + " exceeds " +
            microc::to_string(static_cast<microc::MemRegion>(region)) +
            " quota");
      }
    }
  }
  tenant_usage_ = std::move(usage);
  instr_words_used_ = firmware.final_words();
  program_ = std::move(firmware.program);
  globals_.reset(*program_);
  // Static parse+match cycle estimate for the pipelined mode (§5
  // footnote 4): the parser's field extractions plus the dispatch
  // function's instruction and memory costs.
  {
    const microc::CostModel npu = microc::CostModel::npu();
    std::uint64_t cycles =
        npu.hdr_cycles * program_->parsed_fields.size();
    const auto& dispatch = program_->functions[program_->dispatch_function];
    for (const auto& block : dispatch.blocks) {
      for (const auto& in : block.instrs) {
        cycles += npu.alu_cycles;
        if (microc::is_memory_op(in.op)) {
          cycles += npu.region_read[static_cast<int>(
              program_->objects[in.obj].region)];
        }
      }
    }
    // A hit scans roughly half the match chain on average.
    parse_match_cycles_ = cycles / 2;
  }
  // Firmware artifact: lowered words (NFP instruction words are 8 B) plus
  // data-section bytes for initialized objects.
  firmware_bytes_ = firmware.stages.back().code_words * 8;
  for (const auto& obj : program_->objects) {
    firmware_bytes_ += obj.initial_data.size();
  }
  if (!config_.allow_hot_swap) {
    // §7: current NICs cannot hot swap; the card is down while loading.
    down_until_ = sim_.now() + config_.firmware_load_time;
  }
  return Status::ok_status();
}

Bytes SmartNic::memory_in_use() const {
  return firmware_bytes_ + globals_.total_bytes() + inflight_bytes_;
}

Bytes SmartNic::region_bytes_used(microc::MemRegion region) const {
  Bytes bytes = 0;
  if (program_) bytes += microc::region_bytes(*program_, region);
  if (region == microc::MemRegion::kEmem) bytes += inflight_bytes_;
  return bytes;
}

void SmartNic::handle_packet(const Packet& packet) {
  switch (packet.kind) {
    case PacketKind::kRequest:
      if (packet.lambda.frag_count > 1) {
        handle_rdma_fragment(packet);
      } else {
        handle_request(packet, packet.payload);
      }
      break;
    case PacketKind::kRdmaWrite:
      handle_rdma_fragment(packet);
      break;
    case PacketKind::kKvResponse:
      handle_kv_response(packet);
      break;
    default:
      break;  // responses/control are not addressed to the NIC data path
  }
}

void SmartNic::handle_request(const Packet& packet, net::BufferView body) {
  if (!program_ || down()) {
    ++stats_.requests_dropped_down;
    return;
  }
  auto flight = std::make_unique<Flight>();
  flight->lambda = packet.lambda;
  flight->reply_to = packet.src;
  flight->arrived = sim_.now();
  if (tracer_ != nullptr && packet.lambda.trace_id != trace::kInvalidTrace) {
    flight->ctx.trace = packet.lambda.trace_id;
    flight->ctx.parent = packet.lambda.parent_span;
  }
  // Multi-packet bodies were already staged into EMEM fragment by
  // fragment (handle_rdma_fragment); the flight now owns those bytes and
  // releases them at completion.
  flight->staged_bytes = body.size() > net::kMaxPayload ? body.size() : 0;

  flight->invocation =
      proto::build_invocation(packet.lambda, packet.src, std::move(body));

  if (config_.pipeline_stages) {
    enter_parse_stage(std::move(flight));
  } else {
    enqueue(std::move(flight));
  }
}

void SmartNic::enter_parse_stage(std::unique_ptr<Flight> flight) {
  if (busy_parse_threads_ >= config_.parse_threads()) {
    if (parse_queue_.size() >= config_.max_queue_depth) {
      ++stats_.requests_dropped_queue;
      inflight_bytes_ -= flight->staged_bytes;
      return;
    }
    parse_queue_.push_back(std::move(flight));
    return;
  }
  ++busy_parse_threads_;
  if (tracer_ != nullptr && flight->ctx.valid()) {
    flight->parse_span = tracer_->start_span(
        flight->ctx.trace, flight->ctx.parent, "nic.parse", sim_.now());
  }
  const SimDuration service =
      microc::CostModel::npu().cycles_to_duration(parse_match_cycles_);
  Flight* raw = flight.release();
  sim_.schedule(service, [this, raw]() {
    if (raw->parse_span != trace::kInvalidSpan) {
      tracer_->end_span(raw->parse_span, sim_.now());
    }
    enqueue(std::unique_ptr<Flight>(raw));
    release_parse_thread();
  });
}

void SmartNic::release_parse_thread() {
  --busy_parse_threads_;
  if (!parse_queue_.empty()) {
    auto next = std::move(parse_queue_.front());
    parse_queue_.pop_front();
    enter_parse_stage(std::move(next));
  }
}

void SmartNic::handle_rdma_fragment(const Packet& packet) {
  if (!program_ || down()) {
    ++stats_.requests_dropped_down;
    return;
  }
  const auto key = std::make_pair(packet.src, packet.lambda.request_id);
  Reassembly& re = reassembly_[key];
  if (re.frags.empty()) {
    re.frags.resize(packet.lambda.frag_count);
    re.first = packet;
    if (tracer_ != nullptr &&
        packet.lambda.trace_id != trace::kInvalidTrace) {
      re.span = tracer_->start_span(packet.lambda.trace_id,
                                    packet.lambda.parent_span,
                                    "nic.reassemble", sim_.now());
      tracer_->annotate(re.span, "fragments",
                        std::to_string(packet.lambda.frag_count));
    }
  }
  if (packet.lambda.frag_index >= re.frags.size()) return;  // corrupt
  if (re.frags[packet.lambda.frag_index].empty()) {
    // The RDMA write lands this fragment directly in EMEM (D3).
    inflight_bytes_ += packet.payload.size();
    stats_.peak_inflight_bytes =
        std::max(stats_.peak_inflight_bytes, inflight_bytes_);
    re.frags[packet.lambda.frag_index] = packet.payload;
    ++re.received;
  }
  if (re.received < re.frags.size()) return;

  // Last fragment landed: reorder/assemble in EMEM and fire the event
  // RPC that triggers the lambda (D3). The fragments are contiguous
  // slices of the sender's buffer, so this coalesces without copying.
  net::BufferView body = coalesce(re.frags);
  Packet trigger = re.first;
  if (re.span != trace::kInvalidSpan) {
    tracer_->end_span(re.span, sim_.now());
  }
  reassembly_.erase(key);
  handle_request(trigger, std::move(body));
}

void SmartNic::enqueue(std::unique_ptr<Flight> flight) {
  if (queued_ >= config_.max_queue_depth) {
    ++stats_.requests_dropped_queue;
    inflight_bytes_ -= flight->staged_bytes;
    flightrec::FlightRecorder::global().record(
        sim_.now(), flightrec::Kind::kQueueDrop,
        sched_class_of(flight->lambda), queued_,
        "dispatch queue full, workload " +
            std::to_string(flight->lambda.workload_id));
    return;
  }
  if (tracer_ != nullptr && flight->ctx.valid()) {
    flight->queue_span = tracer_->start_span(
        flight->ctx.trace, flight->ctx.parent, "nic.queue", sim_.now());
    const TenantId tenant = flight->lambda.tenant_id != kDefaultTenant
                                ? flight->lambda.tenant_id
                                : tenant_of(flight->lambda.workload_id);
    if (tenant != kDefaultTenant) {
      tracer_->annotate(flight->queue_span, "tenant", std::to_string(tenant));
    }
  }
  if (config_.dispatch == DispatchPolicy::kWfq) {
    flight->sched_class = sched_class_of(flight->lambda);
    wfq_queues_[flight->sched_class].push_back(std::move(flight));
  } else {
    fifo_.push_back(std::move(flight));
  }
  ++queued_;
  if (profiler_) profiler_->on_queue_depth(sim_.now(), queued_);
  try_dispatch();
}

std::unique_ptr<SmartNic::Flight> SmartNic::pop_next() {
  if (config_.dispatch != DispatchPolicy::kWfq) {
    if (fifo_.empty()) return nullptr;
    auto flight = std::move(fifo_.front());
    fifo_.pop_front();
    --queued_;
    return flight;
  }
  // Deficit round robin across per-class (tenant, or tenant-less
  // workload) queues: each pass grants every backlogged class credit
  // proportional to its weight.
  for (int pass = 0; pass < 2; ++pass) {
    for (auto& [cls, queue] : wfq_queues_) {
      if (queue.empty()) continue;
      auto& deficit = wfq_deficit_[cls];
      if (deficit >= 1) {
        deficit -= 1;
        auto flight = std::move(queue.front());
        queue.pop_front();
        --queued_;
        // Textbook DRR: a class that drains its queue forfeits unused
        // credit. Carrying it over would let a returning class burst
        // ahead of peers that stayed backlogged the whole time.
        if (queue.empty()) deficit = 0;
        return flight;
      }
    }
    // No class had credit: top everything up and retry once.
    bool any = false;
    for (auto& [cls, queue] : wfq_queues_) {
      if (queue.empty()) continue;
      any = true;
      const auto it = weights_.find(cls);
      wfq_deficit_[cls] += it == weights_.end() ? 1 : it->second;
    }
    if (!any) return nullptr;
  }
  return nullptr;
}

void SmartNic::try_dispatch() {
  while (busy_threads_ < config_.lambda_threads() && queued_ > 0) {
    auto flight = pop_next();
    if (!flight) return;
    ++busy_threads_;
    flight->dispatched = sim_.now();
    stats_.queue_wait_ns.add(
        static_cast<double>(flight->dispatched - flight->arrived));
    if (flight->queue_span != trace::kInvalidSpan) {
      tracer_->end_span(flight->queue_span, sim_.now());
      flight->queue_span = trace::kInvalidSpan;
    }
    if (profiler_) {
      // Attribution only: pick the lowest free thread slot. The real
      // scheduler is anonymous (a busy counter), so this adds naming
      // without touching dispatch order or timing.
      for (std::size_t s = 0; s < slot_busy_.size(); ++s) {
        if (!slot_busy_[s]) {
          slot_busy_[s] = true;
          flight->thread_slot = static_cast<std::int32_t>(s);
          break;
        }
      }
      if (flight->thread_slot >= 0) {
        profiler_->on_dispatch(static_cast<std::uint32_t>(flight->thread_slot),
                               flight->lambda.workload_id, sim_.now());
      }
      profiler_->on_queue_depth(sim_.now(), queued_);
    }
    start_execution(std::move(flight));
  }
}

void SmartNic::start_execution(std::unique_ptr<Flight> flight) {
  if (tracer_ != nullptr && flight->ctx.valid()) {
    flight->exec_span = tracer_->start_span(
        flight->ctx.trace, flight->ctx.parent, "nic.execute", sim_.now());
    tracer_->annotate(flight->exec_span, "workload",
                      std::to_string(flight->lambda.workload_id));
    const TenantId tenant = flight->lambda.tenant_id != kDefaultTenant
                                ? flight->lambda.tenant_id
                                : tenant_of(flight->lambda.workload_id);
    if (tenant != kDefaultTenant) {
      tracer_->annotate(flight->exec_span, "tenant", std::to_string(tenant));
    }
  }
  flight->machine = std::make_unique<microc::Machine>(
      *program_, microc::CostModel::npu(), &globals_);
  Outcome outcome = flight->machine->run(flight->invocation);
  continue_flight(std::move(flight), std::move(outcome));
}

void SmartNic::continue_flight(std::unique_ptr<Flight> flight,
                               Outcome outcome) {
  std::uint64_t delta = outcome.cycles - flight->cycles_reported;
  // Pipelined mode already charged the parse+match share up front.
  if (config_.pipeline_stages && flight->cycles_reported == 0) {
    delta -= std::min(delta, parse_match_cycles_);
  }
  flight->cycles_reported = outcome.cycles;
  SimDuration service = microc::CostModel::npu().cycles_to_duration(delta);
  // Shared-memory arbitration jitter + rare DMA-contention spikes.
  if (config_.jitter_fraction > 0.0) {
    service = static_cast<SimDuration>(
        static_cast<double>(service) *
        (1.0 + rng_.next_double() * config_.jitter_fraction));
  }
  if (config_.hiccup_probability > 0.0 &&
      rng_.next_bool(config_.hiccup_probability)) {
    service += static_cast<SimDuration>(rng_.next_below(
        static_cast<std::uint64_t>(std::max<SimDuration>(config_.hiccup_max, 1))));
  }

  if (outcome.state == RunState::kYield) {
    // The thread blocks (run to completion) while the KV RPC is in
    // flight; send the request after the compute burst that produced it.
    const RequestId token = next_token_++;
    const microc::ExtRequest ext = outcome.ext;
    Flight* raw = flight.get();
    waiting_kv_.emplace(token, std::move(flight));
    sim_.schedule(service, [this, token, ext, raw]() {
      if (tracer_ != nullptr && raw->ctx.valid()) {
        raw->kv_span = tracer_->start_span(raw->ctx.trace, raw->exec_span,
                                           "nic.kv_wait", sim_.now());
      }
      Packet kv;
      kv.src = node_;
      kv.dst = kv_server_;
      kv.kind = PacketKind::kKvRequest;
      kv.lambda.request_id = token;
      kv.lambda.workload_id =
          static_cast<WorkloadId>(ext.kind);  // 0 = GET, 1 = SET
      std::vector<std::uint8_t> kv_body(16);
      for (int i = 0; i < 8; ++i) {
        kv_body[i] = static_cast<std::uint8_t>(ext.key >> (8 * i));
        kv_body[8 + i] = static_cast<std::uint8_t>(ext.value >> (8 * i));
      }
      kv.payload = std::move(kv_body);
      network_.send(std::move(kv));
    });
    return;
  }

  // Done or trapped: hold the thread for the compute burst, then reply.
  auto* raw = flight.release();
  sim_.schedule(service, [this, raw, outcome = std::move(outcome)]() mutable {
    finish_flight(std::unique_ptr<Flight>(raw), std::move(outcome));
  });
}

void SmartNic::handle_kv_response(const Packet& packet) {
  const auto it = waiting_kv_.find(packet.lambda.request_id);
  if (it == waiting_kv_.end()) return;  // late duplicate
  auto flight = std::move(it->second);
  waiting_kv_.erase(it);
  if (flight->kv_span != trace::kInvalidSpan) {
    tracer_->end_span(flight->kv_span, sim_.now());
    flight->kv_span = trace::kInvalidSpan;
  }
  std::uint64_t reply = 0;
  for (std::size_t i = 0; i < 8 && i < packet.payload.size(); ++i) {
    reply |= static_cast<std::uint64_t>(packet.payload[i]) << (8 * i);
  }
  Outcome outcome = flight->machine->resume(reply);
  continue_flight(std::move(flight), std::move(outcome));
}

void SmartNic::finish_flight(std::unique_ptr<Flight> flight,
                             Outcome outcome) {
  inflight_bytes_ -= flight->staged_bytes;
  stats_.service_cycles.add(static_cast<double>(outcome.cycles));
  if (flight->exec_span != trace::kInvalidSpan) {
    tracer_->annotate(flight->exec_span, "cycles",
                      std::to_string(outcome.cycles));
    tracer_->end_span(flight->exec_span, sim_.now());
  }
  if (profiler_ && flight->thread_slot >= 0) {
    profiler_->on_release(static_cast<std::uint32_t>(flight->thread_slot),
                          sim_.now());
    slot_busy_[static_cast<std::size_t>(flight->thread_slot)] = false;
  }

  if (outcome.state == RunState::kTrap) {
    ++stats_.traps;
    LNIC_WARN() << "lambda trap: " << outcome.trap_message;
  } else if (outcome.return_value == 0xFFFF) {
    ++stats_.requests_to_host;  // send_pkt_to_host path
  } else {
    ++stats_.requests_completed;
    if (config_.dispatch == DispatchPolicy::kWfq) {
      ++stats_.completed_by_class[flight->sched_class];
    }
    net::LambdaHeader hdr = flight->lambda;
    // Adopt the response vector into one buffer; fragments are slices.
    auto frags = net::fragment(node_, flight->reply_to, PacketKind::kResponse,
                               hdr, net::BufferView(std::move(outcome.response)));
    for (auto& f : frags) network_.send(std::move(f));
  }
  release_thread();
}

void SmartNic::release_thread() {
  assert(busy_threads_ > 0);
  --busy_threads_;
  try_dispatch();
}

}  // namespace lnic::nicsim
