// NPU-grid profiler: per-core/per-thread busy timelines, dispatch-queue
// depth sampling, and per-lambda attribution for the SmartNic model.
//
// Off-path SmartNIC studies (arXiv:2402.03041, SuperNIC) show per-stage
// and per-core attribution is what makes NIC performance debuggable;
// this is that layer for the simulated Netronome grid. The profiler is
// pure bookkeeping in simulated time — enabling it never changes
// dispatch order, RNG draws, or any timestamp — and it is off by
// default (SmartNic::enable_profiler()).
//
// Memory is bounded: busy timelines and queue-depth samples are rings
// of the most recent `max_samples` entries; cumulative busy/request
// totals are exact for the whole run.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace lnic::nicsim {

class NpuProfiler {
 public:
  struct Interval {
    SimTime start = 0;
    SimTime end = 0;
    WorkloadId workload = kInvalidWorkload;
  };

  struct DepthSample {
    SimTime time = 0;
    std::uint64_t depth = 0;
  };

  NpuProfiler(std::uint32_t threads, std::uint32_t threads_per_core,
              std::size_t max_samples = 4096)
      : threads_per_core_(threads_per_core),
        max_samples_(max_samples),
        busy_since_(threads, -1),
        busy_workload_(threads, kInvalidWorkload),
        thread_busy_(threads, 0),
        timelines_(threads) {}

  std::uint32_t threads() const {
    return static_cast<std::uint32_t>(thread_busy_.size());
  }
  std::uint32_t cores() const {
    return threads_per_core_ == 0
               ? 0
               : (threads() + threads_per_core_ - 1) / threads_per_core_;
  }

  /// A flight started executing on `thread`.
  void on_dispatch(std::uint32_t thread, WorkloadId workload, SimTime now);
  /// The flight occupying `thread` finished (or yielded its slot).
  void on_release(std::uint32_t thread, SimTime now);
  /// Dispatch-queue depth after an enqueue or dispatch.
  void on_queue_depth(SimTime now, std::uint64_t depth);

  /// Cumulative busy time of one thread / one core (closed intervals
  /// plus the still-open one evaluated at `now`).
  SimDuration thread_busy_ns(std::uint32_t thread, SimTime now) const;
  SimDuration core_busy_ns(std::uint32_t core, SimTime now) const;
  /// Fraction of the grid busy over [0, now].
  double grid_utilization(SimTime now) const;

  /// Cumulative per-lambda execution time and dispatch counts.
  SimDuration lambda_busy_ns(WorkloadId workload) const;
  std::uint64_t lambda_dispatches(WorkloadId workload) const;
  const std::map<WorkloadId, SimDuration>& lambda_busy() const {
    return lambda_busy_;
  }

  /// Recent busy intervals of one thread, oldest first (bounded ring).
  const std::deque<Interval>& timeline(std::uint32_t thread) const {
    return timelines_[thread];
  }
  const std::deque<DepthSample>& queue_depth_samples() const {
    return depth_samples_;
  }
  std::uint64_t peak_queue_depth() const { return peak_depth_; }

  /// Per-core occupancy table (one line per core with busy %).
  std::string text_report(SimTime now) const;

 private:
  std::uint32_t threads_per_core_;
  std::size_t max_samples_;
  std::vector<SimTime> busy_since_;       // -1 = idle
  std::vector<WorkloadId> busy_workload_;
  std::vector<SimDuration> thread_busy_;
  std::vector<std::deque<Interval>> timelines_;
  std::map<WorkloadId, SimDuration> lambda_busy_;
  std::map<WorkloadId, std::uint64_t> lambda_dispatches_;
  std::deque<DepthSample> depth_samples_;
  std::uint64_t peak_depth_ = 0;
};

}  // namespace lnic::nicsim
