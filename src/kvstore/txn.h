// Transactional NIC-resident store: multi-key transactions over the
// B+-tree (btree.h) with two-phase locking, executed by a store node on
// the simulated fabric.
//
// Concurrency control is strict 2PL with two conflict-resolution
// protocols selected per store (SmartOffloading's NO_WAIT / WAIT_DIE):
//
//  - NO_WAIT: any lock conflict aborts the requester immediately.
//    Trivially deadlock-free (no waiting, hence no wait-for edges).
//  - WAIT_DIE: the requester compares its timestamp against every
//    incompatible holder *and* queued waiter; strictly older than all of
//    them -> it waits (in timestamp order), otherwise it dies (aborts).
//    Wait-for edges therefore always point old -> young, so no cycle can
//    form. Timestamps are (SimTime of first attempt, global sequence)
//    and are retained across retries, so an aborted transaction ages
//    until it is the oldest contender and must eventually win — the
//    livelock bound exercised by tests/txn_test.cc.
//
// Aborted transactions retry after exponential backoff with
// deterministic jitter (hash of txn id and attempt — no RNG draws on
// the retry path, matching proto/rpc.cc), up to a retry budget; budget
// exhaustion is recorded in the flight recorder.
//
// Timing model: locks and the authoritative tree are synchronous
// in-memory state; what costs simulated time is *page movement*. Every
// operation charges its root-to-leaf page path against the NIC-resident
// NodeCache — a hit costs NIC-local service time, a miss a one-sided
// RDMA read of the page from the HostMemoryNode — and a committing
// writeback pushes the dirty pages back and invalidates the NIC's
// copies (write-invalidate coherence).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/types.h"
#include "kvstore/btree.h"
#include "net/network.h"
#include "proto/rdma.h"
#include "sim/simulator.h"

namespace lnic::kvstore {

enum class LockProtocol : std::uint8_t { kNoWait, kWaitDie };
const char* to_string(LockProtocol proto);

enum class LockMode : std::uint8_t { kShared, kExclusive };
enum class LockOutcome : std::uint8_t { kGranted, kWait, kAbort };

using TxnId = std::uint64_t;

/// Deterministic total order for WAIT_DIE: first-attempt simulated time
/// breaks ties by a per-store global sequence. Smaller = older.
struct TxnTimestamp {
  SimTime time = 0;
  std::uint64_t seq = 0;

  bool operator<(const TxnTimestamp& o) const {
    return time != o.time ? time < o.time : seq < o.seq;
  }
};

/// Per-key S/X lock table. Waiters queue in timestamp order (oldest
/// first) and are granted strictly from the head — no overtaking — so
/// grant order is deterministic and WAIT_DIE's old->young invariant
/// survives across grants.
class LockTable {
 public:
  LockOutcome try_acquire(Key key, TxnId txn, LockMode mode,
                          TxnTimestamp ts, LockProtocol proto);

  /// Releases every lock `txn` holds (and any queued waits). Returns the
  /// transactions whose queued requests became granted, in deterministic
  /// (key, queue) order.
  std::vector<TxnId> release_all(TxnId txn);

  std::size_t locked_keys() const { return table_.size(); }
  std::size_t waiting() const { return waiting_; }

 private:
  struct Holder {
    TxnId txn;
    LockMode mode;
    TxnTimestamp ts;
  };
  struct Waiter {
    TxnId txn;
    LockMode mode;
    TxnTimestamp ts;
  };
  struct Entry {
    std::vector<Holder> holders;
    std::vector<Waiter> waiters;  // sorted by ts, oldest first
  };

  /// Grants queue-head waiters that are now compatible; appends the
  /// granted txn ids to `granted`.
  void promote(Key key, Entry& entry, std::vector<TxnId>* granted);

  std::map<Key, Entry> table_;
  std::map<TxnId, std::set<Key>> keys_of_;
  std::size_t waiting_ = 0;
};

// -------------------------------------------------------------- TxnStore

enum class OpKind : std::uint8_t {
  kRead = 0,    // shared lock, point read
  kWrite = 1,   // exclusive lock, buffered blind write
  kInsert = 2,  // exclusive lock, buffered insert
  kRemove = 3,  // exclusive lock, buffered delete
  kScan = 4,    // shared lock on start key, range read
  kRmw = 5,     // exclusive lock, read + buffered increment
};

struct TxnOp {
  OpKind kind = OpKind::kRead;
  Key key = 0;
  Value value = 0;
  std::uint16_t scan_len = 0;
};

struct TxnRequest {
  std::vector<TxnOp> ops;
};

enum class TxnStatus : std::uint8_t { kCommitted = 0, kAborted = 1 };

struct TxnResult {
  TxnStatus status = TxnStatus::kAborted;
  std::uint32_t retries = 0;  // aborted attempts before the outcome
  std::uint32_t reads = 0;    // values produced by reads/scans/RMWs
  std::uint64_t read_xor = 0; // XOR of every value read (determinism probe)
};

struct TxnStoreConfig {
  BTreeConfig btree;
  /// NIC-resident page-cache capacity in nodes; 0 = host-backend
  /// baseline (every page access goes to host memory).
  std::size_t nic_cache_nodes = 256;
  LockProtocol protocol = LockProtocol::kNoWait;
  /// Cost of touching one NIC-cached page (match/action + SRAM read).
  SimDuration nic_node_service = nanoseconds(250);
  /// Abort/retry budget: a txn aborts up to max_retries times and is
  /// reported kAborted (retry-exhausted) on the next conflict.
  std::uint32_t max_retries = 8;
  SimDuration backoff_base = microseconds(5);
  SimDuration backoff_cap = microseconds(80);
  proto::HostMemoryConfig host;
};

struct TxnStoreStats {
  std::uint64_t gets = 0;   // networked single-key GETs
  std::uint64_t sets = 0;   // networked single-key SETs
  std::uint64_t txns = 0;   // multi-op transactions submitted
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;       // aborted attempts (retries included)
  std::uint64_t lock_waits = 0;   // WAIT_DIE waits entered
  std::uint64_t retries_exhausted = 0;
  std::uint64_t page_fetches = 0;  // NIC cache misses served over RDMA
};

/// Wire format (PacketKind::kKvRequest to node(), kKvResponse back):
///  - workload_id 0, GET:  body [key u64][unused u64] -> reply [value u64]
///  - workload_id 1, SET:  body [key u64][value u64]  -> reply [value u64]
///  - workload_id 2, TXN:  body [n u16] then n x
///        [kind u8][key u64][value u64][scan_len u16]
///    reply [status u8][retries u8][reads u16][read_xor u64]
class TxnStore {
 public:
  static constexpr WorkloadId kOpGet = 0;
  static constexpr WorkloadId kOpSet = 1;
  static constexpr WorkloadId kOpTxn = 2;

  TxnStore(sim::Simulator& sim, net::Network& network,
           TxnStoreConfig config = {});

  /// The store's fabric endpoint (clients send kKvRequest here).
  NodeId node() const { return node_; }

  /// Pre-seeds the tree directly: no locks, no simulated time, no stats.
  void load(Key key, Value value) { tree_.put(key, value); }

  using TxnCallback = std::function<void(const TxnResult&)>;
  /// Direct in-sim submission (tests, lnicctl, co-located lambdas); the
  /// callback fires at commit/final-abort time.
  void execute(TxnRequest request, TxnCallback callback);

  const TxnStoreStats& stats() const { return stats_; }
  const NodeCacheStats& cache_stats() const { return cache_.stats(); }
  const proto::HostMemoryStats& host_stats() const { return host_.stats(); }
  const proto::RdmaQpStats& qp_stats() const { return qp_.stats(); }
  const BPlusTree& tree() const { return tree_; }
  LockProtocol protocol() const { return config_.protocol; }
  std::size_t inflight() const { return txns_.size(); }

  /// Serializes TXN ops into the wire body (see class comment).
  static std::vector<std::uint8_t> encode_txn(const TxnRequest& request);

 private:
  struct TxnState {
    TxnId id = 0;
    TxnTimestamp ts;
    TxnRequest req;
    TxnCallback cb;
    std::uint32_t attempt = 1;
    // Per-attempt progress: current op, pages still to charge for it.
    std::size_t op_idx = 0;
    std::vector<PageId> pages;
    std::size_t page_idx = 0;
    // Per-attempt buffered effects (applied to the tree at commit).
    std::map<Key, Value> write_buffer;
    std::vector<Key> removes;
    std::uint32_t reads = 0;
    std::uint64_t read_xor = 0;
    // Reply routing for networked submissions.
    bool networked = false;
    NodeId reply_to = kInvalidNode;
    RequestId reply_id = 0;
    WorkloadId reply_op = kOpTxn;
  };

  void handle_packet(const net::Packet& packet);
  void submit(TxnState state);
  void start_attempt(TxnId id);
  void step_op(TxnId id);
  void charge_pages(TxnId id);
  void step_page(TxnId id);
  void finish_op(TxnId id);
  void commit(TxnId id);
  void finish_commit(TxnId id);
  void on_abort(TxnId id);
  void finish_txn(TxnId id, TxnStatus status);
  void resume_granted(const std::vector<TxnId>& granted);
  SimDuration backoff_delay(const TxnState& state) const;
  void reply(const TxnState& state, const TxnResult& result);

  sim::Simulator& sim_;
  net::Network& network_;
  TxnStoreConfig config_;
  BPlusTree tree_;
  NodeCache cache_;
  LockTable locks_;
  proto::HostMemoryNode host_;
  proto::RdmaQp qp_;
  NodeId node_;
  TxnId next_txn_ = 1;
  std::uint64_t next_seq_ = 0;
  std::map<TxnId, TxnState> txns_;
  TxnStoreStats stats_;
};

}  // namespace lnic::kvstore
