#include "kvstore/etcd.h"

namespace lnic::kvstore {

EtcdStore::EtcdStore(sim::Simulator& sim, std::uint32_t size,
                     raft::RaftConfig config)
    : cluster_(sim, size, config), state_(size) {
  for (raft::NodeIndex i = 0; i < size; ++i) {
    cluster_.node(i).set_apply_callback(
        [this, i](std::uint64_t, const raft::Command& cmd) { apply(i, cmd); });
  }
}

void EtcdStore::apply(raft::NodeIndex node, const raft::Command& command) {
  auto& map = state_[node];
  if (command.op == raft::Command::Op::kPut) {
    map[command.key] = command.value;
  } else {
    map.erase(command.key);
  }
  // Watches fire once per commit, from node 0's apply (the watch service
  // connects to one member).
  if (node == 0) {
    for (const auto& [prefix, fn] : watches_) {
      if (command.key.rfind(prefix, 0) == 0) fn(command.key, command.value);
    }
  }
}

Status EtcdStore::put(const std::string& key, const std::string& value) {
  raft::RaftNode* leader = cluster_.leader();
  if (leader == nullptr) return make_error("etcd: no leader elected yet");
  auto result = leader->propose(
      raft::Command{raft::Command::Op::kPut, key, value});
  if (!result.ok()) return result.error();
  return Status::ok_status();
}

Status EtcdStore::remove(const std::string& key) {
  raft::RaftNode* leader = cluster_.leader();
  if (leader == nullptr) return make_error("etcd: no leader elected yet");
  auto result =
      leader->propose(raft::Command{raft::Command::Op::kDelete, key, ""});
  if (!result.ok()) return result.error();
  return Status::ok_status();
}

raft::NodeIndex EtcdStore::read_node(
    std::optional<raft::NodeIndex> from) const {
  if (from.has_value()) return *from;
  raft::RaftNode* leader = cluster_.leader();
  return leader != nullptr ? leader->index() : 0;
}

std::optional<std::string> EtcdStore::get(
    const std::string& key, std::optional<raft::NodeIndex> from) const {
  const auto& map = state_[read_node(from)];
  const auto it = map.find(key);
  if (it == map.end()) return std::nullopt;
  return it->second;
}

std::vector<std::pair<std::string, std::string>> EtcdStore::list(
    const std::string& prefix, std::optional<raft::NodeIndex> from) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [k, v] : state_[read_node(from)]) {
    if (k.rfind(prefix, 0) == 0) out.emplace_back(k, v);
  }
  return out;
}

void EtcdStore::watch(const std::string& prefix, WatchFn fn) {
  watches_.emplace_back(prefix, std::move(fn));
}

}  // namespace lnic::kvstore
