#include "kvstore/btree.h"

#include <algorithm>
#include <functional>

namespace lnic::kvstore {

BPlusTree::BPlusTree(BTreeConfig config) : config_(config) {
  if (config_.order < 4) config_.order = 4;
  root_ = allocate(/*leaf=*/true);
  dirty_.clear();  // construction is not a tracked mutation
}

PageId BPlusTree::allocate(bool leaf) {
  PageId id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
    pool_[id] = Node{};
  } else {
    id = static_cast<PageId>(pool_.size());
    pool_.emplace_back();
  }
  pool_[id].leaf = leaf;
  dirty_.push_back(id);
  return id;
}

void BPlusTree::release(PageId id) {
  pool_[id] = Node{};
  free_.push_back(id);
  freed_.push_back(id);
}

PageId BPlusTree::descend(Key key, std::vector<PageId>* path,
                          std::vector<std::uint32_t>* slots) const {
  PageId cur = root_;
  if (path != nullptr) path->push_back(cur);
  while (!node(cur).leaf) {
    const Node& n = node(cur);
    const auto it = std::upper_bound(n.keys.begin(), n.keys.end(), key);
    const auto slot = static_cast<std::uint32_t>(it - n.keys.begin());
    cur = n.children[slot];
    if (slots != nullptr) slots->push_back(slot);
    if (path != nullptr) path->push_back(cur);
  }
  return cur;
}

bool BPlusTree::get(Key key, Value* out) const {
  const PageId leaf = descend(key, nullptr, nullptr);
  const Node& n = node(leaf);
  const auto it = std::lower_bound(n.keys.begin(), n.keys.end(), key);
  if (it == n.keys.end() || *it != key) return false;
  if (out != nullptr) *out = n.values[it - n.keys.begin()];
  return true;
}

void BPlusTree::path_for(Key key, std::vector<PageId>* out) const {
  descend(key, out, nullptr);
}

bool BPlusTree::put(Key key, Value value) {
  dirty_.clear();
  freed_.clear();
  std::vector<PageId> path;
  std::vector<std::uint32_t> slots;
  const PageId leaf = descend(key, &path, &slots);
  Node& n = node(leaf);
  const auto it = std::lower_bound(n.keys.begin(), n.keys.end(), key);
  const auto at = it - n.keys.begin();
  dirty_.push_back(leaf);
  if (it != n.keys.end() && *it == key) {
    n.values[at] = value;
    return false;
  }
  n.keys.insert(it, key);
  n.values.insert(n.values.begin() + at, value);
  ++size_;
  if (n.keys.size() > config_.order) split_up(path, slots);
  return true;
}

void BPlusTree::split_up(std::vector<PageId>& path,
                         std::vector<std::uint32_t>& slots) {
  for (std::size_t level = path.size(); level-- > 0;) {
    const PageId cur = path[level];
    if (node(cur).keys.size() <= config_.order) return;
    const PageId right = allocate(node(cur).leaf);
    Node& left_n = node(cur);   // re-resolve: allocate may move the pool
    Node& right_n = node(right);
    Key separator;
    const std::size_t mid = left_n.keys.size() / 2;
    if (left_n.leaf) {
      right_n.keys.assign(left_n.keys.begin() + mid, left_n.keys.end());
      right_n.values.assign(left_n.values.begin() + mid, left_n.values.end());
      left_n.keys.resize(mid);
      left_n.values.resize(mid);
      separator = right_n.keys.front();
      right_n.next = left_n.next;
      left_n.next = right;
    } else {
      separator = left_n.keys[mid];
      right_n.keys.assign(left_n.keys.begin() + mid + 1, left_n.keys.end());
      right_n.children.assign(left_n.children.begin() + mid + 1,
                              left_n.children.end());
      left_n.keys.resize(mid);
      left_n.children.resize(mid + 1);
    }
    dirty_.push_back(cur);
    if (level == 0) {
      const PageId new_root = allocate(/*leaf=*/false);
      Node& r = node(new_root);
      r.keys.push_back(separator);
      r.children.push_back(cur);
      r.children.push_back(right);
      root_ = new_root;
      ++height_;
      return;
    }
    const PageId parent = path[level - 1];
    const std::uint32_t slot = slots[level - 1];
    Node& p = node(parent);
    p.keys.insert(p.keys.begin() + slot, separator);
    p.children.insert(p.children.begin() + slot + 1, right);
    dirty_.push_back(parent);
  }
}

bool BPlusTree::erase(Key key) {
  dirty_.clear();
  freed_.clear();
  std::vector<PageId> path;
  std::vector<std::uint32_t> slots;
  const PageId leaf = descend(key, &path, &slots);
  Node& n = node(leaf);
  const auto it = std::lower_bound(n.keys.begin(), n.keys.end(), key);
  if (it == n.keys.end() || *it != key) return false;
  const auto at = it - n.keys.begin();
  n.keys.erase(it);
  n.values.erase(n.values.begin() + at);
  --size_;
  dirty_.push_back(leaf);
  if (leaf != root_ && n.keys.size() < min_keys()) {
    rebalance_up(path, slots);
  }
  return true;
}

void BPlusTree::rebalance_up(std::vector<PageId>& path,
                             std::vector<std::uint32_t>& slots) {
  for (std::size_t level = path.size(); level-- > 1;) {
    const PageId cur = path[level];
    if (node(cur).keys.size() >= min_keys()) return;
    const PageId parent = path[level - 1];
    const std::uint32_t slot = slots[level - 1];
    Node& p = node(parent);
    const PageId left =
        slot > 0 ? p.children[slot - 1] : kInvalidPage;
    const PageId right = slot + 1 < p.children.size()
                             ? p.children[slot + 1]
                             : kInvalidPage;

    if (left != kInvalidPage && node(left).keys.size() > min_keys()) {
      // Borrow the left sibling's last entry through the parent.
      Node& l = node(left);
      Node& c = node(cur);
      if (c.leaf) {
        c.keys.insert(c.keys.begin(), l.keys.back());
        c.values.insert(c.values.begin(), l.values.back());
        l.keys.pop_back();
        l.values.pop_back();
        p.keys[slot - 1] = c.keys.front();
      } else {
        c.keys.insert(c.keys.begin(), p.keys[slot - 1]);
        p.keys[slot - 1] = l.keys.back();
        l.keys.pop_back();
        c.children.insert(c.children.begin(), l.children.back());
        l.children.pop_back();
      }
      dirty_.push_back(left);
      dirty_.push_back(cur);
      dirty_.push_back(parent);
      return;
    }
    if (right != kInvalidPage && node(right).keys.size() > min_keys()) {
      // Borrow the right sibling's first entry through the parent.
      Node& r = node(right);
      Node& c = node(cur);
      if (c.leaf) {
        c.keys.push_back(r.keys.front());
        c.values.push_back(r.values.front());
        r.keys.erase(r.keys.begin());
        r.values.erase(r.values.begin());
        p.keys[slot] = r.keys.front();
      } else {
        c.keys.push_back(p.keys[slot]);
        p.keys[slot] = r.keys.front();
        r.keys.erase(r.keys.begin());
        c.children.push_back(r.children.front());
        r.children.erase(r.children.begin());
      }
      dirty_.push_back(right);
      dirty_.push_back(cur);
      dirty_.push_back(parent);
      return;
    }

    // Merge with a sibling (both at exactly min occupancy). The left
    // node of the pair absorbs the right one.
    PageId into, from;
    std::uint32_t sep_slot;
    if (left != kInvalidPage) {
      into = left;
      from = cur;
      sep_slot = slot - 1;
    } else {
      into = cur;
      from = right;
      sep_slot = slot;
    }
    Node& a = node(into);
    Node& b = node(from);
    if (a.leaf) {
      a.keys.insert(a.keys.end(), b.keys.begin(), b.keys.end());
      a.values.insert(a.values.end(), b.values.begin(), b.values.end());
      a.next = b.next;
    } else {
      a.keys.push_back(p.keys[sep_slot]);
      a.keys.insert(a.keys.end(), b.keys.begin(), b.keys.end());
      a.children.insert(a.children.end(), b.children.begin(),
                        b.children.end());
    }
    p.keys.erase(p.keys.begin() + sep_slot);
    p.children.erase(p.children.begin() + sep_slot + 1);
    release(from);
    dirty_.push_back(into);
    dirty_.push_back(parent);

    if (parent == root_ && p.keys.empty()) {
      // The root emptied out: its single child becomes the new root.
      root_ = p.children.front();
      release(parent);
      --height_;
      return;
    }
    // Keep walking up: the parent may now be underfull. Fix the path so
    // the next iteration's slot math still refers to live children.
    path[level] = into;
  }
}

std::size_t BPlusTree::scan(Key start, std::size_t count,
                            std::vector<std::pair<Key, Value>>* out) const {
  PageId leaf = descend(start, nullptr, nullptr);
  std::size_t produced = 0;
  const Node* n = &node(leaf);
  auto it = std::lower_bound(n->keys.begin(), n->keys.end(), start);
  std::size_t idx = static_cast<std::size_t>(it - n->keys.begin());
  while (produced < count) {
    if (idx >= n->keys.size()) {
      if (n->next == kInvalidPage) break;
      n = &node(n->next);
      idx = 0;
      continue;
    }
    if (out != nullptr) out->emplace_back(n->keys[idx], n->values[idx]);
    ++produced;
    ++idx;
  }
  return produced;
}

void BPlusTree::scan_path(Key start, std::size_t count,
                          std::vector<PageId>* out) const {
  const PageId leaf = descend(start, out, nullptr);
  std::size_t remaining = count;
  const Node* n = &node(leaf);
  auto it = std::lower_bound(n->keys.begin(), n->keys.end(), start);
  std::size_t available = n->keys.size() - (it - n->keys.begin());
  while (available < remaining && n->next != kInvalidPage) {
    remaining -= available;
    if (out != nullptr) out->push_back(n->next);
    n = &node(n->next);
    available = n->keys.size();
  }
}

bool BPlusTree::check_invariants(std::string* why) const {
  auto fail = [why](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };

  // Recursive bound/occupancy/depth check.
  std::size_t counted = 0;
  std::vector<PageId> leftmost_per_depth;
  std::function<bool(PageId, std::uint32_t, bool, Key, bool, Key,
                     std::string*)>
      walk = [&](PageId id, std::uint32_t depth, bool has_lo, Key lo,
                 bool has_hi, Key hi, std::string* err) -> bool {
    const Node& n = node(id);
    if (id != root_ && n.keys.size() < min_keys()) {
      *err = "underfull node " + std::to_string(id);
      return false;
    }
    if (n.keys.size() > config_.order) {
      *err = "overfull node " + std::to_string(id);
      return false;
    }
    for (std::size_t i = 0; i < n.keys.size(); ++i) {
      if (i > 0 && n.keys[i - 1] >= n.keys[i]) {
        *err = "unsorted keys in node " + std::to_string(id);
        return false;
      }
      if ((has_lo && n.keys[i] < lo) || (has_hi && n.keys[i] >= hi)) {
        *err = "key out of separator bounds in node " + std::to_string(id);
        return false;
      }
    }
    if (n.leaf) {
      if (depth + 1 != height_) {
        *err = "leaf " + std::to_string(id) + " at depth " +
               std::to_string(depth) + ", height " + std::to_string(height_);
        return false;
      }
      counted += n.keys.size();
      return true;
    }
    if (n.children.size() != n.keys.size() + 1) {
      *err = "internal node " + std::to_string(id) + " child count mismatch";
      return false;
    }
    if (id != root_ && n.keys.empty()) {
      *err = "empty internal node " + std::to_string(id);
      return false;
    }
    for (std::size_t i = 0; i < n.children.size(); ++i) {
      const bool child_has_lo = i > 0 ? true : has_lo;
      const Key child_lo = i > 0 ? n.keys[i - 1] : lo;
      const bool child_has_hi = i < n.keys.size() ? true : has_hi;
      const Key child_hi = i < n.keys.size() ? n.keys[i] : hi;
      if (!walk(n.children[i], depth + 1, child_has_lo, child_lo,
                child_has_hi, child_hi, err)) {
        return false;
      }
    }
    return true;
  };

  std::string err;
  if (!walk(root_, 0, false, 0, false, 0, &err)) return fail(err);
  if (counted != size_) {
    return fail("size mismatch: counted " + std::to_string(counted) +
                " keys, size() = " + std::to_string(size_));
  }

  // Leaf chain: walk from the leftmost leaf; keys must be globally
  // sorted and the chain must cover exactly size_ entries.
  PageId cur = root_;
  while (!node(cur).leaf) cur = node(cur).children.front();
  std::size_t chained = 0;
  bool have_prev = false;
  Key prev = 0;
  while (cur != kInvalidPage) {
    const Node& n = node(cur);
    for (const Key k : n.keys) {
      if (have_prev && prev >= k) return fail("leaf chain out of order");
      prev = k;
      have_prev = true;
      ++chained;
    }
    cur = n.next;
  }
  if (chained != size_) {
    return fail("leaf chain covers " + std::to_string(chained) +
                " keys, size() = " + std::to_string(size_));
  }
  return true;
}

// ------------------------------------------------------------ NodeCache

bool NodeCache::access(PageId id) {
  const auto it = map_.find(id);
  if (it == map_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  lru_.erase(it->second);
  lru_.push_front(id);
  it->second = lru_.begin();
  return true;
}

void NodeCache::insert(PageId id) {
  if (capacity_ == 0 || map_.count(id) != 0) return;
  if (map_.size() >= capacity_) {
    const PageId victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    ++stats_.evictions;
  }
  lru_.push_front(id);
  map_.emplace(id, lru_.begin());
}

bool NodeCache::invalidate(PageId id) {
  const auto it = map_.find(id);
  if (it == map_.end()) return false;
  lru_.erase(it->second);
  map_.erase(it);
  ++stats_.invalidations;
  return true;
}

}  // namespace lnic::kvstore
