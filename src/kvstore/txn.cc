#include "kvstore/txn.h"

#include <algorithm>

#include "common/flightrec.h"
#include "net/packet.h"

namespace lnic::kvstore {

using net::Packet;
using net::PacketKind;

const char* to_string(LockProtocol proto) {
  switch (proto) {
    case LockProtocol::kNoWait:
      return "no_wait";
    case LockProtocol::kWaitDie:
      return "wait_die";
  }
  return "?";
}

namespace {

bool compatible(LockMode a, LockMode b) {
  return a == LockMode::kShared && b == LockMode::kShared;
}

/// Deterministic jitter for txn retry backoff — same SplitMix64-style
/// hash as proto/rpc.cc so replays stay bit-reproducible.
std::uint64_t jitter_hash(TxnId id, std::uint32_t attempt) {
  std::uint64_t z = id * 0x9E3779B97F4A7C15ull + attempt;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t read_u64_at(const net::BufferView& body, std::size_t at) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8 && at + i < body.size(); ++i) {
    v |= static_cast<std::uint64_t>(body[at + i]) << (8 * i);
  }
  return v;
}

std::uint16_t read_u16_at(const net::BufferView& body, std::size_t at) {
  std::uint16_t v = 0;
  for (std::size_t i = 0; i < 2 && at + i < body.size(); ++i) {
    v = static_cast<std::uint16_t>(
        v | static_cast<std::uint16_t>(body[at + i]) << (8 * i));
  }
  return v;
}

void append_u64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void append_u16(std::vector<std::uint8_t>* out, std::uint16_t v) {
  out->push_back(static_cast<std::uint8_t>(v));
  out->push_back(static_cast<std::uint8_t>(v >> 8));
}

}  // namespace

// ------------------------------------------------------------- LockTable

LockOutcome LockTable::try_acquire(Key key, TxnId txn, LockMode mode,
                                   TxnTimestamp ts, LockProtocol proto) {
  Entry& entry = table_[key];

  // Re-entrant requests: already exclusive covers everything; shared
  // covers shared. A shared->exclusive upgrade falls through to the
  // conflict check against the *other* holders.
  Holder* own = nullptr;
  for (Holder& h : entry.holders) {
    if (h.txn == txn) {
      own = &h;
      break;
    }
  }
  if (own != nullptr &&
      (own->mode == LockMode::kExclusive || mode == LockMode::kShared)) {
    return LockOutcome::kGranted;
  }

  // Blockers: incompatible holders, plus incompatible queued waiters —
  // the queue is never overtaken, so a conflicting waiter blocks too.
  bool blocked = false;
  TxnTimestamp oldest_blocker;
  bool have_blocker = false;
  auto consider = [&](TxnId other, LockMode other_mode, TxnTimestamp other_ts) {
    if (other == txn || compatible(mode, other_mode)) return;
    blocked = true;
    if (!have_blocker || other_ts < oldest_blocker) {
      oldest_blocker = other_ts;
      have_blocker = true;
    }
  };
  for (const Holder& h : entry.holders) consider(h.txn, h.mode, h.ts);
  for (const Waiter& w : entry.waiters) consider(w.txn, w.mode, w.ts);

  if (!blocked) {
    if (own != nullptr) {
      own->mode = LockMode::kExclusive;  // sole-holder upgrade
    } else {
      entry.holders.push_back({txn, mode, ts});
      keys_of_[txn].insert(key);
    }
    return LockOutcome::kGranted;
  }

  if (proto == LockProtocol::kNoWait) return LockOutcome::kAbort;

  // WAIT_DIE: wait only when strictly older than every blocker, so every
  // wait-for edge points old -> young and no cycle can form.
  if (!(ts < oldest_blocker)) return LockOutcome::kAbort;
  auto pos = entry.waiters.begin();
  while (pos != entry.waiters.end() && pos->ts < ts) ++pos;
  entry.waiters.insert(pos, {txn, mode, ts});
  keys_of_[txn].insert(key);
  ++waiting_;
  return LockOutcome::kWait;
}

void LockTable::promote(Key key, Entry& entry, std::vector<TxnId>* granted) {
  while (!entry.waiters.empty()) {
    const Waiter w = entry.waiters.front();
    // Grantable when every holder is either the waiter itself (the
    // shared->exclusive upgrade case) or mode-compatible with it.
    bool ok = true;
    Holder* own = nullptr;
    for (Holder& h : entry.holders) {
      if (h.txn == w.txn) {
        own = &h;
        continue;
      }
      if (!compatible(w.mode, h.mode)) {
        ok = false;
        break;
      }
    }
    if (!ok) return;
    entry.waiters.erase(entry.waiters.begin());
    --waiting_;
    if (own != nullptr) {
      own->mode = LockMode::kExclusive;
    } else {
      entry.holders.push_back({w.txn, w.mode, w.ts});
    }
    keys_of_[w.txn].insert(key);
    granted->push_back(w.txn);
  }
}

std::vector<TxnId> LockTable::release_all(TxnId txn) {
  std::vector<TxnId> granted;
  const auto keys_it = keys_of_.find(txn);
  if (keys_it == keys_of_.end()) return granted;
  const std::set<Key> keys = std::move(keys_it->second);
  keys_of_.erase(keys_it);
  for (const Key key : keys) {
    const auto it = table_.find(key);
    if (it == table_.end()) continue;
    Entry& entry = it->second;
    entry.holders.erase(
        std::remove_if(entry.holders.begin(), entry.holders.end(),
                       [txn](const Holder& h) { return h.txn == txn; }),
        entry.holders.end());
    const auto before = entry.waiters.size();
    entry.waiters.erase(
        std::remove_if(entry.waiters.begin(), entry.waiters.end(),
                       [txn](const Waiter& w) { return w.txn == txn; }),
        entry.waiters.end());
    waiting_ -= before - entry.waiters.size();
    promote(key, entry, &granted);
    if (entry.holders.empty() && entry.waiters.empty()) table_.erase(it);
  }
  return granted;
}

// -------------------------------------------------------------- TxnStore

TxnStore::TxnStore(sim::Simulator& sim, net::Network& network,
                   TxnStoreConfig config)
    : sim_(sim),
      network_(network),
      config_(config),
      tree_(config.btree),
      cache_(config.nic_cache_nodes),
      host_(sim, network, config.host),
      qp_(sim, network) {
  node_ = network_.attach([this](const Packet& p) { handle_packet(p); },
                          &sim_);
}

std::vector<std::uint8_t> TxnStore::encode_txn(const TxnRequest& request) {
  std::vector<std::uint8_t> body;
  body.reserve(2 + request.ops.size() * 19);
  append_u16(&body, static_cast<std::uint16_t>(request.ops.size()));
  for (const TxnOp& op : request.ops) {
    body.push_back(static_cast<std::uint8_t>(op.kind));
    append_u64(&body, op.key);
    append_u64(&body, op.value);
    append_u16(&body, op.scan_len);
  }
  return body;
}

void TxnStore::handle_packet(const Packet& packet) {
  if (packet.kind != PacketKind::kKvRequest) return;
  // Requests are single-packet by construction (the largest TXN bodies
  // are a few hundred bytes, well under kMaxPayload).
  if (packet.lambda.frag_count > 1) return;
  const net::BufferView& body = packet.payload;

  TxnState state;
  state.networked = true;
  state.reply_to = packet.src;
  state.reply_id = packet.lambda.request_id;
  state.reply_op = packet.lambda.workload_id;

  switch (packet.lambda.workload_id) {
    case kOpGet: {
      ++stats_.gets;
      state.req.ops.push_back({OpKind::kRead, read_u64_at(body, 0), 0, 0});
      break;
    }
    case kOpSet: {
      ++stats_.sets;
      state.req.ops.push_back(
          {OpKind::kWrite, read_u64_at(body, 0), read_u64_at(body, 8), 0});
      break;
    }
    case kOpTxn: {
      ++stats_.txns;
      const std::uint16_t n = read_u16_at(body, 0);
      std::size_t at = 2;
      for (std::uint16_t i = 0; i < n && at + 19 <= body.size(); ++i) {
        TxnOp op;
        op.kind = static_cast<OpKind>(body[at]);
        op.key = read_u64_at(body, at + 1);
        op.value = read_u64_at(body, at + 9);
        op.scan_len = read_u16_at(body, at + 17);
        state.req.ops.push_back(op);
        at += 19;
      }
      break;
    }
    default:
      return;
  }
  submit(std::move(state));
}

void TxnStore::execute(TxnRequest request, TxnCallback callback) {
  ++stats_.txns;
  TxnState state;
  state.req = std::move(request);
  state.cb = std::move(callback);
  submit(std::move(state));
}

void TxnStore::submit(TxnState state) {
  const TxnId id = next_txn_++;
  state.id = id;
  state.ts = TxnTimestamp{sim_.now(), next_seq_++};
  txns_.emplace(id, std::move(state));
  start_attempt(id);
}

void TxnStore::start_attempt(TxnId id) {
  const auto it = txns_.find(id);
  if (it == txns_.end()) return;
  TxnState& st = it->second;
  st.op_idx = 0;
  st.pages.clear();
  st.page_idx = 0;
  st.write_buffer.clear();
  st.removes.clear();
  st.reads = 0;
  st.read_xor = 0;
  step_op(id);
}

void TxnStore::step_op(TxnId id) {
  const auto it = txns_.find(id);
  if (it == txns_.end()) return;
  TxnState& st = it->second;
  if (st.op_idx >= st.req.ops.size()) {
    commit(id);
    return;
  }
  const TxnOp& op = st.req.ops[st.op_idx];
  const LockMode mode =
      (op.kind == OpKind::kRead || op.kind == OpKind::kScan)
          ? LockMode::kShared
          : LockMode::kExclusive;
  switch (locks_.try_acquire(op.key, id, mode, st.ts, config_.protocol)) {
    case LockOutcome::kGranted:
      charge_pages(id);
      return;
    case LockOutcome::kWait:
      ++stats_.lock_waits;
      return;  // parked; resume_granted() re-enters at charge_pages
    case LockOutcome::kAbort:
      on_abort(id);
      return;
  }
}

void TxnStore::charge_pages(TxnId id) {
  const auto it = txns_.find(id);
  if (it == txns_.end()) return;
  TxnState& st = it->second;
  const TxnOp& op = st.req.ops[st.op_idx];
  st.pages.clear();
  st.page_idx = 0;
  if (op.kind == OpKind::kScan) {
    tree_.scan_path(op.key, op.scan_len, &st.pages);
  } else {
    tree_.path_for(op.key, &st.pages);
  }
  step_page(id);
}

void TxnStore::step_page(TxnId id) {
  const auto it = txns_.find(id);
  if (it == txns_.end()) return;
  TxnState& st = it->second;
  if (st.page_idx >= st.pages.size()) {
    finish_op(id);
    return;
  }
  const PageId page = st.pages[st.page_idx++];
  if (cache_.access(page)) {
    sim_.schedule(config_.nic_node_service, [this, id]() { step_page(id); });
  } else {
    ++stats_.page_fetches;
    qp_.read(host_.node(),
             static_cast<std::uint64_t>(page) * tree_.node_bytes(),
             tree_.node_bytes(), [this, id, page]() {
               cache_.insert(page);
               step_page(id);
             });
  }
}

void TxnStore::finish_op(TxnId id) {
  const auto it = txns_.find(id);
  if (it == txns_.end()) return;
  TxnState& st = it->second;
  const TxnOp& op = st.req.ops[st.op_idx];
  switch (op.kind) {
    case OpKind::kRead: {
      Value v = 0;
      const auto buf = st.write_buffer.find(op.key);
      if (buf != st.write_buffer.end()) {
        v = buf->second;  // read-your-writes
      } else {
        tree_.get(op.key, &v);
      }
      st.read_xor ^= v;
      ++st.reads;
      break;
    }
    case OpKind::kScan: {
      std::vector<std::pair<Key, Value>> out;
      tree_.scan(op.key, op.scan_len, &out);
      for (const auto& [k, v] : out) {
        st.read_xor ^= v;
        ++st.reads;
      }
      break;
    }
    case OpKind::kWrite:
    case OpKind::kInsert:
      st.write_buffer[op.key] = op.value;
      break;
    case OpKind::kRemove:
      st.write_buffer.erase(op.key);
      st.removes.push_back(op.key);
      break;
    case OpKind::kRmw: {
      Value v = 0;
      const auto buf = st.write_buffer.find(op.key);
      if (buf != st.write_buffer.end()) {
        v = buf->second;
      } else {
        tree_.get(op.key, &v);
      }
      st.read_xor ^= v;
      ++st.reads;
      st.write_buffer[op.key] = v + (op.value == 0 ? 1 : op.value);
      break;
    }
  }
  ++st.op_idx;
  step_op(id);
}

void TxnStore::commit(TxnId id) {
  const auto it = txns_.find(id);
  if (it == txns_.end()) return;
  TxnState& st = it->second;
  // Apply buffered effects to the authoritative tree; collect the pages
  // the mutations dirtied or freed.
  std::set<PageId> dirty;
  std::set<PageId> freed;
  for (const auto& [k, v] : st.write_buffer) {
    tree_.put(k, v);
    dirty.insert(tree_.last_dirty().begin(), tree_.last_dirty().end());
    freed.insert(tree_.last_freed().begin(), tree_.last_freed().end());
  }
  for (const Key k : st.removes) {
    tree_.erase(k);
    dirty.insert(tree_.last_dirty().begin(), tree_.last_dirty().end());
    freed.insert(tree_.last_freed().begin(), tree_.last_freed().end());
  }
  if (dirty.empty() && freed.empty()) {
    finish_commit(id);  // read-only: nothing to write back
    return;
  }
  // Write-invalidate coherence: the NIC drops its copies of every page
  // the commit touched; the next reader re-fetches from host memory.
  for (const PageId p : dirty) cache_.invalidate(p);
  for (const PageId p : freed) cache_.invalidate(p);
  const std::uint64_t addr =
      static_cast<std::uint64_t>(*dirty.begin()) * tree_.node_bytes();
  const Bytes len =
      std::max<std::size_t>(dirty.size(), 1) * tree_.node_bytes();
  qp_.write(host_.node(), addr, len, [this, id]() { finish_commit(id); });
}

void TxnStore::finish_commit(TxnId id) {
  ++stats_.commits;
  finish_txn(id, TxnStatus::kCommitted);
}

void TxnStore::on_abort(TxnId id) {
  const auto it = txns_.find(id);
  if (it == txns_.end()) return;
  TxnState& st = it->second;
  ++stats_.aborts;
  if (st.attempt > config_.max_retries) {
    ++stats_.retries_exhausted;
    flightrec::FlightRecorder::global().record(
        sim_.now(), flightrec::Kind::kTxnRetryExhausted, st.id, st.attempt,
        "txn " + std::to_string(st.id) + " (" +
            to_string(config_.protocol) + ") aborted " +
            std::to_string(st.attempt) + " times; retry budget exhausted");
    finish_txn(id, TxnStatus::kAborted);
    return;
  }
  resume_granted(locks_.release_all(id));
  ++st.attempt;
  sim_.schedule(backoff_delay(st), [this, id]() { start_attempt(id); });
}

void TxnStore::finish_txn(TxnId id, TxnStatus status) {
  const auto it = txns_.find(id);
  if (it == txns_.end()) return;
  TxnState st = std::move(it->second);
  txns_.erase(it);
  TxnResult result;
  result.status = status;
  result.retries =
      status == TxnStatus::kCommitted ? st.attempt - 1 : st.attempt;
  result.reads = st.reads;
  result.read_xor = st.read_xor;
  resume_granted(locks_.release_all(st.id));
  if (st.networked) reply(st, result);
  if (st.cb) st.cb(result);
}

void TxnStore::resume_granted(const std::vector<TxnId>& granted) {
  for (const TxnId g : granted) {
    // Resume on a fresh event so grants never re-enter the releasing
    // txn's stack; the granted txn's pending op now holds its lock.
    sim_.schedule(0, [this, g]() { charge_pages(g); });
  }
}

SimDuration TxnStore::backoff_delay(const TxnState& state) const {
  SimDuration base = config_.backoff_base;
  for (std::uint32_t i = 1;
       i < state.attempt && base < config_.backoff_cap; ++i) {
    base = std::min<SimDuration>(config_.backoff_cap, base * 2);
  }
  if (base > 4) {
    // Up to 25% deterministic jitter, as in proto/rpc.cc retransmits.
    base += static_cast<SimDuration>(
        jitter_hash(state.id, state.attempt) %
        static_cast<std::uint64_t>(base / 4));
  }
  return base;
}

void TxnStore::reply(const TxnState& state, const TxnResult& result) {
  std::vector<std::uint8_t> body;
  if (state.reply_op == kOpTxn) {
    body.push_back(static_cast<std::uint8_t>(result.status));
    body.push_back(static_cast<std::uint8_t>(
        std::min<std::uint32_t>(result.retries, 255)));
    append_u16(&body, static_cast<std::uint16_t>(
                          std::min<std::uint32_t>(result.reads, 0xFFFF)));
    append_u64(&body, result.read_xor);
  } else if (state.reply_op == kOpSet) {
    append_u64(&body, state.req.ops.empty() ? 0 : state.req.ops[0].value);
  } else {
    append_u64(&body, result.read_xor);
  }
  Packet p;
  p.src = node_;
  p.dst = state.reply_to;
  p.kind = PacketKind::kKvResponse;
  p.lambda.workload_id = state.reply_op;
  p.lambda.request_id = state.reply_id;
  p.payload = std::move(body);
  network_.send(std::move(p));
}

}  // namespace lnic::kvstore
