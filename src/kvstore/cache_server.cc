#include "kvstore/cache_server.h"

namespace lnic::kvstore {

using net::Packet;
using net::PacketKind;

CacheServer::CacheServer(sim::Simulator& sim, net::Network& network,
                         CacheConfig config)
    : sim_(sim), network_(network), config_(config) {
  node_ = network_.attach([this](const Packet& p) { handle_packet(p); },
                          &sim_);
}

void CacheServer::put(std::uint64_t key, std::uint64_t value) {
  // Stats are counted here (not in handle_packet) so the direct
  // accessors and the networked path stay consistent: a direct put is a
  // SET minus the fabric hop.
  ++stats_.sets;
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.value = value;
    touch(key);
    return;
  }
  if (map_.size() >= config_.capacity) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    ++stats_.evictions;
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{value, lru_.begin()});
}

bool CacheServer::get(std::uint64_t key, std::uint64_t& value_out) {
  ++stats_.gets;
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  value_out = it->second.value;
  touch(key);
  return true;
}

void CacheServer::touch(std::uint64_t key) {
  auto it = map_.find(key);
  lru_.erase(it->second.lru_pos);
  lru_.push_front(key);
  it->second.lru_pos = lru_.begin();
}

void CacheServer::handle_packet(const Packet& packet) {
  if (packet.kind != PacketKind::kKvRequest) return;
  std::uint64_t key = 0, value = 0;
  for (std::size_t i = 0; i < 8 && i < packet.payload.size(); ++i) {
    key |= static_cast<std::uint64_t>(packet.payload[i]) << (8 * i);
  }
  for (std::size_t i = 0; i < 8 && 8 + i < packet.payload.size(); ++i) {
    value |= static_cast<std::uint64_t>(packet.payload[8 + i]) << (8 * i);
  }

  const bool is_set = packet.lambda.workload_id == 1;
  std::uint64_t reply = 0;
  if (is_set) {
    put(key, value);
    reply = value;
  } else if (!get(key, reply)) {
    reply = 0;
  }

  const SimDuration service =
      is_set ? config_.set_service : config_.get_service;
  Packet response;
  response.src = node_;
  response.dst = packet.src;
  response.kind = PacketKind::kKvResponse;
  response.lambda = packet.lambda;
  std::vector<std::uint8_t> reply_body(8);
  for (int i = 0; i < 8; ++i) {
    reply_body[i] = static_cast<std::uint8_t>(reply >> (8 * i));
  }
  response.payload = std::move(reply_body);
  sim_.schedule(service, [this, response = std::move(response)]() mutable {
    network_.send(std::move(response));
  });
}

}  // namespace lnic::kvstore
