// Memcached-like cache server (§6.2b): the external dependency of the
// key-value client lambdas. Speaks GET/SET over single-packet RPCs on
// the simulated fabric; bounded capacity with LRU eviction.
//
// The master node M1 runs one of these in the paper's testbed; both the
// NIC-resident and host-resident key-value lambdas query it, so its
// service time and network position are identical across backends — the
// measured differences come from the backends alone.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/types.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace lnic::kvstore {

struct CacheConfig {
  std::size_t capacity = 1 << 20;          // max resident entries
  SimDuration get_service = microseconds(4);   // memcached-scale op cost
  SimDuration set_service = microseconds(6);
};

struct CacheStats {
  std::uint64_t gets = 0;
  std::uint64_t sets = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

class CacheServer {
 public:
  CacheServer(sim::Simulator& sim, net::Network& network,
              CacheConfig config = {});

  NodeId node() const { return node_; }
  const CacheStats& stats() const { return stats_; }
  std::size_t size() const { return map_.size(); }

  /// Direct (non-networked) accessors for tests and pre-seeding. They
  /// maintain LRU order and CacheStats exactly like the networked path
  /// (which is implemented on top of them) — only the fabric hop and
  /// service delay differ.
  void put(std::uint64_t key, std::uint64_t value);
  bool get(std::uint64_t key, std::uint64_t& value_out);

 private:
  void handle_packet(const net::Packet& packet);
  void touch(std::uint64_t key);

  sim::Simulator& sim_;
  net::Network& network_;
  CacheConfig config_;
  NodeId node_;

  // LRU: most recent at front.
  std::list<std::uint64_t> lru_;
  struct Entry {
    std::uint64_t value;
    std::list<std::uint64_t>::iterator lru_pos;
  };
  std::unordered_map<std::uint64_t, Entry> map_;
  CacheStats stats_;
};

}  // namespace lnic::kvstore
