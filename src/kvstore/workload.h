// Transactional workload generators for the NIC-resident store: the six
// standard YCSB mixes (A-F) and a TPC-C-lite new-order mix, both driven
// by loadgen:: Zipf popularity so contention is a knob (zipf_s = 0 is
// uniform; 0.99 concentrates traffic on a few hot keys).
//
// Generators are pure request factories: next() draws one TxnRequest
// from seeded RNG streams, and populate() pre-seeds the store's tree
// directly (no simulated time). Arrival pacing is the caller's business
// (the bench uses loadgen::ArrivalSpec::poisson).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "kvstore/txn.h"
#include "loadgen/popularity.h"

namespace lnic::kvstore {

enum class YcsbMix : std::uint8_t { kA, kB, kC, kD, kE, kF };
const char* to_string(YcsbMix mix);

struct YcsbConfig {
  YcsbMix mix = YcsbMix::kA;
  /// Pre-loaded record count; must be a power of two (the key scrambler
  /// multiplies ranks by an odd constant mod records).
  std::size_t records = 1 << 14;
  std::size_t ops_per_txn = 4;
  double zipf_s = 0.99;
  std::uint16_t max_scan_len = 16;
  std::uint64_t seed = 1;
};

/// YCSB core mixes over a scrambled integer keyspace:
///   A 50% read / 50% update        B 95% read / 5% update
///   C 100% read                    D 95% read-latest / 5% insert
///   E 95% scan / 5% insert         F 50% read / 50% read-modify-write
/// Mixes A/B/C/F scramble Zipf ranks through an odd-multiplier bijection
/// so hot keys scatter across the tree; D/E keep identity keys so
/// "latest" reads and range scans are meaningful.
class YcsbWorkload {
 public:
  explicit YcsbWorkload(YcsbConfig config);

  /// Loads the initial records straight into the tree (no sim time).
  void populate(TxnStore* store);

  /// Draws the next multi-op transaction of the configured mix.
  TxnRequest next();

  const YcsbConfig& config() const { return config_; }

 private:
  Key key_for(std::size_t rank) const;
  TxnOp next_op();

  YcsbConfig config_;
  loadgen::ZipfSelector zipf_;
  Rng rng_;
  std::uint64_t insert_cursor_;  // next key for D/E inserts
};

// ------------------------------------------------------------ TPC-C-lite

struct TpccLiteConfig {
  /// Contention knob: district next-order rows are per-(warehouse,
  /// district), so fewer warehouses concentrate RMW traffic.
  std::uint32_t warehouses = 1;
  std::uint32_t districts_per_wh = 10;
  std::size_t items = 1 << 12;
  double zipf_s = 0.8;  // item popularity skew
  std::uint64_t seed = 1;
};

/// TPC-C new-order, reduced to its KV skeleton: one RMW of the
/// district's next-order-id row (the classic hot spot), 5-15 item reads
/// with Zipf-popular items each paired with a stock RMW in the home
/// warehouse, and one order-row insert.
class TpccLiteWorkload {
 public:
  explicit TpccLiteWorkload(TpccLiteConfig config);

  void populate(TxnStore* store);
  TxnRequest next_order();

  const TpccLiteConfig& config() const { return config_; }

  // Table tags in the top key byte keep the tables disjoint in one tree.
  static Key district_key(std::uint32_t wh, std::uint32_t district) {
    return (1ull << 56) | (static_cast<Key>(wh) << 8) | district;
  }
  static Key item_key(std::size_t item) { return (2ull << 56) | item; }
  static Key stock_key(std::uint32_t wh, std::size_t item) {
    return (3ull << 56) | (static_cast<Key>(wh) << 24) | item;
  }
  static Key order_key(std::uint64_t seq) { return (4ull << 56) | seq; }

 private:
  TpccLiteConfig config_;
  loadgen::ZipfSelector zipf_;
  Rng rng_;
  std::uint64_t order_cursor_ = 0;
};

}  // namespace lnic::kvstore
