#include "kvstore/workload.h"

#include <algorithm>

namespace lnic::kvstore {

const char* to_string(YcsbMix mix) {
  switch (mix) {
    case YcsbMix::kA: return "A";
    case YcsbMix::kB: return "B";
    case YcsbMix::kC: return "C";
    case YcsbMix::kD: return "D";
    case YcsbMix::kE: return "E";
    case YcsbMix::kF: return "F";
  }
  return "?";
}

YcsbWorkload::YcsbWorkload(YcsbConfig config)
    : config_(config),
      zipf_(config.records, config.zipf_s, config.seed),
      rng_(config.seed ^ 0xBADC0FFEE0DDF00Dull),
      insert_cursor_(config.records) {}

Key YcsbWorkload::key_for(std::size_t rank) const {
  switch (config_.mix) {
    case YcsbMix::kD:
    case YcsbMix::kE:
      return rank;  // identity: "latest" and ranges must be meaningful
    default:
      // Odd-multiplier bijection mod the (power-of-two) record count:
      // Zipf-hot ranks scatter across the key space and the tree.
      return (rank * 0x9E3779B1ull) & (config_.records - 1);
  }
}

void YcsbWorkload::populate(TxnStore* store) {
  Rng loader(config_.seed ^ 0x5EEDED5EEDED5EEDull);
  for (std::size_t rank = 0; rank < config_.records; ++rank) {
    store->load(key_for(rank), loader.next_u64());
  }
}

TxnOp YcsbWorkload::next_op() {
  const std::size_t rank = zipf_.sample();
  const double roll = rng_.next_double();
  TxnOp op;
  switch (config_.mix) {
    case YcsbMix::kA:
      op.kind = roll < 0.5 ? OpKind::kRead : OpKind::kWrite;
      op.key = key_for(rank);
      break;
    case YcsbMix::kB:
      op.kind = roll < 0.95 ? OpKind::kRead : OpKind::kWrite;
      op.key = key_for(rank);
      break;
    case YcsbMix::kC:
      op.kind = OpKind::kRead;
      op.key = key_for(rank);
      break;
    case YcsbMix::kD:
      if (roll < 0.95) {
        // Read-latest: Zipf rank 0 is the most recent insert.
        op.kind = OpKind::kRead;
        const std::uint64_t newest = insert_cursor_ - 1;
        op.key = newest - std::min<std::uint64_t>(rank, newest);
      } else {
        op.kind = OpKind::kInsert;
        op.key = insert_cursor_++;
      }
      break;
    case YcsbMix::kE:
      if (roll < 0.95) {
        op.kind = OpKind::kScan;
        op.key = key_for(rank);
        op.scan_len = static_cast<std::uint16_t>(
            1 + rng_.next_below(config_.max_scan_len));
      } else {
        op.kind = OpKind::kInsert;
        op.key = insert_cursor_++;
      }
      break;
    case YcsbMix::kF:
      op.kind = roll < 0.5 ? OpKind::kRead : OpKind::kRmw;
      op.key = key_for(rank);
      break;
  }
  if (op.kind == OpKind::kWrite || op.kind == OpKind::kInsert) {
    op.value = rng_.next_u64();
  }
  return op;
}

TxnRequest YcsbWorkload::next() {
  TxnRequest req;
  req.ops.reserve(config_.ops_per_txn);
  for (std::size_t i = 0; i < config_.ops_per_txn; ++i) {
    req.ops.push_back(next_op());
  }
  return req;
}

// ------------------------------------------------------------ TPC-C-lite

TpccLiteWorkload::TpccLiteWorkload(TpccLiteConfig config)
    : config_(config),
      zipf_(config.items, config.zipf_s, config.seed ^ 0x7C0C7C0C7C0C7C0Cull),
      rng_(config.seed ^ 0x0DDC0DE50DDC0DE5ull) {}

void TpccLiteWorkload::populate(TxnStore* store) {
  for (std::uint32_t w = 0; w < config_.warehouses; ++w) {
    for (std::uint32_t d = 0; d < config_.districts_per_wh; ++d) {
      store->load(district_key(w, d), 1);  // next_o_id starts at 1
    }
  }
  Rng loader(config_.seed ^ 0x57C0CED57C0CED57ull);
  for (std::size_t i = 0; i < config_.items; ++i) {
    store->load(item_key(i), loader.next_u64());
    for (std::uint32_t w = 0; w < config_.warehouses; ++w) {
      store->load(stock_key(w, i), 100);  // initial stock quantity
    }
  }
}

TxnRequest TpccLiteWorkload::next_order() {
  TxnRequest req;
  const std::uint32_t w =
      static_cast<std::uint32_t>(rng_.next_below(config_.warehouses));
  const std::uint32_t d =
      static_cast<std::uint32_t>(rng_.next_below(config_.districts_per_wh));
  // The hot spot: allocate the order id from the district row.
  req.ops.push_back({OpKind::kRmw, district_key(w, d), 1, 0});
  const std::size_t n_items = 5 + rng_.next_below(11);  // 5..15 lines
  for (std::size_t line = 0; line < n_items; ++line) {
    const std::size_t item = zipf_.sample();
    req.ops.push_back({OpKind::kRead, item_key(item), 0, 0});
    req.ops.push_back({OpKind::kRmw, stock_key(w, item), 1, 0});
  }
  req.ops.push_back(
      {OpKind::kInsert, order_key(order_cursor_++), rng_.next_u64(), 0});
  return req;
}

}  // namespace lnic::kvstore
