// Order-configurable B+-tree index over a simulated host-memory page
// pool, plus the bounded NIC-resident node cache that fronts it
// (SmartOffloading: "a B+-tree index that is maintained in memory
// servers and cached in their SmartNICs").
//
// The tree itself is the authoritative structure: pages live in a dense
// pool (`PageId` = slot index) standing in for host DRAM, and every
// operation reports which pages it visited (`path_for`/`scan_path`) and,
// for mutations, which pages it dirtied or freed (`last_dirty`/
// `last_freed`). The transactional store layers timing on top: a visited
// page that hits the NodeCache costs NIC-local service time, a miss
// costs a one-sided RDMA read of `node_bytes()` from the host, and a
// commit writes dirty pages back and *invalidates* the NIC's cached
// copies (write-invalidate coherence — the next reader re-fetches).
//
// Structure invariants (checked by check_invariants, exercised by
// tests/btree_test.cc): all leaves at the same depth, nodes except the
// root at least half full, keys strictly ordered within and across
// separators, and the leaf chain enumerating exactly the in-order keys.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace lnic::kvstore {

using Key = std::uint64_t;
using Value = std::uint64_t;

/// Index of a page (tree node) in the simulated host-memory pool.
using PageId = std::uint32_t;
constexpr PageId kInvalidPage = 0xFFFFFFFFu;

struct BTreeConfig {
  /// Maximum keys per node (fanout - 1 for internal nodes). Minimum
  /// occupancy for non-root nodes is order / 2.
  std::uint32_t order = 32;
};

class BPlusTree {
 public:
  explicit BPlusTree(BTreeConfig config = {});

  /// Point lookup; no bookkeeping side effects.
  bool get(Key key, Value* out) const;
  bool contains(Key key) const { return get(key, nullptr); }

  /// Insert-or-update. Returns true when the key was newly inserted.
  /// Records dirty pages (the leaf plus any pages split into existence,
  /// plus ancestors that absorbed separators).
  bool put(Key key, Value value);

  /// Removes the key; returns false if absent. Records dirty and freed
  /// pages (merges release pages back to the pool's free list).
  bool erase(Key key);

  /// Up to `count` key/value pairs in key order starting at the first
  /// key >= start. Returns the number produced; `out` may be null when
  /// only the count matters.
  std::size_t scan(Key start, std::size_t count,
                   std::vector<std::pair<Key, Value>>* out) const;

  /// Root-to-leaf page path a lookup of `key` visits.
  void path_for(Key key, std::vector<PageId>* out) const;
  /// Pages a scan touches: the descent path plus the chained leaves the
  /// scan walks through.
  void scan_path(Key start, std::size_t count,
                 std::vector<PageId>* out) const;

  /// Pages modified / freed by the last put/erase (cleared per call).
  const std::vector<PageId>& last_dirty() const { return dirty_; }
  const std::vector<PageId>& last_freed() const { return freed_; }

  std::size_t size() const { return size_; }
  std::uint32_t height() const { return height_; }
  std::size_t node_count() const { return pool_.size() - free_.size(); }
  std::uint32_t order() const { return config_.order; }

  /// On-the-wire size of one serialized node: 16-byte header plus
  /// `order` key slots and `order + 1` pointer/value slots of 8 bytes.
  Bytes node_bytes() const {
    return 16 + 8ull * config_.order + 8ull * (config_.order + 1);
  }

  /// Verifies every structural invariant; on failure returns false and
  /// (when `why` is non-null) a description of the first violation.
  bool check_invariants(std::string* why = nullptr) const;

 private:
  struct Node {
    bool leaf = true;
    std::vector<Key> keys;
    // Leaves: values[i] pairs with keys[i]. Internal: children has
    // keys.size() + 1 entries; child[i] holds keys < keys[i].
    std::vector<Value> values;
    std::vector<PageId> children;
    PageId next = kInvalidPage;  // leaf chain
  };

  PageId allocate(bool leaf);
  void release(PageId id);
  Node& node(PageId id) { return pool_[id]; }
  const Node& node(PageId id) const { return pool_[id]; }

  /// Leaf that contains (or would contain) `key`; appends the descent
  /// path (including the leaf) to `path` with per-level child indices
  /// in `slots` when non-null.
  PageId descend(Key key, std::vector<PageId>* path,
                 std::vector<std::uint32_t>* slots) const;

  void split_up(std::vector<PageId>& path, std::vector<std::uint32_t>& slots);
  void rebalance_up(std::vector<PageId>& path,
                    std::vector<std::uint32_t>& slots);

  std::uint32_t min_keys() const { return config_.order / 2; }

  BTreeConfig config_;
  std::vector<Node> pool_;
  std::vector<PageId> free_;
  PageId root_;
  std::uint32_t height_ = 1;  // levels including the leaf level
  std::size_t size_ = 0;
  std::vector<PageId> dirty_;
  std::vector<PageId> freed_;
};

// ------------------------------------------------------------ NodeCache

struct NodeCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;

  double hit_ratio() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Bounded LRU of NIC-resident tree pages. Capacity 0 models the
/// host-backend baseline: every access misses and nothing is retained.
class NodeCache {
 public:
  explicit NodeCache(std::size_t capacity) : capacity_(capacity) {}

  /// True (and LRU-touch) when `id` is resident; false counts a miss —
  /// the caller fetches the page and insert()s it.
  bool access(PageId id);

  /// Installs a fetched page, evicting the LRU page when full. No-op at
  /// capacity 0 or when already resident.
  void insert(PageId id);

  /// Drops a page (coherence: called when a committed writeback dirties
  /// or frees it). Returns true when a copy was resident.
  bool invalidate(PageId id);

  bool resident(PageId id) const { return map_.count(id) != 0; }
  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  const NodeCacheStats& stats() const { return stats_; }

 private:
  std::size_t capacity_;
  std::list<PageId> lru_;  // most recent at front
  std::unordered_map<PageId, std::list<PageId>::iterator> map_;
  NodeCacheStats stats_;
};

}  // namespace lnic::kvstore
