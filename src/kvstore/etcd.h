// etcd-like replicated key-value store on Raft (§6.1.1).
//
// The serverless framework keeps lambda placement, scaling and load-
// balancing state here ("number of active lambdas, their placement and
// load balancing policies", §6.1.1) and the gateway watches it to route
// requests. Each Raft node applies committed commands to its local map;
// puts go through the current leader; watches fire on apply at the node
// that registered them.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "raft/raft.h"

namespace lnic::kvstore {

/// Fires after a put/delete on a watched key prefix commits.
using WatchFn =
    std::function<void(const std::string& key, const std::string& value)>;

class EtcdStore {
 public:
  /// Builds a `size`-node Raft cluster over the given simulator.
  EtcdStore(sim::Simulator& sim, std::uint32_t size,
            raft::RaftConfig config = {});

  /// Must run (and the simulator must advance past an election) before
  /// puts succeed.
  void start() { cluster_.start(); }

  /// Proposes a put through the leader. Fails when no leader is known;
  /// callers retry after advancing the simulation (as real etcd clients
  /// retry after leader changes).
  Status put(const std::string& key, const std::string& value);
  Status remove(const std::string& key);

  /// Reads the applied state at node `from` (default: leader if any,
  /// else node 0).
  std::optional<std::string> get(const std::string& key,
                                 std::optional<raft::NodeIndex> from = {}) const;

  /// All applied keys with the given prefix, at the same read node.
  std::vector<std::pair<std::string, std::string>> list(
      const std::string& prefix,
      std::optional<raft::NodeIndex> from = {}) const;

  /// Watches a key prefix; fires on every committed change (the paper's
  /// Watch Service, Fig. 5).
  void watch(const std::string& prefix, WatchFn fn);

  raft::Cluster& cluster() { return cluster_; }

 private:
  void apply(raft::NodeIndex node, const raft::Command& command);
  raft::NodeIndex read_node(std::optional<raft::NodeIndex> from) const;

  mutable raft::Cluster cluster_;
  std::vector<std::map<std::string, std::string>> state_;  // per node
  std::vector<std::pair<std::string, WatchFn>> watches_;
};

}  // namespace lnic::kvstore
