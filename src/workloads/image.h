// Minimal RGBA image library for the image-transformer workload (§6.2c).
// Provides deterministic test-pattern generation, RGBA->grayscale
// reference conversion (the same integer luma the NIC intrinsic uses),
// and byte (de)serialization for multi-packet transfer.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace lnic::workloads {

struct Image {
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  std::vector<std::uint8_t> rgba;  // 4 bytes per pixel, row-major

  Bytes byte_size() const { return rgba.size(); }
  std::uint64_t pixels() const {
    return static_cast<std::uint64_t>(width) * height;
  }
};

/// Deterministic multi-gradient test pattern.
Image make_test_image(std::uint32_t width, std::uint32_t height,
                      std::uint32_t seed = 1);

/// Reference conversion: y = (77 R + 150 G + 29 B) >> 8 per pixel —
/// must agree byte-for-byte with the microc kGrayscale intrinsic.
std::vector<std::uint8_t> to_grayscale(const Image& image);

}  // namespace lnic::workloads
