#include "workloads/lambdas.h"

#include <cassert>

#include "microc/builder.h"
#include "microc/frontend.h"

namespace lnic::workloads {

using microc::AccessPattern;
using microc::FunctionBuilder;
using microc::MemScope;
using microc::PlacementHint;
using microc::ProgramBuilder;
using microc::Reg;

namespace {

// Register-resident mixing rounds: the "business logic" bulk of each
// lambda. Placement-independent (no memory traffic), so code size scales
// with the unroll factor while stratification only affects real objects.
Reg emit_mix_rounds(FunctionBuilder& fb, Reg seed, int rounds,
                    std::uint64_t multiplier) {
  Reg c13 = fb.const_u64(13);
  Reg acc = seed;
  for (int i = 0; i < rounds; ++i) {
    Reg mixed = fb.mul_imm(acc, static_cast<std::int64_t>(multiplier));
    Reg shifted = fb.shr(acc, c13);
    Reg x = fb.xor_(mixed, shifted);
    acc = fb.add_imm(x, i + 1);
  }
  return acc;
}

// Dead debug scaffolding users leave behind; DCE removes it.
void emit_dead_debug(FunctionBuilder& fb, int rounds) {
  Reg v = fb.const_u64(0xDEB6);
  for (int i = 0; i < rounds; ++i) v = fb.add_imm(v, i);
}

// The duplicated boilerplate helper body. Every copy must be emitted by
// this one routine so the bodies are literally identical (register
// allocation included) and lambda coalescing can merge them.
std::uint32_t emit_boilerplate_helper(ProgramBuilder& pb,
                                      const std::string& name, int rounds,
                                      std::uint64_t multiplier) {
  auto fb = pb.function(name, 1);
  Reg c7 = fb.const_u64(7);
  Reg acc = fb.arg(0);
  for (int i = 0; i < rounds; ++i) {
    Reg m = fb.mul_imm(acc, static_cast<std::int64_t>(multiplier));
    Reg s = fb.shr(acc, c7);
    acc = fb.xor_(m, s);
  }
  fb.ret(acc);
  return fb.finish();
}

std::string make_page(std::uint32_t index) {
  std::string page;
  const std::string stamp =
      "LNIC-PAGE-" + std::to_string(index) + " interactive serverless ";
  while (page.size() < kWebPageBytes) page += stamp;
  page.resize(kWebPageBytes);
  return page;
}

void put_word(std::vector<std::uint8_t>& out, std::size_t at,
              std::uint64_t v) {
  if (out.size() < at + 8) out.resize(at + 8, 0);
  for (int i = 0; i < 8; ++i) {
    out[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

}  // namespace

WorkloadBundle make_standard_workloads(Scale scale, std::uint32_t image_width,
                                       std::uint32_t image_height) {
  assert(scale.image_tiles > 0);
  WorkloadBundle bundle;
  bundle.image_width = image_width;
  bundle.image_height = image_height;

  ProgramBuilder pb("standard-workloads");

  // ---- Web content object (read-mostly; stratifies into CTM). ----
  std::vector<std::uint8_t> content_bytes;
  for (std::uint32_t p = 0; p < kWebPageCount; ++p) {
    const std::string page = make_page(p);
    bundle.web_pages.push_back(page);
    content_bytes.insert(content_bytes.end(), page.begin(), page.end());
  }
  const auto content =
      pb.object("web_content", kWebPageCount * kWebPageBytes, MemScope::kGlobal,
                AccessPattern::kReadMostly, PlacementHint::kHot);
  pb.program().objects[content].initial_data = std::move(content_bytes);

  // ---- Image objects (large; stratify into IMEM, §6.4). ----
  const Bytes image_bytes =
      static_cast<Bytes>(image_width) * image_height * 4;
  const auto image_buf =
      pb.object("image_buf", image_bytes, MemScope::kGlobal,
                AccessPattern::kReadWrite);
  const auto gray_buf =
      pb.object("gray_buf", image_bytes / 4, MemScope::kGlobal,
                AccessPattern::kWriteMostly);
  // Per-lambda statistics counters (persist across runs, §4.1).
  const auto stats_obj = pb.object("request_counters", 64, MemScope::kGlobal,
                                   AccessPattern::kReadWrite,
                                   PlacementHint::kHot);

  // ---- Duplicated boilerplate helpers (coalescing fodder, §6.4). ----
  const auto reply_fmt_web =
      emit_boilerplate_helper(pb, "reply_fmt_web", scale.helper_rounds,
                              0x9E3779B97F4A7C15ull);
  const auto reply_fmt_img =
      emit_boilerplate_helper(pb, "reply_fmt_img", scale.helper_rounds,
                              0x9E3779B97F4A7C15ull);
  const auto query_fmt_get =
      emit_boilerplate_helper(pb, "query_fmt_get", scale.helper_rounds,
                              0xC2B2AE3D27D4EB4Full);
  const auto query_fmt_set =
      emit_boilerplate_helper(pb, "query_fmt_set", scale.helper_rounds,
                              0xC2B2AE3D27D4EB4Full);

  // ---- a. Web server (Listing 2's shape). ----
  {
    auto fb = pb.function("web_server", 0);
    emit_dead_debug(fb, scale.dead_rounds);
    Reg op = fb.load_hdr(microc::kHdrOp);
    Reg mask = fb.const_u64(kWebPageCount - 1);
    Reg page = fb.and_(op, mask);
    Reg off = fb.mul_imm(page, kWebPageBytes);
    // Bump the per-lambda request counter (global state).
    Reg zero = fb.const_u64(0);
    Reg count = fb.load(stats_obj, zero);
    fb.store(stats_obj, zero, fb.add_imm(count, 1));
    // Content integrity check + response personalization rounds.
    Reg page_len = fb.const_u64(kWebPageBytes);
    Reg digest = fb.hash(content, off, page_len);
    Reg mixed = emit_mix_rounds(fb, digest, scale.web_mix_rounds,
                                0x9DDFEA08EB382D69ull);
    Reg tag = fb.call(reply_fmt_web, {mixed});
    fb.resp_word(tag);
    fb.resp_mem(content, off, page_len);
    fb.ret_imm(p4::kReturnForward);
    fb.finish();
  }

  // ---- b1. Key-value client, GET-heavy (§6.2b). ----
  {
    auto fb = pb.function("kv_client_get", 0);
    emit_dead_debug(fb, scale.dead_rounds);
    Reg key = fb.load_hdr(microc::kHdrKey);
    Reg derived = emit_mix_rounds(fb, key, scale.kv_mix_rounds,
                                  0xC2B2AE3D27D4EB4Full);
    Reg query_tag = fb.call(query_fmt_get, {derived});
    Reg zero = fb.const_u64(0);
    Reg c8 = fb.const_u64(8);
    Reg count = fb.load(stats_obj, c8);
    fb.store(stats_obj, c8, fb.add_imm(count, 1));
    Reg reply = fb.ext_call(/*GET=*/0, key, zero);
    Reg post = emit_mix_rounds(fb, reply, scale.kv_post_rounds,
                               0x2545F4914F6CDD1Dull);
    Reg customized = fb.xor_(post, query_tag);
    fb.resp_word(reply);       // the raw cached value
    fb.resp_word(customized);  // the customized payload
    fb.ret_imm(p4::kReturnForward);
    fb.finish();
  }

  // ---- b2. Key-value client, SET-heavy. ----
  {
    auto fb = pb.function("kv_client_set", 0);
    emit_dead_debug(fb, scale.dead_rounds);
    Reg key = fb.load_hdr(microc::kHdrKey);
    Reg value = fb.load_hdr(microc::kHdrValue);
    Reg derived = emit_mix_rounds(fb, value, scale.kv_mix_rounds,
                                  0xC2B2AE3D27D4EB4Full);
    Reg query_tag = fb.call(query_fmt_set, {derived});
    Reg c16 = fb.const_u64(16);
    Reg count = fb.load(stats_obj, c16);
    fb.store(stats_obj, c16, fb.add_imm(count, 1));
    Reg reply = fb.ext_call(/*SET=*/1, key, value);
    Reg post = emit_mix_rounds(fb, reply, scale.kv_post_rounds,
                               0x2545F4914F6CDD1Dull);
    Reg customized = fb.xor_(post, query_tag);
    fb.resp_word(reply);
    fb.resp_word(customized);
    fb.ret_imm(p4::kReturnForward);
    fb.finish();
  }

  // ---- c. Image transformer (RGBA -> grayscale, §6.2c). ----
  {
    auto fb = pb.function("image_transformer", 0);
    emit_dead_debug(fb, scale.dead_rounds);
    Reg w = fb.load_hdr(microc::kHdrImageWidth);
    Reg h = fb.load_hdr(microc::kHdrImageHeight);
    Reg pixels = fb.mul(w, h);
    Reg zero = fb.const_u64(0);
    Reg c24 = fb.const_u64(24);
    Reg count = fb.load(stats_obj, c24);
    fb.store(stats_obj, c24, fb.add_imm(count, 1));
    // Pull the pixel payload (after the 8-byte dimensions word) out of
    // the RDMA-staged body into lambda memory.
    Reg c2 = fb.const_u64(2);
    Reg rgba_len = fb.shl(pixels, c2);
    Reg c8 = fb.const_u64(8);
    fb.body_copy(image_buf, zero, c8, rgba_len);
    // Tiled conversion across the NIC's bulk engines.
    Reg tiles = fb.const_u64(static_cast<std::uint64_t>(scale.image_tiles));
    Reg tile_px = fb.divu(pixels, tiles);
    for (int t = 0; t < scale.image_tiles; ++t) {
      Reg t_c = fb.const_u64(static_cast<std::uint64_t>(t));
      Reg dst = fb.mul(tile_px, t_c);
      Reg src = fb.shl(dst, c2);
      fb.grayscale(gray_buf, dst, image_buf, src, tile_px);
    }
    Reg rem = fb.remu(pixels, tiles);
    Reg base = fb.mul(tile_px, tiles);
    Reg rsrc = fb.shl(base, c2);
    fb.grayscale(gray_buf, base, image_buf, rsrc, rem);
    // Post-processing rounds over a sample digest + shared reply helper.
    Reg sample_len = fb.const_u64(4096);
    Reg digest = fb.hash(gray_buf, zero, sample_len);
    Reg mixed = emit_mix_rounds(fb, digest, scale.image_mix_rounds,
                                0x9DDFEA08EB382D69ull);
    fb.call(reply_fmt_img, {mixed});
    fb.resp_mem(gray_buf, zero, pixels);
    fb.ret_imm(p4::kReturnForward);
    fb.finish();
  }

  bundle.lambdas = pb.take();

  bundle.spec.tables.push_back(p4::make_lambda_table("web_server", kWebServerId));
  bundle.spec.tables.push_back(p4::make_lambda_table("kv_client_get", kKvGetId));
  bundle.spec.tables.push_back(p4::make_lambda_table("kv_client_set", kKvSetId));
  bundle.spec.tables.push_back(
      p4::make_lambda_table("image_transformer", kImageId));
  bundle.spec.tables.push_back(p4::make_route_table("web_server", kWebServerId));
  bundle.spec.tables.push_back(p4::make_route_table("kv_client_get", kKvGetId));
  bundle.spec.tables.push_back(p4::make_route_table("kv_client_set", kKvSetId));
  bundle.spec.tables.push_back(
      p4::make_route_table("image_transformer", kImageId));
  return bundle;
}

WorkloadBundle make_nic_kv_store(std::uint32_t slots_log2) {
  assert(slots_log2 >= 2 && slots_log2 <= 20);
  const std::uint64_t slots = 1ull << slots_log2;
  constexpr std::uint64_t kSlotBytes = 24;  // key(8) value(8) state(8)
  constexpr std::int64_t kMaxProbes = 32;

  WorkloadBundle bundle;
  ProgramBuilder pb("nic-kv-store");
  const auto table =
      pb.object("kv_table", slots * kSlotBytes, MemScope::kGlobal,
                AccessPattern::kReadWrite);

  auto fb = pb.function("kv_store", 0);
  // Entry block: hash the key, set up the probe cursor.
  Reg op = fb.load_hdr(microc::kHdrOp);
  Reg key = fb.load_hdr(microc::kHdrKey);
  Reg value = fb.load_hdr(microc::kHdrValue);
  // Fibonacci hashing, then mask to the table.
  Reg h = fb.mul_imm(key, static_cast<std::int64_t>(0x9E3779B97F4A7C15ull));
  Reg c29 = fb.const_u64(64 - slots_log2);
  Reg idx0 = fb.shr(h, c29);
  // Probe state lives in registers carried across blocks.
  Reg idx = fb.mov(idx0);
  Reg probes = fb.const_u64(0);
  Reg mask = fb.const_u64(slots - 1);
  Reg one = fb.const_u64(1);
  Reg is_set = fb.cmp_eq_imm(op, 1);

  const auto probe = fb.block();     // loop header
  const auto check_key = fb.block();
  const auto found = fb.block();
  const auto empty = fb.block();
  const auto next = fb.block();
  const auto exhausted = fb.block();
  fb.select_block(0);
  fb.br(probe);

  // probe: if probes >= kMaxProbes -> exhausted; else inspect the slot.
  fb.select_block(probe);
  Reg limit = fb.const_u64(kMaxProbes);
  Reg keep_going = fb.cmp_ltu(probes, limit);
  fb.br_if(keep_going, check_key, exhausted);

  // check_key: state==0 -> empty; key match -> found; else next.
  fb.select_block(check_key);
  Reg base = fb.mul_imm(idx, kSlotBytes);
  Reg state = fb.load(table, base, 16);
  const auto have_entry = fb.block();
  fb.select_block(check_key);
  fb.br_if(state, have_entry, empty);
  fb.select_block(have_entry);
  Reg slot_key = fb.load(table, base, 0);
  Reg match = fb.cmp_eq(slot_key, key);
  fb.br_if(match, found, next);

  // next: advance the cursor and loop.
  fb.select_block(next);
  Reg advanced = fb.and_(fb.add(idx, one), mask);
  fb.mov_to(idx, advanced);
  Reg bumped = fb.add(probes, one);
  fb.mov_to(probes, bumped);
  fb.br(probe);

  // found: GET returns the stored value; SET overwrites it.
  fb.select_block(found);
  Reg fbase = fb.mul_imm(idx, kSlotBytes);
  const auto fset = fb.block();
  const auto fget = fb.block();
  fb.select_block(found);
  fb.br_if(is_set, fset, fget);
  fb.select_block(fset);
  fb.store(table, fbase, value, 8);
  fb.resp_word(value);
  fb.ret_imm(p4::kReturnForward);
  fb.select_block(fget);
  Reg stored = fb.load(table, fbase, 8);
  fb.resp_word(stored);
  fb.ret_imm(p4::kReturnForward);

  // empty: SET inserts here; GET misses (returns 0).
  fb.select_block(empty);
  Reg ebase = fb.mul_imm(idx, kSlotBytes);
  const auto eset = fb.block();
  const auto emiss = fb.block();
  fb.select_block(empty);
  fb.br_if(is_set, eset, emiss);
  fb.select_block(eset);
  fb.store(table, ebase, key, 0);
  fb.store(table, ebase, value, 8);
  fb.store(table, ebase, one, 16);
  fb.resp_word(value);
  fb.ret_imm(p4::kReturnForward);
  fb.select_block(emiss);
  Reg zero = fb.const_u64(0);
  fb.resp_word(zero);
  fb.ret_imm(p4::kReturnForward);

  // exhausted: probe budget spent — miss for GET, failure for SET.
  fb.select_block(exhausted);
  Reg zero2 = fb.const_u64(0);
  fb.resp_word(zero2);
  fb.ret_imm(2);
  fb.finish();

  bundle.lambdas = pb.take();
  bundle.spec.tables.push_back(p4::make_lambda_table("kv_store", kNicKvStoreId));
  bundle.spec.tables.push_back(p4::make_route_table("kv_store", kNicKvStoreId));
  return bundle;
}

WorkloadBundle make_stream_aggregator(std::uint32_t sensors_log2) {
  assert(sensors_log2 >= 1 && sensors_log2 <= 16);
  const std::uint64_t sensors = 1ull << sensors_log2;
  // Per-sensor slab: 8 samples (64 B) + cursor (8 B) + count (8 B).
  const std::uint64_t slab = 80;
  const std::string source =
      "global u8 windows[" + std::to_string(sensors * slab) + "];\n"
      "int stream_aggregate() {\n"
      "  var sensor = hdr(key) & " + std::to_string(sensors - 1) + ";\n"
      "  var sample = hdr(value);\n"
      "  var base = sensor * 80;\n"
      "  var cursor = load8(windows, base + 64);\n"
      "  var count = load8(windows, base + 72);\n"
      "  store8(windows, base + cursor * 8, sample);\n"
      "  cursor = (cursor + 1) % 8;\n"
      "  store8(windows, base + 64, cursor);\n"
      "  if (count < 8) { count = count + 1; store8(windows, base + 72, count); }\n"
      "  var i = 0;\n"
      "  var sum = 0;\n"
      "  var mn = 0;\n"
      "  var mx = 0;\n"
      "  var first = 1;\n"
      "  while (i < count) {\n"
      "    var v = load8(windows, base + i * 8);\n"
      "    sum = sum + v;\n"
      "    if (first == 1) { mn = v; mx = v; first = 0; }\n"
      "    if (v < mn) { mn = v; }\n"
      "    if (v > mx) { mx = v; }\n"
      "    i = i + 1;\n"
      "  }\n"
      "  resp_word(sum);\n"
      "  resp_word(mn);\n"
      "  resp_word(mx);\n"
      "  resp_word(count);\n"
      "  return 0;\n"
      "}\n";
  auto program = microc::compile_microc(source, "stream-aggregator");
  assert(program.ok());
  WorkloadBundle bundle;
  bundle.lambdas = std::move(program).value();
  bundle.spec.tables.push_back(
      p4::make_lambda_table("stream_aggregate", kStreamId));
  bundle.spec.tables.push_back(
      p4::make_route_table("stream_aggregate", kStreamId));
  return bundle;
}

WorkloadBundle make_web_farm(std::uint32_t count, Scale scale) {
  WorkloadBundle bundle;
  ProgramBuilder pb("web-farm");
  for (std::uint32_t n = 0; n < count; ++n) {
    // Distinct content per lambda (different tenants' pages).
    std::vector<std::uint8_t> content_bytes;
    for (std::uint32_t p = 0; p < kWebPageCount; ++p) {
      std::string page = make_page(n * kWebPageCount + p);
      if (n == 0) bundle.web_pages.push_back(page);
      content_bytes.insert(content_bytes.end(), page.begin(), page.end());
    }
    const auto content = pb.object(
        "web_content_" + std::to_string(n), kWebPageCount * kWebPageBytes,
        MemScope::kGlobal, AccessPattern::kReadMostly, PlacementHint::kHot);
    pb.program().objects[content].initial_data = std::move(content_bytes);

    const std::string name = "web_server_" + std::to_string(n);
    auto fb = pb.function(name, 0);
    emit_dead_debug(fb, scale.dead_rounds);
    Reg op = fb.load_hdr(microc::kHdrOp);
    Reg mask = fb.const_u64(kWebPageCount - 1);
    Reg page = fb.and_(op, mask);
    Reg off = fb.mul_imm(page, kWebPageBytes);
    Reg page_len = fb.const_u64(kWebPageBytes);
    Reg digest = fb.hash(content, off, page_len);
    Reg mixed = emit_mix_rounds(fb, digest, scale.web_mix_rounds,
                                0x9DDFEA08EB382D69ull + n);
    fb.resp_word(mixed);
    fb.resp_mem(content, off, page_len);
    fb.ret_imm(p4::kReturnForward);
    fb.finish();

    const WorkloadId wid = n + 1;
    bundle.spec.tables.push_back(p4::make_lambda_table(name, wid));
    bundle.spec.tables.push_back(p4::make_route_table(name, wid));
  }
  bundle.lambdas = pb.take();
  return bundle;
}

const std::string& expected_web_page(const WorkloadBundle& bundle,
                                     std::uint64_t op) {
  return bundle.web_pages[op & (kWebPageCount - 1)];
}

std::vector<std::uint8_t> encode_web_request(std::uint64_t op) {
  std::vector<std::uint8_t> body;
  put_word(body, 0, op);
  return body;
}

std::vector<std::uint8_t> encode_kv_request(std::uint64_t key,
                                            std::uint64_t value) {
  std::vector<std::uint8_t> body;
  put_word(body, 0, 0);
  put_word(body, 8, key);
  put_word(body, 16, value);
  return body;
}

std::vector<std::uint8_t> encode_kv_store_request(std::uint64_t op,
                                                  std::uint64_t key,
                                                  std::uint64_t value) {
  std::vector<std::uint8_t> body;
  put_word(body, 0, op);
  put_word(body, 8, key);
  put_word(body, 16, value);
  return body;
}

std::vector<std::uint8_t> encode_image_request(
    std::uint32_t width, std::uint32_t height,
    const std::vector<std::uint8_t>& rgba) {
  std::vector<std::uint8_t> body;
  put_word(body, 0, static_cast<std::uint64_t>(width) |
                        (static_cast<std::uint64_t>(height) << 16));
  body.insert(body.end(), rgba.begin(), rgba.end());
  return body;
}

}  // namespace lnic::workloads
