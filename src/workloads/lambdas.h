// The paper's three benchmark lambdas (§6.2), written against the
// Match+Lambda abstraction exactly as a user would submit them:
//
//  a. web server      — returns a static page selected by the request,
//                       self-contained (content lives in lambda memory);
//  b. key-value client— two distinct lambdas (GET-heavy and SET-heavy)
//                       that derive keys, query the memcached-like cache
//                       server via kExtCall, and post-process replies;
//  c. image transformer— RGBA->grayscale over a multi-packet image that
//                       arrives via RDMA (D3).
//
// The builders intentionally duplicate boilerplate helper functions
// across lambdas (reply formatting in the web server and image
// transformer; query formatting in the two KV clients) and include a
// little dead debug code — this is the §6.4 optimizer fodder: lambda
// coalescing merges the helpers, DCE strips the debris, and memory
// stratification places the content/image/scratch objects.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "microc/ir.h"
#include "p4/p4.h"

namespace lnic::workloads {

constexpr WorkloadId kWebServerId = 1;
constexpr WorkloadId kKvGetId = 2;
constexpr WorkloadId kKvSetId = 3;
constexpr WorkloadId kImageId = 4;

constexpr std::uint32_t kWebPageCount = 4;
constexpr std::uint32_t kWebPageBytes = 1024;

/// Unroll factors controlling each lambda's static code size. The
/// defaults are calibrated so the four-lambda program lands near the
/// paper's reported 8,902-instruction naïve binary (Fig. 9).
struct Scale {
  int web_mix_rounds = 444;
  int kv_mix_rounds = 335;
  int kv_post_rounds = 200;
  int image_tiles = 32;
  int image_mix_rounds = 295;
  int helper_rounds = 65;    // size of each duplicated boilerplate helper
  int dead_rounds = 12;      // dead debug code per lambda
};

/// A compiled-ready workload set: the user lambdas plus the P4 match
/// spec pairing them (§4.1's Match+Lambda program, before compilation).
struct WorkloadBundle {
  microc::Program lambdas;
  p4::MatchSpec spec;
  std::uint32_t image_width = 512;
  std::uint32_t image_height = 512;
  std::vector<std::string> web_pages;  // ground truth for verification
};

/// Builds the standard four-lambda bundle the evaluation uses
/// (web server, KV GET client, KV SET client, image transformer).
WorkloadBundle make_standard_workloads(Scale scale = {},
                                       std::uint32_t image_width = 512,
                                       std::uint32_t image_height = 512);

constexpr WorkloadId kNicKvStoreId = 7;

/// §7 extension ("certain types of data stores ... can also benefit from
/// λ-NIC"): a NetCache-style key-value *store* served directly from NIC
/// memory — GET/SET against an open-addressing hash table in a global
/// object, no external server involved. Request encoding: op word 0
/// (0 = GET, 1 = SET), key word 1, value word 2 (encode_kv_request).
/// Response: one word (the value, or 0 on miss). `slots_log2` sizes the
/// table at 2^slots_log2 entries of 24 B.
WorkloadBundle make_nic_kv_store(std::uint32_t slots_log2 = 12);

constexpr WorkloadId kStreamId = 8;

/// Stream-processing aggregator (the intro's motivating workload class:
/// "workloads like stream processing benefit from high elasticity").
/// Each request carries (sensor=key, sample=value); the lambda keeps an
/// 8-sample sliding window per sensor in global memory and replies with
/// [sum, min, max, count] of the window. Authored in Micro-C *source*
/// and compiled through the frontend — the full Listing 1-2 path.
WorkloadBundle make_stream_aggregator(std::uint32_t sensors_log2 = 8);

/// Builds a bundle of `count` *distinct* web-server lambdas (different
/// content, same structure), workload IDs 1..count — the §6.3.2
/// contention experiment runs three of these concurrently. Function
/// names are "web_server_0" .. "web_server_<count-1>".
WorkloadBundle make_web_farm(std::uint32_t count, Scale scale = {});

/// The page the web server returns for request op `op`.
const std::string& expected_web_page(const WorkloadBundle& bundle,
                                     std::uint64_t op);

/// Encodes a web request body (op word selecting the page).
std::vector<std::uint8_t> encode_web_request(std::uint64_t op);
/// Encodes a KV request body (op, key, value words).
std::vector<std::uint8_t> encode_kv_request(std::uint64_t key,
                                            std::uint64_t value = 0);
/// Encodes a NIC-hosted KV store request (op 0 = GET, 1 = SET).
std::vector<std::uint8_t> encode_kv_store_request(std::uint64_t op,
                                                  std::uint64_t key,
                                                  std::uint64_t value = 0);
/// Encodes an image request body: dimensions word + raw RGBA bytes.
std::vector<std::uint8_t> encode_image_request(
    std::uint32_t width, std::uint32_t height,
    const std::vector<std::uint8_t>& rgba);

}  // namespace lnic::workloads
