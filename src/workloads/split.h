// Bundle splitting for heterogeneous placement: the workload manager
// carves a user's Match+Lambda bundle into per-backend sub-bundles (one
// per replica set the placement policy produced). Splitting operates on
// the match spec's action functions — each sub-bundle keeps the selected
// actions, every helper they transitively call, the memory objects that
// surviving code references, and the match/route table entries for the
// surviving workload IDs.
#pragma once

#include <string>
#include <vector>

#include "workloads/lambdas.h"

namespace lnic::workloads {

/// Action-function names referenced by the bundle's match spec (non-route
/// tables), in spec order, deduplicated.
std::vector<std::string> bundle_actions(const WorkloadBundle& bundle);

/// Restricts `bundle` to the given action functions. When `actions`
/// covers every action of the spec the bundle is returned unchanged, so
/// homogeneous deployments compile bit-identical firmware. Unknown names
/// are ignored; selecting none yields an empty spec.
WorkloadBundle split_bundle(const WorkloadBundle& bundle,
                            const std::vector<std::string>& actions);

}  // namespace lnic::workloads
