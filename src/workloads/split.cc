#include "workloads/split.h"

#include <algorithm>
#include <set>

namespace lnic::workloads {

namespace {

bool uses_obj(microc::Opcode op) {
  switch (op) {
    case microc::Opcode::kLoad:
    case microc::Opcode::kStore:
    case microc::Opcode::kRespMem:
    case microc::Opcode::kMemCpy:
    case microc::Opcode::kGrayscale:
    case microc::Opcode::kHash:
    case microc::Opcode::kBodyCopy:
      return true;
    default:
      return false;
  }
}

bool uses_obj2(microc::Opcode op) {
  return op == microc::Opcode::kMemCpy || op == microc::Opcode::kGrayscale;
}

}  // namespace

std::vector<std::string> bundle_actions(const WorkloadBundle& bundle) {
  std::vector<std::string> actions;
  for (const auto& table : bundle.spec.tables) {
    if (table.is_route_table) continue;
    for (const auto& entry : table.entries) {
      if (std::find(actions.begin(), actions.end(), entry.action_function) ==
          actions.end()) {
        actions.push_back(entry.action_function);
      }
    }
  }
  return actions;
}

WorkloadBundle split_bundle(const WorkloadBundle& bundle,
                            const std::vector<std::string>& actions) {
  const std::set<std::string> wanted(actions.begin(), actions.end());

  const auto all = bundle_actions(bundle);
  const bool keeps_all =
      std::all_of(all.begin(), all.end(), [&wanted](const std::string& a) {
        return wanted.count(a) > 0;
      });
  if (keeps_all) return bundle;  // bit-identical program for full sets

  // Workload IDs that survive (first key value of a matching entry).
  std::set<std::uint64_t> kept_ids;
  for (const auto& table : bundle.spec.tables) {
    if (table.is_route_table) continue;
    for (const auto& entry : table.entries) {
      if (wanted.count(entry.action_function) > 0 &&
          !entry.key_values.empty()) {
        kept_ids.insert(entry.key_values.front());
      }
    }
  }

  WorkloadBundle out;
  out.image_width = bundle.image_width;
  out.image_height = bundle.image_height;
  out.web_pages = bundle.web_pages;

  // Match spec: filter entries; route tables survive per workload ID
  // (their route helpers are generated later, by the lowerer).
  for (const auto& table : bundle.spec.tables) {
    p4::Table copy = table;
    copy.entries.clear();
    for (const auto& entry : table.entries) {
      const bool keep =
          table.is_route_table
              ? (!entry.key_values.empty() &&
                 kept_ids.count(entry.key_values.front()) > 0)
              : wanted.count(entry.action_function) > 0;
      if (keep) copy.entries.push_back(entry);
    }
    if (!copy.entries.empty()) out.spec.tables.push_back(copy);
  }

  // Program: actions plus everything they transitively call.
  const microc::Program& prog = bundle.lambdas;
  std::vector<bool> keep_fn(prog.functions.size(), false);
  std::vector<std::size_t> worklist;
  for (const auto& name : wanted) {
    const std::size_t idx = prog.function_index(name);
    if (idx != microc::Program::kNoFunction && !keep_fn[idx]) {
      keep_fn[idx] = true;
      worklist.push_back(idx);
    }
  }
  while (!worklist.empty()) {
    const std::size_t idx = worklist.back();
    worklist.pop_back();
    for (const auto& block : prog.functions[idx].blocks) {
      for (const auto& instr : block.instrs) {
        if (instr.op != microc::Opcode::kCall) continue;
        const auto callee = static_cast<std::size_t>(instr.imm);
        if (callee < prog.functions.size() && !keep_fn[callee]) {
          keep_fn[callee] = true;
          worklist.push_back(callee);
        }
      }
    }
  }

  // Memory objects referenced by surviving code.
  std::vector<bool> keep_obj(prog.objects.size(), false);
  for (std::size_t f = 0; f < prog.functions.size(); ++f) {
    if (!keep_fn[f]) continue;
    for (const auto& block : prog.functions[f].blocks) {
      for (const auto& instr : block.instrs) {
        if (uses_obj(instr.op) && instr.obj < prog.objects.size()) {
          keep_obj[instr.obj] = true;
        }
        if (uses_obj2(instr.op) && instr.obj2 < prog.objects.size()) {
          keep_obj[instr.obj2] = true;
        }
      }
    }
  }

  // Rebuild with order preserved, remapping call and object operands.
  std::vector<std::size_t> fn_map(prog.functions.size(),
                                  microc::Program::kNoFunction);
  std::vector<std::uint16_t> obj_map(prog.objects.size(), 0);
  out.lambdas.name = prog.name;
  out.lambdas.parsed_fields = prog.parsed_fields;
  for (std::size_t o = 0; o < prog.objects.size(); ++o) {
    if (!keep_obj[o]) continue;
    obj_map[o] = static_cast<std::uint16_t>(out.lambdas.objects.size());
    out.lambdas.objects.push_back(prog.objects[o]);
  }
  for (std::size_t f = 0; f < prog.functions.size(); ++f) {
    if (!keep_fn[f]) continue;
    fn_map[f] = out.lambdas.functions.size();
    out.lambdas.functions.push_back(prog.functions[f]);
  }
  for (auto& fn : out.lambdas.functions) {
    for (auto& block : fn.blocks) {
      for (auto& instr : block.instrs) {
        if (instr.op == microc::Opcode::kCall) {
          instr.imm = static_cast<std::int64_t>(
              fn_map[static_cast<std::size_t>(instr.imm)]);
        }
        if (uses_obj(instr.op)) instr.obj = obj_map[instr.obj];
        if (uses_obj2(instr.op)) instr.obj2 = obj_map[instr.obj2];
      }
    }
  }
  // lambda_entries are (re)built by the lowerer at compile time; carry
  // over any pre-assembled ones that survived.
  for (const auto& [wid, fn_idx] : prog.lambda_entries) {
    if (fn_idx < fn_map.size() &&
        fn_map[fn_idx] != microc::Program::kNoFunction) {
      out.lambdas.lambda_entries.emplace_back(
          wid, static_cast<std::uint32_t>(fn_map[fn_idx]));
    }
  }
  return out;
}

}  // namespace lnic::workloads
