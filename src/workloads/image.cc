#include "workloads/image.h"

namespace lnic::workloads {

Image make_test_image(std::uint32_t width, std::uint32_t height,
                      std::uint32_t seed) {
  Image img;
  img.width = width;
  img.height = height;
  img.rgba.resize(static_cast<std::size_t>(width) * height * 4);
  std::uint32_t state = seed * 2654435761u + 1;
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      const std::size_t i = (static_cast<std::size_t>(y) * width + x) * 4;
      state = state * 1664525u + 1013904223u;
      img.rgba[i + 0] = static_cast<std::uint8_t>(x + (state & 31));
      img.rgba[i + 1] = static_cast<std::uint8_t>(y + ((state >> 8) & 31));
      img.rgba[i + 2] = static_cast<std::uint8_t>((x ^ y) + ((state >> 16) & 31));
      img.rgba[i + 3] = 0xFF;
    }
  }
  return img;
}

std::vector<std::uint8_t> to_grayscale(const Image& image) {
  std::vector<std::uint8_t> gray(image.pixels());
  for (std::uint64_t p = 0; p < image.pixels(); ++p) {
    const std::uint8_t* px = image.rgba.data() + p * 4;
    gray[p] = static_cast<std::uint8_t>(
        (77u * px[0] + 150u * px[1] + 29u * px[2]) >> 8);
  }
  return gray;
}

}  // namespace lnic::workloads
