#include "framework/timeline.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace lnic::framework {

namespace {

void append_meta(std::ostream& out, bool& first, std::uint64_t pid,
                 std::int64_t tid, const char* what, const std::string& name) {
  if (!first) out << ",";
  first = false;
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%" PRIu64
                ",\"tid\":%" PRId64 ",\"args\":{\"name\":\"%s\"}}",
                what, pid, tid, name.c_str());
  out << buf;
}

void append_span_open(std::ostream& out, bool& first, const char* name,
                      double ts_us, double dur_us, std::uint64_t pid,
                      std::int64_t tid) {
  if (!first) out << ",";
  first = false;
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                "\"pid\":%" PRIu64 ",\"tid\":%" PRId64 ",\"args\":{",
                name, ts_us, dur_us, pid, tid);
  out << buf;
}

}  // namespace

std::string export_timeline(const TimelineInputs& inputs) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;

  // Request spans, exactly as lnicctl trace exports them (tenant ids
  // ride along in args via span annotations).
  if (inputs.tracer != nullptr) {
    inputs.tracer->append_chrome_events(out, first);
  }

  // NPU-grid busy tracks: one process per NIC, one thread row per NPU
  // thread, each closed busy interval a span named after its workload.
  std::uint64_t nic_pid = kTimelineNicPidBase;
  for (const auto& [name, nic] : inputs.nics) {
    const nicsim::NpuProfiler* profiler =
        nic == nullptr ? nullptr : nic->profiler();
    if (profiler == nullptr) continue;
    append_meta(out, first, nic_pid, 0, "process_name", "nic:" + name);
    for (std::uint32_t t = 0; t < profiler->threads(); ++t) {
      append_meta(out, first, nic_pid, t, "thread_name",
                  "npu " + std::to_string(t));
      for (const auto& iv : profiler->timeline(t)) {
        append_span_open(out, first,
                         ("w" + std::to_string(iv.workload)).c_str(),
                         to_us(iv.start), to_us(iv.end - iv.start), nic_pid,
                         t);
        out << "\"workload\":\"" << iv.workload << "\"";
        const TenantId tenant = nic->tenant_of(iv.workload);
        if (tenant != kDefaultTenant) {
          out << ",\"tenant\":\"" << tenant << "\"";
        }
        out << "}}";
      }
    }
    ++nic_pid;
  }

  // Shard window tracks: each synchronization window becomes one span
  // per shard over its simulated interval, carrying the wall-clock
  // busy/barrier split so a stalled shard is visible at a glance.
  if (inputs.sharded != nullptr && inputs.sharded->shards() > 1) {
    const sim::ShardStats stats = inputs.sharded->shard_stats();
    append_meta(out, first, kTimelineShardPid, 0, "process_name",
                "sim shards");
    for (unsigned s = 0; s < stats.shards; ++s) {
      append_meta(out, first, kTimelineShardPid, s, "thread_name",
                  "shard " + std::to_string(s));
    }
    for (const auto& window : stats.recent) {
      const double ts = to_us(window.t0);
      const double dur = to_us(window.end - window.t0 + 1);
      for (unsigned s = 0; s < stats.shards; ++s) {
        const std::uint64_t busy = window.busy_ns[s];
        const std::uint64_t barrier =
            window.wall_ns > busy ? window.wall_ns - busy : 0;
        append_span_open(out, first, "shard.window", ts, dur,
                         kTimelineShardPid, s);
        // "extension" names what set the window's end: the static
        // lookahead floor, or an EOT report that stretched it.
        out << "\"busy_ns\":\"" << busy << "\",\"barrier_ns\":\"" << barrier
            << "\",\"wall_ns\":\"" << window.wall_ns << "\",\"extension\":\""
            << (window.eot_extended ? "eot" : "floor") << "\"}}";
      }
    }
  }

  out << "]}";
  return out.str();
}

}  // namespace lnic::framework
