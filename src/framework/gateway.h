// Gateway (Fig. 2/5): proxies user requests to the right workload on the
// right worker. Built on the weakly-consistent RPC client (D3), it
// assigns lambda-header workload IDs, load-balances across worker
// replicas (weighted round robin), tracks per-function latency and
// throughput in the metrics registry, and can keep its routing table
// synchronized with the etcd store the workload manager writes (§6.1.1).
//
// Overload and failure handling:
//  - A per-function concurrency limiter with a bounded admission queue
//    and deadline-based shedding keeps worker queues from growing
//    without bound; excess requests fail fast with a distinct overload
//    error (counted in `gateway_shed_total`).
//  - Transport failures quarantine the worker for a cooldown instead of
//    removing it: quarantined replicas are skipped by the weighted pick,
//    probed by the HealthChecker, and reinstated automatically on
//    recovery (or when the cooldown lapses).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "common/trace.h"
#include "common/types.h"
#include "framework/metrics.h"
#include "kvstore/etcd.h"
#include "net/network.h"
#include "proto/rpc.h"
#include "sim/simulator.h"

namespace lnic::framework {

struct GatewayConfig {
  /// Routing/NAT lookup cost per proxied request.
  SimDuration proxy_overhead = microseconds(20);
  /// On transport failure (retransmissions exhausted — worker dead),
  /// fail the request over to the next replica up to this many times.
  std::uint32_t failover_attempts = 1;
  /// How long a failed-over worker stays out of the rotation before it
  /// becomes eligible again (a HealthChecker probe can reinstate it
  /// earlier — or keep extending the quarantine while probes fail).
  SimDuration quarantine_cooldown = seconds(2);
  /// Per-function concurrency cap; 0 disables the limiter (legacy
  /// behavior: every admitted request dispatches immediately).
  std::uint32_t max_inflight_per_function = 0;
  /// Bounded admission queue used once the limiter is saturated;
  /// arrivals beyond it are shed immediately.
  std::size_t max_queue_depth = 64;
  /// Queued requests older than this are shed (deadline-based shedding).
  SimDuration queue_deadline = milliseconds(50);
  proto::RpcConfig rpc;
};

/// Marker for replicas whose backend kind is not recorded (legacy routes,
/// hand-registered workers). Values below it mirror backends::BackendKind
/// without pulling the backend layer into the gateway's dependency set.
constexpr std::uint8_t kUnknownBackendKind = 0xFF;

/// One worker of a weighted replica set. The placement layer records the
/// backend kind each replica runs on; `weight` biases the round-robin
/// (weight 1 everywhere reproduces plain round robin bit-for-bit).
struct Replica {
  NodeId node = kInvalidNode;
  std::uint32_t weight = 1;
  std::uint8_t backend_kind = kUnknownBackendKind;

  friend bool operator==(const Replica&, const Replica&) = default;
};

struct Route {
  WorkloadId workload = kInvalidWorkload;
  /// Tenant namespace the function belongs to (kDefaultTenant for
  /// single-tenant legacy routes). Stamped into every request's lambda
  /// header and added as a `tenant=` metric label.
  TenantId tenant = kDefaultTenant;
  /// Flat node list, one entry per replica (kept in sync with `replicas`;
  /// retained because most callers only care about where requests go).
  std::vector<NodeId> workers;
  /// The weighted set the dispatcher actually consults.
  std::vector<Replica> replicas;

  std::uint64_t total_weight() const;
};

/// Token-bucket rate limit, the gateway's DDoS guard (§7: "any malicious
/// attempt to trigger the lambdas will be blocked by the gateway").
struct RateLimit {
  double requests_per_second = 0.0;  // 0 = unlimited
  double burst = 1.0;                // bucket capacity
};

using InvokeCallback = std::function<void(Result<proto::RpcResponse>)>;

class Gateway {
 public:
  Gateway(sim::Simulator& sim, net::Network& network, GatewayConfig config = {});

  NodeId node() const { return rpc_.node(); }

  /// Registers (or replaces) a function route. All replicas get weight 1
  /// and an unknown backend kind.
  void register_function(const std::string& name, WorkloadId workload,
                         std::vector<NodeId> workers);

  /// Registers (or replaces) a function route as a weighted replica set
  /// (the placement layer's entry point). Named distinctly because a
  /// braced node list would be ambiguous against the overload above.
  /// `tenant` places the route in a tenant namespace: requests carry the
  /// id in their lambda header and per-function metrics gain a
  /// `tenant=` label (the default keeps legacy series names unchanged).
  void register_replicas(const std::string& name, WorkloadId workload,
                         std::vector<Replica> replicas,
                         TenantId tenant = kDefaultTenant);

  /// Allocates (idempotently) a tenant id for a named tenant. Ids start
  /// at 1; kDefaultTenant (0) is the implicit single-tenant namespace.
  TenantId register_tenant(const std::string& name);
  /// Human-readable label for a tenant id: its registered name, or
  /// "tenant-<id>" for ids registered elsewhere (e.g. mirrored routes).
  std::string tenant_label(TenantId tenant) const;
  /// Metric labels for a function: {fn=name} plus {tenant=...} when the
  /// route lives in a tenant namespace. The autoscaler reads the same
  /// series the gateway writes through this helper.
  Labels metric_labels(const std::string& name) const;

  /// Shard-affinity replica selection: prefer replicas living on the
  /// gateway's own shard when every replica in a route carries the same
  /// weight (round robin over the co-sharded healthy subset, counted in
  /// `gateway_affinity_co_shard_total`). Routes with differing weights
  /// keep the exact weighted semantics — operator-chosen bias beats
  /// locality. `network` must be the fabric this gateway's node is
  /// attached to and must outlive the gateway. Off by default; with it
  /// off the dispatcher is byte-for-byte the legacy weighted pick.
  void enable_shard_affinity(const net::Network& network);

  /// Installs a per-function token-bucket limit; excess requests fail
  /// fast with a throttle error (and count in the metrics).
  void set_rate_limit(const std::string& name, RateLimit limit);
  void add_worker(const std::string& name, NodeId worker);
  bool has_function(const std::string& name) const {
    return routes_.count(name) > 0;
  }
  const Route* route(const std::string& name) const;

  /// Invokes a function by name; the callback receives the response, a
  /// transport error after failovers are exhausted, or an overload error
  /// if the request was shed.
  void invoke(const std::string& name, net::BufferView payload,
              InvokeCallback callback);

  /// Drops a worker from every route (explicit operator action; failure
  /// handling uses quarantine_worker instead).
  void remove_worker(NodeId worker);

  /// Sidelines a worker for `quarantine_cooldown`: it stays in every
  /// route but the dispatcher skips it while quarantined. Re-quarantining
  /// extends the cooldown.
  void quarantine_worker(NodeId worker);
  /// Puts a quarantined worker back in the rotation (health probe
  /// succeeded, or operator action).
  void reinstate_worker(NodeId worker);
  bool is_quarantined(NodeId worker) const;
  std::size_t quarantined_count() const;

  /// Mirrors routes from etcd: keys "route/<name>" with value
  /// "<wid>|<replica>,<replica>,...". Applies current entries and watches
  /// for changes (the Watch Service of Fig. 5).
  void sync_with(kvstore::EtcdStore& etcd);

  /// Serialization helpers for the etcd route encoding. A replica token
  /// is "<node>", optionally extended with "*<weight>" and/or "@<kind>"
  /// — plain weight-1 routes encode exactly as before ("7|1,2,3").
  /// Tenant routes extend the workload field with "~<tenant>"
  /// ("7~2|1,2,3"); tenant-less routes keep the legacy encoding.
  static std::string encode_route(WorkloadId workload,
                                  const std::vector<NodeId>& workers);
  static std::string encode_replicas(WorkloadId workload,
                                     const std::vector<Replica>& replicas,
                                     TenantId tenant = kDefaultTenant);
  static Result<Route> decode_route(const std::string& encoded);

  MetricsRegistry& metrics() { return metrics_; }
  const Sampler& latency(const std::string& name) {
    return metrics_.sampler("gateway_latency_ns", {{"fn", name}});
  }
  proto::RpcClient& rpc() { return rpc_; }

  /// Attaches (nullptr detaches) a span recorder; trace ids are
  /// allocated here and ride the lambda header end to end. `sample_rate`
  /// in [0, 1] selects which fraction of requests get a trace
  /// (deterministic counter-based sampling, no RNG). Recording is
  /// bookkeeping outside simulated time: timing is identical with
  /// tracing on or off.
  void set_tracer(trace::TraceRecorder* tracer, double sample_rate = 1.0);
  trace::TraceRecorder* tracer() { return tracer_; }

 private:
  struct Bucket {
    RateLimit limit;
    double tokens = 0.0;
    SimTime refilled_at = 0;
  };

  struct Queued {
    std::uint64_t id = 0;
    net::BufferView payload;
    InvokeCallback callback;
    SimTime enqueued_at = 0;
    trace::SpanContext ctx;
    trace::SpanId queue_span = trace::kInvalidSpan;
  };

  /// Per-function limiter state (only populated when the limiter is on).
  struct FnLoad {
    std::uint32_t inflight = 0;
    std::deque<Queued> queue;
  };

  void apply_route_key(const std::string& key, const std::string& value);
  bool admit(const std::string& name);  // token-bucket check
  /// Deterministic sampling decision for one request (no RNG draw).
  bool sample_trace();
  void dispatch(const std::string& name, net::BufferView payload,
                InvokeCallback callback, std::uint32_t attempts_left,
                trace::SpanContext ctx);
  /// Route resolution + replica pick + rpc send; runs after the proxy
  /// delay so route updates landing mid-flight take effect.
  void send_to_worker(const std::string& name,
                      net::BufferView payload,
                      InvokeCallback callback, std::uint32_t attempts_left,
                      SimTime started, trace::SpanContext ctx);
  NodeId pick_worker(const std::string& name, const Route& route);
  /// Limiter entry: dispatch now or queue/shed.
  void submit(const std::string& name, net::BufferView payload,
              InvokeCallback callback, trace::SpanContext ctx);
  void on_complete(const std::string& name);
  void shed(const std::string& name, InvokeCallback& callback,
            const char* reason);
  void expire_queued(const std::string& name, std::uint64_t queued_id);

  sim::Simulator& sim_;
  GatewayConfig config_;
  proto::RpcClient rpc_;
  // Shard-affinity routing (enable_shard_affinity): the fabric consulted
  // for replica shards, and the shard this gateway's node lives on.
  const net::Network* affinity_net_ = nullptr;
  unsigned affinity_shard_ = 0;
  trace::TraceRecorder* tracer_ = nullptr;
  double sample_rate_ = 1.0;
  double sample_accum_ = 0.0;
  std::map<std::string, Route> routes_;
  std::map<std::string, std::size_t> rr_cursor_;
  std::map<std::string, Bucket> buckets_;
  std::map<std::string, FnLoad> load_;
  std::map<NodeId, SimTime> quarantined_until_;
  std::map<std::string, TenantId> tenant_ids_;
  std::map<TenantId, std::string> tenant_names_;
  TenantId next_tenant_ = 1;
  std::uint64_t next_queued_id_ = 1;
  MetricsRegistry metrics_;
};

}  // namespace lnic::framework
