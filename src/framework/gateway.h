// Gateway (Fig. 2/5): proxies user requests to the right workload on the
// right worker. Built on the weakly-consistent RPC client (D3), it
// assigns lambda-header workload IDs, load-balances across worker
// replicas (round robin), tracks per-function latency/throughput in the
// metrics registry, and can keep its routing table synchronized with the
// etcd store the workload manager writes (§6.1.1).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "common/types.h"
#include "framework/metrics.h"
#include "kvstore/etcd.h"
#include "net/network.h"
#include "proto/rpc.h"
#include "sim/simulator.h"

namespace lnic::framework {

struct GatewayConfig {
  /// Routing/NAT lookup cost per proxied request.
  SimDuration proxy_overhead = microseconds(20);
  /// On transport failure (retransmissions exhausted — worker dead),
  /// fail the request over to the next replica up to this many times.
  std::uint32_t failover_attempts = 1;
  proto::RpcConfig rpc;
};

/// Marker for replicas whose backend kind is not recorded (legacy routes,
/// hand-registered workers). Values below it mirror backends::BackendKind
/// without pulling the backend layer into the gateway's dependency set.
constexpr std::uint8_t kUnknownBackendKind = 0xFF;

/// One worker of a weighted replica set. The placement layer records the
/// backend kind each replica runs on; `weight` biases the round-robin
/// (weight 1 everywhere reproduces plain round robin bit-for-bit).
struct Replica {
  NodeId node = kInvalidNode;
  std::uint32_t weight = 1;
  std::uint8_t backend_kind = kUnknownBackendKind;

  friend bool operator==(const Replica&, const Replica&) = default;
};

struct Route {
  WorkloadId workload = kInvalidWorkload;
  /// Flat node list, one entry per replica (kept in sync with `replicas`;
  /// retained because most callers only care about where requests go).
  std::vector<NodeId> workers;
  /// The weighted set the dispatcher actually consults.
  std::vector<Replica> replicas;

  std::uint64_t total_weight() const;
};

/// Token-bucket rate limit, the gateway's DDoS guard (§7: "any malicious
/// attempt to trigger the lambdas will be blocked by the gateway").
struct RateLimit {
  double requests_per_second = 0.0;  // 0 = unlimited
  double burst = 1.0;                // bucket capacity
};

using InvokeCallback = std::function<void(Result<proto::RpcResponse>)>;

class Gateway {
 public:
  Gateway(sim::Simulator& sim, net::Network& network, GatewayConfig config = {});

  NodeId node() const { return rpc_.node(); }

  /// Registers (or replaces) a function route. All replicas get weight 1
  /// and an unknown backend kind.
  void register_function(const std::string& name, WorkloadId workload,
                         std::vector<NodeId> workers);

  /// Registers (or replaces) a function route as a weighted replica set
  /// (the placement layer's entry point). Named distinctly because a
  /// braced node list would be ambiguous against the overload above.
  void register_replicas(const std::string& name, WorkloadId workload,
                         std::vector<Replica> replicas);

  /// Installs a per-function token-bucket limit; excess requests fail
  /// fast with a throttle error (and count in the metrics).
  void set_rate_limit(const std::string& name, RateLimit limit);
  void add_worker(const std::string& name, NodeId worker);
  bool has_function(const std::string& name) const {
    return routes_.count(name) > 0;
  }
  const Route* route(const std::string& name) const;

  /// Invokes a function by name; the callback receives the response (or
  /// a transport error after retransmissions are exhausted).
  void invoke(const std::string& name, std::vector<std::uint8_t> payload,
              InvokeCallback callback);

  /// Drops a worker from every route (operator action or health check).
  void remove_worker(NodeId worker);

  /// Mirrors routes from etcd: keys "route/<name>" with value
  /// "<wid>|<replica>,<replica>,...". Applies current entries and watches
  /// for changes (the Watch Service of Fig. 5).
  void sync_with(kvstore::EtcdStore& etcd);

  /// Serialization helpers for the etcd route encoding. A replica token
  /// is "<node>", optionally extended with "*<weight>" and/or "@<kind>"
  /// — plain weight-1 routes encode exactly as before ("7|1,2,3").
  static std::string encode_route(WorkloadId workload,
                                  const std::vector<NodeId>& workers);
  static std::string encode_replicas(WorkloadId workload,
                                     const std::vector<Replica>& replicas);
  static Result<Route> decode_route(const std::string& encoded);

  MetricsRegistry& metrics() { return metrics_; }
  const Sampler& latency(const std::string& name) {
    return metrics_.sampler("gateway_latency_ns{fn=" + name + "}");
  }
  proto::RpcClient& rpc() { return rpc_; }

 private:
  void apply_route_key(const std::string& key, const std::string& value);
  bool admit(const std::string& name);  // token-bucket check
  void dispatch(const std::string& name, std::vector<std::uint8_t> payload,
                InvokeCallback callback, std::uint32_t attempts_left);

  struct Bucket {
    RateLimit limit;
    double tokens = 0.0;
    SimTime refilled_at = 0;
  };

  sim::Simulator& sim_;
  GatewayConfig config_;
  proto::RpcClient rpc_;
  std::map<std::string, Route> routes_;
  std::map<std::string, std::size_t> rr_cursor_;
  std::map<std::string, Bucket> buckets_;
  MetricsRegistry metrics_;
};

}  // namespace lnic::framework
