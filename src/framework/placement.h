// Placement layer (§5, Fig. 2): the workload manager's decision of
// *where* each lambda runs. The paper's manager "verifies if the lambdas
// can fit and execute on the NICs" — firmware must fit the per-core
// 16 K-instruction store and the NIC memory hierarchy — and falls back
// to host backends when it cannot. This module makes that decision a
// first-class, pluggable policy over per-backend capacity reports
// (backends::Capacity) and compiled per-lambda footprints, producing a
// PlacementPlan the manager deploys and the gateway routes by.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "backends/backend.h"
#include "common/result.h"
#include "common/types.h"
#include "workloads/lambdas.h"

namespace lnic::framework {

/// Capacity snapshot of one pool member, as the policies see it.
struct BackendSlot {
  std::size_t index = 0;  // position in the deployment pool
  backends::BackendKind kind = backends::BackendKind::kLambdaNic;
  NodeId node = kInvalidNode;
  backends::Capacity capacity;
};

/// Footprint of one lambda: its single-action sub-bundle compiled alone
/// through the NIC pipeline with no store limit. Sums of these slightly
/// over-estimate co-resident firmware (each carries its own dispatch
/// stage and helpers that coalescing would merge), so policies that pack
/// by summed footprints are conservative: a plan that fits by footprint
/// always compiles within the store.
struct FunctionFootprint {
  std::string name;
  WorkloadId workload = kInvalidWorkload;
  std::uint64_t code_words = 0;  // optimized instruction-store words
  Bytes memory_bytes = 0;        // persistent (global) object bytes
};

/// One replica of a function in the plan.
struct PlacementAssignment {
  std::size_t backend_index = 0;  // into the deployment pool
  std::uint32_t weight = 1;       // gateway round-robin bias

  friend bool operator==(const PlacementAssignment&,
                         const PlacementAssignment&) = default;
};

/// Output of a policy: every function mapped to a weighted replica set.
struct PlacementPlan {
  std::map<std::string, std::vector<PlacementAssignment>> functions;

  /// Function names (bundle order not guaranteed; map order) assigned to
  /// each pool member; entries may be empty.
  std::vector<std::vector<std::string>> functions_per_backend(
      std::size_t pool_size) const;

  bool assigns(const std::string& function, std::size_t backend_index) const;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  virtual const char* name() const = 0;

  /// Maps every function to at least one backend, or fails when some
  /// function fits nowhere (e.g. an oversize lambda in an all-NIC pool).
  virtual Result<PlacementPlan> place(
      const std::vector<BackendSlot>& pool,
      const std::vector<FunctionFootprint>& functions) const = 0;
};

/// Paper semantics: a lambda runs on every NIC worker when the NIC-
/// resident set still fits the instruction store and EMEM; otherwise it
/// spills to every host worker. A homogeneous pool therefore reproduces
/// the replicate-everywhere behaviour exactly.
class NicFirstPolicy : public PlacementPolicy {
 public:
  const char* name() const override { return "nic-first"; }
  Result<PlacementPlan> place(
      const std::vector<BackendSlot>& pool,
      const std::vector<FunctionFootprint>& functions) const override;
};

/// Bin-packs lambdas onto as few NIC workers as possible (first-fit
/// decreasing by code size), maximizing co-residency — and thereby what
/// lambda coalescing can merge. Overflow goes to host workers.
class PackedPolicy : public PlacementPolicy {
 public:
  const char* name() const override { return "packed"; }
  Result<PlacementPlan> place(
      const std::vector<BackendSlot>& pool,
      const std::vector<FunctionFootprint>& functions) const override;
};

/// Spreads lambdas one-per-worker round robin across the whole pool
/// (skipping workers a lambda cannot fit), minimizing co-residency.
class SpreadPolicy : public PlacementPolicy {
 public:
  const char* name() const override { return "spread"; }
  Result<PlacementPlan> place(
      const std::vector<BackendSlot>& pool,
      const std::vector<FunctionFootprint>& functions) const override;
};

enum class PlacementPolicyKind : std::uint8_t { kNicFirst, kPacked, kSpread };

/// Shared immutable policy instances for configuration by enum.
const PlacementPolicy& placement_policy(PlacementPolicyKind kind);

/// Capacity snapshots for a deployment pool, in pool order.
std::vector<BackendSlot> snapshot_pool(
    std::span<backends::Backend* const> pool);

/// Compiles each action of `bundle` alone (full NIC pipeline, unlimited
/// instruction store) to measure per-lambda footprints, in spec order.
Result<std::vector<FunctionFootprint>> compute_footprints(
    const workloads::WorkloadBundle& bundle);

}  // namespace lnic::framework
