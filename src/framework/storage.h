// Global artifact storage (Fig. 2: "compiled binaries ... stored in a
// global storage"). Holds named blobs and models transfer time over the
// management network; the workload manager uploads compiled artifacts
// here and workers download them during deployment.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace lnic::framework {

class BlobStorage {
 public:
  explicit BlobStorage(double bandwidth_bps = 1e9)
      : bandwidth_bps_(bandwidth_bps) {}

  void put(const std::string& name, Bytes size) { blobs_[name] = size; }
  bool contains(const std::string& name) const {
    return blobs_.count(name) > 0;
  }
  Result<Bytes> size_of(const std::string& name) const {
    const auto it = blobs_.find(name);
    if (it == blobs_.end()) return make_error("storage: no blob '" + name + "'");
    return it->second;
  }
  /// Simulated time to download the named blob to a worker.
  Result<SimDuration> transfer_time(const std::string& name) const {
    const auto size = size_of(name);
    if (!size.ok()) return size.error();
    return static_cast<SimDuration>(static_cast<double>(size.value()) * 8.0 /
                                    bandwidth_bps_ * 1e9);
  }
  std::vector<std::string> list() const {
    std::vector<std::string> names;
    for (const auto& [name, size] : blobs_) {
      (void)size;
      names.push_back(name);
    }
    return names;
  }

 private:
  double bandwidth_bps_;
  std::map<std::string, Bytes> blobs_;
};

}  // namespace lnic::framework
