#include "framework/placement.h"

#include <algorithm>
#include <numeric>

#include "compiler/pipeline.h"
#include "workloads/split.h"

namespace lnic::framework {

std::vector<std::vector<std::string>> PlacementPlan::functions_per_backend(
    std::size_t pool_size) const {
  std::vector<std::vector<std::string>> out(pool_size);
  for (const auto& [fn, assignments] : functions) {
    for (const auto& assignment : assignments) {
      if (assignment.backend_index < pool_size) {
        out[assignment.backend_index].push_back(fn);
      }
    }
  }
  return out;
}

bool PlacementPlan::assigns(const std::string& function,
                            std::size_t backend_index) const {
  const auto it = functions.find(function);
  if (it == functions.end()) return false;
  return std::any_of(it->second.begin(), it->second.end(),
                     [backend_index](const PlacementAssignment& a) {
                       return a.backend_index == backend_index;
                     });
}

namespace {

std::vector<std::size_t> nic_indices(const std::vector<BackendSlot>& pool) {
  std::vector<std::size_t> out;
  for (const auto& slot : pool) {
    if (slot.capacity.on_nic) out.push_back(slot.index);
  }
  return out;
}

std::vector<std::size_t> host_indices(const std::vector<BackendSlot>& pool) {
  std::vector<std::size_t> out;
  for (const auto& slot : pool) {
    if (!slot.capacity.on_nic) out.push_back(slot.index);
  }
  return out;
}

Error nowhere_to_place(const FunctionFootprint& fn) {
  return make_error("placement: no backend can hold '" + fn.name + "' (" +
                    std::to_string(fn.code_words) + " words)");
}

}  // namespace

// --------------------------------------------------------------- NicFirst

Result<PlacementPlan> NicFirstPolicy::place(
    const std::vector<BackendSlot>& pool,
    const std::vector<FunctionFootprint>& functions) const {
  const auto nics = nic_indices(pool);
  const auto hosts = host_indices(pool);

  // The NIC-resident set is replicated to every NIC worker, so the
  // binding constraint is the *smallest* NIC's budget.
  std::uint64_t store_budget = backends::Capacity::kUnlimitedWords;
  Bytes mem_budget = static_cast<Bytes>(-1);
  for (std::size_t idx : nics) {
    store_budget = std::min(store_budget, pool[idx].capacity.instr_store_words);
    mem_budget = std::min(mem_budget, pool[idx].capacity.memory_bytes);
  }

  PlacementPlan plan;
  std::uint64_t store_used = 0;
  Bytes mem_used = 0;
  for (const auto& fn : functions) {
    const bool fits_nic = !nics.empty() &&
                          store_used + fn.code_words <= store_budget &&
                          mem_used + fn.memory_bytes <= mem_budget;
    if (fits_nic) {
      store_used += fn.code_words;
      mem_used += fn.memory_bytes;
      for (std::size_t idx : nics) {
        plan.functions[fn.name].push_back(PlacementAssignment{idx, 1});
      }
      continue;
    }
    if (hosts.empty()) return nowhere_to_place(fn);
    for (std::size_t idx : hosts) {
      plan.functions[fn.name].push_back(PlacementAssignment{idx, 1});
    }
  }
  return plan;
}

// ----------------------------------------------------------------- Packed

Result<PlacementPlan> PackedPolicy::place(
    const std::vector<BackendSlot>& pool,
    const std::vector<FunctionFootprint>& functions) const {
  const auto nics = nic_indices(pool);
  const auto hosts = host_indices(pool);

  struct Bin {
    std::size_t index;
    std::uint64_t store_left;
    Bytes mem_left;
  };
  std::vector<Bin> bins;
  for (std::size_t idx : nics) {
    bins.push_back(Bin{idx, pool[idx].capacity.instr_store_words,
                       pool[idx].capacity.memory_bytes});
  }

  // First-fit decreasing by code size; ties keep bundle order so the
  // plan is deterministic.
  std::vector<std::size_t> order(functions.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&functions](std::size_t a, std::size_t b) {
                     return functions[a].code_words > functions[b].code_words;
                   });

  PlacementPlan plan;
  for (std::size_t i : order) {
    const auto& fn = functions[i];
    Bin* chosen = nullptr;
    for (auto& bin : bins) {
      if (fn.code_words <= bin.store_left && fn.memory_bytes <= bin.mem_left) {
        chosen = &bin;
        break;
      }
    }
    if (chosen != nullptr) {
      chosen->store_left -= fn.code_words;
      chosen->mem_left -= fn.memory_bytes;
      plan.functions[fn.name].push_back(
          PlacementAssignment{chosen->index, 1});
      continue;
    }
    if (hosts.empty()) return nowhere_to_place(fn);
    for (std::size_t idx : hosts) {
      plan.functions[fn.name].push_back(PlacementAssignment{idx, 1});
    }
  }
  return plan;
}

// ----------------------------------------------------------------- Spread

Result<PlacementPlan> SpreadPolicy::place(
    const std::vector<BackendSlot>& pool,
    const std::vector<FunctionFootprint>& functions) const {
  struct Slot {
    std::size_t index;
    std::uint64_t store_left;
    Bytes mem_left;
  };
  std::vector<Slot> slots;
  for (const auto& member : pool) {
    slots.push_back(Slot{member.index, member.capacity.instr_store_words,
                         member.capacity.memory_bytes});
  }

  PlacementPlan plan;
  std::size_t cursor = 0;
  for (const auto& fn : functions) {
    bool placed = false;
    for (std::size_t step = 0; step < slots.size() && !placed; ++step) {
      Slot& slot = slots[(cursor + step) % slots.size()];
      if (fn.code_words <= slot.store_left && fn.memory_bytes <= slot.mem_left) {
        slot.store_left -= fn.code_words;
        slot.mem_left -= fn.memory_bytes;
        plan.functions[fn.name].push_back(PlacementAssignment{slot.index, 1});
        cursor = (slot.index + 1) % slots.size();
        placed = true;
      }
    }
    if (!placed) return nowhere_to_place(fn);
  }
  return plan;
}

// ---------------------------------------------------------------- helpers

const PlacementPolicy& placement_policy(PlacementPolicyKind kind) {
  static const NicFirstPolicy nic_first;
  static const PackedPolicy packed;
  static const SpreadPolicy spread;
  switch (kind) {
    case PlacementPolicyKind::kPacked: return packed;
    case PlacementPolicyKind::kSpread: return spread;
    case PlacementPolicyKind::kNicFirst: break;
  }
  return nic_first;
}

std::vector<BackendSlot> snapshot_pool(
    std::span<backends::Backend* const> pool) {
  std::vector<BackendSlot> slots;
  slots.reserve(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    slots.push_back(BackendSlot{i, pool[i]->kind(), pool[i]->node(),
                                pool[i]->capacity()});
  }
  return slots;
}

Result<std::vector<FunctionFootprint>> compute_footprints(
    const workloads::WorkloadBundle& bundle) {
  std::vector<FunctionFootprint> footprints;
  for (const auto& action : workloads::bundle_actions(bundle)) {
    auto sub = workloads::split_bundle(bundle, {action});
    FunctionFootprint fp;
    fp.name = action;
    for (const auto& table : sub.spec.tables) {
      if (table.is_route_table) continue;
      for (const auto& entry : table.entries) {
        if (entry.action_function == action && !entry.key_values.empty()) {
          fp.workload = static_cast<WorkloadId>(entry.key_values.front());
        }
      }
    }
    compiler::Options options;
    options.instruction_store_words = backends::Capacity::kUnlimitedWords;
    auto compiled =
        compiler::compile(sub.spec, std::move(sub.lambdas), options);
    if (!compiled.ok()) {
      return make_error("placement: footprint compile of '" + action +
                        "' failed: " + compiled.error().message);
    }
    fp.code_words = compiled.value().final_words();
    for (const auto& object : compiled.value().program.objects) {
      if (object.scope == microc::MemScope::kGlobal) {
        fp.memory_bytes += object.size;
      }
    }
    footprints.push_back(std::move(fp));
  }
  return footprints;
}

}  // namespace lnic::framework
