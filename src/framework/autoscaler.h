// Autoscaler (§6.1.1: OpenFaaS "includes an autoscaler to scale lambdas
// as demands change"). Periodically inspects per-function arrival rates
// from the gateway metrics and asks a provisioning callback to add or
// remove worker replicas to keep per-replica load near a target.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "framework/gateway.h"
#include "sim/simulator.h"

namespace lnic::framework {

struct AutoscalerConfig {
  SimDuration evaluation_period = seconds(1);
  double target_rps_per_replica = 500.0;
  std::uint32_t min_replicas = 1;
  std::uint32_t max_replicas = 8;
};

/// provision(name, desired_replicas) — the embedder adds/removes workers
/// and updates gateway routes.
using ProvisionFn =
    std::function<void(const std::string& name, std::uint32_t replicas)>;

class Autoscaler {
 public:
  Autoscaler(sim::Simulator& sim, Gateway& gateway, AutoscalerConfig config,
             ProvisionFn provision);

  void track(const std::string& function_name);
  void start();
  void stop() { timer_.stop(); }

  std::uint32_t replicas(const std::string& name) const {
    const auto it = replicas_.find(name);
    return it == replicas_.end() ? 0 : it->second;
  }
  std::uint64_t scale_events() const { return scale_events_; }

 private:
  void evaluate();

  sim::Simulator& sim_;
  Gateway& gateway_;
  AutoscalerConfig config_;
  ProvisionFn provision_;
  sim::PeriodicTimer timer_;
  std::map<std::string, std::uint32_t> replicas_;
  std::map<std::string, std::uint64_t> last_count_;
  std::uint64_t scale_events_ = 0;
};

}  // namespace lnic::framework
