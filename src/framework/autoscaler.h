// Autoscaler (§6.1.1: OpenFaaS "includes an autoscaler to scale lambdas
// as demands change"). Periodically inspects per-function demand and asks
// a provisioning callback to add or remove worker replicas.
//
// Two signals drive the loop:
//  - arrival rate, from the gateway's labeled gateway_requests_total
//    series (and, when a signal source is attached, the offered count —
//    which keeps counting even when a scaled-to-zero function has no
//    route and the gateway rejects requests as unroutable);
//  - tail latency, from an attached SLO signal (loadgen::SloTracker
//    windows via loadgen::slo_signal_source): when the window p99
//    exceeds target_p99_ms the scaler grows the replica set even if raw
//    rps alone would not justify it.
//
// Scale-up acts immediately; scale-down requires `scale_down_evals`
// consecutive under-target evaluations AND `scale_down_cooldown` since
// the last scale event — the hysteresis that keeps a bursty tenant from
// flapping between sizes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "framework/gateway.h"
#include "sim/simulator.h"

namespace lnic::framework {

struct AutoscalerConfig {
  SimDuration evaluation_period = seconds(1);
  double target_rps_per_replica = 500.0;
  /// SLO target for the latency signal; 0 disables it (rate-only).
  double target_p99_ms = 0.0;
  /// 0 enables scale-to-zero: an idle function releases every replica
  /// and is re-provisioned on the first offered request the signal sees.
  std::uint32_t min_replicas = 1;
  std::uint32_t max_replicas = 8;
  /// Consecutive below-target evaluations required before shrinking.
  std::uint32_t scale_down_evals = 3;
  /// Minimum time since the last scale event before shrinking.
  SimDuration scale_down_cooldown = seconds(5);
};

/// provision(name, desired_replicas) — the embedder adds/removes workers
/// and updates gateway routes.
using ProvisionFn =
    std::function<void(const std::string& name, std::uint32_t replicas)>;

/// One reading of an external SLO tracker for a function. `offered` is
/// cumulative (the autoscaler differences successive readings); `p99_ms`
/// covers the samples since the previous reading.
struct SloSignal {
  bool valid = false;
  double p99_ms = 0.0;
  std::uint64_t offered = 0;
};

/// Per-function signal source (see loadgen::slo_signal_source). Invalid
/// signals fall back to the gateway-counter path.
using SloSignalFn = std::function<SloSignal(const std::string& name)>;

class Autoscaler {
 public:
  Autoscaler(sim::Simulator& sim, Gateway& gateway, AutoscalerConfig config,
             ProvisionFn provision);

  /// Starts managing a function: provisions min_replicas immediately
  /// (instead of silently assuming they exist) and evaluates it on every
  /// tick once start() runs.
  void track(const std::string& function_name);
  /// Attaches (nullptr detaches) the per-function SLO signal source.
  void set_signal(SloSignalFn signal) { signal_ = std::move(signal); }

  /// Early-warning entry point for the burn-rate monitor (SloMonitor's
  /// alert handler): a page-severity alert scales the function up one
  /// replica immediately, without waiting for the next evaluation tick
  /// or a p99 recomputation; warn-severity alerts only reset the
  /// scale-down streak (don't shrink a function that is burning
  /// budget). Unknown functions are ignored.
  void on_slo_alert(const std::string& name, bool page);
  void start();
  void stop() { timer_.stop(); }

  std::uint32_t replicas(const std::string& name) const {
    const auto it = functions_.find(name);
    return it == functions_.end() ? 0 : it->second.replicas;
  }
  std::uint64_t scale_events() const { return scale_events_; }

 private:
  struct FnState {
    std::uint32_t replicas = 0;
    std::uint64_t last_count = 0;    // gateway_requests_total at last tick
    std::uint64_t last_offered = 0;  // signal offered count at last tick
    std::uint32_t low_evals = 0;     // consecutive below-target ticks
    SimTime last_scale_at = 0;
  };

  void evaluate();
  void scale_to(const std::string& name, FnState& state,
                std::uint32_t desired);

  sim::Simulator& sim_;
  Gateway& gateway_;
  AutoscalerConfig config_;
  ProvisionFn provision_;
  SloSignalFn signal_;
  sim::PeriodicTimer timer_;
  std::map<std::string, FnState> functions_;
  std::uint64_t scale_events_ = 0;
};

}  // namespace lnic::framework
