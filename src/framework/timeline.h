// Unified Perfetto timeline: one trace_event JSON merging three event
// sources that previously exported separately (or not at all):
//
//   - TraceRecorder request spans — one Perfetto process per trace id,
//     component tracks (gateway/rpc/nic/host), tenant ids in args;
//   - NPU-grid busy intervals from each NIC's NpuProfiler — one process
//     per NIC, one track per NPU thread, spans named w<workload> and
//     annotated with the owning tenant;
//   - shard windows from the sharded engine's stall accounting — one
//     "sim shards" process, one track per shard, each window a span
//     over its simulated interval carrying busy/barrier wall args.
//
// Everything shares the simulated-time x-axis (ts/dur in microseconds,
// matching TraceRecorder::to_chrome_json), so "what was the grid doing
// while this request queued, and was the engine stalled in a barrier?"
// is one screen in the Perfetto UI instead of three exports.
#pragma once

#include <string>
#include <vector>

#include "common/trace.h"
#include "nicsim/nic.h"
#include "sim/sharded.h"

namespace lnic::framework {

/// Synthetic Perfetto pids for the non-trace processes. Trace spans use
/// pid = trace id (small counters); these sit far above any trace id a
/// run can allocate.
constexpr std::uint64_t kTimelineShardPid = 1ull << 40;
constexpr std::uint64_t kTimelineNicPidBase = (1ull << 40) + 1;

struct TimelineInputs {
  /// Request spans (may be nullptr — e.g. a metrics-only run).
  const trace::TraceRecorder* tracer = nullptr;
  /// Named NICs whose profilers contribute NPU busy tracks; NICs with a
  /// disabled profiler are skipped.
  std::vector<std::pair<std::string, const nicsim::SmartNic*>> nics;
  /// Shard window/stall tracks (may be nullptr).
  const sim::ShardedSimulator* sharded = nullptr;
};

/// Renders the merged timeline as Chrome/Perfetto trace_event JSON.
std::string export_timeline(const TimelineInputs& inputs);

}  // namespace lnic::framework
