#include "framework/autoscaler.h"

#include <algorithm>

namespace lnic::framework {

Autoscaler::Autoscaler(sim::Simulator& sim, Gateway& gateway,
                       AutoscalerConfig config, ProvisionFn provision)
    : sim_(sim),
      gateway_(gateway),
      config_(config),
      provision_(std::move(provision)),
      timer_(sim, config.evaluation_period, [this] { evaluate(); }) {}

void Autoscaler::track(const std::string& function_name) {
  replicas_.emplace(function_name, config_.min_replicas);
  last_count_.emplace(function_name, 0);
}

void Autoscaler::start() { timer_.start(); }

void Autoscaler::evaluate() {
  for (auto& [name, current] : replicas_) {
    const auto total = gateway_.metrics()
                           .counter("gateway_requests_total{fn=" + name + "}")
                           .value();
    const auto delta = total - last_count_[name];
    last_count_[name] = total;
    const double rps = static_cast<double>(delta) /
                       to_sec(config_.evaluation_period);
    const auto desired = std::clamp<std::uint32_t>(
        static_cast<std::uint32_t>(
            rps / config_.target_rps_per_replica + 0.999),
        config_.min_replicas, config_.max_replicas);
    if (desired != current) {
      current = desired;
      ++scale_events_;
      if (provision_) provision_(name, desired);
    }
  }
}

}  // namespace lnic::framework
