#include "framework/autoscaler.h"

#include <algorithm>
#include <cmath>

namespace lnic::framework {

Autoscaler::Autoscaler(sim::Simulator& sim, Gateway& gateway,
                       AutoscalerConfig config, ProvisionFn provision)
    : sim_(sim),
      gateway_(gateway),
      config_(config),
      provision_(std::move(provision)),
      timer_(sim, config.evaluation_period, [this] { evaluate(); }) {}

void Autoscaler::track(const std::string& function_name) {
  const auto [it, inserted] = functions_.emplace(function_name, FnState{});
  if (!inserted) return;
  // Provision the floor right away: before this, min_replicas was a
  // bookkeeping fiction the embedder had to satisfy out of band.
  it->second.replicas = config_.min_replicas;
  it->second.last_scale_at = sim_.now();
  if (provision_) provision_(function_name, config_.min_replicas);
}

void Autoscaler::start() { timer_.start(); }

void Autoscaler::on_slo_alert(const std::string& name, bool page) {
  const auto it = functions_.find(name);
  if (it == functions_.end()) return;
  FnState& state = it->second;
  state.low_evals = 0;
  if (!page) return;
  const std::uint32_t desired =
      std::min(state.replicas + 1, config_.max_replicas);
  if (desired > state.replicas) scale_to(name, state, desired);
}

void Autoscaler::scale_to(const std::string& name, FnState& state,
                          std::uint32_t desired) {
  state.replicas = desired;
  state.low_evals = 0;
  state.last_scale_at = sim_.now();
  ++scale_events_;
  if (provision_) provision_(name, desired);
}

void Autoscaler::evaluate() {
  const double period_sec = to_sec(config_.evaluation_period);
  for (auto& [name, state] : functions_) {
    // The labeled-series API addresses the exact series the gateway
    // writes (including the tenant label on tenant routes); the old
    // hand-concatenated "{fn=...}" string could silently drift from the
    // registry's canonical naming.
    const std::uint64_t total =
        gateway_.metrics()
            .counter("gateway_requests_total", gateway_.metric_labels(name))
            .value();
    std::uint64_t demand = total - state.last_count;
    state.last_count = total;

    SloSignal signal;
    if (signal_) signal = signal_(name);
    if (signal.valid) {
      // Offered demand keeps counting while the function is scaled to
      // zero and the gateway rejects everything as unroutable — it is
      // the wake-up signal for scale-from-zero.
      const std::uint64_t offered = signal.offered - state.last_offered;
      state.last_offered = signal.offered;
      demand = std::max(demand, offered);
    }

    const double rps = static_cast<double>(demand) / period_sec;
    std::uint32_t desired = static_cast<std::uint32_t>(
        std::ceil(rps / config_.target_rps_per_replica));
    // Latency signal: a window p99 over target means the current set is
    // too small regardless of what raw rps claims.
    if (signal.valid && config_.target_p99_ms > 0.0 && demand > 0 &&
        signal.p99_ms > config_.target_p99_ms) {
      desired = std::max(desired, state.replicas + 1);
    }
    desired = std::clamp(desired, config_.min_replicas, config_.max_replicas);

    if (desired > state.replicas) {
      // Scale-up is immediate: under-provisioning costs SLO violations.
      scale_to(name, state, desired);
    } else if (desired < state.replicas) {
      // Scale-down hysteresis: require a streak of quiet evaluations and
      // a cooldown since the last scale event before releasing capacity.
      ++state.low_evals;
      if (state.low_evals >= config_.scale_down_evals &&
          sim_.now() - state.last_scale_at >= config_.scale_down_cooldown) {
        scale_to(name, state, desired);
      }
    } else {
      state.low_evals = 0;
    }
  }
}

}  // namespace lnic::framework
