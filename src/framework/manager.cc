#include "framework/manager.h"

#include <algorithm>

#include "workloads/split.h"

namespace lnic::framework {

Result<DeploymentRecord> WorkloadManager::deploy(
    workloads::WorkloadBundle bundle, backends::Backend& backend,
    Gateway* gateway) {
  DeploymentRecord record;
  // Function list from the match spec (action names + workload IDs).
  for (const auto& table : bundle.spec.tables) {
    if (table.is_route_table) continue;
    for (const auto& entry : table.entries) {
      record.functions.emplace_back(
          entry.action_function,
          static_cast<WorkloadId>(entry.key_values.at(0)));
    }
  }

  const auto profile = backend.startup_profile();
  record.artifact_name = std::string(backends::to_string(backend.kind())) +
                         "/" + bundle.lambdas.name;
  record.artifact_bytes = profile.artifact_bytes;
  record.startup_time = profile.startup_time;
  record.ready_at = sim_.now() + profile.startup_time;
  storage_.put(record.artifact_name, record.artifact_bytes);

  if (Status st = backend.deploy(std::move(bundle)); !st.ok()) return st.error();

  for (const auto& [name, wid] : record.functions) {
    if (gateway != nullptr) {
      if (gateway->has_function(name)) {
        gateway->add_worker(name, backend.node());
      } else {
        gateway->register_function(name, wid,
                                   std::vector<NodeId>{backend.node()});
      }
    }
    if (etcd_ != nullptr) {
      std::vector<NodeId> workers;
      if (gateway != nullptr && gateway->route(name) != nullptr) {
        workers = gateway->route(name)->workers;
      } else {
        workers = {backend.node()};
      }
      // Best effort: requires an elected leader; callers running before
      // the election simply skip the etcd mirror.
      (void)etcd_->put("route/" + name, Gateway::encode_route(wid, workers));
    }
  }
  deployments_.push_back(record);
  return record;
}

Result<DeploymentRecord> WorkloadManager::deploy(
    workloads::WorkloadBundle bundle, std::span<backends::Backend* const> pool,
    const PlacementPolicy& policy, Gateway* gateway) {
  return deploy(std::move(bundle), pool, policy, gateway, std::string());
}

TenantId WorkloadManager::resolve_tenant(const std::string& tenant,
                                         Gateway* gateway) {
  if (tenant.empty()) return kDefaultTenant;
  if (gateway != nullptr) return gateway->register_tenant(tenant);
  const auto it = local_tenant_ids_.find(tenant);
  if (it != local_tenant_ids_.end()) return it->second;
  const TenantId id =
      static_cast<TenantId>(local_tenant_ids_.size()) + 1;
  local_tenant_ids_[tenant] = id;
  return id;
}

Result<DeploymentRecord> WorkloadManager::deploy(
    workloads::WorkloadBundle bundle, std::span<backends::Backend* const> pool,
    const PlacementPolicy& policy, Gateway* gateway,
    const std::string& tenant) {
  if (pool.empty()) return make_error("manager: empty backend pool");
  const TenantId tenant_id = resolve_tenant(tenant, gateway);

  auto footprints = compute_footprints(bundle);
  if (!footprints.ok()) return footprints.error();
  auto plan = policy.place(snapshot_pool(pool), footprints.value());
  if (!plan.ok()) return plan.error();

  DeploymentRecord record;
  record.policy = policy.name();
  record.artifact_name = bundle.lambdas.name;
  record.tenant = tenant;
  record.tenant_id = tenant_id;
  for (const auto& fp : footprints.value()) {
    record.functions.emplace_back(fp.name, fp.workload);
  }
  // Route names live in the tenant's namespace ("tenant/function").
  const auto route_name = [&](const std::string& fn) {
    return tenant.empty() ? fn : tenant + "/" + fn;
  };

  // Deploy each backend's slice of the bundle. A full slice reuses the
  // original bundle object, so homogeneous pools compile bit-identical
  // firmware to a plain per-backend deploy.
  const auto per_backend = plan.value().functions_per_backend(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (per_backend[i].empty()) continue;
    backends::Backend& backend = *pool[i];
    auto sub = workloads::split_bundle(bundle, per_backend[i]);

    if (tenant_id != kDefaultTenant) {
      // Tenancy binds before the firmware lands so quota admission in
      // the backend's deploy sees the assignments.
      const auto quota = tenant_quotas_.find(tenant);
      if (quota != tenant_quotas_.end()) {
        backend.set_tenant_quota(tenant_id, quota->second);
      }
      for (const auto& fp : footprints.value()) {
        backend.set_tenant_of(fp.workload, tenant_id);
      }
    }

    const auto profile = backend.startup_profile();
    record.artifact_bytes = std::max(record.artifact_bytes,
                                     profile.artifact_bytes);
    record.startup_time = std::max(record.startup_time, profile.startup_time);
    record.ready_at = std::max(record.ready_at,
                               sim_.now() + profile.startup_time);
    storage_.put(std::string(backends::to_string(backend.kind())) + "/" +
                     bundle.lambdas.name,
                 profile.artifact_bytes);

    if (Status st = backend.deploy(std::move(sub)); !st.ok()) {
      return st.error();
    }
  }

  // Register every function as a weighted replica set carrying backend
  // kinds, both directly with the gateway and mirrored into etcd.
  for (const auto& fp : footprints.value()) {
    const auto it = plan.value().functions.find(fp.name);
    if (it == plan.value().functions.end()) continue;
    FunctionPlacement placement;
    placement.function = fp.name;
    placement.workload = fp.workload;
    std::vector<Replica> replicas;
    for (const auto& assignment : it->second) {
      const backends::Backend& backend = *pool[assignment.backend_index];
      placement.replicas.push_back(
          PlacedReplica{backend.node(), backend.kind(), assignment.weight});
      replicas.push_back(Replica{
          backend.node(), assignment.weight,
          static_cast<std::uint8_t>(backend.kind())});
    }
    if (gateway != nullptr) {
      gateway->register_replicas(route_name(fp.name), fp.workload, replicas,
                                 tenant_id);
    }
    if (etcd_ != nullptr) {
      // Best effort, as in the single-backend path: requires an elected
      // leader; earlier callers simply skip the etcd mirror.
      (void)etcd_->put(
          "route/" + route_name(fp.name),
          Gateway::encode_replicas(fp.workload, replicas, tenant_id));
    }
    record.placements.push_back(std::move(placement));
  }

  deployments_.push_back(record);
  return record;
}

}  // namespace lnic::framework
