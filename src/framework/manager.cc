#include "framework/manager.h"

namespace lnic::framework {

Result<DeploymentRecord> WorkloadManager::deploy(
    workloads::WorkloadBundle bundle, backends::Backend& backend,
    Gateway* gateway) {
  DeploymentRecord record;
  // Function list from the match spec (action names + workload IDs).
  for (const auto& table : bundle.spec.tables) {
    if (table.is_route_table) continue;
    for (const auto& entry : table.entries) {
      record.functions.emplace_back(
          entry.action_function,
          static_cast<WorkloadId>(entry.key_values.at(0)));
    }
  }

  const auto profile = backend.startup_profile();
  record.artifact_name = std::string(backends::to_string(backend.kind())) +
                         "/" + bundle.lambdas.name;
  record.artifact_bytes = profile.artifact_bytes;
  record.startup_time = profile.startup_time;
  record.ready_at = sim_.now() + profile.startup_time;
  storage_.put(record.artifact_name, record.artifact_bytes);

  if (Status st = backend.deploy(std::move(bundle)); !st.ok()) return st.error();

  for (const auto& [name, wid] : record.functions) {
    if (gateway != nullptr) {
      if (gateway->has_function(name)) {
        gateway->add_worker(name, backend.node());
      } else {
        gateway->register_function(name, wid, {backend.node()});
      }
    }
    if (etcd_ != nullptr) {
      std::vector<NodeId> workers;
      if (gateway != nullptr && gateway->route(name) != nullptr) {
        workers = gateway->route(name)->workers;
      } else {
        workers = {backend.node()};
      }
      // Best effort: requires an elected leader; callers running before
      // the election simply skip the etcd mirror.
      (void)etcd_->put("route/" + name, Gateway::encode_route(wid, workers));
    }
  }
  deployments_.push_back(record);
  return record;
}

}  // namespace lnic::framework
