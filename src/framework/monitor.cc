#include "framework/monitor.h"

#include <string>

#include "microc/ir.h"

namespace lnic::framework {

void Monitor::scrape() {
  ++scrapes_;
  const SimTime now = sim_.now();
  for (const auto& [name, backend] : backends_) {
    metrics_.gauge("backend_completed", {{"node", name}}) =
        static_cast<double>(backend->completed());
    const auto usage = backend->usage(now);
    metrics_.gauge("backend_host_cpu_pct", {{"node", name}}) =
        usage.host_cpu_percent;
    metrics_.gauge("backend_host_mem_mib", {{"node", name}}) =
        to_mib(usage.host_memory);
    metrics_.gauge("backend_nic_mem_mib", {{"node", name}}) =
        to_mib(usage.nic_memory);

    // NPU-grid view for NIC-resident workers: occupancy of the thread
    // grid, the dispatch queue, the instruction store and every level of
    // the memory hierarchy, attributable per lambda when the profiler
    // is enabled.
    auto* nic_backend = dynamic_cast<backends::LambdaNicBackend*>(backend);
    if (nic_backend == nullptr) continue;
    const auto& nic = nic_backend->nic();
    metrics_.gauge("nic_busy_threads", {{"node", name}}) =
        static_cast<double>(nic.busy_threads());
    metrics_.gauge("nic_queue_depth", {{"node", name}}) =
        static_cast<double>(nic.queue_depth());
    metrics_.gauge("nic_instr_store_words", {{"node", name}}) =
        static_cast<double>(nic.instr_words_used());
    for (const auto region :
         {microc::MemRegion::kLocal, microc::MemRegion::kCtm,
          microc::MemRegion::kImem, microc::MemRegion::kEmem}) {
      metrics_.gauge("nic_mem_bytes",
                     {{"node", name}, {"region", microc::to_string(region)}}) =
          static_cast<double>(nic.region_bytes_used(region));
    }
    // Per-tenant footprint and quota gauges: what each tenant's lambdas
    // occupy on the deployed firmware, and the admission ceilings the
    // card enforces at deploy/hot-swap time.
    static constexpr microc::MemRegion kRegions[] = {
        microc::MemRegion::kLocal, microc::MemRegion::kCtm,
        microc::MemRegion::kImem, microc::MemRegion::kEmem};
    for (const auto& [tenant, tenant_usage] : nic.tenant_usages()) {
      const std::string tid = std::to_string(tenant);
      metrics_.gauge("nic_tenant_instr_words",
                     {{"node", name}, {"tenant", tid}}) =
          static_cast<double>(tenant_usage.instr_words);
      for (const auto region : kRegions) {
        metrics_.gauge("nic_tenant_mem_bytes",
                       {{"node", name},
                        {"tenant", tid},
                        {"region", microc::to_string(region)}}) =
            static_cast<double>(
                tenant_usage.region_bytes[static_cast<int>(region)]);
      }
    }
    for (const auto& [tenant, quota] : nic.tenant_quotas()) {
      const std::string tid = std::to_string(tenant);
      metrics_.gauge("nic_tenant_quota_instr_words",
                     {{"node", name}, {"tenant", tid}}) =
          static_cast<double>(quota.instr_store_words);
      metrics_.gauge("nic_tenant_quota_ctm_bytes",
                     {{"node", name}, {"tenant", tid}}) =
          static_cast<double>(quota.ctm_bytes);
      metrics_.gauge("nic_tenant_quota_imem_bytes",
                     {{"node", name}, {"tenant", tid}}) =
          static_cast<double>(quota.imem_bytes);
      metrics_.gauge("nic_tenant_quota_emem_bytes",
                     {{"node", name}, {"tenant", tid}}) =
          static_cast<double>(quota.emem_bytes);
    }

    const auto* profiler = nic.profiler();
    if (profiler == nullptr) continue;
    metrics_.gauge("nic_grid_utilization", {{"node", name}}) =
        profiler->grid_utilization(now);
    metrics_.gauge("nic_queue_peak_depth", {{"node", name}}) =
        static_cast<double>(profiler->peak_queue_depth());
    for (const auto& [workload, busy] : profiler->lambda_busy()) {
      const std::string wid = std::to_string(workload);
      metrics_.gauge("nic_lambda_busy_ns", {{"node", name}, {"lambda", wid}}) =
          static_cast<double>(busy);
      metrics_.gauge("nic_lambda_dispatches",
                     {{"node", name}, {"lambda", wid}}) =
          static_cast<double>(profiler->lambda_dispatches(workload));
    }
  }
  metrics_.gauge("monitor_scrapes") = static_cast<double>(scrapes_);
}

}  // namespace lnic::framework
