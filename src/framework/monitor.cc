#include "framework/monitor.h"

#include <string>

#include "microc/ir.h"

namespace lnic::framework {

void Monitor::scrape() {
  ++scrapes_;
  const SimTime now = sim_.now();
  for (const auto& [name, backend] : backends_) {
    metrics_.gauge("backend_completed", {{"node", name}}) =
        static_cast<double>(backend->completed());
    const auto usage = backend->usage(now);
    metrics_.gauge("backend_host_cpu_pct", {{"node", name}}) =
        usage.host_cpu_percent;
    metrics_.gauge("backend_host_mem_mib", {{"node", name}}) =
        to_mib(usage.host_memory);
    metrics_.gauge("backend_nic_mem_mib", {{"node", name}}) =
        to_mib(usage.nic_memory);

    // NPU-grid view for NIC-resident workers: occupancy of the thread
    // grid, the dispatch queue, the instruction store and every level of
    // the memory hierarchy, attributable per lambda when the profiler
    // is enabled.
    auto* nic_backend = dynamic_cast<backends::LambdaNicBackend*>(backend);
    if (nic_backend == nullptr) continue;
    const auto& nic = nic_backend->nic();
    metrics_.gauge("nic_busy_threads", {{"node", name}}) =
        static_cast<double>(nic.busy_threads());
    metrics_.gauge("nic_queue_depth", {{"node", name}}) =
        static_cast<double>(nic.queue_depth());
    metrics_.gauge("nic_instr_store_words", {{"node", name}}) =
        static_cast<double>(nic.instr_words_used());
    for (const auto region :
         {microc::MemRegion::kLocal, microc::MemRegion::kCtm,
          microc::MemRegion::kImem, microc::MemRegion::kEmem}) {
      metrics_.gauge("nic_mem_bytes",
                     {{"node", name}, {"region", microc::to_string(region)}}) =
          static_cast<double>(nic.region_bytes_used(region));
    }
    // Per-tenant footprint and quota gauges: what each tenant's lambdas
    // occupy on the deployed firmware, and the admission ceilings the
    // card enforces at deploy/hot-swap time.
    static constexpr microc::MemRegion kRegions[] = {
        microc::MemRegion::kLocal, microc::MemRegion::kCtm,
        microc::MemRegion::kImem, microc::MemRegion::kEmem};
    for (const auto& [tenant, tenant_usage] : nic.tenant_usages()) {
      const std::string tid = std::to_string(tenant);
      metrics_.gauge("nic_tenant_instr_words",
                     {{"node", name}, {"tenant", tid}}) =
          static_cast<double>(tenant_usage.instr_words);
      for (const auto region : kRegions) {
        metrics_.gauge("nic_tenant_mem_bytes",
                       {{"node", name},
                        {"tenant", tid},
                        {"region", microc::to_string(region)}}) =
            static_cast<double>(
                tenant_usage.region_bytes[static_cast<int>(region)]);
      }
    }
    for (const auto& [tenant, quota] : nic.tenant_quotas()) {
      const std::string tid = std::to_string(tenant);
      metrics_.gauge("nic_tenant_quota_instr_words",
                     {{"node", name}, {"tenant", tid}}) =
          static_cast<double>(quota.instr_store_words);
      metrics_.gauge("nic_tenant_quota_ctm_bytes",
                     {{"node", name}, {"tenant", tid}}) =
          static_cast<double>(quota.ctm_bytes);
      metrics_.gauge("nic_tenant_quota_imem_bytes",
                     {{"node", name}, {"tenant", tid}}) =
          static_cast<double>(quota.imem_bytes);
      metrics_.gauge("nic_tenant_quota_emem_bytes",
                     {{"node", name}, {"tenant", tid}}) =
          static_cast<double>(quota.emem_bytes);
    }

    const auto* profiler = nic.profiler();
    if (profiler == nullptr) continue;
    metrics_.gauge("nic_grid_utilization", {{"node", name}}) =
        profiler->grid_utilization(now);
    metrics_.gauge("nic_queue_peak_depth", {{"node", name}}) =
        static_cast<double>(profiler->peak_queue_depth());
    for (const auto& [workload, busy] : profiler->lambda_busy()) {
      const std::string wid = std::to_string(workload);
      metrics_.gauge("nic_lambda_busy_ns", {{"node", name}, {"lambda", wid}}) =
          static_cast<double>(busy);
      metrics_.gauge("nic_lambda_dispatches",
                     {{"node", name}, {"lambda", wid}}) =
          static_cast<double>(profiler->lambda_dispatches(workload));
    }
  }
  if (packet_tracer_ != nullptr) {
    metrics_.gauge("packet_trace_evicted_total") =
        static_cast<double>(packet_tracer_->evicted());
  }

  // Transactional-store counters: op mix, commit/abort outcomes keyed
  // by the store's locking protocol, and NIC node-cache effectiveness.
  for (const auto& [name, store] : kv_stores_) {
    const auto& s = store->stats();
    const std::string proto = kvstore::to_string(store->protocol());
    metrics_.gauge("kv_ops_total", {{"node", name}, {"op", "get"}}) =
        static_cast<double>(s.gets);
    metrics_.gauge("kv_ops_total", {{"node", name}, {"op", "set"}}) =
        static_cast<double>(s.sets);
    metrics_.gauge("kv_ops_total", {{"node", name}, {"op", "txn"}}) =
        static_cast<double>(s.txns);
    metrics_.gauge("kv_txn_commits_total",
                   {{"node", name}, {"proto", proto}}) =
        static_cast<double>(s.commits);
    metrics_.gauge("kv_txn_aborts_total", {{"node", name}, {"proto", proto}}) =
        static_cast<double>(s.aborts);
    metrics_.gauge("kv_txn_retries_exhausted_total",
                   {{"node", name}, {"proto", proto}}) =
        static_cast<double>(s.retries_exhausted);
    const auto& c = store->cache_stats();
    metrics_.gauge("kv_cache_hit_ratio", {{"node", name}}) = c.hit_ratio();
    metrics_.gauge("kv_cache_hits", {{"node", name}}) =
        static_cast<double>(c.hits);
    metrics_.gauge("kv_cache_misses", {{"node", name}}) =
        static_cast<double>(c.misses);
    metrics_.gauge("kv_cache_evictions", {{"node", name}}) =
        static_cast<double>(c.evictions);
    metrics_.gauge("kv_cache_invalidations", {{"node", name}}) =
        static_cast<double>(c.invalidations);
  }
  // CacheServer (memcached-style) counters, same metric names so
  // dashboards treat both store kinds uniformly.
  for (const auto& [name, server] : cache_servers_) {
    const auto& s = server->stats();
    metrics_.gauge("kv_ops_total", {{"node", name}, {"op", "get"}}) =
        static_cast<double>(s.gets);
    metrics_.gauge("kv_ops_total", {{"node", name}, {"op", "set"}}) =
        static_cast<double>(s.sets);
    metrics_.gauge("kv_cache_hits", {{"node", name}}) =
        static_cast<double>(s.hits);
    metrics_.gauge("kv_cache_misses", {{"node", name}}) =
        static_cast<double>(s.misses);
    metrics_.gauge("kv_cache_evictions", {{"node", name}}) =
        static_cast<double>(s.evictions);
    metrics_.gauge("kv_cache_hit_ratio", {{"node", name}}) =
        s.gets == 0 ? 0.0
                    : static_cast<double>(s.hits) /
                          static_cast<double>(s.gets);
  }

  // Sharded-engine stall accounting: where the parallel run's wall time
  // went (busy vs barrier vs serial sync) and who talks to whom.
  if (sharded_ != nullptr) {
    const sim::ShardStats stats = sharded_->shard_stats();
    metrics_.gauge("sim_shard_windows_total") =
        static_cast<double>(stats.windows);
    metrics_.gauge("sim_shard_wall_ns_total") =
        static_cast<double>(stats.total_wall_ns);
    metrics_.gauge("sim_shard_sync_ns_total") =
        static_cast<double>(stats.sync_wall_ns());
    metrics_.gauge("sim_shard_lookahead_utilization") =
        stats.lookahead_utilization;
    metrics_.gauge("sim_shard_windows_extended_total") =
        static_cast<double>(stats.windows_extended);
    metrics_.gauge("sim_shard_mean_window_span_ns") =
        stats.mean_window_span_ns;
    metrics_.gauge("sim_shard_barrier_outliers_total") =
        static_cast<double>(stats.barrier_outliers);
    metrics_.gauge("sim_shard_barrier_outlier_threshold") =
        stats.outlier_threshold;
    for (unsigned s = 0; s < stats.shards; ++s) {
      const std::string sid = std::to_string(s);
      metrics_.gauge("sim_shard_busy_ns_total", {{"shard", sid}}) =
          static_cast<double>(stats.busy_ns[s]);
      metrics_.gauge("sim_shard_barrier_ns_total", {{"shard", sid}}) =
          static_cast<double>(stats.barrier_ns[s]);
      metrics_.gauge("sim_shard_events_total", {{"shard", sid}}) =
          static_cast<double>(stats.events[s]);
      metrics_.gauge("sim_shard_cross_posts_total", {{"shard", sid}}) =
          static_cast<double>(stats.cross_posts[s]);
    }
    // NxN matrix, nonzero cells only (bounds series cardinality to the
    // couplings that actually exist).
    for (unsigned src = 0; src < stats.shards; ++src) {
      for (unsigned dst = 0; dst < stats.shards; ++dst) {
        const std::uint64_t n = stats.cross(src, dst);
        if (n == 0) continue;
        metrics_.gauge("sim_shard_cross_events_total",
                       {{"dst", std::to_string(dst)},
                        {"src", std::to_string(src)}}) =
            static_cast<double>(n);
      }
    }
  }

  metrics_.gauge("monitor_scrapes") = static_cast<double>(scrapes_);
}

}  // namespace lnic::framework
