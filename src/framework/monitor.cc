#include "framework/monitor.h"

namespace lnic::framework {

void Monitor::scrape() {
  ++scrapes_;
  for (const auto& [name, backend] : backends_) {
    metrics_.gauge("backend_completed{node=" + name + "}") =
        static_cast<double>(backend->completed());
    const auto usage = backend->usage(sim_.now());
    metrics_.gauge("backend_host_cpu_pct{node=" + name + "}") =
        usage.host_cpu_percent;
    metrics_.gauge("backend_host_mem_mib{node=" + name + "}") =
        to_mib(usage.host_memory);
    metrics_.gauge("backend_nic_mem_mib{node=" + name + "}") =
        to_mib(usage.nic_memory);
  }
  if (gateway_ != nullptr) {
    // Mirror the gateway's counters into the monitor's registry so one
    // scrape endpoint exposes the whole system.
    metrics_.gauge("monitor_scrapes") = static_cast<double>(scrapes_);
  }
}

}  // namespace lnic::framework
