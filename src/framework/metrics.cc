#include "framework/metrics.h"

#include <sstream>

namespace lnic::framework {

Counter& MetricsRegistry::counter(const std::string& name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, Counter(name)).first;
  }
  return it->second;
}

double& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Sampler& MetricsRegistry::sampler(const std::string& name) {
  return samplers_[name];
}

bool MetricsRegistry::has(const std::string& name) const {
  return counters_.count(name) > 0 || gauges_.count(name) > 0 ||
         samplers_.count(name) > 0;
}

std::string MetricsRegistry::render() const {
  std::ostringstream out;
  for (const auto& [name, counter] : counters_) {
    out << name << " " << counter.value() << "\n";
  }
  for (const auto& [name, value] : gauges_) {
    out << name << " " << value << "\n";
  }
  for (const auto& [name, sampler] : samplers_) {
    out << name << "_count " << sampler.count() << "\n";
    if (!sampler.empty()) {
      out << name << "_mean " << sampler.mean() << "\n";
      out << name << "_p50 " << sampler.median() << "\n";
      out << name << "_p99 " << sampler.p99() << "\n";
    }
  }
  return out.str();
}

}  // namespace lnic::framework
