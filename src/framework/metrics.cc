#include "framework/metrics.h"

#include <algorithm>
#include <sstream>

namespace lnic::framework {

std::string series_key(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name + "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ",";
    key += sorted[i].first + "=" + sorted[i].second;
  }
  key += "}";
  return key;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, Counter(name)).first;
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  return counter(series_key(name, labels));
}

double& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

double& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  return gauges_[series_key(name, labels)];
}

Sampler& MetricsRegistry::sampler(const std::string& name) {
  return samplers_[name];
}

Sampler& MetricsRegistry::sampler(const std::string& name,
                                  const Labels& labels) {
  return samplers_[series_key(name, labels)];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels) {
  return histograms_
      .try_emplace(series_key(name, labels), Histogram())
      .first->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels,
                                      std::vector<double> bounds) {
  return histograms_
      .try_emplace(series_key(name, labels), Histogram(std::move(bounds)))
      .first->second;
}

bool MetricsRegistry::has(const std::string& name) const {
  return counters_.count(name) > 0 || gauges_.count(name) > 0 ||
         samplers_.count(name) > 0 || histograms_.count(name) > 0;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [key, c] : other.counters_) {
    counter(key).increment(c.value());
  }
  for (const auto& [key, value] : other.gauges_) {
    gauges_[key] += value;
  }
  for (const auto& [key, s] : other.samplers_) {
    samplers_[key].merge_from(s);
  }
  for (const auto& [key, h] : other.histograms_) {
    auto it = histograms_.find(key);
    if (it == histograms_.end()) {
      histograms_.emplace(key, h);
    } else {
      it->second.merge_from(h);
    }
  }
}

namespace {

/// Splits a canonical series key into name and label text ("" if none).
std::pair<std::string, std::string> split_key(const std::string& key) {
  const auto brace = key.find('{');
  if (brace == std::string::npos) return {key, ""};
  std::string labels = key.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.pop_back();
  return {key.substr(0, brace), labels};
}

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

/// Valid exposition label block from stored `k=v,...` text, optionally
/// with extra label pairs appended (used for histogram `le`).
std::string label_block(const std::string& labels,
                        const std::string& extra_key = "",
                        const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  std::istringstream stream(labels);
  std::string pair;
  while (std::getline(stream, pair, ',')) {
    const auto eq = pair.find('=');
    if (eq == std::string::npos) continue;
    if (!first) out += ",";
    first = false;
    out += pair.substr(0, eq) + "=\"" +
           escape_label_value(pair.substr(eq + 1)) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + escape_label_value(extra_value) + "\"";
  }
  out += "}";
  return out;
}

std::string format_value(double value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

}  // namespace

std::string MetricsRegistry::render() const {
  // One block of exposition lines per series, sorted by the series key
  // so output interleaves every metric kind in one global name order.
  std::vector<std::pair<std::string, std::string>> blocks;

  for (const auto& [key, counter] : counters_) {
    const auto [name, labels] = split_key(key);
    blocks.emplace_back(key, name + label_block(labels) + " " +
                                 std::to_string(counter.value()) + "\n");
  }
  for (const auto& [key, value] : gauges_) {
    const auto [name, labels] = split_key(key);
    blocks.emplace_back(key,
                        name + label_block(labels) + " " +
                            format_value(value) + "\n");
  }
  for (const auto& [key, sampler] : samplers_) {
    const auto [name, labels] = split_key(key);
    const std::string block = label_block(labels);
    std::ostringstream lines;
    lines << name << "_count" << block << " " << sampler.count() << "\n";
    if (!sampler.empty()) {
      lines << name << "_mean" << block << " " << format_value(sampler.mean())
            << "\n";
      lines << name << "_p50" << block << " " << format_value(sampler.median())
            << "\n";
      lines << name << "_p99" << block << " " << format_value(sampler.p99())
            << "\n";
    }
    blocks.emplace_back(key, lines.str());
  }
  for (const auto& [key, histogram] : histograms_) {
    const auto [name, labels] = split_key(key);
    std::ostringstream lines;
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < histogram.bounds().size(); ++b) {
      cumulative += histogram.buckets()[b];
      lines << name << "_bucket"
            << label_block(labels, "le", format_value(histogram.bounds()[b]))
            << " " << cumulative << "\n";
    }
    lines << name << "_bucket" << label_block(labels, "le", "+Inf") << " "
          << histogram.count() << "\n";
    lines << name << "_sum" << label_block(labels) << " "
          << format_value(histogram.sum()) << "\n";
    lines << name << "_count" << label_block(labels) << " "
          << histogram.count() << "\n";
    blocks.emplace_back(key, lines.str());
  }

  std::sort(blocks.begin(), blocks.end());
  std::string out;
  for (const auto& [key, lines] : blocks) out += lines;
  return out;
}

}  // namespace lnic::framework
