// Multi-window SLO burn-rate alerting (the SRE-workbook scheme adapted
// to simulated time). A tenant's error budget is 1 − objective; the
// burn rate over a window is the observed bad fraction divided by that
// budget, so burn 1.0 spends the budget exactly at the objective's
// horizon and burn 14.4 exhausts a 30-day budget in 2 days. An alert
// fires only when BOTH a fast and a slow window burn hot: the fast
// window gives low detection latency, the slow window keeps a
// transient blip from paging.
//
// This is the autoscaler's cheap early-warning signal: a burn-rate
// evaluation differences two counter snapshots per key (O(1)), where
// the p99 signal sorts the latency sample window every tick. The
// monitor runs on a simulated-time PeriodicTimer, so — like every other
// observability hook in this repo — it perturbs nothing unless its
// timer is started, and reading counters perturbs nothing either way.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "framework/metrics.h"
#include "sim/simulator.h"

namespace lnic::framework {

struct BurnRateConfig {
  /// Success objective, e.g. 0.999 → 0.1% error budget.
  double objective = 0.999;
  /// Fast/slow evaluation windows in simulated time.
  SimDuration fast_window = seconds(5);
  SimDuration slow_window = seconds(60);
  /// Both windows above `page_burn` → page; above `warn_burn` → warn.
  double page_burn = 14.4;
  double warn_burn = 3.0;
  SimDuration evaluation_period = seconds(1);
};

/// Cumulative demand/violation snapshot for one key.
struct BurnSample {
  std::uint64_t offered = 0;
  std::uint64_t bad = 0;  // failed + late (SLO violations)
};

/// Source of cumulative samples, keyed by route name ("fn" or
/// "tenant/fn"). See loadgen::burn_source and histogram_burn_source.
using BurnSourceFn = std::function<BurnSample(const std::string& key)>;

enum class AlertSeverity { kNone, kWarn, kPage };
const char* to_string(AlertSeverity severity);

/// Fired on every severity escalation (edge-triggered: entering warn,
/// or entering page — never on repeat evaluations at the same level).
using AlertFn = std::function<void(const std::string& key,
                                   AlertSeverity severity, double fast_burn,
                                   double slow_burn)>;

class SloMonitor {
 public:
  SloMonitor(sim::Simulator& sim, MetricsRegistry& registry,
             BurnRateConfig config, BurnSourceFn source);

  /// Starts evaluating `key` every tick ("fn" or "tenant/fn" — the
  /// tenant label on exported series comes from the prefix).
  void track(const std::string& key);
  void set_alert_handler(AlertFn handler) { alert_ = std::move(handler); }

  void start() { timer_.start(); }
  void stop() { timer_.stop(); }

  /// One evaluation pass (also driven by the timer). Snapshots every
  /// tracked key, recomputes fast/slow burns, updates
  /// `slo_burn_rate{tenant=,fn=}` / `slo_burn_rate_slow{...}` gauges,
  /// bumps `slo_alerts_total{tenant=,severity=}` on escalation and
  /// invokes the alert handler.
  void evaluate();

  /// Most recent burn rates / severity for a key (0 / kNone if unknown).
  double fast_burn(const std::string& key) const;
  double slow_burn(const std::string& key) const;
  AlertSeverity severity(const std::string& key) const;
  std::uint64_t evaluations() const { return evaluations_; }

  const BurnRateConfig& config() const { return config_; }

 private:
  struct Snap {
    SimTime at = 0;
    BurnSample sample;
  };
  struct KeyState {
    std::deque<Snap> history;  // pruned to the slow window
    double fast_burn = 0.0;
    double slow_burn = 0.0;
    AlertSeverity severity = AlertSeverity::kNone;
  };

  /// Burn over the trailing `window`: bad-fraction of the demand seen in
  /// the window, divided by the error budget.
  double window_burn(const KeyState& state, SimTime now,
                     SimDuration window) const;

  sim::Simulator& sim_;
  MetricsRegistry& registry_;
  BurnRateConfig config_;
  BurnSourceFn source_;
  AlertFn alert_;
  sim::PeriodicTimer timer_;
  std::map<std::string, KeyState> keys_;
  std::uint64_t evaluations_ = 0;
};

/// Derives cumulative burn samples for a key from a latency histogram's
/// bucket counts: `bad` = observations above `bound_ns` summed over
/// every `histogram_name` series whose `fn` label equals the key.
/// Sees completions only (sheds never reach the histogram), so prefer a
/// tracker-backed source when one exists.
BurnSourceFn histogram_burn_source(const MetricsRegistry& registry,
                                   std::string histogram_name,
                                   double bound_ns);

}  // namespace lnic::framework
