// Monitoring engine (§6.1.1: OpenFaaS includes "a Prometheus-based
// monitoring engine to analyze system state"). Periodically scrapes the
// registered backends and the gateway into a MetricsRegistry, keeping a
// time series of gauges (completed requests, busy threads, NIC memory).
#pragma once

#include <string>
#include <vector>

#include "backends/backend.h"
#include "framework/gateway.h"
#include "framework/metrics.h"
#include "sim/simulator.h"

namespace lnic::framework {

class Monitor {
 public:
  Monitor(sim::Simulator& sim, SimDuration scrape_interval = seconds(1))
      : sim_(sim),
        timer_(sim, scrape_interval, [this] { scrape(); }) {}

  void watch_backend(const std::string& name, backends::Backend* backend) {
    backends_.emplace_back(name, backend);
  }
  void watch_gateway(Gateway* gateway) { gateway_ = gateway; }

  void start() { timer_.start(); }
  void stop() { timer_.stop(); }

  /// Runs one scrape immediately (also called by the timer).
  void scrape();

  MetricsRegistry& metrics() { return metrics_; }
  std::uint64_t scrapes() const { return scrapes_; }

 private:
  sim::Simulator& sim_;
  sim::PeriodicTimer timer_;
  std::vector<std::pair<std::string, backends::Backend*>> backends_;
  Gateway* gateway_ = nullptr;
  MetricsRegistry metrics_;
  std::uint64_t scrapes_ = 0;
};

}  // namespace lnic::framework
