// Monitoring engine (§6.1.1: OpenFaaS includes "a Prometheus-based
// monitoring engine to analyze system state"). Periodically scrapes the
// registered backends and the gateway into a MetricsRegistry, keeping a
// time series of gauges (completed requests, busy threads, NIC memory).
#pragma once

#include <string>
#include <vector>

#include "backends/backend.h"
#include "framework/gateway.h"
#include "framework/metrics.h"
#include "kvstore/cache_server.h"
#include "kvstore/txn.h"
#include "net/trace.h"
#include "sim/sharded.h"
#include "sim/simulator.h"

namespace lnic::framework {

class Monitor {
 public:
  Monitor(sim::Simulator& sim, SimDuration scrape_interval = seconds(1))
      : sim_(sim),
        timer_(sim, scrape_interval, [this] { scrape(); }) {}

  void watch_backend(const std::string& name, backends::Backend* backend) {
    backends_.emplace_back(name, backend);
  }
  void watch_gateway(Gateway* gateway) { gateway_ = gateway; }
  /// Exports the sharded engine's stall accounting as sim_shard_*
  /// gauges on every scrape. The Monitor's timer runs on shard 0 — the
  /// coordinating thread — which is exactly the thread the stall
  /// collector's single-threaded contract requires.
  void watch_sharded(const sim::ShardedSimulator* sharded) {
    sharded_ = sharded;
  }
  /// Exports the packet-trace ring's eviction count as
  /// packet_trace_evicted_total (previously only visible in dump()).
  void watch_packet_tracer(const net::PacketTracer* tracer) {
    packet_tracer_ = tracer;
  }
  /// Exports a transactional store's op/txn/cache counters as labeled
  /// kv_* gauges (kv_ops_total{op=}, kv_txn_aborts_total{proto=},
  /// kv_cache_hit_ratio, ...).
  void watch_kv(const std::string& name, const kvstore::TxnStore* store) {
    kv_stores_.emplace_back(name, store);
  }
  /// Exports a memcached-style CacheServer's counters under the same
  /// kv_* metric names (distinguished by the node label).
  void watch_cache(const std::string& name,
                   const kvstore::CacheServer* server) {
    cache_servers_.emplace_back(name, server);
  }

  void start() { timer_.start(); }
  void stop() { timer_.stop(); }

  /// Runs one scrape immediately (also called by the timer).
  void scrape();

  MetricsRegistry& metrics() { return metrics_; }
  std::uint64_t scrapes() const { return scrapes_; }

 private:
  sim::Simulator& sim_;
  sim::PeriodicTimer timer_;
  std::vector<std::pair<std::string, backends::Backend*>> backends_;
  Gateway* gateway_ = nullptr;
  const sim::ShardedSimulator* sharded_ = nullptr;
  const net::PacketTracer* packet_tracer_ = nullptr;
  std::vector<std::pair<std::string, const kvstore::TxnStore*>> kv_stores_;
  std::vector<std::pair<std::string, const kvstore::CacheServer*>>
      cache_servers_;
  MetricsRegistry metrics_;
  std::uint64_t scrapes_ = 0;
};

}  // namespace lnic::framework
