#include "framework/slo_monitor.h"

#include <algorithm>

namespace lnic::framework {

namespace {

/// "tenant/fn" → tenant prefix; bare "fn" belongs to the default tenant.
std::string tenant_of_key(const std::string& key) {
  const auto slash = key.find('/');
  return slash == std::string::npos ? "default" : key.substr(0, slash);
}

Labels burn_labels(const std::string& key) {
  return {{"fn", key}, {"tenant", tenant_of_key(key)}};
}

}  // namespace

const char* to_string(AlertSeverity severity) {
  switch (severity) {
    case AlertSeverity::kNone: return "none";
    case AlertSeverity::kWarn: return "warn";
    case AlertSeverity::kPage: return "page";
  }
  return "none";
}

SloMonitor::SloMonitor(sim::Simulator& sim, MetricsRegistry& registry,
                       BurnRateConfig config, BurnSourceFn source)
    : sim_(sim),
      registry_(registry),
      config_(config),
      source_(std::move(source)),
      timer_(sim, config.evaluation_period, [this] { evaluate(); }) {}

void SloMonitor::track(const std::string& key) { keys_.emplace(key, KeyState{}); }

double SloMonitor::window_burn(const KeyState& state, SimTime now,
                               SimDuration window) const {
  if (state.history.empty()) return 0.0;
  const Snap& head = state.history.back();
  // Baseline: the latest snapshot at or before the window start, falling
  // back to the oldest retained one (short histories under-window, which
  // only makes the estimate more conservative at startup).
  const SimTime start = now - window;
  const Snap* base = &state.history.front();
  for (const Snap& s : state.history) {
    if (s.at > start) break;
    base = &s;
  }
  const std::uint64_t offered = head.sample.offered - base->sample.offered;
  if (offered == 0) return 0.0;
  const std::uint64_t bad = head.sample.bad - base->sample.bad;
  const double budget = 1.0 - config_.objective;
  if (budget <= 0.0) return 0.0;
  return (static_cast<double>(bad) / static_cast<double>(offered)) / budget;
}

void SloMonitor::evaluate() {
  ++evaluations_;
  const SimTime now = sim_.now();
  for (auto& [key, state] : keys_) {
    state.history.push_back(Snap{now, source_(key)});
    // Keep one snapshot older than the slow window as the baseline.
    while (state.history.size() > 2 &&
           state.history[1].at <= now - config_.slow_window) {
      state.history.pop_front();
    }
    state.fast_burn = window_burn(state, now, config_.fast_window);
    state.slow_burn = window_burn(state, now, config_.slow_window);

    // Multi-window AND: both the fast and the slow window must burn hot.
    const double both = std::min(state.fast_burn, state.slow_burn);
    AlertSeverity severity = AlertSeverity::kNone;
    if (both >= config_.page_burn) {
      severity = AlertSeverity::kPage;
    } else if (both >= config_.warn_burn) {
      severity = AlertSeverity::kWarn;
    }

    const Labels labels = burn_labels(key);
    registry_.gauge("slo_burn_rate", labels) = state.fast_burn;
    registry_.gauge("slo_burn_rate_slow", labels) = state.slow_burn;
    if (severity > state.severity) {
      registry_
          .counter("slo_alerts_total", {{"severity", to_string(severity)},
                                        {"tenant", tenant_of_key(key)}})
          .increment();
      if (alert_) alert_(key, severity, state.fast_burn, state.slow_burn);
    }
    state.severity = severity;
  }
}

double SloMonitor::fast_burn(const std::string& key) const {
  const auto it = keys_.find(key);
  return it == keys_.end() ? 0.0 : it->second.fast_burn;
}

double SloMonitor::slow_burn(const std::string& key) const {
  const auto it = keys_.find(key);
  return it == keys_.end() ? 0.0 : it->second.slow_burn;
}

AlertSeverity SloMonitor::severity(const std::string& key) const {
  const auto it = keys_.find(key);
  return it == keys_.end() ? AlertSeverity::kNone : it->second.severity;
}

BurnSourceFn histogram_burn_source(const MetricsRegistry& registry,
                                   std::string histogram_name,
                                   double bound_ns) {
  return [&registry, name = std::move(histogram_name),
          bound_ns](const std::string& key) {
    BurnSample sample;
    const std::string label = "fn=" + key;
    for (const auto& [series, hist] : registry.histogram_series()) {
      if (series.compare(0, name.size() + 1, name + "{") != 0) continue;
      // Label match: `fn=<key>` delimited by '{'/',' and ','/'}' in the
      // canonical sorted-label key.
      const auto pos = series.find(label);
      if (pos == std::string::npos) continue;
      const char before = series[pos - 1];
      const char after = series[pos + label.size()];
      if ((before != '{' && before != ',') || (after != ',' && after != '}')) {
        continue;
      }
      sample.offered += hist.count();
      // Observations strictly above the largest bucket bound <= bound_ns
      // (exact when bound_ns is itself a bucket bound).
      const auto& bounds = hist.bounds();
      std::uint64_t within = 0;
      for (std::size_t i = 0; i < bounds.size(); ++i) {
        if (bounds[i] > bound_ns) break;
        within = hist.cumulative(i);
      }
      sample.bad += hist.count() - within;
    }
    return sample;
  };
}

}  // namespace lnic::framework
