// Worker health checking: periodically probes each registered worker
// with a tiny RPC; after `max_failures` consecutive timeouts the worker
// is declared dead and removed from every gateway route (the manager or
// autoscaler re-adds it after recovery). Complements the gateway's
// per-request failover with proactive detection.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "framework/gateway.h"
#include "proto/rpc.h"
#include "sim/simulator.h"

namespace lnic::framework {

struct HealthConfig {
  SimDuration probe_interval = milliseconds(500);
  SimDuration probe_timeout = milliseconds(100);
  std::uint32_t max_failures = 3;
  /// Workload ID of the probe request (must be routable on the worker;
  /// kInvalidWorkload probes are counted to the host path but still
  /// elicit no response, so use a real lambda's ID).
  WorkloadId probe_workload = 1;
};

class HealthChecker {
 public:
  HealthChecker(sim::Simulator& sim, net::Network& network, Gateway& gateway,
                HealthConfig config = {});

  /// Registers a worker for probing.
  void watch(NodeId worker, std::vector<std::uint8_t> probe_payload);

  void start() { timer_.start(); }
  void stop() { timer_.stop(); }

  bool is_healthy(NodeId worker) const {
    const auto it = state_.find(worker);
    return it != state_.end() && !it->second.dead;
  }
  std::uint64_t removals() const { return removals_; }

  /// Called when a worker is declared dead (after route removal).
  void set_on_dead(std::function<void(NodeId)> fn) { on_dead_ = std::move(fn); }

 private:
  void probe_all();

  struct WorkerState {
    std::vector<std::uint8_t> payload;
    std::uint32_t consecutive_failures = 0;
    bool dead = false;
  };

  sim::Simulator& sim_;
  Gateway& gateway_;
  HealthConfig config_;
  proto::RpcClient rpc_;
  sim::PeriodicTimer timer_;
  std::map<NodeId, WorkerState> state_;
  std::uint64_t removals_ = 0;
  std::function<void(NodeId)> on_dead_;
};

}  // namespace lnic::framework
