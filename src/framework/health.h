// Worker health checking: periodically probes each registered worker
// with a tiny RPC; after `max_failures` consecutive timeouts the worker
// is quarantined in the gateway (skipped by the dispatcher but kept in
// every route). Quarantined workers keep being probed — the first
// successful probe reinstates them automatically, closing the
// quarantine → probe → reinstate loop without manager intervention.
// Complements the gateway's per-request failover with proactive
// detection and recovery.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "framework/gateway.h"
#include "proto/rpc.h"
#include "sim/simulator.h"

namespace lnic::framework {

struct HealthConfig {
  SimDuration probe_interval = milliseconds(500);
  SimDuration probe_timeout = milliseconds(100);
  std::uint32_t max_failures = 3;
  /// Workload ID of the probe request (must be routable on the worker;
  /// kInvalidWorkload probes are counted to the host path but still
  /// elicit no response, so use a real lambda's ID).
  WorkloadId probe_workload = 1;
};

class HealthChecker {
 public:
  HealthChecker(sim::Simulator& sim, net::Network& network, Gateway& gateway,
                HealthConfig config = {});

  /// Registers a worker for probing.
  void watch(NodeId worker, net::BufferView probe_payload);

  void start() { timer_.start(); }
  void stop() { timer_.stop(); }

  bool is_healthy(NodeId worker) const {
    const auto it = state_.find(worker);
    return it != state_.end() && !it->second.quarantined;
  }
  /// Workers currently quarantined by this checker.
  std::uint64_t quarantines() const { return quarantines_; }
  /// Times a quarantined worker recovered and was reinstated.
  std::uint64_t recoveries() const { return recoveries_; }
  /// Legacy name from the remove-on-death era; now counts quarantines.
  std::uint64_t removals() const { return quarantines_; }

  /// Called when a worker is quarantined / reinstated.
  void set_on_dead(std::function<void(NodeId)> fn) { on_dead_ = std::move(fn); }
  void set_on_recovered(std::function<void(NodeId)> fn) {
    on_recovered_ = std::move(fn);
  }

 private:
  void probe_all();

  struct WorkerState {
    net::BufferView payload;
    std::uint32_t consecutive_failures = 0;
    bool quarantined = false;
  };

  sim::Simulator& sim_;
  Gateway& gateway_;
  HealthConfig config_;
  proto::RpcClient rpc_;
  sim::PeriodicTimer timer_;
  std::map<NodeId, WorkerState> state_;
  std::uint64_t quarantines_ = 0;
  std::uint64_t recoveries_ = 0;
  std::function<void(NodeId)> on_dead_;
  std::function<void(NodeId)> on_recovered_;
};

}  // namespace lnic::framework
