// Workload manager (Fig. 2): compiles users' Match+Lambda bundles,
// uploads artifacts to global storage, deploys to backends (recording
// the Table 4 startup phases), and registers routes — directly with a
// gateway and/or through the etcd store gateways watch.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "backends/backend.h"
#include "common/result.h"
#include "framework/gateway.h"
#include "framework/placement.h"
#include "framework/storage.h"
#include "kvstore/etcd.h"
#include "sim/simulator.h"
#include "workloads/lambdas.h"

namespace lnic::framework {

/// One replica of a function as actually deployed.
struct PlacedReplica {
  NodeId node = kInvalidNode;
  backends::BackendKind kind = backends::BackendKind::kLambdaNic;
  std::uint32_t weight = 1;
};

/// Where one function's replicas landed.
struct FunctionPlacement {
  std::string function;
  WorkloadId workload = kInvalidWorkload;
  std::vector<PlacedReplica> replicas;
};

/// Result of one deployment: what was installed where, and how long the
/// backend took to become ready (download + boot, Table 4's axes). Pool
/// deployments additionally record the per-function placement and the
/// policy that produced it.
struct DeploymentRecord {
  std::string artifact_name;
  Bytes artifact_bytes = 0;
  SimDuration startup_time = 0;
  SimTime ready_at = 0;
  std::vector<std::pair<std::string, WorkloadId>> functions;
  std::string policy;  // placement policy name; empty for legacy deploys
  std::vector<FunctionPlacement> placements;
  /// Tenant namespace the bundle was deployed under (empty for legacy
  /// single-tenant deploys). Gateway routes are registered as
  /// "<tenant>/<function>".
  std::string tenant;
  TenantId tenant_id = kDefaultTenant;
};

class WorkloadManager {
 public:
  WorkloadManager(sim::Simulator& sim, BlobStorage& storage,
                  kvstore::EtcdStore* etcd = nullptr)
      : sim_(sim), storage_(storage), etcd_(etcd) {}

  /// Compiles + deploys `bundle` on `backend`, uploads the artifact,
  /// registers each (name, workload id) with `gateway` (if given) and in
  /// etcd (if configured). Function names come from the bundle's match
  /// spec action names.
  Result<DeploymentRecord> deploy(workloads::WorkloadBundle bundle,
                                  backends::Backend& backend,
                                  Gateway* gateway);

  /// Capacity-aware deployment across a heterogeneous pool (§5, Fig. 2):
  /// measures per-lambda footprints, asks `policy` for a PlacementPlan,
  /// splits the bundle per backend, deploys each sub-bundle, and
  /// registers every function as a weighted replica set (with backend
  /// kinds) in `gateway` and etcd. The record carries the full placement.
  Result<DeploymentRecord> deploy(workloads::WorkloadBundle bundle,
                                  std::span<backends::Backend* const> pool,
                                  const PlacementPolicy& policy,
                                  Gateway* gateway);

  /// Tenant-namespaced pool deployment: every function of the bundle
  /// belongs to `tenant`. Workload → tenant assignments and the tenant's
  /// quota (if one was recorded) are installed on each backend *before*
  /// its deploy, so NIC quota admission sees them; routes register under
  /// "<tenant>/<function>" with the tenant id carried in gateway routes,
  /// request headers, and the etcd mirror.
  Result<DeploymentRecord> deploy(workloads::WorkloadBundle bundle,
                                  std::span<backends::Backend* const> pool,
                                  const PlacementPolicy& policy,
                                  Gateway* gateway,
                                  const std::string& tenant);

  /// Records a tenant's NIC resource quota, applied to every backend on
  /// that tenant's subsequent deploys.
  void set_tenant_quota(const std::string& tenant, nicsim::TenantQuota quota) {
    tenant_quotas_[tenant] = quota;
  }

  const std::vector<DeploymentRecord>& deployments() const {
    return deployments_;
  }

 private:
  TenantId resolve_tenant(const std::string& tenant, Gateway* gateway);

  sim::Simulator& sim_;
  BlobStorage& storage_;
  kvstore::EtcdStore* etcd_;
  std::vector<DeploymentRecord> deployments_;
  std::map<std::string, nicsim::TenantQuota> tenant_quotas_;
  std::map<std::string, TenantId> local_tenant_ids_;  // gateway-less deploys
};

}  // namespace lnic::framework
