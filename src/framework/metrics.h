// Prometheus-style metrics registry (the paper's baseline stack runs a
// Prometheus-based monitoring engine, §6.1.1). Counters, gauges,
// samplers and bucketed histograms are registered by name — optionally
// with labels (`rpc_latency_ns{backend="nic",fn="kvstore"}`) — and
// rendered in the text exposition format for scraping/inspection.
//
// Series are stored under a canonical key `name{k=v,...}` with label
// keys sorted, which is also what the label-less overloads accept
// directly: `counter("x_total", {{"fn", "f"}})` and the legacy
// `counter("x_total{fn=f}")` address the same series.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace lnic::framework {

/// Label set of one series, e.g. {{"fn", "kvstore"}, {"backend", "nic"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Canonical series key: `name` alone when `labels` is empty, otherwise
/// `name{k=v,...}` with label keys sorted.
std::string series_key(const std::string& name, const Labels& labels);

class MetricsRegistry {
 public:
  /// Returns (creating on first use) the named metric. The single-string
  /// forms accept a pre-baked series key ("x_total{fn=f}").
  Counter& counter(const std::string& name);
  Counter& counter(const std::string& name, const Labels& labels);
  double& gauge(const std::string& name);
  double& gauge(const std::string& name, const Labels& labels);
  Sampler& sampler(const std::string& name);
  Sampler& sampler(const std::string& name, const Labels& labels);
  /// Histograms use Histogram::default_latency_bounds() unless the
  /// series' first use passes explicit bounds.
  Histogram& histogram(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels,
                       std::vector<double> bounds);

  bool has(const std::string& name) const;

  /// Read-only view of every histogram series keyed by canonical series
  /// key — lets the SLO monitor derive burn rates from latency
  /// histograms without copying them.
  const std::map<std::string, Histogram>& histogram_series() const {
    return histograms_;
  }

  /// Folds another registry into this one: counters and gauges add,
  /// samplers append their raw samples, histograms add bucket-wise
  /// (series whose bounds differ are skipped). Lets shard-local
  /// registries merge into one scrape-time view.
  void merge_from(const MetricsRegistry& other);

  /// Text exposition, globally name-sorted (series of every kind
  /// interleave in one deterministic lexicographic order). Counters and
  /// gauges render one `name{labels} value` line; samplers expand to
  /// _count/_mean/_p50/_p99 series; histograms to the Prometheus
  /// _bucket{le=...}/_sum/_count series.
  std::string render() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Sampler> samplers_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace lnic::framework
