// Prometheus-style metrics registry (the paper's baseline stack runs a
// Prometheus-based monitoring engine, §6.1.1). Counters, gauges and
// samplers are registered by name and rendered in the text exposition
// format for scraping/inspection.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/stats.h"

namespace lnic::framework {

class MetricsRegistry {
 public:
  /// Returns (creating on first use) the named metric.
  Counter& counter(const std::string& name);
  double& gauge(const std::string& name);
  Sampler& sampler(const std::string& name);

  bool has(const std::string& name) const;

  /// Text exposition: one `name value` line per counter/gauge; samplers
  /// expand to _count/_mean/_p50/_p99 series.
  std::string render() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Sampler> samplers_;
};

}  // namespace lnic::framework
