#include "framework/gateway.h"

#include <algorithm>
#include <sstream>

namespace lnic::framework {

std::uint64_t Route::total_weight() const {
  std::uint64_t total = 0;
  for (const auto& replica : replicas) total += replica.weight;
  return total;
}

namespace {
/// Maps a round-robin cursor onto the weighted replica set: replica i
/// owns `weight_i` consecutive slots of the cycle. With every weight at 1
/// this is exactly `workers[cursor % workers.size()]`.
NodeId weighted_pick(const Route& route, std::size_t cursor) {
  const std::uint64_t total = route.total_weight();
  if (total == 0) return route.workers[cursor % route.workers.size()];
  std::uint64_t slot = cursor % total;
  for (const auto& replica : route.replicas) {
    if (slot < replica.weight) return replica.node;
    slot -= replica.weight;
  }
  return route.replicas.back().node;
}
}  // namespace

Gateway::Gateway(sim::Simulator& sim, net::Network& network,
                 GatewayConfig config)
    : sim_(sim), config_(config), rpc_(sim, network, config.rpc) {}

void Gateway::register_function(const std::string& name, WorkloadId workload,
                                std::vector<NodeId> workers) {
  std::vector<Replica> replicas;
  replicas.reserve(workers.size());
  for (NodeId node : workers) replicas.push_back(Replica{node, 1,
                                                         kUnknownBackendKind});
  routes_[name] = Route{workload, std::move(workers), std::move(replicas)};
}

void Gateway::register_replicas(const std::string& name, WorkloadId workload,
                                std::vector<Replica> replicas) {
  std::vector<NodeId> workers;
  workers.reserve(replicas.size());
  for (const auto& replica : replicas) workers.push_back(replica.node);
  routes_[name] = Route{workload, std::move(workers), std::move(replicas)};
}

void Gateway::set_rate_limit(const std::string& name, RateLimit limit) {
  Bucket bucket;
  bucket.limit = limit;
  bucket.tokens = limit.burst;
  bucket.refilled_at = sim_.now();
  buckets_[name] = bucket;
}

bool Gateway::admit(const std::string& name) {
  const auto it = buckets_.find(name);
  if (it == buckets_.end() || it->second.limit.requests_per_second <= 0.0) {
    return true;
  }
  Bucket& b = it->second;
  const double elapsed = to_sec(sim_.now() - b.refilled_at);
  b.tokens = std::min(b.limit.burst,
                      b.tokens + elapsed * b.limit.requests_per_second);
  b.refilled_at = sim_.now();
  if (b.tokens < 1.0) return false;
  b.tokens -= 1.0;
  return true;
}

void Gateway::add_worker(const std::string& name, NodeId worker) {
  routes_[name].workers.push_back(worker);
  routes_[name].replicas.push_back(Replica{worker, 1, kUnknownBackendKind});
}

const Route* Gateway::route(const std::string& name) const {
  const auto it = routes_.find(name);
  return it == routes_.end() ? nullptr : &it->second;
}

void Gateway::invoke(const std::string& name,
                     std::vector<std::uint8_t> payload,
                     InvokeCallback callback) {
  if (!has_function(name) || routes_[name].workers.empty()) {
    metrics_.counter("gateway_unroutable_total").increment();
    if (callback) callback(make_error("gateway: no route for '" + name + "'"));
    return;
  }
  if (!admit(name)) {
    metrics_.counter("gateway_throttled_total{fn=" + name + "}").increment();
    if (callback) {
      callback(make_error("gateway: '" + name + "' throttled by rate limit"));
    }
    return;
  }
  metrics_.counter("gateway_requests_total{fn=" + name + "}").increment();
  dispatch(name, std::move(payload), std::move(callback),
           config_.failover_attempts);
}

void Gateway::remove_worker(NodeId worker) {
  for (auto& [name, route] : routes_) {
    (void)name;
    route.workers.erase(
        std::remove(route.workers.begin(), route.workers.end(), worker),
        route.workers.end());
    route.replicas.erase(
        std::remove_if(route.replicas.begin(), route.replicas.end(),
                       [worker](const Replica& r) { return r.node == worker; }),
        route.replicas.end());
  }
}

void Gateway::dispatch(const std::string& name,
                       std::vector<std::uint8_t> payload,
                       InvokeCallback callback,
                       std::uint32_t attempts_left) {
  const auto it = routes_.find(name);
  if (it == routes_.end() || it->second.workers.empty()) {
    if (callback) callback(make_error("gateway: no workers for '" + name + "'"));
    return;
  }
  const Route& route = it->second;
  const NodeId worker = weighted_pick(route, rr_cursor_[name]++);

  const SimTime started = sim_.now();
  // Proxy/NAT lookup happens before the request leaves the gateway.
  sim_.schedule(config_.proxy_overhead, [this, name, worker, route, started,
                                         attempts_left,
                                         payload = std::move(payload),
                                         callback = std::move(callback)]() mutable {
    // Keep a copy in case the call fails and we fail over to a replica.
    std::vector<std::uint8_t> retry_copy = payload;
    rpc_.call(worker, route.workload, std::move(payload),
              [this, name, worker, started, attempts_left,
               retry_copy = std::move(retry_copy),
               callback = std::move(callback)](
                  Result<proto::RpcResponse> result) mutable {
                if (result.ok()) {
                  metrics_
                      .sampler("gateway_latency_ns{fn=" + name + "}")
                      .add(static_cast<double>(sim_.now() - started));
                  if (callback) callback(std::move(result));
                  return;
                }
                metrics_.counter("gateway_failures_total{fn=" + name + "}")
                    .increment();
                // The worker looks dead: drop it and fail over to the
                // next replica (the autoscaler/manager re-adds healthy
                // workers through etcd).
                if (attempts_left > 0) {
                  remove_worker(worker);
                  metrics_.counter("gateway_failovers_total{fn=" + name + "}")
                      .increment();
                  dispatch(name, std::move(retry_copy), std::move(callback),
                           attempts_left - 1);
                  return;
                }
                if (callback) callback(std::move(result));
              });
  });
}

std::string Gateway::encode_route(WorkloadId workload,
                                  const std::vector<NodeId>& workers) {
  std::vector<Replica> replicas;
  replicas.reserve(workers.size());
  for (NodeId node : workers) replicas.push_back(Replica{node, 1,
                                                         kUnknownBackendKind});
  return encode_replicas(workload, replicas);
}

std::string Gateway::encode_replicas(WorkloadId workload,
                                     const std::vector<Replica>& replicas) {
  std::ostringstream out;
  out << workload << "|";
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    if (i > 0) out << ",";
    out << replicas[i].node;
    // Defaults stay implicit so plain routes keep the legacy encoding.
    if (replicas[i].weight != 1) out << "*" << replicas[i].weight;
    if (replicas[i].backend_kind != kUnknownBackendKind) {
      out << "@" << static_cast<unsigned>(replicas[i].backend_kind);
    }
  }
  return out.str();
}

Result<Route> Gateway::decode_route(const std::string& encoded) {
  const auto malformed = [&encoded]() {
    return make_error("gateway: malformed route '" + encoded + "'");
  };
  const auto bar = encoded.find('|');
  if (bar == std::string::npos) return malformed();
  Route route;
  try {
    route.workload = static_cast<WorkloadId>(
        std::stoul(encoded.substr(0, bar)));
    std::string rest = encoded.substr(bar + 1);
    std::istringstream stream(rest);
    std::string token;
    while (std::getline(stream, token, ',')) {
      if (token.empty()) return malformed();
      Replica replica;
      // "<node>[*<weight>][@<kind>]" — the optional parts in that order.
      const auto at = token.find('@');
      if (at != std::string::npos) {
        const unsigned long kind = std::stoul(token.substr(at + 1));
        if (kind > 0xFF) return malformed();
        replica.backend_kind = static_cast<std::uint8_t>(kind);
        token = token.substr(0, at);
      }
      const auto star = token.find('*');
      if (star != std::string::npos) {
        const unsigned long weight = std::stoul(token.substr(star + 1));
        if (weight == 0) return malformed();
        replica.weight = static_cast<std::uint32_t>(weight);
        token = token.substr(0, star);
      }
      if (token.empty()) return malformed();
      replica.node = static_cast<NodeId>(std::stoul(token));
      route.workers.push_back(replica.node);
      route.replicas.push_back(replica);
    }
  } catch (const std::exception&) {
    return malformed();
  }
  if (route.replicas.empty()) return malformed();
  return route;
}

void Gateway::apply_route_key(const std::string& key,
                              const std::string& value) {
  constexpr const char* kPrefix = "route/";
  if (key.rfind(kPrefix, 0) != 0) return;
  const std::string name = key.substr(6);
  auto decoded = decode_route(value);
  if (decoded.ok()) {
    routes_[name] = std::move(decoded).value();
  }
}

void Gateway::sync_with(kvstore::EtcdStore& etcd) {
  for (const auto& [key, value] : etcd.list("route/")) {
    apply_route_key(key, value);
  }
  etcd.watch("route/", [this](const std::string& key,
                              const std::string& value) {
    apply_route_key(key, value);
  });
}

}  // namespace lnic::framework
