#include "framework/gateway.h"

#include <algorithm>
#include <charconv>
#include <optional>
#include <sstream>

#include "common/flightrec.h"

namespace lnic::framework {

std::uint64_t Route::total_weight() const {
  std::uint64_t total = 0;
  for (const auto& replica : replicas) total += replica.weight;
  return total;
}

namespace {
/// Maps a round-robin cursor onto the weighted replica set: replica i
/// owns `weight_i` consecutive slots of the cycle. With every weight at 1
/// this is exactly `workers[cursor % workers.size()]`.
NodeId weighted_pick(const Route& route, std::size_t cursor) {
  const std::uint64_t total = route.total_weight();
  if (total == 0) return route.workers[cursor % route.workers.size()];
  std::uint64_t slot = cursor % total;
  for (const auto& replica : route.replicas) {
    if (slot < replica.weight) return replica.node;
    slot -= replica.weight;
  }
  return route.replicas.back().node;
}

/// Strict non-negative integer parse: the whole token must be digits
/// (std::stoul would accept "2x" as 2 and wrap "-1" to a huge value).
std::optional<std::uint64_t> parse_u64(const std::string& token) {
  if (token.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

/// Metric label for a replica's backend kind without pulling the
/// backends layer into the gateway (mirrors backends::BackendKind).
const char* backend_kind_label(std::uint8_t kind) {
  switch (kind) {
    case 0: return "nic";
    case 1: return "baremetal";
    case 2: return "container";
    default: return "unknown";
  }
}
}  // namespace

Gateway::Gateway(sim::Simulator& sim, net::Network& network,
                 GatewayConfig config)
    : sim_(sim), config_(config), rpc_(sim, network, config.rpc) {}

void Gateway::register_function(const std::string& name, WorkloadId workload,
                                std::vector<NodeId> workers) {
  std::vector<Replica> replicas;
  replicas.reserve(workers.size());
  for (NodeId node : workers) replicas.push_back(Replica{node, 1,
                                                         kUnknownBackendKind});
  routes_[name] = Route{workload, kDefaultTenant, std::move(workers),
                        std::move(replicas)};
}

void Gateway::register_replicas(const std::string& name, WorkloadId workload,
                                std::vector<Replica> replicas,
                                TenantId tenant) {
  std::vector<NodeId> workers;
  workers.reserve(replicas.size());
  for (const auto& replica : replicas) workers.push_back(replica.node);
  routes_[name] = Route{workload, tenant, std::move(workers),
                        std::move(replicas)};
}

TenantId Gateway::register_tenant(const std::string& name) {
  const auto it = tenant_ids_.find(name);
  if (it != tenant_ids_.end()) return it->second;
  const TenantId id = next_tenant_++;
  tenant_ids_[name] = id;
  tenant_names_[id] = name;
  return id;
}

std::string Gateway::tenant_label(TenantId tenant) const {
  const auto it = tenant_names_.find(tenant);
  if (it != tenant_names_.end()) return it->second;
  return "tenant-" + std::to_string(tenant);
}

Labels Gateway::metric_labels(const std::string& name) const {
  const Route* r = route(name);
  if (r == nullptr || r->tenant == kDefaultTenant) return {{"fn", name}};
  return {{"fn", name}, {"tenant", tenant_label(r->tenant)}};
}

void Gateway::set_rate_limit(const std::string& name, RateLimit limit) {
  Bucket bucket;
  bucket.limit = limit;
  bucket.tokens = limit.burst;
  bucket.refilled_at = sim_.now();
  buckets_[name] = bucket;
}

bool Gateway::admit(const std::string& name) {
  const auto it = buckets_.find(name);
  if (it == buckets_.end() || it->second.limit.requests_per_second <= 0.0) {
    return true;
  }
  Bucket& b = it->second;
  const double elapsed = to_sec(sim_.now() - b.refilled_at);
  b.tokens = std::min(b.limit.burst,
                      b.tokens + elapsed * b.limit.requests_per_second);
  b.refilled_at = sim_.now();
  if (b.tokens < 1.0) return false;
  b.tokens -= 1.0;
  return true;
}

void Gateway::add_worker(const std::string& name, NodeId worker) {
  routes_[name].workers.push_back(worker);
  routes_[name].replicas.push_back(Replica{worker, 1, kUnknownBackendKind});
}

const Route* Gateway::route(const std::string& name) const {
  const auto it = routes_.find(name);
  return it == routes_.end() ? nullptr : &it->second;
}

void Gateway::set_tracer(trace::TraceRecorder* tracer, double sample_rate) {
  tracer_ = tracer;
  sample_rate_ = std::clamp(sample_rate, 0.0, 1.0);
  sample_accum_ = 0.0;
  rpc_.set_tracer(tracer);
}

bool Gateway::sample_trace() {
  if (tracer_ == nullptr || sample_rate_ <= 0.0) return false;
  // Bresenham-style accumulator: every 1/rate-th request is traced, with
  // no RNG draw so traced and untraced runs replay identically.
  sample_accum_ += sample_rate_;
  if (sample_accum_ >= 1.0) {
    sample_accum_ -= 1.0;
    return true;
  }
  return false;
}

void Gateway::invoke(const std::string& name, net::BufferView payload,
                     InvokeCallback callback) {
  if (!has_function(name) || routes_[name].workers.empty()) {
    metrics_.counter("gateway_unroutable_total").increment();
    if (callback) callback(make_error("gateway: no route for '" + name + "'"));
    return;
  }
  if (!admit(name)) {
    metrics_.counter("gateway_throttled_total", {{"fn", name}}).increment();
    if (callback) {
      callback(make_error("gateway: '" + name + "' throttled by rate limit"));
    }
    return;
  }
  metrics_.counter("gateway_requests_total", metric_labels(name)).increment();

  trace::SpanContext ctx;
  if (sample_trace()) {
    ctx.trace = tracer_->new_trace();
    const trace::SpanId root = tracer_->start_span(
        ctx.trace, trace::kInvalidSpan, "request", sim_.now());
    tracer_->annotate(root, "fn", name);
    if (const Route* r = route(name); r != nullptr &&
                                      r->tenant != kDefaultTenant) {
      tracer_->annotate(root, "tenant", tenant_label(r->tenant));
    }
    ctx.parent = root;
    // The root span closes when the caller's callback fires, whatever
    // path (success, shed, failover exhaustion) got us there.
    callback = [this, root, callback = std::move(callback)](
                   Result<proto::RpcResponse> result) mutable {
      tracer_->annotate(root, "status", result.ok() ? "ok" : "error");
      if (!result.ok()) {
        tracer_->annotate(root, "error", result.error().message);
      }
      tracer_->end_span(root, sim_.now());
      if (callback) callback(std::move(result));
    };
  }

  if (config_.max_inflight_per_function == 0) {
    dispatch(name, std::move(payload), std::move(callback),
             config_.failover_attempts, ctx);
    return;
  }
  submit(name, std::move(payload), std::move(callback), ctx);
}

void Gateway::shed(const std::string& name, InvokeCallback& callback,
                   const char* reason) {
  metrics_.counter("gateway_shed_total", {{"fn", name}}).increment();
  flightrec::FlightRecorder::global().record(
      sim_.now(), flightrec::Kind::kGatewayShed,
      "'" + name + "' " + reason);
  if (callback) {
    callback(make_error("gateway: '" + name + "' overloaded (" +
                        std::string(reason) + ")"));
  }
}

void Gateway::submit(const std::string& name, net::BufferView payload,
                     InvokeCallback callback, trace::SpanContext ctx) {
  FnLoad& load = load_[name];
  if (load.inflight < config_.max_inflight_per_function) {
    ++load.inflight;
    InvokeCallback done = [this, name, callback = std::move(callback)](
                              Result<proto::RpcResponse> result) mutable {
      on_complete(name);
      if (callback) callback(std::move(result));
    };
    dispatch(name, std::move(payload), std::move(done),
             config_.failover_attempts, ctx);
    return;
  }
  if (load.queue.size() >= config_.max_queue_depth) {
    shed(name, callback, "queue full");
    return;
  }
  Queued queued;
  queued.id = next_queued_id_++;
  queued.payload = std::move(payload);
  queued.callback = std::move(callback);
  queued.enqueued_at = sim_.now();
  queued.ctx = ctx;
  if (tracer_ != nullptr && ctx.valid()) {
    queued.queue_span = tracer_->start_span(ctx.trace, ctx.parent,
                                            "gateway.queue", sim_.now());
  }
  const std::uint64_t qid = queued.id;
  load.queue.push_back(std::move(queued));
  metrics_.sampler("gateway_queue_depth", {{"fn", name}})
      .add(static_cast<double>(load.queue.size()));
  // Deadline-based shedding: a queued request that cannot start in time
  // fails fast instead of waiting for capacity that may never free up.
  sim_.schedule(config_.queue_deadline,
                [this, name, qid] { expire_queued(name, qid); });
}

void Gateway::expire_queued(const std::string& name, std::uint64_t queued_id) {
  const auto it = load_.find(name);
  if (it == load_.end()) return;
  auto& queue = it->second.queue;
  const auto pos = std::find_if(queue.begin(), queue.end(),
                                [queued_id](const Queued& q) {
                                  return q.id == queued_id;
                                });
  if (pos == queue.end()) return;  // already dispatched or shed
  InvokeCallback callback = std::move(pos->callback);
  if (pos->queue_span != trace::kInvalidSpan) {
    tracer_->annotate(pos->queue_span, "shed", "deadline exceeded");
    tracer_->end_span(pos->queue_span, sim_.now());
  }
  queue.erase(pos);
  shed(name, callback, "deadline exceeded");
}

void Gateway::on_complete(const std::string& name) {
  FnLoad& load = load_[name];
  if (load.inflight > 0) --load.inflight;
  while (load.inflight < config_.max_inflight_per_function &&
         !load.queue.empty()) {
    Queued next = std::move(load.queue.front());
    load.queue.pop_front();
    if (sim_.now() - next.enqueued_at > config_.queue_deadline) {
      if (next.queue_span != trace::kInvalidSpan) {
        tracer_->annotate(next.queue_span, "shed", "deadline exceeded");
        tracer_->end_span(next.queue_span, sim_.now());
      }
      shed(name, next.callback, "deadline exceeded");
      continue;
    }
    if (next.queue_span != trace::kInvalidSpan) {
      tracer_->end_span(next.queue_span, sim_.now());
    }
    ++load.inflight;
    InvokeCallback done = [this, name, callback = std::move(next.callback)](
                              Result<proto::RpcResponse> result) mutable {
      on_complete(name);
      if (callback) callback(std::move(result));
    };
    dispatch(name, std::move(next.payload), std::move(done),
             config_.failover_attempts, next.ctx);
  }
}

void Gateway::remove_worker(NodeId worker) {
  for (auto& [name, route] : routes_) {
    (void)name;
    route.workers.erase(
        std::remove(route.workers.begin(), route.workers.end(), worker),
        route.workers.end());
    route.replicas.erase(
        std::remove_if(route.replicas.begin(), route.replicas.end(),
                       [worker](const Replica& r) { return r.node == worker; }),
        route.replicas.end());
  }
  reinstate_worker(worker);  // drop any stale quarantine entry
}

void Gateway::quarantine_worker(NodeId worker) {
  const bool fresh = !is_quarantined(worker);
  quarantined_until_[worker] = sim_.now() + config_.quarantine_cooldown;
  if (fresh) {
    metrics_.counter("gateway_quarantine_total").increment();
    flightrec::FlightRecorder::global().record(
        sim_.now(), flightrec::Kind::kGatewayQuarantine, worker, 0,
        "worker " + std::to_string(worker) + " quarantined");
  }
  metrics_.gauge("gateway_quarantined") =
      static_cast<double>(quarantined_until_.size());
  // Cooldown lapse reinstates automatically even without a HealthChecker
  // (failed requests then re-quarantine if the worker is still dead).
  sim_.schedule(config_.quarantine_cooldown, [this, worker] {
    const auto it = quarantined_until_.find(worker);
    if (it != quarantined_until_.end() && it->second <= sim_.now()) {
      quarantined_until_.erase(it);
      metrics_.gauge("gateway_quarantined") =
          static_cast<double>(quarantined_until_.size());
    }
  });
}

void Gateway::reinstate_worker(NodeId worker) {
  if (quarantined_until_.erase(worker) > 0) {
    metrics_.gauge("gateway_quarantined") =
        static_cast<double>(quarantined_until_.size());
  }
}

bool Gateway::is_quarantined(NodeId worker) const {
  const auto it = quarantined_until_.find(worker);
  return it != quarantined_until_.end() && sim_.now() < it->second;
}

std::size_t Gateway::quarantined_count() const {
  std::size_t n = 0;
  for (const auto& [worker, until] : quarantined_until_) {
    (void)worker;
    if (sim_.now() < until) ++n;
  }
  return n;
}

void Gateway::enable_shard_affinity(const net::Network& network) {
  affinity_net_ = &network;
  affinity_shard_ = network.shard_of(rpc_.node());
}

namespace {
/// Affinity only applies when the operator expressed no preference: any
/// weight difference means the weighted cycle must be honored exactly.
bool uniform_weights(const Route& route) {
  if (route.replicas.empty()) return false;
  const std::uint32_t w = route.replicas.front().weight;
  for (const auto& replica : route.replicas) {
    if (replica.weight != w) return false;
  }
  return true;
}
}  // namespace

NodeId Gateway::pick_worker(const std::string& name, const Route& route) {
  const std::size_t cursor = rr_cursor_[name]++;
  std::uint64_t healthy_weight = 0;
  for (const auto& replica : route.replicas) {
    if (!is_quarantined(replica.node)) healthy_weight += replica.weight;
  }
  // Shard-affinity fast path: at equal weight, a co-sharded replica
  // serves the request without a cross-shard fabric hop. Quarantine
  // still wins (a sick local replica never shadows a healthy remote
  // one), and an empty co-sharded subset falls through to the normal
  // weighted rotation over all healthy replicas.
  if (affinity_net_ != nullptr && healthy_weight > 0 &&
      uniform_weights(route)) {
    std::size_t co_sharded = 0;
    for (const auto& replica : route.replicas) {
      if (is_quarantined(replica.node)) continue;
      if (affinity_net_->shard_of(replica.node) == affinity_shard_) {
        ++co_sharded;
      }
    }
    if (co_sharded > 0) {
      std::size_t slot = cursor % co_sharded;
      for (const auto& replica : route.replicas) {
        if (is_quarantined(replica.node)) continue;
        if (affinity_net_->shard_of(replica.node) != affinity_shard_) {
          continue;
        }
        if (slot == 0) {
          metrics_.counter("gateway_affinity_co_shard_total").increment();
          return replica.node;
        }
        --slot;
      }
    }
  }
  // Everything quarantined: fall back to the full set so traffic keeps
  // probing the replicas rather than failing unroutable.
  if (healthy_weight == 0) return weighted_pick(route, cursor);
  std::uint64_t slot = cursor % healthy_weight;
  for (const auto& replica : route.replicas) {
    if (is_quarantined(replica.node)) continue;
    if (slot < replica.weight) return replica.node;
    slot -= replica.weight;
  }
  return route.replicas.back().node;
}

void Gateway::dispatch(const std::string& name, net::BufferView payload,
                       InvokeCallback callback, std::uint32_t attempts_left,
                       trace::SpanContext ctx) {
  const SimTime started = sim_.now();
  trace::SpanId proxy_span = trace::kInvalidSpan;
  if (tracer_ != nullptr && ctx.valid()) {
    proxy_span = tracer_->start_span(ctx.trace, ctx.parent, "gateway.proxy",
                                     sim_.now());
  }
  // Proxy/NAT lookup happens before the request leaves the gateway; the
  // route is re-resolved *after* the lookup so an etcd update landing
  // during proxy_overhead is honored instead of sending to a stale copy.
  sim_.schedule(config_.proxy_overhead,
                [this, name, started, attempts_left, ctx, proxy_span,
                 payload = std::move(payload),
                 callback = std::move(callback)]() mutable {
                  if (proxy_span != trace::kInvalidSpan) {
                    tracer_->end_span(proxy_span, sim_.now());
                  }
                  send_to_worker(name, std::move(payload),
                                 std::move(callback), attempts_left, started,
                                 ctx);
                });
}

void Gateway::send_to_worker(const std::string& name,
                             net::BufferView payload,
                             InvokeCallback callback,
                             std::uint32_t attempts_left, SimTime started,
                             trace::SpanContext ctx) {
  const auto it = routes_.find(name);
  if (it == routes_.end() || it->second.workers.empty()) {
    // The route vanished while the request was in the proxy stage.
    metrics_.counter("gateway_unroutable_total").increment();
    if (callback) {
      callback(make_error("gateway: no workers for '" + name + "'"));
    }
    return;
  }
  const Route& route = it->second;
  const NodeId worker = pick_worker(name, route);
  metrics_.sampler("rpc_rto_ns").add(
      static_cast<double>(rpc_.current_rto(worker)));
  std::uint8_t kind = kUnknownBackendKind;
  for (const auto& replica : route.replicas) {
    if (replica.node == worker) {
      kind = replica.backend_kind;
      break;
    }
  }

  // Retained for failover to a replica: a view, not a byte copy.
  net::BufferView retry_copy = payload;
  rpc_.call(worker, route.workload, std::move(payload),
            [this, name, worker, kind, started, attempts_left, ctx,
             retry_copy = std::move(retry_copy),
             callback = std::move(callback)](
                Result<proto::RpcResponse> result) mutable {
              if (result.ok()) {
                const auto elapsed =
                    static_cast<double>(sim_.now() - started);
                metrics_.sampler("gateway_latency_ns", {{"fn", name}})
                    .add(elapsed);
                Labels rpc_labels = metric_labels(name);
                rpc_labels.emplace_back("backend",
                                        backend_kind_label(kind));
                metrics_.histogram("rpc_latency_ns", rpc_labels)
                    .observe(static_cast<double>(result.value().latency));
                if (callback) callback(std::move(result));
                return;
              }
              metrics_.counter("gateway_failures_total", {{"fn", name}})
                  .increment();
              // The worker looks dead: sideline it for the cooldown and
              // fail over to the next replica (a health probe or the
              // cooldown lapse brings it back).
              if (attempts_left > 0) {
                quarantine_worker(worker);
                metrics_.counter("gateway_failovers_total", {{"fn", name}})
                    .increment();
                dispatch(name, std::move(retry_copy), std::move(callback),
                         attempts_left - 1, ctx);
                return;
              }
              if (callback) callback(std::move(result));
            },
            ctx, route.tenant);
}

std::string Gateway::encode_route(WorkloadId workload,
                                  const std::vector<NodeId>& workers) {
  std::vector<Replica> replicas;
  replicas.reserve(workers.size());
  for (NodeId node : workers) replicas.push_back(Replica{node, 1,
                                                         kUnknownBackendKind});
  return encode_replicas(workload, replicas);
}

std::string Gateway::encode_replicas(WorkloadId workload,
                                     const std::vector<Replica>& replicas,
                                     TenantId tenant) {
  std::ostringstream out;
  out << workload;
  // Default stays implicit so tenant-less routes keep the legacy encoding.
  if (tenant != kDefaultTenant) out << "~" << tenant;
  out << "|";
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    if (i > 0) out << ",";
    out << replicas[i].node;
    // Defaults stay implicit so plain routes keep the legacy encoding.
    if (replicas[i].weight != 1) out << "*" << replicas[i].weight;
    if (replicas[i].backend_kind != kUnknownBackendKind) {
      out << "@" << static_cast<unsigned>(replicas[i].backend_kind);
    }
  }
  return out.str();
}

Result<Route> Gateway::decode_route(const std::string& encoded) {
  const auto malformed = [&encoded]() {
    return make_error("gateway: malformed route '" + encoded + "'");
  };
  const auto bar = encoded.find('|');
  if (bar == std::string::npos) return malformed();
  Route route;
  std::string head = encoded.substr(0, bar);
  // "<wid>[~<tenant>]" — the tenant extension is optional.
  const auto tilde = head.find('~');
  if (tilde != std::string::npos) {
    const auto tenant = parse_u64(head.substr(tilde + 1));
    if (!tenant || *tenant == 0 || *tenant > 0xFFFFFFFFull) {
      return malformed();
    }
    route.tenant = static_cast<TenantId>(*tenant);
    head = head.substr(0, tilde);
  }
  const auto workload = parse_u64(head);
  if (!workload || *workload > 0xFFFFFFFFull) return malformed();
  route.workload = static_cast<WorkloadId>(*workload);
  std::istringstream stream(encoded.substr(bar + 1));
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (token.empty()) return malformed();
    Replica replica;
    // "<node>[*<weight>][@<kind>]" — the optional parts in that order.
    const auto at = token.find('@');
    if (at != std::string::npos) {
      const auto kind = parse_u64(token.substr(at + 1));
      if (!kind || *kind > 0xFF) return malformed();
      replica.backend_kind = static_cast<std::uint8_t>(*kind);
      token = token.substr(0, at);
    }
    const auto star = token.find('*');
    if (star != std::string::npos) {
      const auto weight = parse_u64(token.substr(star + 1));
      if (!weight || *weight == 0 || *weight > 0xFFFFFFFFull) {
        return malformed();
      }
      replica.weight = static_cast<std::uint32_t>(*weight);
      token = token.substr(0, star);
    }
    const auto node = parse_u64(token);
    if (!node || *node > 0xFFFFFFFFull) return malformed();
    replica.node = static_cast<NodeId>(*node);
    route.workers.push_back(replica.node);
    route.replicas.push_back(replica);
  }
  if (route.replicas.empty()) return malformed();
  return route;
}

void Gateway::apply_route_key(const std::string& key,
                              const std::string& value) {
  constexpr const char* kPrefix = "route/";
  if (key.rfind(kPrefix, 0) != 0) return;
  const std::string name = key.substr(6);
  auto decoded = decode_route(value);
  if (decoded.ok()) {
    routes_[name] = std::move(decoded).value();
  }
}

void Gateway::sync_with(kvstore::EtcdStore& etcd) {
  for (const auto& [key, value] : etcd.list("route/")) {
    apply_route_key(key, value);
  }
  etcd.watch("route/", [this](const std::string& key,
                              const std::string& value) {
    apply_route_key(key, value);
  });
}

}  // namespace lnic::framework
