#include "framework/gateway.h"

#include <algorithm>
#include <sstream>

namespace lnic::framework {

Gateway::Gateway(sim::Simulator& sim, net::Network& network,
                 GatewayConfig config)
    : sim_(sim), config_(config), rpc_(sim, network, config.rpc) {}

void Gateway::register_function(const std::string& name, WorkloadId workload,
                                std::vector<NodeId> workers) {
  routes_[name] = Route{workload, std::move(workers)};
}

void Gateway::set_rate_limit(const std::string& name, RateLimit limit) {
  Bucket bucket;
  bucket.limit = limit;
  bucket.tokens = limit.burst;
  bucket.refilled_at = sim_.now();
  buckets_[name] = bucket;
}

bool Gateway::admit(const std::string& name) {
  const auto it = buckets_.find(name);
  if (it == buckets_.end() || it->second.limit.requests_per_second <= 0.0) {
    return true;
  }
  Bucket& b = it->second;
  const double elapsed = to_sec(sim_.now() - b.refilled_at);
  b.tokens = std::min(b.limit.burst,
                      b.tokens + elapsed * b.limit.requests_per_second);
  b.refilled_at = sim_.now();
  if (b.tokens < 1.0) return false;
  b.tokens -= 1.0;
  return true;
}

void Gateway::add_worker(const std::string& name, NodeId worker) {
  routes_[name].workers.push_back(worker);
}

const Route* Gateway::route(const std::string& name) const {
  const auto it = routes_.find(name);
  return it == routes_.end() ? nullptr : &it->second;
}

void Gateway::invoke(const std::string& name,
                     std::vector<std::uint8_t> payload,
                     InvokeCallback callback) {
  if (!has_function(name) || routes_[name].workers.empty()) {
    metrics_.counter("gateway_unroutable_total").increment();
    if (callback) callback(make_error("gateway: no route for '" + name + "'"));
    return;
  }
  if (!admit(name)) {
    metrics_.counter("gateway_throttled_total{fn=" + name + "}").increment();
    if (callback) {
      callback(make_error("gateway: '" + name + "' throttled by rate limit"));
    }
    return;
  }
  metrics_.counter("gateway_requests_total{fn=" + name + "}").increment();
  dispatch(name, std::move(payload), std::move(callback),
           config_.failover_attempts);
}

void Gateway::remove_worker(NodeId worker) {
  for (auto& [name, route] : routes_) {
    (void)name;
    route.workers.erase(
        std::remove(route.workers.begin(), route.workers.end(), worker),
        route.workers.end());
  }
}

void Gateway::dispatch(const std::string& name,
                       std::vector<std::uint8_t> payload,
                       InvokeCallback callback,
                       std::uint32_t attempts_left) {
  const auto it = routes_.find(name);
  if (it == routes_.end() || it->second.workers.empty()) {
    if (callback) callback(make_error("gateway: no workers for '" + name + "'"));
    return;
  }
  const Route& route = it->second;
  const std::size_t pick = rr_cursor_[name]++ % route.workers.size();
  const NodeId worker = route.workers[pick];

  const SimTime started = sim_.now();
  // Proxy/NAT lookup happens before the request leaves the gateway.
  sim_.schedule(config_.proxy_overhead, [this, name, worker, route, started,
                                         attempts_left,
                                         payload = std::move(payload),
                                         callback = std::move(callback)]() mutable {
    // Keep a copy in case the call fails and we fail over to a replica.
    std::vector<std::uint8_t> retry_copy = payload;
    rpc_.call(worker, route.workload, std::move(payload),
              [this, name, worker, started, attempts_left,
               retry_copy = std::move(retry_copy),
               callback = std::move(callback)](
                  Result<proto::RpcResponse> result) mutable {
                if (result.ok()) {
                  metrics_
                      .sampler("gateway_latency_ns{fn=" + name + "}")
                      .add(static_cast<double>(sim_.now() - started));
                  if (callback) callback(std::move(result));
                  return;
                }
                metrics_.counter("gateway_failures_total{fn=" + name + "}")
                    .increment();
                // The worker looks dead: drop it and fail over to the
                // next replica (the autoscaler/manager re-adds healthy
                // workers through etcd).
                if (attempts_left > 0) {
                  remove_worker(worker);
                  metrics_.counter("gateway_failovers_total{fn=" + name + "}")
                      .increment();
                  dispatch(name, std::move(retry_copy), std::move(callback),
                           attempts_left - 1);
                  return;
                }
                if (callback) callback(std::move(result));
              });
  });
}

std::string Gateway::encode_route(WorkloadId workload,
                                  const std::vector<NodeId>& workers) {
  std::ostringstream out;
  out << workload << "|";
  for (std::size_t i = 0; i < workers.size(); ++i) {
    if (i > 0) out << ",";
    out << workers[i];
  }
  return out.str();
}

Result<Route> Gateway::decode_route(const std::string& encoded) {
  const auto bar = encoded.find('|');
  if (bar == std::string::npos) {
    return make_error("gateway: malformed route '" + encoded + "'");
  }
  Route route;
  try {
    route.workload = static_cast<WorkloadId>(
        std::stoul(encoded.substr(0, bar)));
    std::string rest = encoded.substr(bar + 1);
    std::istringstream stream(rest);
    std::string token;
    while (std::getline(stream, token, ',')) {
      if (!token.empty()) {
        route.workers.push_back(static_cast<NodeId>(std::stoul(token)));
      }
    }
  } catch (const std::exception&) {
    return make_error("gateway: malformed route '" + encoded + "'");
  }
  return route;
}

void Gateway::apply_route_key(const std::string& key,
                              const std::string& value) {
  constexpr const char* kPrefix = "route/";
  if (key.rfind(kPrefix, 0) != 0) return;
  const std::string name = key.substr(6);
  auto decoded = decode_route(value);
  if (decoded.ok()) {
    routes_[name] = std::move(decoded).value();
  }
}

void Gateway::sync_with(kvstore::EtcdStore& etcd) {
  for (const auto& [key, value] : etcd.list("route/")) {
    apply_route_key(key, value);
  }
  etcd.watch("route/", [this](const std::string& key,
                              const std::string& value) {
    apply_route_key(key, value);
  });
}

}  // namespace lnic::framework
