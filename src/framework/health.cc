#include "framework/health.h"

namespace lnic::framework {

HealthChecker::HealthChecker(sim::Simulator& sim, net::Network& network,
                             Gateway& gateway, HealthConfig config)
    : sim_(sim),
      gateway_(gateway),
      config_(config),
      rpc_(sim, network,
           proto::RpcConfig{.retransmit_timeout = config.probe_timeout,
                            .max_retries = 0}),
      timer_(sim, config.probe_interval, [this] { probe_all(); }) {}

void HealthChecker::watch(NodeId worker,
                          std::vector<std::uint8_t> probe_payload) {
  state_[worker] = WorkerState{std::move(probe_payload), 0, false};
}

void HealthChecker::probe_all() {
  for (auto& [worker, state] : state_) {
    if (state.dead) continue;
    const NodeId target = worker;
    WorkerState* ws = &state;
    rpc_.call(target, config_.probe_workload, ws->payload,
              [this, target, ws](Result<proto::RpcResponse> result) {
                if (result.ok()) {
                  ws->consecutive_failures = 0;
                  return;
                }
                if (++ws->consecutive_failures >= config_.max_failures &&
                    !ws->dead) {
                  ws->dead = true;
                  ++removals_;
                  gateway_.remove_worker(target);
                  if (on_dead_) on_dead_(target);
                }
              });
  }
}

}  // namespace lnic::framework
