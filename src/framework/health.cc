#include "framework/health.h"

namespace lnic::framework {

HealthChecker::HealthChecker(sim::Simulator& sim, net::Network& network,
                             Gateway& gateway, HealthConfig config)
    : sim_(sim),
      gateway_(gateway),
      config_(config),
      rpc_(sim, network,
           proto::RpcConfig{.retransmit_timeout = config.probe_timeout,
                            .max_retries = 0}),
      timer_(sim, config.probe_interval, [this] { probe_all(); }) {}

void HealthChecker::watch(NodeId worker, net::BufferView probe_payload) {
  state_[worker] = WorkerState{std::move(probe_payload), 0, false};
}

void HealthChecker::probe_all() {
  // Quarantined workers are probed too: a successful probe is what
  // reinstates them.
  for (auto& [worker, state] : state_) {
    const NodeId target = worker;
    WorkerState* ws = &state;
    rpc_.call(target, config_.probe_workload, ws->payload,
              [this, target, ws](Result<proto::RpcResponse> result) {
                if (result.ok()) {
                  ws->consecutive_failures = 0;
                  if (ws->quarantined) {
                    ws->quarantined = false;
                    ++recoveries_;
                    gateway_.reinstate_worker(target);
                    if (on_recovered_) on_recovered_(target);
                  }
                  return;
                }
                if (ws->quarantined) {
                  // Still down: extend the gateway-side cooldown so the
                  // dispatcher keeps skipping it until a probe succeeds.
                  gateway_.quarantine_worker(target);
                  return;
                }
                if (++ws->consecutive_failures >= config_.max_failures) {
                  ws->quarantined = true;
                  ++quarantines_;
                  gateway_.quarantine_worker(target);
                  if (on_dead_) on_dead_(target);
                }
              });
  }
}

}  // namespace lnic::framework
