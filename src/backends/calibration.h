// Calibration constants for the three serverless backends (§6.1.1).
//
// These are the ONLY tuned constants in the reproduction: they pin the
// single-lambda, isolated operating points of Figure 6 near the paper's
// values. Everything else — tails, contention behaviour, throughput
// scaling, optimizer effects — emerges from the models. Sources for the
// magnitudes are noted inline.
#pragma once

#include "common/types.h"
#include "hostsim/host.h"
#include "microc/interp.h"
#include "nicsim/nic.h"

namespace lnic::backends {

// ---------------------------------------------------------------- λ-NIC
/// Netronome Agilio CX 2x10G: 56 cores x 8 threads @ 633 MHz, 2 GiB RAM,
/// 16 K instructions/core (§6.1.2). Two cores stay reserved for basic
/// NIC operations (§3.1c).
inline nicsim::NicConfig lambda_nic_config() {
  nicsim::NicConfig config;
  config.islands = 7;
  config.cores_per_island = 8;
  config.threads_per_core = 8;
  config.reserved_cores = 2;
  config.instr_store_words = 16384;
  config.emem_bytes = 2048_MiB;
  config.firmware_load_time = seconds(15);  // no hot swap on current NICs (§7)
  return config;
}

// ----------------------------------------------------------- bare metal
/// Isolate-like backend: the OpenFaaS-integrated Python service running
/// as a standalone process (§6.1.1, footnote 7). Costs: kernel UDP stack
/// ~15 us/packet, scheduler wakeup + service dispatch ~110 us/request,
/// a 300 us workload switch on the interpreter (cache refill + state
/// swap), and CPython slowdowns from microc::CostModel::host_python.
inline hostsim::HostConfig bare_metal_config(std::uint32_t threads = 56) {
  hostsim::HostConfig config;
  config.cores = 56;
  config.worker_threads = threads;
  config.gil_limit = 1;  // CPython: one interpreter execution at a time
  config.context_switch = microseconds(300);
  config.rx_per_packet = microseconds(15);
  config.tx_per_packet = microseconds(10);
  config.per_request = microseconds(110);
  config.cost = microc::CostModel::host_python();
  return config;
}

/// Fig. 8's "Bare Metal (Single Core)" variant.
inline hostsim::HostConfig bare_metal_single_core_config() {
  hostsim::HostConfig config = bare_metal_config(56);
  config.cores = 1;
  return config;
}

// ------------------------------------------------------------ container
/// OpenFaaS classic-watchdog containers behind Docker + Kubernetes with
/// calico overlay networking (§6.1.2): watchdog fork/exec + gateway NAT
/// + kube-proxy conntrack ~10.3 ms/request, serialized inside the
/// container (the classic watchdog handles one request at a time);
/// veth/OVS overlay ~55 us per packet each way.
inline hostsim::HostConfig container_config(std::uint32_t threads = 56) {
  hostsim::HostConfig config;
  config.cores = 56;
  config.worker_threads = threads;
  config.gil_limit = 1;
  config.serialize_runtime = true;  // one classic watchdog per container
  config.context_switch = microseconds(300);
  config.rx_per_packet = microseconds(55);
  config.tx_per_packet = microseconds(55);
  config.per_request = microseconds(10300);
  config.cost = microc::CostModel::host_python();
  config.hiccup_max = microseconds(1500);  // cgroup throttling spikes
  return config;
}

// ------------------------------------------------- memory model (Tab. 3)
/// Resident-set additions while serving the image-transformer workload.
/// Bare metal: CPython + Pillow-style deps + service state.
constexpr Bytes kBareMetalBaseMemory = 52_MiB;
/// Extra per concurrently-executing request (request buffers, thread
/// stacks). 56 concurrent image requests add ~10.5 MiB.
constexpr Bytes kHostPerRequestMemory = 192_KiB;
/// Containers add the Docker runtime slice, pause container, overlay
/// netns and image page cache on top of the same Python service.
constexpr Bytes kContainerExtraMemory = 157_MiB;

// ------------------------------------------------- startup model (Tab. 4)
/// Artifact sizes. λ-NIC: NFP firmware ELF (base loader + our program);
/// bare metal: Python package (setuptools + wheel, §6.4); container:
/// Docker image (Python base layers + workload).
constexpr Bytes kNicFirmwareArtifact = 11_MiB;
constexpr Bytes kBareMetalArtifact = 17_MiB;
constexpr Bytes kContainerArtifact = 153_MiB;

/// Boot-phase durations (dominated by toolchain/runtime, not transfer).
constexpr SimDuration kNicFlashTime = seconds(15);       // firmware load (§7)
constexpr SimDuration kNicWarmupTime = milliseconds(4707);  // driver re-probe
constexpr SimDuration kBareMetalSetupTime = milliseconds(4857);
constexpr SimDuration kContainerUnpackPerMiB = milliseconds(142);  // pull+untar
constexpr SimDuration kContainerStartTime = milliseconds(8690);

/// Management-network bandwidth for artifact download (1 GbE on M1).
constexpr double kMgmtBandwidthBps = 1e9;

// ------------------------------------------------ placement capacities
/// Host RAM budget a worker offers to lambda state (the testbed's Xeon
/// nodes carry 196 GiB, §6.1.2; we leave headroom for OS + runtime).
constexpr Bytes kHostLambdaMemoryBudget = 192ull * 1024_MiB;

}  // namespace lnic::backends
