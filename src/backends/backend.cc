#include "backends/backend.h"

#include "compiler/pipeline.h"

namespace lnic::backends {

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kLambdaNic: return "lambda-nic";
    case BackendKind::kBareMetal: return "bare-metal";
    case BackendKind::kContainer: return "container";
  }
  return "?";
}

namespace {
SimDuration download_time(Bytes artifact) {
  return static_cast<SimDuration>(static_cast<double>(artifact) * 8.0 /
                                  kMgmtBandwidthBps * 1e9);
}
}  // namespace

// ------------------------------------------------------------------ λ-NIC

LambdaNicBackend::LambdaNicBackend(sim::Simulator& sim, net::Network& network,
                                   nicsim::NicConfig config)
    : nic_(sim, network, config) {}

Status LambdaNicBackend::deploy(workloads::WorkloadBundle bundle) {
  compiler::Options options;
  options.instruction_store_words = nic_.config().instr_store_words;
  auto compiled = compiler::compile(bundle.spec, std::move(bundle.lambdas),
                                    options);
  if (!compiled.ok()) return compiled.error();
  return nic_.deploy(std::move(compiled).value());
}

Capacity LambdaNicBackend::capacity() const {
  Capacity cap;
  cap.instr_store_words = nic_.config().instr_store_words;
  cap.memory_bytes = nic_.config().emem_bytes;
  cap.threads = nic_.config().lambda_threads();
  cap.on_nic = true;
  return cap;
}

ResourceUsage LambdaNicBackend::usage(SimDuration window) const {
  (void)window;
  ResourceUsage usage;
  // Host involvement is the NIC driver's housekeeping interrupts only.
  usage.host_cpu_percent = 0.1;
  usage.host_memory = 0;
  usage.nic_memory = nic_.firmware_bytes() + nic_.stats().peak_inflight_bytes +
                     /* persistent lambda globals */ 0;
  usage.nic_memory = std::max<Bytes>(usage.nic_memory, nic_.memory_in_use());
  return usage;
}

StartupProfile LambdaNicBackend::startup_profile() const {
  StartupProfile profile;
  profile.artifact_bytes = kNicFirmwareArtifact;
  profile.startup_time = download_time(profile.artifact_bytes) +
                         kNicFlashTime + kNicWarmupTime;
  return profile;
}

// ------------------------------------------------------------------- host

HostBackend::HostBackend(sim::Simulator& sim, net::Network& network,
                         BackendKind kind, hostsim::HostConfig config)
    : kind_(kind), host_(sim, network, config) {}

Status HostBackend::deploy(workloads::WorkloadBundle bundle) {
  // Hosts skip the NIC-specific passes: the runtime dispatches directly,
  // so the lambdas are installed with a plain (unoptimized) match stage.
  // There is no instruction store either — programs live in DRAM, so
  // lambdas too big for the NIC (the spillover case) still deploy here.
  compiler::Options options = compiler::Options::none();
  options.instruction_store_words = Capacity::kUnlimitedWords;
  auto compiled = compiler::compile(bundle.spec, std::move(bundle.lambdas),
                                    options);
  if (!compiled.ok()) return compiled.error();
  host_.deploy(std::move(compiled).value().program);
  return Status::ok_status();
}

Capacity HostBackend::capacity() const {
  Capacity cap;
  cap.instr_store_words = Capacity::kUnlimitedWords;
  cap.memory_bytes = kHostLambdaMemoryBudget;
  cap.threads = host_.config().worker_threads;
  cap.on_nic = false;
  return cap;
}

ResourceUsage HostBackend::usage(SimDuration window) const {
  ResourceUsage usage;
  if (window > 0) {
    usage.host_cpu_percent =
        100.0 * static_cast<double>(host_.stats().busy_time) /
        (static_cast<double>(window) * host_.config().cores);
  }
  usage.host_memory =
      kBareMetalBaseMemory +
      static_cast<Bytes>(host_.stats().peak_active_jobs) * kHostPerRequestMemory;
  if (kind_ == BackendKind::kContainer) {
    usage.host_memory += kContainerExtraMemory;
  }
  usage.nic_memory = 0;  // a plain NIC: no lambda state on the card
  return usage;
}

StartupProfile HostBackend::startup_profile() const {
  StartupProfile profile;
  if (kind_ == BackendKind::kContainer) {
    profile.artifact_bytes = kContainerArtifact;
    profile.startup_time =
        download_time(profile.artifact_bytes) +
        static_cast<SimDuration>(to_mib(profile.artifact_bytes) *
                                 kContainerUnpackPerMiB) +
        kContainerStartTime;
  } else {
    profile.artifact_bytes = kBareMetalArtifact;
    profile.startup_time =
        download_time(profile.artifact_bytes) + kBareMetalSetupTime;
  }
  return profile;
}

std::unique_ptr<Backend> make_backend(BackendKind kind, sim::Simulator& sim,
                                      net::Network& network,
                                      std::uint32_t worker_threads) {
  switch (kind) {
    case BackendKind::kLambdaNic:
      return std::make_unique<LambdaNicBackend>(sim, network);
    case BackendKind::kBareMetal:
      return std::make_unique<HostBackend>(sim, network, kind,
                                           bare_metal_config(worker_threads));
    case BackendKind::kContainer:
      return std::make_unique<HostBackend>(sim, network, kind,
                                           container_config(worker_threads));
  }
  return nullptr;
}

}  // namespace lnic::backends
