// Uniform Backend interface over the three execution substrates the
// evaluation compares (§6.1.1): λ-NIC, bare metal (Isolate-like), and
// containers (OpenFaaS-like). Benches and the workload manager program
// against this interface so every experiment runs identically across
// backends.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "backends/calibration.h"
#include "common/result.h"
#include "common/types.h"
#include "hostsim/host.h"
#include "net/network.h"
#include "nicsim/nic.h"
#include "sim/simulator.h"
#include "workloads/lambdas.h"

namespace lnic::backends {

enum class BackendKind : std::uint8_t { kLambdaNic, kBareMetal, kContainer };
const char* to_string(BackendKind kind);

/// Snapshot for Table 3: additional resources while serving load.
struct ResourceUsage {
  double host_cpu_percent = 0.0;  // of the whole 56-thread host
  Bytes host_memory = 0;
  Bytes nic_memory = 0;
};

/// Inputs to Table 4's startup comparison.
struct StartupProfile {
  Bytes artifact_bytes = 0;
  SimDuration startup_time = 0;  // download + boot + first-request ready
};

/// Deployment capacity report consumed by the placement layer (§5's
/// workload manager: "verifies if the lambdas can fit and execute on the
/// NICs ... based on available resources").
struct Capacity {
  /// Per-core instruction-store budget. kUnlimitedWords for host
  /// backends, whose programs live in ordinary DRAM.
  std::uint64_t instr_store_words = 0;
  /// Memory available to lambda state: NIC EMEM or host RAM budget.
  Bytes memory_bytes = 0;
  /// Hardware threads available to run lambdas.
  std::uint32_t threads = 0;
  /// True for SmartNIC-resident execution (the preferred target).
  bool on_nic = false;

  static constexpr std::uint64_t kUnlimitedWords =
      static_cast<std::uint64_t>(-1);
};

class Backend {
 public:
  virtual ~Backend() = default;

  virtual BackendKind kind() const = 0;
  /// The fabric address requests are sent to.
  virtual NodeId node() const = 0;
  /// Compiles (as appropriate for the backend) and installs the bundle.
  virtual Status deploy(workloads::WorkloadBundle bundle) = 0;
  /// Resources available for lambda placement on this worker.
  virtual Capacity capacity() const = 0;
  virtual void set_kv_server(NodeId node) = 0;
  /// Additional resources consumed while serving, measured over the
  /// window [start, end] with `concurrent` requests in flight.
  virtual ResourceUsage usage(SimDuration window) const = 0;
  virtual StartupProfile startup_profile() const = 0;
  virtual std::uint64_t completed() const = 0;
  /// Attaches (nullptr detaches) a span recorder to the execution
  /// substrate so requests carrying a trace id in their lambda header
  /// record queueing/execution spans. No-op timing-wise.
  virtual void set_tracer(trace::TraceRecorder* tracer) = 0;

  /// Tenancy hooks: assign a workload to a tenant namespace, bound a
  /// tenant's on-card resources, or evict a tenant. Host backends run
  /// each lambda in its own process/container and need no shared-card
  /// partitioning, so the defaults are no-ops; the λ-NIC backend
  /// forwards to the SmartNIC's DRR scheduler and quota admission.
  virtual void set_tenant_of(WorkloadId workload, TenantId tenant) {
    (void)workload;
    (void)tenant;
  }
  virtual void set_tenant_quota(TenantId tenant,
                                const nicsim::TenantQuota& quota) {
    (void)tenant;
    (void)quota;
  }
  virtual void undeploy_tenant(TenantId tenant) { (void)tenant; }
};

/// λ-NIC: lambdas run on the SmartNIC; host CPU stays idle (§6.4).
class LambdaNicBackend : public Backend {
 public:
  LambdaNicBackend(sim::Simulator& sim, net::Network& network,
                   nicsim::NicConfig config = lambda_nic_config());

  BackendKind kind() const override { return BackendKind::kLambdaNic; }
  NodeId node() const override { return nic_.node(); }
  Status deploy(workloads::WorkloadBundle bundle) override;
  Capacity capacity() const override;
  void set_kv_server(NodeId node) override { nic_.set_kv_server(node); }
  ResourceUsage usage(SimDuration window) const override;
  StartupProfile startup_profile() const override;
  std::uint64_t completed() const override {
    return nic_.stats().requests_completed;
  }
  void set_tracer(trace::TraceRecorder* tracer) override {
    nic_.set_tracer(tracer);
  }
  void set_tenant_of(WorkloadId workload, TenantId tenant) override {
    nic_.set_tenant(workload, tenant);
  }
  void set_tenant_quota(TenantId tenant,
                        const nicsim::TenantQuota& quota) override {
    nic_.set_tenant_quota(tenant, quota);
  }
  void undeploy_tenant(TenantId tenant) override {
    nic_.undeploy_tenant(tenant);
  }

  nicsim::SmartNic& nic() { return nic_; }

 private:
  nicsim::SmartNic nic_;
};

/// Host-resident backend covering both baselines; the HostConfig decides
/// which one (bare_metal_config() or container_config()).
class HostBackend : public Backend {
 public:
  HostBackend(sim::Simulator& sim, net::Network& network, BackendKind kind,
              hostsim::HostConfig config);

  BackendKind kind() const override { return kind_; }
  NodeId node() const override { return host_.node(); }
  Status deploy(workloads::WorkloadBundle bundle) override;
  Capacity capacity() const override;
  void set_kv_server(NodeId node) override { host_.set_kv_server(node); }
  ResourceUsage usage(SimDuration window) const override;
  StartupProfile startup_profile() const override;
  std::uint64_t completed() const override {
    return host_.stats().requests_completed;
  }
  void set_tracer(trace::TraceRecorder* tracer) override {
    host_.set_tracer(tracer);
  }

  hostsim::HostServer& host() { return host_; }

 private:
  BackendKind kind_;
  hostsim::HostServer host_;
  std::uint32_t peak_concurrency_ = 0;

  friend class ConcurrencyProbe;
};

std::unique_ptr<Backend> make_backend(BackendKind kind, sim::Simulator& sim,
                                      net::Network& network,
                                      std::uint32_t worker_threads = 56);

}  // namespace lnic::backends
