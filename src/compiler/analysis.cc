#include "compiler/analysis.h"

#include <deque>

namespace lnic::compiler {

using microc::Instr;
using microc::Opcode;

std::vector<std::uint16_t> regs_read(const Instr& in) {
  switch (in.op) {
    case Opcode::kConst:
    case Opcode::kLoadHdr:
    case Opcode::kBodyLen:
    case Opcode::kLoadMatch:
    case Opcode::kBr:
      return {};
    case Opcode::kMov:
    case Opcode::kAddImm:
    case Opcode::kMulImm:
    case Opcode::kCmpEqImm:
    case Opcode::kLoadBody:
    case Opcode::kLoad:
    case Opcode::kRespByte:
    case Opcode::kRespWord:
    case Opcode::kBrIf:
    case Opcode::kRet:
      return {in.a};
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDivU:
    case Opcode::kRemU:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kFxMul:
    case Opcode::kCmpEq:
    case Opcode::kCmpNe:
    case Opcode::kCmpLtU:
    case Opcode::kCmpLeU:
    case Opcode::kStore:
    case Opcode::kRespMem:
    case Opcode::kHash:
    case Opcode::kExtCall:
      return {in.a, in.b};
    case Opcode::kSelect:
      return {in.a, in.b, static_cast<std::uint16_t>(in.imm)};
    case Opcode::kMemCpy:
    case Opcode::kGrayscale:
    case Opcode::kBodyCopy:
      return {in.dst, in.a, in.b};
    case Opcode::kCall: {
      std::vector<std::uint16_t> regs;
      for (std::uint16_t i = 0; i < in.b; ++i) {
        regs.push_back(static_cast<std::uint16_t>(in.a + i));
      }
      return regs;
    }
  }
  return {};
}

std::optional<std::uint16_t> reg_written(const Instr& in) {
  switch (in.op) {
    case Opcode::kStore:
    case Opcode::kRespByte:
    case Opcode::kRespWord:
    case Opcode::kRespMem:
    case Opcode::kMemCpy:
    case Opcode::kGrayscale:
    case Opcode::kBodyCopy:
    case Opcode::kBr:
    case Opcode::kBrIf:
    case Opcode::kRet:
      return std::nullopt;
    default:
      return in.dst;
  }
}

std::vector<std::uint32_t> successors(const Instr& terminator) {
  switch (terminator.op) {
    case Opcode::kBr:
      return {static_cast<std::uint32_t>(terminator.imm)};
    case Opcode::kBrIf:
      return {static_cast<std::uint32_t>(terminator.imm), terminator.b};
    default:
      return {};
  }
}

std::vector<bool> reachable_blocks(const microc::Function& fn) {
  std::vector<bool> seen(fn.blocks.size(), false);
  std::deque<std::uint32_t> work{0};
  seen[0] = true;
  while (!work.empty()) {
    const auto b = work.front();
    work.pop_front();
    const auto& instrs = fn.blocks[b].instrs;
    if (instrs.empty()) continue;
    for (auto succ : successors(instrs.back())) {
      if (succ < seen.size() && !seen[succ]) {
        seen[succ] = true;
        work.push_back(succ);
      }
    }
  }
  return seen;
}

void estimate_object_accesses(microc::Program& program) {
  for (auto& obj : program.objects) obj.access_estimate = 0;
  for (const auto& fn : program.functions) {
    for (const auto& block : fn.blocks) {
      for (const auto& in : block.instrs) {
        if (microc::is_memory_op(in.op)) {
          if (in.obj < program.objects.size()) {
            ++program.objects[in.obj].access_estimate;
          }
          if ((in.op == Opcode::kMemCpy || in.op == Opcode::kGrayscale) &&
              in.obj2 < program.objects.size()) {
            ++program.objects[in.obj2].access_estimate;
          }
        }
      }
    }
  }
}

}  // namespace lnic::compiler
