#include "compiler/dce.h"

#include <algorithm>
#include <set>

#include "compiler/analysis.h"

namespace lnic::compiler {

using microc::Function;
using microc::Instr;
using microc::Opcode;

namespace {

// Removes unreachable blocks and remaps branch targets. Returns
// instructions removed.
std::size_t remove_unreachable_blocks(Function& fn) {
  const auto reachable = reachable_blocks(fn);
  if (std::all_of(reachable.begin(), reachable.end(),
                  [](bool r) { return r; })) {
    return 0;
  }
  std::vector<std::uint32_t> remap(fn.blocks.size());
  std::vector<microc::BasicBlock> kept;
  std::size_t removed = 0;
  for (std::size_t i = 0; i < fn.blocks.size(); ++i) {
    if (reachable[i]) {
      remap[i] = static_cast<std::uint32_t>(kept.size());
      kept.push_back(std::move(fn.blocks[i]));
    } else {
      removed += fn.blocks[i].instrs.size();
    }
  }
  fn.blocks = std::move(kept);
  for (auto& block : fn.blocks) {
    Instr& term = block.instrs.back();
    if (term.op == Opcode::kBr) {
      term.imm = remap[static_cast<std::size_t>(term.imm)];
    } else if (term.op == Opcode::kBrIf) {
      term.imm = remap[static_cast<std::size_t>(term.imm)];
      term.b = static_cast<std::uint16_t>(remap[term.b]);
    }
  }
  return removed;
}

// One liveness-based sweep; returns instructions removed.
std::size_t sweep_dead_instructions(Function& fn) {
  const std::size_t nblocks = fn.blocks.size();
  using LiveSet = std::set<std::uint16_t>;
  std::vector<LiveSet> live_in(nblocks), live_out(nblocks);

  // Fixed-point backward dataflow over blocks.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t b = nblocks; b-- > 0;) {
      LiveSet out;
      const auto& term = fn.blocks[b].instrs.back();
      for (auto succ : successors(term)) {
        out.insert(live_in[succ].begin(), live_in[succ].end());
      }
      LiveSet in = out;
      for (auto it = fn.blocks[b].instrs.rbegin();
           it != fn.blocks[b].instrs.rend(); ++it) {
        if (const auto w = reg_written(*it)) in.erase(*w);
        for (auto r : regs_read(*it)) in.insert(r);
      }
      if (out != live_out[b] || in != live_in[b]) {
        live_out[b] = std::move(out);
        live_in[b] = std::move(in);
        changed = true;
      }
    }
  }

  std::size_t removed = 0;
  for (std::size_t b = 0; b < nblocks; ++b) {
    auto& instrs = fn.blocks[b].instrs;
    LiveSet live = live_out[b];
    std::vector<Instr> kept;
    kept.reserve(instrs.size());
    for (auto it = instrs.rbegin(); it != instrs.rend(); ++it) {
      const auto w = reg_written(*it);
      const bool dead =
          microc::is_pure(it->op) && w.has_value() && live.count(*w) == 0;
      if (dead) {
        ++removed;
        continue;
      }
      if (w) live.erase(*w);
      for (auto r : regs_read(*it)) live.insert(r);
      kept.push_back(*it);
    }
    std::reverse(kept.begin(), kept.end());
    instrs = std::move(kept);
  }
  return removed;
}

}  // namespace

std::size_t eliminate_dead_code(microc::Program& program) {
  std::size_t removed = 0;
  for (auto& fn : program.functions) {
    removed += remove_unreachable_blocks(fn);
    // Iterate sweeps to a fixed point: removing one instruction can make
    // its operands dead.
    while (true) {
      const std::size_t swept = sweep_dead_instructions(fn);
      removed += swept;
      if (swept == 0) break;
    }
  }
  return removed;
}

}  // namespace lnic::compiler
