// Lambda coalescing (§5.1): "the workload manager runs program analysis
// (dead-code elimination and code motion) to remove duplicate logic ...
// and move it into shared libraries as helper functions."
//
// Lambdas submitted by different users routinely duplicate boilerplate
// (the two key-value clients share query-building logic; the web server
// and image transformer share reply logic, §6.4). Coalescing finds
// structurally identical functions and merges them into one shared
// helper, rewriting all call sites.
#pragma once

#include "microc/ir.h"

namespace lnic::compiler {

/// Merges structurally identical functions (same body, argument count);
/// the first occurrence survives. Call sites, the dispatch index and
/// lambda entries are remapped. Returns the number of functions removed.
std::size_t coalesce_lambdas(microc::Program& program);

}  // namespace lnic::compiler
