#include "compiler/inline.h"

#include <deque>
#include <set>
#include <vector>

namespace lnic::compiler {

using microc::BasicBlock;
using microc::Function;
using microc::Instr;
using microc::Opcode;
using microc::Program;

namespace {

// A callee is inlinable when its whole body is one block of simple
// instructions ending in kRet — no control flow, no nested calls, no
// external calls (those suspend the machine and must stay call-shaped).
bool inlinable(const Function& fn, std::size_t max_instrs) {
  if (fn.blocks.size() != 1) return false;
  const auto& instrs = fn.blocks[0].instrs;
  if (instrs.empty() || instrs.size() > max_instrs) return false;
  if (instrs.back().op != Opcode::kRet) return false;
  for (std::size_t i = 0; i + 1 < instrs.size(); ++i) {
    const Opcode op = instrs[i].op;
    if (op == Opcode::kCall || op == Opcode::kExtCall ||
        microc::is_terminator(op)) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::size_t inline_functions(Program& program, const InlineOptions& options) {
  std::size_t inlined = 0;
  for (auto& caller : program.functions) {
    for (auto& block : caller.blocks) {
      std::vector<Instr> out;
      out.reserve(block.instrs.size());
      for (const Instr& in : block.instrs) {
        if (in.op != Opcode::kCall) {
          out.push_back(in);
          continue;
        }
        const auto& callee =
            program.functions[static_cast<std::size_t>(in.imm)];
        if (&callee == &caller ||
            !inlinable(callee, options.max_callee_instrs)) {
          out.push_back(in);
          continue;
        }
        // Remap callee registers into fresh caller registers; arguments
        // alias the caller's argument window r[in.a .. in.a+in.b).
        std::vector<std::uint16_t> remap(callee.num_regs);
        for (std::uint16_t r = 0; r < callee.num_regs; ++r) {
          if (r < callee.num_args) {
            remap[r] = static_cast<std::uint16_t>(in.a + r);
          } else {
            remap[r] = caller.num_regs++;
          }
        }
        const auto& body = callee.blocks[0].instrs;
        for (std::size_t k = 0; k + 1 < body.size(); ++k) {
          Instr copy = body[k];
          copy.dst = remap[copy.dst];
          copy.a = remap[copy.a];
          // kCall is excluded by inlinable(); b is always a register here
          // except for kBrIf (also excluded), so remap unconditionally.
          copy.b = remap[copy.b];
          if (copy.op == Opcode::kSelect) {
            copy.imm = remap[static_cast<std::size_t>(copy.imm)];
          }
          out.push_back(copy);
        }
        // kRet value -> the call's destination register.
        const Instr& ret = body.back();
        out.push_back(Instr{.op = Opcode::kMov, .dst = in.dst,
                            .a = remap[ret.a]});
        ++inlined;
      }
      block.instrs = std::move(out);
    }
  }
  return inlined;
}

std::size_t prune_unreachable_functions(Program& program) {
  if (program.functions.empty()) return 0;
  // Roots: dispatch + lambda entries. Programs not yet assembled have
  // dispatch 0 by default, which may be a lambda; treat every function
  // as a root when there are no entries (nothing provable).
  std::set<std::uint32_t> live;
  std::deque<std::uint32_t> work;
  auto add = [&](std::uint32_t fn) {
    if (fn < program.functions.size() && live.insert(fn).second) {
      work.push_back(fn);
    }
  };
  if (program.lambda_entries.empty()) return 0;
  add(program.dispatch_function);
  for (const auto& [wid, fn] : program.lambda_entries) {
    (void)wid;
    add(fn);
  }
  while (!work.empty()) {
    const auto fn_index = work.front();
    work.pop_front();
    for (const auto& block : program.functions[fn_index].blocks) {
      for (const auto& in : block.instrs) {
        if (in.op == Opcode::kCall) {
          add(static_cast<std::uint32_t>(in.imm));
        }
      }
    }
  }
  if (live.size() == program.functions.size()) return 0;

  std::vector<std::uint32_t> remap(program.functions.size());
  std::vector<Function> kept;
  std::size_t removed = 0;
  for (std::uint32_t i = 0; i < program.functions.size(); ++i) {
    if (live.count(i)) {
      remap[i] = static_cast<std::uint32_t>(kept.size());
      kept.push_back(std::move(program.functions[i]));
    } else {
      ++removed;
    }
  }
  program.functions = std::move(kept);
  for (auto& fn : program.functions) {
    for (auto& block : fn.blocks) {
      for (auto& in : block.instrs) {
        if (in.op == Opcode::kCall) {
          in.imm = remap[static_cast<std::size_t>(in.imm)];
        }
      }
    }
  }
  program.dispatch_function = remap[program.dispatch_function];
  for (auto& [wid, fn] : program.lambda_entries) {
    (void)wid;
    fn = remap[fn];
  }
  return removed;
}

}  // namespace lnic::compiler
