// Function inlining + dead-function pruning.
//
// Inlining substitutes calls to small single-block leaf functions,
// trading instruction-store space for per-call linkage cycles — the
// opposite lever from lambda coalescing, which is why both exist and the
// ablation bench compares them. Pruning removes functions unreachable
// from the dispatch function and lambda entries (e.g. helpers whose
// every call site was inlined).
#pragma once

#include "microc/ir.h"

namespace lnic::compiler {

struct InlineOptions {
  /// Largest callee body (instructions) that will be inlined.
  std::size_t max_callee_instrs = 24;
};

/// Inlines eligible call sites. Returns calls inlined.
std::size_t inline_functions(microc::Program& program,
                             const InlineOptions& options = {});

/// Removes functions unreachable from the dispatch function and lambda
/// entries, remapping call indices. No-op on programs with no dispatch
/// (nothing is provably dead before assembly). Returns functions removed.
std::size_t prune_unreachable_functions(microc::Program& program);

}  // namespace lnic::compiler
