#include "compiler/match_reduce.h"

#include "p4/lower.h"

namespace lnic::compiler {

Status reduce_match_stage(const p4::MatchSpec& spec,
                          microc::Program& program) {
  return p4::lower_match_stage(spec, program, p4::LoweringMode::kReduced);
}

}  // namespace lnic::compiler
