// Memory stratification (§5.1): "based on the access patterns, the
// workload manager can choose the most efficient memory for an object at
// compile time ... object size or hints from the user (as pragmas) to
// decide whether to put the object in a local memory, CTM, IMEM or EMEM."
//
// Placement is greedy by heat density (estimated accesses per byte),
// hot-pragma objects first, under per-region capacity budgets of the
// target NIC. Cold-pragma objects go straight to EMEM. The placement
// changes both the lowered code size (far memories need longer access
// sequences) and the interpreter's per-access cycle charges.
#pragma once

#include "common/types.h"
#include "microc/ir.h"

namespace lnic::compiler {

/// Capacity budget of one NPU core's reachable memories, per program.
struct TargetMemorySpec {
  Bytes local_capacity = 4_KiB;    // per-core local memory
  Bytes ctm_capacity = 256_KiB;    // island CTM share
  Bytes imem_capacity = 4_MiB;     // on-chip IMEM share
  Bytes emem_capacity = 2048_MiB;  // external DRAM (2 GiB card, §6.1.2)
};

/// Assigns MemObject::region for every object. Returns the number of
/// objects moved out of EMEM (the naïve layout places everything there).
std::size_t stratify_memory(microc::Program& program,
                            const TargetMemorySpec& spec = {});

}  // namespace lnic::compiler
