#include "compiler/stratify.h"

#include <algorithm>
#include <numeric>

#include "compiler/analysis.h"

namespace lnic::compiler {

using microc::MemObject;
using microc::MemRegion;
using microc::PlacementHint;

std::size_t stratify_memory(microc::Program& program,
                            const TargetMemorySpec& spec) {
  estimate_object_accesses(program);

  // Order objects by placement priority: hot pragmas first, then by
  // static access count per byte (hottest data closest to the core).
  std::vector<std::size_t> order(program.objects.size());
  std::iota(order.begin(), order.end(), 0);
  auto density = [&](std::size_t i) {
    const MemObject& o = program.objects[i];
    return static_cast<double>(o.access_estimate) /
           static_cast<double>(std::max<Bytes>(o.size, 1));
  };
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto& oa = program.objects[a];
    const auto& ob = program.objects[b];
    const bool hot_a = oa.hint == PlacementHint::kHot;
    const bool hot_b = ob.hint == PlacementHint::kHot;
    if (hot_a != hot_b) return hot_a;
    return density(a) > density(b);
  });

  Bytes local_left = spec.local_capacity;
  Bytes ctm_left = spec.ctm_capacity;
  Bytes imem_left = spec.imem_capacity;
  std::size_t moved = 0;

  for (std::size_t i : order) {
    MemObject& obj = program.objects[i];
    if (obj.hint == PlacementHint::kCold) {
      obj.region = MemRegion::kEmem;
      continue;
    }
    if (obj.size <= local_left && obj.access_estimate > 0) {
      obj.region = MemRegion::kLocal;
      local_left -= obj.size;
      ++moved;
    } else if (obj.size <= ctm_left && obj.access_estimate > 0) {
      obj.region = MemRegion::kCtm;
      ctm_left -= obj.size;
      ++moved;
    } else if (obj.size <= imem_left && obj.access_estimate > 0) {
      obj.region = MemRegion::kImem;
      imem_left -= obj.size;
      ++moved;
    } else {
      obj.region = MemRegion::kEmem;
    }
  }
  return moved;
}

}  // namespace lnic::compiler
