// Constant folding: evaluates ALU instructions whose operands are known
// constants within a basic block, replacing them with kConst. Paired
// with DCE it shrinks the register-mixing boilerplate user lambdas carry
// — and it must match the interpreter's semantics bit for bit
// (divisions by a possibly-zero value are never folded; the runtime trap
// is the defined behaviour).
#pragma once

#include "microc/ir.h"

namespace lnic::compiler {

/// Folds constants in every function. Returns instructions rewritten.
std::size_t fold_constants(microc::Program& program);

}  // namespace lnic::compiler
