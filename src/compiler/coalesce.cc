#include "compiler/coalesce.h"

#include <vector>

namespace lnic::compiler {

using microc::Function;
using microc::Opcode;
using microc::Program;

namespace {

// Structural equality of bodies. Function names are irrelevant; the
// instruction streams (including object and call references) must match.
bool same_body(const Function& a, const Function& b) {
  if (a.num_args != b.num_args) return false;
  if (a.blocks.size() != b.blocks.size()) return false;
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    if (a.blocks[i].instrs != b.blocks[i].instrs) return false;
  }
  return true;
}

}  // namespace

std::size_t coalesce_lambdas(Program& program) {
  const std::size_t n = program.functions.size();
  // canonical[i] = index of the representative of i's equivalence class.
  std::vector<std::uint32_t> canonical(n);
  for (std::size_t i = 0; i < n; ++i) {
    canonical[i] = static_cast<std::uint32_t>(i);
    for (std::size_t j = 0; j < i; ++j) {
      if (canonical[j] == j &&
          same_body(program.functions[i], program.functions[j])) {
        canonical[i] = static_cast<std::uint32_t>(j);
        break;
      }
    }
  }

  // Compact: keep representatives, build final remap.
  std::vector<std::uint32_t> remap(n);
  std::vector<Function> kept;
  std::size_t removed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (canonical[i] == i) {
      remap[i] = static_cast<std::uint32_t>(kept.size());
      kept.push_back(std::move(program.functions[i]));
    } else {
      ++removed;
    }
  }
  if (removed == 0) {
    program.functions = std::move(kept);
    return 0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (canonical[i] != i) remap[i] = remap[canonical[i]];
  }
  program.functions = std::move(kept);

  for (auto& fn : program.functions) {
    for (auto& block : fn.blocks) {
      for (auto& in : block.instrs) {
        if (in.op == Opcode::kCall) {
          in.imm = remap[static_cast<std::size_t>(in.imm)];
        }
      }
    }
  }
  program.dispatch_function = remap[program.dispatch_function];
  for (auto& [wid, fn_index] : program.lambda_entries) {
    (void)wid;
    fn_index = remap[fn_index];
  }
  return removed;
}

}  // namespace lnic::compiler
