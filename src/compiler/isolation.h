// Static isolation assertions (paper §4.2.1 D2: "the compiler can insert
// static and dynamic assertions to ensure that a lambda does not access
// the physical memory of other lambdas").
//
// The static half: every memory access whose offset is provably constant
// is checked against its object's bounds at compile time; the workload
// manager refuses programs with provable violations. Accesses that
// cannot be proven are left to the interpreter's runtime traps (the
// dynamic half).
#pragma once

#include <cstdint>

#include "common/result.h"
#include "microc/ir.h"

namespace lnic::compiler {

struct IsolationReport {
  std::uint64_t accesses_total = 0;
  std::uint64_t accesses_proven = 0;  // statically verified in-bounds
  std::uint64_t violations = 0;
};

/// Analyzes the program; returns the report, or an error naming the
/// first provable out-of-bounds access.
Result<IsolationReport> check_isolation(const microc::Program& program);

}  // namespace lnic::compiler
