// Shared IR analyses: register def/use queries, block reachability, and
// per-object access counting. Used by DCE, coalescing and stratification.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "microc/ir.h"

namespace lnic::compiler {

/// Registers an instruction reads. Note kMemCpy/kGrayscale/kBodyCopy read
/// their `dst` field (it names the destination-offset register).
std::vector<std::uint16_t> regs_read(const microc::Instr& in);

/// The register an instruction writes, if any.
std::optional<std::uint16_t> reg_written(const microc::Instr& in);

/// Successor blocks of a terminator instruction.
std::vector<std::uint32_t> successors(const microc::Instr& terminator);

/// Blocks reachable from the entry block.
std::vector<bool> reachable_blocks(const microc::Function& fn);

/// Fills MemObject::access_estimate with the static count of memory
/// instructions referencing each object across the whole program.
void estimate_object_accesses(microc::Program& program);

}  // namespace lnic::compiler
