#include "compiler/isolation.h"

#include <map>
#include <optional>

namespace lnic::compiler {

using microc::Instr;
using microc::Opcode;
using microc::Program;

Result<IsolationReport> check_isolation(const Program& program) {
  IsolationReport report;
  for (const auto& fn : program.functions) {
    for (const auto& block : fn.blocks) {
      // Block-local constant tracking, same discipline as const folding.
      std::map<std::uint16_t, std::uint64_t> known;
      for (const auto& in : block.instrs) {
        auto value_of = [&](std::uint16_t r) -> std::optional<std::uint64_t> {
          const auto it = known.find(r);
          if (it == known.end()) return std::nullopt;
          return it->second;
        };

        if (in.op == Opcode::kLoad || in.op == Opcode::kStore) {
          ++report.accesses_total;
          if (const auto base = value_of(in.a)) {
            ++report.accesses_proven;
            const std::uint64_t offset =
                *base + static_cast<std::uint64_t>(in.imm);
            const auto& obj = program.objects[in.obj];
            if (offset + in.width > obj.size) {
              ++report.violations;
              return make_error(
                  "isolation: '" + fn.name + "' accesses object '" +
                  obj.name + "' at offset " + std::to_string(offset) +
                  " width " + std::to_string(in.width) + " beyond size " +
                  std::to_string(obj.size));
            }
          }
        } else if (in.op == Opcode::kMemCpy || in.op == Opcode::kGrayscale ||
                   in.op == Opcode::kHash || in.op == Opcode::kRespMem ||
                   in.op == Opcode::kBodyCopy) {
          ++report.accesses_total;  // length usually dynamic; runtime-checked
        }

        // Track constants forward.
        if (in.op == Opcode::kConst) {
          known[in.dst] = static_cast<std::uint64_t>(in.imm);
        } else if (in.op == Opcode::kMov) {
          const auto v = value_of(in.a);
          if (v) {
            known[in.dst] = *v;
          } else {
            known.erase(in.dst);
          }
        } else if (in.op == Opcode::kAddImm) {
          const auto v = value_of(in.a);
          if (v) {
            known[in.dst] = *v + static_cast<std::uint64_t>(in.imm);
          } else {
            known.erase(in.dst);
          }
        } else {
          switch (in.op) {
            case Opcode::kStore:
            case Opcode::kRespByte:
            case Opcode::kRespWord:
            case Opcode::kRespMem:
            case Opcode::kMemCpy:
            case Opcode::kGrayscale:
            case Opcode::kBodyCopy:
            case Opcode::kBr:
            case Opcode::kBrIf:
            case Opcode::kRet:
              break;  // writes no register
            default:
              known.erase(in.dst);
              break;
          }
        }
      }
    }
  }
  return report;
}

}  // namespace lnic::compiler
