// The workload-manager compiler pipeline (§4.1 end, §5.1):
//
//   assemble (naïve lowering of the P4 match stage over the lambdas)
//     -> lambda coalescing (DCE + duplicate-helper merging)
//     -> match reduction (table merge + if-else conversion)
//     -> memory stratification (object placement)
//
// Each stage is individually switchable (ablation benches, Fig. 9) and
// the pipeline records code size after every stage, which is exactly the
// series Figure 9 plots.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "compiler/stratify.h"
#include "microc/ir.h"
#include "p4/p4.h"

namespace lnic::compiler {

struct Options {
  bool run_coalescing = true;
  bool run_match_reduction = true;
  bool run_stratification = true;
  /// Extra optimizations beyond the paper's three named stages (off by
  /// default so Figure 9 reproduces the published series exactly).
  bool run_const_folding = false;
  bool run_inlining = false;
  /// Static isolation assertions (D2); failing programs are rejected.
  bool run_isolation_check = true;
  TargetMemorySpec memory;
  /// Per-core instruction store limit (16 K instructions, §6.1.2).
  std::uint64_t instruction_store_words = 16384;

  static Options none() {
    Options options;
    options.run_coalescing = false;
    options.run_match_reduction = false;
    options.run_stratification = false;
    return options;
  }
};

struct StageReport {
  std::string stage;          // "unoptimized", "coalescing", ...
  std::uint64_t code_words;   // program size after this stage
};

struct CompileOutput {
  microc::Program program;
  std::vector<StageReport> stages;

  std::uint64_t naive_words() const { return stages.front().code_words; }
  std::uint64_t final_words() const { return stages.back().code_words; }
};

/// Compiles lambdas + a P4 match spec into a deployable program.
/// `lambdas` must contain every action function the spec references;
/// verification runs before and after the pipeline. Fails if the final
/// binary exceeds the instruction store.
Result<CompileOutput> compile(const p4::MatchSpec& spec,
                              microc::Program lambdas,
                              const Options& options = {});

}  // namespace lnic::compiler
