// Dead-code elimination: removes unreachable basic blocks and pure
// instructions whose results are never read. Part of the lambda-coalescing
// stage ("program analysis (i.e., dead-code elimination and code
// motion)", §5.1), also exposed standalone for tests and ablations.
#pragma once

#include "microc/ir.h"

namespace lnic::compiler {

/// Runs DCE over every function. Returns the number of instructions
/// removed (blocks count as their instruction totals).
std::size_t eliminate_dead_code(microc::Program& program);

}  // namespace lnic::compiler
