// Match reduction (§5.1): merges the per-lambda match/route tables and
// converts the table lookups into if-else sequences, which NPU cores
// execute more efficiently; unused header fields are dropped from the
// generated parser. Implemented by re-lowering the P4 spec in reduced
// mode over the same program.
#pragma once

#include "common/result.h"
#include "microc/ir.h"
#include "p4/p4.h"

namespace lnic::compiler {

Status reduce_match_stage(const p4::MatchSpec& spec, microc::Program& program);

}  // namespace lnic::compiler
