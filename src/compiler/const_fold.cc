#include "compiler/const_fold.h"

#include <map>
#include <optional>

#include "compiler/analysis.h"

namespace lnic::compiler {

using microc::Instr;
using microc::Opcode;

namespace {

// Evaluates a two-operand ALU op exactly as the interpreter does.
std::optional<std::uint64_t> eval(Opcode op, std::uint64_t a,
                                  std::uint64_t b) {
  switch (op) {
    case Opcode::kAdd: return a + b;
    case Opcode::kSub: return a - b;
    case Opcode::kMul: return a * b;
    case Opcode::kAnd: return a & b;
    case Opcode::kOr: return a | b;
    case Opcode::kXor: return a ^ b;
    case Opcode::kShl: return a << (b & 63);
    case Opcode::kShr: return a >> (b & 63);
    case Opcode::kCmpEq: return static_cast<std::uint64_t>(a == b);
    case Opcode::kCmpNe: return static_cast<std::uint64_t>(a != b);
    case Opcode::kCmpLtU: return static_cast<std::uint64_t>(a < b);
    case Opcode::kCmpLeU: return static_cast<std::uint64_t>(a <= b);
    case Opcode::kDivU:
      if (b == 0) return std::nullopt;  // runtime trap, not foldable
      return a / b;
    case Opcode::kRemU:
      if (b == 0) return std::nullopt;
      return a % b;
    case Opcode::kFxMul: {
      const std::int64_t sa = static_cast<std::int32_t>(a);
      const std::int64_t sb = static_cast<std::int32_t>(b);
      return static_cast<std::uint64_t>(
          static_cast<std::uint32_t>((sa * sb) >> 16));
    }
    default:
      return std::nullopt;
  }
}

}  // namespace

std::size_t fold_constants(microc::Program& program) {
  std::size_t rewritten = 0;
  for (auto& fn : program.functions) {
    for (auto& block : fn.blocks) {
      // Known constants are tracked per block only (no cross-block
      // dataflow); any other write invalidates the register.
      std::map<std::uint16_t, std::uint64_t> known;
      for (auto& in : block.instrs) {
        auto value_of = [&](std::uint16_t r) -> std::optional<std::uint64_t> {
          const auto it = known.find(r);
          if (it == known.end()) return std::nullopt;
          return it->second;
        };
        std::optional<std::uint64_t> folded;
        switch (in.op) {
          case Opcode::kConst:
            known[in.dst] = static_cast<std::uint64_t>(in.imm);
            continue;
          case Opcode::kMov:
            if (const auto v = value_of(in.a)) folded = *v;
            break;
          case Opcode::kAddImm:
            if (const auto v = value_of(in.a)) {
              folded = *v + static_cast<std::uint64_t>(in.imm);
            }
            break;
          case Opcode::kMulImm:
            if (const auto v = value_of(in.a)) {
              folded = *v * static_cast<std::uint64_t>(in.imm);
            }
            break;
          case Opcode::kCmpEqImm:
            if (const auto v = value_of(in.a)) {
              folded = static_cast<std::uint64_t>(
                  *v == static_cast<std::uint64_t>(in.imm));
            }
            break;
          case Opcode::kSelect:
            if (const auto c = value_of(in.a)) {
              const auto picked =
                  *c ? value_of(in.b)
                     : value_of(static_cast<std::uint16_t>(in.imm));
              if (picked) folded = *picked;
            }
            break;
          default:
            if (microc::is_pure(in.op)) {
              const auto a = value_of(in.a);
              const auto b = value_of(in.b);
              if (a && b) folded = eval(in.op, *a, *b);
            }
            break;
        }
        if (folded.has_value()) {
          in = Instr{.op = Opcode::kConst, .dst = in.dst,
                     .imm = static_cast<std::int64_t>(*folded)};
          known[in.dst] = *folded;
          ++rewritten;
          continue;
        }
        // Not folded: any written register becomes unknown.
        if (const auto w = reg_written(in)) known.erase(*w);
      }
    }
  }
  return rewritten;
}

}  // namespace lnic::compiler
