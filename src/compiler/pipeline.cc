#include "compiler/pipeline.h"

#include "compiler/coalesce.h"
#include "compiler/const_fold.h"
#include "compiler/dce.h"
#include "compiler/inline.h"
#include "compiler/isolation.h"
#include "compiler/match_reduce.h"
#include "microc/verify.h"
#include "p4/lower.h"

namespace lnic::compiler {

Result<CompileOutput> compile(const p4::MatchSpec& spec,
                              microc::Program lambdas,
                              const Options& options) {
  CompileOutput out;
  out.program = std::move(lambdas);

  // Assemble: naïve lowering produces the unoptimized deployable program.
  if (Status st = p4::lower_match_stage(spec, out.program,
                                        p4::LoweringMode::kNaive);
      !st.ok()) {
    return st.error();
  }
  if (Status st = microc::verify(out.program); !st.ok()) return st.error();
  out.stages.push_back({"unoptimized", microc::code_size(out.program)});

  if (options.run_coalescing) {
    eliminate_dead_code(out.program);
    coalesce_lambdas(out.program);
    out.stages.push_back({"lambda-coalescing", microc::code_size(out.program)});
  }

  if (options.run_match_reduction) {
    if (Status st = reduce_match_stage(spec, out.program); !st.ok()) {
      return st.error();
    }
    out.stages.push_back({"match-reduction", microc::code_size(out.program)});
  }

  if (options.run_stratification) {
    stratify_memory(out.program, options.memory);
    out.stages.push_back({"memory-stratification",
                          microc::code_size(out.program)});
  }

  if (options.run_const_folding) {
    fold_constants(out.program);
    eliminate_dead_code(out.program);
    out.stages.push_back({"constant-folding", microc::code_size(out.program)});
  }
  if (options.run_inlining) {
    inline_functions(out.program);
    prune_unreachable_functions(out.program);
    eliminate_dead_code(out.program);
    out.stages.push_back({"inlining", microc::code_size(out.program)});
  }

  if (Status st = microc::verify(out.program); !st.ok()) return st.error();

  if (options.run_isolation_check) {
    auto report = check_isolation(out.program);
    if (!report.ok()) return report.error();
  }

  if (out.final_words() > options.instruction_store_words) {
    return make_error("compile: program (" +
                      std::to_string(out.final_words()) +
                      " words) exceeds the per-core instruction store (" +
                      std::to_string(options.instruction_store_words) + ")");
  }
  return out;
}

}  // namespace lnic::compiler
