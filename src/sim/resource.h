// Multi-server FIFO resource for discrete-event models.
//
// Models a pool of `servers` identical units (CPU cores, NPU threads,
// DMA channels). Jobs acquire a unit, hold it for a caller-computed
// service time, then release. Excess jobs wait in FIFO order. Utilization
// is tracked for Table 3-style resource accounting.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>

#include "common/stats.h"
#include "sim/simulator.h"

namespace lnic::sim {

class ServerPool {
 public:
  /// `on_start(server_index)` runs when a unit is granted; the job must be
  /// finished by calling the provided completion callback pattern below.
  ServerPool(Simulator& sim, std::uint32_t servers)
      : sim_(sim), total_(servers), free_(servers) {
    assert(servers > 0);
  }

  /// Submits a job that will occupy one server for `service` once granted.
  /// `done` (may be null) runs at completion time.
  void submit(SimDuration service, EventFn done = nullptr) {
    queue_.push_back(Job{service, std::move(done), sim_.now()});
    try_dispatch();
  }

  std::uint32_t servers() const { return total_; }
  std::uint32_t busy() const { return total_ - free_; }
  std::size_t queue_length() const { return queue_.size(); }
  std::uint64_t completed() const { return completed_; }

  /// Total busy server-time accumulated (for utilization computation).
  SimDuration busy_time() const { return util_.busy_time(); }

  /// Queueing delay distribution (time from submit to dispatch), in ns.
  const Sampler& wait_samples() const { return waits_; }

 private:
  struct Job {
    SimDuration service;
    EventFn done;
    SimTime submitted;
  };

  void try_dispatch() {
    while (free_ > 0 && !queue_.empty()) {
      Job job = std::move(queue_.front());
      queue_.pop_front();
      --free_;
      waits_.add(static_cast<double>(sim_.now() - job.submitted));
      util_.add_busy(job.service);
      sim_.schedule(job.service, [this, done = std::move(job.done)]() {
        ++free_;
        ++completed_;
        if (done) done();
        try_dispatch();
      });
    }
  }

  Simulator& sim_;
  std::uint32_t total_;
  std::uint32_t free_;
  std::deque<Job> queue_;
  std::uint64_t completed_ = 0;
  UtilizationTracker util_;
  Sampler waits_;
};

}  // namespace lnic::sim
