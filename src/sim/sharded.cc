#include "sim/sharded.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace lnic::sim {

namespace {

using WallClock = std::chrono::steady_clock;

std::uint64_t wall_ns_since(WallClock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(WallClock::now() -
                                                           start)
          .count());
}

/// Runs one shard for one window. A window ending at kSimTimeMax means
/// "drain": use run() so the shard's clock stops at its last event
/// instead of saturating at the far future.
std::uint64_t run_shard(Simulator& sim, SimTime end) {
  return end == kSimTimeMax ? sim.run() : sim.run_until(end);
}

[[noreturn]] void die_lookahead(SimTime at, unsigned shard, SimTime clock) {
  std::fprintf(stderr,
               "ShardedSimulator: lookahead violation: cross-shard event at "
               "t=%" PRId64 " ns is behind shard %u's clock t=%" PRId64
               " ns; every cross-shard coupling must register a positive "
               "lookahead via constrain_lookahead()\n",
               at, shard, clock);
  std::abort();
}

[[noreturn]] void die_eot(SimTime at, unsigned src, unsigned dst,
                          SimTime window_end) {
  std::fprintf(stderr,
               "ShardedSimulator: EOT contract violation: shard %u posted a "
               "cross-shard event to shard %u at t=%" PRId64
               " ns inside the adaptive window ending t=%" PRId64
               " ns; an EOT source promised no sends this early (check "
               "net::Network::set_local_only declarations)\n",
               src, dst, at, window_end);
  std::abort();
}

}  // namespace

ShardedSimulator::ShardedSimulator(unsigned shards) {
  if (shards == 0) shards = 1;
  shards_.resize(shards);
  for (auto& sh : shards_) {
    sh.sim = std::make_unique<Simulator>();
    sh.outbox_by_dst.resize(shards);
    sh.posts_by_dst.assign(shards, 0);
  }
  eot_sources_.resize(shards);
  stats_ = std::make_unique<ShardStatsCollector>(shards);
  if (shards > 1) {
    workers_.reserve(shards - 1);
    for (unsigned s = 1; s < shards; ++s) {
      workers_.emplace_back([this, s] { worker_loop(s); });
    }
  }
}

ShardedSimulator::~ShardedSimulator() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
    }
    cv_work_.notify_all();
    for (auto& t : workers_) t.join();
  }
}

void ShardedSimulator::constrain_lookahead(SimDuration min_delay) {
  lookahead_ = std::min(lookahead_, min_delay);
}

Status ShardedSimulator::validate_lookahead() const {
  if (shards() > 1 && lookahead_ <= 0) {
    return make_error(
        "sharded simulation requires positive lookahead: a zero-delay "
        "cross-shard link would deliver into another shard's past "
        "(lookahead = " +
        std::to_string(lookahead_) + " ns)");
  }
  return Status::ok_status();
}

void ShardedSimulator::set_eot_source(unsigned s, EotFn fn) {
  eot_sources_[s] = std::move(fn);
}

SimTime ShardedSimulator::min_eot() const {
  SimTime eot = kSimTimeMax;
  for (unsigned s = 0; s < shards(); ++s) {
    const SimTime shard_eot = eot_sources_[s]
                                  ? eot_sources_[s]()
                                  : shards_[s].sim->next_event_time();
    eot = std::min(eot, shard_eot);
  }
  return eot;
}

void ShardedSimulator::post(unsigned src, unsigned dst, SimTime at,
                            EventFn fn) {
  if (src == dst) {
    shards_[dst].sim->schedule_at(at, std::move(fn));
    return;
  }
  Shard& shard = shards_[src];
  if (at < shard.sim->now()) die_lookahead(at, src, shard.sim->now());
  // A cross-shard arrival inside the current window means another shard
  // may already be past `at` — the static lookahead makes this impossible
  // (at >= t + L > end), so in adaptive mode it can only mean an EOT
  // source under-promised. Catch it here, deterministically, instead of
  // letting a sometimes-late delivery corrupt replays.
  if (adaptive_ && window_active_ && at <= window_end_) {
    die_eot(at, src, dst, window_end_);
  }
  const std::uint64_t gseq =
      (static_cast<std::uint64_t>(src) << 48) | shard.next_post_seq++;
  ++shard.posts_by_dst[dst];
  shard.outbox_by_dst[dst].push_back(RemoteEvent{at, gseq, std::move(fn)});
  ++shard.outbox_count;
}

void ShardedSimulator::flush_remote() {
  std::size_t total = 0;
  for (const auto& sh : shards_) total += sh.outbox_count;
  if (total == 0) {
    // No cross-shard traffic this window: skip the merge outright.
    ++merge_skips_;
    return;
  }
  // Merge per destination: each destination's insertion order under a
  // per-dst (time, global-seq) sort is the same subsequence the old
  // global sort produced, so same-tick dispatch order — and output
  // bytes — are unchanged, while untouched destinations cost nothing.
  for (unsigned dst = 0; dst < shards(); ++dst) {
    merge_buf_.clear();
    for (auto& sh : shards_) {
      auto& box = sh.outbox_by_dst[dst];
      for (auto& e : box) merge_buf_.push_back(std::move(e));
      box.clear();  // keeps capacity: steady state allocates nothing
    }
    if (merge_buf_.empty()) continue;
    std::sort(merge_buf_.begin(), merge_buf_.end(),
              [](const RemoteEvent& a, const RemoteEvent& b) {
                if (a.at != b.at) return a.at < b.at;
                return a.gseq < b.gseq;
              });
    Simulator& d = *shards_[dst].sim;
    for (auto& e : merge_buf_) {
      if (e.at < d.now()) die_lookahead(e.at, dst, d.now());
      d.schedule_at(e.at, std::move(e.fn));
    }
  }
  for (auto& sh : shards_) sh.outbox_count = 0;
}

std::uint64_t ShardedSimulator::run_window(SimTime t0, SimTime end,
                                           bool eot_extended) {
  const auto window_start = WallClock::now();
  {
    std::lock_guard<std::mutex> lk(mu_);
    window_end_ = end;
    window_active_ = true;
    done_count_ = 0;
    ++epoch_;
  }
  cv_work_.notify_all();
  // Shard 0 runs on the coordinating thread: entity callbacks created on
  // this thread (bench clients, test closures) fire where they were made.
  const auto busy0_start = WallClock::now();
  std::uint64_t total = run_shard(*shards_[0].sim, end);
  shards_[0].window_dispatched = total;
  shards_[0].window_busy_ns = wall_ns_since(busy0_start);
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return done_count_ == workers_.size(); });
    window_active_ = false;
    for (std::size_t s = 1; s < shards_.size(); ++s) {
      total += shards_[s].window_dispatched;
    }
  }
  // Post-barrier: workers are parked on cv_work_, their per-window
  // numbers are stable (the barrier mutex gives happens-before), and
  // this thread is the only one touching the collector.
  const std::uint64_t wall_ns = wall_ns_since(window_start);
  std::vector<std::uint64_t> busy(shards_.size());
  std::vector<std::uint64_t> events(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    busy[s] = shards_[s].window_busy_ns;
    events[s] = shards_[s].window_dispatched;
    stats_->set_cross_row(static_cast<unsigned>(s), shards_[s].posts_by_dst);
  }
  // Drain windows run to kSimTimeMax; record where the clocks actually
  // stopped so spans stay finite for the timeline and span accounting.
  SimTime eff_end = end;
  if (end == kSimTimeMax) {
    eff_end = t0;
    for (const auto& sh : shards_) eff_end = std::max(eff_end, sh.sim->now());
  }
  stats_->record_window(t0, eff_end, lookahead_, eot_extended, wall_ns, busy,
                        events);
  return total;
}

void ShardedSimulator::worker_loop(unsigned s) {
  std::uint64_t seen_epoch = 0;
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    cv_work_.wait(lk, [&] { return shutdown_ || epoch_ != seen_epoch; });
    if (shutdown_) return;
    seen_epoch = epoch_;
    const SimTime end = window_end_;
    lk.unlock();
    const auto busy_start = WallClock::now();
    shards_[s].window_dispatched = run_shard(*shards_[s].sim, end);
    shards_[s].window_busy_ns = wall_ns_since(busy_start);
    lk.lock();
    if (++done_count_ == workers_.size()) cv_done_.notify_one();
  }
}

std::uint64_t ShardedSimulator::run_windows(SimTime deadline, bool drain,
                                            const std::function<bool()>* stop) {
  const auto run_start = WallClock::now();
  std::uint64_t total = 0;
  flush_remote();  // posts made between runs (deployment, test setup)
  while (true) {
    if (stop != nullptr && (*stop)()) break;
    SimTime t0 = kSimTimeMax;
    for (auto& sh : shards_) {
      t0 = std::min(t0, sh.sim->next_event_time());
    }
    if (t0 == kSimTimeMax || t0 > deadline) break;
    // Window [t0, t0 + L - 1]: an event posted at local time t >= t0
    // lands at t + L > window end, so nothing posted during the window
    // can be due inside it.
    const SimDuration len = std::max<SimDuration>(1, lookahead_);
    SimTime end = deadline;
    bool eot_extended = false;
    if (lookahead_ != kSimTimeMax && deadline - t0 > len - 1) {
      end = t0 + len - 1;
      if (adaptive_) {
        // Same safety argument anchored at the earliest possible send
        // instead of the window start: a send at t >= eot lands at
        // t + L > eot + L - 1. The static floor above means adaptive
        // never shortens a window; the deadline still caps it.
        const SimTime eot = min_eot();
        SimTime eot_end;
        if (eot >= kSimTimeMax - len) {
          eot_end = kSimTimeMax;  // idle frontier: run to the horizon
        } else {
          eot_end = eot + len - 1;
        }
        eot_end = std::min(eot_end, deadline);
        if (eot_end > end) {
          end = eot_end;
          eot_extended = true;
        }
      }
    }
    total += run_window(t0, end, eot_extended);
    ++windows_;
    if (eot_extended) ++windows_extended_;
    flush_remote();
  }
  if (!drain && deadline != kSimTimeMax &&
      (stop == nullptr || !(*stop)())) {
    // Align every clock at the deadline (run_until semantics); nothing
    // is pending at or before it, so this dispatches no events.
    for (auto& sh : shards_) sh.sim->run_until(deadline);
  }
  stats_->add_run_wall(wall_ns_since(run_start));
  return total;
}

std::uint64_t ShardedSimulator::run() {
  if (shards() == 1) {
    const auto start = WallClock::now();
    const std::uint64_t n = shards_[0].sim->run();
    stats_->add_delegated_run(wall_ns_since(start), n);
    return n;
  }
  return run_windows(kSimTimeMax, /*drain=*/true, nullptr);
}

std::uint64_t ShardedSimulator::run_until(SimTime deadline) {
  if (shards() == 1) {
    const auto start = WallClock::now();
    const std::uint64_t n = shards_[0].sim->run_until(deadline);
    stats_->add_delegated_run(wall_ns_since(start), n);
    return n;
  }
  return run_windows(deadline, /*drain=*/false, nullptr);
}

std::uint64_t ShardedSimulator::run_until(SimTime deadline,
                                          const std::function<bool()>& stop) {
  if (shards() == 1) {
    // Same shape as the classic wait loops: step while the predicate is
    // false and time remains.
    const auto start = WallClock::now();
    Simulator& sim = *shards_[0].sim;
    std::uint64_t n = 0;
    while (!stop() && sim.now() < deadline && sim.step()) ++n;
    stats_->add_delegated_run(wall_ns_since(start), n);
    return n;
  }
  return run_windows(deadline, /*drain=*/false, &stop);
}

std::size_t ShardedSimulator::pending() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) n += sh.sim->pending() + sh.outbox_count;
  return n;
}

std::uint64_t ShardedSimulator::cross_shard_posts() const {
  // Per-source post sequences double as race-free post counters.
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh.next_post_seq;
  return n;
}

std::uint64_t ShardedSimulator::events_dispatched() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh.sim->events_dispatched();
  return n;
}

}  // namespace lnic::sim
