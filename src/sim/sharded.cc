#include "sim/sharded.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace lnic::sim {

namespace {

using WallClock = std::chrono::steady_clock;

std::uint64_t wall_ns_since(WallClock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(WallClock::now() -
                                                           start)
          .count());
}

/// Runs one shard for one window. A window ending at kSimTimeMax means
/// "drain": use run() so the shard's clock stops at its last event
/// instead of saturating at the far future.
std::uint64_t run_shard(Simulator& sim, SimTime end) {
  return end == kSimTimeMax ? sim.run() : sim.run_until(end);
}

[[noreturn]] void die_lookahead(SimTime at, unsigned shard, SimTime clock) {
  std::fprintf(stderr,
               "ShardedSimulator: lookahead violation: cross-shard event at "
               "t=%" PRId64 " ns is behind shard %u's clock t=%" PRId64
               " ns; every cross-shard coupling must register a positive "
               "lookahead via constrain_lookahead()\n",
               at, shard, clock);
  std::abort();
}

}  // namespace

ShardedSimulator::ShardedSimulator(unsigned shards) {
  if (shards == 0) shards = 1;
  shards_.resize(shards);
  for (auto& sh : shards_) {
    sh.sim = std::make_unique<Simulator>();
    sh.posts_by_dst.assign(shards, 0);
  }
  stats_ = std::make_unique<ShardStatsCollector>(shards);
  if (shards > 1) {
    workers_.reserve(shards - 1);
    for (unsigned s = 1; s < shards; ++s) {
      workers_.emplace_back([this, s] { worker_loop(s); });
    }
  }
}

ShardedSimulator::~ShardedSimulator() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
    }
    cv_work_.notify_all();
    for (auto& t : workers_) t.join();
  }
}

void ShardedSimulator::constrain_lookahead(SimDuration min_delay) {
  lookahead_ = std::min(lookahead_, min_delay);
}

Status ShardedSimulator::validate_lookahead() const {
  if (shards() > 1 && lookahead_ <= 0) {
    return make_error(
        "sharded simulation requires positive lookahead: a zero-delay "
        "cross-shard link would deliver into another shard's past "
        "(lookahead = " +
        std::to_string(lookahead_) + " ns)");
  }
  return Status::ok_status();
}

void ShardedSimulator::post(unsigned src, unsigned dst, SimTime at,
                            EventFn fn) {
  if (src == dst) {
    shards_[dst].sim->schedule_at(at, std::move(fn));
    return;
  }
  Shard& shard = shards_[src];
  if (at < shard.sim->now()) die_lookahead(at, src, shard.sim->now());
  const std::uint64_t gseq =
      (static_cast<std::uint64_t>(src) << 48) | shard.next_post_seq++;
  ++shard.posts_by_dst[dst];
  shard.outbox.push_back(RemoteEvent{at, gseq, dst, std::move(fn)});
}

void ShardedSimulator::flush_remote() {
  std::vector<RemoteEvent> batch;
  for (auto& sh : shards_) {
    if (sh.outbox.empty()) continue;
    for (auto& e : sh.outbox) batch.push_back(std::move(e));
    sh.outbox.clear();
  }
  if (batch.empty()) return;
  // (time, global-seq) order makes destination insertion order — and so
  // each destination's same-tick dispatch order — independent of thread
  // scheduling.
  std::sort(batch.begin(), batch.end(),
            [](const RemoteEvent& a, const RemoteEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.gseq < b.gseq;
            });
  for (auto& e : batch) {
    Simulator& dst = *shards_[e.dst].sim;
    if (e.at < dst.now()) die_lookahead(e.at, e.dst, dst.now());
    dst.schedule_at(e.at, std::move(e.fn));
  }
}

std::uint64_t ShardedSimulator::run_window(SimTime t0, SimTime end) {
  const auto window_start = WallClock::now();
  {
    std::lock_guard<std::mutex> lk(mu_);
    window_end_ = end;
    done_count_ = 0;
    ++epoch_;
  }
  cv_work_.notify_all();
  // Shard 0 runs on the coordinating thread: entity callbacks created on
  // this thread (bench clients, test closures) fire where they were made.
  const auto busy0_start = WallClock::now();
  std::uint64_t total = run_shard(*shards_[0].sim, end);
  shards_[0].window_dispatched = total;
  shards_[0].window_busy_ns = wall_ns_since(busy0_start);
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return done_count_ == workers_.size(); });
    for (std::size_t s = 1; s < shards_.size(); ++s) {
      total += shards_[s].window_dispatched;
    }
  }
  // Post-barrier: workers are parked on cv_work_, their per-window
  // numbers are stable (the barrier mutex gives happens-before), and
  // this thread is the only one touching the collector.
  const std::uint64_t wall_ns = wall_ns_since(window_start);
  std::vector<std::uint64_t> busy(shards_.size());
  std::vector<std::uint64_t> events(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    busy[s] = shards_[s].window_busy_ns;
    events[s] = shards_[s].window_dispatched;
    stats_->set_cross_row(static_cast<unsigned>(s), shards_[s].posts_by_dst);
  }
  stats_->record_window(t0, end, lookahead_, wall_ns, busy, events);
  return total;
}

void ShardedSimulator::worker_loop(unsigned s) {
  std::uint64_t seen_epoch = 0;
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    cv_work_.wait(lk, [&] { return shutdown_ || epoch_ != seen_epoch; });
    if (shutdown_) return;
    seen_epoch = epoch_;
    const SimTime end = window_end_;
    lk.unlock();
    const auto busy_start = WallClock::now();
    shards_[s].window_dispatched = run_shard(*shards_[s].sim, end);
    shards_[s].window_busy_ns = wall_ns_since(busy_start);
    lk.lock();
    if (++done_count_ == workers_.size()) cv_done_.notify_one();
  }
}

std::uint64_t ShardedSimulator::run_windows(SimTime deadline, bool drain,
                                            const std::function<bool()>* stop) {
  const auto run_start = WallClock::now();
  std::uint64_t total = 0;
  flush_remote();  // posts made between runs (deployment, test setup)
  while (true) {
    if (stop != nullptr && (*stop)()) break;
    SimTime t0 = kSimTimeMax;
    for (auto& sh : shards_) {
      t0 = std::min(t0, sh.sim->next_event_time());
    }
    if (t0 == kSimTimeMax || t0 > deadline) break;
    // Window [t0, t0 + L - 1]: an event posted at local time t >= t0
    // lands at t + L > window end, so nothing posted during the window
    // can be due inside it.
    const SimDuration len = std::max<SimDuration>(1, lookahead_);
    SimTime end = deadline;
    if (lookahead_ != kSimTimeMax && deadline - t0 > len - 1) {
      end = t0 + len - 1;
    }
    total += run_window(t0, end);
    ++windows_;
    flush_remote();
  }
  if (!drain && deadline != kSimTimeMax &&
      (stop == nullptr || !(*stop)())) {
    // Align every clock at the deadline (run_until semantics); nothing
    // is pending at or before it, so this dispatches no events.
    for (auto& sh : shards_) sh.sim->run_until(deadline);
  }
  stats_->add_run_wall(wall_ns_since(run_start));
  return total;
}

std::uint64_t ShardedSimulator::run() {
  if (shards() == 1) {
    const auto start = WallClock::now();
    const std::uint64_t n = shards_[0].sim->run();
    stats_->add_delegated_run(wall_ns_since(start), n);
    return n;
  }
  return run_windows(kSimTimeMax, /*drain=*/true, nullptr);
}

std::uint64_t ShardedSimulator::run_until(SimTime deadline) {
  if (shards() == 1) {
    const auto start = WallClock::now();
    const std::uint64_t n = shards_[0].sim->run_until(deadline);
    stats_->add_delegated_run(wall_ns_since(start), n);
    return n;
  }
  return run_windows(deadline, /*drain=*/false, nullptr);
}

std::uint64_t ShardedSimulator::run_until(SimTime deadline,
                                          const std::function<bool()>& stop) {
  if (shards() == 1) {
    // Same shape as the classic wait loops: step while the predicate is
    // false and time remains.
    const auto start = WallClock::now();
    Simulator& sim = *shards_[0].sim;
    std::uint64_t n = 0;
    while (!stop() && sim.now() < deadline && sim.step()) ++n;
    stats_->add_delegated_run(wall_ns_since(start), n);
    return n;
  }
  return run_windows(deadline, /*drain=*/false, &stop);
}

std::size_t ShardedSimulator::pending() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) n += sh.sim->pending() + sh.outbox.size();
  return n;
}

std::uint64_t ShardedSimulator::cross_shard_posts() const {
  // Per-source post sequences double as race-free post counters.
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh.next_post_seq;
  return n;
}

std::uint64_t ShardedSimulator::events_dispatched() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh.sim->events_dispatched();
  return n;
}

}  // namespace lnic::sim
