// Small-buffer move-only callable for the event engine's hot path.
//
// std::function heap-allocates most simulator closures (captures beyond
// its ~2-word SBO) and drags in copy-ability the engine never needs.
// InlineFn stores callables up to `Capacity` bytes in place — the common
// packet-delivery and timer closures never touch the allocator — and
// falls back to a single heap cell for oversized captures. Move-only,
// so closures may own move-only state (pending flights, buffers).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace lnic::sim {

template <std::size_t Capacity>
class InlineFn {
 public:
  InlineFn() noexcept = default;
  InlineFn(std::nullptr_t) noexcept {}

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFn(F&& fn) {
    emplace(std::forward<F>(fn));
  }

  InlineFn(InlineFn&& other) noexcept { take(other); }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { reset(); }

  // const like std::function: invoking from a non-mutable lambda capture
  // is the norm. The callable itself may still mutate its own state.
  void operator()() const { ops_->invoke(&storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

  /// Constructs `fn` directly in this cell (replacing any held callable)
  /// — lets callers skip the construct-then-relocate of assigning a
  /// freshly built InlineFn.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void assign(F&& fn) {
    reset();
    emplace(std::forward<F>(fn));
  }
  void assign(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;  // move + destroy src
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static constexpr bool kInline = sizeof(D) <= Capacity &&
                                  alignof(D) <= alignof(std::max_align_t) &&
                                  std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static const Ops* inline_ops() {
    static constexpr Ops ops{
        [](void* s) { (*static_cast<D*>(s))(); },
        [](void* dst, void* src) noexcept {
          ::new (dst) D(std::move(*static_cast<D*>(src)));
          static_cast<D*>(src)->~D();
        },
        [](void* s) noexcept { static_cast<D*>(s)->~D(); }};
    return &ops;
  }

  template <typename D>
  static const Ops* heap_ops() {
    static constexpr Ops ops{
        [](void* s) { (**static_cast<D**>(s))(); },
        [](void* dst, void* src) noexcept {
          ::new (dst) D*(*static_cast<D**>(src));
        },
        [](void* s) noexcept { delete *static_cast<D**>(s); }};
    return &ops;
  }

  template <typename F>
  void emplace(F&& fn) {
    using D = std::decay_t<F>;
    if constexpr (kInline<D>) {
      ::new (&storage_) D(std::forward<F>(fn));
      ops_ = inline_ops<D>();
    } else {
      ::new (&storage_) D*(new D(std::forward<F>(fn)));
      ops_ = heap_ops<D>();
    }
  }

  void take(InlineFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(&storage_, &other.storage_);
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) mutable unsigned char storage_[Capacity];
};

}  // namespace lnic::sim
