// Sharded parallel simulation: per-island event shards with conservative
// synchronization.
//
// ShardedSimulator layers N independent arena engines (one Simulator per
// shard, each with its own calendar wheel) over OS threads and advances
// them in lockstep time windows:
//
//   T0   = min over shards of next_event_time()
//   end  = T0 + lookahead - 1
//   every shard runs run_until(end) concurrently, then all block on a
//   barrier; cross-shard events buffered during the window are merged and
//   scheduled; repeat.
//
// The lookahead contract: every cross-shard interaction must take at
// least `lookahead` simulated time (for the network fabric this is link
// propagation + switch forwarding latency — the minimum time a packet is
// "in flight" and owned by neither endpoint). An event posted at local
// time t therefore lands at t + lookahead > end, strictly after the
// current window, so no shard can ever receive an event in its past.
// Windows need no null messages: the barrier itself is the sync point.
//
// Determinism: cross-shard posts are stamped (time, global-seq) where
// global-seq packs {source shard : 16, per-source count : 48}. The merge
// at each barrier sorts by that key before scheduling into destination
// shards, so the destination's insertion order — and hence its (time,
// seq) dispatch order — is a pure function of simulation state, never of
// thread scheduling. Runs are bit-reproducible for a fixed shard count
// and seed.
//
// Single-shard mode bypasses all of this: every call delegates straight
// to the one underlying Simulator on the calling thread, so shards=1
// dispatches in the exact (time, seq) order of the classic engine and
// every deterministic bench replays byte-for-byte.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "sim/shard_stats.h"
#include "sim/simulator.h"

namespace lnic::sim {

class ShardedSimulator {
 public:
  /// Creates `shards` independent event shards (>= 1). Worker threads are
  /// spawned only when shards > 1.
  explicit ShardedSimulator(unsigned shards = 1);
  ~ShardedSimulator();
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  unsigned shards() const { return static_cast<unsigned>(shards_.size()); }

  /// The per-shard engine. Entities pinned to shard `s` schedule their
  /// local events here; all of a node's state lives on exactly one shard.
  Simulator& shard(unsigned s) { return *shards_[s].sim; }
  const Simulator& shard(unsigned s) const { return *shards_[s].sim; }

  /// Tightens the lookahead to at most `min_delay`. Called by every
  /// cross-shard coupling (the network fabric) with its minimum
  /// interaction latency; the effective lookahead is the min over all
  /// callers. Must be positive — validate_lookahead() reports violations.
  void constrain_lookahead(SimDuration min_delay);
  SimDuration lookahead() const { return lookahead_; }

  /// Checks that the configured lookahead permits conservative parallel
  /// execution: rejects zero/negative lookahead when shards > 1 (a
  /// zero-delay cross-shard link would let one shard schedule into
  /// another shard's past).
  Status validate_lookahead() const;

  /// Enqueues `fn` on shard `dst` at absolute time `at`, stamped with the
  /// next (time, global-seq) key from shard `src`. Must be called from
  /// code running on shard `src` (or from the coordinating thread between
  /// windows). Cross-shard posts inside a window must satisfy
  /// `at >= shard(src).now() + lookahead()`; violations abort.
  void post(unsigned src, unsigned dst, SimTime at, EventFn fn);

  /// Runs until every shard drains (cross-shard mail included). Returns
  /// total events dispatched across shards.
  std::uint64_t run();

  /// Runs all shards up to and including `deadline`; every shard's clock
  /// ends at `deadline`. Returns total events dispatched.
  std::uint64_t run_until(SimTime deadline);

  /// As run_until, but re-evaluates `stop` at every window barrier and
  /// returns early (shards aligned at the last window's end) once it
  /// turns true. Lets callers wait for a completion flag in workloads
  /// whose event queues never drain (heartbeats, periodic timers).
  std::uint64_t run_until(SimTime deadline, const std::function<bool()>& stop);

  /// Shard 0's clock. All shards share this value at every barrier, so
  /// between runs it is *the* simulation time.
  SimTime now() const { return shards_[0].sim->now(); }

  /// Live pending events across shards plus undelivered cross-shard mail.
  std::size_t pending() const;

  std::uint64_t events_dispatched() const;

  /// Cross-shard events posted since construction.
  std::uint64_t cross_shard_posts() const;

  /// Synchronization windows executed by multi-shard runs.
  std::uint64_t windows_executed() const { return windows_; }

  /// Wall-clock stall accounting: per-shard busy / barrier-wait, serial
  /// sync overhead, cross-shard event matrix, recent-window ring. Pure
  /// wall-clock bookkeeping — instrumentation never reads or perturbs
  /// simulated time, so runs stay byte-identical. Must be called from
  /// the coordinating thread (the thread that calls run()).
  ShardStats shard_stats() const { return stats_->snapshot(); }
  /// Collector tuning (recent-window ring capacity); coordinator only.
  ShardStatsCollector& stats_collector() { return *stats_; }

 private:
  /// A cross-shard event buffered until the next barrier. gseq packs
  /// {src shard : 16, per-source sequence : 48} so the barrier merge
  /// order is thread-schedule independent.
  struct RemoteEvent {
    SimTime at;
    std::uint64_t gseq;
    unsigned dst;
    EventFn fn;
  };

  struct Shard {
    std::unique_ptr<Simulator> sim;
    // Written only by the shard's own thread during a window (or the
    // coordinator between windows); drained single-threaded at barriers.
    std::vector<RemoteEvent> outbox;
    std::uint64_t next_post_seq = 0;
    std::uint64_t window_dispatched = 0;
    // Wall nanoseconds this shard spent inside run_shard this window;
    // same ownership discipline as window_dispatched.
    std::uint64_t window_busy_ns = 0;
    // Cumulative cross-shard posts by destination (size == shards).
    std::vector<std::uint64_t> posts_by_dst;
  };

  /// Moves all outbox entries into destination shards in (at, gseq)
  /// order. Runs single-threaded (between windows).
  void flush_remote();

  /// One synchronized window [t0, end]: all shards run_until(end) in
  /// parallel. Returns events dispatched this window.
  std::uint64_t run_window(SimTime t0, SimTime end);

  /// Shared core of run()/run_until(): windows until `deadline` (or
  /// drained when `drain`), checking `stop` at barriers when non-null.
  std::uint64_t run_windows(SimTime deadline, bool drain,
                            const std::function<bool()>* stop);

  void worker_loop(unsigned s);

  std::vector<Shard> shards_;
  SimDuration lookahead_ = kSimTimeMax;
  std::uint64_t windows_ = 0;
  std::unique_ptr<ShardStatsCollector> stats_;

  // Window barrier for the persistent worker threads (shards 1..N-1;
  // shard 0 runs on the coordinating thread). The coordinator publishes
  // {window_end_, epoch_}; workers run their shard and report done.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  SimTime window_end_ = 0;
  std::uint64_t epoch_ = 0;
  unsigned done_count_ = 0;
  bool shutdown_ = false;
};

}  // namespace lnic::sim
