// Sharded parallel simulation: per-island event shards with conservative
// synchronization.
//
// ShardedSimulator layers N independent arena engines (one Simulator per
// shard, each with its own calendar wheel) over OS threads and advances
// them in lockstep time windows:
//
//   T0   = min over shards of next_event_time()
//   end  = T0 + lookahead - 1
//   every shard runs run_until(end) concurrently, then all block on a
//   barrier; cross-shard events buffered during the window are merged and
//   scheduled; repeat.
//
// The lookahead contract: every cross-shard interaction must take at
// least `lookahead` simulated time (for the network fabric this is link
// propagation + switch forwarding latency — the minimum time a packet is
// "in flight" and owned by neither endpoint). An event posted at local
// time t therefore lands at t + lookahead > end, strictly after the
// current window, so no shard can ever receive an event in its past.
// Windows need no null messages: the barrier itself is the sync point.
//
// Adaptive sync (opt-in, EOT-style): the static window span assumes every
// shard might send cross-shard immediately, which makes windows exactly
// one lookahead long even when most shards' outbound frontiers are idle.
// With set_adaptive_sync(true), the coordinator asks each shard for its
// earliest possible cross-shard send time (EOT) before opening a window
// and sets
//
//   end = max(T0 + lookahead - 1, min_over_shards(EOT) + lookahead - 1)
//
// A send at t >= min EOT arrives at t + lookahead > end, so the extended
// window is exactly as safe as the static one; the static term keeps the
// floor so adaptive never produces a *shorter* window. EOT sources are
// registered per shard (the network fabric derives them from per-node
// locality declarations — see net::Network::set_local_only); a shard
// without a source defaults to next_event_time(), which is always sound
// and yields no extension. When every shard reports +inf the window
// extends to the run horizon. EOTs are pure functions of simulated state,
// so adaptive runs stay bit-reproducible for a fixed shard count + seed;
// a stale or lying EOT source is caught at post time and aborts.
//
// Determinism: cross-shard posts are stamped (time, global-seq) where
// global-seq packs {source shard : 16, per-source count : 48}. The merge
// at each barrier buffers per (src, dst) and sorts per destination by
// that key before scheduling; each destination's insertion order — and
// hence its (time, seq) dispatch order — is the same subsequence a global
// sort would produce, a pure function of simulation state, never of
// thread scheduling. Runs are bit-reproducible for a fixed shard count
// and seed.
//
// Single-shard mode bypasses all of this: every call delegates straight
// to the one underlying Simulator on the calling thread, so shards=1
// dispatches in the exact (time, seq) order of the classic engine and
// every deterministic bench replays byte-for-byte — adaptive mode
// included, since windows never exist.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "sim/shard_stats.h"
#include "sim/simulator.h"

namespace lnic::sim {

class ShardedSimulator {
 public:
  /// Earliest possible cross-shard send time of one shard, evaluated by
  /// the coordinator between windows. Must be a pure function of
  /// simulated state (never wall clocks or thread state) and must be
  /// conservative: the shard promises not to post cross-shard before the
  /// returned time. kSimTimeMax means "outbound frontier idle".
  using EotFn = std::function<SimTime()>;

  /// Creates `shards` independent event shards (>= 1). Worker threads are
  /// spawned only when shards > 1.
  explicit ShardedSimulator(unsigned shards = 1);
  ~ShardedSimulator();
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  unsigned shards() const { return static_cast<unsigned>(shards_.size()); }

  /// The per-shard engine. Entities pinned to shard `s` schedule their
  /// local events here; all of a node's state lives on exactly one shard.
  Simulator& shard(unsigned s) { return *shards_[s].sim; }
  const Simulator& shard(unsigned s) const { return *shards_[s].sim; }

  /// Tightens the lookahead to at most `min_delay`. Called by every
  /// cross-shard coupling (the network fabric) with its minimum
  /// interaction latency; the effective lookahead is the min over all
  /// callers. Must be positive — validate_lookahead() reports violations.
  /// Safe to call after set_adaptive_sync(): both the static floor and
  /// the EOT extension are recomputed from the current lookahead at every
  /// window, so a late, tighter constraint re-tightens adaptive windows
  /// too.
  void constrain_lookahead(SimDuration min_delay);
  SimDuration lookahead() const { return lookahead_; }

  /// Checks that the configured lookahead permits conservative parallel
  /// execution: rejects zero/negative lookahead when shards > 1 (a
  /// zero-delay cross-shard link would let one shard schedule into
  /// another shard's past).
  Status validate_lookahead() const;

  /// Enables EOT-based adaptive window extension (see file header). Call
  /// from the coordinating thread between runs, never mid-run. Off by
  /// default: static mode is byte-for-byte the PR 6 engine.
  void set_adaptive_sync(bool on) { adaptive_ = on; }
  bool adaptive_sync() const { return adaptive_; }

  /// Registers shard `s`'s EOT source. Unset shards report
  /// next_event_time(), which is sound but never extends a window.
  void set_eot_source(unsigned s, EotFn fn);

  /// Enqueues `fn` on shard `dst` at absolute time `at`, stamped with the
  /// next (time, global-seq) key from shard `src`. Must be called from
  /// code running on shard `src` (or from the coordinating thread between
  /// windows). Cross-shard posts inside a window must satisfy
  /// `at >= shard(src).now() + lookahead()`; violations abort. In
  /// adaptive mode, a post landing inside the current window additionally
  /// aborts as an EOT-contract violation (some shard promised a later
  /// send than actually happened).
  void post(unsigned src, unsigned dst, SimTime at, EventFn fn);

  /// Runs until every shard drains (cross-shard mail included). Returns
  /// total events dispatched across shards.
  std::uint64_t run();

  /// Runs all shards up to and including `deadline`; every shard's clock
  /// ends at `deadline`. Returns total events dispatched.
  std::uint64_t run_until(SimTime deadline);

  /// As run_until, but re-evaluates `stop` at every window barrier and
  /// returns early (shards aligned at the last window's end) once it
  /// turns true. Lets callers wait for a completion flag in workloads
  /// whose event queues never drain (heartbeats, periodic timers). Note
  /// that adaptive mode coarsens barrier granularity, so runs may
  /// overshoot the stop condition by up to one extended window span.
  std::uint64_t run_until(SimTime deadline, const std::function<bool()>& stop);

  /// Shard 0's clock. All shards share this value at every barrier, so
  /// between runs it is *the* simulation time.
  SimTime now() const { return shards_[0].sim->now(); }

  /// Live pending events across shards plus undelivered cross-shard mail.
  std::size_t pending() const;

  std::uint64_t events_dispatched() const;

  /// Cross-shard events posted since construction.
  std::uint64_t cross_shard_posts() const;

  /// Synchronization windows executed by multi-shard runs.
  std::uint64_t windows_executed() const { return windows_; }

  /// Windows whose end was pushed past the static floor by an EOT report.
  std::uint64_t windows_extended() const { return windows_extended_; }

  /// Barriers whose cross-shard merge was skipped outright because zero
  /// events were buffered anywhere (the no-traffic fast path).
  std::uint64_t barrier_merge_skips() const { return merge_skips_; }

  /// Wall-clock stall accounting: per-shard busy / barrier-wait, serial
  /// sync overhead, cross-shard event matrix, recent-window ring. Pure
  /// wall-clock bookkeeping — instrumentation never reads or perturbs
  /// simulated time, so runs stay byte-identical. Must be called from
  /// the coordinating thread (the thread that calls run()).
  ShardStats shard_stats() const { return stats_->snapshot(); }
  /// Collector tuning (recent-window ring capacity, barrier-outlier
  /// threshold); coordinator only.
  ShardStatsCollector& stats_collector() { return *stats_; }

 private:
  /// A cross-shard event buffered until the next barrier. gseq packs
  /// {src shard : 16, per-source sequence : 48} so the barrier merge
  /// order is thread-schedule independent. The destination is implied by
  /// which per-(src,dst) buffer holds the event.
  struct RemoteEvent {
    SimTime at;
    std::uint64_t gseq;
    EventFn fn;
  };

  struct Shard {
    std::unique_ptr<Simulator> sim;
    // Cross-shard events buffered by destination (size == shards).
    // Written only by the shard's own thread during a window (or the
    // coordinator between windows); drained single-threaded at barriers.
    // Vectors keep their capacity across windows, so steady-state
    // barriers allocate nothing.
    std::vector<std::vector<RemoteEvent>> outbox_by_dst;
    std::size_t outbox_count = 0;
    std::uint64_t next_post_seq = 0;
    std::uint64_t window_dispatched = 0;
    // Wall nanoseconds this shard spent inside run_shard this window;
    // same ownership discipline as window_dispatched.
    std::uint64_t window_busy_ns = 0;
    // Cumulative cross-shard posts by destination (size == shards).
    std::vector<std::uint64_t> posts_by_dst;
  };

  /// Moves all outbox entries into destination shards, sorted per
  /// destination by (at, gseq). Runs single-threaded (between windows).
  void flush_remote();

  /// One synchronized window [t0, end]: all shards run_until(end) in
  /// parallel. Returns events dispatched this window.
  std::uint64_t run_window(SimTime t0, SimTime end, bool eot_extended);

  /// Shared core of run()/run_until(): windows until `deadline` (or
  /// drained when `drain`), checking `stop` at barriers when non-null.
  std::uint64_t run_windows(SimTime deadline, bool drain,
                            const std::function<bool()>* stop);

  /// min over shards of their EOT report (adaptive mode; coordinator
  /// thread, between windows).
  SimTime min_eot() const;

  void worker_loop(unsigned s);

  std::vector<Shard> shards_;
  SimDuration lookahead_ = kSimTimeMax;
  bool adaptive_ = false;
  std::vector<EotFn> eot_sources_;
  std::uint64_t windows_ = 0;
  std::uint64_t windows_extended_ = 0;
  std::uint64_t merge_skips_ = 0;
  // Pooled merge scratch: reused across barriers, capacity persists.
  std::vector<RemoteEvent> merge_buf_;
  std::unique_ptr<ShardStatsCollector> stats_;

  // Window barrier for the persistent worker threads (shards 1..N-1;
  // shard 0 runs on the coordinating thread). The coordinator publishes
  // {window_end_, window_active_, epoch_}; workers run their shard and
  // report done. window_end_/window_active_ are constant for the length
  // of a window, so shard threads may read them lock-free inside one
  // (the epoch handshake orders the writes).
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  SimTime window_end_ = 0;
  bool window_active_ = false;
  std::uint64_t epoch_ = 0;
  unsigned done_count_ = 0;
  bool shutdown_ = false;
};

}  // namespace lnic::sim
