#include "sim/simulator.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace lnic::sim {

EventId Simulator::allocate_event(SimTime at) {
  assert(at >= now_);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.armed = true;
  ++live_;
  const EventId id = pack(slot, s.generation);
  push_entry(Entry{at, next_seq_++, id});
  return id;
}

void Simulator::push_entry(const Entry& e) {
  const std::uint64_t tick = tick_of(e.time);
  if (tick < tick_) {
    // The wheel can sit ahead of the clock only after a run() drained
    // the queue completely with its last entries cancelled far timers
    // (dispatching never leaves a gap: now_ catches up to tick_). The
    // structure is empty here, so re-base the wheel at this event.
    tick_ = tick;
  }
  if (tick >= tick_ + kWheelSize) {
    overflow_.push(e);
    return;
  }
  if (draining_ && tick == tick_) {
    // Scheduling into the bucket currently being drained (a zero/tiny
    // delay from inside a handler): arrivals go to the incoming run.
    // Keys are almost always appended in order; the occasional
    // out-of-order arrival is placed by ordered insert.
    if (incoming_.empty() || !entry_less(e, incoming_.back())) {
      incoming_.push_back(e);
    } else {
      incoming_.insert(
          std::upper_bound(
              incoming_.begin() +
                  static_cast<std::ptrdiff_t>(incoming_pos_),
              incoming_.end(), e, entry_less),
          e);
    }
    return;
  }
  append_to_bucket(e, tick);
}

void Simulator::append_to_bucket(const Entry& e, std::uint64_t tick) {
  const std::uint64_t idx = tick & kWheelMask;
  auto& b = buckets_[idx];
  if (b.empty()) {
    bits_[idx >> 6] |= 1ull << (idx & 63);
    mins_[idx] = MinKey{e.time, e.seq};
  } else if (e.time < mins_[idx].time) {
    // Equal times keep the resident min: sequence numbers only grow.
    mins_[idx] = MinKey{e.time, e.seq};
  }
  b.push_back(e);
}

void Simulator::advance_to(std::uint64_t tick) {
  tick_ = tick;
  while (!overflow_.empty() &&
         tick_of(overflow_.top().time) < tick_ + kWheelSize) {
    const Entry e = overflow_.top();
    overflow_.pop();
    append_to_bucket(e, tick_of(e.time));
  }
}

void Simulator::close_bucket() {
  const std::uint64_t idx = tick_ & kWheelMask;
  buckets_[idx].clear();  // keeps capacity for the next lap
  incoming_.clear();
  incoming_pos_ = 0;
  bits_[idx >> 6] &= ~(1ull << (idx & 63));
  draining_ = false;
}

bool Simulator::find_next_bucket(std::uint64_t* tick_out) const {
  constexpr std::uint64_t kWords = kWheelSize / 64;
  const std::uint64_t idx0 = tick_ & kWheelMask;
  std::uint64_t word_i = idx0 >> 6;
  std::uint64_t word = bits_[word_i] & (~0ull << (idx0 & 63));
  // One pass over the ring (first word is revisited unmasked at the end;
  // its high bits were proven empty on the masked visit).
  for (std::uint64_t scanned = 0; scanned <= kWords; ++scanned) {
    if (word != 0) {
      const std::uint64_t idx =
          (word_i << 6) + static_cast<std::uint64_t>(std::countr_zero(word));
      const std::uint64_t base = tick_ & ~kWheelMask;
      *tick_out = idx >= idx0 ? base + idx : base + kWheelSize + idx;
      return true;
    }
    word_i = (word_i + 1) & (kWords - 1);
    word = bits_[word_i];
  }
  return false;
}

Simulator::Candidate Simulator::peek() const {
  Candidate c;
  if (draining_) {
    // Entries in later buckets belong to later ticks, so the open
    // bucket's merge head (sorted bucket vs incoming run) is the wheel
    // minimum.
    const auto& b = buckets_[tick_ & kWheelMask];
    const Entry* e = drain_pos_ < b.size() ? &b[drain_pos_] : nullptr;
    if (incoming_pos_ < incoming_.size()) {
      const Entry& in = incoming_[incoming_pos_];
      if (e == nullptr || entry_less(in, *e)) e = &in;
    }
    c = Candidate{e->time, e->seq, tick_, true, true};
  } else {
    std::uint64_t tick;
    if (find_next_bucket(&tick)) {
      const MinKey& m = mins_[tick & kWheelMask];
      c = Candidate{m.time, m.seq, tick, true, true};
    }
  }
  if (!overflow_.empty()) {
    const Entry& top = overflow_.top();
    if (!c.found || top.time < c.time ||
        (top.time == c.time && top.seq < c.seq)) {
      c = Candidate{top.time, top.seq, tick_of(top.time), false, true};
    }
  }
  return c;
}

void Simulator::retire(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.armed = false;
  // Generation 0 is reserved so kInvalidEvent (= 0) never matches.
  if (++s.generation == 0) s.generation = 1;
  free_slots_.push_back(slot);
  --live_;
}

bool Simulator::cancel(EventId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (!s.armed || s.generation != generation_of(id)) return false;
  s.fn.reset();  // free the closure eagerly; the queue entry lazily skips
  retire(slot);
  return true;
}

bool Simulator::pop_and_dispatch(SimTime limit) {
  for (;;) {
    const Candidate c = peek();
    // A cancelled event may still be a bucket's recorded min; opening
    // the bucket below drains the stale entry and the loop re-peeks.
    if (!c.found || c.time > limit) return false;
    Entry e;
    if (c.in_wheel) {
      if (!draining_) {
        advance_to(c.tick);
        auto& b = buckets_[tick_ & kWheelMask];
        std::sort(b.begin(), b.end(), entry_less);
        draining_ = true;
        drain_pos_ = 0;
      }
      auto& b = buckets_[tick_ & kWheelMask];
      const bool from_incoming =
          drain_pos_ == b.size() ||
          (incoming_pos_ < incoming_.size() &&
           entry_less(incoming_[incoming_pos_], b[drain_pos_]));
      e = from_incoming ? incoming_[incoming_pos_++] : b[drain_pos_++];
      if (drain_pos_ == b.size() && incoming_pos_ == incoming_.size()) {
        close_bucket();
      }
    } else {
      // Wheel empty and the next event is past the horizon: move the
      // wheel there so the cluster around it drains through buckets.
      advance_to(c.tick);
      continue;
    }
    const std::uint32_t slot = slot_of(e.id);
    Slot& s = slots_[slot];
    if (!s.armed || s.generation != generation_of(e.id)) {
      continue;  // cancelled: stale generation
    }
    // Move the closure out and recycle the slot *before* invoking, so
    // the handler can schedule (and reuse the slot) or try to cancel
    // itself (which correctly reports false: the event already fired).
    EventFn fn = std::move(s.fn);
    s.fn.reset();
    retire(slot);
    now_ = e.time;
    ++dispatched_;
    fn();
    return true;
  }
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (pop_and_dispatch(kSimTimeMax)) ++n;
  return n;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t n = 0;
  while (pop_and_dispatch(deadline)) ++n;
  if (now_ < deadline) now_ = deadline;
  // Catch the wheel up to the clock so post-deadline schedules land in
  // buckets instead of detouring through the overflow heap. Safe: every
  // pending entry's time exceeds `deadline`, so no occupied bucket is
  // behind the new position. (If the deadline bucket is still open,
  // tick_ already equals its tick and no move is needed.)
  const std::uint64_t tick = tick_of(deadline);
  if (!draining_ && tick > tick_) advance_to(tick);
  return n;
}

bool Simulator::step() { return pop_and_dispatch(kSimTimeMax); }

}  // namespace lnic::sim
