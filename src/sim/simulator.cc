#include "sim/simulator.h"

#include <cassert>

namespace lnic::sim {

EventId Simulator::schedule(SimDuration delay, EventFn fn) {
  assert(delay >= 0);
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(SimTime at, EventFn fn) {
  assert(at >= now_);
  const EventId id = next_id_++;
  queue_.push(Event{at, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

bool Simulator::cancel(EventId id) {
  auto it = handlers_.find(id);
  if (it == handlers_.end()) return false;
  handlers_.erase(it);
  cancelled_.insert(id);
  return true;
}

bool Simulator::pop_and_dispatch(SimTime limit) {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    if (ev.time > limit) return false;
    queue_.pop();
    if (cancelled_.erase(ev.id) > 0) continue;  // skip cancelled
    auto it = handlers_.find(ev.id);
    assert(it != handlers_.end());
    EventFn fn = std::move(it->second);
    handlers_.erase(it);
    now_ = ev.time;
    ++dispatched_;
    fn();
    return true;
  }
  return false;
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (pop_and_dispatch(kSimTimeMax)) ++n;
  return n;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t n = 0;
  while (pop_and_dispatch(deadline)) ++n;
  if (now_ < deadline) now_ = deadline;
  return n;
}

bool Simulator::step() { return pop_and_dispatch(kSimTimeMax); }

}  // namespace lnic::sim
