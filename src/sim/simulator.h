// Discrete-event simulation engine.
//
// All λ-NIC experiments run on this single-threaded engine: entities
// schedule closures at absolute or relative simulated times; the engine
// dispatches them in (time, insertion-sequence) order, which makes every
// run deterministic for a fixed seed. Events may be cancelled through the
// handle returned by schedule().
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace lnic::sim {

using EventFn = std::function<void()>;

/// Opaque handle identifying a scheduled event; usable for cancellation.
using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` after now (delay >= 0).
  EventId schedule(SimDuration delay, EventFn fn);

  /// Schedules `fn` at an absolute time `at` (>= now()).
  EventId schedule_at(SimTime at, EventFn fn);

  /// Cancels a pending event. Returns false if it already ran or was
  /// cancelled before.
  bool cancel(EventId id);

  /// Runs until the queue drains. Returns the number of events dispatched.
  std::uint64_t run();

  /// Runs events with time <= deadline; leaves later events pending and
  /// advances the clock to `deadline`. Returns events dispatched.
  std::uint64_t run_until(SimTime deadline);

  /// Dispatches exactly one event if any is pending. Returns true if one ran.
  bool step();

  /// Number of live (non-cancelled) pending events.
  std::size_t pending() const { return handlers_.size(); }

  std::uint64_t events_dispatched() const { return dispatched_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    EventId id;
    // Ordering for a min-heap via std::greater.
    friend bool operator>(const Event& a, const Event& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Pops one event with time <= limit and runs it. Returns false when no
  // such event exists.
  bool pop_and_dispatch(SimTime limit);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  std::uint64_t dispatched_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  // Closures stored separately so cancel() can free them eagerly.
  std::unordered_map<EventId, EventFn> handlers_;
  std::unordered_set<EventId> cancelled_;
};

/// Repeating timer helper: reschedules itself every `period` until
/// stop()ped. Owned by the caller; must outlive pending callbacks' use.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, SimDuration period, EventFn fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {}

  void start() {
    stopped_ = false;
    arm();
  }
  void stop() {
    stopped_ = true;
    if (pending_ != kInvalidEvent) sim_.cancel(pending_);
    pending_ = kInvalidEvent;
  }
  bool running() const { return !stopped_; }

 private:
  void arm() {
    pending_ = sim_.schedule(period_, [this] {
      pending_ = kInvalidEvent;
      if (stopped_) return;
      fn_();
      if (!stopped_) arm();
    });
  }

  Simulator& sim_;
  SimDuration period_;
  EventFn fn_;
  bool stopped_ = true;
  EventId pending_ = kInvalidEvent;
};

}  // namespace lnic::sim
