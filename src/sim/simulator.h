// Discrete-event simulation engine.
//
// All λ-NIC experiments run on this single-threaded engine: entities
// schedule closures at absolute or relative simulated times; the engine
// dispatches them in (time, insertion-sequence) order, which makes every
// run deterministic for a fixed seed. Events may be cancelled through the
// handle returned by schedule().
//
// Internals are built for throughput (every simulated packet, timer and
// stage transition is one event):
//  - Callbacks live in a generation-checked slot arena. An EventId packs
//    {slot index, generation}; cancellation bumps the slot's generation
//    (O(1), no hash probe) and the stale queue entry is skipped at pop.
//    Freed slots recycle through a LIFO free list, so steady-state
//    scheduling allocates nothing.
//  - Callbacks are InlineFn (small-buffer, move-only): common closures
//    store in place instead of behind a std::function heap cell.
//  - The pending set is a calendar wheel, not a binary heap. Near-future
//    events append to one of 1024 time buckets (8.192 us apart, ~8.4 ms
//    horizon) in O(1); a bucket is sorted once when the clock reaches it
//    and then drained by index. Events beyond the horizon wait in a
//    small overflow heap and cascade into the wheel as time advances, so
//    sparse long timers never slow the per-packet path. A comparison
//    heap pays ~log(pending) branchy compares per event; the wheel pays
//    an append plus its share of one contiguous std::sort.
//  - Dispatch order is exactly the historical (time, seq) min-heap
//    order — the wheel only changes *where* events wait, never the
//    order they fire — so every bench replays byte-for-byte.
#pragma once

#include <array>
#include <cstdint>
#include <queue>
#include <vector>

#include "common/types.h"
#include "sim/inline_fn.h"

namespace lnic::sim {

/// Inline capacity covers the engine's hottest closures (packet delivery
/// captures a Packet — header plus a refcounted payload view).
using EventFn = InlineFn<128>;

/// Opaque handle identifying a scheduled event; usable for cancellation.
/// Packs {slot index : 32, slot generation : 32}; generations start at 1
/// so no live event ever encodes to 0.
using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` after now (delay >= 0). Templated so
  /// the closure is constructed directly in its arena slot instead of
  /// being relocated through an EventFn temporary.
  template <typename F>
  EventId schedule(SimDuration delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedules `fn` at an absolute time `at` (>= now()).
  template <typename F>
  EventId schedule_at(SimTime at, F&& fn) {
    const EventId id = allocate_event(at);
    slots_[slot_of(id)].fn.assign(std::forward<F>(fn));
    return id;
  }

  /// Cancels a pending event. Returns false if it already ran or was
  /// cancelled before.
  bool cancel(EventId id);

  /// Runs until the queue drains. Returns the number of events dispatched.
  std::uint64_t run();

  /// Runs events with time <= deadline; leaves later events pending and
  /// advances the clock to `deadline`. Returns events dispatched.
  std::uint64_t run_until(SimTime deadline);

  /// Dispatches exactly one event if any is pending. Returns true if one ran.
  bool step();

  /// Number of live (non-cancelled) pending events.
  std::size_t pending() const { return live_; }

  /// Earliest pending entry's time, or kSimTimeMax when the queue is
  /// empty. Conservative: a cancelled-but-unpopped entry may report an
  /// earlier time than the first live event — safe for computing a
  /// parallel window start, since run_until() discards stale entries and
  /// so always makes progress past them.
  SimTime next_event_time() const {
    const Candidate c = peek();
    return c.found ? c.time : kSimTimeMax;
  }

  std::uint64_t events_dispatched() const { return dispatched_; }

  /// Arena slots currently allocated (live + free-listed); sizing/debug.
  std::size_t arena_slots() const { return slots_.size(); }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    EventId id;
    // Ordering for the overflow min-heap via std::greater.
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  static bool entry_less(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  // Wheel geometry: 1024 buckets of 8.192 us cover an ~8.4 ms horizon —
  // wide enough for packet latencies, service times, and short timers;
  // retransmit/periodic timers beyond it sit in the overflow heap.
  static constexpr unsigned kGranularityBits = 13;
  static constexpr unsigned kWheelBits = 10;
  static constexpr std::uint64_t kWheelSize = 1ull << kWheelBits;
  static constexpr std::uint64_t kWheelMask = kWheelSize - 1;

  static std::uint64_t tick_of(SimTime t) {
    return static_cast<std::uint64_t>(t) >> kGranularityBits;
  }

  /// The earliest pending entry without mutating anything: the head of
  /// the bucket being drained, else the min of the next occupied bucket,
  /// else (wheel empty) the overflow top.
  struct Candidate {
    SimTime time = 0;
    std::uint64_t seq = 0;
    std::uint64_t tick = 0;
    bool in_wheel = false;
    bool found = false;
  };
  Candidate peek() const;
  bool find_next_bucket(std::uint64_t* tick_out) const;

  /// Reserves a slot + queue entry for time `at`; the caller fills the
  /// slot's callback. Returns the packed EventId.
  EventId allocate_event(SimTime at);

  void push_entry(const Entry& e);
  void append_to_bucket(const Entry& e, std::uint64_t tick);
  /// Moves the wheel to `tick` and cascades overflow events that are now
  /// inside the horizon into their buckets.
  void advance_to(std::uint64_t tick);
  void close_bucket();

  /// One arena cell. `generation` advances every time the slot's event
  /// is consumed (dispatched or cancelled), invalidating outstanding ids
  /// that still reference the slot.
  struct Slot {
    std::uint32_t generation = 1;
    bool armed = false;
    EventFn fn;
  };

  static EventId pack(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(slot) << 32) | generation;
  }
  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id);
  }

  /// Invalidates and recycles a slot whose event was consumed.
  void retire(std::uint32_t slot);

  // Pops one event with time <= limit and runs it. Returns false when no
  // such event exists.
  bool pop_and_dispatch(SimTime limit);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t dispatched_ = 0;
  std::size_t live_ = 0;

  // Calendar wheel. buckets_[t & mask] holds entries for absolute tick t
  // (only ticks in [tick_, tick_ + kWheelSize) are ever resident, so the
  // ring index is unambiguous). mins_ tracks each bucket's earliest
  // (time, seq) for peeking without sorting; bits_ marks occupancy.
  std::vector<std::vector<Entry>> buckets_ =
      std::vector<std::vector<Entry>>(kWheelSize);
  struct MinKey {
    SimTime time;
    std::uint64_t seq;
  };
  std::vector<MinKey> mins_ = std::vector<MinKey>(kWheelSize);
  std::array<std::uint64_t, kWheelSize / 64> bits_{};
  std::uint64_t tick_ = 0;        // wheel position (absolute tick)
  std::size_t drain_pos_ = 0;     // next entry in the open bucket
  bool draining_ = false;         // current tick's bucket is sorted+open
  // Arrivals into the tick being drained. Successive same-tick arrivals
  // almost always carry nondecreasing (time, seq) keys — the clock only
  // moves forward between dispatches — so this stays a sorted run built
  // by appends, merged with the open bucket at pop. The alternative
  // (ordered insert into the bucket's unconsumed suffix) memmoves the
  // suffix on every zero/tiny-delay schedule, which dominates tight
  // event loops.
  std::vector<Entry> incoming_;
  std::size_t incoming_pos_ = 0;
  // Events beyond the wheel horizon, cascaded in by advance_to().
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
      overflow_;

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;  // LIFO recycling
};

/// Repeating timer helper: reschedules itself every `period` until
/// stop()ped or destroyed. Owned by the caller; the destructor cancels
/// the pending callback so the simulator can never fire into a dead
/// timer (`this` is captured by the rearm closure).
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, SimDuration period, EventFn fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {}
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start() {
    stopped_ = false;
    arm();
  }
  void stop() {
    stopped_ = true;
    if (pending_ != kInvalidEvent) sim_.cancel(pending_);
    pending_ = kInvalidEvent;
  }
  bool running() const { return !stopped_; }

 private:
  void arm() {
    pending_ = sim_.schedule(period_, [this] {
      pending_ = kInvalidEvent;
      if (stopped_) return;
      fn_();
      if (!stopped_) arm();
    });
  }

  Simulator& sim_;
  SimDuration period_;
  EventFn fn_;
  bool stopped_ = true;
  EventId pending_ = kInvalidEvent;
};

}  // namespace lnic::sim
