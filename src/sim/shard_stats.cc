#include "sim/shard_stats.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/flightrec.h"

namespace lnic::sim {

ShardStatsCollector::ShardStatsCollector(unsigned shards)
    : shards_(shards == 0 ? 1 : shards),
      busy_ns_(shards_, 0),
      barrier_ns_(shards_, 0),
      events_(shards_, 0),
      cross_matrix_(static_cast<std::size_t>(shards_) * shards_, 0) {}

void ShardStatsCollector::set_outlier_threshold(double multiple) {
  if (!(multiple > 1.0)) {
    std::fprintf(stderr,
                 "ShardStatsCollector: outlier threshold must be > 1 "
                 "(got %f); 1x-mean would flag every window\n",
                 multiple);
    std::abort();
  }
  outlier_threshold_ = multiple;
}

void ShardStatsCollector::record_window(
    SimTime t0, SimTime end, SimDuration lookahead, bool eot_extended,
    std::uint64_t wall_ns, const std::vector<std::uint64_t>& busy_ns,
    const std::vector<std::uint64_t>& events) {
  // Outlier check against the mean of the windows seen so far; needs a
  // burn-in so startup jitter (cold caches, thread wake-up) doesn't page.
  if (windows_ >= 32) {
    const std::uint64_t mean = window_wall_ns_ / windows_;
    if (mean > 0 &&
        static_cast<double>(wall_ns) >
            outlier_threshold_ * static_cast<double>(mean)) {
      ++barrier_outliers_;
      flightrec::FlightRecorder::global().record(
          t0, flightrec::Kind::kBarrierOutlier, windows_, wall_ns,
          "window wall " + std::to_string(wall_ns) + " ns vs mean " +
              std::to_string(mean) + " ns");
    }
  }
  ++windows_;
  if (eot_extended) ++windows_extended_;
  window_wall_ns_ += wall_ns;
  for (unsigned s = 0; s < shards_; ++s) {
    const std::uint64_t busy = std::min(busy_ns[s], wall_ns);
    busy_ns_[s] += busy;
    barrier_ns_[s] += wall_ns - busy;
    events_[s] += events[s];
  }
  if (lookahead > 0 && lookahead != kSimTimeMax) {
    const double span = static_cast<double>(end - t0 + 1);
    // Extended windows can span far beyond the static horizon; clamp the
    // utilization contribution so the ratio stays a fraction of the
    // horizon (saturating at 1.0) while the raw span feeds the mean.
    util_span_sum_ += std::min(span, static_cast<double>(lookahead));
    horizon_sum_ += static_cast<double>(lookahead);
    span_sum_ += span;
    ++span_windows_;
  }
  ShardStats::Window record{t0, end, wall_ns, eot_extended, busy_ns};
  if (recent_.size() < recent_capacity_) {
    recent_.push_back(std::move(record));
  } else if (recent_capacity_ > 0) {
    recent_[recent_head_] = std::move(record);
    recent_head_ = (recent_head_ + 1) % recent_capacity_;
  }
}

void ShardStatsCollector::set_cross_row(
    unsigned src, const std::vector<std::uint64_t>& by_dst) {
  std::copy(by_dst.begin(), by_dst.end(),
            cross_matrix_.begin() + static_cast<std::size_t>(src) * shards_);
}

void ShardStatsCollector::add_run_wall(std::uint64_t ns) {
  total_wall_ns_ += ns;
}

void ShardStatsCollector::add_delegated_run(std::uint64_t wall_ns,
                                            std::uint64_t events) {
  total_wall_ns_ += wall_ns;
  window_wall_ns_ += wall_ns;
  busy_ns_[0] += wall_ns;
  events_[0] += events;
}

ShardStats ShardStatsCollector::snapshot() const {
  ShardStats out;
  out.shards = shards_;
  out.windows = windows_;
  out.windows_extended = windows_extended_;
  out.total_wall_ns = total_wall_ns_;
  out.window_wall_ns = window_wall_ns_;
  out.barrier_outliers = barrier_outliers_;
  out.outlier_threshold = outlier_threshold_;
  out.busy_ns = busy_ns_;
  out.barrier_ns = barrier_ns_;
  out.events = events_;
  out.cross_matrix = cross_matrix_;
  out.cross_posts.assign(shards_, 0);
  for (unsigned src = 0; src < shards_; ++src) {
    for (unsigned dst = 0; dst < shards_; ++dst) {
      out.cross_posts[src] += out.cross(src, dst);
    }
  }
  out.lookahead_utilization =
      horizon_sum_ > 0.0 ? util_span_sum_ / horizon_sum_ : 1.0;
  out.mean_window_span_ns =
      span_windows_ > 0 ? span_sum_ / static_cast<double>(span_windows_) : 0.0;
  // Unroll the ring oldest-first.
  out.recent.reserve(recent_.size());
  for (std::size_t i = 0; i < recent_.size(); ++i) {
    out.recent.push_back(
        recent_[(recent_head_ + i) % recent_.size()]);
  }
  return out;
}

std::string ShardStats::to_string() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "shard stall breakdown: %u shard(s), %llu window(s) "
                "(%llu EOT-extended), lookahead utilization %.2f, "
                "mean window span %.0f ns\n",
                shards, static_cast<unsigned long long>(windows),
                static_cast<unsigned long long>(windows_extended),
                lookahead_utilization, mean_window_span_ns);
  out += line;
  const double total_ms = static_cast<double>(total_wall_ns) / 1e6;
  const double sync_ms = static_cast<double>(sync_wall_ns()) / 1e6;
  std::snprintf(line, sizeof(line),
                "  total wall %.3f ms = windows %.3f ms + sync/merge %.3f ms "
                "(%.1f%%)\n",
                total_ms, static_cast<double>(window_wall_ns) / 1e6, sync_ms,
                total_wall_ns > 0 ? 100.0 * sync_ms / total_ms : 0.0);
  out += line;
  for (unsigned s = 0; s < shards; ++s) {
    const double busy_ms = static_cast<double>(busy_ns[s]) / 1e6;
    const double barrier_ms = static_cast<double>(barrier_ns[s]) / 1e6;
    std::snprintf(
        line, sizeof(line),
        "  shard %2u: busy %10.3f ms (%5.1f%%)  barrier %10.3f ms (%5.1f%%)  "
        "events %10llu  cross-posts %8llu\n",
        s, busy_ms, total_ms > 0 ? 100.0 * busy_ms / total_ms : 0.0,
        barrier_ms, total_ms > 0 ? 100.0 * barrier_ms / total_ms : 0.0,
        static_cast<unsigned long long>(events[s]),
        static_cast<unsigned long long>(cross_posts[s]));
    out += line;
  }
  if (shards > 1) {
    out += "  cross-shard events (src row -> dst column):\n";
    for (unsigned src = 0; src < shards; ++src) {
      std::snprintf(line, sizeof(line), "    src %2u:", src);
      out += line;
      for (unsigned dst = 0; dst < shards; ++dst) {
        std::snprintf(line, sizeof(line), " %8llu",
                      static_cast<unsigned long long>(cross(src, dst)));
        out += line;
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace lnic::sim
