// Per-shard stall accounting for the conservative parallel engine.
//
// The sharded simulator's scaling story lives or dies on *where wall
// time goes*: a shard that finishes its window early sits in the barrier
// until the slowest shard arrives, and the single-threaded merge between
// windows is pure serial overhead. This module measures exactly that,
// with wall clocks only — simulated time is never read or perturbed, so
// instrumented runs stay byte-identical.
//
// Accounting identity (per shard s, by construction):
//
//   busy[s] + barrier_wait[s] == Σ window walls        (window_wall_ns)
//   window_wall_ns + sync_wall_ns == total_wall_ns     (whole run() wall)
//
// so busy + barrier + sync always sums to the run's wall time; the
// breakdown *explains* the wall clock rather than sampling it. "Idle"
// for a conservative-barrier engine IS the barrier wait (run_until
// never sleeps mid-window), plus the shard's share of the serial sync.
//
// Adaptive windows (see sim/sharded.h) add two readings: per window,
// whether the span came from the static lookahead floor or an EOT
// extension, and the mean simulated window span. Lookahead utilization
// clamps each window's contribution to the lookahead horizon so it
// stays in (0, 1] — extended windows saturate it at 1.0 instead of
// inflating it past the scale.
//
// Threading contract: every mutator and snapshot() run on the
// coordinating thread (between windows, or during shard 0's window —
// the Monitor's scrape timer fires inside shard 0's event loop, which
// is the coordinating thread). Worker threads never touch the
// collector; the coordinator reads their per-window numbers after the
// barrier, where the window mutex provides happens-before. No atomics
// needed, and TSan agrees.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace lnic::sim {

/// Immutable snapshot of the collector, cheap to copy.
struct ShardStats {
  unsigned shards = 1;
  std::uint64_t windows = 0;
  /// Windows whose end was pushed past the static lookahead floor by an
  /// EOT report (adaptive sync; 0 in static mode).
  std::uint64_t windows_extended = 0;
  /// Wall nanoseconds inside run()/run_until() calls (all of them).
  std::uint64_t total_wall_ns = 0;
  /// Σ per-window walls (parallel region, slowest shard paces it).
  std::uint64_t window_wall_ns = 0;
  /// Serial overhead: cross-shard merge + window bookkeeping.
  std::uint64_t sync_wall_ns() const {
    return total_wall_ns > window_wall_ns ? total_wall_ns - window_wall_ns : 0;
  }

  // Per-shard accumulations (size == shards).
  std::vector<std::uint64_t> busy_ns;
  std::vector<std::uint64_t> barrier_ns;  // window wall − busy, per window
  std::vector<std::uint64_t> events;
  std::vector<std::uint64_t> cross_posts;  // posted *by* this shard

  /// Row-major [src * shards + dst] cross-shard event counts.
  std::vector<std::uint64_t> cross_matrix;
  std::uint64_t cross(unsigned src, unsigned dst) const {
    return cross_matrix[src * shards + dst];
  }

  /// Mean min(window span, lookahead) / lookahead: 1.0 means every
  /// window used at least its full static horizon; low values mean
  /// event times force short windows. Always in (0, 1] once a window
  /// ran.
  double lookahead_utilization = 0.0;

  /// Mean simulated window span in ns (extended windows included, so
  /// this can exceed the lookahead; 0 before the first window).
  double mean_window_span_ns = 0.0;

  /// Barrier-wall outliers flagged to the flight recorder, and the
  /// multiple-of-mean threshold that flags them.
  std::uint64_t barrier_outliers = 0;
  double outlier_threshold = 8.0;

  /// Recent windows (bounded ring, oldest first) for timeline export.
  struct Window {
    SimTime t0 = 0;            // simulated window start
    SimTime end = 0;           // simulated window end (inclusive)
    std::uint64_t wall_ns = 0; // coordinator wall time for the window
    bool eot_extended = false; // end set by an EOT report, not the floor
    std::vector<std::uint64_t> busy_ns;  // per shard
  };
  std::vector<Window> recent;

  /// Multi-line stall breakdown (the table perf_parallel prints).
  std::string to_string() const;
};

/// Accumulates the numbers; owned by ShardedSimulator. See the threading
/// contract above — this class is deliberately lock-free because it is
/// single-threaded by construction.
class ShardStatsCollector {
 public:
  explicit ShardStatsCollector(unsigned shards);

  /// One completed window: `busy_ns`/`events` are per-shard (size ==
  /// shards), `wall_ns` the coordinator-measured window wall. `end`
  /// must be the *effective* end (drain windows pass the drained
  /// clock, never kSimTimeMax). `eot_extended` marks windows whose end
  /// came from an EOT report rather than the static lookahead floor.
  /// Flags a flight-recorder barrier outlier when a window's wall blows
  /// past the running mean by more than the configured threshold.
  void record_window(SimTime t0, SimTime end, SimDuration lookahead,
                     bool eot_extended, std::uint64_t wall_ns,
                     const std::vector<std::uint64_t>& busy_ns,
                     const std::vector<std::uint64_t>& events);

  /// Overwrites shard `src`'s cumulative posted-to-dst row.
  void set_cross_row(unsigned src, const std::vector<std::uint64_t>& by_dst);

  /// Wall time of a whole run()/run_until() call (adds to total).
  void add_run_wall(std::uint64_t ns);

  /// Single-shard delegated run: counts as pure busy on shard 0.
  void add_delegated_run(std::uint64_t wall_ns, std::uint64_t events);

  void set_recent_capacity(std::size_t n) { recent_capacity_ = n; }

  /// Barrier-outlier sensitivity: a window is flight-recorded when its
  /// wall exceeds `multiple` times the running mean (after burn-in).
  /// Benches tighten this to catch smaller stalls; must be > 1.
  void set_outlier_threshold(double multiple);
  double outlier_threshold() const { return outlier_threshold_; }

  ShardStats snapshot() const;

 private:
  unsigned shards_;
  std::uint64_t windows_ = 0;
  std::uint64_t windows_extended_ = 0;
  std::uint64_t total_wall_ns_ = 0;
  std::uint64_t window_wall_ns_ = 0;
  std::uint64_t barrier_outliers_ = 0;
  double outlier_threshold_ = 8.0;
  std::vector<std::uint64_t> busy_ns_;
  std::vector<std::uint64_t> barrier_ns_;
  std::vector<std::uint64_t> events_;
  std::vector<std::uint64_t> cross_matrix_;
  // Lookahead-utilization accumulators (windows with finite lookahead).
  // util_span_sum_ clamps each window's span to its lookahead horizon;
  // span_sum_ keeps the full span for the mean-window-span reading.
  double util_span_sum_ = 0.0;
  double horizon_sum_ = 0.0;
  double span_sum_ = 0.0;
  std::uint64_t span_windows_ = 0;
  std::vector<ShardStats::Window> recent_;
  std::size_t recent_head_ = 0;  // ring insertion point once full
  std::size_t recent_capacity_ = 1024;
};

}  // namespace lnic::sim
