#include "raft/raft.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"

namespace lnic::raft {

const char* to_string(Role role) {
  switch (role) {
    case Role::kFollower: return "follower";
    case Role::kCandidate: return "candidate";
    case Role::kLeader: return "leader";
  }
  return "?";
}

// ---------------------------------------------------------------- transport

void SimTransport::register_node(NodeIndex index, RaftNode* node) {
  nodes_[index] = node;
}

void SimTransport::set_link(NodeIndex a, NodeIndex b, bool up) {
  link_down_[{std::min(a, b), std::max(a, b)}] = !up;
}

void SimTransport::send(NodeIndex from, NodeIndex to, Message message) {
  ++sent_;
  const auto key = std::make_pair(std::min(from, to), std::max(from, to));
  const auto it = link_down_.find(key);
  if (it != link_down_.end() && it->second) return;  // partitioned
  if (drop_ > 0.0 && rng_.next_bool(drop_)) return;
  // Jitter avoids pathological lockstep elections under identical delays.
  const SimDuration jitter =
      static_cast<SimDuration>(rng_.next_below(static_cast<std::uint64_t>(
          std::max<SimDuration>(delay_ / 4, 1))));
  sim_.schedule(delay_ + jitter, [this, to, message = std::move(message)]() {
    const auto node_it = nodes_.find(to);
    if (node_it != nodes_.end()) node_it->second->deliver(message);
  });
}

// --------------------------------------------------------------------- node

RaftNode::RaftNode(sim::Simulator& sim, Transport& transport, NodeIndex index,
                   std::uint32_t cluster_size, RaftConfig config)
    : sim_(sim),
      transport_(transport),
      index_(index),
      cluster_size_(cluster_size),
      config_(config),
      rng_(config.seed + index * 7919) {}

void RaftNode::start() {
  running_ = true;
  reset_election_timer();
}

void RaftNode::stop() {
  running_ = false;
  if (election_timer_ != sim::kInvalidEvent) sim_.cancel(election_timer_);
  if (heartbeat_timer_ != sim::kInvalidEvent) sim_.cancel(heartbeat_timer_);
  election_timer_ = sim::kInvalidEvent;
  heartbeat_timer_ = sim::kInvalidEvent;
  role_ = Role::kFollower;
}

void RaftNode::restart() {
  // Volatile state resets; persistent (term, vote, log) survives.
  commit_index_ = 0;
  last_applied_ = 0;
  next_index_.clear();
  match_index_.clear();
  votes_received_ = 0;
  start();
}

void RaftNode::reset_election_timer() {
  if (election_timer_ != sim::kInvalidEvent) sim_.cancel(election_timer_);
  const auto span = static_cast<std::uint64_t>(
      config_.election_timeout_max - config_.election_timeout_min);
  const SimDuration timeout =
      config_.election_timeout_min +
      static_cast<SimDuration>(span == 0 ? 0 : rng_.next_below(span));
  election_timer_ = sim_.schedule(timeout, [this] {
    election_timer_ = sim::kInvalidEvent;
    if (running_ && role_ != Role::kLeader) become_candidate();
  });
}

void RaftNode::become_follower(std::uint64_t term) {
  current_term_ = term;
  role_ = Role::kFollower;
  voted_for_.reset();
  if (heartbeat_timer_ != sim::kInvalidEvent) {
    sim_.cancel(heartbeat_timer_);
    heartbeat_timer_ = sim::kInvalidEvent;
  }
  reset_election_timer();
}

void RaftNode::become_candidate() {
  ++current_term_;
  role_ = Role::kCandidate;
  voted_for_ = index_;
  votes_received_ = 1;  // own vote
  reset_election_timer();
  Message m;
  m.type = MessageType::kRequestVote;
  m.from = index_;
  m.term = current_term_;
  m.last_log_index = last_log_index();
  m.last_log_term = last_log_term();
  for (NodeIndex peer = 0; peer < cluster_size_; ++peer) {
    if (peer != index_) transport_.send(index_, peer, m);
  }
  // Single-node cluster: immediate leadership.
  if (votes_received_ * 2 > cluster_size_) become_leader();
}

void RaftNode::become_leader() {
  role_ = Role::kLeader;
  LNIC_DEBUG() << "raft: node " << index_ << " leads term " << current_term_;
  for (NodeIndex peer = 0; peer < cluster_size_; ++peer) {
    if (peer == index_) continue;
    next_index_[peer] = last_log_index() + 1;
    match_index_[peer] = 0;
  }
  if (election_timer_ != sim::kInvalidEvent) {
    sim_.cancel(election_timer_);
    election_timer_ = sim::kInvalidEvent;
  }
  send_heartbeats();
}

void RaftNode::send_heartbeats() {
  if (!running_ || role_ != Role::kLeader) return;
  for (NodeIndex peer = 0; peer < cluster_size_; ++peer) {
    if (peer != index_) send_append(peer);
  }
  heartbeat_timer_ = sim_.schedule(config_.heartbeat_interval, [this] {
    heartbeat_timer_ = sim::kInvalidEvent;
    send_heartbeats();
  });
}

void RaftNode::send_append(NodeIndex peer) {
  Message m;
  m.type = MessageType::kAppendEntries;
  m.from = index_;
  m.term = current_term_;
  const std::uint64_t next = next_index_[peer];
  m.prev_log_index = next - 1;
  m.prev_log_term =
      m.prev_log_index == 0 ? 0 : log_[m.prev_log_index - 1].term;
  for (std::uint64_t i = next; i <= log_.size(); ++i) {
    m.entries.push_back(log_[i - 1]);
  }
  m.leader_commit = commit_index_;
  transport_.send(index_, peer, m);
}

Result<std::uint64_t> RaftNode::propose(Command command) {
  if (!running_ || role_ != Role::kLeader) {
    return make_error("raft: not the leader");
  }
  log_.push_back(LogEntry{current_term_, std::move(command)});
  match_index_[index_] = log_.size();
  for (NodeIndex peer = 0; peer < cluster_size_; ++peer) {
    if (peer != index_) send_append(peer);
  }
  if (cluster_size_ == 1) {
    advance_commit();
  }
  return log_.size();
}

void RaftNode::deliver(const Message& m) {
  if (!running_) return;
  if (m.term > current_term_) become_follower(m.term);
  switch (m.type) {
    case MessageType::kRequestVote: on_request_vote(m); break;
    case MessageType::kVoteReply: on_vote_reply(m); break;
    case MessageType::kAppendEntries: on_append_entries(m); break;
    case MessageType::kAppendReply: on_append_reply(m); break;
  }
}

void RaftNode::on_request_vote(const Message& m) {
  Message reply;
  reply.type = MessageType::kVoteReply;
  reply.from = index_;
  reply.term = current_term_;
  reply.vote_granted = false;
  if (m.term >= current_term_ &&
      (!voted_for_.has_value() || *voted_for_ == m.from)) {
    // Election restriction (§5.4.1 of the Raft paper): candidate's log
    // must be at least as up to date.
    const bool log_ok =
        m.last_log_term > last_log_term() ||
        (m.last_log_term == last_log_term() &&
         m.last_log_index >= last_log_index());
    if (log_ok) {
      voted_for_ = m.from;
      reply.vote_granted = true;
      reset_election_timer();
    }
  }
  transport_.send(index_, m.from, reply);
}

void RaftNode::on_vote_reply(const Message& m) {
  if (role_ != Role::kCandidate || m.term != current_term_) return;
  if (!m.vote_granted) return;
  ++votes_received_;
  if (votes_received_ * 2 > cluster_size_) become_leader();
}

void RaftNode::on_append_entries(const Message& m) {
  Message reply;
  reply.type = MessageType::kAppendReply;
  reply.from = index_;
  reply.term = current_term_;
  reply.success = false;

  if (m.term < current_term_) {
    transport_.send(index_, m.from, reply);
    return;
  }
  // Valid leader for this term.
  if (role_ != Role::kFollower) become_follower(m.term);
  reset_election_timer();

  // Log-matching check.
  if (m.prev_log_index > log_.size() ||
      (m.prev_log_index > 0 &&
       log_[m.prev_log_index - 1].term != m.prev_log_term)) {
    transport_.send(index_, m.from, reply);
    return;
  }
  // Append, truncating conflicts.
  std::uint64_t idx = m.prev_log_index;
  for (const auto& entry : m.entries) {
    ++idx;
    if (idx <= log_.size()) {
      if (log_[idx - 1].term != entry.term) {
        log_.resize(idx - 1);
        log_.push_back(entry);
      }
    } else {
      log_.push_back(entry);
    }
  }
  if (m.leader_commit > commit_index_) {
    commit_index_ = std::min<std::uint64_t>(m.leader_commit, log_.size());
    apply_committed();
  }
  reply.success = true;
  reply.match_index = m.prev_log_index + m.entries.size();
  transport_.send(index_, m.from, reply);
}

void RaftNode::on_append_reply(const Message& m) {
  if (role_ != Role::kLeader || m.term != current_term_) return;
  if (m.success) {
    match_index_[m.from] = std::max(match_index_[m.from], m.match_index);
    next_index_[m.from] = match_index_[m.from] + 1;
    advance_commit();
  } else {
    // Back off and retry.
    if (next_index_[m.from] > 1) --next_index_[m.from];
    send_append(m.from);
  }
}

void RaftNode::advance_commit() {
  // Find the highest N replicated on a majority with log[N].term == now.
  for (std::uint64_t n = log_.size(); n > commit_index_; --n) {
    if (log_[n - 1].term != current_term_) break;  // only current-term entries
    std::uint32_t count = 1;  // self
    for (const auto& [peer, match] : match_index_) {
      if (peer != index_ && match >= n) ++count;
    }
    if (count * 2 > cluster_size_) {
      commit_index_ = n;
      apply_committed();
      break;
    }
  }
}

void RaftNode::apply_committed() {
  while (last_applied_ < commit_index_) {
    ++last_applied_;
    if (apply_) apply_(last_applied_, log_[last_applied_ - 1].command);
  }
}

// ------------------------------------------------------------------ cluster

Cluster::Cluster(sim::Simulator& sim, std::uint32_t size, RaftConfig config,
                 SimDuration delay, double drop, std::uint64_t seed)
    : transport_(sim, delay, drop, seed) {
  for (NodeIndex i = 0; i < size; ++i) {
    nodes_.push_back(std::make_unique<RaftNode>(sim, transport_, i, size,
                                                config));
    transport_.register_node(i, nodes_.back().get());
  }
}

void Cluster::start() {
  for (auto& node : nodes_) node->start();
}

RaftNode* Cluster::leader() {
  RaftNode* found = nullptr;
  std::uint64_t best_term = 0;
  for (auto& node : nodes_) {
    if (node->running() && node->role() == Role::kLeader &&
        node->current_term() > best_term) {
      found = node.get();
      best_term = node->current_term();
    }
  }
  return found;
}

}  // namespace lnic::raft
