// Raft consensus (Ongaro & Ousterhout 2014), as used by etcd — the
// coordination substrate of the serverless framework (§6.1.1: "a
// Raft-based distributed key-value store, called etcd, to sync
// lambda-related states ... with the gateway").
//
// Implements leader election, log replication and commitment over an
// injectable message transport (SimTransport delivers through the
// discrete-event engine with configurable delay and loss, so safety
// properties are testable under partitions and message drops). Log
// compaction/snapshots are out of scope — framework logs are small.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace lnic::raft {

using NodeIndex = std::uint32_t;

/// A replicated state-machine command (etcd-style KV operation).
struct Command {
  enum class Op : std::uint8_t { kPut, kDelete } op = Op::kPut;
  std::string key;
  std::string value;

  friend bool operator==(const Command&, const Command&) = default;
};

struct LogEntry {
  std::uint64_t term = 0;
  Command command;
};

enum class MessageType : std::uint8_t {
  kRequestVote,
  kVoteReply,
  kAppendEntries,
  kAppendReply,
};

struct Message {
  MessageType type = MessageType::kRequestVote;
  NodeIndex from = 0;
  std::uint64_t term = 0;

  // kRequestVote
  std::uint64_t last_log_index = 0;
  std::uint64_t last_log_term = 0;
  // kVoteReply
  bool vote_granted = false;
  // kAppendEntries
  std::uint64_t prev_log_index = 0;
  std::uint64_t prev_log_term = 0;
  std::vector<LogEntry> entries;
  std::uint64_t leader_commit = 0;
  // kAppendReply
  bool success = false;
  std::uint64_t match_index = 0;
};

/// Delivers messages between nodes; implementations may drop or delay.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual void send(NodeIndex from, NodeIndex to, Message message) = 0;
};

class RaftNode;

/// Transport over the discrete-event engine with loss/delay injection.
class SimTransport : public Transport {
 public:
  SimTransport(sim::Simulator& sim, SimDuration delay = microseconds(50),
               double drop_probability = 0.0, std::uint64_t seed = 17)
      : sim_(sim), delay_(delay), drop_(drop_probability), rng_(seed) {}

  void register_node(NodeIndex index, RaftNode* node);
  void send(NodeIndex from, NodeIndex to, Message message) override;

  /// Cuts both directions between two nodes (network partition).
  void set_link(NodeIndex a, NodeIndex b, bool up);
  void set_drop_probability(double p) { drop_ = p; }
  std::uint64_t messages_sent() const { return sent_; }

 private:
  sim::Simulator& sim_;
  SimDuration delay_;
  double drop_;
  Rng rng_;
  std::map<NodeIndex, RaftNode*> nodes_;
  std::map<std::pair<NodeIndex, NodeIndex>, bool> link_down_;
  std::uint64_t sent_ = 0;
};

enum class Role : std::uint8_t { kFollower, kCandidate, kLeader };
const char* to_string(Role role);

struct RaftConfig {
  SimDuration election_timeout_min = milliseconds(150);
  SimDuration election_timeout_max = milliseconds(300);
  SimDuration heartbeat_interval = milliseconds(50);
  std::uint64_t seed = 99;
};

/// Callback invoked once per committed entry, in log order.
using ApplyFn = std::function<void(std::uint64_t index, const Command&)>;

class RaftNode {
 public:
  RaftNode(sim::Simulator& sim, Transport& transport, NodeIndex index,
           std::uint32_t cluster_size, RaftConfig config = {});

  /// Starts the election timer; call once after all nodes are registered.
  void start();
  /// Crashes the node: stops timers, ignores traffic until restart().
  void stop();
  /// Restarts after stop(): volatile state resets, persistent state
  /// (term, vote, log) survives, as Raft requires.
  void restart();

  /// Leader-only: appends a command. Returns its log index, or an error
  /// if this node is not the leader.
  Result<std::uint64_t> propose(Command command);

  void set_apply_callback(ApplyFn fn) { apply_ = std::move(fn); }

  void deliver(const Message& message);  // called by the transport

  NodeIndex index() const { return index_; }
  Role role() const { return role_; }
  std::uint64_t current_term() const { return current_term_; }
  std::uint64_t commit_index() const { return commit_index_; }
  std::uint64_t last_log_index() const { return log_.size(); }
  bool running() const { return running_; }
  const std::vector<LogEntry>& log() const { return log_; }

 private:
  void become_follower(std::uint64_t term);
  void become_candidate();
  void become_leader();
  void reset_election_timer();
  void send_heartbeats();
  void send_append(NodeIndex peer);
  void advance_commit();
  void apply_committed();
  std::uint64_t last_log_term() const {
    return log_.empty() ? 0 : log_.back().term;
  }

  void on_request_vote(const Message& m);
  void on_vote_reply(const Message& m);
  void on_append_entries(const Message& m);
  void on_append_reply(const Message& m);

  sim::Simulator& sim_;
  Transport& transport_;
  NodeIndex index_;
  std::uint32_t cluster_size_;
  RaftConfig config_;
  Rng rng_;

  // Persistent state.
  std::uint64_t current_term_ = 0;
  std::optional<NodeIndex> voted_for_;
  std::vector<LogEntry> log_;  // 1-indexed externally: log_[i-1]

  // Volatile state.
  Role role_ = Role::kFollower;
  std::uint64_t commit_index_ = 0;
  std::uint64_t last_applied_ = 0;
  std::map<NodeIndex, std::uint64_t> next_index_;
  std::map<NodeIndex, std::uint64_t> match_index_;
  std::uint32_t votes_received_ = 0;
  bool running_ = false;

  sim::EventId election_timer_ = sim::kInvalidEvent;
  sim::EventId heartbeat_timer_ = sim::kInvalidEvent;

  ApplyFn apply_;
};

/// Convenience: a cluster of nodes over one SimTransport.
class Cluster {
 public:
  Cluster(sim::Simulator& sim, std::uint32_t size, RaftConfig config = {},
          SimDuration delay = microseconds(50), double drop = 0.0,
          std::uint64_t seed = 17);

  void start();
  RaftNode& node(NodeIndex i) { return *nodes_[i]; }
  std::uint32_t size() const { return static_cast<std::uint32_t>(nodes_.size()); }
  SimTransport& transport() { return transport_; }

  /// The unique live leader, if one exists.
  RaftNode* leader();

 private:
  SimTransport transport_;
  std::vector<std::unique_ptr<RaftNode>> nodes_;
};

}  // namespace lnic::raft
