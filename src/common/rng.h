// Deterministic pseudo-random number generation.
//
// Every stochastic component (dispatchers, fault injectors, workload
// generators) takes an explicit Rng so simulations replay exactly under a
// fixed seed. The generator is xoshiro256**, seeded via SplitMix64.
#pragma once

#include <cstdint>

namespace lnic {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into four non-zero words.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Multiply-shift rejection-free mapping (Lemire); slight bias is
    // irrelevant for simulation workloads but keeps draws O(1).
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next_u64()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Exponential variate with the given mean (> 0).
  double next_exponential(double mean);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace lnic

#include <cmath>

namespace lnic {
inline double Rng::next_exponential(double mean) {
  // Avoid log(0): next_double() < 1 so 1 - u > 0.
  return -mean * std::log(1.0 - next_double());
}
}  // namespace lnic
