// Refcounted immutable payload buffers with cheap slicing.
//
// The simulated datapath used to deep-copy std::vector payloads at every
// hop: fragmentation sliced the body into per-packet vectors, RPC
// retransmission re-copied the request, and reassembly concatenated the
// fragments back into a fresh vector. A Buffer is allocated once at the
// producer (moving the producer's vector in, no byte copy) and every
// downstream stage — fragments, retransmitted packets, RDMA segments,
// reassembled bodies — carries a BufferView {buffer, offset, len} into
// the same storage. This mirrors what λ-NIC does on real hardware, where
// the payload lives in NIC memory (EMEM) and stages pass descriptors,
// not bytes (paper §5.1).
//
// Ownership rules:
//  - Buffers are immutable after construction; a view can never observe
//    a mutation. Build new contents in a std::vector and adopt it.
//  - A BufferView keeps its Buffer alive (shared_ptr); views are safe to
//    retain beyond the packet or RPC that delivered them.
//  - coalesce() reassembles fragments: views that are in-order
//    contiguous slices of one buffer merge without copying; anything
//    else falls back to one concatenating copy.
//
// Every byte physically copied through this API is counted in
// copy_stats(), and every byte handed off by reference that the old
// datapath would have copied is counted as shared — the
// bench/perf_datapath bench reports both.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <vector>

namespace lnic {

/// Global accounting of payload bytes moved through the buffer API.
/// Internally accumulated with relaxed atomics so shards sharing payload
/// views never race; reset between bench scenarios (single-threaded).
struct CopyStats {
  std::uint64_t bytes_copied = 0;  // bytes physically memcpy'd
  std::uint64_t copies = 0;        // copy operations
  std::uint64_t bytes_shared = 0;  // bytes passed by reference instead
  std::uint64_t shares = 0;        // zero-copy handoffs
};

/// A consistent-enough snapshot of the global accounting. (Buffer
/// refcounts are shared_ptr control blocks and already atomic.)
CopyStats copy_stats();
void reset_copy_stats();

/// Immutable refcounted byte array. Create via adopt() (takes ownership
/// of a vector, no byte copy) or copy_of() (counted copy).
class Buffer {
 public:
  using Ptr = std::shared_ptr<const Buffer>;

  static Ptr adopt(std::vector<std::uint8_t> bytes);
  static Ptr copy_of(const std::uint8_t* data, std::size_t size);

  const std::uint8_t* data() const { return bytes_.data(); }
  std::size_t size() const { return bytes_.size(); }

 private:
  struct AdoptTag {};

 public:
  // Constructible only through adopt()/copy_of() (the tag is private).
  Buffer(AdoptTag, std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

 private:
  std::vector<std::uint8_t> bytes_;
};

/// A borrowed [offset, offset+len) window of a Buffer. Cheap to copy
/// (one shared_ptr bump); provides the read-only surface of a
/// std::vector<std::uint8_t> so packet consumers index and iterate
/// payloads exactly as before.
class BufferView {
 public:
  using value_type = std::uint8_t;
  using const_iterator = const std::uint8_t*;
  using const_reverse_iterator = std::reverse_iterator<const_iterator>;

  BufferView() = default;
  BufferView(std::nullptr_t) {}

  /// Adopts the vector's storage: no byte copy.
  BufferView(std::vector<std::uint8_t>&& bytes);
  /// Copies (counted in copy_stats) — prefer moving the vector in.
  BufferView(const std::vector<std::uint8_t>& bytes);
  BufferView(std::initializer_list<std::uint8_t> bytes);
  BufferView(Buffer::Ptr buffer, std::size_t offset, std::size_t len);

  const std::uint8_t* data() const {
    return buffer_ ? buffer_->data() + offset_ : nullptr;
  }
  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  std::uint8_t operator[](std::size_t i) const { return data()[i]; }
  std::uint8_t front() const { return data()[0]; }
  std::uint8_t back() const { return data()[len_ - 1]; }

  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + len_; }
  const_reverse_iterator rbegin() const {
    return const_reverse_iterator(end());
  }
  const_reverse_iterator rend() const {
    return const_reverse_iterator(begin());
  }

  /// Sub-window sharing the same storage (counted as a zero-copy share).
  BufferView slice(std::size_t offset, std::size_t len) const;

  /// Materializes the bytes (counted copy).
  std::vector<std::uint8_t> to_vector() const;

  const Buffer::Ptr& buffer() const { return buffer_; }
  std::size_t offset() const { return offset_; }

  friend bool operator==(const BufferView& a, const BufferView& b);

 private:
  Buffer::Ptr buffer_;
  std::size_t offset_ = 0;
  std::size_t len_ = 0;
};

bool operator==(const BufferView& a, const std::vector<std::uint8_t>& b);

/// Reassembles fragments into one body. When the views are in-order
/// contiguous slices of a single buffer — the common case, since
/// fragment() slices one buffer — the result is a spanning view of that
/// buffer and no bytes move. Otherwise falls back to one concatenation.
BufferView coalesce(const std::vector<BufferView>& frags);

}  // namespace lnic
