// Minimal Result<T> / Status types (gcc 12 lacks std::expected).
//
// Used for all fallible public APIs in place of exceptions, per the
// project's error-handling policy: constructors establish invariants and
// may assert, but cross-module calls report failure through Result.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace lnic {

/// Error carrying a human-readable message.
struct Error {
  std::string message;
};

inline Error make_error(std::string msg) { return Error{std::move(msg)}; }

/// Either a value of type T or an Error. Monostate-free, always engaged.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(implicit)
  Result(Error error) : data_(std::move(error)) {}      // NOLINT(implicit)

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

  /// Returns the contained value or `fallback` when this is an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// A Result with no payload.
class Status {
 public:
  Status() = default;                                    // success
  Status(Error error) : error_(std::move(error)) {}      // NOLINT(implicit)

  static Status ok_status() { return Status{}; }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }
  const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

}  // namespace lnic
