#include "common/buffer.h"

#include <atomic>
#include <cstring>

namespace lnic {

namespace {
// Relaxed atomics: counters are monotone tallies with no ordering
// relationship to any other state, and the hot path must stay one
// uncontended add per operation.
struct AtomicCopyStats {
  std::atomic<std::uint64_t> bytes_copied{0};
  std::atomic<std::uint64_t> copies{0};
  std::atomic<std::uint64_t> bytes_shared{0};
  std::atomic<std::uint64_t> shares{0};
};
AtomicCopyStats g_copy_stats;

void count_copy(std::size_t bytes) {
  g_copy_stats.bytes_copied.fetch_add(bytes, std::memory_order_relaxed);
  g_copy_stats.copies.fetch_add(1, std::memory_order_relaxed);
}

void count_share(std::size_t bytes) {
  g_copy_stats.bytes_shared.fetch_add(bytes, std::memory_order_relaxed);
  g_copy_stats.shares.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

CopyStats copy_stats() {
  CopyStats s;
  s.bytes_copied = g_copy_stats.bytes_copied.load(std::memory_order_relaxed);
  s.copies = g_copy_stats.copies.load(std::memory_order_relaxed);
  s.bytes_shared = g_copy_stats.bytes_shared.load(std::memory_order_relaxed);
  s.shares = g_copy_stats.shares.load(std::memory_order_relaxed);
  return s;
}

void reset_copy_stats() {
  g_copy_stats.bytes_copied.store(0, std::memory_order_relaxed);
  g_copy_stats.copies.store(0, std::memory_order_relaxed);
  g_copy_stats.bytes_shared.store(0, std::memory_order_relaxed);
  g_copy_stats.shares.store(0, std::memory_order_relaxed);
}

Buffer::Ptr Buffer::adopt(std::vector<std::uint8_t> bytes) {
  return std::make_shared<const Buffer>(AdoptTag{}, std::move(bytes));
}

Buffer::Ptr Buffer::copy_of(const std::uint8_t* data, std::size_t size) {
  count_copy(size);
  return adopt(std::vector<std::uint8_t>(data, data + size));
}

BufferView::BufferView(std::vector<std::uint8_t>&& bytes)
    : buffer_(Buffer::adopt(std::move(bytes))) {
  len_ = buffer_->size();
}

BufferView::BufferView(const std::vector<std::uint8_t>& bytes)
    : buffer_(Buffer::copy_of(bytes.data(), bytes.size())),
      len_(bytes.size()) {}

BufferView::BufferView(std::initializer_list<std::uint8_t> bytes)
    : BufferView(std::vector<std::uint8_t>(bytes)) {}

BufferView::BufferView(Buffer::Ptr buffer, std::size_t offset, std::size_t len)
    : buffer_(std::move(buffer)), offset_(offset), len_(len) {}

BufferView BufferView::slice(std::size_t offset, std::size_t len) const {
  count_share(len);
  return BufferView(buffer_, offset_ + offset, len);
}

std::vector<std::uint8_t> BufferView::to_vector() const {
  count_copy(len_);
  return std::vector<std::uint8_t>(begin(), end());
}

bool operator==(const BufferView& a, const BufferView& b) {
  if (a.size() != b.size()) return false;
  if (a.size() == 0) return true;
  return std::memcmp(a.data(), b.data(), a.size()) == 0;
}

bool operator==(const BufferView& a, const std::vector<std::uint8_t>& b) {
  if (a.size() != b.size()) return false;
  if (a.size() == 0) return true;
  return std::memcmp(a.data(), b.data(), a.size()) == 0;
}

BufferView coalesce(const std::vector<BufferView>& frags) {
  if (frags.empty()) return BufferView{};
  if (frags.size() == 1) {
    count_share(frags[0].size());
    return frags[0];
  }
  std::size_t total = 0;
  bool contiguous = true;
  const Buffer::Ptr& base = frags[0].buffer();
  std::size_t next_offset = frags[0].offset();
  for (const BufferView& f : frags) {
    total += f.size();
    if (f.buffer() != base || f.offset() != next_offset) contiguous = false;
    next_offset = f.offset() + f.size();
  }
  if (contiguous && base != nullptr) {
    count_share(total);
    return BufferView(base, frags[0].offset(), total);
  }
  // Fragments from different buffers (e.g. hand-built test packets):
  // one concatenating copy, exactly what the old datapath always did.
  std::vector<std::uint8_t> merged;
  merged.reserve(total);
  for (const BufferView& f : frags) {
    merged.insert(merged.end(), f.begin(), f.end());
  }
  count_copy(total);
  return BufferView(std::move(merged));
}

}  // namespace lnic
