// Latency/throughput statistics used by every experiment harness.
//
// Sampler keeps raw samples (simulated latencies are cheap, counts are
// bounded by the experiment) so exact percentiles and ECDF curves can be
// reported, matching how the paper plots Figures 6 and 8.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace lnic {

/// Collects raw scalar samples and answers distribution queries.
class Sampler {
 public:
  void add(double v);
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Exact percentile by nearest-rank; p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double p99() const { return percentile(99.0); }

  /// Empirical CDF evaluated at the sample points: sorted (value, F(value))
  /// pairs, suitable for plotting. F is right-continuous, ends at 1.
  std::vector<std::pair<double, double>> ecdf() const;

  const std::vector<double>& samples() const { return samples_; }

  /// Appends all of `other`'s samples — merging shard-local samplers on
  /// scrape. Percentiles over the merged set are exact (raw samples).
  void merge_from(const Sampler& other);

 private:
  void ensure_sorted() const;
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Simple monotonically increasing counter with a name (Prometheus-style).
/// Increments are relaxed atomics so shards may bump a shared counter
/// without racing; copy/move take a snapshot (containers rearranging
/// counters are single-threaded operations).
class Counter {
 public:
  explicit Counter(std::string name = {}) : name_(std::move(name)) {}
  Counter(const Counter& other)
      : name_(other.name_), value_(other.value()) {}
  Counter& operator=(const Counter& other) {
    name_ = other.name_;
    value_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }
  void increment(std::uint64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

/// Prometheus-style bucketed histogram: cumulative counts per upper
/// bound (an implicit +Inf bucket catches everything), plus sum and
/// count — the fixed-memory companion to Sampler for metrics that must
/// render as `_bucket`/`_sum`/`_count` series.
class Histogram {
 public:
  /// `bounds` are inclusive upper bounds, strictly ascending.
  explicit Histogram(std::vector<double> bounds = default_latency_bounds());

  void observe(double v);
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size() == bounds().size() + 1,
  /// the last entry being the +Inf bucket.
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }
  /// Cumulative count of observations <= bounds()[i].
  std::uint64_t cumulative(std::size_t i) const;

  /// Bucket-interpolated percentile estimate, p in [0, 100].
  double percentile(double p) const;

  /// Exponential nanosecond-latency buckets, 1 us .. ~8.6 s.
  static std::vector<double> default_latency_bounds();

  /// Adds `other`'s observations bucket-by-bucket. Returns false (and
  /// changes nothing) when the bucket bounds differ.
  bool merge_from(const Histogram& other);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Tracks a busy/idle duty cycle, e.g. CPU core utilization.
class UtilizationTracker {
 public:
  /// Records that the resource was busy for `busy` within a window.
  void add_busy(SimDuration busy) { busy_ += busy; }
  /// Fraction busy over the window [0, now].
  double utilization(SimDuration window) const {
    if (window <= 0) return 0.0;
    return static_cast<double>(busy_) / static_cast<double>(window);
  }
  SimDuration busy_time() const { return busy_; }

 private:
  SimDuration busy_ = 0;
};

}  // namespace lnic
