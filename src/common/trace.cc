#include "common/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace lnic::trace {

SimDuration CriticalPath::component(const std::string& name) const {
  for (const auto& [component, duration] : components) {
    if (component == name) return duration;
  }
  return 0;
}

std::string span_component(const Span& span) {
  const auto has_suffix = [&span](const char* suffix) {
    const std::string_view name = span.name;
    const std::string_view want = suffix;
    return name.size() >= want.size() &&
           name.substr(name.size() - want.size()) == want;
  };
  if (has_suffix(".queue") || has_suffix(".reassemble")) return "queue";
  if (has_suffix(".proxy")) return "proxy";
  if (span.name == "rpc.attempt") {
    for (const auto& [key, value] : span.annotations) {
      if (key == "timeout" && value == "true") return "retransmit";
    }
    return "transport";
  }
  if (span.name == "rpc.call") return "transport";
  if (has_suffix(".execute") || has_suffix(".parse") ||
      has_suffix(".kernel") || has_suffix(".runtime") ||
      has_suffix(".kv_wait")) {
    return "execute";
  }
  return "other";
}

SpanId TraceRecorder::start_span(TraceId trace, SpanId parent,
                                 std::string name, SimTime now) {
  if (trace == kInvalidTrace) return kInvalidSpan;
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return kInvalidSpan;
  }
  Span span;
  span.trace = trace;
  span.id = next_span_++;
  span.parent = parent;
  span.name = std::move(name);
  span.start = now;
  span.end = now;
  span.open = true;
  index_[span.id] = spans_.size();
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void TraceRecorder::end_span(SpanId span, SimTime now) {
  Span* s = find(span);
  if (s == nullptr) return;
  s->end = now;
  s->open = false;
}

void TraceRecorder::annotate(SpanId span, const std::string& key,
                             std::string value) {
  Span* s = find(span);
  if (s == nullptr) return;
  s->annotations.emplace_back(key, std::move(value));
}

void TraceRecorder::clear() {
  spans_.clear();
  index_.clear();
  dropped_ = 0;
}

const Span* TraceRecorder::find(SpanId span) const {
  const auto it = index_.find(span);
  return it == index_.end() ? nullptr : &spans_[it->second];
}

Span* TraceRecorder::find(SpanId span) {
  const auto it = index_.find(span);
  return it == index_.end() ? nullptr : &spans_[it->second];
}

std::vector<Span> TraceRecorder::trace_spans(TraceId trace) const {
  std::vector<Span> out;
  for (const auto& span : spans_) {
    if (span.trace == trace) out.push_back(span);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Span& a, const Span& b) {
                     if (a.start != b.start) return a.start < b.start;
                     return a.id < b.id;
                   });
  return out;
}

std::vector<TraceId> TraceRecorder::trace_ids() const {
  std::vector<TraceId> out;
  for (const auto& span : spans_) {
    if (std::find(out.begin(), out.end(), span.trace) == out.end()) {
      out.push_back(span.trace);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Track id for the Chrome view: one row per component location, so a
/// request reads top-down as gateway -> transport -> worker.
int track_of(const std::string& name) {
  const auto prefix = name.substr(0, name.find('.'));
  if (prefix == "request" || prefix == "gateway") return 1;
  if (prefix == "rpc") return 2;
  if (prefix == "nic") return 3;
  if (prefix == "host") return 4;
  return 5;
}

}  // namespace

std::string TraceRecorder::to_chrome_json() const {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  append_chrome_events(out, first);
  out << "]}";
  return out.str();
}

void TraceRecorder::append_chrome_events(std::ostream& out,
                                         bool& first) const {
  for (const auto& span : spans_) {
    if (!first) out << ",";
    first = false;
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                  "\"pid\":%" PRIu64 ",\"tid\":%d,\"args\":{",
                  json_escape(span.name).c_str(), to_us(span.start),
                  to_us(span.end - span.start), span.trace,
                  track_of(span.name));
    out << buf;
    out << "\"span_id\":\"" << span.id << "\",\"parent\":\"" << span.parent
        << "\"";
    if (span.open) out << ",\"open\":\"true\"";
    for (const auto& [key, value] : span.annotations) {
      out << ",\"" << json_escape(key) << "\":\"" << json_escape(value)
          << "\"";
    }
    out << "}}";
  }
}

CriticalPath TraceRecorder::critical_path(TraceId trace) const {
  CriticalPath path;
  const std::vector<Span> spans = trace_spans(trace);
  if (spans.empty()) return path;

  // Root: the span whose parent is not part of this trace.
  std::map<SpanId, std::size_t> by_id;
  for (std::size_t i = 0; i < spans.size(); ++i) by_id[spans[i].id] = i;
  std::size_t root = 0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (by_id.find(spans[i].parent) == by_id.end()) {
      root = i;
      break;
    }
  }
  const SimTime lo = spans[root].start;
  const SimTime hi = spans[root].end;
  path.total = hi - lo;
  if (path.total <= 0) return path;

  // Depth of each span (root = 0), following parent links.
  std::vector<int> depth(spans.size(), 0);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    int d = 0;
    SpanId cursor = spans[i].parent;
    while (d < 64) {
      const auto it = by_id.find(cursor);
      if (it == by_id.end()) break;
      ++d;
      cursor = spans[it->second].parent;
    }
    depth[i] = d;
  }

  // Sweep the root interval: each elementary segment is attributed to
  // the deepest span covering it (ties: latest start, then highest id),
  // so the per-component sums add up to the root duration exactly.
  std::vector<SimTime> cuts;
  cuts.push_back(lo);
  cuts.push_back(hi);
  for (const auto& span : spans) {
    if (span.start > lo && span.start < hi) cuts.push_back(span.start);
    if (span.end > lo && span.end < hi) cuts.push_back(span.end);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::map<std::string, SimDuration> sums;
  for (std::size_t c = 0; c + 1 < cuts.size(); ++c) {
    const SimTime t0 = cuts[c];
    const SimTime t1 = cuts[c + 1];
    std::size_t best = root;
    for (std::size_t i = 0; i < spans.size(); ++i) {
      if (spans[i].start > t0 || spans[i].end < t1) continue;
      if (depth[i] > depth[best] ||
          (depth[i] == depth[best] &&
           (spans[i].start > spans[best].start ||
            (spans[i].start == spans[best].start &&
             spans[i].id > spans[best].id)))) {
        best = i;
      }
    }
    sums[span_component(spans[best])] += t1 - t0;
  }
  path.components.assign(sums.begin(), sums.end());
  return path;
}

std::string TraceRecorder::critical_path_summary(TraceId trace) const {
  const CriticalPath path = critical_path(trace);
  std::ostringstream out;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "trace %llu: %.3f us end to end\n",
                static_cast<unsigned long long>(trace), to_us(path.total));
  out << buf;
  for (const auto& [component, duration] : path.components) {
    std::snprintf(buf, sizeof(buf), "  %-10s %10.3f us  %5.1f%%\n",
                  component.c_str(), to_us(duration),
                  path.total > 0
                      ? 100.0 * static_cast<double>(duration) /
                            static_cast<double>(path.total)
                      : 0.0);
    out << buf;
  }
  return out.str();
}

}  // namespace lnic::trace
