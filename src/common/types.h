// Fundamental value types shared by every λ-NIC module.
//
// All simulated time is kept in integral nanoseconds (SimTime/SimDuration)
// so that event ordering is exact and runs are bit-reproducible across
// platforms; helpers convert to/from human units.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace lnic {

/// Absolute simulated time in nanoseconds since simulation start.
using SimTime = std::int64_t;
/// A span of simulated time in nanoseconds.
using SimDuration = std::int64_t;

constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

constexpr SimDuration nanoseconds(std::int64_t n) { return n; }
constexpr SimDuration microseconds(std::int64_t u) { return u * 1000; }
constexpr SimDuration milliseconds(std::int64_t m) { return m * 1'000'000; }
constexpr SimDuration seconds(std::int64_t s) { return s * 1'000'000'000; }

/// Converts a simulated duration to fractional milliseconds (for reports).
constexpr double to_ms(SimDuration d) { return static_cast<double>(d) / 1e6; }
/// Converts a simulated duration to fractional microseconds.
constexpr double to_us(SimDuration d) { return static_cast<double>(d) / 1e3; }
/// Converts a simulated duration to fractional seconds.
constexpr double to_sec(SimDuration d) { return static_cast<double>(d) / 1e9; }

/// Identifies an attachment point (server, NIC, switch port) on the
/// simulated network. Dense small integers; assigned by net::Network.
using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

/// Identifies a deployed lambda workload. Carried in the lambda header of
/// every request packet; assigned by the workload manager at compile time
/// (paper §4.1, "Expressing match").
using WorkloadId = std::uint32_t;
constexpr WorkloadId kInvalidWorkload = 0xFFFFFFFFu;

/// Identifies a tenant sharing the NPU grid (SuperNIC-style multi-tenant
/// SmartNIC sharing). Tenant 0 is the implicit single-tenant default:
/// legacy deployments never mention tenants and behave exactly as before.
using TenantId = std::uint32_t;
constexpr TenantId kDefaultTenant = 0;

/// Monotonically increasing request identifier, unique per gateway.
using RequestId = std::uint64_t;

/// Bytes, used for artifact/memory sizes.
using Bytes = std::uint64_t;

constexpr Bytes operator""_KiB(unsigned long long v) { return v * 1024ull; }
constexpr Bytes operator""_MiB(unsigned long long v) {
  return v * 1024ull * 1024ull;
}

inline double to_mib(Bytes b) { return static_cast<double>(b) / (1024.0 * 1024.0); }

}  // namespace lnic
