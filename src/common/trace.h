// Request-scoped distributed tracing (the observability kernel behind
// §7's latency breakdowns: parse, match, lambda run, DMA, wire).
//
// A TraceRecorder collects spans — named intervals in simulated time
// with a trace id, a span id, a parent span, and key/value annotations.
// Trace ids are allocated at the gateway, carried in the lambda header
// of every packet (net::LambdaHeader::trace_id/parent_span), and
// propagated through retransmissions, fragmentation/reassembly,
// dispatch queueing, NPU-thread execution (nicsim) and host-backend
// execution (hostsim), so one request yields one connected span tree
// including every retry.
//
// Recording is pure bookkeeping outside simulated time: attaching or
// detaching a recorder never changes event order, RNG draws, or any
// simulated timestamp, so benches replay bit-identically with tracing
// on or off. Components hold a `TraceRecorder*` that defaults to
// nullptr (tracing off); sampling is decided where the trace id is
// allocated (the gateway).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace lnic::trace {

using TraceId = std::uint64_t;
using SpanId = std::uint64_t;
constexpr TraceId kInvalidTrace = 0;
constexpr SpanId kInvalidSpan = 0;

/// The trace context carried across component boundaries (and on the
/// wire in the lambda header): which trace, and which span to parent
/// newly created spans under.
struct SpanContext {
  TraceId trace = kInvalidTrace;
  SpanId parent = kInvalidSpan;

  bool valid() const { return trace != kInvalidTrace; }
};

struct Span {
  TraceId trace = kInvalidTrace;
  SpanId id = kInvalidSpan;
  SpanId parent = kInvalidSpan;
  std::string name;
  SimTime start = 0;
  SimTime end = 0;  // == start while the span is still open
  bool open = false;
  std::vector<std::pair<std::string, std::string>> annotations;
};

/// Critical-path decomposition of one trace: the root span's duration
/// split into named components (queue / proxy / transport / execute /
/// retransmit / other). Components always sum exactly to `total`: every
/// instant of the root interval is attributed to the deepest span
/// covering it.
struct CriticalPath {
  SimDuration total = 0;
  std::vector<std::pair<std::string, SimDuration>> components;

  SimDuration component(const std::string& name) const;
};

/// Maps a span to its critical-path component from its name prefix
/// ("gateway.queue" -> "queue", "nic.execute" -> "execute", ...).
/// Timed-out rpc attempts count as "retransmit".
std::string span_component(const Span& span);

class TraceRecorder {
 public:
  /// Caps memory for long runs: once `max_spans` spans are held, new
  /// start_span calls are dropped (and counted).
  explicit TraceRecorder(std::size_t max_spans = 1 << 20)
      : max_spans_(max_spans) {}

  /// Allocates a fresh trace id (deterministic counter).
  TraceId new_trace() { return next_trace_++; }

  /// Opens a span; returns its id (kInvalidSpan if dropped by the cap).
  SpanId start_span(TraceId trace, SpanId parent, std::string name,
                    SimTime now);
  /// Closes a span. Closing kInvalidSpan or an unknown id is a no-op.
  void end_span(SpanId span, SimTime now);
  void annotate(SpanId span, const std::string& key, std::string value);

  bool empty() const { return spans_.empty(); }
  std::size_t size() const { return spans_.size(); }
  std::uint64_t dropped() const { return dropped_; }
  void clear();

  const std::vector<Span>& spans() const { return spans_; }
  /// The spans of one trace, in start order.
  std::vector<Span> trace_spans(TraceId trace) const;
  /// Every trace id with at least one span, ascending.
  std::vector<TraceId> trace_ids() const;

  /// Chrome/Perfetto trace_event JSON ({"traceEvents":[...]}; complete
  /// "X" events, ts/dur in fractional microseconds, one pid per trace,
  /// one tid per component track). Open spans export with zero
  /// duration and an "open":"true" arg.
  std::string to_chrome_json() const;

  /// Appends this recorder's spans as the bare trace_event objects that
  /// to_chrome_json wraps — lets a merged timeline share one
  /// `traceEvents` array with other event sources. `first` tracks comma
  /// placement across appends.
  void append_chrome_events(std::ostream& out, bool& first) const;

  /// Exact decomposition of `trace`'s root span (see CriticalPath).
  CriticalPath critical_path(TraceId trace) const;
  /// Human-readable critical-path table for one trace.
  std::string critical_path_summary(TraceId trace) const;

 private:
  const Span* find(SpanId span) const;
  Span* find(SpanId span);

  std::size_t max_spans_;
  TraceId next_trace_ = 1;
  SpanId next_span_ = 1;
  std::vector<Span> spans_;
  std::map<SpanId, std::size_t> index_;  // span id -> spans_ position
  std::uint64_t dropped_ = 0;
};

}  // namespace lnic::trace
