// Tiny leveled logger. Off by default above kWarn so simulations stay
// quiet; benches/examples raise the level explicitly when narrating.
#pragma once

#include <sstream>
#include <string>

namespace lnic {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr if `level` >= the global level.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogMessage {
 public:
  LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace lnic

#define LNIC_LOG(level) ::lnic::detail::LogMessage(::lnic::LogLevel::level)
#define LNIC_DEBUG() LNIC_LOG(kDebug)
#define LNIC_INFO() LNIC_LOG(kInfo)
#define LNIC_WARN() LNIC_LOG(kWarn)
#define LNIC_ERROR() LNIC_LOG(kError)
