#include "common/flightrec.h"

#include <cstdio>

namespace lnic::flightrec {

const char* to_string(Kind kind) {
  switch (kind) {
    case Kind::kGatewayShed: return "gateway-shed";
    case Kind::kGatewayQuarantine: return "gateway-quarantine";
    case Kind::kQueueDrop: return "queue-drop";
    case Kind::kUndeployDrop: return "undeploy-drop";
    case Kind::kQuotaReject: return "quota-reject";
    case Kind::kRtoBackoff: return "rto-backoff";
    case Kind::kBarrierOutlier: return "barrier-outlier";
    case Kind::kTxnRetryExhausted: return "txn-retry-exhausted";
    case Kind::kOther: return "other";
  }
  return "other";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::record(SimTime time, Kind kind, std::uint64_t a,
                            std::uint64_t b, std::string detail) {
  std::lock_guard<std::mutex> lk(mu_);
  ++recorded_;
  if (ring_.size() == capacity_) ring_.pop_front();
  ring_.push_back(Event{time, kind, a, b, std::move(detail)});
}

std::vector<Event> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return std::vector<Event>(ring_.begin(), ring_.end());
}

std::uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lk(mu_);
  return recorded_;
}

std::uint64_t FlightRecorder::evicted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return recorded_ - ring_.size();
}

std::size_t FlightRecorder::capacity() const {
  std::lock_guard<std::mutex> lk(mu_);
  return capacity_;
}

void FlightRecorder::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lk(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  while (ring_.size() > capacity_) ring_.pop_front();
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  ring_.clear();
  recorded_ = 0;
}

std::string FlightRecorder::dump() const {
  std::vector<Event> events = snapshot();
  const std::uint64_t total = recorded();
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "flight recorder: %llu event(s) recorded, last %zu retained\n",
                static_cast<unsigned long long>(total), events.size());
  out += line;
  if (events.empty()) {
    out += "  (empty: no anomalies recorded)\n";
    return out;
  }
  for (const Event& e : events) {
    std::snprintf(line, sizeof(line),
                  "  t=%12.3f ms  %-18s a=%llu b=%llu  %s\n", to_ms(e.time),
                  to_string(e.kind), static_cast<unsigned long long>(e.a),
                  static_cast<unsigned long long>(e.b), e.detail.c_str());
    out += line;
  }
  return out;
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

}  // namespace lnic::flightrec
