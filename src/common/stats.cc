#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lnic {

void Sampler::add(double v) {
  samples_.push_back(v);
  sorted_valid_ = false;
}

void Sampler::merge_from(const Sampler& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_valid_ = false;
}

void Sampler::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Sampler::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double Sampler::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Sampler::min() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double Sampler::max() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double Sampler::percentile(double p) const {
  assert(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  if (sorted_.empty()) return 0.0;
  // Nearest-rank: smallest value with at least ceil(p/100 * N) samples <= it.
  const auto n = sorted_.size();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return sorted_[rank - 1];
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
}

bool Histogram::merge_from(const Histogram& other) {
  if (bounds_ != other.bounds_) return false;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    buckets_[b] += other.buckets_[b];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  return true;
}

std::uint64_t Histogram::cumulative(std::size_t i) const {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= i && b < buckets_.size(); ++b) {
    total += buckets_[b];
  }
  return total;
}

double Histogram::percentile(double p) const {
  assert(p >= 0.0 && p <= 100.0);
  if (count_ == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    const std::uint64_t next = seen + buckets_[b];
    if (static_cast<double>(next) >= target) {
      // Linear interpolation inside the bucket.
      const double lo = b == 0 ? 0.0 : bounds_[b - 1];
      const double hi = b < bounds_.size() ? bounds_[b] : lo;
      const double frac =
          (target - static_cast<double>(seen)) /
          static_cast<double>(buckets_[b]);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
    seen = next;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<double> Histogram::default_latency_bounds() {
  // 1 us doubling to ~8.6 s, in nanoseconds: 24 buckets (+Inf implicit).
  std::vector<double> bounds;
  double b = 1e3;
  for (int i = 0; i < 24; ++i) {
    bounds.push_back(b);
    b *= 2.0;
  }
  return bounds;
}

std::vector<std::pair<double, double>> Sampler::ecdf() const {
  ensure_sorted();
  std::vector<std::pair<double, double>> out;
  const auto n = sorted_.size();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Collapse duplicate x values to the highest F.
    if (!out.empty() && out.back().first == sorted_[i]) {
      out.back().second =
          static_cast<double>(i + 1) / static_cast<double>(n);
    } else {
      out.emplace_back(sorted_[i],
                       static_cast<double>(i + 1) / static_cast<double>(n));
    }
  }
  return out;
}

}  // namespace lnic
