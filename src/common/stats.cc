#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lnic {

void Sampler::add(double v) {
  samples_.push_back(v);
  sorted_valid_ = false;
}

void Sampler::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Sampler::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double Sampler::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Sampler::min() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double Sampler::max() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double Sampler::percentile(double p) const {
  assert(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  if (sorted_.empty()) return 0.0;
  // Nearest-rank: smallest value with at least ceil(p/100 * N) samples <= it.
  const auto n = sorted_.size();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return sorted_[rank - 1];
}

std::vector<std::pair<double, double>> Sampler::ecdf() const {
  ensure_sorted();
  std::vector<std::pair<double, double>> out;
  const auto n = sorted_.size();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Collapse duplicate x values to the highest F.
    if (!out.empty() && out.back().first == sorted_[i]) {
      out.back().second =
          static_cast<double>(i + 1) / static_cast<double>(n);
    } else {
      out.emplace_back(sorted_[i],
                       static_cast<double>(i + 1) / static_cast<double>(n));
    }
  }
  return out;
}

}  // namespace lnic
