// Q16.16 fixed-point arithmetic.
//
// NPU cores have no floating-point unit (paper §3.1b): the workload
// manager must transform float programs to fixed point. The image
// transformer's luma weights use this type, and the microc IR exposes only
// integer/fixed-point ALU ops.
#pragma once

#include <cstdint>

namespace lnic {

/// Signed Q16.16 fixed-point number.
class Fixed {
 public:
  constexpr Fixed() = default;
  static constexpr Fixed from_raw(std::int32_t raw) {
    Fixed f;
    f.raw_ = raw;
    return f;
  }
  static constexpr Fixed from_int(std::int32_t v) { return from_raw(v << 16); }
  static constexpr Fixed from_double(double v) {
    return from_raw(static_cast<std::int32_t>(v * 65536.0));
  }

  constexpr std::int32_t raw() const { return raw_; }
  constexpr std::int32_t to_int() const { return raw_ >> 16; }
  constexpr double to_double() const { return raw_ / 65536.0; }

  friend constexpr Fixed operator+(Fixed a, Fixed b) {
    return from_raw(a.raw_ + b.raw_);
  }
  friend constexpr Fixed operator-(Fixed a, Fixed b) {
    return from_raw(a.raw_ - b.raw_);
  }
  friend constexpr Fixed operator*(Fixed a, Fixed b) {
    return from_raw(static_cast<std::int32_t>(
        (static_cast<std::int64_t>(a.raw_) * b.raw_) >> 16));
  }
  friend constexpr Fixed operator/(Fixed a, Fixed b) {
    return from_raw(static_cast<std::int32_t>(
        (static_cast<std::int64_t>(a.raw_) << 16) / b.raw_));
  }
  friend constexpr bool operator==(Fixed a, Fixed b) {
    return a.raw_ == b.raw_;
  }
  friend constexpr bool operator<(Fixed a, Fixed b) { return a.raw_ < b.raw_; }

 private:
  std::int32_t raw_ = 0;
};

}  // namespace lnic
