// Flight recorder: an always-on bounded ring of the last N anomaly
// events (sheds, quarantines, DRR drops, quota rejections, RTO backoffs,
// barrier outliers). The point is post-hoc debuggability: when a bench
// fails or a run behaves oddly, the recorder answers "what went wrong
// *just before*?" without anyone having turned tracing on in advance.
//
// Recording is pure wall-clock bookkeeping — no simulated events are
// scheduled, no simulated clocks are read beyond the caller-supplied
// timestamp — so an instrumented run replays byte-for-byte identical to
// an uninstrumented one. The ring is mutex-guarded (anomalies can fire
// on any shard thread) and bounded, so steady-state cost is one lock and
// one slot overwrite per anomaly, and anomalies are rare by definition.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"

namespace lnic::flightrec {

enum class Kind : std::uint8_t {
  kGatewayShed,        // admission queue full / deadline shed
  kGatewayQuarantine,  // worker quarantined after failures
  kQueueDrop,          // NIC dispatch queue overflow (DRR queue drop)
  kUndeployDrop,       // queued requests dropped by tenant undeploy
  kQuotaReject,        // deploy rejected by per-tenant quota admission
  kRtoBackoff,         // RPC attempt exhausted retransmits / backed off
  kBarrierOutlier,     // shard window wall time far above running mean
  kTxnRetryExhausted,  // transaction aborted past its retry budget
  kOther,
};

const char* to_string(Kind kind);

/// One recorded anomaly. `a`/`b` are kind-specific small operands (e.g.
/// tenant id and queue depth) so common cases need no string formatting;
/// `detail` carries the human-readable context.
struct Event {
  SimTime time = 0;  // simulated time at which the anomaly occurred
  Kind kind = Kind::kOther;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::string detail;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  void record(SimTime time, Kind kind, std::uint64_t a, std::uint64_t b,
              std::string detail);
  void record(SimTime time, Kind kind, std::string detail) {
    record(time, kind, 0, 0, std::move(detail));
  }

  /// Copies the ring, oldest first.
  std::vector<Event> snapshot() const;
  /// Total events ever recorded (including evicted ones).
  std::uint64_t recorded() const;
  /// Events evicted to respect the capacity bound.
  std::uint64_t evicted() const;
  std::size_t capacity() const;
  /// Resizes the ring, evicting oldest entries if shrinking.
  void set_capacity(std::size_t capacity);
  void clear();

  /// Human-readable dump of the ring, oldest first; empty-ring dumps say
  /// so explicitly (an empty recorder after a failure is itself a clue).
  std::string dump() const;

  /// The process-wide recorder every built-in instrumentation site
  /// writes to. Benches and lnicctl dump this on demand or on failure.
  static FlightRecorder& global();

  static constexpr std::size_t kDefaultCapacity = 256;

 private:
  mutable std::mutex mu_;
  std::deque<Event> ring_;
  std::size_t capacity_;
  std::uint64_t recorded_ = 0;
};

}  // namespace lnic::flightrec
