#include "core/cluster.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace lnic::core {

namespace {

/// Maps each worker to a shard in 1..worker_shards, keeping islands
/// whole: islands are placed in order of first appearance onto the
/// least-loaded shard (lowest index wins ties). With every worker its
/// own island — the empty-config default — this degenerates to exactly
/// the legacy `1 + i % worker_shards` round-robin, so existing sharded
/// runs replay byte-for-byte.
std::vector<unsigned> assign_worker_shards(
    const std::vector<unsigned>& worker_islands, std::size_t workers,
    unsigned worker_shards) {
  std::vector<unsigned> island_of(workers);
  if (worker_islands.empty()) {
    for (std::size_t i = 0; i < workers; ++i) {
      island_of[i] = static_cast<unsigned>(i);
    }
  } else {
    if (worker_islands.size() != workers) {
      std::fprintf(stderr,
                   "ClusterConfig: worker_islands has %zu entries for %zu "
                   "workers — one island id per worker is required\n",
                   worker_islands.size(), workers);
      std::abort();
    }
    island_of = worker_islands;
  }
  // Island sizes, in order of first appearance (placement order).
  std::vector<unsigned> order;
  std::map<unsigned, std::size_t> size;
  for (const unsigned island : island_of) {
    if (size.count(island) == 0) order.push_back(island);
    ++size[island];
  }
  std::map<unsigned, unsigned> shard_of_island;
  std::vector<std::size_t> load(worker_shards, 0);
  for (const unsigned island : order) {
    const auto least = std::min_element(load.begin(), load.end());
    const auto s = static_cast<unsigned>(least - load.begin());
    shard_of_island[island] = 1 + s;
    *least += size[island];
  }
  std::vector<unsigned> shard(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    shard[i] = shard_of_island[island_of[i]];
  }
  return shard;
}

}  // namespace

std::vector<backends::BackendKind> ClusterConfig::effective_worker_kinds()
    const {
  if (!worker_kinds.empty()) return worker_kinds;
  return std::vector<backends::BackendKind>(workers, backend);
}

Cluster::Cluster(ClusterConfig config)
    : config_(config),
      sharded_(config.shards),
      network_(sharded_, config.link, config.faults, config.seed),
      storage_(backends::kMgmtBandwidthBps) {
  // The master stack — gateway, cache, etcd, manager — shares shard 0;
  // its components call each other synchronously and must never be split.
  sim::Simulator& sim0 = sharded_.shard(0);
  gateway_ = std::make_unique<framework::Gateway>(sim0, network_,
                                                  config.gateway);
  cache_ = std::make_unique<kvstore::CacheServer>(sim0, network_);
  if (config.with_etcd) {
    etcd_ = std::make_unique<kvstore::EtcdStore>(sim0, config.etcd_nodes);
    etcd_->start();
  }
  manager_ = std::make_unique<framework::WorkloadManager>(sim0, storage_,
                                                          etcd_.get());
  // Workers spread across shards 1..N-1 (island-aware, see
  // assign_worker_shards): each island's NIC/host state lives (and its
  // events run) wholly on its shard; only packets cross shard
  // boundaries. The master keeps shard 0 to itself.
  const auto kinds = config.effective_worker_kinds();
  const unsigned worker_shards =
      sharded_.shards() > 1 ? sharded_.shards() - 1 : 1;
  const auto worker_shard = assign_worker_shards(config.worker_islands,
                                                 kinds.size(), worker_shards);
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const unsigned shard = sharded_.shards() > 1 ? worker_shard[i] : 0;
    network_.set_attach_shard(shard);
    workers_.push_back(backends::make_backend(kinds[i],
                                              sharded_.shard(shard), network_,
                                              config.worker_threads));
    workers_.back()->set_kv_server(cache_->node());
  }
  network_.set_attach_shard(0);
  if (config.shard_affinity_routing) gateway_->enable_shard_affinity(network_);
  if (config.adaptive_sync) network_.enable_adaptive_sync();
  if (etcd_) gateway_->sync_with(*etcd_);
}

Result<framework::DeploymentRecord> Cluster::deploy(
    workloads::WorkloadBundle bundle) {
  return deploy(std::move(bundle), std::string());
}

Result<framework::DeploymentRecord> Cluster::deploy(
    workloads::WorkloadBundle bundle, const std::string& tenant) {
  if (auto lookahead = sharded_.validate_lookahead(); !lookahead.ok()) {
    return lookahead.error();
  }
  // Let the etcd cluster elect a leader so route mirroring succeeds.
  if (etcd_) sharded_.run_until(sharded_.now() + seconds(2));

  // The manager's deploy path is synchronous direct calls into the
  // backends — safe to cross shards here because no window is running:
  // the coordinator thread owns every shard between runs.
  std::vector<backends::Backend*> pool;
  pool.reserve(workers_.size());
  for (auto& worker : workers_) pool.push_back(worker.get());
  auto record = manager_->deploy(
      std::move(bundle), pool,
      framework::placement_policy(config_.placement), gateway_.get(), tenant);
  if (!record.ok()) return record.error();
  ready_at_ = std::max(ready_at_, record.value().ready_at);
  return record;
}

void Cluster::wait_until_ready() {
  sharded_.run_until(std::max(ready_at_, sharded_.now()) + milliseconds(1));
}

void Cluster::invoke(const std::string& name,
                     net::BufferView payload,
                     framework::InvokeCallback callback) {
  gateway_->invoke(name, std::move(payload), std::move(callback));
}

Result<proto::RpcResponse> Cluster::invoke_and_wait(
    const std::string& name, net::BufferView payload) {
  std::optional<Result<proto::RpcResponse>> slot;
  gateway_->invoke(name, std::move(payload),
                   [&slot](Result<proto::RpcResponse> r) {
                     slot = std::move(r);
                   });
  // Run with a completion predicate (rather than to drain) because
  // etcd's Raft timers keep the queue non-empty forever; bound by a
  // generous deadline so a lost response cannot hang the caller. On one
  // shard this steps the classic engine; on many it advances window by
  // window, checking the slot at each barrier.
  const SimTime deadline = sharded_.now() + seconds(300);
  sharded_.run_until(deadline, [&slot] { return slot.has_value(); });
  if (!slot.has_value()) {
    return make_error("cluster: no response before deadline");
  }
  return std::move(*slot);
}

}  // namespace lnic::core
