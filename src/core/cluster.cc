#include "core/cluster.h"

namespace lnic::core {

std::vector<backends::BackendKind> ClusterConfig::effective_worker_kinds()
    const {
  if (!worker_kinds.empty()) return worker_kinds;
  return std::vector<backends::BackendKind>(workers, backend);
}

Cluster::Cluster(ClusterConfig config)
    : config_(config),
      network_(sim_, config.link, config.faults, config.seed),
      storage_(backends::kMgmtBandwidthBps) {
  gateway_ = std::make_unique<framework::Gateway>(sim_, network_,
                                                  config.gateway);
  cache_ = std::make_unique<kvstore::CacheServer>(sim_, network_);
  if (config.with_etcd) {
    etcd_ = std::make_unique<kvstore::EtcdStore>(sim_, config.etcd_nodes);
    etcd_->start();
  }
  manager_ = std::make_unique<framework::WorkloadManager>(sim_, storage_,
                                                          etcd_.get());
  for (backends::BackendKind kind : config.effective_worker_kinds()) {
    workers_.push_back(backends::make_backend(kind, sim_, network_,
                                              config.worker_threads));
    workers_.back()->set_kv_server(cache_->node());
  }
  if (etcd_) gateway_->sync_with(*etcd_);
}

Result<framework::DeploymentRecord> Cluster::deploy(
    workloads::WorkloadBundle bundle) {
  // Let the etcd cluster elect a leader so route mirroring succeeds.
  if (etcd_) sim_.run_until(sim_.now() + seconds(2));

  std::vector<backends::Backend*> pool;
  pool.reserve(workers_.size());
  for (auto& worker : workers_) pool.push_back(worker.get());
  auto record = manager_->deploy(
      std::move(bundle), pool,
      framework::placement_policy(config_.placement), gateway_.get());
  if (!record.ok()) return record.error();
  ready_at_ = std::max(ready_at_, record.value().ready_at);
  return record;
}

void Cluster::wait_until_ready() {
  sim_.run_until(std::max(ready_at_, sim_.now()) + milliseconds(1));
}

void Cluster::invoke(const std::string& name,
                     net::BufferView payload,
                     framework::InvokeCallback callback) {
  gateway_->invoke(name, std::move(payload), std::move(callback));
}

Result<proto::RpcResponse> Cluster::invoke_and_wait(
    const std::string& name, net::BufferView payload) {
  std::optional<Result<proto::RpcResponse>> slot;
  gateway_->invoke(name, std::move(payload),
                   [&slot](Result<proto::RpcResponse> r) {
                     slot = std::move(r);
                   });
  // Step (rather than run) because etcd's Raft timers keep the queue
  // non-empty forever; bound by a generous deadline so a lost response
  // cannot hang the caller.
  const SimTime deadline = sim_.now() + seconds(300);
  while (!slot.has_value() && sim_.now() < deadline && sim_.step()) {
  }
  if (!slot.has_value()) {
    return make_error("cluster: no response before deadline");
  }
  return std::move(*slot);
}

}  // namespace lnic::core
