#include "core/cluster.h"

namespace lnic::core {

std::vector<backends::BackendKind> ClusterConfig::effective_worker_kinds()
    const {
  if (!worker_kinds.empty()) return worker_kinds;
  return std::vector<backends::BackendKind>(workers, backend);
}

Cluster::Cluster(ClusterConfig config)
    : config_(config),
      sharded_(config.shards),
      network_(sharded_, config.link, config.faults, config.seed),
      storage_(backends::kMgmtBandwidthBps) {
  // The master stack — gateway, cache, etcd, manager — shares shard 0;
  // its components call each other synchronously and must never be split.
  sim::Simulator& sim0 = sharded_.shard(0);
  gateway_ = std::make_unique<framework::Gateway>(sim0, network_,
                                                  config.gateway);
  cache_ = std::make_unique<kvstore::CacheServer>(sim0, network_);
  if (config.with_etcd) {
    etcd_ = std::make_unique<kvstore::EtcdStore>(sim0, config.etcd_nodes);
    etcd_->start();
  }
  manager_ = std::make_unique<framework::WorkloadManager>(sim0, storage_,
                                                          etcd_.get());
  // Workers round-robin across shards 1..N-1: each island's NIC/host
  // state lives (and its events run) wholly on its shard; only packets
  // cross shard boundaries.
  const auto kinds = config.effective_worker_kinds();
  const unsigned worker_shards =
      sharded_.shards() > 1 ? sharded_.shards() - 1 : 1;
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const unsigned shard =
        sharded_.shards() > 1
            ? 1 + static_cast<unsigned>(i % worker_shards)
            : 0;
    network_.set_attach_shard(shard);
    workers_.push_back(backends::make_backend(kinds[i],
                                              sharded_.shard(shard), network_,
                                              config.worker_threads));
    workers_.back()->set_kv_server(cache_->node());
  }
  network_.set_attach_shard(0);
  if (etcd_) gateway_->sync_with(*etcd_);
}

Result<framework::DeploymentRecord> Cluster::deploy(
    workloads::WorkloadBundle bundle) {
  return deploy(std::move(bundle), std::string());
}

Result<framework::DeploymentRecord> Cluster::deploy(
    workloads::WorkloadBundle bundle, const std::string& tenant) {
  if (auto lookahead = sharded_.validate_lookahead(); !lookahead.ok()) {
    return lookahead.error();
  }
  // Let the etcd cluster elect a leader so route mirroring succeeds.
  if (etcd_) sharded_.run_until(sharded_.now() + seconds(2));

  // The manager's deploy path is synchronous direct calls into the
  // backends — safe to cross shards here because no window is running:
  // the coordinator thread owns every shard between runs.
  std::vector<backends::Backend*> pool;
  pool.reserve(workers_.size());
  for (auto& worker : workers_) pool.push_back(worker.get());
  auto record = manager_->deploy(
      std::move(bundle), pool,
      framework::placement_policy(config_.placement), gateway_.get(), tenant);
  if (!record.ok()) return record.error();
  ready_at_ = std::max(ready_at_, record.value().ready_at);
  return record;
}

void Cluster::wait_until_ready() {
  sharded_.run_until(std::max(ready_at_, sharded_.now()) + milliseconds(1));
}

void Cluster::invoke(const std::string& name,
                     net::BufferView payload,
                     framework::InvokeCallback callback) {
  gateway_->invoke(name, std::move(payload), std::move(callback));
}

Result<proto::RpcResponse> Cluster::invoke_and_wait(
    const std::string& name, net::BufferView payload) {
  std::optional<Result<proto::RpcResponse>> slot;
  gateway_->invoke(name, std::move(payload),
                   [&slot](Result<proto::RpcResponse> r) {
                     slot = std::move(r);
                   });
  // Run with a completion predicate (rather than to drain) because
  // etcd's Raft timers keep the queue non-empty forever; bound by a
  // generous deadline so a lost response cannot hang the caller. On one
  // shard this steps the classic engine; on many it advances window by
  // window, checking the slot at each barrier.
  const SimTime deadline = sharded_.now() + seconds(300);
  sharded_.run_until(deadline, [&slot] { return slot.has_value(); });
  if (!slot.has_value()) {
    return make_error("cluster: no response before deadline");
  }
  return std::move(*slot);
}

}  // namespace lnic::core
