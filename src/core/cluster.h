// λ-NIC public API: a one-object testbed mirroring the paper's Figure 5
// cluster — a master node (gateway, workload manager, memcached-like
// cache, etcd, artifact storage, monitoring) plus N worker nodes, each
// hosting one serverless backend, all behind a 10 G switch.
//
// Typical use (see examples/quickstart.cpp):
//
//   core::ClusterConfig config;
//   core::Cluster cluster(config);
//   cluster.deploy(workloads::make_standard_workloads());
//   cluster.wait_until_ready();
//   auto response = cluster.invoke_and_wait(
//       "web_server", workloads::encode_web_request(0));
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "backends/backend.h"
#include "common/result.h"
#include "framework/gateway.h"
#include "framework/manager.h"
#include "framework/storage.h"
#include "kvstore/cache_server.h"
#include "kvstore/etcd.h"
#include "net/network.h"
#include "proto/rpc.h"
#include "sim/sharded.h"
#include "sim/simulator.h"
#include "workloads/lambdas.h"

namespace lnic::core {

struct ClusterConfig {
  std::uint32_t workers = 4;  // M2-M5 (§6.1.2)
  backends::BackendKind backend = backends::BackendKind::kLambdaNic;
  // Per-worker backend kinds for heterogeneous clusters, e.g.
  // {kLambdaNic, kLambdaNic, kBareMetal, kContainer}. When non-empty it
  // overrides `workers`/`backend`; when empty the cluster is homogeneous
  // (`workers` copies of `backend`), as before.
  std::vector<backends::BackendKind> worker_kinds;
  framework::PlacementPolicyKind placement =
      framework::PlacementPolicyKind::kNicFirst;
  std::uint32_t worker_threads = 56;
  bool with_etcd = true;
  std::uint32_t etcd_nodes = 3;
  net::LinkConfig link;
  net::FaultConfig faults;
  framework::GatewayConfig gateway;
  std::uint64_t seed = 7;
  // Event shards the cluster runs on. 1 (the default) is the classic
  // single-threaded engine, byte-identical to every earlier release.
  // With N > 1 the master stack (gateway, cache, etcd, manager) gets
  // shard 0 to itself and workers spread across shards 1..N-1,
  // synchronized conservatively on the link delay (see sim/sharded.h).
  unsigned shards = 1;
  // Locality-aware worker placement: worker_islands[i] names the island
  // (rack/topology group) worker i belongs to. Workers of one island are
  // always co-sharded — islands are greedily assigned to the
  // least-loaded worker shard (lowest index wins ties), so island-local
  // traffic never crosses a shard boundary. Empty (the default) treats
  // each worker as its own island, which reproduces the legacy
  // round-robin byte-for-byte. Size must equal the worker count.
  std::vector<unsigned> worker_islands;
  // EOT-based adaptive window extension (see sim/sharded.h). Off by
  // default: static windows are byte-identical to earlier releases.
  bool adaptive_sync = false;
  // Shard-affinity replica selection at the gateway: prefer co-sharded
  // replicas when route weights are uniform (framework/gateway.h). Off
  // by default.
  bool shard_affinity_routing = false;

  /// The effective per-worker kinds after applying the homogeneous
  /// convenience expansion.
  std::vector<backends::BackendKind> effective_worker_kinds() const;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config = {});

  /// Shard 0's engine — the master stack's home and, between runs, the
  /// authoritative clock. Single-shard clusters run entirely on it.
  sim::Simulator& sim() { return sharded_.shard(0); }
  sim::ShardedSimulator& sharded() { return sharded_; }
  net::Network& network() { return network_; }
  framework::Gateway& gateway() { return *gateway_; }
  framework::WorkloadManager& manager() { return *manager_; }
  framework::BlobStorage& storage() { return storage_; }
  kvstore::CacheServer& cache() { return *cache_; }
  kvstore::EtcdStore* etcd() { return etcd_.get(); }
  backends::Backend& worker(std::size_t i) { return *workers_.at(i); }
  std::size_t worker_count() const { return workers_.size(); }

  /// Deploys the bundle across the worker pool using the configured
  /// placement policy and registers weighted routes. The cluster is
  /// serving after wait_until_ready().
  Result<framework::DeploymentRecord> deploy(workloads::WorkloadBundle bundle);

  /// Tenant-namespaced deployment: routes register as
  /// "<tenant>/<function>" and the tenant id rides every request header,
  /// so the NIC's DRR scheduler and quota admission see the namespace.
  Result<framework::DeploymentRecord> deploy(workloads::WorkloadBundle bundle,
                                             const std::string& tenant);

  /// Records `tenant`'s NIC resource quota for subsequent deploys.
  void set_tenant_quota(const std::string& tenant, nicsim::TenantQuota quota) {
    manager_->set_tenant_quota(tenant, quota);
  }

  /// Advances the simulation past etcd elections and backend startup
  /// (firmware load / container pull).
  void wait_until_ready();

  /// Fire-and-callback invocation through the gateway.
  void invoke(const std::string& name, net::BufferView payload,
              framework::InvokeCallback callback);

  /// Invokes and runs the simulation until the response (or failure)
  /// arrives. Convenience for examples and tests.
  Result<proto::RpcResponse> invoke_and_wait(const std::string& name,
                                             net::BufferView payload);

 private:
  ClusterConfig config_;
  sim::ShardedSimulator sharded_;
  net::Network network_;
  framework::BlobStorage storage_;
  std::unique_ptr<framework::Gateway> gateway_;
  std::unique_ptr<kvstore::CacheServer> cache_;
  std::unique_ptr<kvstore::EtcdStore> etcd_;
  std::unique_ptr<framework::WorkloadManager> manager_;
  std::vector<std::unique_ptr<backends::Backend>> workers_;
  SimTime ready_at_ = 0;
};

}  // namespace lnic::core
