// Request-trace format: record, replay, and synthesize offered load.
//
// A trace is a plain-text file, one request per line:
//
//   # lnic-trace v1
//   <timestamp_ns> <function> <payload_bytes>
//
// Timestamps are relative to replay start and must be non-decreasing;
// '#' lines and blank lines are ignored. The format is deliberately
// trivial so traces can be produced by anything (awk over production
// logs included) and diffed by eye. synthesize() emits diurnal and
// burst-shaped traces from a seeded spec, so benches can replay
// realistic day-shaped or spiky traffic deterministically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "loadgen/popularity.h"

namespace lnic::loadgen {

struct TraceEvent {
  SimTime at = 0;  // offset from replay start, ns
  std::string function;
  Bytes payload_bytes = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Canonical synthetic function name for a popularity rank: "fn000"...
std::string function_name(std::size_t rank);

/// Serializes events to the text format (header + one line per event).
std::string write_trace(const std::vector<TraceEvent>& events);
/// Writes the text format to a file; false on I/O failure.
bool write_trace_file(const std::string& path,
                      const std::vector<TraceEvent>& events);

/// Parses the text format. Rejects malformed lines (with the line
/// number) and timestamps that go backwards.
Result<std::vector<TraceEvent>> parse_trace(const std::string& text);
Result<std::vector<TraceEvent>> read_trace_file(const std::string& path);

// ------------------------------------------------------------ synthesis

enum class SynthPattern : std::uint8_t {
  kConstant,  // flat Poisson at base_rps
  kDiurnal,   // sinusoidal rate between base_rps and peak_rps per period
  kBurst,     // base_rps with burst_len spikes to peak_rps every period
};

struct SynthSpec {
  SynthPattern pattern = SynthPattern::kConstant;
  SimDuration duration = seconds(1);
  double base_rps = 1000.0;
  double peak_rps = 4000.0;
  /// Diurnal cycle length / burst spacing.
  SimDuration period = milliseconds(250);
  /// Burst width (kBurst only); bursts start at k * period.
  SimDuration burst_len = milliseconds(20);
  std::size_t functions = 8;
  double zipf_s = 0.9;
  PayloadDist payload = PayloadDist::fixed_size(64);
  std::uint64_t seed = 1;
};

/// Emits a time-sorted trace via Poisson thinning against the spec's
/// rate profile; functions are Zipf-selected over `functions` ranks.
/// Deterministic for a fixed spec (seed included).
std::vector<TraceEvent> synthesize(const SynthSpec& spec);

}  // namespace lnic::loadgen
