// Function-popularity and payload-size models. Production serverless
// traffic is heavily skewed: a few hot functions take most of the
// requests (SuperNIC, arXiv:2109.07744, drives multi-tenant SmartNICs
// with exactly this shape). ZipfSelector picks a function rank with
// P(rank r) ∝ 1/r^s — s = 0 degenerates to uniform — and PayloadDist
// draws per-request payload sizes (fixed / uniform / bimodal), both from
// seeded common/rng.h streams.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace lnic::loadgen {

/// Zipfian rank selector over n items (ranks 0..n-1, rank 0 hottest).
class ZipfSelector {
 public:
  /// `s` is the skew exponent (0 = uniform, 0.9-1.1 = web-like).
  ZipfSelector(std::size_t n, double s, std::uint64_t seed);

  std::size_t sample();
  std::size_t size() const { return cdf_.size(); }
  /// The exact probability mass of `rank` under this distribution.
  double expected_fraction(std::size_t rank) const;

 private:
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1
  Rng rng_;
};

/// Per-function request payload sizes.
struct PayloadDist {
  enum class Kind : std::uint8_t { kFixed, kUniform, kBimodal };

  Kind kind = Kind::kFixed;
  Bytes fixed = 64;             // kFixed value; small mode of kBimodal
  Bytes min = 64, max = 64;     // kUniform inclusive range
  Bytes large = 4096;           // large mode of kBimodal
  double large_prob = 0.0;      // probability of the large mode

  static PayloadDist fixed_size(Bytes size) {
    PayloadDist d;
    d.kind = Kind::kFixed;
    d.fixed = size;
    return d;
  }
  static PayloadDist uniform(Bytes min, Bytes max) {
    PayloadDist d;
    d.kind = Kind::kUniform;
    d.min = min;
    d.max = max;
    return d;
  }
  static PayloadDist bimodal(Bytes small, Bytes large, double large_prob) {
    PayloadDist d;
    d.kind = Kind::kBimodal;
    d.fixed = small;
    d.large = large;
    d.large_prob = large_prob;
    return d;
  }

  Bytes sample(Rng& rng) const;
  double mean() const;
};

}  // namespace lnic::loadgen
