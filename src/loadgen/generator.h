// Open-loop load generator / trace replayer.
//
// Arrivals are scheduled on the simulator by an ArrivalProcess (or a
// recorded trace), independent of completions — the generator never
// waits for a response before offering the next request, which is what
// distinguishes offered load from the closed-loop harness in
// bench/harness.h. Each arrival picks a function (Zipf popularity over
// the registered profiles) and a payload size, then hands a Request to
// the caller-supplied Sink; the sink maps it onto whatever system is
// under test (a framework::Gateway, an echo pool, a raw RpcClient) and
// signals completion. SLO accounting is coordinated-omission safe: the
// latency clock starts at the *intended* arrival time even when
// `max_outstanding` forces the driver to defer dispatch.
//
// Determinism: all draws come from streams derived from config.seed, so
// the same (config, profiles) replays the identical request sequence.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "framework/gateway.h"
#include "framework/metrics.h"
#include "loadgen/arrival.h"
#include "loadgen/popularity.h"
#include "loadgen/slo.h"
#include "loadgen/trace.h"
#include "sim/simulator.h"

namespace lnic::loadgen {

/// One offered request. The sink decides the concrete payload bytes
/// (workload encodings are its business); `payload_bytes` is the size
/// the model drew.
struct Request {
  std::uint64_t id = 0;
  SimTime intended = 0;
  std::string function;
  Bytes payload_bytes = 0;
};

/// Completion signal: true = success, false = failure (shed, transport
/// error, ...). Must be called exactly once per sunk request.
using CompletionFn = std::function<void(bool ok)>;
using Sink = std::function<void(const Request&, CompletionFn done)>;

struct FunctionProfile {
  std::string name;
  PayloadDist payload = PayloadDist::fixed_size(64);
};

/// n profiles named with function_name(rank), all sharing `payload`.
std::vector<FunctionProfile> uniform_functions(
    std::size_t n, PayloadDist payload = PayloadDist::fixed_size(64));

struct LoadGenConfig {
  ArrivalSpec arrivals;
  /// Popularity skew across the profile list (profile 0 hottest);
  /// 0 = uniform.
  double zipf_s = 0.0;
  /// Stop offering after this much simulated time (0 = no time limit;
  /// stop() or max_requests ends the run).
  SimDuration duration = 0;
  /// Stop offering after this many requests (0 = unlimited).
  std::uint64_t max_requests = 0;
  /// Cap on concurrently dispatched requests; arrivals beyond it are
  /// queued inside the generator with their intended timestamps intact
  /// (0 = unbounded, pure open loop).
  std::uint32_t max_outstanding = 0;
  std::uint64_t seed = 1;
  SloConfig slo;
};

class LoadGenerator {
 public:
  /// Synthetic mode: arrivals from config.arrivals, functions from the
  /// profile list (must be non-empty).
  LoadGenerator(sim::Simulator& sim, LoadGenConfig config,
                std::vector<FunctionProfile> profiles, Sink sink);
  /// Replay mode: arrivals, function names and payload sizes from the
  /// trace (timestamps relative to start()).
  LoadGenerator(sim::Simulator& sim, LoadGenConfig config,
                std::vector<TraceEvent> replay, Sink sink);

  /// Exports offered-load gauges (loadgen_offered_rps{fn=},
  /// loadgen_inflight, loadgen_offered_requests) into `registry` while
  /// running — pass the gateway's registry to graph supply vs demand
  /// together. nullptr detaches.
  void set_metrics(framework::MetricsRegistry* registry);

  void start();
  /// Stops offering new arrivals; already-offered requests still
  /// dispatch and complete.
  void stop();

  /// True once every offered request has completed and no more will be
  /// offered.
  bool drained() const {
    return !offering_ && completed_ + failed_ == offered_;
  }
  std::uint64_t offered() const { return offered_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t failed() const { return failed_; }
  std::uint32_t inflight() const { return inflight_; }
  SimTime started_at() const { return started_at_; }

  SloTracker& slo() { return slo_; }
  const SloTracker& slo() const { return slo_; }
  /// Report over [start, now] (or a caller-chosen window).
  SloReport report() const;

 private:
  void arm_next();
  void on_arrival(Request request);
  void dispatch(Request request);
  void update_gauges();

  sim::Simulator& sim_;
  LoadGenConfig config_;
  std::vector<FunctionProfile> profiles_;
  std::vector<TraceEvent> replay_;
  std::size_t replay_next_ = 0;
  Sink sink_;
  std::unique_ptr<ArrivalProcess> arrivals_;
  std::unique_ptr<ZipfSelector> zipf_;
  Rng payload_rng_;
  SloTracker slo_;
  framework::MetricsRegistry* metrics_ = nullptr;

  bool offering_ = false;
  SimTime started_at_ = 0;
  std::uint64_t offered_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint32_t inflight_ = 0;
  std::deque<Request> deferred_;
  sim::EventId pending_ = sim::kInvalidEvent;
  std::map<std::string, std::uint64_t> offered_by_fn_;
};

using EncodeFn = std::function<std::vector<std::uint8_t>(const Request&)>;

/// Default encoding: a payload_bytes-sized buffer with a deterministic
/// fill — suitable for echo-style workers.
EncodeFn raw_bytes_encoder();

/// Sink adapter for a framework::Gateway: invokes `request.function`
/// with `encode(request)` and reports result.ok(). Declared here so
/// every driver (benches, lnicctl, examples) builds the same adapter.
Sink gateway_sink(framework::Gateway& gateway, EncodeFn encode);

}  // namespace lnic::loadgen
