#include "loadgen/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <numbers>
#include <sstream>

#include "common/rng.h"

namespace lnic::loadgen {

namespace {
constexpr const char* kHeader = "# lnic-trace v1";
}

std::string function_name(std::size_t rank) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "fn%03zu", rank);
  return buffer;
}

std::string write_trace(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  out << kHeader << "\n";
  for (const TraceEvent& e : events) {
    out << e.at << ' ' << e.function << ' ' << e.payload_bytes << "\n";
  }
  return out.str();
}

bool write_trace_file(const std::string& path,
                      const std::vector<TraceEvent>& events) {
  std::ofstream out(path);
  if (!out) return false;
  out << write_trace(events);
  return static_cast<bool>(out);
}

Result<std::vector<TraceEvent>> parse_trace(const std::string& text) {
  std::vector<TraceEvent> events;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  SimTime last = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    TraceEvent event;
    long long at = 0;
    unsigned long long bytes = 0;
    std::string extra;
    if (!(fields >> at >> event.function >> bytes) || (fields >> extra)) {
      return make_error("trace line " + std::to_string(line_no) +
                        ": expected '<timestamp_ns> <function> <bytes>'");
    }
    if (at < 0) {
      return make_error("trace line " + std::to_string(line_no) +
                        ": negative timestamp");
    }
    event.at = static_cast<SimTime>(at);
    event.payload_bytes = static_cast<Bytes>(bytes);
    if (event.at < last) {
      return make_error("trace line " + std::to_string(line_no) +
                        ": timestamps must be non-decreasing");
    }
    last = event.at;
    events.push_back(std::move(event));
  }
  return events;
}

Result<std::vector<TraceEvent>> read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return make_error("cannot open trace '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_trace(buffer.str());
}

namespace {

/// Instantaneous offered rate (req/s) at offset `t` into the trace.
double rate_at(const SynthSpec& spec, SimTime t) {
  switch (spec.pattern) {
    case SynthPattern::kConstant:
      return spec.base_rps;
    case SynthPattern::kDiurnal: {
      if (spec.period <= 0) return spec.base_rps;
      const double phase = static_cast<double>(t % spec.period) /
                           static_cast<double>(spec.period);
      const double swing = 0.5 * (1.0 - std::cos(2.0 * std::numbers::pi * phase));
      return spec.base_rps + (spec.peak_rps - spec.base_rps) * swing;
    }
    case SynthPattern::kBurst: {
      if (spec.period <= 0) return spec.base_rps;
      return (t % spec.period) < spec.burst_len ? spec.peak_rps
                                                : spec.base_rps;
    }
  }
  return spec.base_rps;
}

}  // namespace

std::vector<TraceEvent> synthesize(const SynthSpec& spec) {
  std::vector<TraceEvent> events;
  const double peak = std::max(spec.base_rps, spec.peak_rps);
  if (peak <= 0.0 || spec.duration <= 0) return events;

  // Lewis-Shedler thinning: candidate arrivals at the peak rate, each
  // kept with probability rate(t)/peak — an exact non-homogeneous
  // Poisson sampler for any bounded rate profile.
  Rng arrivals(spec.seed);
  Rng payloads(spec.seed ^ 0x7061796C6F616433ull);  // independent stream
  ZipfSelector zipf(spec.functions, spec.zipf_s,
                    spec.seed ^ 0x7A6970663A736565ull);
  double t_ns = 0.0;
  const double mean_gap_ns = 1e9 / peak;
  for (;;) {
    t_ns += std::max(1.0, arrivals.next_exponential(mean_gap_ns));
    const SimTime at = static_cast<SimTime>(t_ns);
    if (at >= spec.duration) break;
    if (!arrivals.next_bool(rate_at(spec, at) / peak)) continue;
    TraceEvent event;
    event.at = at;
    event.function = function_name(zipf.sample());
    event.payload_bytes = spec.payload.sample(payloads);
    events.push_back(std::move(event));
  }
  return events;
}

}  // namespace lnic::loadgen
