// Open-loop arrival processes (the demand side of every scaling
// experiment). An ArrivalProcess is a deterministic stream of
// inter-arrival gaps: fixed-rate (the classic periodic driver), Poisson
// (memoryless production traffic), and a two-state on-off MMPP (bursty
// traffic — a Poisson process whose rate is modulated by an on/off
// Markov chain with exponential dwell times). All randomness comes from
// a seeded common/rng.h stream, so a (spec, seed) pair replays the exact
// same arrival sequence on every run.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "common/types.h"

namespace lnic::loadgen {

enum class ArrivalKind : std::uint8_t { kFixedRate, kPoisson, kOnOff };

struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kFixedRate;
  /// Offered rate (req/s); the on-state rate for kOnOff.
  double rate_rps = 1000.0;
  /// Off-state rate for kOnOff (0 = silent between bursts).
  double off_rate_rps = 0.0;
  /// Mean dwell time in the on / off states (kOnOff only; exponential).
  SimDuration mean_on = milliseconds(10);
  SimDuration mean_off = milliseconds(10);

  static ArrivalSpec fixed(double rps) {
    return ArrivalSpec{ArrivalKind::kFixedRate, rps};
  }
  static ArrivalSpec poisson(double rps) {
    return ArrivalSpec{ArrivalKind::kPoisson, rps};
  }
  static ArrivalSpec on_off(double on_rps, double off_rps, SimDuration on,
                            SimDuration off) {
    return ArrivalSpec{ArrivalKind::kOnOff, on_rps, off_rps, on, off};
  }

  /// Long-run offered rate (req/s): the plain rate for fixed/Poisson,
  /// the dwell-weighted average of the two state rates for on-off.
  double mean_rate_rps() const;
};

/// A stream of inter-arrival gaps in simulated nanoseconds.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  /// Gap from the previous arrival (or from the stream start) to the
  /// next arrival; always >= 1 ns so arrivals strictly advance time.
  virtual SimDuration next_gap() = 0;
};

/// Builds the process described by `spec`, seeded deterministically.
std::unique_ptr<ArrivalProcess> make_arrivals(const ArrivalSpec& spec,
                                              std::uint64_t seed);

}  // namespace lnic::loadgen
