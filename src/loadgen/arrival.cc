#include "loadgen/arrival.h"

#include <algorithm>

namespace lnic::loadgen {
namespace {

constexpr double kNsPerSec = 1e9;

SimDuration clamp_gap(double gap_ns) {
  return std::max<SimDuration>(1, static_cast<SimDuration>(gap_ns));
}

/// Constant gap. The cast matches the hand-rolled open-loop drivers this
/// class replaces (`static_cast<SimDuration>(1e9 / rate)`), so porting a
/// bench onto it is arrival-for-arrival identical.
class FixedRateArrivals final : public ArrivalProcess {
 public:
  explicit FixedRateArrivals(double rps)
      : gap_(clamp_gap(kNsPerSec / rps)) {}
  SimDuration next_gap() override { return gap_; }

 private:
  SimDuration gap_;
};

class PoissonArrivals final : public ArrivalProcess {
 public:
  PoissonArrivals(double rps, std::uint64_t seed)
      : mean_gap_ns_(kNsPerSec / rps), rng_(seed) {}
  SimDuration next_gap() override {
    return clamp_gap(rng_.next_exponential(mean_gap_ns_));
  }

 private:
  double mean_gap_ns_;
  Rng rng_;
};

/// Markov-modulated Poisson: exponential dwell in each state, Poisson
/// arrivals at the state's rate while dwelling there. A state with rate
/// 0 contributes silence for its whole dwell.
class OnOffArrivals final : public ArrivalProcess {
 public:
  OnOffArrivals(const ArrivalSpec& spec, std::uint64_t seed)
      : spec_(spec), rng_(seed) {
    remaining_ns_ =
        rng_.next_exponential(static_cast<double>(spec_.mean_on));
  }

  SimDuration next_gap() override {
    double gap_ns = 0.0;
    for (;;) {
      const double rate = on_ ? spec_.rate_rps : spec_.off_rate_rps;
      if (rate > 0.0) {
        const double candidate = rng_.next_exponential(kNsPerSec / rate);
        if (candidate <= remaining_ns_) {
          remaining_ns_ -= candidate;
          return clamp_gap(gap_ns + candidate);
        }
      }
      // No arrival before the state flips: consume the rest of the dwell
      // and draw the next one.
      gap_ns += remaining_ns_;
      on_ = !on_;
      remaining_ns_ = rng_.next_exponential(
          static_cast<double>(on_ ? spec_.mean_on : spec_.mean_off));
    }
  }

 private:
  ArrivalSpec spec_;
  Rng rng_;
  bool on_ = true;
  double remaining_ns_ = 0.0;
};

}  // namespace

double ArrivalSpec::mean_rate_rps() const {
  if (kind != ArrivalKind::kOnOff) return rate_rps;
  const double on = static_cast<double>(mean_on);
  const double off = static_cast<double>(mean_off);
  if (on + off <= 0.0) return rate_rps;
  return (rate_rps * on + off_rate_rps * off) / (on + off);
}

std::unique_ptr<ArrivalProcess> make_arrivals(const ArrivalSpec& spec,
                                              std::uint64_t seed) {
  switch (spec.kind) {
    case ArrivalKind::kFixedRate:
      return std::make_unique<FixedRateArrivals>(spec.rate_rps);
    case ArrivalKind::kPoisson:
      return std::make_unique<PoissonArrivals>(spec.rate_rps, seed);
    case ArrivalKind::kOnOff:
      return std::make_unique<OnOffArrivals>(spec, seed);
  }
  return std::make_unique<FixedRateArrivals>(spec.rate_rps);
}

}  // namespace lnic::loadgen
