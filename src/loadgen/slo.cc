#include "loadgen/slo.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

namespace lnic::loadgen {

std::uint64_t SloTracker::function_offered(const std::string& function) const {
  const auto it = functions_.find(function);
  return it == functions_.end() ? 0 : it->second.offered;
}

const Sampler* SloTracker::function_latency(
    const std::string& function) const {
  const auto it = functions_.find(function);
  return it == functions_.end() ? nullptr : &it->second.latency;
}

std::uint64_t SloTracker::function_violations(
    const std::string& function) const {
  const auto it = functions_.find(function);
  return it == functions_.end() ? 0 : it->second.failed + it->second.late;
}

framework::BurnSourceFn burn_source(const SloTracker& tracker) {
  return [&tracker](const std::string& key) {
    framework::BurnSample sample;
    sample.offered = tracker.function_offered(key);
    sample.bad = tracker.function_violations(key);
    return sample;
  };
}

framework::SloSignalFn slo_signal_source(const SloTracker& tracker) {
  // Per-function high-water mark into the sampler's raw sample vector;
  // shared_ptr so the callable stays copyable (std::function requirement).
  auto consumed = std::make_shared<std::map<std::string, std::size_t>>();
  return [&tracker, consumed](const std::string& name) {
    framework::SloSignal signal;
    signal.valid = true;
    signal.offered = tracker.function_offered(name);
    const Sampler* latency = tracker.function_latency(name);
    if (latency == nullptr) return signal;
    const std::vector<double>& samples = latency->samples();
    std::size_t& from = (*consumed)[name];
    if (from < samples.size()) {
      // Nearest-rank p99 over the window [from, end), matching
      // Sampler::percentile's convention.
      std::vector<double> window(samples.begin() + from, samples.end());
      std::sort(window.begin(), window.end());
      const std::size_t rank = static_cast<std::size_t>(
          std::ceil(0.99 * static_cast<double>(window.size())));
      signal.p99_ms = window[rank == 0 ? 0 : rank - 1] / 1e6;
      from = samples.size();
    }
    return signal;
  };
}

void SloTracker::on_offered(const std::string& function) {
  ++offered_;
  ++functions_[function].offered;
}

void SloTracker::on_complete(const std::string& function, SimTime intended,
                             SimTime dispatched, SimTime completed,
                             bool ok) {
  FnStats& fn = functions_[function];
  if (!ok) {
    ++fn.failed;
    return;
  }
  const double intended_latency = static_cast<double>(completed - intended);
  fn.latency.add(intended_latency);
  latency_.add(intended_latency);
  service_latency_.add(static_cast<double>(completed - dispatched));
  ++fn.completed;
  if (completed - intended > config_.deadline) ++fn.late;
}

SloReport SloTracker::report(SimDuration window) const {
  SloReport report;
  report.deadline = config_.deadline;
  report.window = window;
  report.offered = offered_;
  const double window_sec = window > 0 ? to_sec(window) : 0.0;
  for (const auto& [name, fn] : functions_) {
    report.completed += fn.completed;
    report.failed += fn.failed;
    report.late += fn.late;
    SloReport::FnRow row;
    row.function = name;
    row.offered = fn.offered;
    row.completed = fn.completed;
    row.violations = fn.failed + fn.late;
    const std::uint64_t on_time = fn.completed - fn.late;
    row.goodput_rps =
        window_sec > 0 ? static_cast<double>(on_time) / window_sec : 0.0;
    row.p99_ms = fn.latency.empty() ? 0.0 : fn.latency.p99() / 1e6;
    report.per_function.push_back(std::move(row));
  }
  std::stable_sort(report.per_function.begin(), report.per_function.end(),
                   [](const SloReport::FnRow& a, const SloReport::FnRow& b) {
                     return a.offered > b.offered;
                   });
  if (window_sec > 0) {
    report.offered_rps = static_cast<double>(report.offered) / window_sec;
    report.goodput_rps =
        static_cast<double>(report.completed - report.late) / window_sec;
  }
  if (!latency_.empty()) {
    report.p50_ms = latency_.percentile(50.0) / 1e6;
    report.p99_ms = latency_.percentile(99.0) / 1e6;
    report.p999_ms = latency_.percentile(99.9) / 1e6;
  }
  if (report.offered > 0) {
    report.violation_fraction =
        static_cast<double>(report.failed + report.late) /
        static_cast<double>(report.offered);
  }
  return report;
}

std::string SloReport::to_string(std::size_t max_functions) const {
  std::string out;
  char line[192];
  std::snprintf(line, sizeof(line),
                "SLO report (deadline %.3f ms, window %.1f ms)\n",
                to_ms(deadline), to_ms(window));
  out += line;
  std::snprintf(line, sizeof(line),
                "  offered %llu (%.0f req/s)  completed %llu  failed %llu  "
                "late %llu\n",
                static_cast<unsigned long long>(offered), offered_rps,
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(failed),
                static_cast<unsigned long long>(late));
  out += line;
  std::snprintf(line, sizeof(line),
                "  goodput %.0f req/s  violations %.2f%%  latency p50 %.3f "
                "p99 %.3f p99.9 %.3f ms\n",
                goodput_rps, violation_fraction * 100.0, p50_ms, p99_ms,
                p999_ms);
  out += line;
  const std::size_t rows = std::min(max_functions, per_function.size());
  for (std::size_t i = 0; i < rows; ++i) {
    const FnRow& row = per_function[i];
    std::snprintf(line, sizeof(line),
                  "  %-12s offered %8llu  goodput %8.0f req/s  "
                  "violations %6llu  p99 %9.3f ms\n",
                  row.function.c_str(),
                  static_cast<unsigned long long>(row.offered),
                  row.goodput_rps,
                  static_cast<unsigned long long>(row.violations),
                  row.p99_ms);
    out += line;
  }
  if (per_function.size() > rows) {
    std::snprintf(line, sizeof(line), "  ... %zu more function(s)\n",
                  per_function.size() - rows);
    out += line;
  }
  return out;
}

void SloTracker::export_to(framework::MetricsRegistry& registry,
                           SimDuration window) const {
  const double window_sec = window > 0 ? to_sec(window) : 0.0;
  for (const auto& [name, fn] : functions_) {
    const framework::Labels labels = {{"fn", name}};
    registry.gauge("loadgen_offered_total", labels) =
        static_cast<double>(fn.offered);
    registry.gauge("loadgen_violations_total", labels) =
        static_cast<double>(fn.failed + fn.late);
    registry.gauge("loadgen_goodput_rps", labels) =
        window_sec > 0
            ? static_cast<double>(fn.completed - fn.late) / window_sec
            : 0.0;
  }
}

}  // namespace lnic::loadgen
