#include "loadgen/popularity.h"

#include <algorithm>
#include <cmath>

namespace lnic::loadgen {

ZipfSelector::ZipfSelector(std::size_t n, double s, std::uint64_t seed)
    : rng_(seed) {
  if (n == 0) n = 1;
  cdf_.reserve(n);
  double total = 0.0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), s);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding in the search below
}

std::size_t ZipfSelector::sample() {
  const double u = rng_.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSelector::expected_fraction(std::size_t rank) const {
  if (rank >= cdf_.size()) return 0.0;
  const double below = rank == 0 ? 0.0 : cdf_[rank - 1];
  return cdf_[rank] - below;
}

Bytes PayloadDist::sample(Rng& rng) const {
  switch (kind) {
    case Kind::kFixed:
      return fixed;
    case Kind::kUniform: {
      const Bytes lo = std::min(min, max), hi = std::max(min, max);
      return lo + rng.next_below(hi - lo + 1);
    }
    case Kind::kBimodal:
      return rng.next_bool(large_prob) ? large : fixed;
  }
  return fixed;
}

double PayloadDist::mean() const {
  switch (kind) {
    case Kind::kFixed:
      return static_cast<double>(fixed);
    case Kind::kUniform:
      return (static_cast<double>(min) + static_cast<double>(max)) / 2.0;
    case Kind::kBimodal:
      return static_cast<double>(fixed) * (1.0 - large_prob) +
             static_cast<double>(large) * large_prob;
  }
  return static_cast<double>(fixed);
}

}  // namespace lnic::loadgen
