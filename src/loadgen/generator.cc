#include "loadgen/generator.h"

#include <utility>

namespace lnic::loadgen {

namespace {
// Seed-stream separators so arrival, popularity and payload draws are
// independent for one config.seed.
constexpr std::uint64_t kZipfStream = 0x5A69706653656C65ull;
constexpr std::uint64_t kPayloadStream = 0x5061796C6F616453ull;
}  // namespace

std::vector<FunctionProfile> uniform_functions(std::size_t n,
                                               PayloadDist payload) {
  std::vector<FunctionProfile> profiles;
  profiles.reserve(n);
  for (std::size_t rank = 0; rank < n; ++rank) {
    profiles.push_back(FunctionProfile{function_name(rank), payload});
  }
  return profiles;
}

LoadGenerator::LoadGenerator(sim::Simulator& sim, LoadGenConfig config,
                             std::vector<FunctionProfile> profiles,
                             Sink sink)
    : sim_(sim),
      config_(config),
      profiles_(std::move(profiles)),
      sink_(std::move(sink)),
      arrivals_(make_arrivals(config.arrivals, config.seed)),
      payload_rng_(config.seed ^ kPayloadStream),
      slo_(config.slo) {
  if (profiles_.empty()) {
    profiles_.push_back(FunctionProfile{function_name(0)});
  }
  zipf_ = std::make_unique<ZipfSelector>(profiles_.size(), config_.zipf_s,
                                         config_.seed ^ kZipfStream);
}

LoadGenerator::LoadGenerator(sim::Simulator& sim, LoadGenConfig config,
                             std::vector<TraceEvent> replay, Sink sink)
    : sim_(sim),
      config_(config),
      replay_(std::move(replay)),
      sink_(std::move(sink)),
      payload_rng_(config.seed ^ kPayloadStream),
      slo_(config.slo) {}

void LoadGenerator::set_metrics(framework::MetricsRegistry* registry) {
  metrics_ = registry;
}

void LoadGenerator::start() {
  offering_ = true;
  started_at_ = sim_.now();
  replay_next_ = 0;
  arm_next();
}

void LoadGenerator::stop() {
  offering_ = false;
  if (pending_ != sim::kInvalidEvent) {
    sim_.cancel(pending_);
    pending_ = sim::kInvalidEvent;
  }
}

void LoadGenerator::arm_next() {
  if (!offering_) return;
  if (config_.max_requests > 0 && offered_ >= config_.max_requests) {
    offering_ = false;
    return;
  }

  SimTime next = 0;
  Request request;
  if (arrivals_) {
    next = sim_.now() + arrivals_->next_gap();
    const FunctionProfile& profile = profiles_[zipf_->sample()];
    request.function = profile.name;
    request.payload_bytes = profile.payload.sample(payload_rng_);
  } else {
    if (replay_next_ >= replay_.size()) {
      offering_ = false;
      return;
    }
    const TraceEvent& event = replay_[replay_next_++];
    next = started_at_ + event.at;
    if (next < sim_.now()) next = sim_.now();
    request.function = event.function;
    request.payload_bytes = event.payload_bytes;
  }
  if (config_.duration > 0 && next > started_at_ + config_.duration) {
    offering_ = false;
    return;
  }
  request.intended = next;
  pending_ = sim_.schedule_at(next, [this, request]() mutable {
    pending_ = sim::kInvalidEvent;
    on_arrival(std::move(request));
  });
}

void LoadGenerator::on_arrival(Request request) {
  request.id = offered_++;
  ++offered_by_fn_[request.function];
  slo_.on_offered(request.function);
  update_gauges();

  if (config_.max_outstanding > 0 && inflight_ >= config_.max_outstanding) {
    deferred_.push_back(std::move(request));
  } else {
    dispatch(std::move(request));
  }
  // Dispatch before arming so event creation order matches the
  // hand-rolled PeriodicTimer drivers this replaces (callback first,
  // then re-arm) — ports stay bit-identical.
  arm_next();
}

void LoadGenerator::dispatch(Request request) {
  ++inflight_;
  update_gauges();
  const std::string function = request.function;
  const SimTime intended = request.intended;
  const SimTime dispatched = sim_.now();
  sink_(request, [this, function, intended, dispatched](bool ok) {
    --inflight_;
    if (ok) {
      ++completed_;
    } else {
      ++failed_;
    }
    slo_.on_complete(function, intended, dispatched, sim_.now(), ok);
    update_gauges();
    if (!deferred_.empty() && inflight_ < config_.max_outstanding) {
      Request next = std::move(deferred_.front());
      deferred_.pop_front();
      dispatch(std::move(next));
    }
  });
}

void LoadGenerator::update_gauges() {
  if (metrics_ == nullptr) return;
  metrics_->gauge("loadgen_inflight") = static_cast<double>(inflight_);
  metrics_->gauge("loadgen_offered_requests") =
      static_cast<double>(offered_);
  const SimDuration elapsed = sim_.now() - started_at_;
  if (elapsed <= 0) return;
  const double window_sec = to_sec(elapsed);
  for (const auto& [fn, count] : offered_by_fn_) {
    metrics_->gauge("loadgen_offered_rps", {{"fn", fn}}) =
        static_cast<double>(count) / window_sec;
  }
}

SloReport LoadGenerator::report() const {
  return slo_.report(sim_.now() - started_at_);
}

EncodeFn raw_bytes_encoder() {
  return [](const Request& request) {
    // Deterministic fill so payload bytes never depend on an RNG the
    // sink does not own.
    std::vector<std::uint8_t> payload(
        request.payload_bytes > 0 ? request.payload_bytes : 1);
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload[i] =
          static_cast<std::uint8_t>((request.id + i) & 0xFF);
    }
    return payload;
  };
}

Sink gateway_sink(framework::Gateway& gateway, EncodeFn encode) {
  return [&gateway, encode = std::move(encode)](const Request& request,
                                                CompletionFn done) {
    gateway.invoke(request.function, encode(request),
                   [done = std::move(done)](Result<proto::RpcResponse> r) {
                     done(r.ok());
                   });
  };
}

}  // namespace lnic::loadgen
