// Coordinated-omission-safe SLO accounting for open-loop load.
//
// Every request carries its *intended* arrival time (when the arrival
// process scheduled it, not when it was actually handed to the system).
// Latency is completion − intended, so a stalled server inflates the
// recorded tail instead of silently delaying the requests that would
// have observed the stall — the classic coordinated-omission bug in
// closed-loop harnesses. The dispatch-based view is kept alongside for
// comparison (it is what a naive driver would report).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/stats.h"
#include "common/types.h"
#include "framework/autoscaler.h"
#include "framework/metrics.h"
#include "framework/slo_monitor.h"

namespace lnic::loadgen {

struct SloConfig {
  /// Deadline against intended arrival; on-time successes are goodput,
  /// late successes count as violations.
  SimDuration deadline = milliseconds(10);
};

/// Summary of one measurement window.
struct SloReport {
  SimDuration deadline = 0;
  SimDuration window = 0;
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;  // successful completions
  std::uint64_t failed = 0;     // errored (shed, transport failure, ...)
  std::uint64_t late = 0;       // succeeded after the deadline
  double offered_rps = 0.0;
  double goodput_rps = 0.0;  // on-time successes per simulated second
  double p50_ms = 0.0, p99_ms = 0.0, p999_ms = 0.0;  // intended-based
  /// (failed + late) / offered — the fraction of demand that missed SLO.
  double violation_fraction = 0.0;

  struct FnRow {
    std::string function;
    std::uint64_t offered = 0;
    std::uint64_t completed = 0;
    std::uint64_t violations = 0;  // failed + late
    double goodput_rps = 0.0;
    double p99_ms = 0.0;
  };
  std::vector<FnRow> per_function;  // sorted by offered, descending

  /// Human-readable multi-line summary (top functions + totals).
  std::string to_string(std::size_t max_functions = 10) const;
};

class SloTracker {
 public:
  explicit SloTracker(SloConfig config = {}) : config_(config) {}

  void on_offered(const std::string& function);
  /// `intended` is the arrival process's schedule; `dispatched` is when
  /// the request actually entered the system (== intended unless the
  /// driver had to defer it); `completed` is now; `ok` is success.
  void on_complete(const std::string& function, SimTime intended,
                   SimTime dispatched, SimTime completed, bool ok);

  SloReport report(SimDuration window) const;

  const SloConfig& config() const { return config_; }
  std::uint64_t offered() const { return offered_; }
  /// Cumulative offered count of one function (0 if never offered).
  std::uint64_t function_offered(const std::string& function) const;
  /// Cumulative SLO violations (failed + late) of one function.
  std::uint64_t function_violations(const std::string& function) const;
  /// One function's intended-arrival latency sampler (nullptr if the
  /// function has no completions yet).
  const Sampler* function_latency(const std::string& function) const;
  /// Intended-arrival-based latencies (ns) — coordinated-omission safe.
  const Sampler& latency() const { return latency_; }
  /// Dispatch-based latencies (ns) — what a naive driver would record.
  const Sampler& service_latency() const { return service_latency_; }

  /// Writes per-function gauges (loadgen_offered_total{fn=},
  /// loadgen_violations_total{fn=}, loadgen_goodput_rps{fn=}) into a
  /// registry; idempotent, so it can run beside gateway_* exports.
  void export_to(framework::MetricsRegistry& registry,
                 SimDuration window) const;

 private:
  struct FnStats {
    std::uint64_t offered = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t late = 0;
    Sampler latency;  // intended-based, ns
  };

  SloConfig config_;
  std::uint64_t offered_ = 0;
  std::map<std::string, FnStats> functions_;
  Sampler latency_;
  Sampler service_latency_;
};

/// Adapts a tracker into the autoscaler's per-function SLO signal: each
/// reading reports the cumulative offered count plus the p99 of the
/// latency samples recorded since the previous reading for that function
/// (a windowed view over the tracker's raw samples; no samples copied
/// out of the tracker). The tracker must outlive the returned callable.
framework::SloSignalFn slo_signal_source(const SloTracker& tracker);

/// Adapts a tracker into the SLO monitor's cumulative burn-sample
/// source: offered = cumulative offered, bad = failed + late. Each
/// reading is two map lookups — the cheap early-warning path, compared
/// to the p99 signal's per-tick sort of the latency window. The tracker
/// must outlive the returned callable.
framework::BurnSourceFn burn_source(const SloTracker& tracker);

}  // namespace lnic::loadgen
