#include "net/network.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace lnic::net {

namespace {
// Per-shard fault-RNG streams: splitmix64's golden-gamma keeps the
// streams decorrelated while shard 0 keeps the exact legacy stream
// (0 * gamma == 0, so seed ^ 0 == seed).
std::uint64_t shard_seed(std::uint64_t seed, unsigned shard) {
  return seed ^ (0x9E3779B97F4A7C15ull * shard);
}
}  // namespace

Network::Network(sim::Simulator& sim, LinkConfig link, FaultConfig faults,
                 std::uint64_t seed)
    : sim_(sim), link_(link), faults_(faults), rng_(seed) {}

Network::Network(sim::ShardedSimulator& sharded, LinkConfig link,
                 FaultConfig faults, std::uint64_t seed)
    : sim_(sharded.shard(0)),
      sharded_(&sharded),
      link_(link),
      faults_(faults),
      rng_(seed) {
  shard_rngs_.reserve(sharded.shards());
  for (unsigned s = 0; s < sharded.shards(); ++s) {
    shard_rngs_.emplace_back(shard_seed(seed, s));
  }
  remote_ports_.assign(sharded.shards(), 0);
  // The fabric's minimum cross-shard latency: a packet leaving one shard
  // spends at least propagation + switch forwarding in flight before any
  // state on the destination shard is touched. This is the lookahead
  // contract; zero-delay links are rejected by validate_lookahead().
  sharded.constrain_lookahead(link_.propagation + link_.switch_latency);
}

void Network::set_attach_shard(unsigned shard) {
  assert(sharded_ == nullptr || shard < sharded_->shards());
  attach_shard_ = shard;
}

NodeId Network::attach(PacketHandler handler, const sim::Simulator* owner) {
  if (sharded_ != nullptr && owner != nullptr &&
      owner != &sharded_->shard(attach_shard_)) {
    std::fprintf(stderr,
                 "Network::attach: node's simulator is not attach shard %u's "
                 "engine — entity state must live on the shard its node is "
                 "attached to\n",
                 attach_shard_);
    std::abort();
  }
  Port port;
  port.handler = std::move(handler);
  port.shard = sharded_ != nullptr ? attach_shard_ : 0;
  ports_.push_back(std::move(port));
  if (sharded_ != nullptr) ++remote_ports_[attach_shard_];
  return static_cast<NodeId>(ports_.size() - 1);
}

void Network::set_local_only(NodeId node, bool local_only) {
  assert(node < ports_.size());
  Port& port = ports_[node];
  if (port.local_only == local_only) return;
  port.local_only = local_only;
  if (sharded_ == nullptr) return;
  if (local_only) {
    --remote_ports_[port.shard];
  } else {
    ++remote_ports_[port.shard];
  }
}

void Network::enable_adaptive_sync() {
  if (sharded_ == nullptr) return;
  for (unsigned s = 0; s < sharded_->shards(); ++s) {
    // Pure function of simulated state: the remote-capable census is
    // fixed after setup and next_event_time() is the shard's own queue.
    // A shard with no remote-capable nodes can never send off-shard, so
    // its outbound frontier is idle by construction.
    sharded_->set_eot_source(s, [this, s]() -> SimTime {
      return remote_ports_[s] == 0 ? kSimTimeMax
                                   : sharded_->shard(s).next_event_time();
    });
  }
  sharded_->set_adaptive_sync(true);
}

void Network::set_handler(NodeId node, PacketHandler handler) {
  assert(node < ports_.size());
  ports_[node].handler = std::move(handler);
}

SimDuration Network::serialization(Bytes size) const {
  return static_cast<SimDuration>(static_cast<double>(size) * 8.0 /
                                  link_.bandwidth_bps * 1e9);
}

void Network::trace(const Packet& packet, SimTime at, bool dropped) {
  if (tracer_ == nullptr) return;
  if (multi_shard()) {
    std::lock_guard<std::mutex> lk(trace_mu_);
    tracer_->record(packet, at, dropped);
  } else {
    tracer_->record(packet, at, dropped);
  }
}

void Network::send(Packet packet) {
  assert(packet.src < ports_.size() && packet.dst < ports_.size());
  if (!multi_shard()) {
    send_local(std::move(packet), sim_, rng_);
    return;
  }
  const unsigned src_shard = ports_[packet.src].shard;
  const unsigned dst_shard = ports_[packet.dst].shard;
  if (src_shard == dst_shard) {
    send_local(std::move(packet), sharded_->shard(src_shard),
               shard_rngs_[src_shard]);
    return;
  }
  send_cross(std::move(packet), src_shard, dst_shard);
}

void Network::send_local(Packet packet, sim::Simulator& sim, Rng& rng) {
  sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(packet.wire_size(), std::memory_order_relaxed);

  if (faults_.drop_probability > 0.0 &&
      rng.next_bool(faults_.drop_probability)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    trace(packet, sim.now(), true);
    return;
  }
  trace(packet, sim.now(), false);

  const SimDuration ser = serialization(packet.wire_size());
  Port& src = ports_[packet.src];
  Port& dst = ports_[packet.dst];

  // Uplink: wait for earlier transmissions from this node to finish.
  const SimTime uplink_start = std::max(sim.now(), src.uplink_free_at);
  const SimTime uplink_done = uplink_start + ser;
  src.uplink_free_at = uplink_done;

  // Switch forwarding, then the receiver's downlink port queue.
  const SimTime at_switch =
      uplink_done + link_.propagation + link_.switch_latency;
  const SimTime downlink_start = std::max(at_switch, dst.downlink_free_at);
  const SimTime downlink_done = downlink_start + ser;
  dst.downlink_free_at = downlink_done;

  SimTime arrival = downlink_done + link_.propagation;

  if (faults_.reorder_probability > 0.0 &&
      rng.next_bool(faults_.reorder_probability)) {
    arrival += static_cast<SimDuration>(
        rng.next_below(static_cast<std::uint64_t>(
            std::max<SimDuration>(1, faults_.reorder_max_extra_delay))));
  }

  sim.schedule_at(arrival, [this, packet = std::move(packet)]() {
    delivered_.fetch_add(1, std::memory_order_relaxed);
    const Port& port = ports_[packet.dst];
    if (port.handler) port.handler(packet);
  });
}

void Network::send_cross(Packet packet, unsigned src_shard,
                         unsigned dst_shard) {
  if (ports_[packet.src].local_only) {
    // The locality promise feeds adaptive EOT reports; breaking it could
    // deliver into another shard's past, so fail loudly in every mode.
    std::fprintf(stderr,
                 "Network::send_cross: node %llu was declared local-only "
                 "(set_local_only) but sent from shard %u to shard %u — fix "
                 "the locality declaration or the placement\n",
                 static_cast<unsigned long long>(packet.src), src_shard,
                 dst_shard);
    std::abort();
  }
  sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(packet.wire_size(), std::memory_order_relaxed);

  sim::Simulator& src_sim = sharded_->shard(src_shard);
  Rng& rng = shard_rngs_[src_shard];

  if (faults_.drop_probability > 0.0 &&
      rng.next_bool(faults_.drop_probability)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    trace(packet, src_sim.now(), true);
    return;
  }
  trace(packet, src_sim.now(), false);

  const SimDuration ser = serialization(packet.wire_size());
  Port& src = ports_[packet.src];

  // Uplink on the sender's shard: it owns the source port.
  const SimTime uplink_start = std::max(src_sim.now(), src.uplink_free_at);
  const SimTime uplink_done = uplink_start + ser;
  src.uplink_free_at = uplink_done;

  const SimTime at_switch =
      uplink_done + link_.propagation + link_.switch_latency;

  // Fault draws stay on the sender's shard so each shard's RNG stream is
  // consumed deterministically; the extra delay rides along.
  SimDuration extra = 0;
  if (faults_.reorder_probability > 0.0 &&
      rng.next_bool(faults_.reorder_probability)) {
    extra = static_cast<SimDuration>(
        rng.next_below(static_cast<std::uint64_t>(
            std::max<SimDuration>(1, faults_.reorder_max_extra_delay))));
  }

  // Downlink queueing and delivery on the destination's shard: it owns
  // the destination port. at_switch >= now + propagation + switch
  // latency, satisfying the lookahead contract.
  sharded_->post(
      src_shard, dst_shard, at_switch,
      sim::EventFn([this, packet = std::move(packet), ser, extra]() mutable {
        Port& dst = ports_[packet.dst];
        sim::Simulator& dst_sim = sharded_->shard(dst.shard);
        const SimTime downlink_start =
            std::max(dst_sim.now(), dst.downlink_free_at);
        const SimTime downlink_done = downlink_start + ser;
        dst.downlink_free_at = downlink_done;
        const SimTime arrival = downlink_done + link_.propagation + extra;
        dst_sim.schedule_at(arrival, [this, packet = std::move(packet)]() {
          delivered_.fetch_add(1, std::memory_order_relaxed);
          const Port& port = ports_[packet.dst];
          if (port.handler) port.handler(packet);
        });
      }));
}

}  // namespace lnic::net
