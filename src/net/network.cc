#include "net/network.h"

#include <cassert>
#include <utility>

namespace lnic::net {

Network::Network(sim::Simulator& sim, LinkConfig link, FaultConfig faults,
                 std::uint64_t seed)
    : sim_(sim), link_(link), faults_(faults), rng_(seed) {}

NodeId Network::attach(PacketHandler handler) {
  ports_.push_back(Port{std::move(handler), 0, 0});
  return static_cast<NodeId>(ports_.size() - 1);
}

void Network::set_handler(NodeId node, PacketHandler handler) {
  assert(node < ports_.size());
  ports_[node].handler = std::move(handler);
}

SimDuration Network::serialization(Bytes size) const {
  return static_cast<SimDuration>(static_cast<double>(size) * 8.0 /
                                  link_.bandwidth_bps * 1e9);
}

void Network::send(Packet packet) {
  assert(packet.src < ports_.size() && packet.dst < ports_.size());
  ++sent_;
  bytes_ += packet.wire_size();

  if (faults_.drop_probability > 0.0 &&
      rng_.next_bool(faults_.drop_probability)) {
    ++dropped_;
    if (tracer_ != nullptr) tracer_->record(packet, sim_.now(), true);
    return;
  }
  if (tracer_ != nullptr) tracer_->record(packet, sim_.now(), false);

  const SimDuration ser = serialization(packet.wire_size());
  Port& src = ports_[packet.src];
  Port& dst = ports_[packet.dst];

  // Uplink: wait for earlier transmissions from this node to finish.
  const SimTime uplink_start = std::max(sim_.now(), src.uplink_free_at);
  const SimTime uplink_done = uplink_start + ser;
  src.uplink_free_at = uplink_done;

  // Switch forwarding, then the receiver's downlink port queue.
  const SimTime at_switch =
      uplink_done + link_.propagation + link_.switch_latency;
  const SimTime downlink_start = std::max(at_switch, dst.downlink_free_at);
  const SimTime downlink_done = downlink_start + ser;
  dst.downlink_free_at = downlink_done;

  SimTime arrival = downlink_done + link_.propagation;

  if (faults_.reorder_probability > 0.0 &&
      rng_.next_bool(faults_.reorder_probability)) {
    arrival += static_cast<SimDuration>(
        rng_.next_below(static_cast<std::uint64_t>(
            std::max<SimDuration>(1, faults_.reorder_max_extra_delay))));
  }

  sim_.schedule_at(arrival, [this, packet = std::move(packet)]() {
    ++delivered_;
    const Port& port = ports_[packet.dst];
    if (port.handler) port.handler(packet);
  });
}

}  // namespace lnic::net
