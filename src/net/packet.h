// Packet and header model for the simulated fabric.
//
// Requests carry the λ-NIC lambda header (paper §4.1): the gateway inserts
// the workload ID of the destination lambda; the NIC match stage
// dispatches on it. Multi-packet payloads are fragmented and carry
// (frag_index, frag_count) so the NIC-side reorder buffer can reassemble
// out-of-order arrivals (paper §4.2.1 D3).
//
// Payloads are zero-copy: a Packet carries a BufferView into a
// refcounted immutable Buffer (common/buffer.h). fragment() slices the
// source buffer instead of copying it, so every fragment — and, after
// coalesce(), the reassembled body — shares the producer's storage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/trace.h"
#include "common/types.h"

namespace lnic::net {

using lnic::Buffer;
using lnic::BufferView;

/// Wire overhead of Ethernet + IPv4 + UDP framing, bytes.
constexpr Bytes kFrameOverhead = 14 + 20 + 8;
/// Size of the λ-NIC lambda header, bytes.
constexpr Bytes kLambdaHeaderSize = 24;
/// Largest payload per packet (jumbo frames disabled, as on the testbed).
constexpr Bytes kMaxPayload = 1400;

enum class PacketKind : std::uint8_t {
  kRequest,      // single-packet lambda RPC request
  kResponse,     // lambda RPC response
  kRdmaWrite,    // one segment of a multi-packet RDMA write
  kRdmaEvent,    // event RPC that triggers a lambda after RDMA completion
  kKvRequest,    // cache-server GET/SET issued by a key-value lambda
  kKvResponse,   // cache-server reply
  kControl,      // framework control traffic (deploy, raft, etcd)
};

const char* to_string(PacketKind kind);

/// λ-NIC lambda header: inserted by the gateway in front of each request.
struct LambdaHeader {
  WorkloadId workload_id = kInvalidWorkload;
  RequestId request_id = 0;
  std::uint32_t frag_index = 0;
  std::uint32_t frag_count = 1;
  /// Tenant namespace of the target lambda (0 = single-tenant legacy
  /// traffic). Packs into the header's reserved bits on the wire, so the
  /// modeled header size — and therefore all timing — is unchanged.
  TenantId tenant_id = kDefaultTenant;
  /// Distributed-tracing context (0 = untraced). Rides in the header the
  /// way W3C traceparent rides in HTTP; the modeled header size is
  /// unchanged so wire timing is identical with tracing on or off.
  trace::TraceId trace_id = trace::kInvalidTrace;
  trace::SpanId parent_span = trace::kInvalidSpan;
};

struct Packet {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  PacketKind kind = PacketKind::kRequest;
  LambdaHeader lambda;
  BufferView payload;

  /// Total on-the-wire size including framing.
  Bytes wire_size() const {
    return kFrameOverhead + kLambdaHeaderSize + payload.size();
  }
};

/// Builds a payload from a string (request bodies in examples/tests).
/// Returns a view adopting freshly built storage — callers hand it to
/// Packet/RPC APIs without a further copy.
BufferView make_payload(const std::string& text);
std::string payload_to_string(const BufferView& payload);

/// Splits `payload` into <=kMaxPayload fragments, all sharing `header`'s
/// workload/request IDs with frag_index/frag_count filled in. Fragments
/// are views into `payload`'s buffer — no bytes are copied.
std::vector<Packet> fragment(NodeId src, NodeId dst, PacketKind kind,
                             const LambdaHeader& header,
                             const BufferView& payload);

}  // namespace lnic::net
