// Packet tracing: a tcpdump for the simulated fabric. Attach a tracer to
// a Network to record every send (including drops) with timestamps;
// dump as a text table or query per-kind summaries. Used by tests,
// debugging sessions, and the examples' narration.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/packet.h"

namespace lnic::net {

class PacketTracer {
 public:
  struct Record {
    SimTime time = 0;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    PacketKind kind = PacketKind::kRequest;
    WorkloadId workload = kInvalidWorkload;
    RequestId request = 0;
    std::uint32_t frag_index = 0;
    std::uint32_t frag_count = 1;
    Bytes wire_bytes = 0;
    bool dropped = false;
  };

  /// Called by the Network on every send.
  void record(const Packet& packet, SimTime now, bool dropped);

  const std::vector<Record>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  /// Caps memory for long runs; older records are discarded FIFO.
  void set_capacity(std::size_t max_records) { capacity_ = max_records; }

  /// Per-kind packet and byte totals.
  struct KindSummary {
    std::uint64_t packets = 0;
    Bytes bytes = 0;
    std::uint64_t dropped = 0;
  };
  std::map<PacketKind, KindSummary> summarize() const;

  /// tcpdump-style text listing of up to `max_lines` records.
  std::string dump(std::size_t max_lines = 50) const;

 private:
  std::vector<Record> records_;
  std::size_t capacity_ = 1 << 20;
};

}  // namespace lnic::net
