// Packet tracing: a tcpdump for the simulated fabric. Attach a tracer to
// a Network to record every send (including drops) with timestamps;
// dump as a text table or query per-kind summaries. Used by tests,
// debugging sessions, and the examples' narration.
//
// Memory is bounded by a ring buffer: once `capacity` records are held,
// each new record evicts the oldest one (O(1), no reallocation storms
// over long simulations) and the eviction count is reported by dump().
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "common/types.h"
#include "net/packet.h"

namespace lnic::net {

class PacketTracer {
 public:
  struct Record {
    SimTime time = 0;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    PacketKind kind = PacketKind::kRequest;
    WorkloadId workload = kInvalidWorkload;
    RequestId request = 0;
    std::uint32_t frag_index = 0;
    std::uint32_t frag_count = 1;
    Bytes wire_bytes = 0;
    bool dropped = false;
  };

  /// Called by the Network on every send.
  void record(const Packet& packet, SimTime now, bool dropped);

  /// Retained records, oldest first (at most capacity of them).
  const std::deque<Record>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  /// Records evicted from the ring so far (0 until the ring wraps).
  std::uint64_t evicted() const { return evicted_; }
  void clear() {
    records_.clear();
    evicted_ = 0;
  }

  /// Caps memory for long runs; older records are evicted FIFO. Shrinks
  /// the ring immediately if it already holds more than `max_records`.
  void set_capacity(std::size_t max_records);
  std::size_t capacity() const { return capacity_; }

  /// Per-kind packet and byte totals (over the retained records).
  struct KindSummary {
    std::uint64_t packets = 0;
    Bytes bytes = 0;
    std::uint64_t dropped = 0;
  };
  std::map<PacketKind, KindSummary> summarize() const;

  /// tcpdump-style text listing of up to `max_lines` records; reports
  /// how many earlier records were evicted by the ring.
  std::string dump(std::size_t max_lines = 50) const;

 private:
  std::deque<Record> records_;
  std::size_t capacity_ = 1 << 20;
  std::uint64_t evicted_ = 0;
};

}  // namespace lnic::net
