// Star-topology fabric: every node hangs off one output-queued switch via
// a full-duplex link, mirroring the paper's testbed (five servers on an
// Arista 10 G switch, §6.1.2).
//
// Delivery latency of a packet =
//   serialization at the sender's uplink (queued behind earlier packets)
// + link propagation
// + switch forwarding latency
// + serialization at the receiver's downlink (also queued)
// + link propagation.
//
// A FaultInjector can drop or delay (reorder) packets, used by transport
// and Raft property tests.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "net/packet.h"
#include "net/trace.h"
#include "sim/simulator.h"

namespace lnic::net {

using PacketHandler = std::function<void(const Packet&)>;

struct LinkConfig {
  double bandwidth_bps = 10e9;           // 10 Gbps testbed links
  SimDuration propagation = 500;         // 0.5 us per hop
  SimDuration switch_latency = 800;      // store-and-forward + lookup
};

struct FaultConfig {
  double drop_probability = 0.0;
  double reorder_probability = 0.0;
  SimDuration reorder_max_extra_delay = 0;  // extra delay when reordered
};

class Network {
 public:
  Network(sim::Simulator& sim, LinkConfig link = {}, FaultConfig faults = {},
          std::uint64_t seed = 1);

  /// Registers a node; the returned NodeId addresses it in Packet::dst.
  NodeId attach(PacketHandler handler);

  /// Replaces the handler of an existing node (e.g. after worker restart).
  void set_handler(NodeId node, PacketHandler handler);

  /// Queues `packet` for delivery. src/dst must be attached nodes.
  void send(Packet packet);

  void set_faults(FaultConfig faults) { faults_ = faults; }

  /// Attaches a tracer recording every send (nullptr detaches). The
  /// tracer must outlive the network or be detached first.
  void set_tracer(PacketTracer* tracer) { tracer_ = tracer; }

  std::uint64_t packets_sent() const { return sent_; }
  std::uint64_t packets_dropped() const { return dropped_; }
  std::uint64_t packets_delivered() const { return delivered_; }
  std::uint64_t bytes_sent() const { return bytes_; }

 private:
  SimDuration serialization(Bytes size) const;

  sim::Simulator& sim_;
  LinkConfig link_;
  FaultConfig faults_;
  Rng rng_;
  PacketTracer* tracer_ = nullptr;

  struct Port {
    PacketHandler handler;
    SimTime uplink_free_at = 0;
    SimTime downlink_free_at = 0;
  };
  std::vector<Port> ports_;

  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace lnic::net
