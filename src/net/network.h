// Star-topology fabric: every node hangs off one output-queued switch via
// a full-duplex link, mirroring the paper's testbed (five servers on an
// Arista 10 G switch, §6.1.2).
//
// Delivery latency of a packet =
//   serialization at the sender's uplink (queued behind earlier packets)
// + link propagation
// + switch forwarding latency
// + serialization at the receiver's downlink (also queued)
// + link propagation.
//
// A FaultInjector can drop or delay (reorder) packets, used by transport
// and Raft property tests.
//
// Sharded mode: constructed over a ShardedSimulator, the network routes
// each send to the destination node's shard. The sender's shard computes
// uplink serialization (it owns the source port), then posts a remote
// event at the packet's switch-arrival time; the destination shard
// applies downlink queueing and delivery (it owns the destination port).
// The minimum cross-shard latency — link propagation + switch forwarding
// — is registered as the simulator's lookahead, making the physical link
// delay the conservative-sync contract. With one shard the classic
// synchronous path runs unchanged, byte-for-byte.
//
// Adaptive sync: set_local_only() lets topology-aware callers declare
// nodes that never send off-shard; enable_adaptive_sync() turns those
// declarations into per-shard EOT sources so idle-frontier shards stop
// capping the engine's window length (see sim/sharded.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "net/packet.h"
#include "net/trace.h"
#include "sim/sharded.h"
#include "sim/simulator.h"

namespace lnic::net {

using PacketHandler = std::function<void(const Packet&)>;

struct LinkConfig {
  double bandwidth_bps = 10e9;           // 10 Gbps testbed links
  SimDuration propagation = 500;         // 0.5 us per hop
  SimDuration switch_latency = 800;      // store-and-forward + lookup
};

struct FaultConfig {
  double drop_probability = 0.0;
  double reorder_probability = 0.0;
  SimDuration reorder_max_extra_delay = 0;  // extra delay when reordered
};

class Network {
 public:
  Network(sim::Simulator& sim, LinkConfig link = {}, FaultConfig faults = {},
          std::uint64_t seed = 1);

  /// Sharded fabric: nodes attach to the shard selected by
  /// set_attach_shard() and sends route to the destination's shard.
  /// Registers propagation + switch latency as the simulator's lookahead.
  Network(sim::ShardedSimulator& sharded, LinkConfig link = {},
          FaultConfig faults = {}, std::uint64_t seed = 1);

  /// Selects the shard that subsequently attached nodes live on (sharded
  /// mode only; ignored otherwise). A node's handler runs on its shard's
  /// thread, and all of its simulator state must live there too.
  void set_attach_shard(unsigned shard);

  /// Registers a node; the returned NodeId addresses it in Packet::dst.
  /// `owner` (optional) is the simulator the node schedules on; in
  /// sharded mode it must be the current attach shard's engine — passing
  /// it lets the fabric catch node→shard affinity bugs at attach time.
  NodeId attach(PacketHandler handler,
                const sim::Simulator* owner = nullptr);

  /// Replaces the handler of an existing node (e.g. after worker restart).
  /// In sharded mode this must run on the node's own shard (or between
  /// runs): the handler is read by that shard's thread.
  void set_handler(NodeId node, PacketHandler handler);

  /// Declares that `node` never sends to a node on another shard (e.g. a
  /// cache that only its co-sharded worker talks to, or a client whose
  /// one peer is co-sharded). Default false — every node is assumed
  /// remote-capable, which is always sound. A shard whose attached nodes
  /// are all local-only has an idle outbound frontier, so its adaptive
  /// EOT report is +inf and it never caps a window. The declaration is a
  /// hard promise: a local-only node sending cross-shard aborts, in
  /// every mode, so a misdeclaration can never silently corrupt an
  /// adaptive replay. Call during setup (before runs).
  void set_local_only(NodeId node, bool local_only);
  bool local_only(NodeId node) const { return ports_[node].local_only; }

  /// Turns on EOT-based adaptive window extension (sharded mode only;
  /// no-op otherwise): registers one EOT source per shard — +inf when
  /// the shard has zero remote-capable nodes attached, else the shard's
  /// next_event_time() (the earliest anything can run there, hence the
  /// earliest it could send). Then enables adaptive sync on the engine.
  /// Call after attaching nodes and declaring locality.
  void enable_adaptive_sync();

  /// Queues `packet` for delivery. src/dst must be attached nodes.
  void send(Packet packet);

  /// The shard a node was attached on (0 in unsharded mode).
  unsigned shard_of(NodeId node) const {
    return sharded_ != nullptr ? ports_[node].shard : 0;
  }

  void set_faults(FaultConfig faults) { faults_ = faults; }

  /// Attaches a tracer recording every send (nullptr detaches). The
  /// tracer must outlive the network or be detached first.
  void set_tracer(PacketTracer* tracer) { tracer_ = tracer; }

  std::uint64_t packets_sent() const {
    return sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t packets_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::uint64_t packets_delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_sent() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  SimDuration serialization(Bytes size) const;

  bool multi_shard() const {
    return sharded_ != nullptr && sharded_->shards() > 1;
  }

  /// Classic synchronous path: both ports reserved at send time, one
  /// delivery event on `sim`. Used unsharded and for same-shard traffic.
  void send_local(Packet packet, sim::Simulator& sim, Rng& rng);
  /// Cross-shard path: uplink here, downlink + delivery posted to the
  /// destination shard at switch-arrival time.
  void send_cross(Packet packet, unsigned src_shard, unsigned dst_shard);

  void trace(const Packet& packet, SimTime at, bool dropped);

  sim::Simulator& sim_;                      // shard 0 in sharded mode
  sim::ShardedSimulator* sharded_ = nullptr;
  unsigned attach_shard_ = 0;
  LinkConfig link_;
  FaultConfig faults_;
  Rng rng_;                    // fault draws, unsharded path
  std::vector<Rng> shard_rngs_;  // fault draws per source shard (sharded)
  PacketTracer* tracer_ = nullptr;
  std::mutex trace_mu_;        // serializes tracer records across shards

  struct Port {
    PacketHandler handler;
    SimTime uplink_free_at = 0;    // written only by the node's shard
    SimTime downlink_free_at = 0;  // written only by the node's shard
    unsigned shard = 0;
    bool local_only = false;       // promised never to send cross-shard
  };
  std::vector<Port> ports_;

  // Remote-capable (not local-only) attached nodes per shard; a zero
  // entry makes that shard's EOT source report an idle frontier. Written
  // during setup, read by the coordinator between windows.
  std::vector<std::size_t> remote_ports_;

  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace lnic::net
