#include "net/packet.h"

#include <algorithm>

namespace lnic::net {

const char* to_string(PacketKind kind) {
  switch (kind) {
    case PacketKind::kRequest: return "request";
    case PacketKind::kResponse: return "response";
    case PacketKind::kRdmaWrite: return "rdma-write";
    case PacketKind::kRdmaEvent: return "rdma-event";
    case PacketKind::kKvRequest: return "kv-request";
    case PacketKind::kKvResponse: return "kv-response";
    case PacketKind::kControl: return "control";
  }
  return "?";
}

BufferView make_payload(const std::string& text) {
  // The string→bytes conversion is the only copy; the returned view
  // adopts the vector, so downstream packet/RPC plumbing shares it.
  return BufferView(std::vector<std::uint8_t>(text.begin(), text.end()));
}

std::string payload_to_string(const BufferView& payload) {
  return std::string(payload.begin(), payload.end());
}

std::vector<Packet> fragment(NodeId src, NodeId dst, PacketKind kind,
                             const LambdaHeader& header,
                             const BufferView& payload) {
  std::vector<Packet> out;
  const std::size_t total = payload.size();
  const std::size_t count =
      total == 0 ? 1 : (total + kMaxPayload - 1) / kMaxPayload;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Packet p;
    p.src = src;
    p.dst = dst;
    p.kind = kind;
    p.lambda = header;
    p.lambda.frag_index = static_cast<std::uint32_t>(i);
    p.lambda.frag_count = static_cast<std::uint32_t>(count);
    const std::size_t begin = i * kMaxPayload;
    const std::size_t end = std::min(total, begin + kMaxPayload);
    p.payload = payload.slice(begin, end - begin);
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace lnic::net
