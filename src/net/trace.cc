#include "net/trace.h"

#include <sstream>

namespace lnic::net {

void PacketTracer::set_capacity(std::size_t max_records) {
  capacity_ = max_records;
  while (records_.size() > capacity_) {
    records_.pop_front();
    ++evicted_;
  }
}

void PacketTracer::record(const Packet& packet, SimTime now, bool dropped) {
  if (capacity_ == 0) {
    ++evicted_;
    return;
  }
  while (records_.size() >= capacity_) {
    records_.pop_front();
    ++evicted_;
  }
  Record r;
  r.time = now;
  r.src = packet.src;
  r.dst = packet.dst;
  r.kind = packet.kind;
  r.workload = packet.lambda.workload_id;
  r.request = packet.lambda.request_id;
  r.frag_index = packet.lambda.frag_index;
  r.frag_count = packet.lambda.frag_count;
  r.wire_bytes = packet.wire_size();
  r.dropped = dropped;
  records_.push_back(r);
}

std::map<PacketKind, PacketTracer::KindSummary> PacketTracer::summarize()
    const {
  std::map<PacketKind, KindSummary> out;
  for (const auto& r : records_) {
    KindSummary& s = out[r.kind];
    ++s.packets;
    s.bytes += r.wire_bytes;
    if (r.dropped) ++s.dropped;
  }
  return out;
}

std::string PacketTracer::dump(std::size_t max_lines) const {
  std::ostringstream out;
  if (evicted_ > 0) {
    out << "[" << evicted_ << " earlier record(s) evicted by ring buffer"
        << " (capacity " << capacity_ << ")]\n";
  }
  const std::size_t start =
      records_.size() > max_lines ? records_.size() - max_lines : 0;
  for (std::size_t i = start; i < records_.size(); ++i) {
    const Record& r = records_[i];
    out << to_us(r.time) << "us " << r.src << "->" << r.dst << " "
        << to_string(r.kind) << " wid=" << r.workload << " req=" << r.request;
    if (r.frag_count > 1) {
      out << " frag " << r.frag_index + 1 << "/" << r.frag_count;
    }
    out << " " << r.wire_bytes << "B";
    if (r.dropped) out << " DROPPED";
    out << "\n";
  }
  return out.str();
}

}  // namespace lnic::net
