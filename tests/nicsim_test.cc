// Tests for the SmartNIC model: dispatch, run-to-completion semantics,
// firmware-load downtime, RDMA reassembly under reordering, external KV
// calls, WFQ fairness, and resource accounting.
#include <gtest/gtest.h>

#include "compiler/pipeline.h"
#include "kvstore/cache_server.h"
#include "net/network.h"
#include "nicsim/nic.h"
#include "sim/simulator.h"
#include "workloads/image.h"
#include "workloads/lambdas.h"

namespace lnic::nicsim {
namespace {

using net::Packet;
using net::PacketKind;
using workloads::encode_image_request;
using workloads::encode_kv_request;
using workloads::encode_web_request;

struct Rig {
  sim::Simulator sim;
  net::Network network{sim};
  std::unique_ptr<SmartNic> nic;
  std::unique_ptr<kvstore::CacheServer> cache;
  NodeId client = kInvalidNode;
  std::vector<Packet> responses;
  workloads::WorkloadBundle bundle;

  explicit Rig(NicConfig config = {}) {
    nic = std::make_unique<SmartNic>(sim, network, config);
    cache = std::make_unique<kvstore::CacheServer>(sim, network);
    nic->set_kv_server(cache->node());
    client = network.attach([this](const Packet& p) {
      if (p.kind == PacketKind::kResponse) responses.push_back(p);
    });
    bundle = workloads::make_standard_workloads();
    auto compiled = compiler::compile(bundle.spec, std::move(bundle.lambdas));
    EXPECT_TRUE(compiled.ok());
    EXPECT_TRUE(nic->deploy(std::move(compiled).value()).ok());
    sim.run_until(seconds(20));  // firmware load window passes
  }

  void send(WorkloadId wid, std::vector<std::uint8_t> body,
            RequestId request_id, PacketKind kind = PacketKind::kRequest) {
    net::LambdaHeader hdr;
    hdr.workload_id = wid;
    hdr.request_id = request_id;
    auto frags = net::fragment(client, nic->node(), kind, hdr, body);
    for (auto& f : frags) network.send(std::move(f));
  }
};

TEST(SmartNic, ServesWebRequest) {
  Rig rig;
  rig.send(workloads::kWebServerId, encode_web_request(1), 1);
  rig.sim.run();
  ASSERT_EQ(rig.responses.size(), 1u);
  const auto& body = rig.responses[0].payload;
  ASSERT_EQ(body.size(), 8u + workloads::kWebPageBytes);
  const std::string page(body.begin() + 8, body.end());
  EXPECT_EQ(page, workloads::expected_web_page(rig.bundle, 1));
  EXPECT_EQ(rig.nic->stats().requests_completed, 1u);
}

TEST(SmartNic, SubMillisecondWebLatency) {
  Rig rig;
  const SimTime start = rig.sim.now();
  rig.send(workloads::kWebServerId, encode_web_request(0), 1);
  rig.sim.run();
  ASSERT_EQ(rig.responses.size(), 1u);
  // The architectural claim: on-NIC execution completes in tens of
  // microseconds, no OS stack involved.
  EXPECT_LT(rig.sim.now() - start, milliseconds(1));
}

TEST(SmartNic, KvLambdaRoundTripsThroughCache) {
  Rig rig;
  rig.cache->put(5, 5555);
  rig.send(workloads::kKvGetId, encode_kv_request(5), 2);
  rig.sim.run();
  ASSERT_EQ(rig.responses.size(), 1u);
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(rig.responses[0].payload[i]) << (8 * i);
  }
  EXPECT_EQ(value, 5555u);
  EXPECT_EQ(rig.cache->stats().hits, 1u);
}

TEST(SmartNic, KvSetWritesThrough) {
  Rig rig;
  rig.send(workloads::kKvSetId, encode_kv_request(77, 890), 3);
  rig.sim.run();
  std::uint64_t v = 0;
  EXPECT_TRUE(rig.cache->get(77, v));
  EXPECT_EQ(v, 890u);
}

TEST(SmartNic, ImageArrivesViaRdmaAndTransforms) {
  Rig rig;
  const auto img = workloads::make_test_image(64, 64, 2);
  rig.send(workloads::kImageId,
           encode_image_request(img.width, img.height, img.rgba), 4,
           PacketKind::kRdmaWrite);
  rig.sim.run();
  // The grayscale response spans multiple fragments; reassemble.
  std::vector<std::uint8_t> gray;
  std::map<std::uint32_t, net::BufferView> parts;
  for (const auto& p : rig.responses) {
    parts[p.lambda.frag_index] = p.payload;
  }
  for (auto& [idx, bytes] : parts) {
    (void)idx;
    gray.insert(gray.end(), bytes.begin(), bytes.end());
  }
  EXPECT_EQ(gray, workloads::to_grayscale(img));
}

TEST(SmartNic, RdmaReassemblyToleratesReordering) {
  NicConfig config;
  Rig rig(config);
  rig.network.set_faults(net::FaultConfig{
      .reorder_probability = 0.7,
      .reorder_max_extra_delay = microseconds(300)});
  const auto img = workloads::make_test_image(64, 64, 9);
  rig.send(workloads::kImageId,
           encode_image_request(img.width, img.height, img.rgba), 5,
           PacketKind::kRdmaWrite);
  rig.sim.run();
  std::map<std::uint32_t, net::BufferView> parts;
  for (const auto& p : rig.responses) parts[p.lambda.frag_index] = p.payload;
  std::vector<std::uint8_t> gray;
  for (auto& [idx, bytes] : parts) {
    (void)idx;
    gray.insert(gray.end(), bytes.begin(), bytes.end());
  }
  EXPECT_EQ(gray, workloads::to_grayscale(img));
}

TEST(SmartNic, DropsRequestsDuringFirmwareLoad) {
  NicConfig config;  // hot swap off: 15 s load window
  sim::Simulator sim;
  net::Network network(sim);
  SmartNic nic(sim, network, config);
  const NodeId client = network.attach(nullptr);
  auto bundle = workloads::make_standard_workloads();
  auto compiled = compiler::compile(bundle.spec, std::move(bundle.lambdas));
  ASSERT_TRUE(nic.deploy(std::move(compiled).value()).ok());
  EXPECT_TRUE(nic.down());
  Packet p;
  p.src = client;
  p.dst = nic.node();
  p.kind = PacketKind::kRequest;
  p.lambda.workload_id = workloads::kWebServerId;
  p.payload = encode_web_request(0);
  network.send(p);
  sim.run_until(seconds(1));
  EXPECT_EQ(nic.stats().requests_dropped_down, 1u);
  sim.run_until(seconds(16));
  EXPECT_FALSE(nic.down());
}

TEST(SmartNic, HotSwapAvoidsDowntime) {
  NicConfig config;
  config.allow_hot_swap = true;  // §7 future-work ablation
  sim::Simulator sim;
  net::Network network(sim);
  SmartNic nic(sim, network, config);
  auto bundle = workloads::make_standard_workloads();
  auto compiled = compiler::compile(bundle.spec, std::move(bundle.lambdas));
  ASSERT_TRUE(nic.deploy(std::move(compiled).value()).ok());
  EXPECT_FALSE(nic.down());
}

TEST(SmartNic, RejectsOversizedFirmware) {
  NicConfig config;
  config.instr_store_words = 100;
  sim::Simulator sim;
  net::Network network(sim);
  SmartNic nic(sim, network, config);
  auto bundle = workloads::make_standard_workloads();
  auto compiled = compiler::compile(bundle.spec, std::move(bundle.lambdas));
  ASSERT_TRUE(compiled.ok());
  EXPECT_FALSE(nic.deploy(std::move(compiled).value()).ok());
  EXPECT_FALSE(nic.deployed());
}

TEST(SmartNic, UnknownWorkloadGoesToHostPath) {
  Rig rig;
  rig.send(9999, encode_web_request(0), 6);
  rig.sim.run();
  EXPECT_TRUE(rig.responses.empty());
  EXPECT_EQ(rig.nic->stats().requests_to_host, 1u);
}

TEST(SmartNic, RunToCompletionNoInterleavingLoss) {
  // Flood more requests than threads; every one completes, none lost.
  Rig rig;
  const int n = 2000;  // > 432 lambda threads
  for (int i = 0; i < n; ++i) {
    rig.send(workloads::kWebServerId, encode_web_request(i & 3),
             static_cast<RequestId>(i + 10));
  }
  rig.sim.run();
  EXPECT_EQ(rig.responses.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(rig.nic->stats().requests_dropped_queue, 0u);
}

TEST(SmartNic, QueueOverflowDropsExcess) {
  NicConfig config;
  config.max_queue_depth = 4;
  config.islands = 1;
  config.cores_per_island = 3;
  config.reserved_cores = 2;  // 1 lambda core x 8 threads
  Rig rig(config);
  for (int i = 0; i < 100; ++i) {
    rig.send(workloads::kWebServerId, encode_web_request(0),
             static_cast<RequestId>(i + 1));
  }
  rig.sim.run();
  EXPECT_GT(rig.nic->stats().requests_dropped_queue, 0u);
  EXPECT_EQ(rig.responses.size() + rig.nic->stats().requests_dropped_queue,
            100u);
}

TEST(SmartNic, MemoryAccountingTracksFirmwareAndImages) {
  Rig rig;
  const Bytes base = rig.nic->memory_in_use();
  EXPECT_GT(base, 0u);  // firmware + globals
  EXPECT_EQ(rig.nic->firmware_bytes() > 0, true);
  // A large in-flight image raises the high-water mark.
  const auto img = workloads::make_test_image(512, 512, 1);
  rig.send(workloads::kImageId,
           encode_image_request(img.width, img.height, img.rgba), 7,
           PacketKind::kRdmaWrite);
  rig.sim.run();
  EXPECT_GE(rig.nic->stats().peak_inflight_bytes, img.byte_size());
  // Released after completion.
  EXPECT_EQ(rig.nic->memory_in_use(), base);
}

TEST(SmartNic, WfqSharesServiceBetweenWorkloads) {
  // One lambda core, two workloads, skewed 3:1 weights: completions
  // should track the weights while both queues are backlogged.
  NicConfig config;
  config.islands = 1;
  config.cores_per_island = 3;
  config.reserved_cores = 2;
  config.threads_per_core = 2;
  config.dispatch = DispatchPolicy::kWfq;
  config.max_queue_depth = 100000;
  Rig rig(config);
  rig.nic->set_drr_weights({{workloads::kWebServerId, 3},
                            {workloads::kKvGetId, 1}});
  for (int i = 0; i < 400; ++i) {
    rig.send(workloads::kWebServerId, encode_web_request(0),
             static_cast<RequestId>(1000 + i));
    rig.send(workloads::kKvGetId, encode_kv_request(1),
             static_cast<RequestId>(5000 + i));
  }
  // Run long enough for a few hundred completions, then inspect mix.
  rig.sim.run_until(seconds(21));
  std::size_t web = 0, kv = 0;
  for (const auto& p : rig.responses) {
    if (p.lambda.workload_id == workloads::kWebServerId) ++web;
    if (p.lambda.workload_id == workloads::kKvGetId) ++kv;
  }
  ASSERT_GT(web + kv, 50u);
  if (kv > 0 && web + kv < 800) {  // both still backlogged at some point
    const double ratio = static_cast<double>(web) / static_cast<double>(kv);
    EXPECT_GT(ratio, 1.5);
  }
}

TEST(SmartNic, PipelinedModeServesCorrectly) {
  // §5 footnote 4 extension: dedicated parse/match cores in front of the
  // lambda pool; responses must be byte-identical to RTC mode.
  NicConfig config;
  config.pipeline_stages = true;
  config.parse_match_cores = 2;
  Rig rig(config);
  rig.send(workloads::kWebServerId, encode_web_request(1), 1);
  rig.sim.run();
  ASSERT_EQ(rig.responses.size(), 1u);
  const auto& body = rig.responses[0].payload;
  const std::string page(body.begin() + 8, body.end());
  EXPECT_EQ(page, workloads::expected_web_page(rig.bundle, 1));
}

TEST(SmartNic, PipelinedModeReducesLambdaThreads) {
  NicConfig rtc;
  NicConfig piped = rtc;
  piped.pipeline_stages = true;
  piped.parse_match_cores = 3;
  EXPECT_EQ(piped.lambda_threads() + 3 * piped.threads_per_core,
            rtc.lambda_threads());
  EXPECT_EQ(piped.parse_threads(), 3u * piped.threads_per_core);
}

TEST(SmartNic, PipelinedBurstCompletesEverything) {
  NicConfig config;
  config.pipeline_stages = true;
  config.parse_match_cores = 1;
  config.islands = 1;
  config.cores_per_island = 4;
  config.reserved_cores = 2;
  Rig rig(config);
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    rig.send(workloads::kWebServerId, encode_web_request(i & 3),
             static_cast<RequestId>(i + 10));
  }
  rig.sim.run();
  EXPECT_EQ(rig.responses.size(), static_cast<std::size_t>(n));
}

TEST(SmartNic, ServiceCyclesRecorded) {
  Rig rig;
  rig.send(workloads::kWebServerId, encode_web_request(0), 1);
  rig.sim.run();
  ASSERT_EQ(rig.nic->stats().service_cycles.count(), 1u);
  EXPECT_GT(rig.nic->stats().service_cycles.mean(), 100.0);
}

// ----------------------------------------------- tenancy and DRR fixes

/// Rig over a web farm (identical lambdas, workload IDs 1..count): with
/// uniform service times, completion order equals DRR pop order, which
/// the scheduler tests below assert on directly.
struct FarmRig {
  sim::Simulator sim;
  net::Network network{sim};
  std::unique_ptr<SmartNic> nic;
  NodeId client = kInvalidNode;
  std::vector<Packet> responses;

  FarmRig(NicConfig config, std::uint32_t farm) {
    nic = std::make_unique<SmartNic>(sim, network, config);
    client = network.attach([this](const Packet& p) {
      if (p.kind == PacketKind::kResponse) responses.push_back(p);
    });
    auto bundle = workloads::make_web_farm(farm);
    auto compiled = compiler::compile(bundle.spec, std::move(bundle.lambdas));
    EXPECT_TRUE(compiled.ok());
    EXPECT_TRUE(nic->deploy(std::move(compiled).value()).ok());
    sim.run_until(seconds(20));
  }

  void send(WorkloadId wid, RequestId request_id) {
    net::LambdaHeader hdr;
    hdr.workload_id = wid;
    hdr.request_id = request_id;
    auto frags = net::fragment(client, nic->node(), PacketKind::kRequest, hdr,
                               encode_web_request(0));
    for (auto& f : frags) network.send(std::move(f));
  }
};

NicConfig one_thread_wfq() {
  NicConfig config;
  config.islands = 1;
  config.cores_per_island = 3;
  config.reserved_cores = 2;
  config.threads_per_core = 1;  // exactly one lambda thread: serial pops
  config.dispatch = DispatchPolicy::kWfq;
  config.max_queue_depth = 100000;
  return config;
}

TEST(SmartNic, DrrSharesServiceBetweenTenants) {
  // Three identical web lambdas assigned to tenants weighted 4:2:1.
  // Service times are uniform, so completions must track the weights
  // while every tenant stays backlogged.
  FarmRig rig(one_thread_wfq(), 3);
  rig.nic->set_tenant(1, 10);
  rig.nic->set_tenant(2, 20);
  rig.nic->set_tenant(3, 30);
  rig.nic->set_drr_weights({{10, 4}, {20, 2}, {30, 1}});
  for (int i = 0; i < 2000; ++i) {
    for (WorkloadId wid = 1; wid <= 3; ++wid) {
      rig.send(wid, static_cast<RequestId>(10000 * wid + i));
    }
  }
  rig.sim.run_until(rig.sim.now() + milliseconds(20));
  std::size_t done[4] = {0, 0, 0, 0};
  for (const auto& p : rig.responses) ++done[p.lambda.workload_id];
  ASSERT_GT(done[3], 10u);
  ASSERT_LT(done[1] + done[2] + done[3], 6000u);  // all still backlogged
  const double hi = static_cast<double>(done[1]) / static_cast<double>(done[2]);
  const double lo = static_cast<double>(done[2]) / static_cast<double>(done[3]);
  EXPECT_GT(hi, 1.7);
  EXPECT_LT(hi, 2.3);
  EXPECT_GT(lo, 1.7);
  EXPECT_LT(lo, 2.3);
  // Completions are accounted per scheduling class = tenant id.
  EXPECT_EQ(rig.nic->stats().completed_by_class.count(10), 1u);
  EXPECT_EQ(rig.nic->stats().completed_by_class.count(30), 1u);
  EXPECT_EQ(rig.nic->stats().completed_by_class.count(1), 0u);
}

TEST(SmartNic, DrrDeficitResetsWhenQueueDrains) {
  // Regression for the stale-deficit bug: a class that drained its queue
  // used to keep unspent credit and burst ahead when it returned.
  // Weights w1=3, w2=1, one thread. A lone w1 request drains w1's queue
  // with 2 credits left. Then 5 w1 + 1 w2 queue up while the thread is
  // busy. Fixed DRR pops W1 W1 W1 W2 W1 W1 (w2's top-up credit is spent
  // in round order); the stale deficit made it W1 x5 then W2.
  FarmRig rig(one_thread_wfq(), 2);
  rig.nic->set_drr_weights({{1, 3}, {2, 1}});
  rig.send(1, 1);  // prime: drains w1's queue mid-round
  for (RequestId id = 2; id <= 6; ++id) rig.send(1, id);
  rig.send(2, 7);
  rig.sim.run();
  ASSERT_EQ(rig.responses.size(), 7u);
  std::vector<WorkloadId> order;
  for (const auto& p : rig.responses) order.push_back(p.lambda.workload_id);
  EXPECT_EQ(order, (std::vector<WorkloadId>{1, 1, 1, 1, 2, 1, 1}));
}

TEST(SmartNic, UndeployTenantDropsQueuedAndCleansScheduler) {
  FarmRig rig(one_thread_wfq(), 2);
  rig.nic->set_tenant(1, 5);
  rig.nic->set_drr_weights({{5, 2}, {2, 1}});
  for (RequestId id = 1; id <= 500; ++id) rig.send(1, id);
  for (RequestId id = 501; id <= 510; ++id) rig.send(2, id);
  // Let a few complete, then evict tenant 5 with most of its backlog
  // still queued.
  rig.sim.run_until(rig.sim.now() + microseconds(500));
  rig.nic->undeploy_tenant(5);
  EXPECT_EQ(rig.nic->tenant_of(1), kDefaultTenant);
  EXPECT_GT(rig.nic->stats().requests_dropped_undeploy, 0u);
  // The evicted class's scheduler state is erased, not left as an empty
  // queue; tenant 2's class (workload 2 has no tenant) lives on.
  EXPECT_LE(rig.nic->drr_class_count(), 1u);
  rig.sim.run();
  // Tenant 2's traffic was untouched.
  std::size_t w2 = 0;
  for (const auto& p : rig.responses) w2 += p.lambda.workload_id == 2;
  EXPECT_EQ(w2, 10u);
  // Every workload-1 request either completed or was dropped by the
  // eviction (arrivals after it fall back to the workload-id class).
  const std::size_t served = rig.responses.size() - w2;
  EXPECT_EQ(served + rig.nic->stats().requests_dropped_undeploy, 500u);
}

TEST(SmartNic, TenantQuotaRejectsDeployAndPreservesOldFirmware) {
  Rig rig;  // standard workloads already serving, no tenants yet
  // Assign the web lambda to tenant 9 with an impossible quota, then
  // hot-swap: admission must reject before any state changes.
  rig.nic->set_tenant(workloads::kWebServerId, 9);
  rig.nic->set_tenant_quota(9, TenantQuota{.instr_store_words = 1});
  auto bundle = workloads::make_standard_workloads();
  auto compiled = compiler::compile(bundle.spec, std::move(bundle.lambdas));
  ASSERT_TRUE(compiled.ok());
  auto swap = rig.nic->deploy(std::move(compiled).value());
  ASSERT_FALSE(swap.ok());
  EXPECT_NE(swap.error().message.find("tenant 9"), std::string::npos);
  // The old firmware is still serving — no downtime from the rejection.
  rig.send(workloads::kWebServerId, encode_web_request(1), 1);
  rig.sim.run();
  ASSERT_EQ(rig.responses.size(), 1u);

  // A generous quota admits the same bundle and records usage.
  rig.nic->set_tenant_quota(9, TenantQuota{.instr_store_words = 1 << 20,
                                           .emem_bytes = 1 << 30});
  bundle = workloads::make_standard_workloads();
  compiled = compiler::compile(bundle.spec, std::move(bundle.lambdas));
  ASSERT_TRUE(compiled.ok());
  EXPECT_TRUE(rig.nic->deploy(std::move(compiled).value()).ok());
  const TenantUsage* usage = rig.nic->tenant_usage(9);
  ASSERT_NE(usage, nullptr);
  EXPECT_GT(usage->instr_words, 0u);
}

}  // namespace
}  // namespace lnic::nicsim
