// Tests for the open-loop load-generation subsystem: arrival-process
// rates and determinism, Zipf popularity shape, payload distributions,
// trace round-trips and synthesis, replay ordering, SLO accounting, and
// — the property the subsystem exists for — coordinated-omission-safe
// latency under a stalled server.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "loadgen/arrival.h"
#include "loadgen/generator.h"
#include "loadgen/popularity.h"
#include "loadgen/slo.h"
#include "loadgen/trace.h"
#include "sim/simulator.h"

namespace lnic::loadgen {
namespace {

// ------------------------------------------------------------- arrivals

std::vector<SimTime> arrival_times(const ArrivalSpec& spec,
                                   std::uint64_t seed, SimDuration window) {
  auto process = make_arrivals(spec, seed);
  std::vector<SimTime> times;
  SimTime t = 0;
  for (;;) {
    t += process->next_gap();
    if (t > window) break;
    times.push_back(t);
  }
  return times;
}

TEST(Arrivals, FixedRateMatchesConfiguredRate) {
  const auto times =
      arrival_times(ArrivalSpec::fixed(10000.0), 1, seconds(1));
  EXPECT_EQ(times.size(), 10000u);
  // Constant gap, exactly the hand-rolled 1e9/rate spacing.
  EXPECT_EQ(times[0], 100000);
  EXPECT_EQ(times[1] - times[0], 100000);
}

TEST(Arrivals, PoissonEmpiricalRateWithinTolerance) {
  const double rate = 20000.0;
  const auto times =
      arrival_times(ArrivalSpec::poisson(rate), 42, seconds(2));
  const double empirical = static_cast<double>(times.size()) / 2.0;
  EXPECT_NEAR(empirical, rate, 0.05 * rate);
}

TEST(Arrivals, OnOffEmpiricalRateNearDwellWeightedMean) {
  const ArrivalSpec spec = ArrivalSpec::on_off(
      8000.0, 1000.0, milliseconds(20), milliseconds(30));
  const double expected = spec.mean_rate_rps();
  EXPECT_NEAR(expected, (8000.0 * 20 + 1000.0 * 30) / 50.0, 1e-9);
  const auto times = arrival_times(spec, 7, seconds(10));
  const double empirical = static_cast<double>(times.size()) / 10.0;
  EXPECT_NEAR(empirical, expected, 0.15 * expected);
}

TEST(Arrivals, DeterministicUnderSeedDistinctAcrossSeeds) {
  const ArrivalSpec spec = ArrivalSpec::poisson(5000.0);
  const auto a = arrival_times(spec, 9, milliseconds(200));
  const auto b = arrival_times(spec, 9, milliseconds(200));
  const auto c = arrival_times(spec, 10, milliseconds(200));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Arrivals, OnOffIsBurstierThanPoisson) {
  // Squared coefficient of variation of inter-arrival gaps: ~1 for
  // Poisson, > 1 for the on-off modulated process.
  auto cv2 = [](const std::vector<SimTime>& times) {
    std::vector<double> gaps;
    for (std::size_t i = 1; i < times.size(); ++i) {
      gaps.push_back(static_cast<double>(times[i] - times[i - 1]));
    }
    double mean = 0.0;
    for (double g : gaps) mean += g;
    mean /= static_cast<double>(gaps.size());
    double var = 0.0;
    for (double g : gaps) var += (g - mean) * (g - mean);
    var /= static_cast<double>(gaps.size());
    return var / (mean * mean);
  };
  const auto poisson =
      arrival_times(ArrivalSpec::poisson(4000.0), 3, seconds(5));
  const auto bursty = arrival_times(
      ArrivalSpec::on_off(16000.0, 400.0, milliseconds(10),
                          milliseconds(40)),
      3, seconds(5));
  EXPECT_NEAR(cv2(poisson), 1.0, 0.2);
  EXPECT_GT(cv2(bursty), 2.0);
}

// ----------------------------------------------------------- popularity

TEST(Zipf, RankFrequencyShape) {
  const double s = 1.0;
  ZipfSelector zipf(16, s, 5);
  std::vector<std::uint64_t> counts(16, 0);
  const std::uint64_t draws = 200000;
  for (std::uint64_t i = 0; i < draws; ++i) ++counts[zipf.sample()];
  // Frequencies decrease in rank and match 1/rank within tolerance.
  for (std::size_t rank = 1; rank < 8; ++rank) {
    EXPECT_LT(counts[rank], counts[rank - 1]) << "rank " << rank;
  }
  const double ratio = static_cast<double>(counts[0]) /
                       static_cast<double>(counts[1]);
  EXPECT_NEAR(ratio, 2.0, 0.2);  // s = 1: f(1)/f(2) = 2
  for (std::size_t rank = 0; rank < 16; ++rank) {
    const double expected =
        zipf.expected_fraction(rank) * static_cast<double>(draws);
    EXPECT_NEAR(static_cast<double>(counts[rank]), expected,
                0.1 * expected + 50.0);
  }
}

TEST(Zipf, ZeroSkewIsUniform) {
  ZipfSelector zipf(10, 0.0, 5);
  for (std::size_t rank = 0; rank < 10; ++rank) {
    EXPECT_NEAR(zipf.expected_fraction(rank), 0.1, 1e-12);
  }
}

TEST(PayloadDist, SamplesRespectShape) {
  Rng rng(17);
  const PayloadDist fixed = PayloadDist::fixed_size(128);
  EXPECT_EQ(fixed.sample(rng), 128u);
  const PayloadDist uniform = PayloadDist::uniform(100, 200);
  for (int i = 0; i < 1000; ++i) {
    const Bytes b = uniform.sample(rng);
    EXPECT_GE(b, 100u);
    EXPECT_LE(b, 200u);
  }
  const PayloadDist bimodal = PayloadDist::bimodal(64, 4096, 0.25);
  std::uint64_t large = 0;
  for (int i = 0; i < 4000; ++i) {
    const Bytes b = bimodal.sample(rng);
    EXPECT_TRUE(b == 64u || b == 4096u);
    if (b == 4096u) ++large;
  }
  EXPECT_NEAR(static_cast<double>(large) / 4000.0, 0.25, 0.05);
  EXPECT_NEAR(bimodal.mean(), 64.0 * 0.75 + 4096.0 * 0.25, 1e-9);
}

// ---------------------------------------------------------------- trace

TEST(Trace, WriterReaderRoundTrip) {
  SynthSpec spec;
  spec.pattern = SynthPattern::kBurst;
  spec.duration = milliseconds(200);
  spec.base_rps = 1000.0;
  spec.peak_rps = 8000.0;
  spec.functions = 6;
  spec.payload = PayloadDist::uniform(32, 512);
  const auto events = synthesize(spec);
  ASSERT_FALSE(events.empty());
  const auto parsed = parse_trace(write_trace(events));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), events);
}

TEST(Trace, SynthesisIsDeterministic) {
  SynthSpec spec;
  spec.pattern = SynthPattern::kDiurnal;
  spec.duration = milliseconds(300);
  EXPECT_EQ(synthesize(spec), synthesize(spec));
  SynthSpec other = spec;
  other.seed = 2;
  EXPECT_NE(synthesize(spec), synthesize(other));
}

TEST(Trace, TimestampsMonotone) {
  SynthSpec spec;
  spec.pattern = SynthPattern::kDiurnal;
  spec.duration = milliseconds(500);
  const auto events = synthesize(spec);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].at, events[i - 1].at);
    EXPECT_LT(events[i].at, spec.duration);
  }
}

TEST(Trace, BurstPatternConcentratesArrivals) {
  SynthSpec spec;
  spec.pattern = SynthPattern::kBurst;
  spec.duration = seconds(1);
  spec.base_rps = 500.0;
  spec.peak_rps = 10000.0;
  spec.period = milliseconds(100);
  spec.burst_len = milliseconds(20);
  const auto events = synthesize(spec);
  std::uint64_t in_burst = 0;
  for (const TraceEvent& e : events) {
    if ((e.at % spec.period) < spec.burst_len) ++in_burst;
  }
  // 20% of the time carries the peak rate: expect the clear majority of
  // arrivals inside bursts (10000*0.02 vs 500*0.08 per period).
  EXPECT_GT(static_cast<double>(in_burst),
            0.7 * static_cast<double>(events.size()));
}

TEST(Trace, ParserRejectsMalformedInput) {
  EXPECT_FALSE(parse_trace("1000 fn000\n").ok());          // missing field
  EXPECT_FALSE(parse_trace("1000 fn000 64 extra\n").ok()); // trailing junk
  EXPECT_FALSE(parse_trace("-5 fn000 64\n").ok());         // negative ts
  EXPECT_FALSE(parse_trace("200 a 1\n100 b 1\n").ok());    // goes backwards
  EXPECT_FALSE(parse_trace("abc fn000 64\n").ok());        // non-numeric
  const auto ok = parse_trace("# comment\n\n10 fn000 64\n10 fn001 8\n");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().size(), 2u);
}

// ------------------------------------------------------------ generator

/// Echo service: completes each request after `service`, serialized on
/// one simulated server, with an optional [stall_from, stall_until)
/// window during which the server is wedged.
struct EchoService {
  sim::Simulator& sim;
  SimDuration service;
  SimTime stall_from = 0, stall_until = 0;
  SimTime free_at = 0;
  std::uint64_t served = 0;

  Sink sink() {
    return [this](const Request&, CompletionFn done) {
      SimTime start = std::max(sim.now(), free_at);
      if (start >= stall_from && start < stall_until) start = stall_until;
      free_at = start + service;
      sim.schedule_at(free_at, [this, done = std::move(done)] {
        ++served;
        done(true);
      });
    };
  }
};

TEST(Generator, OpenLoopOffersIndependentOfCompletions) {
  sim::Simulator sim;
  EchoService slow{sim, milliseconds(10)};  // far slower than arrivals
  LoadGenConfig config;
  config.arrivals = ArrivalSpec::fixed(1000.0);
  config.duration = milliseconds(100);
  LoadGenerator generator(sim, config, uniform_functions(1), slow.sink());
  generator.start();
  sim.run();
  // A closed-loop driver would have offered ~10 requests; the open loop
  // offers all 100 regardless of the server's pace.
  EXPECT_EQ(generator.offered(), 100u);
  EXPECT_TRUE(generator.drained());
  EXPECT_EQ(generator.completed(), 100u);
}

TEST(Generator, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim;
    std::vector<std::pair<SimTime, std::string>> offered;
    LoadGenConfig config;
    config.arrivals = ArrivalSpec::poisson(5000.0);
    config.zipf_s = 0.9;
    config.duration = milliseconds(100);
    config.seed = seed;
    LoadGenerator generator(
        sim, config, uniform_functions(8, PayloadDist::uniform(16, 256)),
        [&](const Request& request, CompletionFn done) {
          offered.emplace_back(request.intended, request.function);
          done(true);
        });
    generator.start();
    sim.run();
    return offered;
  };
  EXPECT_EQ(run(3), run(3));
  EXPECT_NE(run(3), run(4));
}

TEST(Generator, ReplayPreservesCountAndOrdering) {
  SynthSpec spec;
  spec.pattern = SynthPattern::kConstant;
  spec.duration = milliseconds(100);
  spec.base_rps = 2000.0;
  spec.functions = 4;
  const auto events = synthesize(spec);
  ASSERT_FALSE(events.empty());

  sim::Simulator sim;
  std::vector<TraceEvent> seen;
  LoadGenerator generator(
      sim, LoadGenConfig{}, events,
      [&](const Request& request, CompletionFn done) {
        seen.push_back(TraceEvent{request.intended - 0, request.function,
                                  request.payload_bytes});
        done(true);
      });
  generator.start();
  sim.run();
  EXPECT_EQ(generator.offered(), events.size());
  EXPECT_TRUE(generator.drained());
  ASSERT_EQ(seen.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(seen[i].at, events[i].at) << i;
    EXPECT_EQ(seen[i].function, events[i].function) << i;
    EXPECT_EQ(seen[i].payload_bytes, events[i].payload_bytes) << i;
  }
}

TEST(Generator, MaxRequestsAndStopBoundOffering) {
  sim::Simulator sim;
  EchoService echo{sim, microseconds(1)};
  LoadGenConfig config;
  config.arrivals = ArrivalSpec::fixed(10000.0);
  config.max_requests = 25;
  LoadGenerator generator(sim, config, uniform_functions(2), echo.sink());
  generator.start();
  sim.run();
  EXPECT_EQ(generator.offered(), 25u);
  EXPECT_TRUE(generator.drained());
}

TEST(Generator, ExportsOfferedGaugesAlongsideRegistry) {
  sim::Simulator sim;
  EchoService echo{sim, microseconds(50)};
  framework::MetricsRegistry registry;
  LoadGenConfig config;
  config.arrivals = ArrivalSpec::fixed(2000.0);
  config.duration = milliseconds(100);
  config.zipf_s = 0.5;
  LoadGenerator generator(sim, config, uniform_functions(3), echo.sink());
  generator.set_metrics(&registry);
  generator.start();
  sim.run();
  EXPECT_TRUE(registry.has("loadgen_inflight"));
  EXPECT_EQ(registry.gauge("loadgen_inflight"), 0.0);  // drained
  EXPECT_EQ(registry.gauge("loadgen_offered_requests"), 200.0);
  const double hot = registry.gauge("loadgen_offered_rps", {{"fn", "fn000"}});
  const double cold = registry.gauge("loadgen_offered_rps", {{"fn", "fn002"}});
  EXPECT_GT(hot, cold);  // Zipf skew shows up in the gauges
  const std::string text = registry.render();
  EXPECT_NE(text.find("loadgen_offered_rps{fn=\"fn000\"}"),
            std::string::npos);
  // SLO export is idempotent and lands in the same registry.
  generator.slo().export_to(registry, milliseconds(100));
  generator.slo().export_to(registry, milliseconds(100));
  EXPECT_EQ(registry.gauge("loadgen_offered_total", {{"fn", "fn000"}}),
            registry.gauge("loadgen_offered_total", {{"fn", "fn000"}}));
}

TEST(Generator, FixedRateMatchesPeriodicTimerArrivals) {
  // The exact property the supp_overload port relies on: the fixed-rate
  // generator reproduces a PeriodicTimer(1e9/rate) arrival-for-arrival.
  const double rate = 80000.0;
  const SimDuration window = milliseconds(10);

  std::vector<SimTime> timer_times;
  {
    sim::Simulator sim;
    const SimDuration gap = static_cast<SimDuration>(1e9 / rate);
    sim::PeriodicTimer timer(sim, gap,
                             [&] { timer_times.push_back(sim.now()); });
    timer.start();
    sim.run_until(window);
    timer.stop();
  }

  std::vector<SimTime> generator_times;
  {
    sim::Simulator sim;
    LoadGenConfig config;
    config.arrivals = ArrivalSpec::fixed(rate);
    LoadGenerator generator(sim, config, uniform_functions(1),
                            [&](const Request&, CompletionFn done) {
                              generator_times.push_back(sim.now());
                              done(true);
                            });
    generator.start();
    sim.run_until(window);
    generator.stop();
  }
  EXPECT_EQ(timer_times, generator_times);
}

// ------------------------------------------------------------------ SLO

TEST(Slo, ReportCountsGoodputAndViolations) {
  SloTracker tracker(SloConfig{milliseconds(1)});
  // Two on-time successes, one late success, one failure.
  tracker.on_offered("a");
  tracker.on_complete("a", 0, 0, microseconds(100), true);
  tracker.on_offered("a");
  tracker.on_complete("a", 0, 0, microseconds(900), true);
  tracker.on_offered("a");
  tracker.on_complete("a", 0, 0, milliseconds(5), true);  // late
  tracker.on_offered("b");
  tracker.on_complete("b", 0, 0, microseconds(10), false);  // failed

  const SloReport report = tracker.report(seconds(1));
  EXPECT_EQ(report.offered, 4u);
  EXPECT_EQ(report.completed, 3u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.late, 1u);
  EXPECT_DOUBLE_EQ(report.goodput_rps, 2.0);
  EXPECT_DOUBLE_EQ(report.violation_fraction, 0.5);
  ASSERT_EQ(report.per_function.size(), 2u);
  EXPECT_EQ(report.per_function[0].function, "a");  // sorted by offered
  EXPECT_EQ(report.per_function[0].violations, 1u);
  EXPECT_EQ(report.per_function[1].violations, 1u);
  const std::string text = report.to_string();
  EXPECT_NE(text.find("violations"), std::string::npos);
  EXPECT_NE(text.find("goodput"), std::string::npos);
}

TEST(Slo, CoordinatedOmissionStalledServerInflatesRecordedTail) {
  // A server that wedges for 200 ms mid-run. The driver's outstanding
  // cap defers dispatches during the stall — exactly the situation
  // where a naive (dispatch-clock) harness hides the queueing delay.
  // Intended-arrival accounting must charge the stall to every request
  // that would have arrived during it.
  sim::Simulator sim;
  EchoService server{sim, microseconds(200)};
  server.stall_from = milliseconds(100);
  server.stall_until = milliseconds(300);

  LoadGenConfig config;
  config.arrivals = ArrivalSpec::fixed(1000.0);
  config.duration = milliseconds(500);
  config.max_outstanding = 1;
  config.slo.deadline = milliseconds(5);
  LoadGenerator generator(sim, config, uniform_functions(1), server.sink());
  generator.start();
  sim.run();
  ASSERT_TRUE(generator.drained());
  EXPECT_EQ(generator.offered(), 500u);

  const double intended_p99 = generator.slo().latency().p99();
  const double dispatch_p99 = generator.slo().service_latency().p99();
  // ~200 requests were due during the stall; the CO-safe clock records
  // their full wait (up to 200 ms), while the dispatch clock sees only
  // the fast post-stall service and reports a healthy tail.
  EXPECT_GT(intended_p99, static_cast<double>(milliseconds(100)));
  EXPECT_LT(dispatch_p99, static_cast<double>(milliseconds(10)));
  EXPECT_GT(intended_p99, 20.0 * dispatch_p99);

  const SloReport report = generator.report();
  EXPECT_GT(report.violation_fraction, 0.3);  // the stall is not hidden
  EXPECT_LT(report.violation_fraction, 0.6);
}

TEST(Slo, NoStallMeansIntendedEqualsDispatchClock) {
  sim::Simulator sim;
  EchoService server{sim, microseconds(100)};
  LoadGenConfig config;
  config.arrivals = ArrivalSpec::poisson(500.0);
  config.duration = milliseconds(400);
  LoadGenerator generator(sim, config, uniform_functions(2), server.sink());
  generator.start();
  sim.run();
  ASSERT_TRUE(generator.drained());
  // Unbounded open loop dispatches at the intended instant: the two
  // clocks agree sample for sample.
  EXPECT_EQ(generator.slo().latency().count(),
            generator.slo().service_latency().count());
  EXPECT_DOUBLE_EQ(generator.slo().latency().p99(),
                   generator.slo().service_latency().p99());
}

}  // namespace
}  // namespace lnic::loadgen
