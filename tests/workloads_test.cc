// Tests for the benchmark lambdas: compiled end-to-end through the full
// pipeline and executed directly on the interpreter, verifying the
// actual bytes each lambda produces (web pages, cache values, grayscale
// images) plus the optimizer-relevant structure (duplicate helpers,
// dead code, object placement).
#include <gtest/gtest.h>

#include "compiler/pipeline.h"
#include "microc/interp.h"
#include "microc/verify.h"
#include "workloads/image.h"
#include "common/rng.h"
#include "workloads/lambdas.h"

namespace lnic::workloads {
namespace {

using microc::Invocation;
using microc::Machine;
using microc::ObjectStore;
using microc::Outcome;
using microc::RunState;

compiler::CompileOutput compile_standard(
    compiler::Options options = {},
    Scale scale = {}) {
  WorkloadBundle bundle = make_standard_workloads(scale);
  auto result = compiler::compile(bundle.spec, std::move(bundle.lambdas),
                                  options);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().message);
  return std::move(result).value();
}

Invocation make_invocation(WorkloadId wid, std::vector<std::uint8_t> body) {
  Invocation inv;
  inv.headers.fields[microc::kHdrWorkloadId] = wid;
  inv.headers.fields[microc::kHdrBodyLen] = body.size();
  auto word_at = [&body](std::size_t i) {
    std::uint64_t v = 0;
    for (std::size_t b = 0; b < 8 && i * 8 + b < body.size(); ++b) {
      v |= static_cast<std::uint64_t>(body[i * 8 + b]) << (8 * b);
    }
    return v;
  };
  inv.headers.fields[microc::kHdrOp] = word_at(0);
  inv.headers.fields[microc::kHdrKey] = word_at(1);
  inv.headers.fields[microc::kHdrValue] = word_at(2);
  inv.headers.fields[microc::kHdrImageWidth] = word_at(0) & 0xFFFF;
  inv.headers.fields[microc::kHdrImageHeight] = (word_at(0) >> 16) & 0xFFFF;
  inv.body = std::move(body);
  inv.match_data = {1};
  return inv;
}

TEST(Image, TestPatternDeterministic) {
  const Image a = make_test_image(64, 32, 7);
  const Image b = make_test_image(64, 32, 7);
  const Image c = make_test_image(64, 32, 8);
  EXPECT_EQ(a.rgba, b.rgba);
  EXPECT_NE(a.rgba, c.rgba);
  EXPECT_EQ(a.byte_size(), 64u * 32 * 4);
}

TEST(Image, GrayscaleReferenceValues) {
  Image img;
  img.width = 2;
  img.height = 1;
  img.rgba = {255, 255, 255, 255, 255, 0, 0, 255};  // white, red
  const auto gray = to_grayscale(img);
  ASSERT_EQ(gray.size(), 2u);
  EXPECT_EQ(gray[0], (77 * 255 + 150 * 255 + 29 * 255) >> 8);
  EXPECT_EQ(gray[1], (77 * 255) >> 8);
}

TEST(Workloads, WebServerReturnsSelectedPage) {
  auto fw = compile_standard();
  ObjectStore store(fw.program);
  Machine machine(fw.program, microc::CostModel::npu(), &store);
  WorkloadBundle bundle = make_standard_workloads();
  for (std::uint64_t op : {0ull, 1ull, 2ull, 3ull, 7ull}) {
    const auto inv = make_invocation(kWebServerId, encode_web_request(op));
    const Outcome out = machine.run(inv);
    ASSERT_EQ(out.state, RunState::kDone) << out.trap_message;
    EXPECT_EQ(out.return_value, p4::kReturnForward);
    // Response = 8-byte tag + the page bytes.
    ASSERT_EQ(out.response.size(), 8u + kWebPageBytes);
    const std::string page(out.response.begin() + 8, out.response.end());
    EXPECT_EQ(page, expected_web_page(bundle, op));
  }
}

TEST(Workloads, WebServerCounterPersists) {
  auto fw = compile_standard();
  ObjectStore store(fw.program);
  Machine machine(fw.program, microc::CostModel::npu(), &store);
  const auto inv = make_invocation(kWebServerId, encode_web_request(0));
  machine.run(inv);
  machine.run(inv);
  machine.run(inv);
  // The counter lives at offset 0 of "request_counters".
  const auto idx = [&] {
    for (std::size_t i = 0; i < fw.program.objects.size(); ++i) {
      if (fw.program.objects[i].name == "request_counters") return i;
    }
    return static_cast<std::size_t>(-1);
  }();
  ASSERT_NE(idx, static_cast<std::size_t>(-1));
  EXPECT_EQ(store.data(idx)[0], 3);
}

TEST(Workloads, KvGetSuspendsWithRequestedKey) {
  auto fw = compile_standard();
  ObjectStore store(fw.program);
  Machine machine(fw.program, microc::CostModel::npu(), &store);
  const auto inv = make_invocation(kKvGetId, encode_kv_request(0xABCDEF));
  Outcome out = machine.run(inv);
  ASSERT_EQ(out.state, RunState::kYield);
  EXPECT_EQ(out.ext.kind, 0);  // GET
  EXPECT_EQ(out.ext.key, 0xABCDEFu);
  out = machine.resume(0x1234);
  ASSERT_EQ(out.state, RunState::kDone);
  ASSERT_GE(out.response.size(), 8u);
  std::uint64_t reply = 0;
  for (int i = 0; i < 8; ++i) {
    reply |= static_cast<std::uint64_t>(out.response[i]) << (8 * i);
  }
  EXPECT_EQ(reply, 0x1234u);  // raw cached value passes through
}

TEST(Workloads, KvSetCarriesKeyAndValue) {
  auto fw = compile_standard();
  ObjectStore store(fw.program);
  Machine machine(fw.program, microc::CostModel::npu(), &store);
  const auto inv = make_invocation(kKvSetId, encode_kv_request(42, 99));
  Outcome out = machine.run(inv);
  ASSERT_EQ(out.state, RunState::kYield);
  EXPECT_EQ(out.ext.kind, 1);  // SET
  EXPECT_EQ(out.ext.key, 42u);
  EXPECT_EQ(out.ext.value, 99u);
  out = machine.resume(99);
  ASSERT_EQ(out.state, RunState::kDone);
}

class ImageSizeTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ImageSizeTest, TransformerMatchesReference) {
  const auto [w, h] = GetParam();
  auto fw = compile_standard();
  ObjectStore store(fw.program);
  Machine machine(fw.program, microc::CostModel::npu(), &store);
  const Image img = make_test_image(static_cast<std::uint32_t>(w),
                                    static_cast<std::uint32_t>(h), 3);
  const auto inv = make_invocation(
      kImageId, encode_image_request(img.width, img.height, img.rgba));
  const Outcome out = machine.run(inv);
  ASSERT_EQ(out.state, RunState::kDone) << out.trap_message;
  EXPECT_EQ(out.response, to_grayscale(img));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ImageSizeTest,
    ::testing::Values(std::pair{16, 16}, std::pair{64, 64},
                      std::pair{100, 30}, std::pair{512, 512}));

TEST(Workloads, OptimizedAndUnoptimizedAgreeOnAllLambdas) {
  auto unopt = compile_standard(compiler::Options::none());
  auto opt = compile_standard();
  const Image img = make_test_image(32, 32, 5);

  const std::vector<std::pair<WorkloadId, std::vector<std::uint8_t>>> cases = {
      {kWebServerId, encode_web_request(2)},
      {kImageId, encode_image_request(img.width, img.height, img.rgba)},
  };
  for (const auto& [wid, body] : cases) {
    ObjectStore s1(unopt.program), s2(opt.program);
    Machine m1(unopt.program, microc::CostModel::npu(), &s1);
    Machine m2(opt.program, microc::CostModel::npu(), &s2);
    const auto inv1 = make_invocation(wid, body);
    const auto inv2 = make_invocation(wid, body);
    const auto o1 = m1.run(inv1);
    const auto o2 = m2.run(inv2);
    ASSERT_EQ(o1.state, RunState::kDone);
    ASSERT_EQ(o2.state, RunState::kDone);
    EXPECT_EQ(o1.response, o2.response) << "wid=" << wid;
    EXPECT_EQ(o1.return_value, o2.return_value);
  }
}

TEST(Workloads, PipelineShrinksEveryStage) {
  WorkloadBundle bundle = make_standard_workloads();
  auto result = compiler::compile(bundle.spec, std::move(bundle.lambdas));
  ASSERT_TRUE(result.ok());
  const auto& stages = result.value().stages;
  ASSERT_EQ(stages.size(), 4u);
  for (std::size_t i = 1; i < stages.size(); ++i) {
    EXPECT_LT(stages[i].code_words, stages[i - 1].code_words);
  }
  // The optimized binary must fit a 16 K-instruction store (§6.1.2).
  EXPECT_LE(result.value().final_words(), 16384u);
}

TEST(Workloads, CoalescingMergesDuplicatedHelpers) {
  WorkloadBundle b1 = make_standard_workloads();
  auto unopt = compiler::compile(b1.spec, std::move(b1.lambdas),
                                 compiler::Options::none());
  WorkloadBundle b2 = make_standard_workloads();
  auto opt = compiler::compile(b2.spec, std::move(b2.lambdas));
  ASSERT_TRUE(unopt.ok() && opt.ok());
  const auto& p = opt.value().program;
  // The duplicated helper pairs collapse: the first copy survives, the
  // second is gone.
  EXPECT_NE(p.function_index("reply_fmt_web"), microc::Program::kNoFunction);
  EXPECT_EQ(p.function_index("reply_fmt_img"), microc::Program::kNoFunction);
  EXPECT_NE(p.function_index("query_fmt_get"), microc::Program::kNoFunction);
  EXPECT_EQ(p.function_index("query_fmt_set"), microc::Program::kNoFunction);
  EXPECT_LT(p.functions.size(), unopt.value().program.functions.size());
}

TEST(Workloads, StratificationPlacesPaperObjects) {
  auto fw = compile_standard();
  auto region_of = [&](const std::string& name) {
    for (const auto& obj : fw.program.objects) {
      if (obj.name == name) return obj.region;
    }
    return microc::MemRegion::kEmem;
  };
  // §6.4: "the image variable ... is mapped to IMEM, whereas the web
  // server results are mapped to CTM inside the island."
  EXPECT_EQ(region_of("image_buf"), microc::MemRegion::kImem);
  const auto web = region_of("web_content");
  EXPECT_TRUE(web == microc::MemRegion::kCtm ||
              web == microc::MemRegion::kLocal);
}

TEST(Workloads, NicKvStoreSetGetRoundTrip) {
  // §7 extension: GET/SET against the on-NIC hash table.
  auto bundle = make_nic_kv_store(8);
  auto fw = compiler::compile(bundle.spec, std::move(bundle.lambdas));
  ASSERT_TRUE(fw.ok()) << fw.error().message;
  ObjectStore store(fw.value().program);
  Machine machine(fw.value().program, microc::CostModel::npu(), &store);

  auto call = [&](std::uint64_t op, std::uint64_t key, std::uint64_t value) {
    const auto inv = make_invocation(kNicKvStoreId,
                                     encode_kv_store_request(op, key, value));
    const Outcome out = machine.run(inv);
    EXPECT_EQ(out.state, RunState::kDone) << out.trap_message;
    std::uint64_t reply = 0;
    for (int i = 0; i < 8 && i < (int)out.response.size(); ++i) {
      reply |= static_cast<std::uint64_t>(out.response[i]) << (8 * i);
    }
    return reply;
  };

  EXPECT_EQ(call(0, 42, 0), 0u);       // miss before insert
  EXPECT_EQ(call(1, 42, 777), 777u);   // SET
  EXPECT_EQ(call(0, 42, 0), 777u);     // GET hits (state persists)
  EXPECT_EQ(call(1, 42, 888), 888u);   // overwrite
  EXPECT_EQ(call(0, 42, 0), 888u);
}

TEST(Workloads, NicKvStoreHandlesCollisionsViaProbing) {
  // A tiny 4-slot table forces linear probing; all distinct keys must
  // still be retrievable until the table is truly full.
  auto bundle = make_nic_kv_store(2);  // 4 slots
  auto fw = compiler::compile(bundle.spec, std::move(bundle.lambdas));
  ASSERT_TRUE(fw.ok());
  ObjectStore store(fw.value().program);
  Machine machine(fw.value().program, microc::CostModel::npu(), &store);
  auto call = [&](std::uint64_t op, std::uint64_t key, std::uint64_t value) {
    const auto inv = make_invocation(kNicKvStoreId,
                                     encode_kv_store_request(op, key, value));
    const Outcome out = machine.run(inv);
    EXPECT_EQ(out.state, RunState::kDone);
    std::uint64_t reply = 0;
    for (int i = 0; i < 8 && i < (int)out.response.size(); ++i) {
      reply |= static_cast<std::uint64_t>(out.response[i]) << (8 * i);
    }
    return reply;
  };
  for (std::uint64_t k = 0; k < 4; ++k) {
    EXPECT_EQ(call(1, 100 + k, k + 1), k + 1);
  }
  for (std::uint64_t k = 0; k < 4; ++k) {
    EXPECT_EQ(call(0, 100 + k, 0), k + 1) << "key " << 100 + k;
  }
}

TEST(Workloads, NicKvStoreSweep) {
  auto bundle = make_nic_kv_store(10);
  auto fw = compiler::compile(bundle.spec, std::move(bundle.lambdas));
  ASSERT_TRUE(fw.ok());
  ObjectStore store(fw.value().program);
  Machine machine(fw.value().program, microc::CostModel::npu(), &store);
  auto call = [&](std::uint64_t op, std::uint64_t key, std::uint64_t value) {
    const auto inv = make_invocation(kNicKvStoreId,
                                     encode_kv_store_request(op, key, value));
    const Outcome out = machine.run(inv);
    std::uint64_t reply = 0;
    for (int i = 0; i < 8 && i < (int)out.response.size(); ++i) {
      reply |= static_cast<std::uint64_t>(out.response[i]) << (8 * i);
    }
    return reply;
  };
  // 500 inserts at <50% load factor, then verify all.
  for (std::uint64_t k = 0; k < 500; ++k) call(1, k * 7919 + 3, k ^ 0xABCD);
  for (std::uint64_t k = 0; k < 500; ++k) {
    EXPECT_EQ(call(0, k * 7919 + 3, 0), k ^ 0xABCD) << k;
  }
}

TEST(Workloads, StreamAggregatorSlidingWindow) {
  auto bundle = make_stream_aggregator(4);
  auto fw = compiler::compile(bundle.spec, std::move(bundle.lambdas));
  ASSERT_TRUE(fw.ok()) << fw.error().message;
  ObjectStore store(fw.value().program);
  Machine machine(fw.value().program, microc::CostModel::npu(), &store);

  struct Window {
    std::uint64_t sum, mn, mx, count;
  };
  auto push = [&](std::uint64_t sensor, std::uint64_t sample) {
    const auto inv =
        make_invocation(kStreamId, encode_kv_request(sensor, sample));
    const Outcome out = machine.run(inv);
    EXPECT_EQ(out.state, RunState::kDone) << out.trap_message;
    auto word = [&](int i) {
      std::uint64_t v = 0;
      for (int b = 0; b < 8; ++b) {
        v |= static_cast<std::uint64_t>(out.response[i * 8 + b]) << (8 * b);
      }
      return v;
    };
    return Window{word(0), word(1), word(2), word(3)};
  };

  // Reference model: per-sensor 8-deep ring.
  std::map<std::uint64_t, std::vector<std::uint64_t>> rings;
  Rng rng(99);
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t sensor = rng.next_below(16);
    const std::uint64_t sample = rng.next_below(1000) + 1;
    auto& ring = rings[sensor];
    ring.push_back(sample);
    if (ring.size() > 8) ring.erase(ring.begin());
    const Window got = push(sensor, sample);
    std::uint64_t sum = 0, mn = UINT64_MAX, mx = 0;
    for (auto v : ring) {
      sum += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    ASSERT_EQ(got.count, ring.size()) << "iteration " << i;
    ASSERT_EQ(got.sum, sum);
    ASSERT_EQ(got.mn, mn);
    ASSERT_EQ(got.mx, mx);
  }
}

TEST(Workloads, StreamSensorsIsolated) {
  auto bundle = make_stream_aggregator(4);
  auto fw = compiler::compile(bundle.spec, std::move(bundle.lambdas));
  ASSERT_TRUE(fw.ok());
  ObjectStore store(fw.value().program);
  Machine machine(fw.value().program, microc::CostModel::npu(), &store);
  auto push = [&](std::uint64_t sensor, std::uint64_t sample) {
    const auto inv =
        make_invocation(kStreamId, encode_kv_request(sensor, sample));
    const Outcome out = machine.run(inv);
    std::uint64_t sum = 0;
    for (int b = 0; b < 8; ++b) {
      sum |= static_cast<std::uint64_t>(out.response[b]) << (8 * b);
    }
    return sum;
  };
  push(1, 100);
  push(2, 7);
  EXPECT_EQ(push(1, 100), 200u);  // sensor 2's sample did not leak in
  EXPECT_EQ(push(2, 7), 14u);
}

TEST(Workloads, EncodersRoundTrip) {
  const auto web = encode_web_request(3);
  EXPECT_EQ(web[0], 3);
  const auto kv = encode_kv_request(0x1122, 0x3344);
  EXPECT_EQ(kv[8], 0x22);
  EXPECT_EQ(kv[16], 0x44);
  const auto img = encode_image_request(512, 256, {1, 2, 3});
  EXPECT_EQ(img.size(), 8u + 3u);
  EXPECT_EQ(img[0], 0x00);  // 512 & 0xFF
  EXPECT_EQ(img[1], 0x02);  // 512 >> 8
  EXPECT_EQ(img[2], 0x00);  // height low byte (256 & 0xFF)
  EXPECT_EQ(img[3], 0x01);
}

}  // namespace
}  // namespace lnic::workloads
