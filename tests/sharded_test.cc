// Tests for the sharded parallel simulation engine (sim/sharded.h) and
// its integration with the network fabric and the cluster: conservative
// windows, (time, global-seq) merge order, the lookahead contract, and
// shard-count invariance of simulated results.
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/cluster.h"
#include "framework/metrics.h"
#include "net/network.h"
#include "sim/sharded.h"
#include "workloads/lambdas.h"

namespace lnic {
namespace {

TEST(ShardedSimulator, SingleShardDelegatesToClassicEngine) {
  sim::ShardedSimulator sharded;
  ASSERT_EQ(sharded.shards(), 1u);
  std::vector<int> order;
  sharded.shard(0).schedule_at(microseconds(2), [&] { order.push_back(2); });
  sharded.shard(0).schedule_at(microseconds(1), [&] { order.push_back(1); });
  EXPECT_EQ(sharded.run(), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sharded.now(), microseconds(1) * 0 + sharded.shard(0).now());
  EXPECT_EQ(sharded.windows_executed(), 0u);  // no barrier machinery
  EXPECT_EQ(sharded.cross_shard_posts(), 0u);
}

TEST(ShardedSimulator, MultiShardRunsAllShardsToDrain) {
  sim::ShardedSimulator sharded(4);
  sharded.constrain_lookahead(microseconds(1));
  int fired = 0;
  for (unsigned s = 0; s < 4; ++s) {
    sharded.shard(s).schedule_at(microseconds(5 + s), [&fired] { ++fired; });
  }
  EXPECT_EQ(sharded.run(), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_GE(sharded.windows_executed(), 1u);
}

TEST(ShardedSimulator, RunUntilAlignsEveryShardClock) {
  sim::ShardedSimulator sharded(3);
  sharded.constrain_lookahead(microseconds(1));
  sharded.shard(1).schedule_at(microseconds(2), [] {});
  sharded.run_until(milliseconds(1));
  for (unsigned s = 0; s < 3; ++s) {
    EXPECT_EQ(sharded.shard(s).now(), milliseconds(1)) << "shard " << s;
  }
}

TEST(ShardedSimulator, SameTickCrossShardArrivalsDispatchInGlobalSeqOrder) {
  sim::ShardedSimulator sharded(4);
  sharded.constrain_lookahead(microseconds(1));
  std::vector<int> order;
  const SimTime tick = microseconds(10);
  // Posted out of source order, all due the same tick on shard 0. The
  // barrier merge sorts by (time, global-seq) where global-seq packs the
  // source shard in its high bits, so dispatch order is src 1, 2, 3 —
  // independent of call order and thread scheduling.
  sharded.post(3, 0, tick, sim::EventFn([&order] { order.push_back(3); }));
  sharded.post(1, 0, tick, sim::EventFn([&order] { order.push_back(1); }));
  sharded.post(2, 0, tick, sim::EventFn([&order] { order.push_back(2); }));
  // Two posts from one source keep their per-source sequence order.
  sharded.post(2, 0, tick, sim::EventFn([&order] { order.push_back(22); }));
  sharded.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 22, 3}));
  EXPECT_EQ(sharded.cross_shard_posts(), 4u);
}

TEST(ShardedSimulator, StopPredicateEndsRunAtBarrier) {
  sim::ShardedSimulator sharded(2);
  sharded.constrain_lookahead(microseconds(1));
  bool done = false;
  sharded.shard(1).schedule_at(microseconds(3), [&done] { done = true; });
  // Periodic noise so the queue never drains on its own.
  std::function<void()> tick = [&] {
    sharded.shard(0).schedule(microseconds(1), tick);
  };
  tick();
  sharded.run_until(seconds(1), [&done] { return done; });
  EXPECT_TRUE(done);
  EXPECT_LT(sharded.now(), seconds(1));
}

TEST(ShardedSimulator, AdaptiveEotOnWindowBoundaryDoesNotExtend) {
  // An EOT exactly at the window start yields eot + L - 1 == the static
  // end: extension must not trigger (it never shortens, and equal is
  // not longer).
  sim::ShardedSimulator sharded(2);
  sharded.constrain_lookahead(microseconds(10));
  sharded.set_adaptive_sync(true);
  int fired = 0;
  sharded.shard(0).schedule_at(microseconds(5), [&fired] { ++fired; });
  sharded.shard(1).schedule_at(microseconds(5), [&fired] { ++fired; });
  EXPECT_EQ(sharded.run(), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sharded.windows_executed(), 1u);
  EXPECT_EQ(sharded.windows_extended(), 0u);
}

TEST(ShardedSimulator, AdaptiveIdleFrontierCollapsesDrainToOneWindow) {
  // When every shard reports an idle outbound frontier (EOT == +inf),
  // the drain collapses into a single horizon-length window; the static
  // engine pays one barrier per lookahead instead.
  const auto load = [](sim::ShardedSimulator& sharded, int* fired) {
    for (unsigned s = 0; s < 2; ++s) {
      for (int i = 0; i < 100; ++i) {
        sharded.shard(s).schedule_at(microseconds(i),
                                     [fired] { ++*fired; });
      }
    }
  };

  sim::ShardedSimulator fixed(2);
  fixed.constrain_lookahead(microseconds(1));
  int fired_fixed = 0;
  load(fixed, &fired_fixed);
  fixed.run();
  EXPECT_EQ(fired_fixed, 200);
  EXPECT_GE(fixed.windows_executed(), 50u);

  sim::ShardedSimulator adaptive(2);
  adaptive.constrain_lookahead(microseconds(1));
  for (unsigned s = 0; s < 2; ++s) {
    adaptive.set_eot_source(s, [] { return kSimTimeMax; });
  }
  adaptive.set_adaptive_sync(true);
  int fired_adaptive = 0;
  load(adaptive, &fired_adaptive);
  adaptive.run();
  EXPECT_EQ(fired_adaptive, 200);
  EXPECT_EQ(adaptive.windows_executed(), 1u);
  EXPECT_EQ(adaptive.windows_extended(), 1u);
}

TEST(ShardedSimulator, LateConstrainLookaheadTightensAdaptiveFloor) {
  // constrain_lookahead() arriving after adaptive sync is enabled (a
  // link attached late) must still tighten the static window floor.
  sim::ShardedSimulator sharded(2);
  sharded.constrain_lookahead(microseconds(100));
  sharded.set_adaptive_sync(true);
  for (unsigned s = 0; s < 2; ++s) {
    for (int i = 0; i < 10; ++i) {
      sharded.shard(s).schedule_at(microseconds(10 * i), [] {});
    }
  }
  sharded.run();
  // All 10 event times fit inside one 100 us window.
  EXPECT_EQ(sharded.windows_executed(), 1u);

  sharded.constrain_lookahead(microseconds(10));
  const SimTime base = sharded.now();
  for (unsigned s = 0; s < 2; ++s) {
    for (int i = 0; i < 10; ++i) {
      sharded.shard(s).schedule_at(base + microseconds(10 * i), [] {});
    }
  }
  sharded.run();
  // The hot frontier (EOT == next event, one event per 10 us) pins each
  // window to the tightened floor: one per event time.
  EXPECT_EQ(sharded.windows_executed(), 11u);
  EXPECT_EQ(sharded.windows_extended(), 0u);
}

TEST(ShardedSimulator, ValidateLookaheadRejectsZeroDelayCoupling) {
  sim::ShardedSimulator sharded(2);
  net::LinkConfig link;
  link.propagation = 0;
  link.switch_latency = 0;
  net::Network network(sharded, link);
  const Status status = sharded.validate_lookahead();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("zero-delay"), std::string::npos)
      << status.error().message;
  EXPECT_NE(status.error().message.find("lookahead"), std::string::npos);
}

TEST(ShardedSimulator, SingleShardToleratesZeroDelayCoupling) {
  // The legacy engine has no lookahead requirement; shards=1 must keep
  // accepting zero-delay links.
  sim::ShardedSimulator sharded(1);
  net::LinkConfig link;
  link.propagation = 0;
  link.switch_latency = 0;
  net::Network network(sharded, link);
  EXPECT_TRUE(sharded.validate_lookahead().ok());
}

TEST(ShardedCluster, ZeroDelayLinkRejectedAtDeploy) {
  core::ClusterConfig config;
  config.workers = 2;
  config.shards = 2;
  config.link.propagation = 0;
  config.link.switch_latency = 0;
  core::Cluster cluster(config);
  auto deployed = cluster.deploy(workloads::make_standard_workloads());
  ASSERT_FALSE(deployed.ok());
  EXPECT_NE(deployed.error().message.find("lookahead"), std::string::npos)
      << deployed.error().message;
}

std::vector<SimDuration> run_cluster_web(unsigned shards, int requests,
                                         std::uint64_t* cross_posts,
                                         bool adaptive = false,
                                         std::uint64_t* windows = nullptr) {
  core::ClusterConfig config;
  config.workers = 4;
  config.shards = shards;
  config.adaptive_sync = adaptive;
  config.shard_affinity_routing = adaptive;
  core::Cluster cluster(config);
  auto deployed = cluster.deploy(workloads::make_standard_workloads());
  EXPECT_TRUE(deployed.ok());
  if (!deployed.ok()) return {};
  cluster.wait_until_ready();
  std::vector<SimDuration> latencies;
  for (int i = 0; i < requests; ++i) {
    auto response = cluster.invoke_and_wait(
        "web_server", workloads::encode_web_request(i & 3));
    EXPECT_TRUE(response.ok()) << "request " << i;
    latencies.push_back(response.ok() ? response.value().latency : -1);
  }
  if (cross_posts != nullptr) *cross_posts = cluster.sharded().cross_shard_posts();
  if (windows != nullptr) *windows = cluster.sharded().windows_executed();
  return latencies;
}

TEST(ShardedCluster, FourShardsMatchSingleShardLatencies) {
  // The tentpole's correctness bar: sharding is a *scheduling* change,
  // not a *model* change. The same cluster workload must produce the
  // same per-request latencies whether the island runs on 1 shard or 4.
  std::uint64_t cross_posts = 0;
  const auto one = run_cluster_web(1, 25, nullptr);
  const auto four = run_cluster_web(4, 25, &cross_posts);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i], four[i]) << "request " << i;
  }
  // The sharded run really exercised the cross-shard path.
  EXPECT_GT(cross_posts, 0u);
}

TEST(ShardedCluster, FixedShardCountIsDeterministic) {
  std::uint64_t posts_a = 0;
  std::uint64_t posts_b = 0;
  const auto a = run_cluster_web(4, 15, &posts_a);
  const auto b = run_cluster_web(4, 15, &posts_b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(posts_a, posts_b);
}

TEST(ShardedCluster, AdaptiveSyncRunIsBitReproducible) {
  // Adaptive window extension moves *barriers*, never simulated truth:
  // two identical adaptive runs must agree event-for-event, including
  // the window count and cross-shard traffic.
  std::uint64_t posts_a = 0;
  std::uint64_t posts_b = 0;
  std::uint64_t windows_a = 0;
  std::uint64_t windows_b = 0;
  const auto a =
      run_cluster_web(4, 15, &posts_a, /*adaptive=*/true, &windows_a);
  const auto b =
      run_cluster_web(4, 15, &posts_b, /*adaptive=*/true, &windows_b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(posts_a, posts_b);
  EXPECT_EQ(windows_a, windows_b);
  EXPECT_GT(windows_a, 0u);
}

TEST(ShardedCluster, AdaptiveSingleShardMatchesClassicEngine) {
  // shards == 1 bypasses the window machinery entirely, so the adaptive
  // flag must be a no-op there: same latencies as the classic engine.
  const auto classic = run_cluster_web(1, 15, nullptr, /*adaptive=*/false);
  const auto adaptive = run_cluster_web(1, 15, nullptr, /*adaptive=*/true);
  EXPECT_EQ(classic, adaptive);
}

TEST(ShardedCluster, WorkerIslandsCoShardDeclaredIslands) {
  // Two declared islands over four workers and two worker shards: each
  // island lands whole on one shard, master keeps shard 0 to itself.
  core::ClusterConfig config;
  config.workers = 4;
  config.shards = 3;
  config.worker_islands = {7, 7, 9, 9};
  core::Cluster cluster(config);
  ASSERT_TRUE(cluster.deploy(workloads::make_standard_workloads()).ok());
  const net::Network& network = cluster.network();
  EXPECT_EQ(network.shard_of(cluster.gateway().node()), 0u);
  EXPECT_EQ(network.shard_of(cluster.worker(0).node()),
            network.shard_of(cluster.worker(1).node()));
  EXPECT_EQ(network.shard_of(cluster.worker(2).node()),
            network.shard_of(cluster.worker(3).node()));
  EXPECT_NE(network.shard_of(cluster.worker(0).node()),
            network.shard_of(cluster.worker(2).node()));
  EXPECT_NE(network.shard_of(cluster.worker(0).node()), 0u);
  EXPECT_NE(network.shard_of(cluster.worker(2).node()), 0u);
}

TEST(ShardedCluster, EmptyWorkerIslandsMatchesLegacyRoundRobin) {
  // With no island declarations every worker is its own island, and the
  // greedy packer must reproduce the historical 1 + i % (shards - 1)
  // spread exactly — same shards, same simulated results.
  core::ClusterConfig config;
  config.workers = 4;
  config.shards = 3;
  core::Cluster cluster(config);
  ASSERT_TRUE(cluster.deploy(workloads::make_standard_workloads()).ok());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.network().shard_of(cluster.worker(i).node()),
              1u + static_cast<unsigned>(i % 2))
        << "worker " << i;
  }
}

TEST(ShardedMetrics, ConcurrentLabeledHistogramMergeFromShards) {
  // The scrape-time pattern the sharded monitor relies on: each shard
  // thread populates its own registry (the same labeled histogram
  // series plus a per-shard counter) in parallel, the coordinator joins
  // and folds them with merge_from. Runs under the TSan CI job, so any
  // unsynchronized sharing inside the registries would be flagged.
  constexpr int kShards = 4;
  constexpr int kObservations = 2000;
  std::vector<framework::MetricsRegistry> locals(kShards);
  std::vector<std::thread> threads;
  threads.reserve(kShards);
  for (int t = 0; t < kShards; ++t) {
    threads.emplace_back([&locals, t] {
      framework::MetricsRegistry& reg = locals[t];
      for (int i = 0; i < kObservations; ++i) {
        reg.histogram("rpc_latency_ns", {{"fn", "web"}})
            .observe(1000.0 * ((t * kObservations + i) % 64));
        reg.counter("shard_events_total",
                    {{"shard", std::to_string(t)}})
            .increment();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  framework::MetricsRegistry merged;
  for (const framework::MetricsRegistry& reg : locals) {
    merged.merge_from(reg);
  }

  // The shared labeled series folded bucket-wise across all shards.
  const auto& h = merged.histogram("rpc_latency_ns", {{"fn", "web"}});
  EXPECT_EQ(h.count(),
            static_cast<std::uint64_t>(kShards) * kObservations);
  // Per-shard series stayed distinct.
  for (int t = 0; t < kShards; ++t) {
    EXPECT_EQ(merged
                  .counter("shard_events_total",
                           {{"shard", std::to_string(t)}})
                  .value(),
              static_cast<std::uint64_t>(kObservations))
        << "shard " << t;
  }
}

}  // namespace
}  // namespace lnic
