// Tests for the simulated fabric: delivery latency model, queueing,
// fragmentation, and fault injection.
#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"
#include "net/trace.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace lnic::net {
namespace {

Packet make_packet(NodeId src, NodeId dst, Bytes payload_size) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.payload = std::vector<std::uint8_t>(payload_size, 0xAB);
  return p;
}

TEST(Packet, WireSizeIncludesFraming) {
  Packet p = make_packet(0, 1, 100);
  EXPECT_EQ(p.wire_size(), kFrameOverhead + kLambdaHeaderSize + 100);
}

TEST(Packet, PayloadStringRoundTrip) {
  const std::string text = "hello lambda";
  EXPECT_EQ(payload_to_string(make_payload(text)), text);
}

TEST(Fragment, SinglePacketWhenSmall) {
  LambdaHeader hdr{.workload_id = 3, .request_id = 9};
  auto frags = fragment(0, 1, PacketKind::kRequest, hdr,
                        std::vector<std::uint8_t>(100, 1));
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_EQ(frags[0].lambda.frag_count, 1u);
  EXPECT_EQ(frags[0].lambda.workload_id, 3u);
}

TEST(Fragment, SplitsAndPreservesBytes) {
  std::vector<std::uint8_t> payload(3 * kMaxPayload + 17);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31);
  }
  LambdaHeader hdr{.workload_id = 1, .request_id = 2};
  auto frags = fragment(0, 1, PacketKind::kRdmaWrite, hdr, payload);
  ASSERT_EQ(frags.size(), 4u);
  std::vector<std::uint8_t> reassembled;
  for (const auto& f : frags) {
    EXPECT_EQ(f.lambda.frag_count, 4u);
    reassembled.insert(reassembled.end(), f.payload.begin(), f.payload.end());
  }
  EXPECT_EQ(reassembled, payload);
}

TEST(Fragment, EmptyPayloadStillProducesOnePacket) {
  auto frags = fragment(0, 1, PacketKind::kRequest, {}, {});
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_TRUE(frags[0].payload.empty());
}

class NetworkTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
};

TEST_F(NetworkTest, DeliversToHandlerWithLatency) {
  Network network(sim);
  std::vector<SimTime> arrivals;
  const NodeId a = network.attach(nullptr);
  const NodeId b =
      network.attach([&](const Packet&) { arrivals.push_back(sim.now()); });
  network.send(make_packet(a, b, 64));
  sim.run();
  ASSERT_EQ(arrivals.size(), 1u);
  // ser(130 B) at 10 G = 104 ns, twice; + 2 * 500 prop + 800 switch.
  EXPECT_NEAR(static_cast<double>(arrivals[0]), 104 + 500 + 800 + 104 + 500, 3);
}

TEST_F(NetworkTest, BackToBackPacketsQueueOnUplink) {
  Network network(sim);
  std::vector<SimTime> arrivals;
  const NodeId a = network.attach(nullptr);
  const NodeId b =
      network.attach([&](const Packet&) { arrivals.push_back(sim.now()); });
  network.send(make_packet(a, b, 1400));
  network.send(make_packet(a, b, 1400));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Second packet waits a full serialization behind the first.
  const double ser = (kFrameOverhead + kLambdaHeaderSize + 1400) * 8.0 / 10.0;
  EXPECT_NEAR(static_cast<double>(arrivals[1] - arrivals[0]), ser, 3);
}

TEST_F(NetworkTest, DropsAreCountedAndNotDelivered) {
  Network network(sim, LinkConfig{}, FaultConfig{.drop_probability = 1.0});
  int delivered = 0;
  const NodeId a = network.attach(nullptr);
  const NodeId b = network.attach([&](const Packet&) { ++delivered; });
  for (int i = 0; i < 10; ++i) network.send(make_packet(a, b, 64));
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(network.packets_dropped(), 10u);
  EXPECT_EQ(network.packets_sent(), 10u);
}

TEST_F(NetworkTest, PartialLossDeliversTheRest) {
  Network network(sim, LinkConfig{},
                  FaultConfig{.drop_probability = 0.3}, /*seed=*/42);
  int delivered = 0;
  const NodeId a = network.attach(nullptr);
  const NodeId b = network.attach([&](const Packet&) { ++delivered; });
  const int n = 2000;
  for (int i = 0; i < n; ++i) network.send(make_packet(a, b, 64));
  sim.run();
  EXPECT_EQ(network.packets_dropped() + static_cast<std::uint64_t>(delivered),
            static_cast<std::uint64_t>(n));
  EXPECT_NEAR(static_cast<double>(delivered) / n, 0.7, 0.05);
}

TEST_F(NetworkTest, ReorderInjectionCanInvertArrivalOrder) {
  Network network(
      sim, LinkConfig{},
      FaultConfig{.reorder_probability = 0.5,
                  .reorder_max_extra_delay = microseconds(100)},
      /*seed=*/7);
  std::vector<int> order;
  const NodeId a = network.attach(nullptr);
  NodeId b = network.attach(nullptr);
  network.set_handler(b, [&](const Packet& p) {
    order.push_back(static_cast<int>(p.lambda.frag_index));
  });
  for (int i = 0; i < 50; ++i) {
    Packet p = make_packet(a, b, 64);
    p.lambda.frag_index = static_cast<std::uint32_t>(i);
    network.send(p);
  }
  sim.run();
  ASSERT_EQ(order.size(), 50u);
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));
}

TEST_F(NetworkTest, TracerRecordsSendsAndDrops) {
  Network network(sim, LinkConfig{}, FaultConfig{.drop_probability = 0.5},
                  /*seed=*/5);
  PacketTracer tracer;
  network.set_tracer(&tracer);
  const NodeId a = network.attach(nullptr);
  const NodeId b = network.attach([](const Packet&) {});
  for (int i = 0; i < 100; ++i) network.send(make_packet(a, b, 64));
  sim.run();
  EXPECT_EQ(tracer.size(), 100u);
  std::uint64_t dropped = 0;
  for (const auto& r : tracer.records()) {
    EXPECT_EQ(r.src, a);
    EXPECT_EQ(r.dst, b);
    if (r.dropped) ++dropped;
  }
  EXPECT_EQ(dropped, network.packets_dropped());
  const auto summary = tracer.summarize();
  ASSERT_TRUE(summary.count(PacketKind::kRequest));
  EXPECT_EQ(summary.at(PacketKind::kRequest).packets, 100u);
  EXPECT_EQ(summary.at(PacketKind::kRequest).dropped, dropped);
}

TEST_F(NetworkTest, TracerDumpIsReadable) {
  Network network(sim);
  PacketTracer tracer;
  network.set_tracer(&tracer);
  const NodeId a = network.attach(nullptr);
  const NodeId b = network.attach([](const Packet&) {});
  Packet p = make_packet(a, b, 10);
  p.kind = PacketKind::kRdmaWrite;
  p.lambda.workload_id = 4;
  p.lambda.frag_index = 1;
  p.lambda.frag_count = 3;
  network.send(p);
  sim.run();
  const std::string text = tracer.dump();
  EXPECT_NE(text.find("rdma-write"), std::string::npos);
  EXPECT_NE(text.find("frag 2/3"), std::string::npos);
  EXPECT_NE(text.find("wid=4"), std::string::npos);
}

TEST_F(NetworkTest, TracerCapacityBounded) {
  Network network(sim);
  PacketTracer tracer;
  tracer.set_capacity(100);
  network.set_tracer(&tracer);
  const NodeId a = network.attach(nullptr);
  const NodeId b = network.attach([](const Packet&) {});
  for (int i = 0; i < 500; ++i) network.send(make_packet(a, b, 8));
  sim.run();
  EXPECT_LE(tracer.size(), 100u);
}

TEST_F(NetworkTest, TracerEvictionCountedAndReportedInDump) {
  Network network(sim);
  PacketTracer tracer;
  tracer.set_capacity(10);
  network.set_tracer(&tracer);
  const NodeId a = network.attach(nullptr);
  const NodeId b = network.attach([](const Packet&) {});
  for (int i = 0; i < 25; ++i) network.send(make_packet(a, b, 8));
  sim.run();
  EXPECT_EQ(tracer.size(), 10u);
  EXPECT_EQ(tracer.evicted(), 15u);
  EXPECT_NE(tracer.dump().find("15 earlier record(s) evicted"),
            std::string::npos);

  // Shrinking an already-full ring evicts immediately.
  tracer.set_capacity(4);
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.evicted(), 21u);
  tracer.clear();
  EXPECT_EQ(tracer.evicted(), 0u);
}

TEST_F(NetworkTest, ByteAccountingMatchesWireSizes) {
  Network network(sim);
  const NodeId a = network.attach(nullptr);
  const NodeId b = network.attach([](const Packet&) {});
  Packet p = make_packet(a, b, 500);
  network.send(p);
  sim.run();
  EXPECT_EQ(network.bytes_sent(), p.wire_size());
}

}  // namespace
}  // namespace lnic::net
