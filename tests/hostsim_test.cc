// Tests for the host CPU model: correctness of served responses, context
// switch accounting, thread limits, KV blocking behaviour, and the
// latency ordering the paper's baselines exhibit.
#include <gtest/gtest.h>

#include "compiler/pipeline.h"
#include "hostsim/host.h"
#include "kvstore/cache_server.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "workloads/image.h"
#include "workloads/lambdas.h"

namespace lnic::hostsim {
namespace {

using net::Packet;
using net::PacketKind;
using workloads::encode_image_request;
using workloads::encode_kv_request;
using workloads::encode_web_request;

struct Rig {
  sim::Simulator sim;
  net::Network network{sim};
  std::unique_ptr<HostServer> host;
  std::unique_ptr<kvstore::CacheServer> cache;
  NodeId client = kInvalidNode;
  std::vector<Packet> responses;
  std::vector<SimTime> response_times;
  workloads::WorkloadBundle bundle;

  explicit Rig(HostConfig config = {}) {
    host = std::make_unique<HostServer>(sim, network, config);
    cache = std::make_unique<kvstore::CacheServer>(sim, network);
    host->set_kv_server(cache->node());
    client = network.attach([this](const Packet& p) {
      if (p.kind == PacketKind::kResponse) {
        responses.push_back(p);
        response_times.push_back(sim.now());
      }
    });
    bundle = workloads::make_standard_workloads();
    auto compiled = compiler::compile(bundle.spec, std::move(bundle.lambdas));
    EXPECT_TRUE(compiled.ok());
    host->deploy(std::move(compiled).value().program);
  }

  void send(WorkloadId wid, std::vector<std::uint8_t> body, RequestId id) {
    net::LambdaHeader hdr;
    hdr.workload_id = wid;
    hdr.request_id = id;
    auto frags =
        net::fragment(client, host->node(), PacketKind::kRequest, hdr, body);
    for (auto& f : frags) network.send(std::move(f));
  }
};

TEST(HostServer, ServesWebRequestCorrectly) {
  Rig rig;
  rig.send(workloads::kWebServerId, encode_web_request(2), 1);
  rig.sim.run();
  ASSERT_EQ(rig.responses.size(), 1u);
  const auto& body = rig.responses[0].payload;
  const std::string page(body.begin() + 8, body.end());
  EXPECT_EQ(page, workloads::expected_web_page(rig.bundle, 2));
}

TEST(HostServer, LatencyIncludesRuntimeOverheads) {
  HostConfig config;
  config.per_request = microseconds(250);
  Rig rig(config);
  const SimTime start = rig.sim.now();
  rig.send(workloads::kWebServerId, encode_web_request(0), 1);
  rig.sim.run();
  ASSERT_EQ(rig.responses.size(), 1u);
  // Must exceed the runtime dispatch + kernel stack floor.
  EXPECT_GT(rig.sim.now() - start, microseconds(250));
}

TEST(HostServer, KvLambdaBlocksAndResumes) {
  Rig rig;
  rig.cache->put(11, 1212);
  rig.send(workloads::kKvGetId, encode_kv_request(11), 2);
  rig.sim.run();
  ASSERT_EQ(rig.responses.size(), 1u);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(rig.responses[0].payload[i]) << (8 * i);
  }
  EXPECT_EQ(v, 1212u);
  EXPECT_EQ(rig.host->busy_cores(), 0u);
}

TEST(HostServer, ImageTransformerMatchesReference) {
  Rig rig;
  const auto img = workloads::make_test_image(64, 48, 4);
  rig.send(workloads::kImageId,
           encode_image_request(img.width, img.height, img.rgba), 3);
  rig.sim.run();
  std::map<std::uint32_t, net::BufferView> parts;
  for (const auto& p : rig.responses) parts[p.lambda.frag_index] = p.payload;
  std::vector<std::uint8_t> gray;
  for (auto& [i, b] : parts) {
    (void)i;
    gray.insert(gray.end(), b.begin(), b.end());
  }
  EXPECT_EQ(gray, workloads::to_grayscale(img));
}

TEST(HostServer, ContextSwitchesCountedWhenWorkloadsAlternate) {
  HostConfig config;
  config.cores = 1;
  config.worker_threads = 1;
  Rig rig(config);
  for (int i = 0; i < 10; ++i) {
    rig.send(i % 2 == 0 ? workloads::kWebServerId : workloads::kKvSetId,
             i % 2 == 0 ? encode_web_request(0) : encode_kv_request(1, 2),
             static_cast<RequestId>(i + 1));
  }
  rig.sim.run();
  // Every request lands on a core that last ran the other workload.
  EXPECT_GE(rig.host->stats().context_switches, 10u);
}

TEST(HostServer, SameWorkloadAvoidsSwitches) {
  HostConfig config;
  config.cores = 1;
  config.worker_threads = 1;
  Rig rig(config);
  for (int i = 0; i < 10; ++i) {
    rig.send(workloads::kWebServerId, encode_web_request(0),
             static_cast<RequestId>(i + 1));
  }
  rig.sim.run();
  EXPECT_LE(rig.host->stats().context_switches, 1u);
}

TEST(HostServer, WorkerThreadLimitSerializes) {
  HostConfig fast;
  fast.worker_threads = 56;
  HostConfig slow;
  slow.worker_threads = 1;
  SimTime t_fast, t_slow;
  {
    Rig rig(fast);
    for (int i = 0; i < 20; ++i) {
      rig.send(workloads::kWebServerId, encode_web_request(0),
               static_cast<RequestId>(i + 1));
    }
    rig.sim.run();
    EXPECT_EQ(rig.responses.size(), 20u);
    t_fast = rig.sim.now();
  }
  {
    Rig rig(slow);
    for (int i = 0; i < 20; ++i) {
      rig.send(workloads::kWebServerId, encode_web_request(0),
               static_cast<RequestId>(i + 1));
    }
    rig.sim.run();
    EXPECT_EQ(rig.responses.size(), 20u);
    t_slow = rig.sim.now();
  }
  // With the GIL serializing execution, extra service threads only
  // overlap kernel/runtime work; the single-thread run is still strictly
  // slower because nothing overlaps at all.
  EXPECT_GT(t_slow, t_fast);
}

TEST(HostServer, BusyTimeAccumulatesForUtilization) {
  Rig rig;
  rig.send(workloads::kWebServerId, encode_web_request(0), 1);
  rig.sim.run();
  EXPECT_GT(rig.host->stats().busy_time, 0);
}

TEST(HostServer, AllRequestsCompleteUnderBurst) {
  Rig rig;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    rig.send(workloads::kWebServerId, encode_web_request(i & 3),
             static_cast<RequestId>(i + 1));
  }
  rig.sim.run();
  EXPECT_EQ(rig.responses.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(rig.host->stats().requests_dropped, 0u);
}

}  // namespace
}  // namespace lnic::hostsim
