// Unit and property tests for src/common: Result, Rng, Sampler, Fixed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/buffer.h"
#include "common/fixed_point.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"

namespace lnic {
namespace {

TEST(Types, DurationConversions) {
  EXPECT_EQ(microseconds(1), 1000);
  EXPECT_EQ(milliseconds(1), 1'000'000);
  EXPECT_EQ(seconds(2), 2'000'000'000);
  EXPECT_DOUBLE_EQ(to_ms(milliseconds(5)), 5.0);
  EXPECT_DOUBLE_EQ(to_us(microseconds(7)), 7.0);
  EXPECT_DOUBLE_EQ(to_sec(seconds(3)), 3.0);
}

TEST(Types, ByteLiterals) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
  EXPECT_DOUBLE_EQ(to_mib(3_MiB), 3.0);
}

TEST(Result, ValueAndError) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.value_or(7), 42);

  Result<int> bad = make_error("boom");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "boom");
  EXPECT_EQ(bad.value_or(7), 7);
}

TEST(Status, OkAndError) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  Status bad = make_error("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "nope");
}

TEST(Rng, DeterministicUnderSeed) {
  Rng a(123), b(123), c(124);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    if (va != c.next_u64()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(13), 13u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Sampler, BasicMoments) {
  Sampler s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Sampler, PercentileNearestRank) {
  Sampler s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(1), 1.0);
}

TEST(Sampler, EcdfMonotoneAndEndsAtOne) {
  Rng rng(3);
  Sampler s;
  for (int i = 0; i < 1000; ++i) s.add(rng.next_double() * 50);
  const auto curve = s.ecdf();
  ASSERT_FALSE(curve.empty());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].first, curve[i - 1].first);
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Sampler, EcdfCollapsesDuplicates) {
  Sampler s;
  s.add(5.0);
  s.add(5.0);
  s.add(9.0);
  const auto curve = s.ecdf();
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve[0].first, 5.0);
  EXPECT_NEAR(curve[0].second, 2.0 / 3.0, 1e-12);
}

// Property sweep: percentiles are monotone in p for random samples.
class PercentileMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotoneTest, MonotoneInP) {
  Rng rng(GetParam());
  Sampler s;
  const int n = 1 + static_cast<int>(rng.next_below(500));
  for (int i = 0; i < n; ++i) s.add(rng.next_double() * 1000 - 500);
  double prev = s.percentile(0);
  for (double p = 5; p <= 100; p += 5) {
    const double cur = s.percentile(p);
    EXPECT_GE(cur, prev) << "p=" << p;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotoneTest,
                         ::testing::Range(1, 21));

TEST(Fixed, RoundTripAndArithmetic) {
  const Fixed a = Fixed::from_double(1.5);
  const Fixed b = Fixed::from_double(2.25);
  EXPECT_DOUBLE_EQ((a + b).to_double(), 3.75);
  EXPECT_DOUBLE_EQ((b - a).to_double(), 0.75);
  EXPECT_NEAR((a * b).to_double(), 3.375, 1e-4);
  EXPECT_NEAR((b / a).to_double(), 1.5, 1e-4);
  EXPECT_EQ(Fixed::from_int(7).to_int(), 7);
}

TEST(Fixed, GrayscaleWeightsSumToNearOne) {
  // The image transformer's luma weights in Q16.16 must sum to ~1.0.
  const Fixed r = Fixed::from_double(77.0 / 256.0);
  const Fixed g = Fixed::from_double(150.0 / 256.0);
  const Fixed b = Fixed::from_double(29.0 / 256.0);
  EXPECT_NEAR((r + g + b).to_double(), 1.0, 0.01);
}

TEST(Utilization, FractionOfWindow) {
  UtilizationTracker u;
  u.add_busy(milliseconds(250));
  EXPECT_DOUBLE_EQ(u.utilization(seconds(1)), 0.25);
  EXPECT_DOUBLE_EQ(u.utilization(0), 0.0);
}

TEST(Counter, IncrementsByArbitraryAmounts) {
  Counter c("requests");
  c.increment();
  c.increment(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(c.name(), "requests");
}

// --- Buffer / BufferView: zero-copy payload plumbing ---

std::vector<std::uint8_t> iota_bytes(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i);
  return v;
}

TEST(Buffer, AdoptTakesOwnershipWithoutCopying) {
  reset_copy_stats();
  auto bytes = iota_bytes(100);
  const std::uint8_t* storage = bytes.data();
  const Buffer::Ptr buf = Buffer::adopt(std::move(bytes));
  EXPECT_EQ(buf->data(), storage);  // same allocation, no byte moved
  EXPECT_EQ(buf->size(), 100u);
  EXPECT_EQ(copy_stats().bytes_copied, 0u);
}

TEST(Buffer, CopyOfIsCounted) {
  reset_copy_stats();
  const auto bytes = iota_bytes(64);
  const Buffer::Ptr buf = Buffer::copy_of(bytes.data(), bytes.size());
  EXPECT_EQ(buf->size(), 64u);
  EXPECT_EQ(copy_stats().bytes_copied, 64u);
  EXPECT_EQ(copy_stats().copies, 1u);
}

TEST(BufferView, SliceSharesStorageAndKeepsBufferAlive) {
  reset_copy_stats();
  BufferView whole(iota_bytes(100));
  BufferView mid = whole.slice(10, 30);
  EXPECT_EQ(mid.size(), 30u);
  EXPECT_EQ(mid.data(), whole.data() + 10);
  EXPECT_EQ(mid[0], 10);
  EXPECT_EQ(mid.back(), 39);
  EXPECT_EQ(copy_stats().bytes_copied, 0u);
  EXPECT_GE(copy_stats().bytes_shared, 30u);
  // Dropping the parent view must not invalidate the slice.
  whole = BufferView();
  EXPECT_EQ(mid[5], 15);
}

TEST(BufferView, VectorCopyConstructorIsCounted) {
  reset_copy_stats();
  const auto bytes = iota_bytes(48);
  BufferView copied(bytes);  // lvalue: must copy
  EXPECT_EQ(copied.size(), 48u);
  EXPECT_EQ(copy_stats().bytes_copied, 48u);
}

TEST(BufferView, EqualityComparesContents) {
  BufferView a(iota_bytes(16));
  BufferView b(iota_bytes(16));  // different buffer, same bytes
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(a == iota_bytes(16));
  EXPECT_FALSE(a == a.slice(0, 8));
}

TEST(Coalesce, ContiguousFragmentsMergeWithoutCopying) {
  reset_copy_stats();
  BufferView whole(iota_bytes(100));
  std::vector<BufferView> frags{whole.slice(0, 40), whole.slice(40, 40),
                                whole.slice(80, 20)};
  reset_copy_stats();
  const BufferView merged = coalesce(frags);
  EXPECT_EQ(merged.size(), 100u);
  EXPECT_EQ(merged.data(), whole.data());  // spanning view, same storage
  EXPECT_EQ(copy_stats().bytes_copied, 0u);
}

TEST(Coalesce, NonContiguousFragmentsFallBackToOneCopy) {
  BufferView a(iota_bytes(10));
  BufferView b(iota_bytes(10));
  reset_copy_stats();
  const BufferView merged = coalesce({a, b});
  EXPECT_EQ(merged.size(), 20u);
  EXPECT_EQ(copy_stats().bytes_copied, 20u);
  EXPECT_EQ(merged[0], 0);
  EXPECT_EQ(merged[10], 0);
}

TEST(Coalesce, OutOfOrderSlicesOfOneBufferStillCopy) {
  // Same buffer but wrong order: the spanning-view fast path must not
  // apply, or the reassembled body would be scrambled.
  BufferView whole(iota_bytes(20));
  const BufferView merged = coalesce({whole.slice(10, 10), whole.slice(0, 10)});
  EXPECT_EQ(merged.size(), 20u);
  EXPECT_EQ(merged[0], 10);
  EXPECT_EQ(merged[10], 0);
}

}  // namespace
}  // namespace lnic
